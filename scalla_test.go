package scalla

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/respq"
)

// cmsdNewManagerForTest starts a brand-new manager node at the given
// addresses with the test timing profile (used by the restart test).
func cmsdNewManagerForTest(c *Cluster, dataAddr, ctlAddr string) (*Node, error) {
	n, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr-reborn", Role: proto.RoleManager,
		DataAddr: dataAddr, CtlAddr: ctlAddr,
		Net: c.Net,
		Core: cmsd.Config{
			Cache:     cache.Config{InitialBuckets: 89},
			Queue:     respq.Config{Period: 20 * time.Millisecond},
			FullDelay: 150 * time.Millisecond,
		},
		PingInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	return n, n.Start()
}

func quickOptions(servers, fanout int) Options {
	return Options{
		Servers:    servers,
		Fanout:     fanout,
		FullDelay:  150 * time.Millisecond,
		FastPeriod: 20 * time.Millisecond,
	}
}

func TestStartClusterFlat(t *testing.T) {
	c, err := StartCluster(quickOptions(4, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Supervisors) != 0 || c.Depth() != 1 {
		t.Fatalf("flat cluster has %d supervisors, depth %d", len(c.Supervisors), c.Depth())
	}

	c.Store(2).Put("/store/x", []byte("payload"))
	cl := c.NewClient()
	defer cl.Close()
	data, err := cl.ReadFile("/store/x")
	if err != nil || string(data) != "payload" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
}

func TestStartClusterTwoLevels(t *testing.T) {
	c, err := StartCluster(quickOptions(9, 4)) // 9 servers at fanout 4 → 3 supervisors
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Supervisors) != 3 || c.Depth() != 2 {
		t.Fatalf("got %d supervisors, depth %d; want 3, 2", len(c.Supervisors), c.Depth())
	}
	c.Store(7).Put("/deep", []byte("d"))
	cl := c.NewClient()
	defer cl.Close()
	f, err := cl.Open("/deep")
	if err != nil {
		t.Fatal(err)
	}
	if f.Server() != c.Servers[7].DataAddr() {
		t.Errorf("served by %s", f.Server())
	}
	f.Close()
}

func TestStartClusterThreeLevels(t *testing.T) {
	c, err := StartCluster(quickOptions(10, 2)) // fanout 2 → widths [3? ...] depth 4-ish
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.Depth() < 3 {
		t.Fatalf("depth = %d, want >= 3", c.Depth())
	}
	c.Store(9).Put("/deep/f", []byte("bottom"))
	cl := c.NewClient()
	defer cl.Close()
	data, err := cl.ReadFile("/deep/f")
	if err != nil || string(data) != "bottom" {
		t.Fatalf("ReadFile through deep tree = %q, %v", data, err)
	}
}

func TestClusterFanoutInvariant(t *testing.T) {
	c, err := StartCluster(quickOptions(30, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := c.Manager.Core().Table().Count(); got > 4 {
		t.Errorf("manager has %d children, fanout 4", got)
	}
	for _, s := range c.Supervisors {
		if got := s.Core().Table().Count(); got > 4 {
			t.Errorf("supervisor %s has %d children, fanout 4", s.Name(), got)
		}
	}
}

func TestClusterNamespace(t *testing.T) {
	c, err := StartCluster(quickOptions(3, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 3; i++ {
		c.Store(i).Put(fmt.Sprintf("/data/f%d", i), []byte("x"))
	}
	entries := c.Namespace().List("/data")
	if len(entries) != 3 {
		t.Fatalf("namespace = %v", entries)
	}
}

func TestClusterWriteReadDelete(t *testing.T) {
	c, err := StartCluster(quickOptions(2, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl := c.NewClient()
	defer cl.Close()

	if err := cl.WriteFile("/w/file", []byte("written through the tree")); err != nil {
		t.Fatal(err)
	}
	data, err := cl.ReadFile("/w/file")
	if err != nil || string(data) != "written through the tree" {
		t.Fatalf("readback = %q, %v", data, err)
	}
	if err := cl.Unlink("/w/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/w/file"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat after unlink = %v", err)
	}
}

func TestStartClusterRejectsZeroServers(t *testing.T) {
	if _, err := StartCluster(Options{}); err == nil {
		t.Fatal("zero-server cluster accepted")
	}
}

func TestManagerReplication(t *testing.T) {
	o := quickOptions(3, 64)
	o.ManagerReplicas = 2
	c, err := StartCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Managers) != 2 {
		t.Fatalf("Managers = %d", len(c.Managers))
	}
	// Every server logged into both heads.
	for _, m := range c.Managers {
		if got := m.Core().Table().Count(); got != 3 {
			t.Errorf("manager %s sees %d children, want 3", m.Name(), got)
		}
	}
	c.Store(1).Put("/r/f", []byte("replicated heads"))
	cl := c.NewClient()
	defer cl.Close()
	if _, err := cl.ReadFile("/r/f"); err != nil {
		t.Fatal(err)
	}

	// Kill the primary: clients must fail over to the replica, whose
	// own cache resolves independently.
	c.Managers[0].Stop()
	cl2 := c.NewClient()
	defer cl2.Close()
	data, err := cl2.ReadFile("/r/f")
	if err != nil || string(data) != "replicated heads" {
		t.Fatalf("post-failover read = %q, %v", data, err)
	}
}

// Recoverability (Section VI): no permanent state — a manager restarted
// from scratch rebuilds its view from logins and queries within the
// subordinates' reconnect delay.
func TestManagerRestartRecovers(t *testing.T) {
	c, err := StartCluster(quickOptions(4, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Store(2).Put("/rec/f", []byte("survives"))
	cl := c.NewClient()
	defer cl.Close()
	if _, err := cl.ReadFile("/rec/f"); err != nil {
		t.Fatal(err)
	}

	// Kill the manager and start a brand-new one at the same address:
	// zero persistent state carries over.
	mgrAddrData, mgrAddrCtl := c.Manager.DataAddr(), c.Manager.CtlAddr()
	c.Manager.Stop()
	fresh, err := cmsdNewManagerForTest(c, mgrAddrData, mgrAddrCtl)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Stop()

	// Servers re-login on their own (reconnect loops); then the cold
	// cache resolves the file again by re-querying.
	deadline := time.Now().Add(10 * time.Second)
	for fresh.Core().Table().Count() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("servers never re-logged in (%d/4)", fresh.Core().Table().Count())
		}
		time.Sleep(time.Millisecond)
	}
	cl2 := c.NewClient()
	defer cl2.Close()
	data, err := cl2.ReadFile("/rec/f")
	if err != nil || string(data) != "survives" {
		t.Fatalf("post-restart read = %q, %v", data, err)
	}
}
