package main

// Disk-backed data-plane rows for the -json suite: the same e2e rig as
// e2e.go but with the server's store opened on a real filesystem
// (tmpfs when /dev/shm is available, so the numbers measure the data
// plane rather than device seek time). These back the STORAGE.md fsync
// trade-off table and the write-window acceptance numbers in
// EXPERIMENTS.md: read.seq.ra4.disk vs its mem twin isolates the
// pread-into-frame cost, write.seq.win{1,4,8} shows the client write
// window collapsing per-chunk round trips, and read.par8.disk is the
// 8-concurrent-streams saturation row.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"scalla/internal/client"
	"scalla/internal/metrics"
	"scalla/internal/store"
)

// benchDiskRoot picks a root for the bench store, preferring tmpfs so
// throughput reflects the software path, and returns a cleanup.
func benchDiskRoot() (string, func(), error) {
	base := ""
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		base = "/dev/shm"
	}
	dir, err := os.MkdirTemp(base, "scalla-bench-")
	if err != nil && base != "" {
		dir, err = os.MkdirTemp("", "scalla-bench-")
	}
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// benchDisk runs the disk-backed rows and appends their results.
func benchDisk(quick bool) ([]BenchResult, error) {
	root, cleanup, err := benchDiskRoot()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	st, err := store.Open(store.Config{Root: root + "/data", Fsync: store.FsyncNever})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rig, err := newE2ERigStore(e2eLatency, st)
	if err != nil {
		return nil, err
	}
	defer rig.stop()

	fileMB := 8
	if quick {
		fileMB = 2
	}
	var out []BenchResult
	r, err := benchReadSeq(rig, 4, fileMB, ".disk")
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	for _, win := range []int{1, 4, 8} {
		r, err := benchWriteSeq(rig, win, fileMB)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	par, err := benchReadPar(rig, 8, fileMB)
	if err != nil {
		return nil, err
	}
	return append(out, par), nil
}

// benchWriteSeq streams a file to the server in 64 KiB chunks through
// a write window of the given depth, measuring per-WriteAt latency and
// end-to-end throughput (Flush included, so acked-not-arrived bytes
// cannot flatter the number).
func benchWriteSeq(rig *e2eRig, window, fileMB int) (BenchResult, error) {
	path := fmt.Sprintf("/store/wseq%d.root", window)
	if err := rig.st.Put(path, nil); err != nil {
		return BenchResult{}, err
	}
	cl := client.New(client.Config{
		Net: rig.net, Managers: []string{"mgr:data"}, WriteWindow: window,
	})
	defer cl.Close()
	f, err := cl.OpenWrite(path)
	if err != nil {
		return BenchResult{}, err
	}
	defer f.Close()

	op := fmt.Sprintf("write.seq.win%d", window)
	h := metrics.NewRegistry().Histogram(op)
	chunk := make([]byte, 64<<10)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	total64 := int64(fileMB) << 20
	const passes = 4
	var total int64
	var elapsed time.Duration
	for pass := 0; pass <= passes; pass++ {
		warm := pass > 0
		start := time.Now()
		for off := int64(0); off < total64; off += int64(len(chunk)) {
			t0 := time.Now()
			if _, err := f.WriteAt(chunk, off); err != nil {
				return BenchResult{}, err
			}
			if warm {
				h.Observe(time.Since(t0))
			}
		}
		if err := f.Flush(); err != nil {
			return BenchResult{}, err
		}
		if warm {
			elapsed += time.Since(start)
			total += total64
		}
	}
	s := h.Snapshot()
	return BenchResult{
		Op: op, N: s.Count,
		P50US:     float64(s.P50.Nanoseconds()) / 1e3,
		P90US:     float64(s.P90.Nanoseconds()) / 1e3,
		P99US:     float64(s.P99.Nanoseconds()) / 1e3,
		OpsPerSec: float64(s.Count) / elapsed.Seconds(),
		MBPerSec:  float64(total) / (1 << 20) / elapsed.Seconds(),
	}, nil
}

// benchReadPar streams `streams` distinct disk-backed files at once,
// one client and readahead-4 window each, reporting aggregate MB/s —
// the "do 8 concurrent streams saturate tmpfs" acceptance row.
func benchReadPar(rig *e2eRig, streams, fileMB int) (BenchResult, error) {
	data := make([]byte, fileMB<<20)
	for i := range data {
		data[i] = byte(i)
	}
	paths := make([]string, streams)
	for g := range paths {
		paths[g] = fmt.Sprintf("/store/par%d.root", g)
		if err := rig.st.Put(paths[g], data); err != nil {
			return BenchResult{}, err
		}
	}
	op := fmt.Sprintf("read.par%d.disk", streams)
	h := metrics.NewRegistry().Histogram(op)
	const passes = 3
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		benchErr error
	)
	start := time.Now()
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				if benchErr == nil {
					benchErr = err
				}
				mu.Unlock()
			}
			cl := client.New(client.Config{
				Net: rig.net, Managers: []string{"mgr:data"}, Readahead: 4,
			})
			defer cl.Close()
			f, err := cl.Open(path)
			if err != nil {
				fail(err)
				return
			}
			defer f.Close()
			buf := make([]byte, 64<<10)
			for pass := 0; pass < passes; pass++ {
				if _, err := f.Seek(0, io.SeekStart); err != nil {
					fail(err)
					return
				}
				for {
					t0 := time.Now()
					_, err := f.Read(buf)
					if err == io.EOF {
						break
					}
					if err != nil {
						fail(err)
						return
					}
					h.Observe(time.Since(t0))
				}
			}
		}(paths[g])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if benchErr != nil {
		return BenchResult{}, benchErr
	}
	s := h.Snapshot()
	return BenchResult{
		Op: op, N: s.Count,
		P50US:     float64(s.P50.Nanoseconds()) / 1e3,
		P90US:     float64(s.P90.Nanoseconds()) / 1e3,
		P99US:     float64(s.P99.Nanoseconds()) / 1e3,
		OpsPerSec: float64(s.Count) / elapsed.Seconds(),
		MBPerSec:  float64(int64(streams)*int64(passes)*int64(len(data))) / (1 << 20) / elapsed.Seconds(),
	}, nil
}
