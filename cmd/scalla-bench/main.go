// scalla-bench regenerates the paper's quantitative claims as tables.
//
// Usage:
//
//	scalla-bench                 # run every experiment at full scale
//	scalla-bench -quick          # smaller sizes, a few seconds each
//	scalla-bench -run E4,E7      # selected experiments
//	scalla-bench -list           # list experiment ids and claims
//	scalla-bench -json -quick    # micro-bench suite -> BENCH_<date>.json
//
// The per-experiment mapping to the paper's sections lives in DESIGN.md;
// measured-vs-paper results are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scalla/internal/bitvec"
	"scalla/internal/cache"
	"scalla/internal/experiments"
	"scalla/internal/vclock"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	fig2 := flag.Bool("figure2", false, "render the paper's Figure 2 (hash table + eviction windows) from a live cache")
	jsonOut := flag.Bool("json", false, "run the micro-benchmark suite and write BENCH_<date>.json")
	surge := flag.Bool("surge", false, "run the TCP overload-protection surge bench standalone, with queue-depth assertions")
	depth4 := flag.Bool("depth4", false, "run the depth-4 tree scaling sweep (simulated servers over real cores) and print the scaling table")
	netMode := flag.String("net", "", "run the e2e data-plane suite over the named interconnect: tcp (real loopback sockets)")
	flag.Parse()

	if *netMode != "" {
		if *netMode != "tcp" {
			fmt.Fprintf(os.Stderr, "scalla-bench: unknown -net mode %q (only tcp)\n", *netMode)
			os.Exit(2)
		}
		if err := runNetTCP(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "scalla-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *depth4 {
		rows, err := runDepth4(*quick)
		printDepth4(rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scalla-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fig2 {
		renderFigure2()
		return
	}
	if *surge {
		rows, err := runSurge(*quick, true)
		for _, r := range rows {
			fmt.Printf("%-22s n=%-8d p50=%8.0fµs p99=%8.0fµs %10.0f ops/s %8.1f MB/s\n",
				r.Op, r.N, r.P50US, r.P99US, r.OpsPerSec, r.MBPerSec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scalla-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		name, err := runJSONBench(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scalla-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", name)
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Describe(id))
		}
		return
	}

	scale := experiments.Scale{Quick: *quick}
	var ids []string
	if *run == "" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn := experiments.ByID(id)
		if fn == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Println(fn(scale))
	}
}

// renderFigure2 populates a cache with a varying per-window load, ticks
// the clock, and prints the structure — the runnable Figure 2.
func renderFigure2() {
	c := cache.New(cache.Config{SyncSweep: true, Clock: vclock.NewFake()})
	id := 0
	for w := 0; w < cache.Windows; w++ {
		// Diurnal-ish load: more objects created in "busy" windows.
		n := 200 + 150*(w%8)
		for k := 0; k < n; k++ {
			c.Add(fmt.Sprintf("/store/fig2/w%02d/f%06d", w, id), bitvec.Full, 0)
			id++
		}
		c.Tick()
	}
	fmt.Print(c.Dump(70))
}
