package main

// The -net tcp mode: the e2e data-plane suite over real loopback
// sockets instead of the emulated in-process interconnect. Where the
// InProc numbers expose round-trip counts, these expose the kernel
// boundary — syscalls per frame — which is what the coalescing wire
// path attacks. The rows land in BENCH_<date>.json with a `.tcp`
// suffix, and the standalone `-net tcp` run prints them plus the wire
// batching counters (frames per writev, flush reasons) when the
// transport exposes them.

import (
	"fmt"
	"net"

	"scalla/internal/store"
	"scalla/internal/transport"
)

// wireSnapshot reads the wire batching counters when the network
// exposes them (transport.TCPNet); zero otherwise.
func wireSnapshot(n transport.Network) transport.WireSnapshot {
	if t, ok := n.(*transport.TCPNet); ok {
		return t.Wire()
	}
	return transport.WireSnapshot{}
}

// freeTCPAddr reserves an ephemeral loopback port and returns its
// address. The port is released before use, as in the TCP tests.
func freeTCPAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// newE2ERigTCP stands the 1-manager/1-server cluster up over real
// loopback sockets.
func newE2ERigTCP(st *store.Store) (*e2eRig, error) {
	mgrData, err := freeTCPAddr()
	if err != nil {
		return nil, err
	}
	mgrCtl, err := freeTCPAddr()
	if err != nil {
		return nil, err
	}
	srvData, err := freeTCPAddr()
	if err != nil {
		return nil, err
	}
	return newE2ERigNet(transport.TCP(), st, mgrData, mgrCtl, srvData)
}

// benchE2ETCP runs the real-socket e2e suite: lock-step RPC, pipelined
// RPC, and sequential read with readahead 4.
func benchE2ETCP(quick bool) ([]BenchResult, error) {
	rig, err := newE2ERigTCP(store.New(store.Config{}))
	if err != nil {
		return nil, err
	}
	defer rig.stop()

	var out []BenchResult
	rpcs := 4000
	if quick {
		rpcs = 800
	}
	single, err := benchRPC(rig, 1, rpcs, ".tcp")
	if err != nil {
		return nil, err
	}
	out = append(out, single)

	base := wireSnapshot(rig.net)
	pipelined, err := benchRPC(rig, 8, rpcs, ".tcp")
	if err != nil {
		return nil, err
	}
	pipelined.FramesPerWritev = wireSnapshot(rig.net).Sub(base).MeanBatch()
	out = append(out, pipelined)

	fileMB := 8
	if quick {
		fileMB = 2
	}
	r, err := benchReadSeq(rig, 4, fileMB, ".tcp")
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	return out, nil
}

// runNetTCP is the standalone `-net tcp` entry point: it runs the
// real-socket suite and prints the rows plus the wire batching summary.
func runNetTCP(quick bool) error {
	rows, err := benchE2ETCP(quick)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-22s n=%-8d p50=%8.1fµs p99=%8.1fµs %10.0f ops/s",
			r.Op, r.N, r.P50US, r.P99US, r.OpsPerSec)
		if r.MBPerSec > 0 {
			fmt.Printf(" %8.1f MB/s", r.MBPerSec)
		}
		if r.FramesPerWritev > 0 {
			fmt.Printf("  %5.2f frames/writev", r.FramesPerWritev)
		}
		fmt.Println()
	}
	return nil
}
