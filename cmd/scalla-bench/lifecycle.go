package main

// The data-lifecycle replay benchmark: a Zipf(s=1.1) open/read stream
// — the measured skew of scientific-data popularity — replayed through
// an edge proxy cache in front of the e2e rig. It reports the
// steady-state open latency split by edge hit vs miss (the paper's
// repeat-open story at the proxy tier), the open hit-rate, and the
// origin offload fraction; EXPERIMENTS.md tracks the curves.

import (
	"fmt"
	"io"
	"time"

	"scalla/internal/client"
	"scalla/internal/metrics"
	"scalla/internal/pcache"
	"scalla/internal/workload"
)

// benchLifecycle replays the lifecycle workload through a proxy and
// returns proxy.open.hit, proxy.open.miss, and proxy.lifecycle rows.
func benchLifecycle(quick bool) ([]BenchResult, error) {
	rig, err := newE2ERig()
	if err != nil {
		return nil, err
	}
	defer rig.stop()

	files := 64
	draws := 2000
	if quick {
		files = 32
		draws = 400
	}
	const fileBytes = 64 << 10
	const readBytes = 32 << 10
	dataset := make([]string, files)
	body := make([]byte, fileBytes)
	for i := range body {
		body[i] = byte(i * 13)
	}
	for i := range dataset {
		dataset[i] = fmt.Sprintf("/store/lc/file-%04d.root", i)
		if err := rig.st.Put(dataset[i], body); err != nil {
			return nil, err
		}
	}

	p := pcache.New(pcache.Config{
		Net:     rig.net,
		Addr:    "edge:data",
		Origins: []string{"mgr:data"},
	})
	if err := p.Start(); err != nil {
		return nil, err
	}
	defer p.Close()

	cl := client.New(client.Config{Net: rig.net, Managers: []string{p.Addr()}})
	defer cl.Close()

	z := workload.NewZipf(files, 1.1, 1)
	buf := make([]byte, readBytes)
	readOne := func(path string) (time.Duration, error) {
		t0 := time.Now()
		f, err := cl.Open(path)
		lat := time.Since(t0)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			return 0, err
		}
		return lat, nil
	}

	// Warmup: populate the edge so the measurement is steady state.
	for i := 0; i < 2*files; i++ {
		if _, err := readOne(dataset[z.Next()]); err != nil {
			return nil, err
		}
	}

	reg := metrics.NewRegistry()
	hitLat := reg.Histogram("proxy.open.hit")
	missLat := reg.Histogram("proxy.open.miss")
	base := p.Stats()
	start := time.Now()
	for i := 0; i < draws; i++ {
		before := p.Stats().OpenHits
		lat, err := readOne(dataset[z.Next()])
		if err != nil {
			return nil, err
		}
		if p.Stats().OpenHits > before {
			hitLat.Observe(lat)
		} else {
			missLat.Observe(lat)
		}
	}
	elapsed := time.Since(start)
	s := p.Stats()

	row := func(op string, snap metrics.Snapshot) BenchResult {
		return BenchResult{
			Op: op, N: snap.Count,
			P50US:     float64(snap.P50.Nanoseconds()) / 1e3,
			P90US:     float64(snap.P90.Nanoseconds()) / 1e3,
			P99US:     float64(snap.P99.Nanoseconds()) / 1e3,
			OpsPerSec: float64(snap.Count) / elapsed.Seconds(),
		}
	}
	hits := s.OpenHits - base.OpenHits
	opens := hits + s.OpenMisses - base.OpenMisses
	offload := pcache.Stats{
		OriginBytes: s.OriginBytes - base.OriginBytes,
		BytesServed: s.BytesServed - base.BytesServed,
	}.OriginOffload()
	out := []BenchResult{
		row("proxy.open.hit", hitLat.Snapshot()),
		row("proxy.open.miss", missLat.Snapshot()),
		{
			Op: "proxy.lifecycle", N: opens,
			OpsPerSec:     float64(opens) / elapsed.Seconds(),
			HitRate:       float64(hits) / float64(opens),
			OriginOffload: offload,
		},
	}
	return out, nil
}
