package main

// The -depth4 mode: the tree-scaling table. It stands up depth-3
// through depth-5 topologies (hundreds to thousands of simulated data
// servers over real cmsd cores) in the deterministic tree harness and
// reports, per shape, the resolve cost the paper's structured-cluster
// argument predicts: hop counts bounded by the tree depth, messages per
// resolve bounded by the flood fan-out, and end-to-end latency as the
// per-hop delays compose. Latencies are simulated (1–10 ms per hop on
// the virtual clock), so the table's claims are about protocol
// structure, not host speed.

import (
	"fmt"
	"time"

	"scalla/internal/detsim"
)

// depthRow is one tree shape's scaling summary.
type depthRow struct {
	Servers int
	Fanout  int
	Depth   int // tree depth in node levels, servers included
	Cores   int // redirector cores stood up
	Ops     int
	HopP50  int
	HopMax  int
	MsgsPerOp float64 // (queries + haves) per completed resolve
	LatP50  time.Duration
	LatP99  time.Duration
}

// runDepth4 executes the scaling sweep. Each shape runs on a fixed seed
// so the table is reproducible; the detsim sweep owns seed coverage.
func runDepth4(quick bool) ([]depthRow, error) {
	type shape struct{ servers, fanout int }
	shapes := []shape{
		{1024, 64}, // depth-3 baseline: one supervisor level
		{512, 16},
		{1024, 16}, // depth-4: same servers as the baseline, fanout 16
		{4096, 16},
		{16384, 16}, // depth-5: fanout 16 needs a third supervisor level
	}
	if quick {
		shapes = shapes[:3]
	}
	rows := make([]depthRow, 0, len(shapes))
	for _, sh := range shapes {
		res := detsim.RunTree(detsim.TreeConfig{
			Seed:    1,
			Servers: sh.servers,
			Fanout:  sh.fanout,
			Clients: 8, OpsPerClient: 8, Paths: 12,
		})
		if len(res.Violations) != 0 {
			return rows, fmt.Errorf("depth sweep %d@%d: %v", sh.servers, sh.fanout, res.Violations)
		}
		if res.Ops == 0 {
			return rows, fmt.Errorf("depth sweep %d@%d completed no ops", sh.servers, sh.fanout)
		}
		rows = append(rows, depthRow{
			Servers: res.Servers,
			Fanout:  sh.fanout,
			Depth:   res.Levels + 1,
			Cores:   res.Cores,
			Ops:     res.Ops,
			HopP50:  res.HopP50,
			HopMax:  res.HopMax,
			MsgsPerOp: float64(res.Queries+res.Haves) / float64(res.Ops),
			LatP50:  res.LatP50,
			LatP99:  res.LatP99,
		})
	}
	return rows, nil
}

func printDepth4(rows []depthRow) {
	fmt.Printf("%-8s %-7s %-6s %-6s %-5s %-8s %-8s %-10s %-10s %s\n",
		"servers", "fanout", "depth", "cores", "ops", "hop p50", "hop max", "msgs/op", "lat p50", "lat p99")
	for _, r := range rows {
		fmt.Printf("%-8d %-7d %-6d %-6d %-5d %-8d %-8d %-10.1f %-10s %s\n",
			r.Servers, r.Fanout, r.Depth, r.Cores, r.Ops, r.HopP50, r.HopMax,
			r.MsgsPerOp, r.LatP50.Round(time.Microsecond), r.LatP99.Round(time.Microsecond))
	}
}
