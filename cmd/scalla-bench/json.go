package main

// The -json mode: a fixed micro-benchmark suite over the hot paths the
// observability PRs care about, written as machine-readable
// BENCH_<date>.json so successive runs can be diffed by tooling rather
// than eyeballed.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/metrics"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// benchPath generates HEP-style file names (deep shared prefixes plus
// a numeric tail), the key population the cache experiments use.
func benchPath(i int) string {
	return fmt.Sprintf("/store/data/Run2012%c/SingleMu/AOD/v%d/%04d/F%08d.root",
		'A'+rune(i%4), i%3+1, (i/1000)%100, i)
}

// BenchResult is one op's latency/throughput summary in the JSON file.
type BenchResult struct {
	Op        string  `json:"op"`
	N         int64   `json:"n"`
	P50US     float64 `json:"p50_us"`
	P90US     float64 `json:"p90_us"`
	P99US     float64 `json:"p99_us"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// MBPerSec is set only for data-plane throughput ops (read.seq.*).
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// HitRate and OriginOffload are set only for the proxy lifecycle
	// replay (proxy.lifecycle): steady-state open hit ratio and the
	// fraction of served bytes not pulled from origin.
	HitRate       float64 `json:"hit_rate,omitempty"`
	OriginOffload float64 `json:"origin_offload,omitempty"`
	// FramesPerWritev is set only for ops run over real sockets with
	// wire batching counters (rpc.pipelined.*.tcp): mean frames
	// coalesced into one vectored write syscall during the run.
	FramesPerWritev float64 `json:"frames_per_writev,omitempty"`
	// Depth, HopP50, and MsgsPerOp are set only for the tree-scaling
	// rows (depth.resolve.*): tree depth in node levels, median redirect
	// hops per resolve, and protocol messages per resolve. Their
	// latencies are simulated hop delays, not host time.
	Depth     int     `json:"depth,omitempty"`
	HopP50    int     `json:"hop_p50,omitempty"`
	MsgsPerOp float64 `json:"msgs_per_op,omitempty"`
}

// BenchFile is the top-level document written to BENCH_<date>.json.
type BenchFile struct {
	Date    string        `json:"date"`
	Go      string        `json:"go"`
	Quick   bool          `json:"quick"`
	Results []BenchResult `json:"results"`
}

// runJSONBench runs the suite and writes BENCH_<date>.json, returning
// the file name.
func runJSONBench(quick bool) (string, error) {
	n := 200_000
	if quick {
		n = 20_000
	}
	out := BenchFile{
		Date:  time.Now().UTC().Format("2006-01-02"),
		Go:    runtime.Version(),
		Quick: quick,
	}
	out.Results = append(out.Results, benchCacheAdd(n), benchCacheFetch(n))
	resolved, err := benchResolveCached(n / 10)
	if err != nil {
		return "", err
	}
	out.Results = append(out.Results, resolved, benchMarshal(n), benchMarshalFrame(n), benchSpan(n), benchFrameEncode(n/10))
	e2e, err := benchE2E(quick)
	if err != nil {
		return "", err
	}
	out.Results = append(out.Results, e2e...)
	tcp, err := benchE2ETCP(quick)
	if err != nil {
		return "", err
	}
	out.Results = append(out.Results, tcp...)
	disk, err := benchDisk(quick)
	if err != nil {
		return "", err
	}
	out.Results = append(out.Results, disk...)
	lifecycle, err := benchLifecycle(quick)
	if err != nil {
		return "", err
	}
	out.Results = append(out.Results, lifecycle...)
	surge, err := runSurge(quick, false)
	if err != nil {
		return "", err
	}
	out.Results = append(out.Results, surge...)
	depth, err := runDepth4(quick)
	if err != nil {
		return "", err
	}
	for _, r := range depth {
		out.Results = append(out.Results, BenchResult{
			Op: fmt.Sprintf("depth.resolve.n%d.f%d", r.Servers, r.Fanout),
			N:  int64(r.Ops),
			P50US:     float64(r.LatP50.Nanoseconds()) / 1e3,
			P99US:     float64(r.LatP99.Nanoseconds()) / 1e3,
			Depth:     r.Depth,
			HopP50:    r.HopP50,
			MsgsPerOp: r.MsgsPerOp,
		})
	}

	name := fmt.Sprintf("BENCH_%s.json", out.Date)
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return name, os.WriteFile(name, append(b, '\n'), 0o644)
}

// measure runs fn n times, sampling every op into a histogram, and
// summarizes it.
func measure(op string, n int, fn func(i int)) BenchResult {
	h := metrics.NewRegistry().Histogram(op)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		fn(i)
		h.Observe(time.Since(t0))
	}
	total := time.Since(start)
	s := h.Snapshot()
	return BenchResult{
		Op: op, N: s.Count,
		P50US:     float64(s.P50.Nanoseconds()) / 1e3,
		P90US:     float64(s.P90.Nanoseconds()) / 1e3,
		P99US:     float64(s.P99.Nanoseconds()) / 1e3,
		OpsPerSec: float64(n) / total.Seconds(),
	}
}

func benchCacheAdd(n int) BenchResult {
	c := cache.New(cache.Config{SyncSweep: true, Clock: vclock.NewFake(), InitialBuckets: 17711})
	return measure("cache.add", n, func(i int) {
		c.Add(benchPath(i), bitvec.Full, 0)
	})
}

func benchCacheFetch(n int) BenchResult {
	c := cache.New(cache.Config{SyncSweep: true, Clock: vclock.NewFake(), InitialBuckets: 17711})
	for i := 0; i < n; i++ {
		c.Add(benchPath(i), bitvec.Full, 0)
	}
	return measure("cache.fetch", n, func(i int) {
		c.Fetch(benchPath(i*7919%n), bitvec.Full, 0)
	})
}

// benchResolveCached measures the full manager round trip for a cached
// name: client → manager resolve (cache hit) → redirect, over the
// in-process transport.
func benchResolveCached(n int) (BenchResult, error) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: "mgr:data", CtlAddr: "mgr:ctl", Net: net,
		Core:           cmsd.Config{FullDelay: time.Second},
		PingInterval:   50 * time.Millisecond,
		ReconnectDelay: 20 * time.Millisecond,
	})
	if err != nil {
		return BenchResult{}, err
	}
	if err := mgr.Start(); err != nil {
		return BenchResult{}, err
	}
	defer mgr.Stop()
	st := store.New(store.Config{})
	st.Put("/store/bench.root", []byte("x"))
	srv, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "srv0", Role: proto.RoleServer,
		DataAddr: "srv0:data", Parents: []string{"mgr:ctl"}, Prefixes: []string{"/"},
		Net: net, Store: st,
		ReconnectDelay: 20 * time.Millisecond,
	})
	if err != nil {
		return BenchResult{}, err
	}
	if err := srv.Start(); err != nil {
		return BenchResult{}, err
	}
	defer srv.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Core().Table().Count() < 1 {
		if time.Now().After(deadline) {
			return BenchResult{}, fmt.Errorf("bench cluster never formed")
		}
		time.Sleep(time.Millisecond)
	}

	conn, err := net.Dial("mgr:data")
	if err != nil {
		return BenchResult{}, err
	}
	defer conn.Close()
	// One uncached round trip to populate the cache (follows Waits).
	for {
		if err := conn.Send(proto.Marshal(proto.Locate{Path: "/store/bench.root"})); err != nil {
			return BenchResult{}, err
		}
		frame, err := conn.Recv()
		if err != nil {
			return BenchResult{}, err
		}
		m, err := proto.Unmarshal(frame)
		if err != nil {
			return BenchResult{}, err
		}
		if w, ok := m.(proto.Wait); ok {
			time.Sleep(time.Duration(w.Millis) * time.Millisecond)
			continue
		}
		if _, ok := m.(proto.Redirect); !ok {
			return BenchResult{}, fmt.Errorf("warmup resolve: %#v", m)
		}
		break
	}

	var benchErr error
	res := measure("resolve.cached", n, func(i int) {
		if benchErr != nil {
			return
		}
		if err := conn.Send(proto.Marshal(proto.Locate{Path: "/store/bench.root"})); err != nil {
			benchErr = err
			return
		}
		if _, err := conn.Recv(); err != nil {
			benchErr = err
		}
	})
	return res, benchErr
}

// benchMarshal measures the allocating wire-encode path (one fresh
// buffer per frame).
func benchMarshal(n int) BenchResult {
	var q proto.Message = proto.Query{QID: 42, Path: benchPath(42), Hash: 0xdeadbeef}
	return measure("proto.marshal", n, func(i int) {
		_ = proto.Marshal(q)
	})
}

// benchMarshalFrame measures the pooled marshal/release cycle the send
// paths use; steady state is allocation-free.
func benchMarshalFrame(n int) BenchResult {
	var q proto.Message = proto.Query{QID: 42, Path: benchPath(42), Hash: 0xdeadbeef}
	return measure("proto.marshal_frame", n, func(i int) {
		f := proto.MarshalFrame(q)
		f.Release()
	})
}

func benchSpan(n int) BenchResult {
	tr := obs.NewTracer(512, nil)
	tr.SetEnabled(true)
	return measure("obs.span", n, func(i int) {
		sp := tr.Start("resolve", "/store/bench.root")
		sp.Event("cache.hit", "")
		sp.End("redirect srv0:data")
	})
}

func benchFrameEncode(n int) BenchResult {
	f := obs.Frame{
		V: obs.FrameVersion, Node: "mgr", Role: "manager", Seq: 1,
		Cache:   &obs.CacheSummary{Entries: 100_000, Buckets: 196_418},
		RespQ:   &obs.RespQSummary{Depth: 12},
		Cluster: &obs.ClusterSummary{Members: 64, Online: 64},
		Ops:     map[string]obs.OpSummary{"resolve.latency": {Count: 1000, P50US: 120}},
	}
	return measure("obs.frame_encode", n, func(i int) {
		if _, err := obs.ParseFrame(f.Encode()); err != nil {
			panic(err)
		}
	})
}
