package main

// End-to-end data-plane benchmarks for the -json suite: full
// client-through-cluster operations over an in-process interconnect
// with a 50 µs one-way latency, so the numbers expose round-trip
// counts (what the stream-multiplexed protocol attacks) rather than
// memory bandwidth. They back the readahead and pipelining acceptance
// numbers in EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"scalla/internal/client"
	"scalla/internal/cmsd"
	"scalla/internal/metrics"
	"scalla/internal/mux"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// e2eLatency is the emulated one-way interconnect delay.
const e2eLatency = 50 * time.Microsecond

// e2eRig is a 1-manager/1-server cluster over a latency-bearing
// in-process network, or — for the -net tcp mode — over real loopback
// sockets.
type e2eRig struct {
	net     transport.Network
	mgr     *cmsd.Node
	srv     *cmsd.Node
	st      *store.Store
	mgrData string // address clients dial for the manager's data plane
	srvData string // address of the server's data plane
	stop    func()
}

func newE2ERig() (*e2eRig, error) { return newE2ERigStore(e2eLatency, store.New(store.Config{})) }

func newE2ERigLat(lat time.Duration) (*e2eRig, error) {
	return newE2ERigStore(lat, store.New(store.Config{}))
}

func newE2ERigStore(lat time.Duration, st *store.Store) (*e2eRig, error) {
	net := transport.NewInProc(transport.InProcConfig{Latency: lat})
	return newE2ERigNet(net, st, "mgr:data", "mgr:ctl", "srv0:data")
}

// newE2ERigNet assembles the 1-manager/1-server cluster over any
// Network with the given listen addresses — the shared core of the
// in-process and real-socket rigs.
func newE2ERigNet(net transport.Network, st *store.Store, mgrData, mgrCtl, srvData string) (*e2eRig, error) {
	mgr, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: mgrData, CtlAddr: mgrCtl, Net: net,
		Core:           cmsd.Config{FullDelay: time.Second},
		PingInterval:   50 * time.Millisecond,
		ReconnectDelay: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := mgr.Start(); err != nil {
		return nil, err
	}
	srv, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "srv0", Role: proto.RoleServer,
		DataAddr: srvData, Parents: []string{mgrCtl}, Prefixes: []string{"/"},
		Net: net, Store: st,
		ReconnectDelay: 20 * time.Millisecond,
	})
	if err != nil {
		mgr.Stop()
		return nil, err
	}
	if err := srv.Start(); err != nil {
		mgr.Stop()
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Core().Table().Count() < 1 {
		if time.Now().After(deadline) {
			mgr.Stop()
			srv.Stop()
			return nil, fmt.Errorf("e2e bench cluster never formed")
		}
		time.Sleep(time.Millisecond)
	}
	return &e2eRig{net: net, mgr: mgr, srv: srv, st: st,
		mgrData: mgrData, srvData: srvData,
		stop: func() { srv.Stop(); mgr.Stop() }}, nil
}

// benchE2E runs the data-plane suite and appends its results.
func benchE2E(quick bool) ([]BenchResult, error) {
	rig, err := newE2ERig()
	if err != nil {
		return nil, err
	}
	defer rig.stop()

	var out []BenchResult
	opens := 2000
	if quick {
		opens = 400
	}
	r, err := benchOpenCached(rig, opens)
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	fileMB := 8
	if quick {
		fileMB = 2
	}
	for _, ra := range []int{1, 4, 8} {
		r, err := benchReadSeq(rig, ra, fileMB, "")
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}

	rpcs := 4000
	if quick {
		rpcs = 800
	}
	single, err := benchRPC(rig, 1, rpcs, "")
	if err != nil {
		return nil, err
	}
	pipelined, err := benchRPC(rig, 8, rpcs, "")
	if err != nil {
		return nil, err
	}
	out = append(out, single, pipelined)
	return out, nil
}

// benchOpenCached measures a full Open round trip (manager redirect +
// server open) for a location the manager already has cached.
func benchOpenCached(rig *e2eRig, n int) (BenchResult, error) {
	rig.st.Put("/store/open.root", []byte("x"))
	cl := client.New(client.Config{Net: rig.net, Managers: []string{rig.mgrData}})
	defer cl.Close()
	// Warm the manager's location cache.
	f, err := cl.Open("/store/open.root")
	if err != nil {
		return BenchResult{}, err
	}
	f.Close()
	var benchErr error
	res := measure("open.cached", n, func(i int) {
		if benchErr != nil {
			return
		}
		f, err := cl.Open("/store/open.root")
		if err != nil {
			benchErr = err
			return
		}
		f.Close()
	})
	return res, benchErr
}

// benchReadSeq streams a file sequentially in 64 KiB chunks with the
// given readahead window, measuring per-Read latency and end-to-end
// throughput.
func benchReadSeq(rig *e2eRig, readahead, fileMB int, suffix string) (BenchResult, error) {
	path := fmt.Sprintf("/store/seq%d%s.root", readahead, suffix)
	data := make([]byte, fileMB<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if err := rig.st.Put(path, data); err != nil {
		return BenchResult{}, err
	}
	cl := client.New(client.Config{
		Net: rig.net, Managers: []string{rig.mgrData}, Readahead: readahead,
	})
	defer cl.Close()

	f, err := cl.Open(path)
	if err != nil {
		return BenchResult{}, err
	}
	defer f.Close()
	op := fmt.Sprintf("read.seq.ra%d%s", readahead, suffix)
	h := metrics.NewRegistry().Histogram(op)
	buf := make([]byte, 64<<10)
	// One warmup pass (open, location cache, frame pools), then timed
	// passes so percentiles come from steady-state streaming.
	const passes = 4
	var total int64
	var elapsed time.Duration
	for pass := 0; pass <= passes; pass++ {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return BenchResult{}, err
		}
		warm := pass > 0
		var passTotal int64
		start := time.Now()
		for {
			t0 := time.Now()
			n, err := f.Read(buf)
			if warm {
				h.Observe(time.Since(t0))
			}
			passTotal += int64(n)
			if err == io.EOF {
				break
			}
			if err != nil {
				return BenchResult{}, err
			}
		}
		if warm {
			elapsed += time.Since(start)
			total += passTotal
		}
		if passTotal != int64(len(data)) {
			return BenchResult{}, fmt.Errorf("%s: read %d bytes, want %d", op, passTotal, len(data))
		}
	}
	s := h.Snapshot()
	return BenchResult{
		Op: op, N: s.Count,
		P50US:     float64(s.P50.Nanoseconds()) / 1e3,
		P90US:     float64(s.P90.Nanoseconds()) / 1e3,
		P99US:     float64(s.P99.Nanoseconds()) / 1e3,
		OpsPerSec: float64(s.Count) / elapsed.Seconds(),
		MBPerSec:  float64(total) / (1 << 20) / elapsed.Seconds(),
	}, nil
}

// benchRPC issues n small Reads over one shared multiplexed connection
// from `streams` concurrent goroutines, measuring per-call latency.
// streams=1 is the lock-step baseline; streams=8 shows pipelining.
func benchRPC(rig *e2eRig, streams, n int, suffix string) (BenchResult, error) {
	rig.st.Put("/store/rpc.root", make([]byte, 4096))
	// Resolve and open directly at the server over one mux conn.
	mc, err := mux.Dial(rig.net, rig.srvData, mux.Options{MaxInFlight: 64})
	if err != nil {
		return BenchResult{}, err
	}
	defer mc.Close()
	reply, err := mc.Call(proto.Open{Path: "/store/rpc.root"}, 10*time.Second)
	if err != nil {
		return BenchResult{}, err
	}
	ok, isOK := reply.(proto.OpenOK)
	if !isOK {
		return BenchResult{}, fmt.Errorf("rpc bench open: %#v", reply)
	}

	op := "rpc.single" + suffix
	if streams > 1 {
		op = fmt.Sprintf("rpc.pipelined.%d%s", streams, suffix)
	}
	h := metrics.NewRegistry().Histogram(op)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		benchErr error
	)
	start := time.Now()
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/streams; i++ {
				t0 := time.Now()
				reply, err := mc.Call(proto.Read{FH: ok.FH, Off: 0, N: 512}, 10*time.Second)
				if err == nil {
					if _, isData := reply.(proto.Data); !isData {
						err = fmt.Errorf("rpc bench read: %#v", reply)
					}
				}
				if err != nil {
					mu.Lock()
					if benchErr == nil {
						benchErr = err
					}
					mu.Unlock()
					return
				}
				h.Observe(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if benchErr != nil {
		return BenchResult{}, benchErr
	}
	s := h.Snapshot()
	return BenchResult{
		Op: op, N: s.Count,
		P50US:     float64(s.P50.Nanoseconds()) / 1e3,
		P90US:     float64(s.P90.Nanoseconds()) / 1e3,
		P99US:     float64(s.P99.Nanoseconds()) / 1e3,
		OpsPerSec: float64(s.Count) / elapsed.Seconds(),
	}, nil
}
