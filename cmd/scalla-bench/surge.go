package main

// The -surge mode: the overload-protection acceptance bench (ROADMAP
// item 4, DESIGN.md §11). A data server behind real TCP sockets is
// flooded by thousands of greedy bulk readers while two probes measure
// what the scheduler promises to protect:
//
//   - a control pinger (Ping rides the strict-priority control lane):
//     its p99 must stay near idle under full surge;
//   - a single lock-step victim reader: DRR activation-at-head plus the
//     per-client guarantee slot must keep its goodput roughly flat
//     while the bulk cohort sheds.
//
// Bulk latency is allowed to degrade — gracefully, through RetryAfter
// backoff rather than unbounded queueing. The server is mux.Serve with
// the production Scheduler and a handler that sleeps 1 ms per read to
// model media access: worker occupancy is the contended resource, so
// the bench measures the scheduler's queueing decisions rather than
// the bench host's cores (client and server share one process). The
// rows land in BENCH_<date>.json next to the other suites; `-surge`
// runs the bench standalone with the queue-depth assertions CI relies
// on.

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"scalla/internal/metrics"
	"scalla/internal/mux"
	"scalla/internal/proto"
	"scalla/internal/transport"
)

// surgeScale sizes one surge run.
type surgeScale struct {
	clients int           // greedy TCP clients, two pipelined streams each
	queue   int           // scheduler QueueLimit
	retry   int           // RetryAfterMillis (paces the shed-retry storm)
	idle    time.Duration // unloaded measurement window
	surge   time.Duration // loaded measurement window
	warm    time.Duration // backlog-forming delay before measuring
}

func surgeScaleFor(quick bool) surgeScale {
	if quick {
		return surgeScale{clients: 256, queue: 128, retry: 50,
			idle: 300 * time.Millisecond, surge: 700 * time.Millisecond,
			warm: 200 * time.Millisecond}
	}
	return surgeScale{clients: 10_000, queue: 2048, retry: 250,
		idle: time.Second, surge: 3 * time.Second, warm: 1500 * time.Millisecond}
}

// surgeService is the simulated per-read media-access time.
const surgeService = time.Millisecond

// surgeReadSize is the bulk request size (drives DRR cost accounting);
// replies carry surgePayload bytes so a single-core bench host is not
// throughput-bound on memcpy.
const (
	surgeReadSize = 64 << 10
	surgePayload  = 8 << 10
)

// raiseFDLimit lifts RLIMIT_NOFILE toward need (each surge client costs
// two descriptors: one per side of its socket) and returns the limit
// actually in force.
func raiseFDLimit(need uint64) uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 1024
	}
	if rl.Cur >= need {
		return rl.Cur
	}
	want := syscall.Rlimit{Cur: need, Max: rl.Max}
	if want.Max < need {
		want.Max = need // needs privilege; harmless to try
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err != nil {
		return rl.Cur
	}
	return need
}

// surgeRow summarizes one histogram over a measurement window.
func surgeRow(op string, h *metrics.Histogram, window time.Duration, bytesPerOp int) BenchResult {
	s := h.Snapshot()
	r := BenchResult{
		Op: op, N: s.Count,
		P50US:     float64(s.P50.Nanoseconds()) / 1e3,
		P90US:     float64(s.P90.Nanoseconds()) / 1e3,
		P99US:     float64(s.P99.Nanoseconds()) / 1e3,
		OpsPerSec: float64(s.Count) / window.Seconds(),
	}
	if bytesPerOp > 0 {
		r.MBPerSec = r.OpsPerSec * float64(bytesPerOp) / 1e6
	}
	return r
}

// surgeWaitRow summarizes a scheduler lane-wait snapshot as a row
// (latency percentiles only; no meaningful window for a rate).
func surgeWaitRow(op string, s metrics.Snapshot) BenchResult {
	return BenchResult{
		Op: op, N: s.Count,
		P50US: float64(s.P50.Nanoseconds()) / 1e3,
		P90US: float64(s.P90.Nanoseconds()) / 1e3,
		P99US: float64(s.P99.Nanoseconds()) / 1e3,
	}
}

// surgeServer is the flood target: the production Scheduler in front of
// a handler with a fixed media-access time per read.
type surgeServer struct {
	sched   *mux.Scheduler
	lis     transport.Listener
	payload []byte
	wg      sync.WaitGroup
}

func startSurgeServer(net transport.Network, sc surgeScale) (*surgeServer, error) {
	s := &surgeServer{
		sched: mux.NewScheduler(mux.SchedConfig{
			QueueLimit:       sc.queue,
			RetryAfterMillis: sc.retry,
			Seed:             1,
		}),
		payload: make([]byte, surgePayload),
	}
	rand.New(rand.NewSource(1)).Read(s.payload)
	lis, err := net.Listen("127.0.0.1:0")
	if err != nil {
		s.sched.Close()
		return nil, err
	}
	s.lis = lis
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				mux.Serve(conn, s.handle, mux.ServeOptions{Sched: s.sched})
			}()
		}
	}()
	return s, nil
}

func (s *surgeServer) handle(m proto.Message, r mux.Responder) proto.Message {
	switch q := m.(type) {
	case proto.Open:
		return proto.OpenOK{FH: 1, Size: 1 << 20}
	case proto.Read:
		time.Sleep(surgeService) // simulated media access
		return proto.Data{FH: q.FH, Bytes: s.payload}
	case proto.Ping:
		return proto.Pong{}
	default:
		return proto.Err{Code: proto.EInval, Msg: "surge: unexpected"}
	}
}

func (s *surgeServer) close() {
	s.lis.Close()
	s.sched.Close()
	s.wg.Wait()
}

// surgeOpen opens the hot file over conn, retrying through sheds.
func surgeOpen(conn *mux.Conn) (uint64, error) {
	for {
		reply, err := conn.Call(proto.Open{Path: "/surge/hot.root"}, 30*time.Second)
		if err != nil {
			return 0, err
		}
		switch m := reply.(type) {
		case proto.OpenOK:
			return m.FH, nil
		case proto.RetryAfter:
			time.Sleep(time.Duration(m.Millis) * time.Millisecond)
		default:
			return 0, fmt.Errorf("surge open: %#v", reply)
		}
	}
}

// surgePing drives the control-lane probe for one window: a Ping every
// couple of milliseconds, each RTT observed into h.
func surgePing(conn *mux.Conn, window time.Duration, h *metrics.Histogram) error {
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		reply, err := conn.Call(proto.Ping{}, 30*time.Second)
		if err != nil {
			return err
		}
		if _, ok := reply.(proto.Pong); !ok {
			return fmt.Errorf("surge ping: %#v", reply)
		}
		h.Observe(time.Since(t0))
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// surgeVictim runs the lock-step reader for one window: sequential
// reads, one in flight, each completion observed into h.
func surgeVictim(conn *mux.Conn, fh uint64, window time.Duration, h *metrics.Histogram) error {
	deadline := time.Now().Add(window)
	var off int64
	for time.Now().Before(deadline) {
		t0 := time.Now()
		reply, err := conn.Call(proto.Read{FH: fh, Off: off, N: surgeReadSize}, 30*time.Second)
		if err != nil {
			return err
		}
		switch m := reply.(type) {
		case proto.Data:
			h.Observe(time.Since(t0))
			off = (off + surgeReadSize) % (1 << 20)
		case proto.RetryAfter:
			// The guarantee slot should spare the sparse victim; honor
			// the verdict anyway so the loop keeps its one-in-flight
			// shape.
			time.Sleep(time.Duration(m.Millis) * time.Millisecond)
		default:
			return fmt.Errorf("surge victim read: %#v", reply)
		}
	}
	return nil
}

// runSurge executes the surge bench and returns its rows. With check
// set it also enforces the CI invariants: the data queue never exceeded
// its configured bound (QueueLimit plus one guarantee slot per client),
// the scheduler shed under surge rather than queueing without limit,
// and everything drained on shutdown.
func runSurge(quick, check bool) ([]BenchResult, error) {
	sc := surgeScaleFor(quick)
	need := uint64(2*sc.clients + 512)
	if got := raiseFDLimit(need); got < need {
		scaled := int((got - 512) / 2)
		fmt.Fprintf(os.Stderr, "scalla-bench: fd limit %d caps the surge at %d clients (wanted %d)\n",
			got, scaled, sc.clients)
		sc.clients = scaled
	}
	if sc.clients < 8 {
		return nil, fmt.Errorf("surge: fd limit leaves only %d clients; nothing to measure", sc.clients)
	}
	tag := fmt.Sprintf("%dc", sc.clients)

	net := transport.TCP()
	srv, err := startSurgeServer(net, sc)
	if err != nil {
		return nil, err
	}
	defer srv.close()
	addr := srv.lis.Addr()

	dialProbe := func() (*mux.Conn, uint64, error) {
		conn, err := mux.Dial(net, addr, mux.Options{MaxInFlight: 1})
		if err != nil {
			return nil, 0, err
		}
		fh, err := surgeOpen(conn)
		if err != nil {
			conn.Close()
			return nil, 0, err
		}
		return conn, fh, nil
	}
	ctlConn, _, err := dialProbe()
	if err != nil {
		return nil, err
	}
	defer ctlConn.Close()
	victimConn, victimFH, err := dialProbe()
	if err != nil {
		return nil, err
	}
	defer victimConn.Close()

	// Phase 1: idle baselines.
	ctlIdle, victimIdle := &metrics.Histogram{}, &metrics.Histogram{}
	if err := surgePing(ctlConn, sc.idle, ctlIdle); err != nil {
		return nil, err
	}
	if err := surgeVictim(victimConn, victimFH, sc.idle, victimIdle); err != nil {
		return nil, err
	}

	// Phase 2: raise the surge. Each greedy client is one TCP connection
	// running two pipelined read streams that honor RetryAfter verdicts
	// with the hinted backoff — the cohort that keeps requests queued,
	// eats the sheds (the victim's guarantee slot exempts it), and must
	// degrade gracefully.
	var (
		stopFlood atomic.Bool
		measuring atomic.Bool
		dialSem   = make(chan struct{}, 256)
		bulk      = &metrics.Histogram{}
		floodWG   sync.WaitGroup
		dialErrs  atomic.Int64
		up        atomic.Int64
	)
	for i := 0; i < sc.clients; i++ {
		floodWG.Add(1)
		go func(i int) {
			defer floodWG.Done()
			dialSem <- struct{}{}
			conn, err := mux.Dial(net, addr, mux.Options{MaxInFlight: 4})
			if err != nil {
				<-dialSem
				dialErrs.Add(1)
				return
			}
			fh, err := surgeOpen(conn)
			<-dialSem
			if err != nil {
				conn.Close()
				dialErrs.Add(1)
				return
			}
			defer conn.Close()
			up.Add(1)
			var streams sync.WaitGroup
			for st := 0; st < 2; st++ {
				streams.Add(1)
				go func(st int) {
					defer streams.Done()
					rng := rand.New(rand.NewSource(int64(2*i + st)))
					for !stopFlood.Load() {
						off := int64(rng.Intn(1<<20-surgeReadSize)) &^ (surgeReadSize - 1)
						t0 := time.Now()
						reply, err := conn.Call(proto.Read{FH: fh, Off: off, N: surgeReadSize}, 30*time.Second)
						if err != nil {
							return
						}
						switch m := reply.(type) {
						case proto.Data:
							if measuring.Load() {
								bulk.Observe(time.Since(t0))
							}
						case proto.RetryAfter:
							time.Sleep(time.Duration(m.Millis) * time.Millisecond)
						default:
							return
						}
					}
				}(st)
			}
			streams.Wait()
		}(i)
	}
	time.Sleep(sc.warm)

	// Phase 3: measure under load. Control probe and victim run
	// concurrently against the flooded scheduler.
	preStats := srv.sched.Stats()
	measuring.Store(true)
	ctlLoaded, victimLoaded := &metrics.Histogram{}, &metrics.Histogram{}
	var pingErr error
	var pingWG sync.WaitGroup
	pingWG.Add(1)
	go func() {
		defer pingWG.Done()
		pingErr = surgePing(ctlConn, sc.surge, ctlLoaded)
	}()
	victimErr := surgeVictim(victimConn, victimFH, sc.surge, victimLoaded)
	pingWG.Wait()
	measuring.Store(false)
	postStats := srv.sched.Stats()
	stopFlood.Store(true)
	floodWG.Wait()
	if pingErr != nil {
		return nil, fmt.Errorf("surge control probe: %w", pingErr)
	}
	if victimErr != nil {
		return nil, fmt.Errorf("surge victim: %w", victimErr)
	}
	if failed := dialErrs.Load(); failed > int64(sc.clients/10) {
		return nil, fmt.Errorf("surge: %d of %d greedy dials failed (%d up)", failed, sc.clients, up.Load())
	}

	shedDelta := postStats.Shed - preStats.Shed
	rows := []BenchResult{
		surgeRow("surge.ctl.idle", ctlIdle, sc.idle, 0),
		surgeRow("surge.ctl."+tag, ctlLoaded, sc.surge, 0),
		surgeRow("surge.victim.idle", victimIdle, sc.idle, surgePayload),
		surgeRow("surge.victim."+tag, victimLoaded, sc.surge, surgePayload),
		surgeRow("surge.bulk."+tag, bulk, sc.surge, surgePayload),
	}
	rows = append(rows, BenchResult{
		Op: "surge.shed." + tag, N: shedDelta,
		OpsPerSec: float64(shedDelta) / sc.surge.Seconds(),
	})
	// Server-side enqueue→dispatch waits per lane, over the whole run.
	// The client-observed rows above include the bench process's own
	// goroutine-scheduling delays (tens of thousands of runnable
	// goroutines share the host with the server); these two are the
	// scheduler's own accounting and isolate what it controls: how long
	// a frame sat in its lane. Control staying flat while data grows by
	// orders of magnitude is the priority-lane claim.
	rows = append(rows,
		surgeWaitRow("surge.ctl_wait."+tag, postStats.ControlWait),
		surgeWaitRow("surge.data_wait."+tag, postStats.DataWait),
	)

	if check {
		// The scheduler bound is QueueLimit plus one guarantee slot per
		// registered client (plus the two probes).
		if bound := sc.queue + sc.clients + 2; postStats.MaxQueuedData > bound {
			return rows, fmt.Errorf("surge: data queue reached %d, bound %d (limit %d + %d clients)",
				postStats.MaxQueuedData, bound, sc.queue, sc.clients+2)
		}
		if shedDelta == 0 {
			return rows, fmt.Errorf("surge: %d clients never tripped the %d-deep queue; bench not exercising overload",
				sc.clients, sc.queue)
		}
		// Drop the probes first: close() waits for the per-connection
		// serve loops, which only exit when their sockets die.
		ctlConn.Close()
		victimConn.Close()
		srv.close()
		if st := srv.sched.Stats(); st.QueuedData != 0 || st.InFlight != 0 {
			return rows, fmt.Errorf("surge: post-close scheduler not drained: %+v", st)
		}
	}
	return rows, nil
}
