package main

import (
	"fmt"
	"io"
	"net"

	"scalla/internal/obs"
)

// mon tails the summary-monitoring streams of one or more daemons: it
// binds a UDP socket on listenAddr (each daemon's -summary udp: target)
// and prints every frame that arrives — one compact line per frame, or
// the raw JSON with -raw. It runs until the process is interrupted.
func mon(listenAddr string, raw bool, w io.Writer) error {
	pc, err := net.ListenPacket("udp", listenAddr)
	if err != nil {
		return fmt.Errorf("mon: %w", err)
	}
	defer pc.Close()
	fmt.Fprintf(w, "mon: listening on %s (point daemons at -summary udp:<this host>:<port>)\n", pc.LocalAddr())
	buf := make([]byte, 64<<10)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return fmt.Errorf("mon: %w", err)
		}
		if raw {
			fmt.Fprintf(w, "%s\n", buf[:n])
			continue
		}
		f, err := obs.ParseFrame(buf[:n])
		if err != nil {
			fmt.Fprintf(w, "mon: %s sent an unreadable frame: %v\n", from, err)
			continue
		}
		fmt.Fprintln(w, f.String())
	}
}
