package main

import (
	"bufio"
	"io"
	"strings"
	"testing"
	"time"

	"scalla/internal/obs"
)

// TestMonPrintsFrames runs mon against an ephemeral UDP port, streams it
// a summary frame the way a daemon would, and checks the printed line.
func TestMonPrintsFrames(t *testing.T) {
	pr, pw := io.Pipe()
	go mon("127.0.0.1:0", false, pw) // exits (with an error) when the test process does

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	// mon announces its bound address first; that is how we find it.
	var addr string
	select {
	case banner := <-lines:
		_, rest, ok := strings.Cut(banner, "listening on ")
		if !ok {
			t.Fatalf("unexpected banner %q", banner)
		}
		addr, _, _ = strings.Cut(rest, " ")
	case <-time.After(5 * time.Second):
		t.Fatal("mon never announced its address")
	}

	sink, err := obs.NewUDPSink(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	frame := obs.Frame{
		V: obs.FrameVersion, Node: "mgr", Role: "manager", Seq: 7,
		Cache:   &obs.CacheSummary{Entries: 2, Buckets: 89, Hits: 1},
		Cluster: &obs.ClusterSummary{Members: 3, Online: 3},
	}

	// UDP is lossy even on loopback; resend until mon prints the line.
	deadline := time.After(5 * time.Second)
	for {
		if err := sink.Emit(frame.Encode()); err != nil {
			t.Fatal(err)
		}
		select {
		case line := <-lines:
			if !strings.Contains(line, "mgr/manager #7") || !strings.Contains(line, "cache=2/89") {
				t.Fatalf("mon printed %q", line)
			}
			// A garbage datagram must be reported, not kill the loop.
			if err := sink.Emit([]byte("not a frame")); err != nil {
				t.Fatal(err)
			}
			select {
			case bad := <-lines:
				if !strings.Contains(bad, "unreadable frame") {
					t.Fatalf("garbage datagram printed %q", bad)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("mon never reported the garbage datagram")
			}
			return
		case <-deadline:
			t.Fatal("mon never printed the frame")
		case <-time.After(50 * time.Millisecond):
		}
	}
}
