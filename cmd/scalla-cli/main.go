// scalla-cli is the client tool for a running Scalla cluster.
//
//	scalla-cli -mgr host:1094 locate /store/f.root
//	scalla-cli -mgr host:1094 cat /store/f.root
//	scalla-cli -mgr host:1094 put /store/new.root local.bin
//	scalla-cli -mgr host:1094 stat /store/f.root
//	scalla-cli -mgr host:1094 rm /store/f.root
//	scalla-cli -mgr host:1094 prepare /store/a /store/b
//	scalla-cli -servers s1:3094,s2:3094 ls /store
//	scalla-cli -servers s1:3094,s2:3094 tree /
//	scalla-cli mon :9931          # tail daemons' summary streams (UDP)
//	scalla-cli -raw mon :9931     # same, raw JSON frames
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"scalla/internal/client"
	"scalla/internal/nsd"
	"scalla/internal/proto"
	"scalla/internal/transport"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scalla-cli [-mgr addr[,addr]] [-servers addrs] <locate|cat|put|stat|rm|prepare|status|ls|tree|mon> args...")
	os.Exit(2)
}

func main() {
	mgr := flag.String("mgr", "localhost:1094", "manager data address(es), comma separated")
	servers := flag.String("servers", "", "server data addresses for ls/tree (namespace ops)")
	raw := flag.Bool("raw", false, "mon: print raw JSON frames instead of one-liners")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	net := transport.TCP()

	switch args[0] {
	case "mon":
		need(args, 2)
		if err := mon(args[1], *raw, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	case "ls", "tree":
		if *servers == "" {
			log.Fatal("scalla-cli: ls/tree need -servers (the namespace is served by the NSD, not the manager)")
		}
		d := nsd.New(net, splitList(*servers)...)
		prefix := "/"
		if len(args) > 1 {
			prefix = args[1]
		}
		if args[0] == "tree" {
			fmt.Print(d.Tree(prefix))
			return
		}
		for _, e := range d.List(prefix) {
			state := "online"
			if !e.Online {
				state = "offline"
			}
			fmt.Printf("%10d  %-7s  %s\n", e.Size, state, e.Path)
		}
		return
	}

	cl := client.New(client.Config{Net: net, Managers: splitList(*mgr)})
	defer cl.Close()

	switch args[0] {
	case "locate":
		need(args, 2)
		addr, err := cl.Locate(args[1], false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(addr)
	case "cat":
		need(args, 2)
		data, err := cl.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	case "put":
		need(args, 3)
		data, err := os.ReadFile(args[2])
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.WriteFile(args[1], data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", len(data), args[1])
	case "stat":
		need(args, 2)
		st, err := cl.Stat(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d bytes, online=%v\n", args[1], st.Size, st.Online)
	case "rm":
		need(args, 2)
		if err := cl.Unlink(args[1]); err != nil {
			log.Fatal(err)
		}
	case "prepare":
		need(args, 2)
		if err := cl.Prepare(args[1:], false); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prepare queued for %d files\n", len(args)-1)
	case "status":
		// Ping the manager(s) and any -servers for liveness/load.
		targets := splitList(*mgr)
		targets = append(targets, splitList(*servers)...)
		for _, addr := range targets {
			load, free, err := ping(net, addr)
			if err != nil {
				fmt.Printf("%-24s DOWN (%v)\n", addr, err)
				continue
			}
			fmt.Printf("%-24s up  load=%-4d free=%d\n", addr, load, free)
		}
	default:
		usage()
	}
}

// ping sends a data-plane Ping and returns the Pong's load/free.
func ping(net transport.Network, addr string) (load uint32, free int64, err error) {
	c, err := net.Dial(addr)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	if err := c.Send(proto.Marshal(proto.Ping{})); err != nil {
		return 0, 0, err
	}
	frame, err := c.Recv()
	if err != nil {
		return 0, 0, err
	}
	m, err := proto.Unmarshal(frame)
	if err != nil {
		return 0, 0, err
	}
	pong, ok := m.(proto.Pong)
	if !ok {
		return 0, 0, fmt.Errorf("unexpected reply %T", m)
	}
	return pong.Load, pong.Free, nil
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
