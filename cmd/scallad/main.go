// scallad runs one Scalla node — the paper's xrootd+cmsd pair — over
// TCP. A cluster is assembled by starting one manager and pointing
// servers (and optional supervisors) at its control port.
//
// Manager:
//
//	scallad -role manager -name mgr -data :1094 -ctl :1213
//
// Supervisor:
//
//	scallad -role supervisor -name sup1 -data :2094 -ctl :2213 \
//	        -parents mgrhost:1213
//
// Server exporting /store, preloading files from a directory:
//
//	scallad -role server -name srv1 -data :3094 \
//	        -parents mgrhost:1213 -exports /store -preload ./data
//
// Observability: -admin serves /statusz, /metricsz, and /tracez over
// HTTP; -summary streams one JSON summary frame per -summary-every to a
// UDP/TCP collector (tail it with `scalla-cli mon`); -trace N enables
// request tracing into a ring of N spans:
//
//	scallad -role manager -name mgr -data :1094 -ctl :1213 \
//	        -admin :8081 -summary udp:mon-host:9931 -trace 512
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"scalla/internal/cmsd"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

func main() {
	role := flag.String("role", "server", "manager | supervisor | server")
	name := flag.String("name", "", "stable node identity (required)")
	data := flag.String("data", ":1094", "data-plane listen address")
	ctl := flag.String("ctl", "", "control-plane listen address (manager/supervisor)")
	parents := flag.String("parents", "", "comma-separated parent control addresses")
	exports := flag.String("exports", "/", "comma-separated exported path prefixes")
	preload := flag.String("preload", "", "directory whose files seed the store (server role)")
	readOnly := flag.Bool("readonly", false, "refuse writes (server role)")
	fullDelay := flag.Duration("full-delay", 5*time.Second, "full delay (paper default 5s)")
	fastPeriod := flag.Duration("fast-period", 133*time.Millisecond, "fast response window")
	lifetime := flag.Duration("lifetime", 8*time.Hour, "location object lifetime Lt")
	stageDelay := flag.Duration("stage-delay", 2*time.Second, "simulated MSS staging delay")
	storeRoot := flag.String("store-root", "", "disk-backed store root directory (server role; empty = in-memory)")
	mssDir := flag.String("mss-dir", "", "MSS staging directory (default <store-root>.mss)")
	fsync := flag.String("fsync", "interval", "disk fsync policy: never | interval | always (see STORAGE.md)")
	fsyncEvery := flag.Duration("fsync-every", time.Second, "flush period for -fsync=interval")
	admin := flag.String("admin", "", "admin/status HTTP address serving /statusz /metricsz /tracez")
	summary := flag.String("summary", "", "summary-stream target: udp:host:port, tcp:host:port, or - for stdout")
	summaryEvery := flag.Duration("summary-every", 10*time.Second, "summary frame period")
	traceCap := flag.Int("trace", 0, "enable request tracing with a ring of this many spans")
	verbose := flag.Bool("v", false, "log diagnostics")
	flag.Parse()

	if *name == "" {
		log.Fatal("scallad: -name is required")
	}
	var r proto.Role
	switch *role {
	case "manager":
		r = proto.RoleManager
	case "supervisor":
		r = proto.RoleSupervisor
	case "server":
		r = proto.RoleServer
	default:
		log.Fatalf("scallad: unknown role %q", *role)
	}

	cfg := cmsd.NodeConfig{
		Name: *name, Role: r,
		DataAddr: *data, CtlAddr: *ctl,
		Prefixes: splitList(*exports),
		// Counted so the summary stream carries the node's frame/byte
		// totals (the transport section of each frame).
		Net:      transport.Counting(transport.TCP()),
		ReadOnly: *readOnly,
	}
	if *traceCap > 0 {
		cfg.Tracer = obs.NewTracer(*traceCap, nil)
		cfg.Tracer.SetEnabled(true)
	}
	if *summary != "" {
		sink, err := summarySink(*summary)
		if err != nil {
			log.Fatalf("scallad: %v", err)
		}
		cfg.Summary = sink
		cfg.SummaryEvery = *summaryEvery
	}
	if *parents != "" {
		cfg.Parents = splitList(*parents)
	}
	if r != proto.RoleServer {
		cfg.Core = cmsd.Config{FullDelay: *fullDelay}
		cfg.Core.Queue.Period = *fastPeriod
		cfg.Core.Cache.Lifetime = *lifetime
		if cfg.CtlAddr == "" {
			log.Fatal("scallad: redirector roles require -ctl")
		}
	} else {
		st, err := store.Open(store.Config{
			Root:       *storeRoot,
			MSSDir:     *mssDir,
			Fsync:      store.FsyncPolicy(*fsync),
			FsyncEvery: *fsyncEvery,
			StageDelay: *stageDelay,
		})
		if err != nil {
			log.Fatalf("scallad: open store: %v", err)
		}
		defer st.Close()
		if *preload != "" {
			if err := loadDir(st, *preload, splitList(*exports)[0]); err != nil {
				log.Fatalf("scallad: preload: %v", err)
			}
		}
		cfg.Store = st
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	node, err := cmsd.NewNode(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	if *admin != "" {
		l, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("scallad: admin listen: %v", err)
		}
		defer l.Close()
		go http.Serve(l, node.AdminHandler())
		log.Printf("scallad: admin endpoint on http://%s/statusz", l.Addr())
	}
	log.Printf("scallad: %s %q up (data %s ctl %s, exports %s)",
		*role, *name, *data, *ctl, *exports)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("scallad: shutting down")
	node.Stop()
}

// summarySink builds the sink a -summary target names.
func summarySink(target string) (obs.Sink, error) {
	switch {
	case target == "-":
		return obs.NewWriterSink(os.Stdout), nil
	case strings.HasPrefix(target, "udp:"):
		return obs.NewUDPSink(strings.TrimPrefix(target, "udp:"))
	case strings.HasPrefix(target, "tcp:"):
		return obs.NewTCPSink(strings.TrimPrefix(target, "tcp:")), nil
	default:
		return nil, fmt.Errorf("bad -summary target %q (want udp:host:port, tcp:host:port, or -)", target)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// loadDir seeds the store with every regular file under dir, placed
// beneath the first exported prefix.
func loadDir(st *store.Store, dir, prefix string) error {
	return filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		key := prefix + "/" + filepath.ToSlash(rel)
		if err := st.Put(key, data); err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		return nil
	})
}
