// scalla-pcache runs one edge proxy-cache daemon over TCP: it speaks
// the client protocol toward an origin federation's managers and the
// server protocol toward local clients, absorbing repeat opens and hot
// reads at the edge (internal/pcache).
//
// A farm points its clients at the proxy instead of the origin
// managers; nothing else changes:
//
//	scalla-pcache -name edge0 -data :1094 -origins mgrhost:1094
//
// Tune the data cache (block granularity, capacity, lifetime) and the
// origin readahead window:
//
//	scalla-pcache -name edge0 -data :1094 -origins mgrhost:1094 \
//	        -block 64KiB=65536 -cache-bytes 268435456 -block-lifetime 10m \
//	        -readahead 4
//
// Observability mirrors scallad: -admin serves /statusz, /metricsz,
// and /tracez; -summary streams JSON summary frames (with the pcache
// hit/miss/origin section) to a collector; -trace N records spans:
//
//	scalla-pcache -name edge0 -data :1094 -origins mgrhost:1094 \
//	        -admin :8082 -summary udp:mon-host:9931 -trace 512
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scalla/internal/obs"
	"scalla/internal/pcache"
	"scalla/internal/transport"
)

func main() {
	name := flag.String("name", "pcache", "proxy identity in summary frames")
	data := flag.String("data", ":1094", "data-plane listen address (clients connect here)")
	origins := flag.String("origins", "", "comma-separated origin manager data addresses (required)")
	block := flag.Int("block", pcache.DefaultBlockSize, "data-cache block size in bytes")
	cacheBytes := flag.Int64("cache-bytes", pcache.DefaultCacheBytes, "resident block data cap in bytes")
	blockLifetime := flag.Duration("block-lifetime", 10*time.Minute, "block age-out via the eviction windows")
	locLifetime := flag.Duration("loc-lifetime", 8*time.Hour, "location object lifetime Lt")
	readahead := flag.Int("readahead", 4, "blocks fetched from origin per miss")
	workers := flag.Int("workers", 8, "concurrent dispatch per downstream connection")
	rpcTimeout := flag.Duration("rpc-timeout", 15*time.Second, "one origin exchange bound")
	admin := flag.String("admin", "", "admin/status HTTP address serving /statusz /metricsz /tracez")
	summary := flag.String("summary", "", "summary-stream target: udp:host:port, tcp:host:port, or - for stdout")
	summaryEvery := flag.Duration("summary-every", 10*time.Second, "summary frame period")
	traceCap := flag.Int("trace", 0, "enable request tracing with a ring of this many spans")
	verbose := flag.Bool("v", false, "log diagnostics")
	flag.Parse()

	if *origins == "" {
		log.Fatal("scalla-pcache: -origins is required")
	}
	cfg := pcache.Config{
		// Counted so summary frames carry the proxy's frame/byte totals.
		Net:             transport.Counting(transport.TCP()),
		Addr:            *data,
		Origins:         splitList(*origins),
		Name:            *name,
		BlockSize:       *block,
		CacheBytes:      *cacheBytes,
		BlockLifetime:   *blockLifetime,
		LocLifetime:     *locLifetime,
		OriginReadahead: *readahead,
		Workers:         *workers,
		RPCTimeout:      *rpcTimeout,
	}
	if *traceCap > 0 {
		cfg.Tracer = obs.NewTracer(*traceCap, nil)
		cfg.Tracer.SetEnabled(true)
	}
	if *summary != "" {
		sink, err := summarySink(*summary)
		if err != nil {
			log.Fatalf("scalla-pcache: %v", err)
		}
		cfg.Summary = sink
		cfg.SummaryEvery = *summaryEvery
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	p := pcache.New(cfg)
	if err := p.Start(); err != nil {
		log.Fatal(err)
	}
	if *admin != "" {
		l, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("scalla-pcache: admin listen: %v", err)
		}
		defer l.Close()
		go http.Serve(l, p.AdminHandler())
		log.Printf("scalla-pcache: admin endpoint on http://%s/statusz", l.Addr())
	}
	log.Printf("scalla-pcache: %q up (data %s, origins %s, cache %d MiB / %d KiB blocks)",
		*name, *data, *origins, *cacheBytes>>20, *block>>10)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("scalla-pcache: shutting down")
	p.Close()
}

// summarySink builds the sink a -summary target names.
func summarySink(target string) (obs.Sink, error) {
	switch {
	case target == "-":
		return obs.NewWriterSink(os.Stdout), nil
	case strings.HasPrefix(target, "udp:"):
		return obs.NewUDPSink(strings.TrimPrefix(target, "udp:"))
	case strings.HasPrefix(target, "tcp:"):
		return obs.NewTCPSink(strings.TrimPrefix(target, "tcp:")), nil
	default:
		return nil, fmt.Errorf("bad -summary target %q (want udp:host:port, tcp:host:port, or -)", target)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
