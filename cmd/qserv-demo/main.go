// qserv-demo runs the full Qserv-over-Scalla stack in one process (or
// against an external manager over TCP) and executes a query workload,
// printing per-phase timings — a runnable version of paper Section IV-B.
//
//	qserv-demo -workers 8 -chunks 32 -rows 10000 \
//	           -query "COUNT WHERE mag < 20"
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/qserv"
	"scalla/internal/respq"
	"scalla/internal/transport"
)

func main() {
	workers := flag.Int("workers", 4, "worker count")
	chunks := flag.Int("chunks", 16, "catalog chunk count")
	rows := flag.Int("rows", 5000, "rows per chunk")
	query := flag.String("query", "COUNT WHERE mag < 20", "query to run")
	repeat := flag.Int("repeat", 3, "times to run the query")
	flag.Parse()

	net := transport.NewInProc(transport.InProcConfig{})
	mgr, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: "mgr:data", CtlAddr: "mgr:ctl", Net: net,
		Core: cmsd.Config{
			Cache:     cache.Config{},
			Queue:     respq.Config{Period: 40 * time.Millisecond},
			FullDelay: 300 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatal(err)
	}
	defer mgr.Stop()

	start := time.Now()
	cs := make([]*qserv.Chunk, *chunks)
	for i := range cs {
		cs[i] = qserv.GenChunk(i, *chunks, *rows, 20120521)
	}
	fmt.Printf("catalog: %d chunks x %d rows generated in %v\n",
		*chunks, *rows, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	var ws []*qserv.Worker
	for w := 0; w < *workers; w++ {
		var mine []*qserv.Chunk
		for ci := w; ci < *chunks; ci += *workers {
			mine = append(mine, cs[ci])
		}
		wk, err := qserv.NewWorker(qserv.WorkerConfig{
			Name: fmt.Sprintf("worker%02d", w), Net: net,
			Parents: []string{"mgr:ctl"}, Chunks: mine,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer wk.Stop()
		ws = append(ws, wk)
	}
	for mgr.Core().Table().Count() < *workers {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("workers: %d registered (prefix login only) in %v\n",
		*workers, time.Since(start).Round(time.Millisecond))

	master := qserv.NewMaster(qserv.MasterConfig{
		Net: net, Managers: []string{"mgr:data"},
		PollInterval: 10 * time.Millisecond,
	})
	defer master.Close()

	all := make([]int, *chunks)
	for i := range all {
		all[i] = i
	}
	for i := 0; i < *repeat; i++ {
		start = time.Now()
		res, err := master.Query(*query, all)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %q -> count=%d value=%.4f rows=%d in %v\n",
			i+1, *query, res.Count, res.Value, len(res.Rows),
			time.Since(start).Round(time.Millisecond))
	}
}
