// scalla-local boots a complete Scalla cluster over TCP loopback in one
// process — a manager plus N data servers — and blocks until
// interrupted. Handy for poking at a live cluster with scalla-cli:
//
//	scalla-local -servers 4 &
//	scalla-cli -mgr localhost:1094 put /store/x local.bin
//	scalla-cli -mgr localhost:1094 locate /store/x
//	scalla-cli -servers localhost:10000,localhost:10001 ls /
package main

import (
	"flag"
	"fmt"
	"log"
	stdnet "net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/store"
	"scalla/internal/transport"
)

func main() {
	servers := flag.Int("servers", 4, "number of data servers")
	mgrData := flag.String("mgr-data", "127.0.0.1:1094", "manager data address")
	mgrCtl := flag.String("mgr-ctl", "127.0.0.1:1213", "manager control address")
	basePort := flag.Int("base-port", 10000, "first server data port")
	fullDelay := flag.Duration("full-delay", time.Second, "full delay")
	stageDelay := flag.Duration("stage-delay", 2*time.Second, "simulated staging delay")
	storeRoot := flag.String("store-root", "", "disk-backed store root; each server gets <root>/srvN (empty = in-memory)")
	fsync := flag.String("fsync", "interval", "disk fsync policy: never | interval | always (see STORAGE.md)")
	fsyncEvery := flag.Duration("fsync-every", time.Second, "flush period for -fsync=interval")
	admin := flag.String("admin", "", "manager admin/status HTTP address (/statusz /metricsz /tracez)")
	summary := flag.String("summary", "", "manager summary-stream UDP target (host:port)")
	summaryEvery := flag.Duration("summary-every", 5*time.Second, "summary frame period")
	flag.Parse()

	net := transport.Counting(transport.TCP())
	mgrCfg := cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: *mgrData, CtlAddr: *mgrCtl, Net: net,
		Core: cmsd.Config{
			Cache:     cache.Config{},
			Queue:     respq.Config{},
			FullDelay: *fullDelay,
		},
		Tracer: obs.NewTracer(0, nil),
	}
	if *summary != "" {
		sink, err := obs.NewUDPSink(*summary)
		if err != nil {
			log.Fatal(err)
		}
		mgrCfg.Summary = sink
		mgrCfg.SummaryEvery = *summaryEvery
	}
	mgr, err := cmsd.NewNode(mgrCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatal(err)
	}
	defer mgr.Stop()

	var nodes []*cmsd.Node
	var addrs []string
	for i := 0; i < *servers; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", *basePort+i)
		scfg := store.Config{StageDelay: *stageDelay}
		if *storeRoot != "" {
			scfg.Root = fmt.Sprintf("%s/srv%d", *storeRoot, i)
			scfg.Fsync = store.FsyncPolicy(*fsync)
			scfg.FsyncEvery = *fsyncEvery
		}
		st, err := store.Open(scfg)
		if err != nil {
			log.Fatalf("scalla-local: open store for srv%d: %v", i, err)
		}
		defer st.Close()
		srv, err := cmsd.NewNode(cmsd.NodeConfig{
			Name: fmt.Sprintf("srv%d", i), Role: proto.RoleServer,
			DataAddr: addr,
			Parents:  []string{*mgrCtl}, Prefixes: []string{"/"},
			Net:   net,
			Store: st,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
		nodes = append(nodes, srv)
		addrs = append(addrs, addr)
	}
	deadline := time.Now().Add(15 * time.Second)
	for mgr.Core().Table().Count() < *servers {
		if time.Now().After(deadline) {
			log.Fatal("scalla-local: cluster never formed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if *admin != "" {
		l, err := stdnet.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("scalla-local: admin listen: %v", err)
		}
		defer l.Close()
		go http.Serve(l, mgr.AdminHandler())
		fmt.Printf("scalla-local: admin endpoint on http://%s/statusz\n", l.Addr())
	}

	fmt.Printf("scalla-local: cluster up\n")
	fmt.Printf("  manager data : %s\n", *mgrData)
	fmt.Printf("  manager ctl  : %s\n", *mgrCtl)
	fmt.Printf("  servers      : %s\n", strings.Join(addrs, ","))
	fmt.Printf("try:\n")
	fmt.Printf("  scalla-cli -mgr %s put /store/hello README.md\n", *mgrData)
	fmt.Printf("  scalla-cli -mgr %s cat /store/hello\n", *mgrData)
	fmt.Printf("  scalla-cli -servers %s ls /\n", strings.Join(addrs, ","))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("scalla-local: shutting down")
	_ = nodes
}
