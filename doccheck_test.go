package scalla

// A revive/golint-style doc-comment check, implemented with the standard
// go/ast toolchain so CI needs no external linter. It enforces, for the
// packages listed below, that every exported identifier carries a doc
// comment whose first sentence starts with the identifier's name (or an
// article followed by it) — the convention godoc renders best. New
// packages with operator-facing APIs should be added to the list.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// docCheckedPackages are the packages whose godoc quality is enforced.
// They are the ones FAULTS.md and DESIGN.md send operators to read.
var docCheckedPackages = []string{
	"internal/transport",
	"internal/cluster",
	"internal/respq",
	"internal/faults",
	"internal/backoff",
	"internal/cache",
	"internal/proto",
	"internal/mux",
	"internal/pcache",
	"internal/store",
	"internal/obs",
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range docCheckedPackages {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			checkPackageDocs(t, dir)
		})
	}
}

func checkPackageDocs(t *testing.T, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	hasPkgDoc := false
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package ") {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			checkDecl(t, fset, decl)
		}
	}
	if !hasPkgDoc {
		t.Errorf("%s: no file carries a 'Package ...' doc comment", dir)
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		checkComment(t, fset, d.Pos(), d.Name.Name, d.Doc)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				doc := s.Doc
				if doc == nil {
					doc = d.Doc
				}
				checkComment(t, fset, s.Pos(), s.Name.Name, doc)
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					doc := s.Doc
					named := doc != nil
					if doc == nil {
						doc = d.Doc
					}
					// In a grouped const/var block, the group comment
					// covers the members; only a member's own comment
					// must lead with its name.
					if doc == nil {
						pos := fset.Position(s.Pos())
						t.Errorf("%s:%d: exported %s has no doc comment",
							pos.Filename, pos.Line, n.Name)
					} else if named || len(d.Specs) == 1 {
						checkComment(t, fset, s.Pos(), n.Name, doc)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether fn is a plain function or a method
// on an exported type; methods of unexported types are not part of the
// package's godoc surface.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	typ := fn.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr: // generic receiver
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

func checkComment(t *testing.T, fset *token.FileSet, at token.Pos, name string, doc *ast.CommentGroup) {
	t.Helper()
	pos := fset.Position(at)
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		t.Errorf("%s:%d: exported %s has no doc comment", pos.Filename, pos.Line, name)
		return
	}
	words := strings.Fields(doc.Text())
	if len(words) > 0 && (words[0] == "A" || words[0] == "An" || words[0] == "The") {
		words = words[1:]
	}
	if len(words) == 0 || words[0] != name {
		t.Errorf("%s:%d: doc comment for %s should start with %q (golint convention), got %q",
			pos.Filename, pos.Line, name, name, firstLine(doc.Text()))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
