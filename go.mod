module scalla

go 1.24
