package scalla

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"scalla/internal/backoff"
	"scalla/internal/client"
	"scalla/internal/faults"
	"scalla/internal/obs"
	"scalla/internal/transport"
)

// TestChaosProxyConvergesThroughFaults runs the federation behind an
// edge proxy cache and attacks the proxy's weak point: the origin
// changing behind its back. Files move between origin servers, get
// deleted outright, and get rewritten through the proxy, all while the
// network drops frames — and every client read must converge to
// correct bytes (or a typed error for a truly-gone file) through the
// refresh protocol, never by stalling in a full-delay miss-storm.
//
// Run it with:
//
//	go test -race -run Chaos -v .
func TestChaosProxyConvergesThroughFaults(t *testing.T) {
	seed := chaosSeed(t)
	t.Cleanup(func() {
		if t.Failed() {
			os.WriteFile("chaos-failure-seed.txt", []byte(fmt.Sprintf("%d\n", seed)), 0o644)
			t.Logf("chaos-proxy: failing seed %d written to chaos-failure-seed.txt", seed)
		}
	})
	t.Logf("chaos-proxy: seed %d", seed)

	tracer := obs.NewTracer(8192, nil)
	tracer.SetEnabled(true)
	fnet := faults.Wrap(transport.NewInProc(transport.InProcConfig{}), faults.Config{
		Seed:   seed,
		Tracer: tracer,
	})

	const (
		nServers  = 8
		nFiles    = 12
		fileBytes = 96 << 10
		fullDelay = 500 * time.Millisecond
		pingEvery = 100 * time.Millisecond
		missed    = 3
		opBudget  = 12 * time.Second
		// A miss-storm stalls a resolve by whole full-delay rounds; a
		// refresh-protocol convergence costs walk round trips plus at
		// most one flood. 8× the full delay is an ample envelope for
		// the latter and far under the former's repeated stalls.
		convergeBound = 8 * fullDelay
		settleWait    = time.Duration(missed)*pingEvery + fullDelay
	)

	c, err := StartCluster(Options{
		Servers:        nServers,
		Fanout:         8,
		Net:            fnet,
		FullDelay:      fullDelay,
		FastPeriod:     50 * time.Millisecond,
		PingInterval:   pingEvery,
		MissedPings:    missed,
		DropDelay:      2 * time.Second,
		ReconnectDelay: 25 * time.Millisecond,
		Tracer:         tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	p, err := c.StartProxy(ProxyOptions{
		Addr:       "edge:data",
		RPCTimeout: 2 * time.Second,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	cl := client.New(client.Config{
		Net:         fnet,
		Managers:    []string{p.Addr()},
		RPCTimeout:  2 * time.Second,
		RPCAttempts: 3,
		WaitBudget:  10 * time.Second,
		Retry:       backoff.Policy{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
		RetrySeed:   seed,
	})
	defer cl.Close()

	rng := rand.New(rand.NewSource(seed ^ 0xedbe))
	files := make(map[string][]byte)
	holds := make(map[string]int)
	paths := make([]string, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		path := fmt.Sprintf("/edge/f%02d", i)
		data := make([]byte, fileBytes)
		rng.Read(data)
		c.Store(i%nServers).Put(path, data)
		files[path] = data
		holds[path] = i % nServers
		paths = append(paths, path)
	}

	// readConverged drives one read through the proxy with the client's
	// prescribed recovery (refresh the edge and retry) and checks bytes.
	readConverged := func(round, path string) error {
		t.Helper()
		deadline := time.Now().Add(opBudget)
		var lastErr error
		for {
			data, err := cl.ReadFile(path)
			if err == nil {
				if !bytes.Equal(data, files[path]) {
					t.Fatalf("chaos-proxy[%s]: %s corrupted through the edge", round, path)
				}
				return nil
			}
			if !typedChaosErr(err) {
				t.Fatalf("chaos-proxy[%s]: %s failed with untyped error: %v", round, path, err)
			}
			lastErr = err
			if time.Now().After(deadline) {
				return lastErr
			}
			// Refresh flows through the proxy: it drops its own cached
			// state and re-resolves upstream before answering.
			cl.Relocate(path, false, "")
		}
	}

	// Warm the edge, then verify a repeat sweep is absorbed there.
	for _, path := range paths {
		if err := readConverged("warmup", path); err != nil {
			t.Fatalf("chaos-proxy: warm-up read of %s failed: %v", path, err)
		}
	}
	base := p.Stats()
	for _, path := range paths {
		if err := readConverged("warm-sweep", path); err != nil {
			t.Fatalf("chaos-proxy: warm sweep read of %s failed: %v", path, err)
		}
	}
	if s := p.Stats(); s.OpenHits <= base.OpenHits {
		t.Fatalf("chaos-proxy: warm sweep absorbed no opens at the edge: %+v", s)
	}

	const rounds = 6
	for round := 0; round < rounds; round++ {
		switch round % 3 {
		case 0: // origin moves files behind the proxy's back
			for k := 0; k < 3; k++ {
				path := paths[rng.Intn(len(paths))]
				from := holds[path]
				to := rng.Intn(nServers)
				if to == from {
					to = (to + 1) % nServers
				}
				c.Store(to).Put(path, files[path])
				c.Store(from).Unlink(path)
				holds[path] = to
				start := time.Now()
				if err := readConverged("move", path); err != nil {
					t.Errorf("chaos-proxy[move]: %s unreadable after move: %v", path, err)
					continue
				}
				if d := time.Since(start); d > convergeBound {
					t.Errorf("chaos-proxy[move]: %s converged in %v — smells like a miss-storm (full delay %v)",
						path, d, fullDelay)
				}
			}

		case 1: // drop storm across every link, reads keep converging
			fnet.SetPlan(faults.Plan{Drop: 0.05})
			for k := 0; k < 8; k++ {
				path := paths[rng.Intn(len(paths))]
				if err := readConverged("drop-storm", path); err != nil {
					t.Errorf("chaos-proxy[drop-storm]: %s failed: %v; drops alone must always recover", path, err)
				}
			}
			fnet.SetPlan(faults.Plan{})

		case 2: // writes through the proxy invalidate its cache
			path := paths[rng.Intn(len(paths))]
			fresh := make([]byte, fileBytes/2)
			rng.Read(fresh)
			if err := cl.WriteFile(path, fresh); err != nil {
				t.Errorf("chaos-proxy[write]: write-through of %s failed: %v", path, err)
				continue
			}
			files[path] = fresh
			if err := readConverged("write", path); err != nil {
				t.Errorf("chaos-proxy[write]: %s unreadable after write-through: %v", path, err)
			}
		}
	}

	// Origin drops a file outright: the edge must surface a typed
	// not-found inside the envelope, not hang on its stale entry.
	gone := paths[rng.Intn(len(paths))]
	c.Store(holds[gone]).Unlink(gone)
	start := time.Now()
	_, err = cl.ReadFile(gone)
	if err == nil {
		// The edge may serve one last answer from pre-drop cached state;
		// the client's recovery refresh must then expose the truth.
		cl.Relocate(gone, false, "")
		_, err = cl.ReadFile(gone)
	}
	if err == nil {
		t.Errorf("chaos-proxy[drop]: %s readable after origin dropped it and a refresh", gone)
	} else if !typedChaosErr(err) {
		t.Errorf("chaos-proxy[drop]: untyped error for dropped file: %v", err)
	}
	if d := time.Since(start); d > opBudget {
		t.Errorf("chaos-proxy[drop]: missing-file verdict took %v", d)
	}
	delete(files, gone)
	paths = paths[:0]
	for path := range files {
		paths = append(paths, path)
	}

	// Crash the origin server under a hot file that has a second
	// replica; the edge must route around the corpse.
	victim := holds[paths[0]]
	second := (victim + 3) % nServers
	c.Store(second).Put(paths[0], files[paths[0]])
	dead := c.Servers[victim].DataAddr()
	fnet.Sever(dead)
	c.CrashServer(victim)
	time.Sleep(settleWait)
	start = time.Now()
	if err := readConverged("crash", paths[0]); err != nil {
		t.Errorf("chaos-proxy[crash]: %s unreadable with a live replica: %v", paths[0], err)
	} else if d := time.Since(start); d > convergeBound {
		t.Errorf("chaos-proxy[crash]: %s converged in %v — smells like a miss-storm", paths[0], d)
	}
	fnet.Heal(dead)
	if err := c.RestartServer(victim); err != nil {
		t.Fatalf("chaos-proxy[crash]: restart of server %d failed: %v", victim, err)
	}
	time.Sleep(settleWait)

	// Healed final sweep: every surviving file reads back intact.
	for _, path := range paths {
		if err := readConverged("final", path); err != nil {
			t.Errorf("chaos-proxy: %s never recovered after healing: %v", path, err)
		}
	}

	s := p.Stats()
	t.Logf("chaos-proxy: edge stats: %+v", s)
	if s.Hits == 0 || s.OpenHits == 0 {
		t.Errorf("chaos-proxy: the edge absorbed nothing: %+v", s)
	}
	if s.Invalidated == 0 {
		t.Errorf("chaos-proxy: no entries were invalidated despite moves and writes: %+v", s)
	}
	if fst := fnet.Stats(); fst.Dropped == 0 {
		t.Errorf("chaos-proxy: fault plan injected nothing: %+v", fst)
	}
}
