package scalla

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"scalla/internal/detsim"
	"scalla/internal/faults"
)

// The detsim sweep drives the deterministic simulation harness
// (internal/detsim) across a band of seeds, with and without a fault
// schedule, and asserts the model-checked invariants hold and every
// seed replays to a byte-identical trace hash. Seed the band's origin
// via DETSIM_SEED; on failure the offending seed is written to
// detsim-failure-seed.txt so CI preserves the repro.
//
// Run it with:
//
//	DETSIM_SEED=1 go test -race -run Detsim -v .

// detsimSeed resolves the sweep's base seed (DETSIM_SEED env, default 1).
func detsimSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("DETSIM_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("DETSIM_SEED=%q is not an integer: %v", s, err)
	}
	return v
}

// detsimPlan is the sweep's fault schedule: lossy and jittery enough
// to force expiries, refloods, duplicate releases, and reordering.
func detsimPlan() faults.Plan {
	return faults.Plan{
		Drop: 0.10, Dup: 0.05, Delay: 0.05, Reorder: 0.05,
		DelayMin: 5 * time.Millisecond, DelayMax: 60 * time.Millisecond,
	}
}

func recordDetsimSeed(t *testing.T, seed int64) {
	t.Helper()
	os.WriteFile("detsim-failure-seed.txt", []byte(fmt.Sprintf("%d\n", seed)), 0o644)
	t.Logf("detsim: failing seed %d written to detsim-failure-seed.txt", seed)
}

// runDetsimSeed executes one seed twice in the given mode, checking
// invariants and the replay guarantee. It reports success.
func runDetsimSeed(t *testing.T, seed int64, plan faults.Plan, crashes int) bool {
	t.Helper()
	cfg := detsim.Config{Seed: seed, Plan: plan, Crashes: crashes}
	a := detsim.Run(cfg)
	if len(a.Violations) != 0 {
		for _, v := range a.Violations {
			t.Errorf("seed %d: invariant violation: %s", seed, v)
		}
		return false
	}
	b := detsim.Run(cfg)
	if a.Hash != b.Hash {
		t.Errorf("seed %d: replay diverged: %s vs %s", seed, a.Hash, b.Hash)
		return false
	}
	return true
}

// TestDetsimSweep is the main model-checking sweep: 200 seeds in the
// strict (fault-free) mode and the same 200 under the fault schedule
// with crash/restart cycles, each run twice for the replay assertion.
func TestDetsimSweep(t *testing.T) {
	base := detsimSeed(t)
	const seeds = 200
	plan := detsimPlan()
	var ops, waits, staged, crashed int
	for i := int64(0); i < seeds; i++ {
		seed := base + i
		if !runDetsimSeed(t, seed, faults.Plan{}, 0) {
			recordDetsimSeed(t, seed)
			return
		}
		if !runDetsimSeed(t, seed, plan, 2) {
			recordDetsimSeed(t, seed)
			return
		}
		r := detsim.Run(detsim.Config{Seed: seed, Plan: plan, Crashes: 2})
		ops += r.Ops
		waits += r.Waits
		staged += r.Staged
		crashed += r.Crashed
	}
	t.Logf("detsim sweep: base=%d seeds=%d ops=%d waits=%d staged=%d crashed=%d",
		base, seeds, ops, waits, staged, crashed)
	if ops == 0 || waits == 0 || staged == 0 || crashed == 0 {
		t.Errorf("sweep went vacuous: ops=%d waits=%d staged=%d crashed=%d",
			ops, waits, staged, crashed)
	}
}

// depth4Cfg is one depth-4 tree simulation: 1024 simulated servers at
// fanout 16 over 69 real cmsd cores (manager → 4 supervisors → 64 leaf
// supervisors → servers).
func depth4Cfg(seed int64, plan faults.Plan, crashes, mgrRestarts int) detsim.TreeConfig {
	return detsim.TreeConfig{
		Seed: seed, Servers: 1024, Fanout: 16,
		Plan: plan, Crashes: crashes, ManagerRestarts: mgrRestarts,
	}
}

// runDepth4Seed executes one depth-4 seed twice in the given mode,
// checking invariants and the replay guarantee. It reports success.
func runDepth4Seed(t *testing.T, seed int64, plan faults.Plan, crashes, mgrRestarts int) bool {
	t.Helper()
	cfg := depth4Cfg(seed, plan, crashes, mgrRestarts)
	a := detsim.RunTree(cfg)
	if len(a.Violations) != 0 {
		for _, v := range a.Violations {
			t.Errorf("depth-4 seed %d: invariant violation: %s", seed, v)
		}
		return false
	}
	b := detsim.RunTree(cfg)
	if a.Hash != b.Hash {
		t.Errorf("depth-4 seed %d: replay diverged: %s vs %s", seed, a.Hash, b.Hash)
		return false
	}
	return true
}

// TestDetsimDepth4Sweep pushes the tree past its single-cell shape: 200
// seeds over depth-4 topologies with ≥1k simulated servers, strict and
// faulted (frame faults + server churn + a manager restart re-login
// storm), each run twice for the replay assertion. The per-core
// invariants — vector disjointness, flood uniqueness, respq
// conservation, exactly-once waiter delivery — must hold at every level
// of the tree.
func TestDetsimDepth4Sweep(t *testing.T) {
	base := detsimSeed(t)
	// A depth-4 run stands up 69 real cores, so the full 200-seed band
	// costs minutes under -race. Plain `go test` runs a 40-seed smoke
	// band; the detsim CI jobs set DETSIM_SEED and get the full band.
	seeds := int64(40)
	if os.Getenv("DETSIM_SEED") != "" {
		seeds = 200
	}
	plan := detsimPlan()
	var ops, waits, redirects, crashed, restarts int
	var queries, haves int64
	hopMax := 0
	for i := int64(0); i < seeds; i++ {
		seed := base + i
		if !runDepth4Seed(t, seed, faults.Plan{}, 0, 0) {
			recordDetsimSeed(t, seed)
			return
		}
		if !runDepth4Seed(t, seed, plan, 4, 1) {
			recordDetsimSeed(t, seed)
			return
		}
		r := detsim.RunTree(depth4Cfg(seed, plan, 4, 1))
		ops += r.Ops
		waits += r.Waits
		redirects += r.Redirects
		crashed += r.Crashed
		restarts += r.MgrRestarts
		queries += r.Queries
		haves += r.Haves
		if r.HopMax > hopMax {
			hopMax = r.HopMax
		}
	}
	t.Logf("depth-4 sweep: base=%d seeds=%d ops=%d waits=%d redirects=%d queries=%d haves=%d crashed=%d mgrRestarts=%d hopMax=%d",
		base, seeds, ops, waits, redirects, queries, haves, crashed, restarts, hopMax)
	if ops == 0 || waits == 0 || redirects == 0 || crashed == 0 || restarts == 0 {
		t.Errorf("depth-4 sweep went vacuous: ops=%d waits=%d redirects=%d crashed=%d mgrRestarts=%d",
			ops, waits, redirects, crashed, restarts)
	}
}

// TestDetsimDepth4SeedReplay pins the depth-4 replay guarantee on the
// single DETSIM_SEED seed — the repro entry point for a failing
// nightly depth-4 seed.
func TestDetsimDepth4SeedReplay(t *testing.T) {
	seed := detsimSeed(t)
	cfg := depth4Cfg(seed, detsimPlan(), 4, 1)
	a := detsim.RunTree(cfg)
	b := detsim.RunTree(cfg)
	if a.Hash != b.Hash || a.Steps != b.Steps {
		recordDetsimSeed(t, seed)
		t.Fatalf("depth-4 seed %d: runs diverged: %s/%d vs %s/%d",
			seed, a.Hash, a.Steps, b.Hash, b.Steps)
	}
	for _, v := range a.Violations {
		t.Errorf("depth-4 seed %d: %s", seed, v)
	}
	if t.Failed() {
		recordDetsimSeed(t, seed)
	}
}

// TestDetsimSeedReplay pins the replay guarantee on the single
// DETSIM_SEED seed with a verbose byte-identical comparison, the
// cheapest repro entry point for a failing nightly seed.
func TestDetsimSeedReplay(t *testing.T) {
	seed := detsimSeed(t)
	cfg := detsim.Config{Seed: seed, Plan: detsimPlan(), Crashes: 2}
	a := detsim.Run(cfg)
	b := detsim.Run(cfg)
	if a.Hash != b.Hash || a.Lines != b.Lines || a.Steps != b.Steps {
		recordDetsimSeed(t, seed)
		t.Fatalf("seed %d: runs diverged: %s/%d/%d vs %s/%d/%d",
			seed, a.Hash, a.Lines, a.Steps, b.Hash, b.Lines, b.Steps)
	}
	for _, v := range a.Violations {
		t.Errorf("seed %d: %s", seed, v)
	}
	if t.Failed() {
		recordDetsimSeed(t, seed)
	}
}
