package scalla

import (
	"testing"

	"scalla/internal/client"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// TestUnclusteredServer exercises the paper's footnote 1: "Scalla can
// be used as an un-clustered system, in which case no cmsd's need be
// started." A lone data server with no parents serves clients that dial
// it directly.
func TestUnclusteredServer(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	st := store.New(store.Config{})
	st.Put("/solo/f", []byte("no cmsd anywhere"))

	srv, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "solo", Role: proto.RoleServer,
		DataAddr: "solo:data",
		// No Parents, no manager: unclustered.
		Net: net, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	// The client treats the lone server as its "manager"; opens are
	// answered directly with no redirects.
	cl := client.New(client.Config{Net: net, Managers: []string{"solo:data"}})
	defer cl.Close()

	data, err := cl.ReadFile("/solo/f")
	if err != nil || string(data) != "no cmsd anywhere" {
		t.Fatalf("unclustered read = %q, %v", data, err)
	}
	if err := cl.WriteFile("/solo/out", []byte("direct write")); err != nil {
		t.Fatal(err)
	}
	st2, err := cl.Stat("/solo/out")
	if err != nil || st2.Size != 12 {
		t.Fatalf("unclustered stat = %+v, %v", st2, err)
	}
	if srv.ParentsUp() != 0 {
		t.Error("unclustered server claims a parent link")
	}
}
