package scalla

import (
	"bytes"
	"net"
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/client"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// freeAddr reserves an ephemeral TCP port and returns its address. The
// port is released before use, so a parallel process could in principle
// steal it; fine for a test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestClusterOverTCP runs a manager and two servers over real sockets —
// the same path cmd/scallad deploys — and exercises resolve, read,
// write, and failure recovery end to end.
func TestClusterOverTCP(t *testing.T) {
	net := transport.TCP()
	mgrData, mgrCtl := freeAddr(t), freeAddr(t)

	mgr, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: mgrData, CtlAddr: mgrCtl, Net: net,
		Core: cmsd.Config{
			Cache:     cache.Config{InitialBuckets: 89},
			Queue:     respq.Config{Period: 20 * time.Millisecond},
			FullDelay: 200 * time.Millisecond,
		},
		PingInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	stores := make([]*store.Store, 2)
	for i := range stores {
		stores[i] = store.New(store.Config{})
		srv, err := cmsd.NewNode(cmsd.NodeConfig{
			Name: "srv" + string(rune('A'+i)), Role: proto.RoleServer,
			DataAddr: freeAddr(t),
			Parents:  []string{mgrCtl}, Prefixes: []string{"/"},
			Net: net, Store: stores[i],
			ReconnectDelay: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
	}
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Core().Table().Count() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("TCP cluster never formed")
		}
		time.Sleep(time.Millisecond)
	}

	stores[1].Put("/tcp/data.bin", bytes.Repeat([]byte("x"), 100_000))
	cl := client.New(client.Config{Net: net, Managers: []string{mgrData}})
	defer cl.Close()

	// 100 KB read through redirects over real sockets.
	data, err := cl.ReadFile("/tcp/data.bin")
	if err != nil || len(data) != 100_000 {
		t.Fatalf("ReadFile = %d bytes, %v", len(data), err)
	}
	// Write path.
	if err := cl.WriteFile("/tcp/out.bin", []byte("written over tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/tcp/out.bin")
	if err != nil || string(got) != "written over tcp" {
		t.Fatalf("readback = %q, %v", got, err)
	}
	// Locate + stat.
	addr, err := cl.Locate("/tcp/data.bin", false)
	if err != nil || addr == "" {
		t.Fatalf("Locate = %q, %v", addr, err)
	}
	st, err := cl.Stat("/tcp/data.bin")
	if err != nil || st.Size != 100_000 {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
}
