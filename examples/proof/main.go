// Proof: a PROOF-style parallel analysis (paper Section IV-A — "the
// widely used Parallel Root Facility … uses Scalla as a fundamental
// part of its data access infrastructure").
//
// The pattern: event files are spread over the cluster; a coordinator
// uses Scalla's Locate to discover where each file lives and schedules
// the work with data locality (each worker is paired with a server and
// preferentially processes the files that server holds); workers read
// through the Scalla client and compute partial histograms the
// coordinator merges.
//
// Run with: go run ./examples/proof
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"scalla"
)

const (
	nServers      = 8
	filesPerSrv   = 6
	eventsPerFile = 2000
	nBins         = 10
)

func main() {
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    nServers,
		FullDelay:  400 * time.Millisecond,
		FastPeriod: 40 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// Event files: little-endian uint16 "energies" in [0, 1000).
	r := rand.New(rand.NewSource(4))
	var files []string
	for s := 0; s < nServers; s++ {
		for k := 0; k < filesPerSrv; k++ {
			path := fmt.Sprintf("/store/events/run%02d/f%02d.root", s, k)
			data := make([]byte, 2*eventsPerFile)
			for e := 0; e < eventsPerFile; e++ {
				binary.LittleEndian.PutUint16(data[2*e:], uint16(r.Intn(1000)))
			}
			cl.Store(s).Put(path, data)
			files = append(files, path)
		}
	}
	fmt.Printf("dataset: %d files x %d events across %d servers\n",
		len(files), eventsPerFile, nServers)

	// Coordinator: discover placement via Scalla, schedule by locality.
	coord := cl.NewClient()
	defer coord.Close()
	assign := make(map[string][]string) // server addr → files
	start := time.Now()
	for _, f := range files {
		addr, err := coord.Locate(f, false)
		if err != nil {
			log.Fatalf("locate %s: %v", f, err)
		}
		assign[addr] = append(assign[addr], f)
	}
	fmt.Printf("placement discovered via Locate in %v (%d distinct servers)\n",
		time.Since(start).Round(time.Millisecond), len(assign))

	// Workers: one per server, each processing "its" files.
	type partial struct {
		bins   [nBins]int64
		events int64
		bytes  int64
	}
	var mu sync.Mutex
	total := partial{}
	var wg sync.WaitGroup
	start = time.Now()
	for addr, mine := range assign {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := cl.NewClient()
			defer w.Close()
			local := partial{}
			for _, f := range mine {
				data, err := w.ReadFile(f)
				if err != nil {
					log.Fatalf("worker read %s: %v", f, err)
				}
				local.bytes += int64(len(data))
				for off := 0; off+2 <= len(data); off += 2 {
					v := binary.LittleEndian.Uint16(data[off:])
					local.bins[int(v)*nBins/1000]++
					local.events++
				}
			}
			mu.Lock()
			for b := range local.bins {
				total.bins[b] += local.bins[b]
			}
			total.events += local.events
			total.bytes += local.bytes
			mu.Unlock()
		}()
		_ = addr
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("processed %d events (%.1f MB) with %d workers in %v (%.0f kEvt/s)\n",
		total.events, float64(total.bytes)/1e6, len(assign), elapsed.Round(time.Millisecond),
		float64(total.events)/elapsed.Seconds()/1e3)

	fmt.Println("\nenergy histogram (merged):")
	max := int64(1)
	for _, v := range total.bins {
		if v > max {
			max = v
		}
	}
	for b, v := range total.bins {
		bar := int(v * 40 / max)
		fmt.Printf("  [%3d-%3d) %-40s %d\n", b*100, (b+1)*100,
			string(repeat('#', bar)), v)
	}
}

func repeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}
