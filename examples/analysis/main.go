// Analysis: the workload that motivated Scalla (paper Section II-A) —
// a batch farm of analysis jobs, each performing several metadata
// operations on dozens of files before reading them, pushing thousands
// of location transactions per second through the head node.
//
// Run with: go run ./examples/analysis
package main

import (
	"fmt"
	"log"
	"time"

	"scalla"
	"scalla/internal/client"
	"scalla/internal/workload"
)

type placer struct{ c *scalla.Cluster }

func (p placer) Servers() int { return len(p.c.Servers) }
func (p placer) Place(i int, path string, data []byte) error {
	return p.c.Store(i).Put(path, data)
}

func main() {
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    16,
		Fanout:     8, // manager + 2 supervisors + 16 servers
		FullDelay:  500 * time.Millisecond,
		FastPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	fmt.Printf("farm: %d servers under %d supervisors (depth %d)\n",
		len(cl.Servers), len(cl.Supervisors), cl.Depth())

	dataset, err := workload.PlaceDataset(placer{cl}, workload.DatasetConfig{
		Files: 400, Replicas: 2, SizeBytes: 32 << 10, Seed: 2012,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d files x 32KiB, 2 replicas each\n", len(dataset))

	cfg := workload.JobConfig{
		FilesPerJob:    24, // "dozens of files per job"
		MetaOpsPerFile: 4,  // "several meta-data operations"
		ReadBytes:      8 << 10,
	}
	jobs := workload.GenerateJobs(dataset, 64, cfg, 42)

	for _, conc := range []int{4, 16, 64} {
		rn := workload.Runner{
			NewClient:   func() *client.Client { return cl.NewClient() },
			Concurrency: conc,
			Cfg:         cfg,
		}
		st := rn.Run(jobs)
		fmt.Printf("\n%2d concurrent jobs: %d jobs in %v\n",
			conc, st.Jobs, st.Elapsed.Round(time.Millisecond))
		fmt.Printf("  %8.0f location transactions/s (meta %d + open %d, errors %d)\n",
			st.TxPerSec(), st.MetaOps, st.Opens, st.Errors)
		fmt.Printf("  metadata latency: %v\n", st.MetaLat)
		fmt.Printf("  open latency:     %v\n", st.OpenLat)
	}

	stats := cl.Manager.Core().Cache().Stats()
	fmt.Printf("\nmanager cache after the run: %d entries, %d hits, %d misses\n",
		stats.Entries, stats.Hits, stats.Misses)
}
