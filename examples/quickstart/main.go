// Quickstart: bring up a small Scalla cluster in-process, place a few
// files, and access them through the manager exactly as a client would
// — locate, redirect, read.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"scalla"
)

func main() {
	// An 8-server cluster under one manager. The default transport is
	// in-process; everything below works identically over TCP.
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    8,
		FullDelay:  500 * time.Millisecond, // the paper's 5 s, shrunk for a demo
		FastPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	fmt.Printf("cluster up: 1 manager, %d servers\n", len(cl.Servers))

	// Physics-style data lands on the servers out of band (detector
	// output, bulk transfers...). Scalla never needs to be told — the
	// first client request discovers the location.
	cl.Store(3).Put("/store/run2012/ntuple-001.root", []byte("event data for ntuple 001"))
	cl.Store(5).Put("/store/run2012/ntuple-002.root", []byte("event data for ntuple 002"))
	cl.Store(5).Put("/store/run2012/ntuple-001.root", []byte("event data for ntuple 001")) // replica

	c := cl.NewClient()
	defer c.Close()

	// First access: the manager floods a query down the tree, a server
	// responds positively within the fast-response window, and the
	// client is redirected.
	start := time.Now()
	f, err := c.Open("/store/run2012/ntuple-001.root")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first open  : served by %-10s in %8v (query + fast response)\n",
		f.Server(), time.Since(start).Round(time.Microsecond))
	f.Close()

	// Second access: pure cache hit at the manager.
	start = time.Now()
	f, err = c.Open("/store/run2012/ntuple-001.root")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second open : served by %-10s in %8v (cached redirect)\n",
		f.Server(), time.Since(start).Round(time.Microsecond))

	buf := make([]byte, 64)
	n, _ := f.ReadAt(buf, 0)
	fmt.Printf("read        : %q\n", buf[:n])
	f.Close()

	// Writing creates the file on a server chosen by free space.
	if err := c.WriteFile("/user/abh/notes.txt", []byte("scalla quickstart output")); err != nil {
		log.Fatal(err)
	}
	back, err := c.ReadFile("/user/abh/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write+read  : %q\n", back)

	// A global listing is NOT a manager feature (it tracks only
	// requested names); the Cluster Name Space daemon provides it.
	fmt.Println("namespace   :")
	for _, e := range cl.Namespace().List("/") {
		fmt.Printf("  %-40s %4d bytes online=%v\n", e.Path, e.Size, e.Online)
	}

	// The manager's cache statistics show what all that cost.
	st := cl.Manager.Core().Cache().Stats()
	fmt.Printf("manager cache: %d entries, %d hits, %d misses, %d buckets (Fibonacci)\n",
		st.Entries, st.Hits, st.Misses, st.Buckets)
}
