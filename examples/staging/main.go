// Staging: files that live in a (simulated) Mass Storage System, the
// paper's Vp path, and the prepare operation that hides the full delay
// for bulk workloads (Section III-B2).
//
// A production analysis framework touches dozens of files per job; if
// each had to be discovered and staged on demand the client would pay a
// full delay per file. Prepare spawns all the look-ups in parallel, so
// externally at most one delay is visible.
//
// Run with: go run ./examples/staging
package main

import (
	"fmt"
	"log"
	"time"

	"scalla"
)

func main() {
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    4,
		FullDelay:  400 * time.Millisecond,
		FastPeriod: 40 * time.Millisecond,
		StageDelay: 300 * time.Millisecond, // tape robots, shrunk
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// A run's worth of files sits on tape, spread over the servers.
	var paths []string
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/store/raw/run847/file-%03d.root", i)
		paths = append(paths, p)
		cl.Store(i%4).PutOffline(p, []byte(fmt.Sprintf("raw events %03d", i)))
	}
	fmt.Printf("%d files offline in mass storage across 4 servers\n", len(paths))

	c := cl.NewClient()
	defer c.Close()

	// Naive: open one cold file; the client is told the file is being
	// prepared and waits through staging.
	start := time.Now()
	f, err := c.Open(paths[0])
	if err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("cold open of 1 file: %v (discovery + staging)\n",
		time.Since(start).Round(time.Millisecond))

	// Production style: announce everything ahead of time.
	start = time.Now()
	if err := c.Prepare(paths[1:], false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepare(%d files) returned in %v — staging proceeds in background\n",
		len(paths)-1, time.Since(start).Round(time.Microsecond))

	// ... the job does other setup work while tapes spin ...
	time.Sleep(900 * time.Millisecond)

	// Now the whole batch opens at cache-hit speed.
	start = time.Now()
	for _, p := range paths[1:] {
		f, err := c.Open(p)
		if err != nil {
			log.Fatalf("open %s: %v", p, err)
		}
		buf := make([]byte, 32)
		n, _ := f.ReadAt(buf, 0)
		f.Close()
		_ = n
	}
	fmt.Printf("bulk open of %d prepared files: %v total (%v/file)\n",
		len(paths)-1,
		time.Since(start).Round(time.Millisecond),
		(time.Since(start) / time.Duration(len(paths)-1)).Round(time.Microsecond))

	// The namespace view distinguishes online from offline copies.
	online, offline := 0, 0
	for _, e := range cl.Namespace().List("/store/raw") {
		if e.Online {
			online++
		} else {
			offline++
		}
	}
	fmt.Printf("namespace: %d online, %d still offline\n", online, offline)
}
