// Federation: the Figure-1 cluster organization — a manager over
// supervisors over data servers — with replicated data, a server
// failure, and Scalla's self-healing recovery.
//
// This mirrors how HEP experiments federate sites: a regional manager
// redirects analysis jobs into site subtrees, failures are tolerated
// without operator action, and reconnecting servers keep their cached
// locations valid.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"time"

	"scalla"
)

func main() {
	// 12 servers at fanout 4 → one manager, 3 supervisors, 4 servers
	// under each... i.e., a genuine two-level tree.
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    12,
		Fanout:     4,
		FullDelay:  400 * time.Millisecond,
		FastPeriod: 40 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	fmt.Printf("federation: manager + %d supervisors + %d servers (depth %d)\n",
		len(cl.Supervisors), len(cl.Servers), cl.Depth())

	// One dataset, replicated at three "sites" (servers in different
	// subtrees).
	const path = "/store/mc/higgs/AOD-042.root"
	payload := []byte("simulated higgs candidates")
	for _, i := range []int{0, 5, 10} {
		cl.Store(i).Put(path, payload)
	}

	c := cl.NewClient()
	defer c.Close()

	// Resolution walks the tree: manager → supervisor → server.
	f, err := c.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	first := f.Server()
	fmt.Printf("job 1 vectored to %s\n", first)
	f.Close()

	// Print the manager's view of its subordinates.
	fmt.Println("\nmanager's membership table:")
	fmt.Print(cl.Manager.Core().Table().String())

	// Kill the server that just served the file. Clients recover via
	// the refresh protocol: re-ask naming the failing host, get
	// vectored to a surviving replica.
	var killed int
	for i, s := range cl.Servers {
		if s.DataAddr() == first {
			killed = i
			fmt.Printf("\nkilling %s ...\n", s.Name())
			s.Stop()
		}
	}
	_ = killed

	deadline := time.Now().Add(10 * time.Second)
	for {
		f, err = c.Open(path)
		if err == nil && f.Server() != first {
			break
		}
		if f != nil && err == nil {
			// Still vectored at the dead server's cached location; a
			// read would trigger recovery, but for the demo just retry.
			f.Close()
		}
		if time.Now().After(deadline) {
			log.Fatalf("never failed over: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("job 2 failed over to %s (no operator action)\n", f.Server())

	buf := make([]byte, 64)
	n, _ := f.ReadAt(buf, 0)
	fmt.Printf("read from replica: %q\n", buf[:n])
	f.Close()

	// Recoverability claim (Section VI): no permanent state anywhere —
	// the location cache rebuilds itself from queries. Show it by
	// resolving a *new* name after the failure.
	cl.Store(3).Put("/store/data/fresh.root", []byte("fresh"))
	f, err = c.Open("/store/data/fresh.root")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new dataset resolved to %s with zero reconfiguration\n", f.Server())
	f.Close()

	// Edge hop: a remote farm puts a proxy cache between its clients
	// and the federation. Clients point at the proxy unmodified; the
	// first read fills the edge from origin, repeats never leave it.
	proxy, err := cl.StartProxy(scalla.ProxyOptions{Addr: "edge:data"})
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	ec := cl.NewProxyClient(proxy)
	defer ec.Close()

	fmt.Println("\nedge proxy in front of the federation:")
	for pass := 1; pass <= 3; pass++ {
		if _, err := ec.ReadFile(path); err != nil {
			log.Fatal(err)
		}
		s := proxy.Stats()
		fmt.Printf("  pass %d: open hits=%d misses=%d, block hits=%d, origin bytes=%d\n",
			pass, s.OpenHits, s.OpenMisses, s.Hits, s.OriginBytes)
	}
	s := proxy.Stats()
	fmt.Printf("edge absorbed the repeats: %.0f%% origin offload, %d invalidations\n",
		100*s.OriginOffload(), s.Invalidated)
}
