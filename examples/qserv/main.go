// Qserv: the LSST prototype query system of paper Section IV-B, using
// Scalla as its distributed dispatch layer.
//
// Workers publish one file per catalog partition ("chunk"); a master
// reaches the worker hosting a chunk simply by opening that chunk's
// path — Scalla's data→host mapping is the only directory. Note what is
// absent: the master holds no worker list, no ports, no cluster size.
//
// Run with: go run ./examples/qserv
package main

import (
	"fmt"
	"log"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/qserv"
	"scalla/internal/respq"
	"scalla/internal/transport"
)

func main() {
	net := transport.NewInProc(transport.InProcConfig{})

	// One Scalla manager; Qserv reuses it unchanged.
	mgr, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: "mgr:data", CtlAddr: "mgr:ctl", Net: net,
		Core: cmsd.Config{
			Cache:     cache.Config{},
			Queue:     respq.Config{Period: 40 * time.Millisecond},
			FullDelay: 400 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatal(err)
	}
	defer mgr.Stop()

	// A 16-chunk synthetic sky catalog spread over 4 workers.
	const numChunks = 16
	const rowsPerChunk = 5000
	chunks := make([]*qserv.Chunk, numChunks)
	for i := range chunks {
		chunks[i] = qserv.GenChunk(i, numChunks, rowsPerChunk, 20120521)
	}
	var workers []*qserv.Worker
	for w := 0; w < 4; w++ {
		var mine []*qserv.Chunk
		for ci := w; ci < numChunks; ci += 4 {
			mine = append(mine, chunks[ci])
		}
		wk, err := qserv.NewWorker(qserv.WorkerConfig{
			Name: fmt.Sprintf("worker%d", w), Net: net,
			Parents: []string{"mgr:ctl"}, Chunks: mine,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer wk.Stop()
		workers = append(workers, wk)
	}
	for mgr.Core().Table().Count() < len(workers) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("qserv: %d chunks (%d rows each) on %d workers\n",
		numChunks, rowsPerChunk, len(workers))

	master := qserv.NewMaster(qserv.MasterConfig{
		Net: net, Managers: []string{"mgr:data"},
		PollInterval: 10 * time.Millisecond,
	})
	defer master.Close()

	all := make([]int, numChunks)
	for i := range all {
		all[i] = i
	}

	// Quick retrieval: one object by id (hits a single chunk).
	start := time.Now()
	res, err := master.Query("SELECT WHERE objectid = 3000042 LIMIT 1", []int{3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point lookup   : %d row(s) in %v\n",
		len(res.Rows), time.Since(start).Round(time.Millisecond))

	// Full-sky aggregation: every chunk scans in parallel, partials
	// merge at the master.
	start = time.Now()
	res, err = master.Query("COUNT WHERE mag < 20", all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-sky count : %d of %d objects with mag<20 in %v\n",
		res.Count, numChunks*rowsPerChunk, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	res, err = master.Query("AVG mag WHERE decl > 0", all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-sky avg   : mean mag %.3f over %d northern objects in %v\n",
		res.Value, res.Count, time.Since(start).Round(time.Millisecond))

	// Spatially restricted query: only the chunks covering the region
	// are touched — the path-per-partition scheme makes the pruning
	// free.
	start = time.Now()
	res, err = master.QueryRegion("COUNT", numChunks, 0, 44.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region count   : %d objects in RA [0,45) — touched %d of %d chunks in %v\n",
		res.Count, len(qserv.ChunksForRA(numChunks, 0, 44.9)), numChunks,
		time.Since(start).Round(time.Millisecond))

	// Cone search: "retrieve all facts near this position", the paper's
	// quick-retrieval pattern. Chunk pruning narrows dispatch to the
	// stripes the cone crosses.
	cone := qserv.Cone{RA: 120, Decl: -15, Radius: 5}
	start = time.Now()
	res, err = master.QueryCone("COUNT", numChunks, cone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cone search    : %d objects within %.0f° of (%.0f, %.0f) — %d of %d chunks in %v\n",
		res.Count, cone.Radius, cone.RA, cone.Decl,
		len(qserv.ChunksForCone(numChunks, cone)), numChunks,
		time.Since(start).Round(time.Millisecond))
}
