package pcache

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"scalla/internal/proto"
)

// The detsim-style invariant for the edge cache: once an origin
// server's eviction epoch advances past an entry's binding (the proxy
// learned the binding is stale — server dropped, file moved, content
// replaced), the proxy must NEVER again serve bytes through that
// binding. The hit path is fenced by the per-slot epoch stamp
// (entry.sepoch vs Proxy.slotEpoch), the proxy-local mirror of the
// Figure-3 connect-epoch correction.
//
// Run it alone with:
//
//	DETSIM_SEED=1 go test -race -run Detsim ./internal/pcache

// pcacheDetsimSeed resolves the seed (DETSIM_SEED env, default 1) the
// same way the root detsim sweep does.
func pcacheDetsimSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("DETSIM_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("DETSIM_SEED=%q is not an integer: %v", s, err)
	}
	return v
}

// TestDetsimProxyEpochInvariant drives a seeded schedule of content
// generations bouncing between origin servers. Every round it checks
// both halves of the invariant:
//
//  1. Directly: a handle bound before the epoch advance refuses to
//     serve from cache afterwards (readFrame reports a miss, never
//     pre-epoch bytes).
//  2. End to end: a client read after the move returns only the
//     current generation — stale bytes are impossible, not merely
//     unlikely, because every pre-epoch block rides an entry whose
//     sepoch no longer matches.
func TestDetsimProxyEpochInvariant(t *testing.T) {
	seed := pcacheDetsimSeed(t)
	rng := rand.New(rand.NewSource(seed))
	const servers = 3
	o := startOrigin(t, servers)
	p, cl := startProxy(t, o, Config{})

	const path = "/store/epoch.root"
	const size = 96 << 10
	gen := byte(1)
	cur := rng.Intn(servers)
	if err := o.stores[cur].Put(path, payload(gen, size)); err != nil {
		t.Fatal(err)
	}

	const rounds = 25
	for round := 0; round < rounds; round++ {
		// Converge and verify: the only acceptable bytes are the
		// current generation's.
		got, err := cl.ReadFile(path)
		if err != nil {
			t.Fatalf("seed %d round %d: read: %v", seed, round, err)
		}
		if !bytes.Equal(got, payload(gen, size)) {
			t.Fatalf("seed %d round %d: proxy served stale bytes (gen %d expected)",
				seed, round, gen)
		}

		// Bind a handle against the current (soon-to-be-stale) epoch.
		reply, fh := p.open(proto.Open{Path: path})
		if _, ok := reply.(proto.OpenOK); !ok {
			t.Fatalf("seed %d round %d: open: %#v", seed, round, reply)
		}

		// Mutate behind the proxy's back: new generation, possibly on a
		// different server, then advance the old holder's epoch.
		next := rng.Intn(servers)
		gen++
		if err := o.stores[next].Put(path, payload(gen, size)); err != nil {
			t.Fatal(err)
		}
		if next != cur {
			if err := o.stores[cur].Unlink(path); err != nil {
				t.Fatal(err)
			}
		}
		p.InvalidateOrigin(o.srvs[cur].DataAddr())

		// Invariant, direct form: the pre-epoch handle must refuse the
		// cache. A hit here would be pre-epoch bytes escaping.
		if f, n, ok := p.readFrame(proto.Read{FH: fh, Off: 0, N: 4096}, 1); ok {
			f.Release()
			t.Fatalf("seed %d round %d: hit path served %d bytes through a binding "+
				"whose slot epoch advanced", seed, round, n)
		}
		p.dropHandle(fh)
		cur = next
	}

	// The schedule must actually have exercised invalidation.
	if s := p.Stats(); s.Invalidated == 0 {
		t.Fatalf("seed %d: schedule went vacuous: %+v", seed, s)
	}
}
