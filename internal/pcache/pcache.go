// Package pcache is Scalla's edge proxy-cache tier: a daemon that
// speaks the client protocol upstream (toward an origin cmsd/xrd
// federation) and the server protocol downstream (toward unmodified
// clients), absorbing repeat opens and hot reads at the edge so they
// never cross the WAN.
//
// Real XRootD deployments put exactly this tier between analysis farms
// and origin storage: a proxy that caches both halves of the paper's
// workload. The location half reuses internal/cache — the lock-striped
// hash table, 64 eviction windows, and Figure-3 connect-epoch
// correction — keyed by origin data-server slots instead of cluster
// subscriber indices, with staleness driven through the existing
// Locate{Refresh, Avoid} protocol (Section III-C1) so bad redirects
// self-correct. The data half is a block-granular cache with LRU
// capacity eviction plus the Section III-A window lifetime mechanics,
// serving hits zero-copy into pooled frames (the DESIGN.md §7 contract)
// and filling misses through a pipelined readahead window toward the
// origin server.
//
// Clients need no changes: they point Managers at the proxy's address
// and every walk terminates there. On a stale hit the normal client
// recovery (Locate{Refresh} and reopen) flows through the proxy, which
// refreshes upstream before answering — both caches converge without
// the 5 s miss-storm an uncached federation would pay.
package pcache

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/cache"
	"scalla/internal/client"
	"scalla/internal/mux"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// DefaultBlockSize is the block granularity of the data cache. It is
// chosen to keep a full hit frame under the proto pool's retention cap
// so the hit path recycles frames instead of allocating.
const DefaultBlockSize = 64 << 10

// DefaultCacheBytes bounds the resident block data by default.
const DefaultCacheBytes = 256 << 20

// Config parameterizes a Proxy.
type Config struct {
	// Net supplies transport for both faces.
	Net transport.Network
	// Addr is the data-plane address the proxy listens on; clients use
	// it as their manager address.
	Addr string
	// Origins are the data addresses of the origin cluster's managers.
	Origins []string
	// Name identifies the proxy in summary frames. Default "pcache".
	Name string
	// BlockSize is the data-cache block granularity. Blocks above the
	// frame pool's retention cap (128 KiB) still work but re-allocate
	// per hit. Default DefaultBlockSize.
	BlockSize int
	// CacheBytes caps resident block data; LRU eviction enforces it.
	// Default DefaultCacheBytes.
	CacheBytes int64
	// BlockLifetime ages blocks out via the 64 eviction windows: a
	// block untouched by sweeps is dropped one lifetime after insert.
	// Default 10 minutes.
	BlockLifetime time.Duration
	// LocLifetime is the location-cache object lifetime (the paper's
	// 8-hour default divided across its 64 windows).
	LocLifetime time.Duration
	// OriginReadahead is how many consecutive blocks a miss fetches
	// from origin (1 = just the missing block). Default 4.
	OriginReadahead int
	// Workers bounds concurrent request dispatch across all downstream
	// connections (the scheduled dispatch of DESIGN.md §11). Default 8.
	Workers int
	// DispatchQueue bounds queued-but-not-executing downstream data
	// requests; arrivals beyond it shed with RetryAfter. Default 1024.
	DispatchQueue int
	// RetryAfterMillis is the nominal shed backoff hint. Default 100.
	RetryAfterMillis int
	// SchedSeed seeds the shed-jitter RNG for deterministic verdicts.
	SchedSeed int64
	// RPCTimeout bounds one origin exchange. Default 15 s.
	RPCTimeout time.Duration
	// MaxInFlight bounds streams multiplexed per origin connection.
	MaxInFlight int
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
	// Tracer records proxy spans (open, fill, refresh) when enabled.
	Tracer *obs.Tracer
	// Summary, when set, receives periodic summary frames.
	Summary obs.Sink
	// SummaryEvery paces summary emission. Default 1 s.
	SummaryEvery time.Duration
	// Logf receives diagnostics. Default: discard.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "pcache"
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.BlockLifetime <= 0 {
		c.BlockLifetime = 10 * time.Minute
	}
	if c.OriginReadahead <= 0 {
		c.OriginReadahead = 4
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 15 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(0, c.Clock)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Proxy is one edge proxy-cache daemon. It is safe for concurrent use;
// start it with Start and stop it with Close.
type Proxy struct {
	cfg Config

	up    *client.Client // origin control plane: walks, refreshes, writes
	pool  *mux.Pool      // origin data servers: opens and block fills
	sched *mux.Scheduler // downstream face dispatch

	loc *cache.Cache // location answers, keyed by origin-server slots

	// Slot table: origin data-server addresses mapped onto the location
	// cache's 64 server indices, assigned as locates discover them.
	smu    sync.Mutex
	slotOf map[string]int
	addrOf [bitvec.Width]string
	mask   bitvec.Vec // assigned slots
	nextRR int        // recycle cursor once all slots are taken

	// slotEpoch is bumped whenever a slot's origin binding is
	// invalidated; entries stamp it at bind time and the hit path
	// refuses to serve from an entry whose stamp has been passed. This
	// is the proxy-local mirror of the Figure-3 connect epoch.
	slotEpoch [bitvec.Width]atomic.Uint64

	// Block cache state (blocks.go) under one mutex: entry map, the
	// intrusive LRU list, the 64 lifetime windows, and byte accounting.
	bmu        sync.Mutex
	entries    map[string]*entry
	lruFront   *block
	lruBack    *block
	windows    [cache.Windows]*block
	tw         uint64
	blockBytes int64
	nblocks    int

	// Downstream handle table.
	hmu     sync.Mutex
	handles map[uint64]*phandle
	nextFH  uint64

	st stats

	lis    transport.Listener
	cmu    sync.Mutex
	conns  map[transport.Conn]struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// phandle is one downstream file handle: either a cached read handle
// bound to an entry, or a pass-through write handle wrapping an
// upstream client File.
type phandle struct {
	path string
	ent  *entry       // read path; re-bound by fill when it goes stale
	pass *client.File // write/create path; nil for cached handles
}

// New constructs a Proxy without starting its listener; most callers
// want Start.
func New(cfg Config) *Proxy {
	cfg = cfg.withDefaults()
	p := &Proxy{
		cfg: cfg,
		up: client.New(client.Config{
			Net:         cfg.Net,
			Managers:    cfg.Origins,
			RPCTimeout:  cfg.RPCTimeout,
			MaxInFlight: cfg.MaxInFlight,
			Clock:       cfg.Clock,
			Tracer:      cfg.Tracer,
		}),
		pool: mux.NewPool(cfg.Net, mux.Options{
			MaxInFlight: cfg.MaxInFlight,
			Clock:       cfg.Clock,
		}),
		sched: mux.NewScheduler(mux.SchedConfig{
			Workers:          cfg.Workers,
			QueueLimit:       cfg.DispatchQueue,
			RetryAfterMillis: cfg.RetryAfterMillis,
			Seed:             cfg.SchedSeed,
			Clock:            cfg.Clock,
		}),
		loc: cache.New(cache.Config{
			Lifetime: cfg.LocLifetime,
			Clock:    cfg.Clock,
		}),
		slotOf:  make(map[string]int),
		entries: make(map[string]*entry),
		handles: make(map[uint64]*phandle),
		conns:   make(map[transport.Conn]struct{}),
		stop:    make(chan struct{}),
	}
	return p
}

// Start binds the proxy's listener and begins serving downstream
// connections and running the cache maintenance tickers.
func (p *Proxy) Start() error {
	l, err := p.cfg.Net.Listen(p.cfg.Addr)
	if err != nil {
		return fmt.Errorf("pcache: listen %s: %w", p.cfg.Addr, err)
	}
	p.lis = l
	p.wg.Add(1)
	go p.acceptLoop(l)
	p.wg.Add(1)
	go p.tickLoop()
	if p.cfg.Summary != nil {
		every := p.cfg.SummaryEvery
		if every <= 0 {
			every = time.Second
		}
		em := obs.NewEmitter(every, p.cfg.Clock, p.Frame, p.cfg.Summary, p.cfg.Logf)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			em.Run(p.stop)
		}()
	}
	return nil
}

// Addr returns the address downstream clients dial.
func (p *Proxy) Addr() string { return p.cfg.Addr }

// Close stops the listener, tears down downstream and origin
// connections, and waits for the serve loops to drain.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	if p.lis != nil {
		p.lis.Close()
	}
	p.cmu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.cmu.Unlock()
	// Connections are dead; now the scheduler can drain its in-flight
	// handlers without any of them wedging on a reply send.
	p.sched.Close()
	p.pool.Close()
	p.up.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop(l transport.Listener) {
	defer p.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		p.cmu.Lock()
		p.conns[conn] = struct{}{}
		p.cmu.Unlock()
		p.wg.Add(1)
		go p.handleConn(conn)
	}
}

// tickLoop drives the two window clocks: the location cache's sweep
// (lifetime/64 per window, as in the origin cmsd) and the block
// cache's lifetime windows.
func (p *Proxy) tickLoop() {
	defer p.wg.Done()
	period := p.cfg.BlockLifetime / cache.Windows
	if period <= 0 {
		period = time.Second
	}
	bt := p.cfg.Clock.NewTicker(period)
	defer bt.Stop()
	locPeriod := p.cfg.LocLifetime / cache.Windows
	if locPeriod <= 0 {
		locPeriod = 8 * time.Hour / cache.Windows
	}
	lt := p.cfg.Clock.NewTicker(locPeriod)
	defer lt.Stop()
	for {
		select {
		case <-bt.C():
			p.tickBlocks()
		case <-lt.C():
			p.loc.Tick()
		case <-p.stop:
			return
		}
	}
}

func (p *Proxy) handleConn(conn transport.Conn) {
	defer p.wg.Done()
	defer func() {
		p.cmu.Lock()
		delete(p.conns, conn)
		p.cmu.Unlock()
		conn.Close()
	}()
	// Handles are per-connection: a dropped client leaks nothing, and
	// its pass-through upstream files are closed with it.
	var mineMu sync.Mutex
	var mine []uint64
	defer func() {
		mineMu.Lock()
		fhs := mine
		mineMu.Unlock()
		for _, fh := range fhs {
			p.dropHandle(fh)
		}
	}()
	mux.Serve(conn, func(msg proto.Message, r mux.Responder) proto.Message {
		if p.closed.Load() {
			return nil
		}
		reply, opened := p.dispatch(msg, r)
		if opened != 0 {
			mineMu.Lock()
			mine = append(mine, opened)
			mineMu.Unlock()
		}
		return reply
	}, mux.ServeOptions{
		Sched:  p.sched,
		Tracer: p.cfg.Tracer,
		OnError: func(err error) {
			p.cfg.Logf("pcache: bad frame from %s: %v", conn.RemoteAddr(), err)
		},
	})
}

// dispatch handles one downstream request, returning the reply and,
// for successful opens, the issued handle. Cached reads reply through
// the responder's single-copy frame path and return nil.
func (p *Proxy) dispatch(msg proto.Message, r mux.Responder) (reply proto.Message, opened uint64) {
	switch m := msg.(type) {
	case proto.Open:
		return p.open(m)
	case proto.Read:
		return p.read(m, r), 0
	case proto.Write:
		return p.write(m), 0
	case proto.Trunc:
		return p.trunc(m), 0
	case proto.Close:
		return p.closeHandle(m), 0
	case proto.Stat:
		return p.stat(m), 0
	case proto.Locate:
		return p.locateDown(m), 0
	case proto.Unlink:
		return p.unlink(m), 0
	case proto.Prepare:
		return p.prepare(m), 0
	case proto.Ping:
		return proto.Pong{}, 0
	case proto.List:
		return proto.Err{Code: proto.EInval, Msg: "pcache: listings are not proxied"}, 0
	default:
		return proto.Err{Code: proto.EInval, Msg: "unexpected message"}, 0
	}
}

// open answers a downstream Open. Read opens bind to a cached entry —
// on a hit no frame reaches the origin at all; write and create opens
// pass through to the origin via the upstream client, invalidating any
// cached state for the path.
func (p *Proxy) open(m proto.Open) (proto.Message, uint64) {
	outcome := "error"
	sp := p.cfg.Tracer.Start("pcache.open", m.Path)
	defer func() { sp.End(outcome) }()
	if m.Write || m.Create {
		var f *client.File
		var err error
		if m.Create {
			f, err = p.up.Create(m.Path)
		} else {
			f, err = p.up.OpenWrite(m.Path)
		}
		if err != nil {
			return errReply(err), 0
		}
		p.invalidatePath(m.Path)
		outcome = "write-through"
		fh := p.issueHandle(&phandle{path: m.Path, pass: f})
		return proto.OpenOK{FH: fh, Size: f.Size()}, fh
	}
	if ent := p.liveEntry(m.Path); ent != nil {
		p.st.openHits.Add(1)
		outcome = "hit " + ent.addr
		fh := p.issueHandle(&phandle{path: m.Path, ent: ent})
		return proto.OpenOK{FH: fh, Size: ent.size}, fh
	}
	p.st.openMisses.Add(1)
	ent, msg := p.resolveEntry(m.Path)
	if msg != nil {
		return msg, 0
	}
	outcome = "miss " + ent.addr
	fh := p.issueHandle(&phandle{path: m.Path, ent: ent})
	return proto.OpenOK{FH: fh, Size: ent.size}, fh
}

// read answers a downstream Read: from the block cache when resident,
// otherwise filling the containing block (and a readahead window of
// followers) from origin first. Pass-through handles read via the
// upstream File.
func (p *Proxy) read(m proto.Read, r mux.Responder) proto.Message {
	h := p.handleFor(m.FH)
	if h == nil {
		return proto.Err{Code: proto.EInval, Msg: "bad file handle"}
	}
	if h.pass != nil {
		return p.readThrough(h, m, r)
	}
	// First pass over the cache is the hot path; each fill attempt
	// re-resolves a stale entry, so two rounds cover "block absent" and
	// "entry went stale under us".
	for attempt := 0; attempt < 3; attempt++ {
		if f, n, ok := p.readFrame(m, r.Stream()); ok {
			if attempt == 0 {
				p.st.hits.Add(1)
			}
			p.st.bytesServed.Add(int64(n))
			if err := r.SendFrame(f); err != nil {
				return nil
			}
			return nil
		}
		if attempt == 0 {
			p.st.misses.Add(1)
		}
		if msg := p.fill(h, m); msg != nil {
			return msg
		}
	}
	return proto.Err{Code: proto.EIO, Msg: "pcache: block fill did not converge"}
}

// readThrough serves a Read on a pass-through (write-side) handle by
// delegating to the upstream File, still single-copy into a pooled
// frame.
func (p *Proxy) readThrough(h *phandle, m proto.Read, r mux.Responder) proto.Message {
	n := int(m.N)
	if max := transport.MaxFrame / 2; n > max {
		n = max
	}
	f, dst := proto.StartDataFrame(r.Stream(), m.FH, n)
	got, err := h.pass.ReadAt(dst, m.Off)
	if err != nil && err != io.EOF {
		f.Release()
		return errReply(err)
	}
	f.FinishData(got, err == io.EOF)
	p.st.bytesServed.Add(int64(got))
	r.SendFrame(f)
	return nil
}

// write forwards a downstream Write through the pass-through handle
// and keeps the block cache honest by invalidating the path.
func (p *Proxy) write(m proto.Write) proto.Message {
	h := p.handleFor(m.FH)
	if h == nil {
		return proto.Err{Code: proto.EInval, Msg: "bad file handle"}
	}
	if h.pass == nil {
		return proto.Err{Code: proto.EInval, Msg: "handle not open for writing"}
	}
	n, err := h.pass.WriteAt(m.Bytes, m.Off)
	if err != nil {
		return errReply(err)
	}
	p.invalidatePath(h.path)
	return proto.WriteOK{FH: m.FH, N: uint32(n)}
}

func (p *Proxy) trunc(m proto.Trunc) proto.Message {
	h := p.handleFor(m.FH)
	if h == nil {
		return proto.Err{Code: proto.EInval, Msg: "bad file handle"}
	}
	if h.pass == nil {
		return proto.Err{Code: proto.EInval, Msg: "handle not open for writing"}
	}
	if err := h.pass.Truncate(m.Size); err != nil {
		return errReply(err)
	}
	p.invalidatePath(h.path)
	return proto.TruncOK{FH: m.FH}
}

func (p *Proxy) closeHandle(m proto.Close) proto.Message {
	p.dropHandle(m.FH)
	return proto.CloseOK{FH: m.FH}
}

// stat answers from the cached entry when one is live (no origin
// traffic), otherwise walks upstream.
func (p *Proxy) stat(m proto.Stat) proto.Message {
	if ent := p.liveEntry(m.Path); ent != nil {
		p.st.locHits.Add(1)
		return proto.StatOK{Exists: true, Size: ent.size, Online: true}
	}
	st, err := p.up.Stat(m.Path)
	if err == client.ErrNotExist {
		return proto.StatOK{Exists: false}
	}
	if err != nil {
		return errReply(err)
	}
	return st
}

// locateDown answers a downstream Locate. The proxy is the terminal
// data server for everything it can resolve, so the answer is always
// its own address — but the path is resolved first so nonexistent
// files fail honestly, and a Refresh request invalidates the edge
// caches and propagates the refresh upstream (the Section III-C1
// protocol carrying invalidation through the tier).
func (p *Proxy) locateDown(m proto.Locate) proto.Message {
	outcome := "error"
	sp := p.cfg.Tracer.Start("pcache.locate", m.Path)
	defer func() { sp.End(outcome) }()
	if m.Refresh {
		p.invalidatePath(m.Path)
		// The client's Avoid names this proxy; what failed from our
		// vantage is whatever origin binding we held, which
		// invalidatePath just evicted. Walk upstream with Refresh so
		// the origin cmsd re-resolves too.
		if _, _, msg := p.resolveLocation(m.Path, true, ""); msg != nil {
			return msg
		}
		outcome = "refreshed"
		return proto.Redirect{Addr: p.cfg.Addr}
	}
	if ent := p.liveEntry(m.Path); ent != nil {
		p.st.locHits.Add(1)
		outcome = "hit"
		return proto.Redirect{Addr: p.cfg.Addr}
	}
	if _, _, msg := p.resolveLocation(m.Path, false, ""); msg != nil {
		return msg
	}
	outcome = "resolved"
	return proto.Redirect{Addr: p.cfg.Addr}
}

func (p *Proxy) unlink(m proto.Unlink) proto.Message {
	if err := p.up.Unlink(m.Path); err != nil {
		p.invalidatePath(m.Path)
		return errReply(err)
	}
	p.invalidatePath(m.Path)
	return proto.UnlinkOK{}
}

func (p *Proxy) prepare(m proto.Prepare) proto.Message {
	if err := p.up.Prepare(m.Paths, m.Write); err != nil {
		return errReply(err)
	}
	return proto.PrepareOK{Queued: uint32(len(m.Paths))}
}

// ------------------------------------------------------------ handles

func (p *Proxy) issueHandle(h *phandle) uint64 {
	p.hmu.Lock()
	p.nextFH++
	fh := p.nextFH
	p.handles[fh] = h
	p.hmu.Unlock()
	return fh
}

func (p *Proxy) handleFor(fh uint64) *phandle {
	p.hmu.Lock()
	h := p.handles[fh]
	p.hmu.Unlock()
	return h
}

func (p *Proxy) dropHandle(fh uint64) {
	p.hmu.Lock()
	h := p.handles[fh]
	delete(p.handles, fh)
	p.hmu.Unlock()
	if h != nil && h.pass != nil {
		h.pass.Close()
	}
}

// errReply maps an upstream client error onto the downstream protocol.
func errReply(err error) proto.Message {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, client.ErrNotExist):
		return proto.Err{Code: proto.ENoEnt, Msg: "no such file"}
	case errors.Is(err, client.ErrExist):
		return proto.Err{Code: proto.EExist, Msg: "file exists"}
	case errors.Is(err, client.ErrTimeout):
		return proto.Err{Code: proto.EBusy, Msg: "origin busy: " + err.Error()}
	default:
		return proto.Err{Code: proto.EIO, Msg: err.Error()}
	}
}
