package pcache

// The data half of the proxy cache: block-granular file caching with
// LRU capacity eviction plus the Section III-A lifetime windows, and
// the location half: origin data servers mapped onto internal/cache
// server slots so location answers ride the same striped table,
// eviction windows, and Figure-3 epoch machinery the origin cmsd uses.
//
// Ownership rules (DESIGN.md §9): block buffers are owned by the block
// cache and never leave it — hits copy into a pooled frame under the
// cache lock (the same single-copy discipline as xrd's read path), and
// fills copy out of the receive frame before inserting, because
// proto.Data.Bytes aliases a buffer that dies with the call.

import (
	"scalla/internal/bitvec"
	"scalla/internal/cache"
	"scalla/internal/mux"
	"scalla/internal/names"
	"scalla/internal/proto"
)

// entry is the cached state for one file: its origin binding (server
// address, location slot, origin session and handle) and the resident
// blocks. Entries are immutable once built except for the block map
// and the dead flag; invalidation drops the whole entry and the next
// access rebuilds one.
type entry struct {
	path   string
	size   int64
	addr   string // origin data server holding the file
	slot   int    // location-cache slot of addr
	sepoch uint64 // slotEpoch stamp at bind time
	mc     *mux.Conn
	fh     uint64 // origin file handle, valid only while mc lives

	dead    bool // under Proxy.bmu; entry removed, blocks dropped
	blocks  map[int64]*block
	pending map[int64]chan struct{} // in-flight fills, under Proxy.bmu
}

// block is one cached span of a file. Blocks sit on three structures
// at once: the owning entry's index map, the proxy-wide LRU list
// (capacity eviction), and one of the 64 lifetime windows (age
// eviction, the hide-then-sweep of Section III-A at block granularity).
type block struct {
	ent  *entry
	idx  int64
	data []byte
	ta   uint64 // window tick at insertion

	prev, next *block // intrusive LRU links
	wnext      *block // window chain
	gone       bool   // dropped; window sweep discards the node lazily
}

// stale reports whether the entry's origin binding has been passed by
// an invalidation epoch. Called with or without bmu held; sepoch and
// slot are immutable and the epoch is atomic.
func (e *entry) stale(p *Proxy) bool {
	return p.slotEpoch[e.slot].Load() != e.sepoch
}

// ----------------------------------------------------------- hit path

// readFrame serves a Read from resident blocks into a pooled frame: a
// map probe, a memcpy under the cache lock, and an LRU splice — no
// allocation once the frame pool is warm. It reports false when the
// handle is not a live cached read handle or the block is absent; the
// caller fills and retries. Reads crossing a block boundary return the
// in-block prefix (short reads are legal downstream).
func (p *Proxy) readFrame(m proto.Read, stream uint32) (*proto.Frame, int, bool) {
	p.hmu.Lock()
	h := p.handles[m.FH]
	p.hmu.Unlock()
	if h == nil || h.ent == nil {
		return nil, 0, false
	}
	p.bmu.Lock()
	ent := h.ent
	if ent.dead || ent.stale(p) {
		p.bmu.Unlock()
		return nil, 0, false
	}
	if m.Off >= ent.size {
		p.bmu.Unlock()
		f, _ := proto.StartDataFrame(stream, m.FH, 0)
		f.FinishData(0, true)
		return f, 0, true
	}
	bs := int64(p.cfg.BlockSize)
	bi := m.Off / bs
	b := ent.blocks[bi]
	if b == nil {
		p.bmu.Unlock()
		return nil, 0, false
	}
	bo := int(m.Off - bi*bs)
	if bo >= len(b.data) {
		// A truncated-short block (origin returned less than a full
		// block before EOF); nothing at this offset.
		p.bmu.Unlock()
		return nil, 0, false
	}
	n := int(m.N)
	if avail := len(b.data) - bo; n > avail {
		n = avail
	}
	f, dst := proto.StartDataFrame(stream, m.FH, n)
	copy(dst, b.data[bo:bo+n])
	p.lruTouch(b)
	eof := m.Off+int64(n) >= ent.size
	p.bmu.Unlock()
	f.FinishData(n, eof)
	return f, n, true
}

// ---------------------------------------------------------- miss path

// fill makes the block containing m.Off resident: it re-resolves the
// entry if the binding went stale, fetches the block from origin, and
// kicks the readahead window. A nil return means "retry the cache"; a
// non-nil message is the downstream reply (error or staging wait).
func (p *Proxy) fill(h *phandle, m proto.Read) proto.Message {
	p.hmu.Lock()
	ent := h.ent
	path := h.path
	p.hmu.Unlock()
	if ent == nil || p.entryDead(ent) {
		newEnt, msg := p.resolveEntry(path)
		if msg != nil {
			return msg
		}
		p.hmu.Lock()
		h.ent = newEnt
		p.hmu.Unlock()
		ent = newEnt
	}
	if m.Off >= ent.size {
		return nil // EOF; the cache path serves the empty frame
	}
	bi := m.Off / int64(p.cfg.BlockSize)
	if msg := p.fetchBlock(ent, bi); msg != nil {
		return msg
	}
	p.prefetch(ent, bi+1)
	return nil
}

func (p *Proxy) entryDead(ent *entry) bool {
	p.bmu.Lock()
	dead := ent.dead
	p.bmu.Unlock()
	return dead || ent.stale(p)
}

// fetchBlock pulls one block from the entry's origin session and
// inserts it. Transport failures and origin ENoEnt invalidate the
// entry and return nil so the caller's retry re-resolves (possibly at
// another replica, via the refresh protocol); other origin verdicts
// pass through downstream.
func (p *Proxy) fetchBlock(ent *entry, bi int64) proto.Message {
	ch, claimed := p.claimFill(ent, bi)
	if !claimed {
		if ch != nil {
			// A readahead fill for this block is already in flight;
			// ride it instead of issuing a duplicate origin read.
			<-ch
		}
		return nil
	}
	defer p.finishFill(ent, bi, ch)
	sp := p.cfg.Tracer.Start("pcache.fill", ent.path)
	bs := p.cfg.BlockSize
	reply, err := ent.mc.Call(proto.Read{FH: ent.fh, Off: bi * int64(bs), N: uint32(bs)}, p.cfg.RPCTimeout)
	if err != nil {
		sp.End("origin severed: " + err.Error())
		p.invalidateEntry(ent)
		return nil
	}
	switch v := reply.(type) {
	case proto.Data:
		p.st.originBytes.Add(int64(len(v.Bytes)))
		data := make([]byte, len(v.Bytes))
		copy(data, v.Bytes) // v.Bytes aliases the receive frame
		p.insertBlock(ent, bi, data)
		sp.End("filled")
		return nil
	case proto.Err:
		p.invalidateEntry(ent)
		if v.Code == proto.ENoEnt {
			sp.End("origin lost file")
			return nil // retry re-resolves through a refresh walk
		}
		sp.End("origin error")
		return v
	case proto.Wait:
		sp.End("origin staging")
		return v
	default:
		sp.End("bad reply")
		return proto.Err{Code: proto.EIO, Msg: "pcache: unexpected origin read reply"}
	}
}

// prefetch pipelines the next blocks of the readahead window from
// origin in the background, skipping ones already resident. Misses on
// a sequential scan therefore pay one round trip per window, not per
// block — the same economics as the client's own readahead, applied
// origin-side.
func (p *Proxy) prefetch(ent *entry, from int64) {
	want := p.cfg.OriginReadahead - 1
	if want <= 0 {
		return
	}
	bs := int64(p.cfg.BlockSize)
	var need []int64
	var chans []chan struct{}
	p.bmu.Lock()
	for bi := from; bi < from+int64(want); bi++ {
		if bi*bs >= ent.size {
			break
		}
		if ent.dead || ent.blocks[bi] != nil || ent.pending[bi] != nil {
			continue
		}
		if ent.pending == nil {
			ent.pending = make(map[int64]chan struct{})
		}
		ch := make(chan struct{})
		ent.pending[bi] = ch
		need = append(need, bi)
		chans = append(chans, ch)
	}
	p.bmu.Unlock()
	if len(need) == 0 {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		calls := make([]*mux.Call, len(need))
		for i, bi := range need {
			ca, err := ent.mc.Start(proto.Read{FH: ent.fh, Off: bi * bs, N: uint32(bs)})
			if err != nil {
				break
			}
			calls[i] = ca
		}
		for i, ca := range calls {
			if ca != nil {
				if reply, err := ca.Wait(p.cfg.RPCTimeout); err == nil {
					if d, ok := reply.(proto.Data); ok {
						p.st.originBytes.Add(int64(len(d.Bytes)))
						data := make([]byte, len(d.Bytes))
						copy(data, d.Bytes)
						p.insertBlock(ent, need[i], data)
					}
				}
			}
			p.finishFill(ent, need[i], chans[i])
		}
	}()
}

// claimFill registers an in-flight fill for (ent, bi). claimed=true
// means the caller owns the fetch and must call finishFill when done;
// claimed=false with a non-nil channel means another fill is already
// in flight (wait on it); nil, false means the block is resident or
// the entry is dead — nothing to fetch.
func (p *Proxy) claimFill(ent *entry, bi int64) (chan struct{}, bool) {
	p.bmu.Lock()
	defer p.bmu.Unlock()
	if ent.dead || ent.blocks[bi] != nil {
		return nil, false
	}
	if ch := ent.pending[bi]; ch != nil {
		return ch, false
	}
	if ent.pending == nil {
		ent.pending = make(map[int64]chan struct{})
	}
	ch := make(chan struct{})
	ent.pending[bi] = ch
	return ch, true
}

// finishFill retires an in-flight fill claim and wakes any waiters.
// The insert (if the fetch succeeded) happens before this, so waiters
// retry the cache and hit.
func (p *Proxy) finishFill(ent *entry, bi int64, ch chan struct{}) {
	p.bmu.Lock()
	if ent.pending[bi] == ch {
		delete(ent.pending, bi)
	}
	p.bmu.Unlock()
	close(ch)
}

// ------------------------------------------------- block bookkeeping

// insertBlock makes data resident for (ent, bi), charging capacity and
// evicting from the LRU tail until the cache fits. Duplicate inserts
// (a racing prefetch) and inserts into dead entries are dropped.
func (p *Proxy) insertBlock(ent *entry, bi int64, data []byte) {
	p.bmu.Lock()
	defer p.bmu.Unlock()
	if ent.dead || ent.blocks[bi] != nil {
		return
	}
	b := &block{ent: ent, idx: bi, data: data, ta: p.tw}
	ent.blocks[bi] = b
	p.lruPushFront(b)
	w := p.tw % uint64(len(p.windows))
	b.wnext = p.windows[w]
	p.windows[w] = b
	p.blockBytes += int64(len(data))
	p.nblocks++
	for p.blockBytes > p.cfg.CacheBytes && p.lruBack != nil && p.lruBack != b {
		victim := p.lruBack
		p.dropBlockLocked(victim)
		p.st.evictedLRU.Add(1)
	}
}

// dropBlockLocked removes a block from its entry and the LRU list and
// releases its bytes; the window chain discards the husk at its next
// sweep. Caller holds bmu.
func (p *Proxy) dropBlockLocked(b *block) {
	if b.gone {
		return
	}
	b.gone = true
	p.lruUnlink(b)
	if b.ent.blocks != nil {
		delete(b.ent.blocks, b.idx)
	}
	p.blockBytes -= int64(len(b.data))
	p.nblocks--
	b.data = nil
}

// tickBlocks advances the block cache's window clock one step and
// sweeps the window that comes due: any block inserted a full lifetime
// (64 windows) ago is dropped; husks of already-dropped blocks are
// discarded. This is the hide-then-sweep of Section III-A with drop
// taking the place of hide, since blocks have no refresh semantics.
func (p *Proxy) tickBlocks() {
	p.bmu.Lock()
	p.tw++
	w := p.tw % uint64(len(p.windows))
	var live *block
	for b := p.windows[w]; b != nil; {
		next := b.wnext
		switch {
		case b.gone:
			// already dropped; discard the husk
		case b.ta != p.tw:
			p.dropBlockLocked(b)
			p.st.expiredWindow.Add(1)
		default:
			b.wnext = live
			live = b
		}
		b = next
	}
	p.windows[w] = live
	p.bmu.Unlock()
}

// lruPushFront, lruUnlink, lruTouch maintain the intrusive
// most-recently-used list; all run under bmu and allocate nothing.
func (p *Proxy) lruPushFront(b *block) {
	b.prev = nil
	b.next = p.lruFront
	if p.lruFront != nil {
		p.lruFront.prev = b
	}
	p.lruFront = b
	if p.lruBack == nil {
		p.lruBack = b
	}
}

func (p *Proxy) lruUnlink(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else if p.lruFront == b {
		p.lruFront = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else if p.lruBack == b {
		p.lruBack = b.prev
	}
	b.prev, b.next = nil, nil
}

func (p *Proxy) lruTouch(b *block) {
	if p.lruFront == b {
		return
	}
	p.lruUnlink(b)
	p.lruPushFront(b)
}

// --------------------------------------------------------- resolution

// liveEntry returns the path's cached entry if it is alive and its
// origin binding has not been invalidated.
func (p *Proxy) liveEntry(path string) *entry {
	p.bmu.Lock()
	ent := p.entries[path]
	if ent != nil && (ent.dead || ent.stale(p)) {
		ent = nil
	}
	p.bmu.Unlock()
	return ent
}

// resolveEntry builds (or returns) a live entry for path: resolve a
// location (edge cache first, origin walk on miss), open the file at
// the origin data server, and register the binding. A failed open
// evicts the location bit and retries once through the refresh
// protocol — Locate{Refresh, Avoid: failed} upstream — so a stale
// answer self-corrects in one extra walk instead of a miss-storm.
func (p *Proxy) resolveEntry(path string) (*entry, proto.Message) {
	if ent := p.liveEntry(path); ent != nil {
		return ent, nil
	}
	avoid := ""
	for attempt := 0; attempt < 2; attempt++ {
		addr, slot, msg := p.resolveLocation(path, attempt > 0, avoid)
		if msg != nil {
			return nil, msg
		}
		ent, msg, retry := p.openOrigin(path, addr, slot)
		if ent != nil {
			return ent, nil
		}
		if !retry {
			return nil, msg
		}
		avoid = addr
	}
	return nil, proto.Err{Code: proto.ENoEnt, Msg: "pcache: no origin replica would serve " + path}
}

// resolveLocation answers "which origin data server holds path": from
// the edge location cache when possible, otherwise by walking the
// origin managers. refresh forces the walk with the Section III-C1
// Refresh/Avoid verdicts so the origin re-resolves too.
func (p *Proxy) resolveLocation(path string, refresh bool, avoid string) (string, int, proto.Message) {
	if !refresh {
		if _, view, ok := p.loc.Fetch(path, p.slotMask(), 0); ok {
			if addr, slot, found := p.addrFromView(view); found {
				p.st.locHits.Add(1)
				return addr, slot, nil
			}
		}
	}
	p.st.locMisses.Add(1)
	p.st.originLocates.Add(1)
	var addr string
	var err error
	if refresh {
		addr, err = p.up.Relocate(path, false, avoid)
	} else {
		addr, err = p.up.Locate(path, false)
	}
	if err != nil {
		return "", 0, errReply(err)
	}
	slot := p.slotFor(addr)
	p.loc.Add(path, p.slotMask(), 0)
	p.loc.Update(path, names.Hash(path), slot, false, true)
	return addr, slot, nil
}

// openOrigin opens path at one origin data server over the shared
// pooled connection. retry=true verdicts mean "the location was
// stale": the caller evicts and refreshes. The origin handle's
// lifetime is tied to the pooled connection (the xrd server drops
// handles when their connection dies), so the entry remembers which
// Conn it opened on and goes stale with it.
func (p *Proxy) openOrigin(path, addr string, slot int) (*entry, proto.Message, bool) {
	sepoch := p.slotEpoch[slot].Load()
	mc, err := p.pool.Get(addr)
	if err != nil {
		p.evictLoc(path, slot)
		return nil, errReply(err), true
	}
	reply, err := mc.Call(proto.Open{Path: path}, p.cfg.RPCTimeout)
	if err != nil {
		p.pool.Drop(addr, mc)
		p.evictLoc(path, slot)
		return nil, proto.Err{Code: proto.EIO, Msg: "pcache: origin open: " + err.Error()}, true
	}
	switch v := reply.(type) {
	case proto.OpenOK:
		p.st.originOpens.Add(1)
		ent := &entry{
			path: path, size: v.Size, addr: addr, slot: slot,
			sepoch: sepoch, mc: mc, fh: v.FH,
			blocks: make(map[int64]*block),
		}
		p.bmu.Lock()
		if existing := p.entries[path]; existing != nil && !existing.dead && !existing.stale(p) {
			// Another open raced us here; keep theirs, close ours.
			p.bmu.Unlock()
			go func() { mc.Call(proto.Close{FH: v.FH}, p.cfg.RPCTimeout) }()
			return existing, nil, false
		} else if existing != nil {
			p.dropEntryLocked(existing)
		}
		p.entries[path] = ent
		p.bmu.Unlock()
		return ent, nil, false
	case proto.Err:
		p.evictLoc(path, slot)
		if v.Code == proto.ENoEnt {
			return nil, v, true // stale redirect: refresh and retry
		}
		return nil, v, false
	case proto.Wait:
		return nil, v, false // staging; downstream client waits and retries
	default:
		return nil, proto.Err{Code: proto.EIO, Msg: "pcache: unexpected origin open reply"}, false
	}
}

// ------------------------------------------------------- invalidation

// invalidatePath drops any cached entry and location bits for path, so
// the next access re-resolves from origin. Used for write-through
// opens, writes, truncates, unlinks, and downstream refresh requests.
func (p *Proxy) invalidatePath(path string) {
	p.bmu.Lock()
	ent := p.entries[path]
	if ent != nil {
		p.dropEntryLocked(ent)
	}
	p.bmu.Unlock()
	if ent != nil {
		p.evictLoc(path, ent.slot)
		p.closeOriginHandle(ent)
	}
}

// invalidateEntry drops one entry after an origin-side failure; the
// location bit for its server is evicted so the next resolution walks
// (or refreshes) instead of bouncing off the same stale answer.
func (p *Proxy) invalidateEntry(ent *entry) {
	p.bmu.Lock()
	dropped := !ent.dead
	if dropped {
		p.dropEntryLocked(ent)
	}
	p.bmu.Unlock()
	if dropped {
		p.evictLoc(ent.path, ent.slot)
		p.closeOriginHandle(ent)
	}
}

// dropEntryLocked marks ent dead and releases its blocks. Caller
// holds bmu.
func (p *Proxy) dropEntryLocked(ent *entry) {
	if ent.dead {
		return
	}
	ent.dead = true
	if p.entries[ent.path] == ent {
		delete(p.entries, ent.path)
	}
	for _, b := range ent.blocks {
		p.dropBlockLocked(b)
	}
	ent.blocks = nil
	p.st.invalidated.Add(1)
}

// closeOriginHandle returns the entry's origin file handle best-effort
// so a long-lived pooled connection does not accumulate handles.
func (p *Proxy) closeOriginHandle(ent *entry) {
	mc, fh := ent.mc, ent.fh
	if mc == nil || mc.Err() != nil {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		mc.Call(proto.Close{FH: fh}, p.cfg.RPCTimeout)
	}()
}

// InvalidateOrigin advances the eviction epoch for one origin data
// server: every entry bound to it goes stale immediately (the hit path
// compares epochs before serving a single byte) and its location bits
// are condemned through the cache's ServerDropped — the Figure-3
// correction clears them on the next fetch. Call it when an origin
// server is known dead or its content must be recached.
func (p *Proxy) InvalidateOrigin(addr string) {
	p.smu.Lock()
	slot, ok := p.slotOf[addr]
	p.smu.Unlock()
	if !ok {
		return
	}
	p.slotEpoch[slot].Add(1)
	p.loc.ServerDropped(slot)
	// Proactively reclaim; correctness does not depend on this sweep —
	// the epoch stamp already fences every stale entry.
	p.bmu.Lock()
	var stale []*entry
	for _, ent := range p.entries {
		if ent.slot == slot {
			stale = append(stale, ent)
			p.dropEntryLocked(ent)
		}
	}
	p.bmu.Unlock()
	for _, ent := range stale {
		p.closeOriginHandle(ent)
	}
}

// --------------------------------------------------------- slot table

// slotFor maps an origin data-server address to a location-cache slot,
// assigning one on first sight. Past 64 distinct servers, slots are
// recycled round-robin with a ServerDropped epoch bump so stale bits
// from the previous owner cannot leak locations.
func (p *Proxy) slotFor(addr string) int {
	p.smu.Lock()
	if s, ok := p.slotOf[addr]; ok {
		p.smu.Unlock()
		return s
	}
	var s int
	if len(p.slotOf) < bitvec.Width {
		s = len(p.slotOf)
	} else {
		s = p.nextRR % bitvec.Width
		p.nextRR++
		delete(p.slotOf, p.addrOf[s])
		p.slotEpoch[s].Add(1)
	}
	p.slotOf[addr] = s
	p.addrOf[s] = addr
	p.mask = p.mask.With(s)
	recycled := len(p.slotOf) == bitvec.Width && p.nextRR > 0
	p.smu.Unlock()
	if recycled {
		p.loc.ServerDropped(s)
	}
	p.loc.ServerConnected(s)
	return s
}

func (p *Proxy) slotMask() bitvec.Vec {
	p.smu.Lock()
	m := p.mask
	p.smu.Unlock()
	return m
}

// addrFromView picks the first location bit that maps to a known
// origin server.
func (p *Proxy) addrFromView(v cache.View) (string, int, bool) {
	p.smu.Lock()
	defer p.smu.Unlock()
	found := -1
	v.Vh.ForEach(func(i int) bool {
		if p.addrOf[i] != "" {
			found = i
			return false
		}
		return true
	})
	if found < 0 {
		return "", 0, false
	}
	return p.addrOf[found], found, true
}

// evictLoc clears one server bit from path's location entry, so the
// next fetch stops naming a replica that failed us.
func (p *Proxy) evictLoc(path string, slot int) {
	if ref, _, ok := p.loc.Fetch(path, p.slotMask(), 0); ok {
		p.loc.Evict(ref, slot)
	}
}
