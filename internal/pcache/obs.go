package pcache

// Observability wiring: the counter block, the summary-monitoring
// frame, and the admin/status HTTP endpoint, mirroring cmsd.Node's
// wiring so a proxy slots into the same dashboards.

import (
	"net/http"
	"sync/atomic"

	"scalla/internal/obs"
	"scalla/internal/transport"
)

// stats is the proxy's hot-path counter block; everything is atomic so
// the read path never takes a statistics lock.
type stats struct {
	hits          atomic.Int64
	misses        atomic.Int64
	openHits      atomic.Int64
	openMisses    atomic.Int64
	locHits       atomic.Int64
	locMisses     atomic.Int64
	originBytes   atomic.Int64
	originOpens   atomic.Int64
	originLocates atomic.Int64
	bytesServed   atomic.Int64
	evictedLRU    atomic.Int64
	expiredWindow atomic.Int64
	invalidated   atomic.Int64
}

// Stats is a point-in-time snapshot of the proxy's caches and origin
// traffic.
type Stats struct {
	// Entries is the number of files with live cached state.
	Entries int
	// Blocks is the number of resident data blocks.
	Blocks int
	// BlockBytes is the bytes held by resident blocks.
	BlockBytes int64
	// Hits counts reads served from resident blocks.
	Hits int64
	// Misses counts reads that had to fetch from origin first.
	Misses int64
	// OpenHits counts opens satisfied without any origin frame.
	OpenHits int64
	// OpenMisses counts opens that resolved through origin.
	OpenMisses int64
	// LocHits counts location answers from the edge cache.
	LocHits int64
	// LocMisses counts location answers that walked to origin.
	LocMisses int64
	// OriginBytes is the data volume pulled from origin servers.
	OriginBytes int64
	// OriginOpens counts opens issued to origin data servers.
	OriginOpens int64
	// OriginLocates counts locate walks to the origin managers.
	OriginLocates int64
	// BytesServed is the data volume sent downstream.
	BytesServed int64
	// EvictedLRU counts blocks evicted for capacity.
	EvictedLRU int64
	// ExpiredWindow counts blocks expired by lifetime window sweeps.
	ExpiredWindow int64
	// Invalidated counts entries dropped as stale.
	Invalidated int64
}

// HitRate is the block-read hit ratio in [0, 1], or 0 before any read.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// OriginOffload is the fraction of served data bytes that did NOT have
// to be pulled from origin, in [0, 1]. A cold cache offloads nothing;
// a steady-state edge should approach its hit rate.
func (s Stats) OriginOffload() float64 {
	if s.BytesServed == 0 {
		return 0
	}
	off := 1 - float64(s.OriginBytes)/float64(s.BytesServed)
	if off < 0 {
		return 0
	}
	return off
}

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.bmu.Lock()
	entries := len(p.entries)
	blocks := p.nblocks
	bytes := p.blockBytes
	p.bmu.Unlock()
	return Stats{
		Entries:       entries,
		Blocks:        blocks,
		BlockBytes:    bytes,
		Hits:          p.st.hits.Load(),
		Misses:        p.st.misses.Load(),
		OpenHits:      p.st.openHits.Load(),
		OpenMisses:    p.st.openMisses.Load(),
		LocHits:       p.st.locHits.Load(),
		LocMisses:     p.st.locMisses.Load(),
		OriginBytes:   p.st.originBytes.Load(),
		OriginOpens:   p.st.originOpens.Load(),
		OriginLocates: p.st.originLocates.Load(),
		BytesServed:   p.st.bytesServed.Load(),
		EvictedLRU:    p.st.evictedLRU.Load(),
		ExpiredWindow: p.st.expiredWindow.Load(),
		Invalidated:   p.st.invalidated.Load(),
	}
}

// Frame assembles the proxy's summary-monitoring frame: the pcache
// section, the underlying location-cache section (same shape as a
// manager's), and transport counters when running over a counting
// network.
func (p *Proxy) Frame() obs.Frame {
	f := obs.Frame{Node: p.cfg.Name, Role: "pcache"}
	s := p.Stats()
	f.PCache = &obs.PCacheSummary{
		Entries:       s.Entries,
		Blocks:        s.Blocks,
		BlockBytes:    s.BlockBytes,
		Hits:          s.Hits,
		Misses:        s.Misses,
		OpenHits:      s.OpenHits,
		OpenMiss:      s.OpenMisses,
		LocHits:       s.LocHits,
		LocMisses:     s.LocMisses,
		OriginBytes:   s.OriginBytes,
		OriginOpens:   s.OriginOpens,
		OriginLocates: s.OriginLocates,
		BytesServed:   s.BytesServed,
		EvictedLRU:    s.EvictedLRU,
		ExpiredWindow: s.ExpiredWindow,
		Invalidated:   s.Invalidated,
	}
	cs := p.loc.Stats()
	lf := 0.0
	if cs.Buckets > 0 {
		lf = float64(cs.Entries) / float64(cs.Buckets)
	}
	conn := p.loc.ConnStamps()
	f.Cache = &obs.CacheSummary{
		Entries: cs.Entries, Buckets: cs.Buckets, LoadFactor: lf,
		Inserts: cs.Inserts, Hits: cs.Hits, Misses: cs.Misses,
		Resizes: cs.Resizes, Hidden: cs.Hidden, Swept: cs.Swept,
		Refreshes: cs.Refreshes,
		Ticks:     p.loc.TickCount(),
		Epoch:     p.loc.Epoch(),
		Conn:      obs.TrimConn(conn[:]),
	}
	f.Sched = p.sched.Summary()
	if cn, ok := p.cfg.Net.(*transport.CountingNetwork); ok {
		ns := cn.Stats()
		f.Net = &obs.NetSummary{FramesSent: ns.FramesSent, BytesSent: ns.BytesSent, Dials: ns.Dials}
	}
	if w, ok := transport.WireOf(p.cfg.Net); ok {
		f.Wire = w.Summary()
	}
	return f
}

// Tracer returns the proxy's event tracer (enable it to record spans).
func (p *Proxy) Tracer() *obs.Tracer { return p.cfg.Tracer }

// AdminHandler returns the proxy's admin/status endpoint serving
// /statusz, /metricsz, and /tracez.
func (p *Proxy) AdminHandler() http.Handler {
	return obs.NewHandler(obs.AdminState{Collect: p.Frame, Tracer: p.cfg.Tracer})
}
