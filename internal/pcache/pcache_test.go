package pcache

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/client"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/store"
	"scalla/internal/transport"
	"scalla/internal/workload"
)

// Short timings so full-delay paths complete quickly in tests.
const (
	tFullDelay  = 150 * time.Millisecond
	tFastPeriod = 20 * time.Millisecond
)

// origin is a miniature origin federation: one manager, N data
// servers, their stores.
type origin struct {
	net    *transport.InProc
	mgr    *cmsd.Node
	srvs   []*cmsd.Node
	stores []*store.Store
}

func startOrigin(t testing.TB, servers int) *origin {
	t.Helper()
	net := transport.NewInProc(transport.InProcConfig{})
	o := &origin{net: net}
	o.mgr = startNode(t, cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: "mgr:data", CtlAddr: "mgr:ctl",
		Net: net,
		Core: cmsd.Config{
			Cache:     cache.Config{InitialBuckets: 89},
			Queue:     respq.Config{Period: tFastPeriod},
			FullDelay: tFullDelay,
		},
		PingInterval:   50 * time.Millisecond,
		ReconnectDelay: 20 * time.Millisecond,
	})
	for i := 0; i < servers; i++ {
		st := store.New(store.Config{})
		name := fmt.Sprintf("srv%d", i)
		srv := startNode(t, cmsd.NodeConfig{
			Name: name, Role: proto.RoleServer,
			DataAddr: name + ":data",
			Parents:  []string{"mgr:ctl"}, Prefixes: []string{"/"},
			Net: net, Store: st,
			ReconnectDelay: 20 * time.Millisecond,
		})
		o.srvs = append(o.srvs, srv)
		o.stores = append(o.stores, st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for o.mgr.Core().Table().Count() < servers {
		if time.Now().After(deadline) {
			t.Fatalf("origin did not form: %d/%d children", o.mgr.Core().Table().Count(), servers)
		}
		time.Sleep(time.Millisecond)
	}
	return o
}

func startNode(t testing.TB, cfg cmsd.NodeConfig) *cmsd.Node {
	t.Helper()
	n, err := cmsd.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// startProxy runs a proxy in front of the origin and returns it with a
// downstream client pointed at it.
func startProxy(t testing.TB, o *origin, cfg Config) (*Proxy, *client.Client) {
	t.Helper()
	cfg.Net = o.net
	if cfg.Addr == "" {
		cfg.Addr = "edge:data"
	}
	cfg.Origins = []string{o.mgr.DataAddr()}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	p := New(cfg)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	cl := client.New(client.Config{
		Net: o.net, Managers: []string{cfg.Addr},
		WaitBudget: 5 * time.Second,
	})
	t.Cleanup(cl.Close)
	return p, cl
}

// payload builds a deterministic, offset-identifiable file body.
func payload(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

// TestProxyServesThrough exercises the basic edge flow: a client
// pointed at the proxy reads a file it has never seen (miss fill from
// origin), then again (all hits), with correct bytes both times.
func TestProxyServesThrough(t *testing.T) {
	o := startOrigin(t, 2)
	want := payload(1, 200<<10) // 200 KiB: spans several 64 KiB blocks
	if err := o.stores[0].Put("/store/a.root", want); err != nil {
		t.Fatal(err)
	}
	p, cl := startProxy(t, o, Config{})

	for pass := 0; pass < 2; pass++ {
		got, err := cl.ReadFile("/store/a.root")
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: bytes differ (%d vs %d)", pass, len(got), len(want))
		}
	}
	s := p.Stats()
	if s.Hits == 0 {
		t.Fatalf("no block hits after a repeat read: %+v", s)
	}
	if s.OriginBytes > int64(2*len(want)) {
		t.Fatalf("origin pulled %d bytes for a %d byte file", s.OriginBytes, len(want))
	}
	if s.Blocks == 0 || s.Entries != 1 {
		t.Fatalf("expected one cached entry with blocks, got %+v", s)
	}
}

// TestRepeatOpensBypassOrigin pins the acceptance criterion: once a
// file is cached at the edge, repeat opens and reads complete without
// ANY frame reaching the origin — neither the cmsd control plane (the
// manager's cache sees no new lookups, the tree floods no queries) nor
// the origin data server (no new opens or reads).
func TestRepeatOpensBypassOrigin(t *testing.T) {
	o := startOrigin(t, 2)
	want := payload(2, 96<<10)
	if err := o.stores[1].Put("/store/hot.root", want); err != nil {
		t.Fatal(err)
	}
	p, cl := startProxy(t, o, Config{})

	// Warm: one open+read through the proxy.
	if _, err := cl.ReadFile("/store/hot.root"); err != nil {
		t.Fatal(err)
	}

	mgrCache := o.mgr.Core().Cache().Stats()
	baseLookups := mgrCache.Hits + mgrCache.Misses
	baseQueries := make([]int64, len(o.srvs))
	baseOpens := make([]int64, len(o.srvs))
	baseReads := make([]int64, len(o.srvs))
	for i, srv := range o.srvs {
		baseQueries[i] = int64(srv.QueriesReceived())
		ds := srv.DataServer().Stats()
		baseOpens[i] = ds.Opens
		baseReads[i] = ds.Reads
	}
	openHits := p.Stats().OpenHits

	const repeats = 25
	for i := 0; i < repeats; i++ {
		f, err := cl.Open("/store/hot.root")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("repeat %d: bytes differ", i)
		}
		f.Close()
	}

	mgrCache = o.mgr.Core().Cache().Stats()
	if got := mgrCache.Hits + mgrCache.Misses; got != baseLookups {
		t.Fatalf("origin manager cache saw %d new lookups during repeat opens", got-baseLookups)
	}
	for i, srv := range o.srvs {
		if q := int64(srv.QueriesReceived()); q != baseQueries[i] {
			t.Fatalf("origin server %d received %d new control queries", i, q-baseQueries[i])
		}
		ds := srv.DataServer().Stats()
		if ds.Opens != baseOpens[i] {
			t.Fatalf("origin server %d saw %d new opens", i, ds.Opens-baseOpens[i])
		}
		if ds.Reads != baseReads[i] {
			t.Fatalf("origin server %d saw %d new reads", i, ds.Reads-baseReads[i])
		}
	}
	if got := p.Stats().OpenHits - openHits; got != repeats {
		t.Fatalf("proxy open hits = %d, want %d", got, repeats)
	}
}

// TestProxyWriteThroughInvalidates checks the write path: writes pass
// through to origin and drop the edge's cached state, so a reader
// through the proxy sees the new bytes immediately.
func TestProxyWriteThroughInvalidates(t *testing.T) {
	o := startOrigin(t, 2)
	old := payload(3, 80<<10)
	if err := o.stores[0].Put("/store/w.root", old); err != nil {
		t.Fatal(err)
	}
	p, cl := startProxy(t, o, Config{})

	if got, err := cl.ReadFile("/store/w.root"); err != nil || !bytes.Equal(got, old) {
		t.Fatalf("warm read: %v", err)
	}
	if p.Stats().Entries != 1 {
		t.Fatalf("expected a cached entry, got %+v", p.Stats())
	}

	fresh := payload(4, 40<<10)
	if err := cl.WriteFile("/store/w.root", fresh); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/store/w.root")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("read after write-through returned stale bytes (%d vs %d)", len(got), len(fresh))
	}
}

// TestProxyStaleMoveConverges moves a file between origin servers
// behind the proxy's back. The next fill hits ENoEnt at the stale
// server; the proxy invalidates its binding and re-resolves through
// the refresh protocol (Locate{Refresh, Avoid}) — the client sees
// correct bytes with no error and no full-delay miss-storm.
func TestProxyStaleMoveConverges(t *testing.T) {
	o := startOrigin(t, 2)
	want := payload(5, 150<<10)
	if err := o.stores[0].Put("/store/m.root", want); err != nil {
		t.Fatal(err)
	}
	p, cl := startProxy(t, o, Config{})

	// Warm only the first block so later blocks must fill from origin.
	f, err := cl.Open("/store/m.root")
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 4<<10)
	if _, err := f.ReadAt(head, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	f.Close()

	// Move the file: srv0 loses it, srv1 gains it.
	if err := o.stores[1].Put("/store/m.root", want); err != nil {
		t.Fatal(err)
	}
	if err := o.stores[0].Unlink("/store/m.root"); err != nil {
		t.Fatal(err)
	}
	// Let prefetches racing the move settle so the tail blocks are a
	// deterministic miss against the now-empty srv0.
	time.Sleep(50 * time.Millisecond)
	p.InvalidateOrigin(o.srvs[0].DataAddr())

	start := time.Now()
	got, err := cl.ReadFile("/store/m.root")
	if err != nil {
		t.Fatalf("read after move: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read after move returned wrong bytes")
	}
	// Convergence must ride the refresh protocol, not the full delay:
	// well under even this test's shortened miss-storm bound.
	if d := time.Since(start); d > 2*tFullDelay {
		t.Fatalf("convergence took %v, smells like a miss-storm (full delay %v)", d, tFullDelay)
	}
}

// TestProxyUnlinkThroughProxy checks namespace deletes propagate and
// invalidate.
func TestProxyUnlinkThroughProxy(t *testing.T) {
	o := startOrigin(t, 2)
	if err := o.stores[0].Put("/store/d.root", payload(6, 8<<10)); err != nil {
		t.Fatal(err)
	}
	_, cl := startProxy(t, o, Config{})
	if _, err := cl.ReadFile("/store/d.root"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unlink("/store/d.root"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("/store/d.root"); err == nil {
		t.Fatal("open after unlink succeeded from the edge cache")
	}
}

// TestProxyLifetimeExpiresBlocks drives the block window clock a full
// lifetime and checks resident blocks age out.
func TestProxyLifetimeExpiresBlocks(t *testing.T) {
	o := startOrigin(t, 1)
	if err := o.stores[0].Put("/store/t.root", payload(7, 64<<10)); err != nil {
		t.Fatal(err)
	}
	p, cl := startProxy(t, o, Config{})
	if _, err := cl.ReadFile("/store/t.root"); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Blocks == 0 {
		t.Fatal("no resident blocks after a read")
	}
	for i := 0; i <= 64; i++ {
		p.tickBlocks()
	}
	s := p.Stats()
	if s.Blocks != 0 {
		t.Fatalf("blocks survived a full lifetime of window sweeps: %+v", s)
	}
	if s.ExpiredWindow == 0 {
		t.Fatalf("expiry not accounted: %+v", s)
	}
}

// TestProxyLifecycleHitRate replays the paper-motivating lifecycle
// workload — Zipf(s=1.1) opens over a dataset — through the proxy and
// pins the acceptance criteria: ≥80%% open hit-rate at steady state
// and origin traffic reduced accordingly.
func TestProxyLifecycleHitRate(t *testing.T) {
	o := startOrigin(t, 2)
	const files = 48
	dataset := make([]string, files)
	body := payload(8, 32<<10)
	for i := range dataset {
		dataset[i] = fmt.Sprintf("/store/ds/file-%03d.root", i)
		if err := o.stores[i%2].Put(dataset[i], body); err != nil {
			t.Fatal(err)
		}
	}
	p, cl := startProxy(t, o, Config{})

	z := workload.NewZipf(files, 1.1, 42)
	read := func(path string) {
		f, err := cl.Open(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		buf := make([]byte, 16<<10)
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		f.Close()
	}

	// Warmup phase: populate the edge.
	for i := 0; i < 2*files; i++ {
		read(dataset[z.Next()])
	}
	base := p.Stats()

	// Steady state: measure open hit-rate and origin offload.
	const draws = 600
	for i := 0; i < draws; i++ {
		read(dataset[z.Next()])
	}
	s := p.Stats()
	opens := float64(s.OpenHits - base.OpenHits + s.OpenMisses - base.OpenMisses)
	hitRate := float64(s.OpenHits-base.OpenHits) / opens
	if hitRate < 0.8 {
		t.Fatalf("steady-state open hit-rate %.2f, want >= 0.80 (zipf s=1.1)", hitRate)
	}
	originDelta := s.OriginBytes - base.OriginBytes
	servedDelta := s.BytesServed - base.BytesServed
	if originDelta*5 > servedDelta {
		t.Fatalf("origin traffic not offloaded: pulled %d of %d served bytes", originDelta, servedDelta)
	}
}

// TestProxyFrameAndAdmin smoke-tests the obs wiring: the summary frame
// carries the pcache section and renders, and the admin handler is
// constructible.
func TestProxyFrameAndAdmin(t *testing.T) {
	o := startOrigin(t, 1)
	if err := o.stores[0].Put("/store/o.root", payload(9, 8<<10)); err != nil {
		t.Fatal(err)
	}
	p, cl := startProxy(t, o, Config{Name: "edge0"})
	if _, err := cl.ReadFile("/store/o.root"); err != nil {
		t.Fatal(err)
	}
	fr := p.Frame()
	if fr.PCache == nil || fr.Cache == nil {
		t.Fatalf("frame missing sections: %+v", fr)
	}
	if fr.PCache.Hits+fr.PCache.Misses == 0 {
		t.Fatalf("frame counted no reads: %+v", fr.PCache)
	}
	if fr.Node != "edge0" || fr.Role != "pcache" {
		t.Fatalf("frame identity wrong: %s/%s", fr.Node, fr.Role)
	}
	if s := fr.String(); s == "" {
		t.Fatal("frame did not render")
	}
	if p.AdminHandler() == nil {
		t.Fatal("no admin handler")
	}
}
