package pcache

import (
	"testing"

	"scalla/internal/proto"
)

// allocRig builds a proxy over a live origin with one fully cached
// 256 KiB file, then measures the hit path alone — the downstream
// network is bypassed exactly as in the xrd read-path alloc test.
func allocRig(tb testing.TB) (*Proxy, uint64) {
	tb.Helper()
	o := startOrigin(tb, 1)
	data := payload(42, 256<<10)
	if err := o.stores[0].Put("/big", data); err != nil {
		tb.Fatal(err)
	}
	p := New(Config{
		Net:     o.net,
		Addr:    "edge:data",
		Origins: []string{o.mgr.DataAddr()},
	})
	tb.Cleanup(p.Close)
	// Bind a read handle and make every block resident without a
	// downstream connection: drive dispatch directly.
	reply, fh := p.open(proto.Open{Path: "/big"})
	if _, okr := reply.(proto.OpenOK); !okr {
		tb.Fatalf("open: %#v", reply)
	}
	h := p.handleFor(fh)
	for off := int64(0); off < int64(len(data)); off += int64(p.cfg.BlockSize) {
		if msg := p.fill(h, proto.Read{FH: fh, Off: off, N: uint32(p.cfg.BlockSize)}); msg != nil {
			tb.Fatalf("fill at %d: %#v", off, msg)
		}
	}
	return p, fh
}

// TestProxyHitPathAllocsNothing pins the proxy's block-cache hit path:
// after the frame pool warms up, serving a 64 KiB cached read must
// allocate nothing — the block bytes are copied once into a pooled
// frame under the cache lock, the same single-copy discipline as the
// xrd read path (DESIGN.md §9).
func TestProxyHitPathAllocsNothing(t *testing.T) {
	p, fh := allocRig(t)
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	// Warm the frame pool outside the measurement.
	if f, _, ok := p.readFrame(read, 7); !ok {
		t.Fatal("warmup read missed the cache")
	} else {
		f.Release()
	}
	avg := testing.AllocsPerRun(100, func() {
		f, _, ok := p.readFrame(read, 7)
		if !ok {
			t.Fatal("read missed the cache")
		}
		f.Release()
	})
	if avg != 0 {
		t.Fatalf("hit path allocates %.1f objects per 64 KiB read, want 0", avg)
	}
}

// BenchmarkProxyReadHit measures the cached-read frame build for a
// 64 KiB hit; ReportAllocs documents the 0 allocs/op claim in CI bench
// runs alongside the xrd read path.
func BenchmarkProxyReadHit(b *testing.B) {
	p, fh := allocRig(b)
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	b.ReportAllocs()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _, ok := p.readFrame(read, 7)
		if !ok {
			b.Fatal("read missed the cache")
		}
		f.Release()
	}
}
