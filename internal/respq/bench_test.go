package respq

import (
	"testing"
	"time"

	"scalla/internal/vclock"
)

// The enqueue→release round trip, the overhead the fast response queue
// adds on top of a server's ~100µs answer.
func BenchmarkEnqueueRelease(b *testing.B) {
	q := New(Config{Slots: 1024, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	done := make(chan struct{}, 1)
	w := func(Result) { done <- struct{}{} }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok, err := q.NewEntry(w)
		if err != nil {
			b.Fatal(err)
		}
		q.Release(tok, 7, false)
		<-done
	}
}

func BenchmarkJoin(b *testing.B) {
	q := New(Config{Slots: 4, Clock: vclock.NewFake(), Period: time.Hour})
	tok, _ := q.NewEntry(func(Result) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Join(tok, func(Result) {})
	}
}
