package respq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalla/internal/vclock"
)

// collector gathers results delivered to waiters.
type collector struct {
	mu      sync.Mutex
	results []Result
}

func (c *collector) waiter() Waiter {
	return func(r Result) {
		c.mu.Lock()
		c.results = append(c.results, r)
		c.mu.Unlock()
	}
}

func (c *collector) get() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Result, len(c.results))
	copy(out, c.results)
	return out
}

func (c *collector) waitN(t *testing.T, n int) []Result {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rs := c.get(); len(rs) >= n {
			return rs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d results, have %d", n, len(c.get()))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReleaseDeliversToAllWaiters(t *testing.T) {
	q := New(Config{Slots: 8, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)

	var col collector
	tok, err := q.NewEntry(col.waiter())
	if err != nil {
		t.Fatal(err)
	}
	if tok == 0 {
		t.Fatal("token must be nonzero")
	}
	for i := 0; i < 3; i++ {
		if !q.Join(tok, col.waiter()) {
			t.Fatal("Join failed on live entry")
		}
	}
	q.Release(tok, 7, false)
	rs := col.waitN(t, 4)
	for _, r := range rs {
		if r.Expired || r.Server != 7 || r.Pending {
			t.Errorf("bad result %+v", r)
		}
	}
	st := q.Stats()
	if st.Entries != 1 || st.Joins != 3 || st.Released != 1 || st.InUse != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReleasePendingFlagPropagates(t *testing.T) {
	q := New(Config{Slots: 4, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	var col collector
	tok, _ := q.NewEntry(col.waiter())
	q.Release(tok, 3, true)
	rs := col.waitN(t, 1)
	if !rs[0].Pending || rs[0].Server != 3 {
		t.Errorf("result = %+v", rs[0])
	}
}

func TestStaleTokenRejected(t *testing.T) {
	q := New(Config{Slots: 4, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	var col collector
	tok, _ := q.NewEntry(col.waiter())
	q.Release(tok, 1, false)
	col.waitN(t, 1)

	// The slot is free; its old token must now fail everywhere.
	if q.Join(tok, col.waiter()) {
		t.Error("Join accepted a stale token")
	}
	q.Release(tok, 2, false) // must be ignored
	time.Sleep(10 * time.Millisecond)
	if len(col.get()) != 1 {
		t.Error("stale Release delivered results")
	}
}

func TestGarbageTokensIgnored(t *testing.T) {
	q := New(Config{Slots: 4, Clock: vclock.NewFake()})
	if q.Join(0, func(Result) {}) {
		t.Error("Join(0) must fail")
	}
	q.Release(0, 0, false)
	q.Release(token(9999, 1), 0, false) // out-of-range slot
	if q.Join(token(9999, 1), func(Result) {}) {
		t.Error("out-of-range token accepted")
	}
}

func TestQueueFull(t *testing.T) {
	q := New(Config{Slots: 2, Clock: vclock.NewFake()})
	if _, err := q.NewEntry(func(Result) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NewEntry(func(Result) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NewEntry(func(Result) {}); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if q.Stats().Full != 1 {
		t.Error("Full not counted")
	}
}

func TestEntriesExpireAfterPeriod(t *testing.T) {
	fc := vclock.NewFake()
	q := New(Config{Slots: 4, Period: 133 * time.Millisecond, Clock: fc})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	fc.BlockUntil(1) // response thread armed its ticker

	var col collector
	tok, _ := q.NewEntry(col.waiter())
	q.Join(tok, col.waiter())

	fc.Advance(133 * time.Millisecond)
	rs := col.waitN(t, 2)
	for _, r := range rs {
		if !r.Expired {
			t.Errorf("result = %+v, want Expired", r)
		}
	}
	if st := q.Stats(); st.Expired != 1 || st.InUse != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The expired entry's token is dead.
	if q.Join(tok, col.waiter()) {
		t.Error("token survived expiry")
	}
}

func TestYoungEntriesSurviveTick(t *testing.T) {
	fc := vclock.NewFake()
	q := New(Config{Slots: 4, Period: 133 * time.Millisecond, Clock: fc})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	fc.BlockUntil(1)

	var col collector
	// First tick at t=133ms; entry added at t=100ms is only 33ms old
	// then and must survive until the second tick.
	fc.Advance(100 * time.Millisecond)
	tok, _ := q.NewEntry(col.waiter())
	fc.Advance(33 * time.Millisecond) // tick 1: age 33ms < 133ms
	time.Sleep(5 * time.Millisecond)  // let the thread process
	if len(col.get()) != 0 {
		t.Fatal("young entry expired early")
	}
	if !q.Join(tok, col.waiter()) {
		t.Fatal("young entry's token invalid")
	}
	fc.Advance(133 * time.Millisecond) // tick 2: age 166ms
	rs := col.waitN(t, 2)
	for _, r := range rs {
		if !r.Expired {
			t.Errorf("result = %+v", r)
		}
	}
}

func TestSlotReuseBumpsTag(t *testing.T) {
	q := New(Config{Slots: 1, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	var col collector
	tok1, _ := q.NewEntry(col.waiter())
	q.Release(tok1, 0, false)
	col.waitN(t, 1)
	tok2, _ := q.NewEntry(col.waiter())
	if tok1 == tok2 {
		t.Error("reused slot issued the same token")
	}
	s1, _ := untoken(tok1)
	s2, _ := untoken(tok2)
	if s1 != s2 {
		t.Error("single-slot queue must reuse the slot")
	}
}

// TestTokenAliasingLargeQueue is the regression test for the 16-bit
// token packing bug: with Slots > 65536, token(65536, tag=1) decoded as
// (slot 0, tag 2) — exactly the state slot 0 reaches after one
// retire/reallocate cycle — so releasing file A's high-slot entry
// delivered file A's server to whatever file B had parked on slot 0.
// With the 32-bit index packing the two tokens cannot collide.
func TestTokenAliasingLargeQueue(t *testing.T) {
	const slots = 1 << 17
	q := New(Config{Slots: slots, Clock: vclock.NewFake()})

	// Allocation order is slot 0, 1, 2, ...: grab slot 0 for file A and
	// walk the allocator up to slot 65536 (the first index that the old
	// packing truncated).
	var colA collector
	tokA, err := q.NewEntry(colA.waiter())
	if err != nil {
		t.Fatal(err)
	}
	var colHigh collector
	var tokHigh uint64
	for i := 1; i <= 1<<16; i++ {
		w := func(Result) {}
		if i == 1<<16 {
			w = colHigh.waiter()
		}
		tok, err := q.NewEntry(w)
		if err != nil {
			t.Fatal(err)
		}
		if i == 1<<16 {
			tokHigh = tok
		}
	}
	if i, _ := untoken(tokA); i != 0 {
		t.Fatalf("file A landed on slot %d, want 0", i)
	}
	if i, _ := untoken(tokHigh); i != 1<<16 {
		t.Fatalf("high entry landed on slot %d, want %d", i, 1<<16)
	}
	if tokA == tokHigh {
		t.Fatal("tokens for distinct slots collide")
	}

	// Retire slot 0 once and let file B reallocate it, bumping its tag to
	// 2 — the state the truncated decoding of tokHigh used to match.
	if n := q.Release(tokA, 1, false); n != 1 {
		t.Fatalf("Release(tokA) delivered to %d waiters, want 1", n)
	}
	var colB collector
	tokB, err := q.NewEntry(colB.waiter())
	if err != nil {
		t.Fatal(err)
	}
	if i, tag := untoken(tokB); i != 0 || tag != 2 {
		t.Fatalf("file B got slot %d tag %d, want slot 0 tag 2", i, tag)
	}

	// Releasing the high slot must touch only the high slot.
	if n := q.Release(tokHigh, 9, false); n != 1 {
		t.Fatalf("Release(tokHigh) delivered to %d waiters, want 1", n)
	}
	if rs := colHigh.get(); len(rs) != 1 || rs[0].Server != 9 {
		t.Fatalf("high-slot waiter got %+v", colHigh.get())
	}
	if rs := colB.get(); len(rs) != 0 {
		t.Fatalf("file B's waiter received file A's release: %+v", rs)
	}
	if !q.Join(tokB, colB.waiter()) {
		t.Fatal("file B's entry was clobbered by the high-slot release")
	}
}

func TestNewRejectsOversizedSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted Slots > MaxSlots")
		}
	}()
	New(Config{Slots: MaxSlots + 1})
}

// Without a Run thread, Release must invoke waiters inline — the ready
// channel has no consumer, and the old queue-first path parked batches
// there undelivered until saturation.
func TestReleaseSynchronousWithoutRun(t *testing.T) {
	q := New(Config{Slots: 8, Clock: vclock.NewFake()})
	var col collector
	tok, err := q.NewEntry(col.waiter())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Join(tok, col.waiter()) {
		t.Fatal("Join failed")
	}
	if n := q.Release(tok, 5, false); n != 2 {
		t.Fatalf("Release returned %d, want 2", n)
	}
	rs := col.get() // no waitN: delivery must already have happened
	if len(rs) != 2 || rs[0].Server != 5 || rs[1].Server != 5 {
		t.Fatalf("results = %+v", rs)
	}
}

func TestExpireNow(t *testing.T) {
	fc := vclock.NewFake()
	q := New(Config{Slots: 4, Period: 133 * time.Millisecond, Clock: fc})
	var col collector
	if _, err := q.NewEntry(col.waiter()); err != nil {
		t.Fatal(err)
	}
	if n := q.ExpireNow(); n != 0 {
		t.Fatalf("young entry expired: %d waiters", n)
	}
	fc.Advance(133 * time.Millisecond)
	if n := q.ExpireNow(); n != 1 {
		t.Fatalf("ExpireNow notified %d waiters, want 1", n)
	}
	if rs := col.get(); len(rs) != 1 || !rs[0].Expired {
		t.Fatalf("results = %+v", rs)
	}
	if st := q.Stats(); st.Expired != 1 || st.InUse != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentChurn(t *testing.T) {
	q := New(Config{Slots: 64, Clock: vclock.Real(), Period: 5 * time.Millisecond})
	stop := make(chan struct{})
	go q.Run(stop)
	defer close(stop)

	var delivered atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tok, err := q.NewEntry(func(Result) { delivered.Add(1) })
				if err != nil {
					continue // full under churn is fine
				}
				q.Join(tok, func(Result) { delivered.Add(1) })
				if i%2 == 0 {
					q.Release(tok, i%64, false)
				} // odd entries expire via the period ticker
			}
		}()
	}
	wg.Wait()
	// Every parked waiter must eventually get exactly one result.
	st := q.Stats()
	want := st.Entries + st.Joins
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", delivered.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != want {
		t.Errorf("delivered %d, want %d", delivered.Load(), want)
	}
}
