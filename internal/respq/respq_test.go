package respq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalla/internal/vclock"
)

// collector gathers results delivered to waiters.
type collector struct {
	mu      sync.Mutex
	results []Result
}

func (c *collector) waiter() Waiter {
	return func(r Result) {
		c.mu.Lock()
		c.results = append(c.results, r)
		c.mu.Unlock()
	}
}

func (c *collector) get() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Result, len(c.results))
	copy(out, c.results)
	return out
}

func (c *collector) waitN(t *testing.T, n int) []Result {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rs := c.get(); len(rs) >= n {
			return rs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d results, have %d", n, len(c.get()))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReleaseDeliversToAllWaiters(t *testing.T) {
	q := New(Config{Slots: 8, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)

	var col collector
	tok, err := q.NewEntry(col.waiter())
	if err != nil {
		t.Fatal(err)
	}
	if tok == 0 {
		t.Fatal("token must be nonzero")
	}
	for i := 0; i < 3; i++ {
		if !q.Join(tok, col.waiter()) {
			t.Fatal("Join failed on live entry")
		}
	}
	q.Release(tok, 7, false)
	rs := col.waitN(t, 4)
	for _, r := range rs {
		if r.Expired || r.Server != 7 || r.Pending {
			t.Errorf("bad result %+v", r)
		}
	}
	st := q.Stats()
	if st.Entries != 1 || st.Joins != 3 || st.Released != 1 || st.InUse != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReleasePendingFlagPropagates(t *testing.T) {
	q := New(Config{Slots: 4, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	var col collector
	tok, _ := q.NewEntry(col.waiter())
	q.Release(tok, 3, true)
	rs := col.waitN(t, 1)
	if !rs[0].Pending || rs[0].Server != 3 {
		t.Errorf("result = %+v", rs[0])
	}
}

func TestStaleTokenRejected(t *testing.T) {
	q := New(Config{Slots: 4, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	var col collector
	tok, _ := q.NewEntry(col.waiter())
	q.Release(tok, 1, false)
	col.waitN(t, 1)

	// The slot is free; its old token must now fail everywhere.
	if q.Join(tok, col.waiter()) {
		t.Error("Join accepted a stale token")
	}
	q.Release(tok, 2, false) // must be ignored
	time.Sleep(10 * time.Millisecond)
	if len(col.get()) != 1 {
		t.Error("stale Release delivered results")
	}
}

func TestGarbageTokensIgnored(t *testing.T) {
	q := New(Config{Slots: 4, Clock: vclock.NewFake()})
	if q.Join(0, func(Result) {}) {
		t.Error("Join(0) must fail")
	}
	q.Release(0, 0, false)
	q.Release(token(9999, 1), 0, false) // out-of-range slot
	if q.Join(token(9999, 1), func(Result) {}) {
		t.Error("out-of-range token accepted")
	}
}

func TestQueueFull(t *testing.T) {
	q := New(Config{Slots: 2, Clock: vclock.NewFake()})
	if _, err := q.NewEntry(func(Result) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NewEntry(func(Result) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NewEntry(func(Result) {}); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if q.Stats().Full != 1 {
		t.Error("Full not counted")
	}
}

func TestEntriesExpireAfterPeriod(t *testing.T) {
	fc := vclock.NewFake()
	q := New(Config{Slots: 4, Period: 133 * time.Millisecond, Clock: fc})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	fc.BlockUntil(1) // response thread armed its ticker

	var col collector
	tok, _ := q.NewEntry(col.waiter())
	q.Join(tok, col.waiter())

	fc.Advance(133 * time.Millisecond)
	rs := col.waitN(t, 2)
	for _, r := range rs {
		if !r.Expired {
			t.Errorf("result = %+v, want Expired", r)
		}
	}
	if st := q.Stats(); st.Expired != 1 || st.InUse != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The expired entry's token is dead.
	if q.Join(tok, col.waiter()) {
		t.Error("token survived expiry")
	}
}

func TestYoungEntriesSurviveTick(t *testing.T) {
	fc := vclock.NewFake()
	q := New(Config{Slots: 4, Period: 133 * time.Millisecond, Clock: fc})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	fc.BlockUntil(1)

	var col collector
	// First tick at t=133ms; entry added at t=100ms is only 33ms old
	// then and must survive until the second tick.
	fc.Advance(100 * time.Millisecond)
	tok, _ := q.NewEntry(col.waiter())
	fc.Advance(33 * time.Millisecond) // tick 1: age 33ms < 133ms
	time.Sleep(5 * time.Millisecond)  // let the thread process
	if len(col.get()) != 0 {
		t.Fatal("young entry expired early")
	}
	if !q.Join(tok, col.waiter()) {
		t.Fatal("young entry's token invalid")
	}
	fc.Advance(133 * time.Millisecond) // tick 2: age 166ms
	rs := col.waitN(t, 2)
	for _, r := range rs {
		if !r.Expired {
			t.Errorf("result = %+v", r)
		}
	}
}

func TestSlotReuseBumpsTag(t *testing.T) {
	q := New(Config{Slots: 1, Clock: vclock.NewFake()})
	stop := make(chan struct{})
	defer close(stop)
	go q.Run(stop)
	var col collector
	tok1, _ := q.NewEntry(col.waiter())
	q.Release(tok1, 0, false)
	col.waitN(t, 1)
	tok2, _ := q.NewEntry(col.waiter())
	if tok1 == tok2 {
		t.Error("reused slot issued the same token")
	}
	s1, _ := untoken(tok1)
	s2, _ := untoken(tok2)
	if s1 != s2 {
		t.Error("single-slot queue must reuse the slot")
	}
}

func TestConcurrentChurn(t *testing.T) {
	q := New(Config{Slots: 64, Clock: vclock.Real(), Period: 5 * time.Millisecond})
	stop := make(chan struct{})
	go q.Run(stop)
	defer close(stop)

	var delivered atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tok, err := q.NewEntry(func(Result) { delivered.Add(1) })
				if err != nil {
					continue // full under churn is fine
				}
				q.Join(tok, func(Result) { delivered.Add(1) })
				if i%2 == 0 {
					q.Release(tok, i%64, false)
				} // odd entries expire via the period ticker
			}
		}()
	}
	wg.Wait()
	// Every parked waiter must eventually get exactly one result.
	st := q.Stats()
	want := st.Entries + st.Joins
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", delivered.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != want {
		t.Errorf("delivered %d, want %d", delivered.Load(), want)
	}
}
