// Package respq implements Scalla's fast response queue (paper Section
// III-B).
//
// The request-rarely-respond query protocol never sends negative
// answers, so a querying manager cannot distinguish "no server has the
// file" from "no server has answered yet" except by waiting out a full
// delay (5 s by default). The fast response queue lowers the wait for
// files that do exist to roughly one server response time: clients
// park on a queue entry associated with the file's location object; when
// a positive response arrives the cache update hands the entry's token
// back and every parked client is answered immediately. A response
// thread clocks 133 ms periods and expires entries that have waited
// longer, imposing the full delay on those clients only.
//
// The queue is an array of 1024 anchors. Coupling with the cache is
// deliberately loose: the cache stores only an opaque token (slot index
// + generation tag). Either side may invalidate the association at any
// time; a stale token simply fails validation and is ignored.
package respq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/vclock"
)

// DefaultSlots is the paper's anchor count.
const DefaultSlots = 1024

// MaxSlots bounds Config.Slots: a token packs the slot index into its
// low 32 bits (the generation tag takes the high 32), so the index must
// fit 32 bits. The cap is set well below 1<<32 to keep the free list and
// slot array allocations sane; New panics on a Config that exceeds it.
const MaxSlots = 1 << 26

// DefaultPeriod is the paper's fast-response clock period.
const DefaultPeriod = 133 * time.Millisecond

// ErrFull is returned when no anchor is free; the client must be told to
// wait a full period and retry (Section III-B1).
var ErrFull = errors.New("respq: no free response queue entries")

// Result is delivered to each waiter exactly once.
type Result struct {
	// Server is the subordinate index that has (or is staging) the
	// file. Valid only when Expired is false.
	Server int
	// Pending reports that the server is staging the file rather than
	// already serving it.
	Pending bool
	// Expired reports that no response arrived within the fast window;
	// the client must wait the full delay and retry.
	Expired bool
}

// Waiter receives the outcome for one parked client. Waiters are invoked
// from the response thread (or from Release's caller before the thread
// starts); they must not block for long.
type Waiter func(Result)

// Config parameterizes a Queue.
type Config struct {
	// Slots is the anchor count. Default 1024.
	Slots int
	// Period is the fast-response clock period. Default 133 ms.
	Period time.Duration
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
	// OnExpired, if set, is invoked (without the queue lock held) after
	// each expiry pass that timed entries out, with the number expired.
	// Expiry passes run once per Period, off the allocation path, so
	// the hook costs the hot path nothing; the observability layer uses
	// it to count guard-window misses as they happen.
	OnExpired func(n int)
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = DefaultSlots
	}
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	return c
}

// Stats are cumulative queue statistics.
type Stats struct {
	Entries  int64 // entries created
	Joins    int64 // waiters added to an existing entry
	Released int64 // entries satisfied by a server response
	Expired  int64 // entries timed out past the fast window
	Full     int64 // allocations refused because no anchor was free
	InUse    int   // anchors currently occupied

	// Waiter-unit counters: where Released and Expired count entries,
	// these count the individual waiters handed a result. Every waiter
	// registered (Entries + Joins) is delivered exactly once, so
	//
	//	Entries + Joins == ReleasedWaiters + ExpiredWaiters + parked
	//
	// where parked is the number of clients currently blocked on an
	// in-use entry. The deterministic harness checks this conservation
	// law after every scheduler step.
	ReleasedWaiters int64
	ExpiredWaiters  int64
}

type slot struct {
	tag     uint32 // generation; 0 is never used
	inUse   bool
	addedAt time.Time
	waiters []Waiter
}

type readyBatch struct {
	waiters []Waiter
	res     Result
}

// Queue is a fast response queue. It is safe for concurrent use.
type Queue struct {
	cfg Config

	mu    sync.Mutex
	slots []slot
	free  []int
	stats Stats

	ready  chan readyBatch
	notify chan struct{} // wakes the thread when work appears

	// running reports whether the Run response thread is active. While it
	// is not (Manual-mode cores, tests), deliver invokes waiters inline so
	// no batch can sit undelivered in the ready channel.
	running atomic.Bool
}

// New returns a Queue with the given configuration. It panics if
// cfg.Slots exceeds MaxSlots — a larger queue could not issue unambiguous
// tokens. Call Run in a goroutine to start the response thread.
func New(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	if cfg.Slots > MaxSlots {
		panic(fmt.Sprintf("respq: Slots %d exceeds MaxSlots %d", cfg.Slots, MaxSlots))
	}
	q := &Queue{
		cfg:    cfg,
		slots:  make([]slot, cfg.Slots),
		free:   make([]int, 0, cfg.Slots),
		ready:  make(chan readyBatch, cfg.Slots),
		notify: make(chan struct{}, 1),
	}
	for i := cfg.Slots - 1; i >= 0; i-- {
		q.slots[i].tag = 1
		q.free = append(q.free, i)
	}
	return q
}

// token packs a slot index (low 32 bits) and its generation tag (high 32
// bits). Tags start at 1, so a valid token is never 0. The index field
// must be wide enough for every legal Config.Slots: an earlier 16-bit
// packing aliased slot 65536 of a large queue onto slot 0 with a
// shifted tag, letting Release/Join validate against the wrong slot and
// hand waiters another file's server (see TestTokenAliasingLargeQueue).
func token(slotIdx int, tag uint32) uint64 {
	return uint64(tag)<<32 | uint64(uint32(slotIdx))
}

func untoken(t uint64) (slotIdx int, tag uint32) {
	return int(uint32(t)), uint32(t >> 32)
}

// NewEntry allocates an anchor, parks w on it, and returns the token to
// store in the location object. It returns ErrFull when every anchor is
// occupied.
func (q *Queue) NewEntry(w Waiter) (uint64, error) {
	q.mu.Lock()
	if len(q.free) == 0 {
		q.stats.Full++
		q.mu.Unlock()
		return 0, ErrFull
	}
	i := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	s := &q.slots[i]
	s.inUse = true
	s.addedAt = q.cfg.Clock.Now()
	s.waiters = append(s.waiters[:0], w)
	q.stats.Entries++
	q.stats.InUse++
	tok := token(i, s.tag)
	wasIdle := q.stats.InUse == 1
	q.mu.Unlock()
	if wasIdle {
		q.wake()
	}
	return tok, nil
}

// Join parks w on the entry identified by tok. It reports false when the
// token is stale (the entry was released or expired), in which case the
// caller should allocate a new entry.
func (q *Queue) Join(tok uint64, w Waiter) bool {
	i, tag := untoken(tok)
	q.mu.Lock()
	defer q.mu.Unlock()
	if i < 0 || i >= len(q.slots) {
		return false
	}
	s := &q.slots[i]
	if !s.inUse || s.tag != tag {
		return false
	}
	s.waiters = append(s.waiters, w)
	q.stats.Joins++
	return true
}

// Release satisfies the entry identified by tok: every parked waiter is
// handed the responding server. Stale tokens are ignored (the paper's
// loose coupling — the cache reference may be behind). The waiters are
// delivered by the response thread if Run is active, synchronously
// otherwise. It returns the number of waiters handed the result (0 for a
// stale token), which the deterministic harness uses to account for
// exactly-once delivery.
func (q *Queue) Release(tok uint64, server int, pending bool) int {
	i, tag := untoken(tok)
	q.mu.Lock()
	if i < 0 || i >= len(q.slots) {
		q.mu.Unlock()
		return 0
	}
	s := &q.slots[i]
	if !s.inUse || s.tag != tag {
		q.mu.Unlock()
		return 0
	}
	ws := s.waiters
	s.waiters = nil
	q.retire(i)
	q.stats.Released++
	q.stats.ReleasedWaiters += int64(len(ws))
	q.mu.Unlock()
	q.deliver(readyBatch{waiters: ws, res: Result{Server: server, Pending: pending}})
	return len(ws)
}

// retire returns slot i to the free list, bumping its tag so outstanding
// tokens fail validation. Caller holds q.mu.
func (q *Queue) retire(i int) {
	s := &q.slots[i]
	s.inUse = false
	s.tag++
	if s.tag == 0 { // never issue tag 0
		s.tag = 1
	}
	q.stats.InUse--
	q.free = append(q.free, i)
}

func (q *Queue) deliver(b readyBatch) {
	if q.running.Load() {
		select {
		case q.ready <- b:
			q.wake()
			return
		default:
			// Ready queue saturated; deliver inline rather than drop.
		}
	}
	// No response thread is draining (Manual-mode core, or saturation):
	// deliver inline so the batch cannot sit parked in the channel.
	for _, w := range b.waiters {
		w(b.res)
	}
}

func (q *Queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// expire removes every entry that has waited at least one full period
// and hands its waiters the Expired result (full delay + retry).
// It returns the batches to deliver.
func (q *Queue) expire() []readyBatch {
	now := q.cfg.Clock.Now()
	var out []readyBatch
	q.mu.Lock()
	for i := range q.slots {
		s := &q.slots[i]
		if s.inUse && now.Sub(s.addedAt) >= q.cfg.Period {
			ws := s.waiters
			s.waiters = nil
			q.retire(i)
			q.stats.Expired++
			q.stats.ExpiredWaiters += int64(len(ws))
			out = append(out, readyBatch{waiters: ws, res: Result{Expired: true}})
		}
	}
	q.mu.Unlock()
	if len(out) > 0 && q.cfg.OnExpired != nil {
		q.cfg.OnExpired(len(out))
	}
	return out
}

// ExpireNow runs one expiry pass synchronously, delivering the Expired
// result to every waiter whose entry outlasted the fast window, and
// returns the number of waiters so notified. Embedders that own the
// response clock themselves — the deterministic simulation harness runs
// Manual-mode cores with no Run thread — call it in place of the ticker.
func (q *Queue) ExpireNow() int {
	n := 0
	for _, b := range q.expire() {
		n += len(b.waiters)
		for _, w := range b.waiters {
			w(b.res)
		}
	}
	return n
}

// Run is the response thread: it delivers satisfied entries and clocks
// Period-length windows, expiring entries that outwait one. It returns
// when stop is closed.
func (q *Queue) Run(stop <-chan struct{}) {
	q.running.Store(true)
	defer q.running.Store(false)
	t := q.cfg.Clock.NewTicker(q.cfg.Period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case b := <-q.ready:
			for _, w := range b.waiters {
				w(b.res)
			}
		case <-t.C():
			for _, b := range q.expire() {
				for _, w := range b.waiters {
					w(b.res)
				}
			}
		case <-q.notify:
			// Woken: loop back and service ready/ticker.
		}
	}
}

// Stats returns a snapshot of the cumulative statistics.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Depth returns the number of anchors currently occupied — the queue
// depth the summary-monitoring stream reports.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats.InUse
}
