package cmsd

// End-to-end observability test: a live cluster with tracing enabled
// and a summary stream pointed at a UDP collector — the same path
// `scalla-cli mon` consumes.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

func TestObservabilityEndToEnd(t *testing.T) {
	// A UDP socket standing in for the `scalla-cli mon` collector.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	sink, err := obs.NewUDPSink(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}

	cnet := transport.Counting(transport.NewInProc(transport.InProcConfig{}))
	tracer := obs.NewTracer(128, nil)
	tracer.SetEnabled(true)

	mgr := startNode(t, NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: "mgr:data", CtlAddr: "mgr:ctl",
		Net: cnet, Core: testCoreConfig(),
		PingInterval:   50 * time.Millisecond,
		ReconnectDelay: 20 * time.Millisecond,
		Tracer:         tracer,
		Summary:        sink,
		SummaryEvery:   30 * time.Millisecond,
	})
	stores := make([]*store.Store, 3)
	for i := range stores {
		stores[i] = store.New(store.Config{})
		startServer(t, cnet, fmt.Sprintf("srv%d", i), "mgr:ctl", stores[i])
	}
	waitChildren(t, mgr, 3)
	stores[2].Put("/store/obs.root", []byte("payload"))

	// One uncached resolve (query flood + fast response) and one cached.
	reply := locate(t, cnet, "mgr:data", proto.Locate{Path: "/store/obs.root"})
	if rd, ok := reply.(proto.Redirect); !ok || rd.Addr != "srv2:data" {
		t.Fatalf("uncached resolve: %#v", reply)
	}
	reply = locate(t, cnet, "mgr:data", proto.Locate{Path: "/store/obs.root"})
	if rd, ok := reply.(proto.Redirect); !ok || rd.Addr != "srv2:data" {
		t.Fatalf("cached resolve: %#v", reply)
	}

	admin := httptest.NewServer(mgr.AdminHandler())
	defer admin.Close()

	// /tracez must show complete resolve spans for both lookups.
	resp, err := http.Get(admin.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	var tz struct {
		Enabled bool             `json:"enabled"`
		Total   int64            `json:"total"`
		Spans   []obs.SpanRecord `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !tz.Enabled || tz.Total < 2 {
		t.Fatalf("tracez enabled=%v total=%d, want enabled with >=2 spans", tz.Enabled, tz.Total)
	}
	var sawMiss, sawHit bool
	for _, sp := range tz.Spans {
		if sp.Op != "resolve" || sp.Path != "/store/obs.root" {
			continue
		}
		if !strings.HasPrefix(sp.Outcome, "redirect srv2:data") {
			t.Fatalf("resolve span outcome = %q", sp.Outcome)
		}
		for _, ev := range sp.Events {
			switch ev.Kind {
			case "cache.miss":
				sawMiss = true
			case "cache.hit":
				sawHit = true
			}
		}
	}
	if !sawMiss || !sawHit {
		t.Fatalf("spans missing cache.miss/cache.hit events (miss=%v hit=%v): %+v", sawMiss, sawHit, tz.Spans)
	}

	// /statusz serves the same frame shape the stream carries.
	resp, err = http.Get(admin.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var sf obs.Frame
	err = json.NewDecoder(resp.Body).Decode(&sf)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sf.V != obs.FrameVersion || sf.Cache == nil || sf.Cache.Entries < 1 {
		t.Fatalf("statusz frame: %+v", sf)
	}
	// Per-shard entry counts surface on /statusz and must re-sum to the
	// aggregate, so stripe skew is observable.
	if len(sf.Cache.ShardEntries) == 0 {
		t.Fatalf("statusz frame missing shard entries: %+v", sf.Cache)
	}
	var shardSum int64
	for _, n := range sf.Cache.ShardEntries {
		shardSum += n
	}
	if shardSum != sf.Cache.Entries {
		t.Fatalf("shard entries sum %d != entries %d", shardSum, sf.Cache.Entries)
	}
	if sf.Cluster == nil || sf.Cluster.Members != 3 || sf.Cluster.Online != 3 {
		t.Fatalf("statusz cluster: %+v", sf.Cluster)
	}

	// The summary stream delivers valid JSON frames over UDP. Read until
	// one reflects the resolves above (early frames may predate them).
	buf := make([]byte, 64<<10)
	deadline := time.Now().Add(10 * time.Second)
	var f obs.Frame
	for {
		pc.SetReadDeadline(deadline)
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			t.Fatalf("no satisfying summary frame arrived: %v (last: %+v)", err, f)
		}
		f, err = obs.ParseFrame(buf[:n])
		if err != nil {
			t.Fatalf("stream emitted an unparseable frame: %v", err)
		}
		if f.Cache != nil && f.Cache.Entries >= 1 && f.Cluster != nil && f.Cluster.Members == 3 {
			break
		}
	}
	if f.Node != "mgr" || f.Role != "manager" || f.Seq == 0 {
		t.Fatalf("frame header: %+v", f)
	}
	if f.RespQ == nil {
		t.Fatal("frame missing respq section")
	}
	if f.Net == nil || f.Net.FramesSent == 0 {
		t.Fatalf("frame missing transport counters: %+v", f.Net)
	}
	op, ok := f.Ops["resolve.latency"]
	if !ok || op.Count < 2 {
		t.Fatalf("frame ops: %+v", f.Ops)
	}
	if f.Counters["resolve.redirect"] < 2 {
		t.Fatalf("frame counters: %+v", f.Counters)
	}

	// And the one-liner mon prints from it names the node and cache.
	line := f.String()
	for _, want := range []string{"mgr/manager", "cache=", "members=3/3", "resolve{n="} {
		if !strings.Contains(line, want) {
			t.Fatalf("mon line %q missing %q", line, want)
		}
	}
}

// TestServerFrameReportsDataPlane checks a server-role node's frame
// carries its xrd counters rather than redirector sections.
func TestServerFrameReportsDataPlane(t *testing.T) {
	cnet := transport.Counting(transport.NewInProc(transport.InProcConfig{}))
	mgr := startManager(t, cnet, "mgr")
	st := store.New(store.Config{})
	st.Put("/store/x", []byte("hello"))
	srv := startServer(t, cnet, "srv0", "mgr:ctl", st)
	waitChildren(t, mgr, 1)

	reply := locate(t, cnet, "mgr:data", proto.Locate{Path: "/store/x"})
	rd, ok := reply.(proto.Redirect)
	if !ok {
		t.Fatalf("reply = %#v", reply)
	}

	// Read the file from the data server so the data plane has traffic.
	conn, err := cnet.Dial(rd.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	open := rpc(t, conn, proto.Open{Path: "/store/x"}).(proto.OpenOK)
	data := rpc(t, conn, proto.Read{FH: open.FH, N: 5}).(proto.Data)
	if string(data.Bytes) != "hello" {
		t.Fatalf("read %q", data.Bytes)
	}

	f := srv.Frame()
	if f.Cache != nil || f.RespQ != nil {
		t.Fatalf("server frame has redirector sections: %+v", f)
	}
	if f.Data == nil || f.Data.Opens < 1 || f.Data.Reads < 1 || f.Data.BytesRead < 5 {
		t.Fatalf("server data section: %+v", f.Data)
	}
	if f.Cluster == nil || f.Cluster.ParentsUp != 1 {
		t.Fatalf("server parents_up: %+v", f.Cluster)
	}
	if !strings.Contains(f.String(), "handles=") {
		t.Fatalf("server mon line %q", f.String())
	}
}
