package cmsd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/backoff"
	"scalla/internal/cluster"
	"scalla/internal/mux"
	"scalla/internal/names"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
	"scalla/internal/vclock"
	"scalla/internal/xrd"
)

// NodeConfig assembles one Scalla node (the paper's xrootd+cmsd pair).
type NodeConfig struct {
	// Name is the node's stable identity; reconnections under the same
	// name reclaim the same subordinate slot.
	Name string
	// Role determines behaviour: servers serve data and answer queries
	// from their store; supervisors and managers run a resolution Core.
	Role proto.Role
	// DataAddr is the data-plane listen address (clients and redirected
	// clients dial it).
	DataAddr string
	// CtlAddr is the control-plane listen address (subordinates dial
	// it). Unused by servers.
	CtlAddr string
	// Parents are control addresses of the node's parent redirectors.
	// Servers and supervisors log into every parent (manager
	// replication); managers leave it empty.
	Parents []string
	// Prefixes are the path prefixes this node exports at login.
	Prefixes []string
	// Net supplies transport.
	Net transport.Network
	// Store backs a server-role node.
	Store *store.Store
	// ReadOnly refuses writes on a server-role node.
	ReadOnly bool
	// RespondAlways makes a server answer every query, sending explicit
	// negatives. This is the protocol baseline for experiment E10; the
	// paper's request-rarely-respond protocol never sends negatives.
	RespondAlways bool
	// Core configures the resolution engine (manager/supervisor).
	Core Config
	// StageWaitMillis is the wait hint while files stage. Default 300.
	StageWaitMillis uint32
	// DataWorkers bounds how many pipelined requests one data-plane
	// connection may execute concurrently (stream-multiplexed dispatch,
	// DESIGN.md §8). 1 restores strictly serial per-connection service.
	// Default 8 on servers, 16 on redirectors (whose handlers may block
	// in the fast response queue for a full delay).
	DataWorkers int
	// DispatchQueue bounds queued-but-not-executing data-plane requests
	// across all of the node's data connections; arrivals beyond it shed
	// with RetryAfter (DESIGN.md §11). Default 1024.
	DispatchQueue int
	// RetryAfterMillis is the nominal shed backoff hint. Default 100.
	RetryAfterMillis int
	// SchedSeed seeds the shed-jitter RNG for deterministic verdicts.
	SchedSeed int64
	// PingInterval is how often a redirector pings subordinates for
	// load/liveness. Default 1 s.
	PingInterval time.Duration
	// MissedPings is how many ping intervals a subordinate may stay
	// completely silent (no pong, no have) before the redirector
	// declares the link dead and closes it, marking the member offline —
	// the missed-heartbeat eviction that keeps Vh/Vp free of dead
	// servers between TCP-level failures. Default 5.
	MissedPings int
	// ReconnectDelay paces a subordinate's redial loop: it is the base
	// of a jittered exponential backoff that doubles per failed attempt
	// (capped at 20× the base) and resets after a successful login.
	// Default 200 ms.
	ReconnectDelay time.Duration
	// RejoinSpread bounds the re-login storm after an established parent
	// link dies (a manager restart severs every child at once): the
	// first redial of a previously-logged-in link is additionally
	// delayed by up to RejoinSpread, staggered by the slot index the
	// parent had assigned plus seeded jitter, so the subtree's
	// re-logins — and the connect-epoch corrections each one triggers
	// (Figure 3: Nc bump, C[i] stamp) — arrive spread over the window
	// instead of as one thundering herd. Never-logged-in links (initial
	// cluster bring-up) are not delayed. Default 4× ReconnectDelay;
	// negative disables.
	RejoinSpread time.Duration
	// LoginTimeout bounds the login request/reply exchange with a
	// parent, so a dropped LoginOK frame cannot wedge the redial loop
	// forever. Default 3 s.
	LoginTimeout time.Duration
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
	// Logf, if set, receives diagnostics.
	Logf func(format string, args ...any)
	// Tracer records per-request spans (shared with the Core on
	// redirector roles). Default: a disabled tracer that can be enabled
	// at runtime through the admin endpoint.
	Tracer *obs.Tracer
	// Summary, if set, receives this node's summary-monitoring stream:
	// one JSON frame every SummaryEvery. Start launches the emitter;
	// Stop closes the sink.
	Summary obs.Sink
	// SummaryEvery is the summary emission period. Default 10 s.
	SummaryEvery time.Duration
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.StageWaitMillis == 0 {
		c.StageWaitMillis = 300
	}
	if c.PingInterval <= 0 {
		c.PingInterval = time.Second
	}
	if c.MissedPings <= 0 {
		c.MissedPings = 5
	}
	if c.ReconnectDelay <= 0 {
		c.ReconnectDelay = 200 * time.Millisecond
	}
	if c.RejoinSpread == 0 {
		c.RejoinSpread = 4 * c.ReconnectDelay
	}
	if c.LoginTimeout <= 0 {
		c.LoginTimeout = 3 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(0, c.Clock)
	}
	c.Core.Clock = c.Clock
	c.Core.Tracer = c.Tracer
	return c
}

// Node is a running Scalla node.
type Node struct {
	cfg       NodeConfig
	core      *Core          // redirector roles
	data      *xrd.Server    // server role
	dataSched *mux.Scheduler // redirector data face (nil on servers)

	dataL transport.Listener
	ctlL  transport.Listener

	mu       sync.Mutex
	conns    map[int]transport.Conn      // child control links by index
	lastSeen map[int]time.Time           // last frame time per child index
	live     map[transport.Conn]struct{} // every open connection, closed on Stop

	parentsUp atomic.Int32 // successfully logged-in parent links
	queries   atomic.Int64 // location queries received from parents
	haves     atomic.Int64 // positive responses sent upward
	negatives atomic.Int64 // explicit negatives (sent or received; baseline only)

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// NewNode builds a Node; call Start to bring it up.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		conns:    make(map[int]transport.Conn),
		lastSeen: make(map[int]time.Time),
		live:     make(map[transport.Conn]struct{}),
		stop:     make(chan struct{}),
	}
	switch cfg.Role {
	case proto.RoleServer:
		if cfg.Store == nil {
			return nil, fmt.Errorf("cmsd: server node %q requires a Store", cfg.Name)
		}
		n.data = xrd.New(xrd.Config{
			Store: cfg.Store, ReadOnly: cfg.ReadOnly,
			StageWaitMillis: cfg.StageWaitMillis, Logf: cfg.Logf,
			Workers: cfg.DataWorkers, Tracer: cfg.Tracer,
			DispatchQueue:    cfg.DispatchQueue,
			RetryAfterMillis: cfg.RetryAfterMillis,
			SchedSeed:        cfg.SchedSeed,
		})
	case proto.RoleSupervisor, proto.RoleManager:
		n.core = NewCore(cfg.Core)
		n.core.SetQuerySender(n.querySender)
		workers := cfg.DataWorkers
		if workers <= 0 {
			// Redirector handlers park in the fast response queue for up
			// to a full delay; a deeper default keeps one slow path from
			// stalling unrelated requests.
			workers = 16
		}
		n.dataSched = mux.NewScheduler(mux.SchedConfig{
			Workers:          workers,
			QueueLimit:       cfg.DispatchQueue,
			RetryAfterMillis: cfg.RetryAfterMillis,
			Seed:             cfg.SchedSeed,
			Clock:            cfg.Clock,
		})
	default:
		return nil, fmt.Errorf("cmsd: unknown role %v", cfg.Role)
	}
	return n, nil
}

// Core returns the resolution engine (nil on server-role nodes).
func (n *Node) Core() *Core { return n.core }

// DataServer returns the xrd server (nil on redirector-role nodes).
func (n *Node) DataServer() *xrd.Server { return n.data }

// DataAddr returns the node's data-plane address.
func (n *Node) DataAddr() string { return n.cfg.DataAddr }

// CtlAddr returns the node's control-plane address.
func (n *Node) CtlAddr() string { return n.cfg.CtlAddr }

// Name returns the node's identity.
func (n *Node) Name() string { return n.cfg.Name }

// Start binds listeners and launches the node's loops.
func (n *Node) Start() error {
	var err error
	if n.cfg.DataAddr != "" {
		n.dataL, err = n.cfg.Net.Listen(n.cfg.DataAddr)
		if err != nil {
			return fmt.Errorf("cmsd: %s: data listen: %w", n.cfg.Name, err)
		}
		if n.cfg.Role == proto.RoleServer {
			n.wg.Add(1)
			go func() { defer n.wg.Done(); n.data.Serve(n.dataL) }()
		} else {
			n.wg.Add(1)
			go func() { defer n.wg.Done(); n.serveRedirector(n.dataL) }()
		}
	}
	if n.cfg.Role != proto.RoleServer && n.cfg.CtlAddr != "" {
		n.ctlL, err = n.cfg.Net.Listen(n.cfg.CtlAddr)
		if err != nil {
			if n.dataL != nil {
				n.dataL.Close()
			}
			return fmt.Errorf("cmsd: %s: ctl listen: %w", n.cfg.Name, err)
		}
		n.wg.Add(1)
		go func() { defer n.wg.Done(); n.acceptChildren(n.ctlL) }()
		n.wg.Add(1)
		go func() { defer n.wg.Done(); n.pinger() }()
	}
	for _, p := range n.cfg.Parents {
		n.wg.Add(1)
		go func() { defer n.wg.Done(); n.parentLoop(p) }()
	}
	if n.cfg.Summary != nil {
		em := obs.NewEmitter(n.cfg.SummaryEvery, n.cfg.Clock, n.Frame, n.cfg.Summary, n.cfg.Logf)
		n.wg.Add(1)
		go func() { defer n.wg.Done(); em.Run(n.stop) }()
	}
	return nil
}

// Stop shuts the node down and waits for its loops to exit.
func (n *Node) Stop() {
	if !n.stopped.CompareAndSwap(false, true) {
		return
	}
	close(n.stop)
	if n.dataL != nil {
		n.dataL.Close()
	}
	if n.ctlL != nil {
		n.ctlL.Close()
	}
	// Close live connections before the schedulers: scheduler Close
	// waits for in-flight handlers, and a handler blocked replying to a
	// wedged peer only unblocks once its connection dies.
	n.mu.Lock()
	for c := range n.live {
		c.Close()
	}
	n.mu.Unlock()
	if n.data != nil {
		n.data.Close()
	}
	if n.dataSched != nil {
		n.dataSched.Close()
	}
	if n.core != nil {
		n.core.Close()
	}
	n.wg.Wait()
}

// track registers a connection for closure on Stop. It returns false if
// the node is already stopping (the caller should abandon the conn).
func (n *Node) track(c transport.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped.Load() {
		c.Close()
		return false
	}
	n.live[c] = struct{}{}
	return true
}

func (n *Node) untrack(c transport.Conn) {
	n.mu.Lock()
	delete(n.live, c)
	n.mu.Unlock()
}

// ParentsUp reports how many parent links are currently logged in.
func (n *Node) ParentsUp() int { return int(n.parentsUp.Load()) }

// ---------------------------------------------------------------------
// Parent side: accept subordinate logins, receive Have/Pong.

func (n *Node) acceptChildren(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() { defer n.wg.Done(); n.childConn(conn) }()
	}
}

func (n *Node) childConn(conn transport.Conn) {
	if !n.track(conn) {
		return
	}
	defer n.untrack(conn)
	defer conn.Close()
	f, err := transport.RecvFrame(conn)
	if err != nil {
		return
	}
	msg, err := proto.Unmarshal(f.Bytes())
	f.Release() // control messages copy their strings at decode
	if err != nil {
		return
	}
	login, ok := msg.(proto.Login)
	if !ok {
		transport.SendMessage(conn, proto.LoginRej{Reason: "expected login"})
		return
	}
	idx, _, err := n.core.Table().Login(cluster.Member{
		Name: login.Name, Role: login.Role,
		DataAddr: login.DataAddr, CtlAddr: login.CtlAddr,
		Prefixes: names.NewPrefixSet(login.Prefixes...),
		Load:     login.Load, Free: login.Free,
	})
	if err != nil {
		if errors.Is(err, cluster.ErrFull) {
			// Cell overflow: a full cell with supervisor children vectors
			// the newcomer at one of them instead of refusing outright —
			// the 65th server finds a deeper slot rather than redialing a
			// full parent forever (DESIGN.md §12). Leaf cells (no
			// supervisor children) still reject.
			if addr, ok := n.core.Table().OverflowTarget(); ok {
				n.cfg.Logf("cmsd %s: cell full, vectoring %s at %s",
					n.cfg.Name, login.Name, addr)
				transport.SendMessage(conn, proto.LoginRedirect{CtlAddr: addr})
				return
			}
		}
		transport.SendMessage(conn, proto.LoginRej{Reason: err.Error()})
		return
	}
	wireIdx, ok := proto.SlotIndex(idx)
	if !ok {
		// Table handed out an index the wire cannot carry — a fanout
		// widened past proto.SlotLimit without widening LoginOK.Index.
		// Refuse loudly rather than alias the slot mod 256.
		n.core.Table().Disconnect(idx)
		transport.SendMessage(conn, proto.LoginRej{
			Reason: fmt.Sprintf("index %d exceeds wire slot range", idx)})
		return
	}
	if err := transport.SendMessage(conn, proto.LoginOK{Index: wireIdx}); err != nil {
		n.core.Table().Disconnect(idx)
		return
	}
	n.cfg.Logf("cmsd %s: child %s logged in as index %d", n.cfg.Name, login.Name, idx)

	n.mu.Lock()
	old := n.conns[idx]
	n.conns[idx] = conn
	n.lastSeen[idx] = n.cfg.Clock.Now()
	n.mu.Unlock()
	if old != nil {
		old.Close()
	}
	// Now that the query link exists, give the newcomer a chance to
	// answer any flood still inside its processing deadline.
	n.core.MemberUp(idx)

	for {
		f, err := transport.RecvFrame(conn)
		if err != nil {
			break
		}
		msg, err := proto.Unmarshal(f.Bytes())
		f.Release()
		if err != nil {
			break
		}
		// Any frame proves the child alive for heartbeat purposes.
		n.mu.Lock()
		if n.conns[idx] == conn {
			n.lastSeen[idx] = n.cfg.Clock.Now()
		}
		n.mu.Unlock()
		switch m := msg.(type) {
		case proto.Have:
			n.core.HandleHave(idx, m)
		case proto.HaveNot:
			// Baseline traffic only; counted and otherwise ignored.
			n.negatives.Add(1)
		case proto.Pong:
			n.core.Table().UpdateStats(idx, m.Load, m.Free)
		}
	}

	n.mu.Lock()
	if n.conns[idx] == conn {
		delete(n.conns, idx)
		delete(n.lastSeen, idx)
		n.mu.Unlock()
		n.core.Table().Disconnect(idx)
		n.cfg.Logf("cmsd %s: child index %d disconnected", n.cfg.Name, idx)
	} else {
		n.mu.Unlock()
	}
}

// querySender transmits a Query to child index (Core callback).
func (n *Node) querySender(index int, q proto.Query) bool {
	n.mu.Lock()
	conn := n.conns[index]
	n.mu.Unlock()
	if conn == nil {
		return false
	}
	return transport.SendMessage(conn, q) == nil
}

// pinger probes subordinates for load/liveness and evicts the ones that
// have been silent for MissedPings intervals: their link is closed,
// which unwinds the child's recv loop and marks the member offline in
// the table (so selection, Vm, and the correction machinery all see the
// death without waiting for a transport-level error).
func (n *Node) pinger() {
	t := n.cfg.Clock.NewTicker(n.cfg.PingInterval)
	defer t.Stop()
	ping := proto.Marshal(proto.Ping{})
	silence := time.Duration(n.cfg.MissedPings) * n.cfg.PingInterval
	for {
		select {
		case <-n.stop:
			return
		case <-t.C():
			cutoff := n.cfg.Clock.Now().Add(-silence)
			n.mu.Lock()
			conns := make([]transport.Conn, 0, len(n.conns))
			var stale []transport.Conn
			var staleIdx []int
			for idx, c := range n.conns {
				if seen, ok := n.lastSeen[idx]; ok && seen.Before(cutoff) {
					stale = append(stale, c)
					staleIdx = append(staleIdx, idx)
					continue
				}
				conns = append(conns, c)
			}
			n.mu.Unlock()
			for i, c := range stale {
				n.cfg.Logf("cmsd %s: child index %d missed %d pings, evicting",
					n.cfg.Name, staleIdx[i], n.cfg.MissedPings)
				c.Close() // childConn's recv loop exits and disconnects it
			}
			for _, c := range conns {
				_ = c.Send(ping)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Child side: log into parents, answer queries.

// maxLoginRedirects bounds a cell-overflow redirect chain: a login may
// be vectored at most this many levels deeper before the child starts
// over at its configured parent (guards against redirect cycles from a
// confused or malicious tree).
const maxLoginRedirects = 4

func (n *Node) parentLoop(parent string) {
	// Jittered exponential redial pacing: a dead parent is not hammered
	// in lockstep by its whole subtree, yet a healthy reconnection
	// resets to the base delay. The seed is derived from the link's
	// identity so a fixed-seed chaos run reproduces the same schedule.
	bo := backoff.New(backoff.Policy{
		Base:   n.cfg.ReconnectDelay,
		Max:    20 * n.cfg.ReconnectDelay,
		Factor: 2,
		Jitter: 0.2,
	}, int64(names.Hash(n.cfg.Name+"->"+parent)))
	rng := rand.New(rand.NewSource(int64(names.Hash(n.cfg.Name + "@" + parent))))
	target := parent // current login target; overflow redirects re-point it
	hops := 0        // redirect chain depth from the configured parent
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		conn, err := n.cfg.Net.Dial(target)
		if err != nil {
			if target != parent {
				// The supervisor we were vectored at is unreachable; fall
				// back to the configured parent rather than wedging on a
				// dead overflow target.
				target, hops = parent, 0
			}
			n.sleepOrStop(bo.Next())
			continue
		}
		res := n.runParentConn(target, conn)
		if res.loggedIn {
			bo.Reset()
		}
		select {
		case <-n.stop:
			conn.Close()
			return
		default:
		}
		if res.redirect != "" {
			if hops < maxLoginRedirects {
				// Cell overflow: follow the vector immediately — a
				// redirect is placement progress, not a failure.
				target = res.redirect
				hops++
				continue
			}
			n.cfg.Logf("cmsd %s: login redirect chain exceeded %d hops, restarting at %s",
				n.cfg.Name, maxLoginRedirects, parent)
			target, hops = parent, 0
		}
		if res.rejected && target != parent {
			// A full leaf cell refused us; restarting at the configured
			// parent lets its overflow round-robin vector the next
			// attempt at a different subtree, instead of redialing the
			// same full cell forever.
			target, hops = parent, 0
		}
		delay := bo.Next()
		if res.loggedIn && n.cfg.RejoinSpread > 0 {
			// An established link died — likely alongside every sibling's
			// (manager restart). Stagger the re-login by the slot index
			// the parent had assigned, plus jitter, so the subtree's
			// re-subscription storm is spread over RejoinSpread instead
			// of arriving at once (FAULTS.md: restart storm).
			delay += time.Duration(float64(n.cfg.RejoinSpread) *
				(float64(res.index) + rng.Float64()) / float64(cluster.MaxMembers))
		}
		n.sleepOrStop(delay)
	}
}

func (n *Node) sleepOrStop(d time.Duration) {
	select {
	case <-n.stop:
	case <-n.cfg.Clock.After(d):
	}
}

func (n *Node) loginMsg() proto.Login {
	free := int64(1 << 40)
	load := uint32(0)
	if n.data != nil {
		free = n.data.Store().Free()
		load = n.data.Load()
	}
	return proto.Login{
		Role: n.cfg.Role, Name: n.cfg.Name,
		DataAddr: n.cfg.DataAddr, CtlAddr: n.cfg.CtlAddr,
		Prefixes: n.cfg.Prefixes, Free: free, Load: load,
	}
}

// parentResult is what one parent-connection attempt reports back to
// the redial loop.
type parentResult struct {
	loggedIn bool   // login succeeded; backoff resets, index is valid
	index    int    // slot index assigned by the parent (LoginOK.Index)
	redirect string // non-empty: cell overflow, retry login at this address
	rejected bool   // parent sent LoginRej; an overflow target must be abandoned
}

// runParentConn performs the login exchange and then serves the parent
// link until it breaks. It reports whether login succeeded (the redial
// loop resets its backoff only then), the slot index the parent
// assigned, and any overflow redirect target.
func (n *Node) runParentConn(parent string, conn transport.Conn) parentResult {
	if !n.track(conn) {
		return parentResult{}
	}
	defer n.untrack(conn)
	defer conn.Close()
	if err := transport.SendMessage(conn, n.loginMsg()); err != nil {
		return parentResult{}
	}
	// The login reply is awaited under a timeout: a dropped LoginOK
	// frame must surface as a failed attempt, not a wedged loop. A reply
	// abandoned by the timeout falls to the GC unreleased, which pooled
	// frames tolerate.
	type recvResult struct {
		f   *proto.Frame
		err error
	}
	replyCh := make(chan recvResult, 1)
	go func() {
		f, err := transport.RecvFrame(conn)
		replyCh <- recvResult{f, err}
	}()
	var f *proto.Frame
	select {
	case r := <-replyCh:
		if r.err != nil {
			return parentResult{}
		}
		f = r.f
	case <-n.cfg.Clock.After(n.cfg.LoginTimeout):
		n.cfg.Logf("cmsd %s: login to %s timed out", n.cfg.Name, parent)
		conn.Close() // unblocks the Recv goroutine
		return parentResult{}
	case <-n.stop:
		conn.Close()
		return parentResult{}
	}
	msg, err := proto.Unmarshal(f.Bytes())
	f.Release()
	if err != nil {
		return parentResult{}
	}
	if rej, isRej := msg.(proto.LoginRej); isRej {
		n.cfg.Logf("cmsd %s: login rejected by %s: %s", n.cfg.Name, parent, rej.Reason)
		n.sleepOrStop(5 * n.cfg.ReconnectDelay)
		return parentResult{rejected: true}
	}
	if rd, isRd := msg.(proto.LoginRedirect); isRd {
		n.cfg.Logf("cmsd %s: login vectored by full cell %s at %s", n.cfg.Name, parent, rd.CtlAddr)
		return parentResult{redirect: rd.CtlAddr}
	}
	loginOK, isOK := msg.(proto.LoginOK)
	if !isOK {
		return parentResult{}
	}
	res := parentResult{loggedIn: true, index: int(loginOK.Index)}
	n.parentsUp.Add(1)
	defer n.parentsUp.Add(-1)
	n.cfg.Logf("cmsd %s: logged into %s as index %d", n.cfg.Name, parent, res.index)

	for {
		f, err := transport.RecvFrame(conn)
		if err != nil {
			return res
		}
		msg, err := proto.Unmarshal(f.Bytes())
		f.Release()
		if err != nil {
			return res
		}
		switch m := msg.(type) {
		case proto.Query:
			n.handleQuery(conn, m)
		case proto.Ping:
			pong := proto.Pong{Free: 1 << 40}
			if n.data != nil {
				pong = proto.Pong{Load: n.data.Load(), Free: n.data.Store().Free()}
			}
			if err := transport.SendMessage(conn, pong); err != nil {
				return res
			}
		}
	}
}

// handleQuery implements the request-rarely-respond protocol: answer
// only when this subtree has (or is staging) the file; silence
// otherwise.
func (n *Node) handleQuery(conn transport.Conn, q proto.Query) {
	n.queries.Add(1)
	switch n.cfg.Role {
	case proto.RoleServer:
		st := n.data.Store()
		switch {
		case st.HasOnline(q.Path):
			n.haves.Add(1)
			transport.SendMessage(conn, proto.Have{
				QID: q.QID, Path: q.Path, Hash: q.Hash,
				Pending: false, CanWrite: !n.cfg.ReadOnly,
			})
		case st.Has(q.Path):
			// In mass storage: begin making it ready and report Vp.
			st.Stage(q.Path)
			n.haves.Add(1)
			transport.SendMessage(conn, proto.Have{
				QID: q.QID, Path: q.Path, Hash: q.Hash,
				Pending: true, CanWrite: !n.cfg.ReadOnly,
			})
		default:
			if n.cfg.RespondAlways {
				// E10 baseline: explicit negative instead of silence.
				n.negatives.Add(1)
				transport.SendMessage(conn, proto.HaveNot{QID: q.QID, Path: q.Path, Hash: q.Hash})
			}
		}
		// Silence means "no" (Section III-B).
	case proto.RoleSupervisor:
		// Resolve among our own subtree asynchronously; multiple child
		// responses compress into (at most) this one upward Have.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			out := n.core.Resolve(Request{Path: q.Path, Write: q.Write})
			if out.Kind == KindRedirect {
				n.haves.Add(1)
				transport.SendMessage(conn, proto.Have{
					QID: q.QID, Path: q.Path, Hash: q.Hash,
					Pending: out.Pending, CanWrite: true,
				})
			}
		}()
	}
}

// QueriesReceived reports how many location queries this node has been
// asked by its parents (the harness uses it for the message-count
// experiments E10/E13).
func (n *Node) QueriesReceived() int64 { return n.queries.Load() }

// HavesSent reports how many positive responses this node sent upward.
func (n *Node) HavesSent() int64 { return n.haves.Load() }

// Negatives reports the explicit negative responses this node sent (as
// a respond-always server) or received (as a manager). Always zero for
// the production protocol.
func (n *Node) Negatives() int64 { return n.negatives.Load() }

// ---------------------------------------------------------------------
// Redirector data plane.

func (n *Node) serveRedirector(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() { defer n.wg.Done(); n.redirectorConn(conn) }()
	}
}

func (n *Node) redirectorConn(conn transport.Conn) {
	if !n.track(conn) {
		return
	}
	defer n.untrack(conn)
	defer conn.Close()
	mux.Serve(conn, n.redirectorRequest, mux.ServeOptions{
		Sched:  n.dataSched,
		Tracer: n.cfg.Tracer,
		OnError: func(err error) {
			n.cfg.Logf("cmsd %s: bad data-plane frame from %s: %v", n.cfg.Name, conn.RemoteAddr(), err)
		},
	})
}

// redirectorRequest resolves one data-plane request on a redirector;
// it may block in the fast response queue, so concurrent dispatch runs
// it on a bounded worker per request.
func (n *Node) redirectorRequest(msg proto.Message, _ mux.Responder) proto.Message {
	var reply proto.Message
	switch m := msg.(type) {
	case proto.Locate:
		reply = n.outcomeReply(n.core.Resolve(Request{
			Path: m.Path, Write: m.Write, Create: m.Create,
			Refresh: m.Refresh, Avoid: m.Avoid,
		}))
	case proto.Open:
		reply = n.outcomeReply(n.core.Resolve(Request{
			Path: m.Path, Write: m.Write, Create: m.Create,
		}))
	case proto.Stat, proto.Unlink:
		var path string
		if s, isStat := m.(proto.Stat); isStat {
			path = s.Path
		} else {
			path = m.(proto.Unlink).Path
		}
		out := n.core.Resolve(Request{Path: path})
		if out.Kind == KindNoEnt {
			if _, isStat := m.(proto.Stat); isStat {
				reply = proto.StatOK{Exists: false}
			} else {
				reply = proto.Err{Code: proto.ENoEnt, Msg: "no such file"}
			}
		} else {
			reply = n.outcomeReply(out)
		}
	case proto.Prepare:
		reply = proto.PrepareOK{Queued: n.core.Prepare(m.Paths, m.Write)}
	case proto.Ping:
		reply = proto.Pong{Free: 1 << 40}
	default:
		reply = proto.Err{Code: proto.EInval, Msg: "unexpected message"}
	}
	return reply
}

func (n *Node) outcomeReply(out Outcome) proto.Message {
	switch out.Kind {
	case KindRedirect:
		return proto.Redirect{Addr: out.Addr, CtlAddr: out.CtlAddr, Pending: out.Pending}
	case KindWait:
		return proto.Wait{Millis: out.Millis}
	case KindRetry:
		return proto.Wait{Millis: 1}
	default:
		return proto.Err{Code: proto.ENoEnt, Msg: "no such file"}
	}
}
