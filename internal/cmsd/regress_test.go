package cmsd

import (
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cluster"
	"scalla/internal/names"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/vclock"
)

// manualRig builds a Manual-mode core on a fake clock with n silent
// subordinates (queries are recorded as sendable but never answered)
// and an OnAwait handshake channel — the same drive the deterministic
// harness uses, minimized for regression tests.
type manualRig struct {
	core    *Core
	clk     *vclock.Fake
	awaitCh chan struct{}
}

func newManualRig(t *testing.T, n, slots int) *manualRig {
	t.Helper()
	rig := &manualRig{clk: vclock.NewFake(), awaitCh: make(chan struct{})}
	rig.core = NewCore(Config{
		Manual:    true,
		OnAwait:   func() { rig.awaitCh <- struct{}{} },
		Clock:     rig.clk,
		FullDelay: 5 * time.Second,
		Cache:     cache.Config{InitialBuckets: 89},
		Queue:     respq.Config{Slots: slots},
	})
	t.Cleanup(rig.core.Close)
	for i := 0; i < n; i++ {
		if _, _, err := rig.core.Table().Login(cluster.Member{
			Name:     "srv" + string(rune('a'+i)),
			Role:     proto.RoleServer,
			DataAddr: "srv" + string(rune('a'+i)) + ":data",
			Prefixes: names.NewPrefixSet("/"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rig.core.SetQuerySender(func(int, proto.Query) bool { return true })
	return rig
}

// TestCreateReleasesParkedWaiters is the minimized regression for a
// lost-waiter bug the detsim sweep surfaced: a client that deferred
// just before the processing deadline lapsed was left parked when a
// later create resolved the same path. The optimistic location update
// in notFound detaches the object's fast-response tokens, and the
// original code dropped them — the parked client sat until guard-window
// expiry and paid the full delay despite the location being known. The
// fix releases the detached tokens at the creation target.
func TestCreateReleasesParkedWaiters(t *testing.T) {
	rig := newManualRig(t, 2, 0)

	// A reader misses, floods, and parks. Nobody answers.
	done := make(chan Outcome, 1)
	go func() { done <- rig.core.Resolve(Request{Path: "/fresh"}) }()
	<-rig.awaitCh // the reader reached its park point

	// The processing deadline lapses with the reader still parked (in
	// Manual mode nothing expires the guard window behind our back).
	rig.clk.Advance(6 * time.Second)

	// A writer creates the path: non-existence is its green light.
	out := rig.core.Resolve(Request{Path: "/fresh", Write: true, Create: true})
	if out.Kind != KindRedirect {
		t.Fatalf("create outcome = %+v, want redirect", out)
	}

	// The parked reader must be released at the creation target now —
	// not after guard-window expiry plus a full delay.
	select {
	case r := <-done:
		if r.Kind != KindRedirect || r.Index != out.Index {
			t.Fatalf("released reader got %+v, want redirect to index %d", r, out.Index)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked reader not released by the create; it would pay the full delay")
	}
}

// TestRespqFullImposesFullDelayNotSpin pins the ErrFull contract at the
// core's only NewEntry call site: when the fast response queue has no
// free anchor, the resolve must return one wait verdict carrying the
// full delay — exactly one allocation attempt, no retry loop, and no
// park.
func TestRespqFullImposesFullDelayNotSpin(t *testing.T) {
	rig := newManualRig(t, 1, 1)

	// The first client occupies the queue's only anchor.
	done := make(chan Outcome, 1)
	go func() { done <- rig.core.Resolve(Request{Path: "/a"}) }()
	<-rig.awaitCh

	// The second client finds the queue full: full delay, synchronously.
	out := rig.core.Resolve(Request{Path: "/b"})
	if out.Kind != KindWait {
		t.Fatalf("outcome = %+v, want wait", out)
	}
	if out.Millis != 5000 {
		t.Fatalf("wait = %d ms, want the 5000 ms full delay", out.Millis)
	}
	st := rig.core.Queue().Stats()
	if st.Full != 1 {
		t.Errorf("Full = %d, want exactly 1 (no allocation spin)", st.Full)
	}
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (the parked client's)", st.Entries)
	}
	// The refused client never parked: no second await handshake fired.
	select {
	case <-rig.awaitCh:
		t.Fatal("full-queue resolve parked")
	default:
	}

	// Drain: expire the first client's entry so its goroutine finishes.
	rig.clk.Advance(time.Second)
	if n := rig.core.Queue().ExpireNow(); n != 1 {
		t.Fatalf("ExpireNow = %d, want 1", n)
	}
	if r := <-done; r.Kind != KindWait || r.Millis != 5000 {
		t.Fatalf("expired client got %+v, want the full-delay wait", r)
	}
}
