package cmsd

// Observability wiring for a Node: frame collection for the
// summary-monitoring stream and the admin/status HTTP endpoint.

import (
	"net/http"

	"scalla/internal/obs"
	"scalla/internal/transport"
)

// Frame assembles the node's current summary-monitoring frame.
// Redirector roles report cache/respq/cluster/resolution state; server
// roles report their data plane. Both report transport counters when
// the node runs over a transport.CountingNetwork.
func (n *Node) Frame() obs.Frame {
	f := obs.Frame{Node: n.cfg.Name, Role: n.cfg.Role.String()}
	if c := n.core; c != nil {
		cs := c.Cache().Stats()
		lf := 0.0
		if cs.Buckets > 0 {
			lf = float64(cs.Entries) / float64(cs.Buckets)
		}
		conn := c.Cache().ConnStamps()
		shardEntries := make([]int64, 0, c.Cache().ShardCount())
		for _, ss := range c.Cache().ShardStats() {
			shardEntries = append(shardEntries, ss.Entries)
		}
		f.Cache = &obs.CacheSummary{
			Entries: cs.Entries, Buckets: cs.Buckets, LoadFactor: lf,
			Inserts: cs.Inserts, Hits: cs.Hits, Misses: cs.Misses,
			Resizes: cs.Resizes, Hidden: cs.Hidden, Swept: cs.Swept,
			Refreshes: cs.Refreshes,
			Ticks:     c.Cache().TickCount(),
			Epoch:     c.Cache().Epoch(),
			Conn:      obs.TrimConn(conn[:]),

			ShardEntries: shardEntries,
		}
		qs := c.Queue().Stats()
		f.RespQ = &obs.RespQSummary{
			Depth: qs.InUse, Entries: qs.Entries, Joins: qs.Joins,
			Released: qs.Released, Expired: qs.Expired, Full: qs.Full,
		}
		ts := c.Table().Summary()
		f.Cluster = &obs.ClusterSummary{
			Members: ts.Members, Online: ts.Online, Offline: ts.Offline,
			ParentsUp: n.ParentsUp(),
		}
		f.Ops, f.Counters = obs.OpsFromRegistry(c.Metrics())
	}
	if d := n.data; d != nil {
		ds := d.Stats()
		f.Data = &obs.DataSummary{
			OpenHandles: ds.OpenHandles, Inflight: ds.Inflight,
			Opens: ds.Opens, Reads: ds.Reads, Writes: ds.Writes,
			BytesRead: ds.BytesRead, BytesWritten: ds.BytesWritten,
			Staged: ds.Staged,
		}
		if st := d.Store(); st != nil {
			ss := st.Stats()
			meanUS := int64(0)
			if ss.Fsyncs > 0 {
				meanUS = ss.FsyncNanos / ss.Fsyncs / 1000
			}
			f.Store = &obs.StoreSummary{
				Backend: ss.Backend, Files: ss.Files, Offline: ss.Offline,
				StageQ: ss.Staging, UsedBytes: ss.UsedBytes,
				DirtyBytes: ss.DirtyBytes, Fsyncs: ss.Fsyncs,
				FsyncMeanUS: meanUS, FsyncMaxUS: ss.FsyncMaxNanos / 1000,
				StagedIn: ss.StagedIn, RecoveredAtUp: ss.Recovered,
			}
		}
		f.Cluster = &obs.ClusterSummary{ParentsUp: n.ParentsUp()}
		f.Sched = d.Sched().Summary()
	}
	if n.dataSched != nil {
		f.Sched = n.dataSched.Summary()
	}
	if cn, ok := n.cfg.Net.(*transport.CountingNetwork); ok {
		s := cn.Stats()
		f.Net = &obs.NetSummary{FramesSent: s.FramesSent, BytesSent: s.BytesSent, Dials: s.Dials}
	}
	if w, ok := transport.WireOf(n.cfg.Net); ok {
		f.Wire = w.Summary()
	}
	if f.Counters == nil {
		f.Counters = map[string]int64{}
	}
	f.Counters["node.queries"] = n.queries.Load()
	f.Counters["node.haves"] = n.haves.Load()
	f.Counters["node.negatives"] = n.negatives.Load()
	return f
}

// Tracer returns the node's event tracer (enable it to start recording
// spans; redirector roles share it with their Core).
func (n *Node) Tracer() *obs.Tracer { return n.cfg.Tracer }

// AdminHandler returns the node's admin/status endpoint serving
// /statusz, /metricsz, and /tracez.
func (n *Node) AdminHandler() http.Handler {
	st := obs.AdminState{Collect: n.Frame, Tracer: n.cfg.Tracer}
	if n.core != nil {
		st.Registry = n.core.Metrics()
	}
	return obs.NewHandler(st)
}
