package cmsd

import (
	"sync"
	"testing"
	"time"

	"scalla/internal/cluster"
	"scalla/internal/names"
	"scalla/internal/proto"
)

// pollRedirect retries Resolve until it yields a redirect or the
// deadline passes, returning the last outcome either way.
func pollRedirect(t *testing.T, c *Core, path string, deadline time.Duration) Outcome {
	t.Helper()
	var out Outcome
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		out = c.Resolve(Request{Path: path})
		if out.Kind == KindRedirect {
			return out
		}
		time.Sleep(5 * time.Millisecond)
	}
	return out
}

// A queried member dying mid-flood must trigger a re-flood that gives
// the members the first broadcast could not reach a second chance to
// answer inside the processing deadline.
func TestCoreMemberDownRefloodsUnreachedMember(t *testing.T) {
	rig := newCoreRig(t, 3, nil)
	core := rig.core

	var mu sync.Mutex
	failedOnce := false
	core.SetQuerySender(func(i int, q proto.Query) bool {
		rig.mu.Lock()
		rig.sent[i] = append(rig.sent[i], q)
		rig.mu.Unlock()
		if i != 2 {
			return true // servers 0 and 1 accept the query but stay silent
		}
		mu.Lock()
		first := !failedOnce
		failedOnce = true
		mu.Unlock()
		if first {
			return false // link to the holder is down at first flood
		}
		go core.HandleHave(2, proto.Have{
			QID: q.QID, Path: q.Path, Hash: q.Hash, CanWrite: true,
		})
		return true
	})

	if out := core.Resolve(Request{Path: "/f"}); out.Kind != KindWait {
		t.Fatalf("initial outcome = %+v, want wait", out)
	}
	if got := rig.queriesTo(2); got != 1 {
		t.Fatalf("holder saw %d sends before the re-flood, want 1", got)
	}

	// Server 0 — queried and silent — dies inside the deadline. The
	// re-flood retries Vq, which still carries the unreached holder.
	core.Table().Disconnect(0)

	out := pollRedirect(t, core, "/f", 120*time.Millisecond)
	if out.Kind != KindRedirect || out.Addr != "srvc:data" {
		t.Fatalf("post-refload outcome = %+v, want redirect to srvc:data", out)
	}
	if got := rig.queriesTo(2); got != 2 {
		t.Errorf("holder saw %d sends, want 2 (original + re-flood)", got)
	}
	if n := core.Metrics().Counter("resolve.refloods").Value(); n != 1 {
		t.Errorf("resolve.refloods = %d, want 1", n)
	}
}

// When every remaining Vq candidate is offline (disconnected but inside
// the drop-delay window), the verdict must still land once the
// processing deadline lapses: reads resolve to no-entry and creates
// proceed on an online member. Without this, one down member would
// stall vanished-file reads at the client's wait budget and block
// cluster-wide file creation.
func TestCoreOfflineOnlyCandidatesResolveAfterDeadline(t *testing.T) {
	rig := newCoreRig(t, 2, func(int, proto.Query) (bool, bool) { return false, false })
	rig.core.Table().UpdateStats(1, 0, 1_000)
	rig.core.Table().Disconnect(0)

	// Read of an unknown path: the online member is queried and stays
	// silent; the offline member's bit parks in Vq. After the deadline
	// the honest answer is no-entry, not another wait.
	if out := rig.core.Resolve(Request{Path: "/gone"}); out.Kind != KindWait {
		t.Fatalf("pre-deadline outcome = %+v, want wait", out)
	}
	time.Sleep(180 * time.Millisecond) // FullDelay is 150ms in the rig
	if out := rig.core.Resolve(Request{Path: "/gone"}); out.Kind != KindNoEnt {
		t.Fatalf("post-deadline outcome = %+v, want noent", out)
	}

	// Creation of a new file must not be blocked by the offline member:
	// once the deadline lapses the create verdict selects an online one.
	if out := rig.core.Resolve(Request{Path: "/new", Write: true, Create: true}); out.Kind != KindWait {
		t.Fatalf("pre-deadline create outcome = %+v, want wait", out)
	}
	time.Sleep(180 * time.Millisecond)
	out := rig.core.Resolve(Request{Path: "/new", Write: true, Create: true})
	if out.Kind != KindRedirect || out.Addr != "srvb:data" {
		t.Fatalf("create outcome = %+v, want redirect to online srvb:data", out)
	}
}

// A member that joins (or rejoins under a new connect epoch) while a
// flood is in flight must be queried via MemberUp, so it can answer
// parked clients before the full-delay fallback.
func TestCoreMemberUpRefloodsLateJoiner(t *testing.T) {
	rig := newCoreRig(t, 2, nil)
	core := rig.core
	core.SetQuerySender(func(i int, q proto.Query) bool {
		rig.mu.Lock()
		rig.sent[i] = append(rig.sent[i], q)
		rig.mu.Unlock()
		if i == 2 {
			go core.HandleHave(2, proto.Have{
				QID: q.QID, Path: q.Path, Hash: q.Hash, CanWrite: true,
			})
		}
		return true // servers 0 and 1 stay silent
	})

	if out := core.Resolve(Request{Path: "/late"}); out.Kind != KindWait {
		t.Fatalf("initial outcome = %+v, want wait", out)
	}

	// A third server logs in while the flood is still inside its
	// deadline; the node layer calls MemberUp once its link is live.
	idx, _, err := core.Table().Login(cluster.Member{
		Name: "srvc", Role: proto.RoleServer, DataAddr: "srvc:data",
		Prefixes: names.NewPrefixSet("/"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("late joiner got index %d, want 2", idx)
	}
	core.MemberUp(idx)

	out := pollRedirect(t, core, "/late", 120*time.Millisecond)
	if out.Kind != KindRedirect || out.Addr != "srvc:data" {
		t.Fatalf("post-join outcome = %+v, want redirect to srvc:data", out)
	}
	if got := rig.queriesTo(2); got < 1 {
		t.Error("late joiner was never queried by the re-flood")
	}
}
