// Package cmsd implements Scalla's cluster management daemon: the
// resolution core that ties the location cache, the fast response
// queue, and the membership table together (Core), and the network
// daemon that runs it as a manager, supervisor, or server node (Node).
package cmsd

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/cache"
	"scalla/internal/cluster"
	"scalla/internal/metrics"
	"scalla/internal/names"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/vclock"
)

// OutcomeKind classifies a resolution result.
type OutcomeKind int

const (
	// KindRedirect vectors the client at Addr.
	KindRedirect OutcomeKind = iota
	// KindWait tells the client to wait Millis and reissue the request
	// (the full delay of Section III-B).
	KindWait
	// KindNoEnt means the file does not exist anywhere in the subtree.
	KindNoEnt
	// KindRetry asks the client to retry immediately: a reference went
	// stale mid-operation and processing must restart from a consistent
	// state (Section III-B1).
	KindRetry
)

// Outcome is the result of resolving one client request.
type Outcome struct {
	Kind    OutcomeKind
	Index   int    // selected subordinate
	Addr    string // its data-plane address
	CtlAddr string // its control address (non-empty for supervisors)
	Pending bool   // subordinate is staging the file
	Millis  uint32 // for KindWait
}

// Request is one client resolution request.
type Request struct {
	Path   string
	Write  bool
	Create bool
	// Refresh forces re-querying all eligible servers, avoiding the
	// host that failed (Section III-C1).
	Refresh bool
	Avoid   string // data address of the failing host, with Refresh
}

// Config parameterizes a Core.
type Config struct {
	// Cache configures the location cache. Clock is overridden by the
	// Core clock.
	Cache cache.Config
	// Queue configures the fast response queue.
	Queue respq.Config
	// Cluster configures the membership table.
	Cluster cluster.Config
	// ReadPolicy selects among holders for reads. Default ByLoad.
	ReadPolicy cluster.Policy
	// WritePolicy selects among holders for writes and creation targets.
	// Default BySpace.
	WritePolicy cluster.Policy
	// FullDelay is the wait imposed when the fast window misses; it
	// should equal the cache's processing deadline. Default 5 s.
	FullDelay time.Duration
	// Levels is how many redirector levels run at or below this core: 1
	// for a leaf supervisor (whose children are data servers), up to the
	// tree's full redirector depth for the root manager. A core's
	// processing deadline must cover its subtree's worst-case resolution
	// time — a supervisor child needs its own full delay before its
	// silence means "no" (Section III-C1) — so the effective full delay
	// (and with it the cache deadline and the wait verdict) is
	// FullDelay × Levels. withDefaults folds the factor into FullDelay.
	// Without this, a depth-4 manager declares definitive not-found
	// while a grandchild supervisor is still legitimately querying, and
	// clients see spurious ENOENT for files that exist. Default 1.
	Levels int
	// Clock supplies time everywhere. Default vclock.Real().
	Clock vclock.Clock
	// Tracer records per-request resolution spans. Default: a disabled
	// tracer with obs.DefaultSpanCapacity slots, so tracing can be
	// switched on at runtime (via /tracez) without reconfiguring. While
	// disabled the resolve path pays one atomic load per request.
	Tracer *obs.Tracer
	// Manual suppresses the background machinery: NewCore starts neither
	// the fast-response thread nor the eviction clock, and the embedder
	// drives both explicitly (Queue().ExpireNow, Cache().Tick). The
	// deterministic simulation harness (internal/detsim) sets it so that
	// every timer firing is a scheduler decision rather than a goroutine
	// race.
	Manual bool
	// OnAwait, if set, is invoked on the resolving goroutine immediately
	// before it blocks on the fast response queue. The deterministic
	// harness uses it as the park handshake: the scheduler knows the
	// resolution has reached its single blocking point and can safely
	// take the next scheduling decision.
	OnAwait func()
}

func (c Config) withDefaults() Config {
	if c.FullDelay <= 0 {
		c.FullDelay = 5 * time.Second
	}
	if c.Levels > 1 {
		// Depth-aware deadline: from here on FullDelay is the effective
		// per-flood deadline for this level's subtree.
		c.FullDelay *= time.Duration(c.Levels)
		c.Levels = 1
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.WritePolicy == cluster.ByLoad {
		c.WritePolicy = cluster.BySpace
	}
	c.Cache.Clock = c.Clock
	if c.Cache.Deadline <= 0 {
		c.Cache.Deadline = c.FullDelay
	}
	c.Queue.Clock = c.Clock
	c.Cluster.Clock = c.Clock
	return c
}

// QuerySender transmits a location query to subordinate index. It
// reports whether the query could be sent (a dead link counts as "could
// not be queried", leaving the bit in Vq for the next look-up).
type QuerySender func(index int, q proto.Query) bool

// Core is the resolution engine of a manager or supervisor cmsd.
type Core struct {
	cfg    Config
	cache  *cache.Cache
	queue  *respq.Queue
	table  *cluster.Table
	reg    *metrics.Registry
	tracer *obs.Tracer

	sendQuery atomic.Pointer[QuerySender]
	qid       atomic.Uint64

	// inflight tracks query floods whose processing deadline has not
	// passed, so MemberDown can re-flood the ones a dying member leaves
	// unanswered (graceful degradation inside the 5 s window).
	inflightMu sync.Mutex
	inflight   map[uint64]inflightFlood

	stop    chan struct{}
	stopped atomic.Bool
}

// inflightFlood is one outstanding query broadcast: who was asked, for
// what, and until when an answer is still awaited.
type inflightFlood struct {
	path     string
	write    bool
	queried  bitvec.Vec
	deadline time.Time
}

// NewCore builds a Core and starts its background machinery (response
// thread and eviction clock) unless cfg.Manual is set. Call Close when
// done.
func NewCore(cfg Config) *Core {
	cfg = cfg.withDefaults()
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(0, cfg.Clock)
	}
	c := &Core{cfg: cfg, stop: make(chan struct{}), reg: metrics.NewRegistry(),
		tracer: cfg.Tracer, inflight: make(map[uint64]inflightFlood)}

	// Wire membership events into the cache's connect-epoch counter.
	userNew := cfg.Cluster.OnNewServer
	cfg.Cluster.OnNewServer = func(i int) {
		c.cache.ServerConnected(i)
		if userNew != nil {
			userNew(i)
		}
	}
	// A dropped member bumps the epoch too: its slot leaves Vm, and if
	// the slot is ever reassigned the old bits must not resurrect.
	userDrop := cfg.Cluster.OnDrop
	cfg.Cluster.OnDrop = func(i int) {
		c.cache.ServerDropped(i)
		c.reg.Counter("cluster.drops").Inc()
		if userDrop != nil {
			userDrop(i)
		}
	}
	// A member death inside the processing deadline re-floods the
	// queries it was part of (Section III-B graceful degradation).
	userOffline := cfg.Cluster.OnOffline
	cfg.Cluster.OnOffline = func(i int) {
		c.MemberDown(i)
		if userOffline != nil {
			userOffline(i)
		}
	}
	// Surface the rare maintenance events (window ticks, guard-window
	// expiries) as metrics for the summary stream.
	userTick := cfg.Cache.OnTick
	cfg.Cache.OnTick = func(tick uint64, hidden int64) {
		c.reg.Counter("cache.ticks").Inc()
		c.reg.Counter("cache.tick_evictions").Add(hidden)
		if userTick != nil {
			userTick(tick, hidden)
		}
	}
	userExp := cfg.Queue.OnExpired
	cfg.Queue.OnExpired = func(n int) {
		c.reg.Counter("respq.expired").Add(int64(n))
		if userExp != nil {
			userExp(n)
		}
	}
	c.cache = cache.New(cfg.Cache)
	c.queue = respq.New(cfg.Queue)
	c.table = cluster.New(cfg.Cluster)

	if !cfg.Manual {
		go c.queue.Run(c.stop)
		go c.cache.Run(c.stop)
	}
	return c
}

// Close stops the background machinery.
func (c *Core) Close() {
	if c.stopped.CompareAndSwap(false, true) {
		close(c.stop)
	}
}

// Table exposes the membership table (the node layer registers logins
// and disconnects through it).
func (c *Core) Table() *cluster.Table { return c.table }

// Cache exposes the location cache (for stats and the bench harness).
func (c *Core) Cache() *cache.Cache { return c.cache }

// Queue exposes the fast response queue (for stats).
func (c *Core) Queue() *respq.Queue { return c.queue }

// Metrics exposes the resolution metrics registry: counters
// resolve.{redirect,wait,noent,retry}, resolve.queries, resolve.haves,
// cache.{ticks,tick_evictions}, respq.expired, and the resolve.latency
// histogram.
func (c *Core) Metrics() *metrics.Registry { return c.reg }

// Tracer exposes the event tracer (for the admin endpoint and tests).
func (c *Core) Tracer() *obs.Tracer { return c.tracer }

// SetQuerySender installs the function used to transmit queries to
// subordinates. The node layer sets it once links exist.
func (c *Core) SetQuerySender(fn QuerySender) { c.sendQuery.Store(&fn) }

// fullDelayMillis is the Wait payload for a full-delay retry.
func (c *Core) fullDelayMillis() uint32 {
	return uint32(c.cfg.FullDelay / time.Millisecond)
}

// NextQID returns a fresh query identifier.
func (c *Core) NextQID() uint64 { return c.qid.Add(1) }

// Resolve runs the resolution steps of Section III-B1 for one request,
// blocking until the client can be answered (a fast-window response, an
// immediate cached redirect, or a wait/doesn't-exist verdict).
func (c *Core) Resolve(req Request) Outcome {
	start := c.cfg.Clock.Now()
	sp := c.tracer.Start("resolve", req.Path)
	out := c.resolve(req, sp)
	c.reg.Histogram("resolve.latency").Observe(c.cfg.Clock.Now().Sub(start))
	switch out.Kind {
	case KindRedirect:
		c.reg.Counter("resolve.redirect").Inc()
		sp.End("redirect " + out.Addr)
	case KindWait:
		c.reg.Counter("resolve.wait").Inc()
		sp.End(fmt.Sprintf("wait %dms", out.Millis))
	case KindNoEnt:
		c.reg.Counter("resolve.noent").Inc()
		sp.End("noent")
	case KindRetry:
		c.reg.Counter("resolve.retry").Inc()
		sp.End("retry")
	}
	return out
}

func (c *Core) resolve(req Request, sp *obs.Span) Outcome {
	path := names.Clean(req.Path)
	vm := c.table.VmFor(path)
	if vm.IsEmpty() {
		// No registered subordinate exports the path.
		return Outcome{Kind: KindNoEnt}
	}
	offline := c.table.OfflineVec()
	avoid := c.indexByAddr(req.Avoid)

	var (
		ref     cache.Ref
		view    cache.View
		ok      bool
		claimed bool
	)
	if req.Refresh {
		ref, view, ok = c.cache.Fetch(path, vm, offline)
		if ok {
			sp.Event("refresh", req.Avoid)
			if v, rok := c.cache.Refresh(ref, vm, avoid); rok {
				view, claimed = v, true
			} else {
				return Outcome{Kind: KindRetry}
			}
			if avoid >= 0 {
				// Evict the failing server so selection avoids it even
				// if a stale response re-adds it later.
				c.cache.Evict(ref, avoid)
			}
		}
	} else {
		ref, view, ok = c.cache.Fetch(path, vm, offline)
	}
	if ok {
		sp.Event("cache.hit", "")
	} else {
		// Step 1: first access — cache the name with Vq = Vm. The
		// creator owns the processing deadline.
		sp.Event("cache.miss", "")
		var created bool
		ref, view, created = c.cache.Add(path, vm, offline)
		claimed = created
	}

	// Step 3: any known holder (or stager) wins immediately — this is
	// the <50 µs cached path.
	if out, done := c.redirectFrom(view, req.Write, avoid); done {
		return out
	}

	now := c.cfg.Clock.Now()
	if view.Empty() {
		// Step 2: nothing known and nothing left to ask.
		if now.After(view.Deadline) {
			return c.notFound(path, vm, req, sp)
		}
		// A deadline is pending: some other thread is querying. Defer
		// via the fast response queue.
		sp.Event("defer", "deadline pending")
		return c.parkAndWait(ref, req.Write, avoid, sp)
	}

	// Every candidate left in Vq may be offline — disconnected but
	// inside its drop-delay window, so still a member yet unqueryable.
	// Nothing can improve the verdict before a reconnect, so a lapsed
	// deadline resolves exactly like the nothing-left-to-ask case:
	// letting clients spin on "wait" here would stall reads of vanished
	// files and, worse, block creation of brand-new files cluster-wide
	// whenever one member is down. The offline bits stay in Vq, and a
	// reconnect re-queries them via MemberUp and Figure-3 correction.
	if view.Vq.Intersect(c.table.OnlineVec()).IsEmpty() {
		if now.After(view.Deadline) {
			sp.Event("offline.only", "")
			return c.notFound(path, vm, req, sp)
		}
		sp.Event("defer", "all candidates offline")
		return c.parkAndWait(ref, req.Write, avoid, sp)
	}

	// Step 4/5: Vq is non-empty. Exactly one thread issues the queries;
	// everyone parks on the fast response queue first so no response
	// can slip between query and park.
	if !claimed {
		cl, vok := c.cache.ClaimQuery(ref)
		if !vok {
			return Outcome{Kind: KindRetry}
		}
		claimed = cl
	}
	if !claimed {
		sp.Event("defer", "another thread querying")
		return c.parkAndWait(ref, req.Write, avoid, sp)
	}

	parked, waitCh := c.park(ref, req.Write)
	sp.Event("park", "")
	c.broadcast(ref, view.Vq, req.Write, sp)
	if !parked {
		// Queue full: the client pays the full delay (Section III-B1).
		sp.Event("respq.full", "")
		return Outcome{Kind: KindWait, Millis: c.fullDelayMillis()}
	}
	return c.await(waitCh, avoid, sp)
}

// notFound resolves the "file does not exist" verdict. For creation,
// non-existence is the green light: pick a target by the write policy
// and optimistically record the location (step "mitigating timeout
// delays" — the create path).
func (c *Core) notFound(path string, vm bitvec.Vec, req Request, sp *obs.Span) Outcome {
	if !req.Create {
		return Outcome{Kind: KindNoEnt}
	}
	idx, ok := c.table.Select(vm, c.cfg.WritePolicy)
	if !ok {
		return Outcome{Kind: KindNoEnt}
	}
	m, ok := c.table.Member(idx)
	if !ok {
		return Outcome{Kind: KindNoEnt}
	}
	// Optimistically record the impending location so the next client
	// finds it without a full delay. The update detaches any
	// fast-response tokens from the object, so the waiters behind them —
	// clients that deferred moments before the deadline lapsed — must be
	// released at the creation target here. Dropping the result instead
	// left them parked until guard-window expiry, paying the full delay
	// the optimistic record exists to avoid (found by the detsim sweep;
	// see TestCreateReleasesParkedWaiters).
	sp.Event("create", m.DataAddr)
	if res, ok := c.cache.Update(path, names.Hash(path), idx, false, true); ok {
		if res.ReadWaiters != 0 {
			c.queue.Release(res.ReadWaiters, idx, false)
		}
		if res.WriteWaiters != 0 {
			c.queue.Release(res.WriteWaiters, idx, false)
		}
	}
	return Outcome{Kind: KindRedirect, Index: idx, Addr: m.DataAddr, CtlAddr: ctlIfRedirector(m)}
}

// redirectFrom selects among the view's holders, never vectoring at the
// avoid index (the host the client just reported as failing, Section
// III-C1). done=false means no eligible online holder exists and
// resolution must continue.
func (c *Core) redirectFrom(view cache.View, write bool, avoid int) (Outcome, bool) {
	policy := c.cfg.ReadPolicy
	if write {
		policy = c.cfg.WritePolicy
	}
	vh := view.Vh.Minus(bitvec.Bit(avoid))
	vp := view.Vp.Minus(bitvec.Bit(avoid))
	if !vh.IsEmpty() {
		if idx, ok := c.table.Select(vh, policy); ok {
			if m, mok := c.table.Member(idx); mok {
				return Outcome{Kind: KindRedirect, Index: idx, Addr: m.DataAddr, CtlAddr: ctlIfRedirector(m)}, true
			}
		}
	}
	if !vp.IsEmpty() {
		if idx, ok := c.table.Select(vp, policy); ok {
			if m, mok := c.table.Member(idx); mok {
				return Outcome{Kind: KindRedirect, Index: idx, Addr: m.DataAddr, CtlAddr: ctlIfRedirector(m), Pending: true}, true
			}
		}
	}
	return Outcome{}, false
}

func ctlIfRedirector(m cluster.Member) string {
	if m.Role == proto.RoleSupervisor {
		return m.CtlAddr
	}
	return ""
}

// park adds a waiter for ref to the fast response queue, joining the
// existing entry when one is live. It returns the channel the outcome
// arrives on; parked=false means the queue is full.
func (c *Core) park(ref cache.Ref, write bool) (parked bool, ch chan respq.Result) {
	ch = make(chan respq.Result, 2)
	w := func(r respq.Result) {
		select {
		case ch <- r:
		default: // double delivery from a lost swap race; drop
		}
	}
	tok, ok := c.cache.Waiters(ref, write)
	if !ok {
		return false, ch
	}
	if tok != 0 && c.queue.Join(tok, w) {
		return true, ch
	}
	ntok, err := c.queue.NewEntry(w)
	if err != nil {
		return false, ch
	}
	if c.cache.SwapWaiters(ref, write, tok, ntok) {
		return true, ch
	}
	// Lost the installation race; try to join whoever won. Our orphaned
	// entry simply expires (worst case w fires twice; the buffer guard
	// above absorbs it).
	tok2, ok2 := c.cache.Waiters(ref, write)
	if ok2 && tok2 != 0 && c.queue.Join(tok2, w) {
		return true, ch
	}
	return true, ch // rely on the orphan entry's own expiry
}

// parkAndWait parks and blocks for the outcome (deferral path).
func (c *Core) parkAndWait(ref cache.Ref, write bool, avoid int, sp *obs.Span) Outcome {
	parked, ch := c.park(ref, write)
	if !parked {
		sp.Event("respq.full", "")
		return Outcome{Kind: KindWait, Millis: c.fullDelayMillis()}
	}
	sp.Event("park", "")
	return c.await(ch, avoid, sp)
}

// await converts the fast-response outcome into a client answer. A
// release naming the avoided host (possible when a stale in-flight
// response from it lands mid-refresh) is answered with a wait instead —
// the client must never be re-vectored at the host it just reported.
func (c *Core) await(ch chan respq.Result, avoid int, sp *obs.Span) Outcome {
	if c.cfg.OnAwait != nil {
		c.cfg.OnAwait()
	}
	select {
	case r := <-ch:
		if r.Expired {
			sp.Event("respq.expired", "")
			return Outcome{Kind: KindWait, Millis: c.fullDelayMillis()}
		}
		sp.Event("respq.release", fmt.Sprintf("server %d", r.Server))
		if r.Server == avoid {
			return Outcome{Kind: KindWait, Millis: c.fullDelayMillis()}
		}
		m, ok := c.table.Member(r.Server)
		if !ok {
			return Outcome{Kind: KindWait, Millis: c.fullDelayMillis()}
		}
		return Outcome{Kind: KindRedirect, Index: r.Server, Addr: m.DataAddr,
			CtlAddr: ctlIfRedirector(m), Pending: r.Pending}
	case <-c.stop:
		return Outcome{Kind: KindWait, Millis: c.fullDelayMillis()}
	}
}

// broadcast sends a location query to every online subordinate in vq
// and marks the successfully queried ones off the object's Vq (step 6).
func (c *Core) broadcast(ref cache.Ref, vq bitvec.Vec, write bool, sp *obs.Span) {
	fnp := c.sendQuery.Load()
	if fnp == nil {
		return
	}
	fn := *fnp
	q := proto.Query{QID: c.NextQID(), Path: ref.Name(), Hash: ref.Hash(), Write: write}
	online := c.table.OnlineVec()
	var queried bitvec.Vec
	vq.Intersect(online).ForEach(func(i int) bool {
		if fn(i, q) {
			queried = queried.With(i)
		}
		return true
	})
	if !queried.IsEmpty() {
		c.cache.MarkQueried(ref, queried)
		c.reg.Counter("resolve.queries").Add(int64(queried.Count()))
		c.noteFlood(q.QID, ref.Name(), write, queried)
	}
	sp.Event("flood", fmt.Sprintf("queried %d of %d", queried.Count(), vq.Count()))
}

// noteFlood registers an outstanding broadcast for MemberDown's re-flood
// scan, pruning entries whose deadline already passed.
func (c *Core) noteFlood(qid uint64, path string, write bool, queried bitvec.Vec) {
	now := c.cfg.Clock.Now()
	c.inflightMu.Lock()
	for id, f := range c.inflight {
		if now.After(f.deadline) {
			delete(c.inflight, id)
		}
	}
	c.inflight[qid] = inflightFlood{
		path: path, write: write, queried: queried,
		deadline: now.Add(c.cfg.FullDelay),
	}
	c.inflightMu.Unlock()
}

// MemberDown reacts to the loss of subordinate index while queries to it
// may still be outstanding: every live flood that included it is
// re-issued against the corrected Vq (the dead member's bits have moved
// back into Vq via the offline set, and members that were unreachable at
// first flood are still there). Without this, a member that dies holding
// the only copy of an answer silently costs each parked client the full
// five-second delay; with it, surviving holders get a second chance to
// answer inside the window. The cluster layer invokes it via OnOffline.
func (c *Core) MemberDown(index int) {
	now := c.cfg.Clock.Now()
	c.inflightMu.Lock()
	var hit []qidFlood
	for id, f := range c.inflight {
		if now.After(f.deadline) {
			delete(c.inflight, id)
			continue
		}
		if f.queried.Has(index) {
			hit = append(hit, qidFlood{id, f})
			delete(c.inflight, id)
		}
	}
	c.inflightMu.Unlock()
	refloodOrdered(hit)
	for _, qf := range hit {
		c.reflood(qf.f, index, "member.down")
	}
}

// qidFlood pairs an inflight flood with its query ID so the re-flood
// passes can order their work deterministically.
type qidFlood struct {
	qid uint64
	f   inflightFlood
}

// refloodOrdered sorts re-flood work by query ID. Go's map iteration
// order would otherwise make the re-broadcast sequence — and with it the
// selection and RNG draw order downstream — differ from run to run,
// which the deterministic harness's replay guarantee cannot tolerate.
func refloodOrdered(hit []qidFlood) {
	sort.Slice(hit, func(i, j int) bool { return hit[i].qid < hit[j].qid })
}

// MemberUp reacts to subordinate index (re)joining while floods are in
// flight: every live flood is re-issued, because the corrected Vq now
// includes the newcomer (its connect epoch C[i] exceeds each cached
// object's Cn) plus any member the first flood could not reach. This is
// how a server that crashes and returns within the processing deadline
// — or joins for the first time mid-flood — still answers parked
// clients instead of leaving them to the full-delay fallback. The node
// layer calls it once the child's query link is installed.
func (c *Core) MemberUp(index int) {
	now := c.cfg.Clock.Now()
	c.inflightMu.Lock()
	var hit []qidFlood
	for id, f := range c.inflight {
		delete(c.inflight, id)
		if now.After(f.deadline) {
			continue
		}
		hit = append(hit, qidFlood{id, f})
	}
	c.inflightMu.Unlock()
	refloodOrdered(hit)
	for _, qf := range hit {
		c.reflood(qf.f, index, "member.up")
	}
}

// FloodInfo describes one outstanding query broadcast for invariant
// checking: the deterministic harness asserts that at most one live
// flood exists per path inside the processing deadline.
type FloodInfo struct {
	QID      uint64
	Path     string
	Write    bool
	Queried  bitvec.Vec
	Deadline time.Time
}

// InflightFloods returns a snapshot of the outstanding query broadcasts,
// sorted by QID. Entries whose deadline has already passed may linger
// until the next flood prunes them; callers filter by Deadline.
func (c *Core) InflightFloods() []FloodInfo {
	c.inflightMu.Lock()
	out := make([]FloodInfo, 0, len(c.inflight))
	for id, f := range c.inflight {
		out = append(out, FloodInfo{QID: id, Path: f.path, Write: f.write,
			Queried: f.queried, Deadline: f.deadline})
	}
	c.inflightMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].QID < out[j].QID })
	return out
}

// reflood re-broadcasts one interrupted query flood.
func (c *Core) reflood(f inflightFlood, index int, why string) {
	sp := c.tracer.Start("reflood", f.path)
	sp.Event(why, fmt.Sprintf("server %d", index))
	vm := c.table.VmFor(f.path)
	if vm.IsEmpty() {
		sp.End("no exporters")
		return
	}
	ref, view, ok := c.cache.Fetch(f.path, vm, c.table.OfflineVec())
	if !ok {
		sp.End("name evicted")
		return
	}
	c.reg.Counter("resolve.refloods").Inc()
	c.broadcast(ref, view.Vq, f.write, sp)
	sp.End("reflooded")
}

// HandleHave processes a positive response from subordinate index: it
// updates the cache (names and hash are passed straight through, no
// rehash) and releases any fast-response waiters (Section III-B1). It
// returns the number of waiters released, which the deterministic
// harness uses to collect exactly that many resolution completions.
func (c *Core) HandleHave(index int, h proto.Have) int {
	c.reg.Counter("resolve.haves").Inc()
	if h.QID != 0 {
		// The flood got an answer; MemberDown need not re-issue it.
		c.inflightMu.Lock()
		delete(c.inflight, h.QID)
		c.inflightMu.Unlock()
	}
	sp := c.tracer.Start("have", h.Path)
	res, ok := c.cache.Update(h.Path, h.Hash, index, h.Pending, h.CanWrite)
	if !ok {
		sp.End("dropped (name not cached)")
		return 0 // response for an evicted or unknown name; drop
	}
	defer sp.End(fmt.Sprintf("server %d pending=%v", index, h.Pending))
	released := 0
	if res.ReadWaiters != 0 {
		released += c.queue.Release(res.ReadWaiters, index, h.Pending)
	}
	if res.WriteWaiters != 0 {
		released += c.queue.Release(res.WriteWaiters, index, h.Pending)
	}
	return released
}

// Prepare spawns a background resolution per path (Section III-B2).
// Each suffers its own full delay internally, but the caller returns
// immediately, so a bulk workload pays at most one externally visible
// delay.
func (c *Core) Prepare(paths []string, write bool) uint32 {
	for _, p := range paths {
		go c.Resolve(Request{Path: p, Write: write})
	}
	return uint32(len(paths))
}

// indexByAddr maps a data address back to a member index, or -1.
func (c *Core) indexByAddr(addr string) int {
	if addr == "" {
		return -1
	}
	for _, m := range c.table.Members() {
		if m.DataAddr == addr {
			return m.Index
		}
	}
	return -1
}
