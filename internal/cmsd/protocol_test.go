package cmsd

import (
	"testing"
	"time"

	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// Multiple child responses compress into a single upward Have at a
// supervisor (Section II-B2: "Multiple responses that are sent to a
// supervisor are compressed into a single response").
func TestSupervisorCompressesResponses(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	sup := startSupervisor(t, net, "sup", "mgr:ctl")
	stores := make([]*store.Store, 3)
	for i := range stores {
		stores[i] = store.New(store.Config{})
		stores[i].Put("/popular", []byte("x")) // every leaf has it
		startServer(t, net, "leaf"+string(rune('0'+i)), "sup:ctl", stores[i])
	}
	waitChildren(t, mgr, 1)
	waitChildren(t, sup, 3)

	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/popular"})
	if rd, ok := reply.(proto.Redirect); !ok || rd.Addr != "sup:data" {
		t.Fatalf("reply = %#v", reply)
	}
	// All three leaves answered the supervisor, but the manager heard
	// exactly one Have.
	deadline := time.Now().Add(5 * time.Second)
	for {
		leafHaves := int64(0)
		// (leaf nodes' HavesSent counts their upward responses)
		if sup.HavesSent() == 1 && leafHaves == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("supervisor sent %d Haves upward, want 1", sup.HavesSent())
		}
		time.Sleep(time.Millisecond)
	}
	if sup.HavesSent() != 1 {
		t.Errorf("supervisor compressed to %d responses, want 1", sup.HavesSent())
	}
}

// A server that is offline when a query floods keeps its Vq bit; after
// it reconnects, the next look-up queries it and finds the file
// (resolution step 6 + the offline correction of Section III-A4).
func TestOfflineServerQueriedAfterReconnect(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	stA := store.New(store.Config{})
	startServer(t, net, "srvA", "mgr:ctl", stA)

	stB := store.New(store.Config{})
	stB.Put("/only-on-b", []byte("hidden treasure"))
	srvB, err := NewNode(NodeConfig{
		Name: "srvB", Role: proto.RoleServer, DataAddr: "srvB:data",
		Parents: []string{"mgr:ctl"}, Prefixes: []string{"/"},
		Net: net, Store: stB, ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srvB.Start(); err != nil {
		t.Fatal(err)
	}
	waitChildren(t, mgr, 2)

	// Take B offline before anyone asks for its file.
	srvB.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Core().Table().OnlineVec().Count() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect unnoticed")
		}
		time.Sleep(time.Millisecond)
	}

	// Resolve while B is offline: only A is queried, nobody has it,
	// the client is told to wait. B's bit must remain in Vq.
	conn, _ := net.Dial("mgr:data")
	defer conn.Close()
	reply := rpc(t, conn, proto.Locate{Path: "/only-on-b"})
	if _, isWait := reply.(proto.Wait); !isWait {
		t.Fatalf("offline-phase reply = %#v, want Wait", reply)
	}

	// B comes back (same identity, within the drop window).
	srvB2, err := NewNode(NodeConfig{
		Name: "srvB", Role: proto.RoleServer, DataAddr: "srvB:data",
		Parents: []string{"mgr:ctl"}, Prefixes: []string{"/"},
		Net: net, Store: stB, ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srvB2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvB2.Stop)
	deadline = time.Now().Add(5 * time.Second)
	for mgr.Core().Table().OnlineVec().Count() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("reconnect never completed")
		}
		time.Sleep(time.Millisecond)
	}

	// The next look-up (after the previous deadline lapses) queries the
	// retained Vq bit and finds the file on B.
	time.Sleep(tFullDelay + 20*time.Millisecond)
	reply = locate(t, net, "mgr:data", proto.Locate{Path: "/only-on-b"})
	rd, ok := reply.(proto.Redirect)
	if !ok || rd.Addr != "srvB:data" {
		t.Fatalf("post-reconnect reply = %#v, want srvB", reply)
	}
}

// A network partition between a child and its parent heals: the child's
// reconnect loop re-establishes the link once the address is reachable
// again.
func TestPartitionHeals(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	st := store.New(store.Config{})
	st.Put("/f", []byte("x"))
	startServer(t, net, "srv0", "mgr:ctl", st)
	waitChildren(t, mgr, 1)

	// Partition the manager's control address and kill the live link by
	// bouncing nothing — existing conns survive partitions, so instead
	// partition and then force a disconnect by... simplest: partition
	// the address, then verify a NEW server cannot join, then heal.
	net.SetReachable("mgr:ctl", false)
	st2 := store.New(store.Config{})
	st2.Put("/g", []byte("y"))
	late, err := NewNode(NodeConfig{
		Name: "late", Role: proto.RoleServer, DataAddr: "late:data",
		Parents: []string{"mgr:ctl"}, Prefixes: []string{"/"},
		Net: net, Store: st2, ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(late.Stop)
	time.Sleep(50 * time.Millisecond)
	if late.ParentsUp() != 0 {
		t.Fatal("joined through a partition")
	}

	net.SetReachable("mgr:ctl", true)
	deadline := time.Now().Add(5 * time.Second)
	for late.ParentsUp() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("partition heal never joined")
		}
		time.Sleep(time.Millisecond)
	}
	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/g"})
	if rd, ok := reply.(proto.Redirect); !ok || rd.Addr != "late:data" {
		t.Fatalf("post-heal resolve = %#v", reply)
	}
}
