package cmsd

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// Short timings so full-delay paths complete quickly in tests.
const (
	tFullDelay  = 150 * time.Millisecond
	tFastPeriod = 20 * time.Millisecond
)

func testCoreConfig() Config {
	return Config{
		Cache:     cache.Config{InitialBuckets: 89},
		Queue:     respq.Config{Period: tFastPeriod},
		FullDelay: tFullDelay,
	}
}

func startNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

func startManager(t *testing.T, net transport.Network, name string) *Node {
	return startNode(t, NodeConfig{
		Name: name, Role: proto.RoleManager,
		DataAddr: name + ":data", CtlAddr: name + ":ctl",
		Net: net, Core: testCoreConfig(),
		PingInterval:   50 * time.Millisecond,
		ReconnectDelay: 20 * time.Millisecond,
	})
}

func startSupervisor(t *testing.T, net transport.Network, name, parent string, prefixes ...string) *Node {
	if len(prefixes) == 0 {
		prefixes = []string{"/"}
	}
	return startNode(t, NodeConfig{
		Name: name, Role: proto.RoleSupervisor,
		DataAddr: name + ":data", CtlAddr: name + ":ctl",
		Parents: []string{parent}, Prefixes: prefixes,
		Net: net, Core: testCoreConfig(),
		PingInterval:   50 * time.Millisecond,
		ReconnectDelay: 20 * time.Millisecond,
	})
}

func startServer(t *testing.T, net transport.Network, name, parent string, st *store.Store, prefixes ...string) *Node {
	if st == nil {
		st = store.New(store.Config{StageDelay: 50 * time.Millisecond})
	}
	if len(prefixes) == 0 {
		prefixes = []string{"/"}
	}
	return startNode(t, NodeConfig{
		Name: name, Role: proto.RoleServer,
		DataAddr: name + ":data",
		Parents:  []string{parent}, Prefixes: prefixes,
		Net: net, Store: st,
		StageWaitMillis: 20,
		ReconnectDelay:  20 * time.Millisecond,
	})
}

func waitChildren(t *testing.T, n *Node, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for n.Core().Table().Count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("node %s: only %d of %d children joined", n.Name(), n.Core().Table().Count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// rpc sends one message and returns one reply over conn.
func rpc(t *testing.T, conn transport.Conn, m proto.Message) proto.Message {
	t.Helper()
	if err := conn.Send(proto.Marshal(m)); err != nil {
		t.Fatal(err)
	}
	frame, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := proto.Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

// locate runs a Locate against addr, following Wait replies (sleeping as
// instructed) until a terminal reply arrives.
func locate(t *testing.T, net transport.Network, addr string, req proto.Locate) proto.Message {
	t.Helper()
	conn, err := net.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		reply := rpc(t, conn, req)
		w, isWait := reply.(proto.Wait)
		if !isWait {
			return reply
		}
		if time.Now().After(deadline) {
			t.Fatal("locate never terminated")
		}
		time.Sleep(time.Duration(w.Millis) * time.Millisecond)
	}
}

func TestResolveCachedAndUncached(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	stores := make([]*store.Store, 3)
	srvs := make([]*Node, 3)
	for i := range srvs {
		stores[i] = store.New(store.Config{})
		srvs[i] = startServer(t, net, fmt.Sprintf("srv%d", i), "mgr:ctl", stores[i])
	}
	waitChildren(t, mgr, 3)
	stores[1].Put("/store/a.root", []byte("data"))

	// First access floods queries and rides the fast response queue.
	start := time.Now()
	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/store/a.root"})
	rd, ok := reply.(proto.Redirect)
	if !ok {
		t.Fatalf("reply = %#v", reply)
	}
	if rd.Addr != "srv1:data" {
		t.Fatalf("redirected to %s, want srv1:data", rd.Addr)
	}
	if elapsed := time.Since(start); elapsed > tFullDelay {
		t.Errorf("uncached resolve took %v — fast response did not engage", elapsed)
	}

	// The initial flood asked each server exactly once (queries may
	// still be in flight to the non-holders; wait for delivery).
	waitDeadline := time.Now().Add(5 * time.Second)
	for totalQueries(srvs) < 3 {
		if time.Now().After(waitDeadline) {
			t.Fatalf("only %d of 3 queries delivered", totalQueries(srvs))
		}
		time.Sleep(time.Millisecond)
	}

	// Second access is served from the cache: no further queries.
	reply = locate(t, net, "mgr:data", proto.Locate{Path: "/store/a.root"})
	if rd := reply.(proto.Redirect); rd.Addr != "srv1:data" {
		t.Fatalf("cached redirect to %s", rd.Addr)
	}
	time.Sleep(20 * time.Millisecond) // any stray query would land now
	for i, s := range srvs {
		if got := s.QueriesReceived(); got != 1 {
			t.Errorf("server %d received %d queries, want 1", i, got)
		}
	}
}

func totalQueries(ns []*Node) int64 {
	var sum int64
	for _, n := range ns {
		sum += n.QueriesReceived()
	}
	return sum
}

func TestLocateNonexistent(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	startServer(t, net, "srv0", "mgr:ctl", nil)
	waitChildren(t, mgr, 1)

	conn, _ := net.Dial("mgr:data")
	defer conn.Close()
	// First ask: full delay imposed (no server responds).
	reply := rpc(t, conn, proto.Locate{Path: "/ghost"})
	w, isWait := reply.(proto.Wait)
	if !isWait || w.Millis != uint32(tFullDelay/time.Millisecond) {
		t.Fatalf("first reply = %#v, want full-delay Wait", reply)
	}
	time.Sleep(tFullDelay + 20*time.Millisecond)
	// Retry after the deadline: definitive no.
	reply = rpc(t, conn, proto.Locate{Path: "/ghost"})
	if e, isErr := reply.(proto.Err); !isErr || e.Code != proto.ENoEnt {
		t.Fatalf("post-deadline reply = %#v, want ENoEnt", reply)
	}
}

func TestLocateUnexportedPath(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	startServer(t, net, "srv0", "mgr:ctl", nil, "/store")
	waitChildren(t, mgr, 1)
	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/elsewhere/f"})
	if e, isErr := reply.(proto.Err); !isErr || e.Code != proto.ENoEnt {
		t.Fatalf("reply = %#v, want immediate ENoEnt (no export match)", reply)
	}
}

func TestCreateFlow(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	st0 := store.New(store.Config{})
	st1 := store.New(store.Config{})
	srv0 := startServer(t, net, "srv0", "mgr:ctl", st0)
	srv1 := startServer(t, net, "srv1", "mgr:ctl", st1)
	_ = srv0
	_ = srv1
	waitChildren(t, mgr, 2)

	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/new.root", Create: true})
	rd, ok := reply.(proto.Redirect)
	if !ok {
		t.Fatalf("create locate = %#v", reply)
	}

	// Create the file at the chosen server.
	sconn, _ := net.Dial(rd.Addr)
	defer sconn.Close()
	op := rpc(t, sconn, proto.Open{Path: "/new.root", Create: true, Write: true})
	okMsg, isOK := op.(proto.OpenOK)
	if !isOK {
		t.Fatalf("open-create = %#v", op)
	}
	rpc(t, sconn, proto.Write{FH: okMsg.FH, Bytes: []byte("x")})
	rpc(t, sconn, proto.Close{FH: okMsg.FH})

	// A second client finds it without any wait (optimistic cache entry).
	conn, _ := net.Dial("mgr:data")
	defer conn.Close()
	reply = rpc(t, conn, proto.Locate{Path: "/new.root"})
	if rd2, isRd := reply.(proto.Redirect); !isRd || rd2.Addr != rd.Addr {
		t.Fatalf("post-create locate = %#v", reply)
	}
}

func TestSelectionFailsOverOnDisconnect(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	stA := store.New(store.Config{})
	stB := store.New(store.Config{})
	startServer(t, net, "srvA", "mgr:ctl", stA)
	srvB := startServer(t, net, "srvB", "mgr:ctl", stB)
	waitChildren(t, mgr, 2)
	stA.Put("/f", []byte("1"))
	stB.Put("/f", []byte("1"))

	// Warm the cache: both respond.
	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/f"})
	if _, ok := reply.(proto.Redirect); !ok {
		t.Fatalf("warmup = %#v", reply)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, v, ok := mgr.Core().Cache().Fetch("/f", mgr.Core().Table().VmFor("/f"), 0)
		if ok && v.Vh.Count() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("both holders never recorded")
		}
		time.Sleep(time.Millisecond)
	}

	// Take server B down; every subsequent resolve must go to A.
	srvB.Stop()
	deadline = time.Now().Add(5 * time.Second)
	for mgr.Core().Table().OnlineVec().Count() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("manager never noticed the disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		reply = locate(t, net, "mgr:data", proto.Locate{Path: "/f"})
		rd, ok := reply.(proto.Redirect)
		if !ok || rd.Addr != "srvA:data" {
			t.Fatalf("resolve %d after failover = %#v", i, reply)
		}
	}
}

func TestDeadlineSynchronizationSingleQueryStorm(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	stores := make([]*store.Store, 4)
	srvs := make([]*Node, 4)
	for i := range srvs {
		stores[i] = store.New(store.Config{})
		srvs[i] = startServer(t, net, fmt.Sprintf("srv%d", i), "mgr:ctl", stores[i])
	}
	waitChildren(t, mgr, 4)
	stores[2].Put("/hot", []byte("x"))

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply := locate(t, net, "mgr:data", proto.Locate{Path: "/hot"})
			if rd, ok := reply.(proto.Redirect); !ok || rd.Addr != "srv2:data" {
				errs <- fmt.Sprintf("reply = %#v", reply)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// The processing deadline must have collapsed the storm into one
	// query per server.
	deadline := time.Now().Add(5 * time.Second)
	for totalQueries(srvs) < 4 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let any duplicate land
	for i, s := range srvs {
		if got := s.QueriesReceived(); got != 1 {
			t.Errorf("server %d received %d queries, want 1 (deadline sync)", i, got)
		}
	}
}

func TestRefreshAvoidsFailingServer(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	stA := store.New(store.Config{})
	stB := store.New(store.Config{})
	startServer(t, net, "srvA", "mgr:ctl", stA)
	startServer(t, net, "srvB", "mgr:ctl", stB)
	waitChildren(t, mgr, 2)
	stA.Put("/f", []byte("1"))
	stB.Put("/f", []byte("1"))

	// Warm cache with both holders.
	locate(t, net, "mgr:data", proto.Locate{Path: "/f"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, v, ok := mgr.Core().Cache().Fetch("/f", mgr.Core().Table().VmFor("/f"), 0)
		if ok && v.Vh.Count() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("holders never recorded")
		}
		time.Sleep(time.Millisecond)
	}

	// The file vanishes from A (deleted behind the cache's back).
	stA.Unlink("/f")
	// Client reports A as failing and asks for a refresh; it must be
	// vectored to B.
	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/f", Refresh: true, Avoid: "srvA:data"})
	rd, ok := reply.(proto.Redirect)
	if !ok || rd.Addr != "srvB:data" {
		t.Fatalf("refresh resolve = %#v, want srvB:data", reply)
	}
}

func TestStagingFlowThroughManager(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	st := store.New(store.Config{StageDelay: 60 * time.Millisecond})
	startServer(t, net, "srv0", "mgr:ctl", st)
	waitChildren(t, mgr, 1)
	st.PutOffline("/tape.root", []byte("archived bits"))

	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/tape.root"})
	rd, ok := reply.(proto.Redirect)
	if !ok || !rd.Pending {
		t.Fatalf("reply = %#v, want pending redirect", reply)
	}

	// Open at the server; it waits until staging completes.
	conn, _ := net.Dial(rd.Addr)
	defer conn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := rpc(t, conn, proto.Open{Path: "/tape.root"})
		if okMsg, isOK := r.(proto.OpenOK); isOK {
			d := rpc(t, conn, proto.Read{FH: okMsg.FH, N: 100}).(proto.Data)
			if string(d.Bytes) != "archived bits" {
				t.Fatalf("staged bytes = %q", d.Bytes)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("staging never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSupervisorTree(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	sup := startSupervisor(t, net, "sup", "mgr:ctl")
	st := store.New(store.Config{})
	startServer(t, net, "leaf", "sup:ctl", st)
	waitChildren(t, mgr, 1)
	waitChildren(t, sup, 1)
	st.Put("/deep/file", []byte("bottom"))

	// Manager redirects to the supervisor...
	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/deep/file"})
	rd, ok := reply.(proto.Redirect)
	if !ok || rd.Addr != "sup:data" {
		t.Fatalf("manager reply = %#v, want supervisor", reply)
	}
	if rd.CtlAddr == "" {
		t.Error("redirect to a supervisor must carry its control address")
	}
	// ... which redirects to the leaf.
	reply = locate(t, net, rd.Addr, proto.Locate{Path: "/deep/file"})
	rd2, ok := reply.(proto.Redirect)
	if !ok || rd2.Addr != "leaf:data" {
		t.Fatalf("supervisor reply = %#v, want leaf", reply)
	}
	// The manager's cache now knows the supervisor subtree has it:
	// a second resolve issues no new queries anywhere.
	q1 := sup.QueriesReceived()
	locate(t, net, "mgr:data", proto.Locate{Path: "/deep/file"})
	if sup.QueriesReceived() != q1 {
		t.Error("cached resolve re-queried the supervisor")
	}
}

func TestServerReconnectSameIdentity(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	st := store.New(store.Config{})
	st.Put("/f", []byte("x"))
	srv, err := NewNode(NodeConfig{
		Name: "srv0", Role: proto.RoleServer, DataAddr: "srv0:data",
		Parents: []string{"mgr:ctl"}, Prefixes: []string{"/"},
		Net: net, Store: st, ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	waitChildren(t, mgr, 1)
	locate(t, net, "mgr:data", proto.Locate{Path: "/f"})

	srv.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Core().Table().OnlineVec().Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never noticed")
		}
		time.Sleep(time.Millisecond)
	}

	// Restart under the same identity within the drop window.
	srv2, err := NewNode(NodeConfig{
		Name: "srv0", Role: proto.RoleServer, DataAddr: "srv0:data",
		Parents: []string{"mgr:ctl"}, Prefixes: []string{"/"},
		Net: net, Store: st, ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Stop)
	deadline = time.Now().Add(5 * time.Second)
	for mgr.Core().Table().OnlineVec().Count() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("reconnect never completed")
		}
		time.Sleep(time.Millisecond)
	}
	// Cached location from before the bounce is still usable.
	reply := locate(t, net, "mgr:data", proto.Locate{Path: "/f"})
	if rd, ok := reply.(proto.Redirect); !ok || rd.Addr != "srv0:data" {
		t.Fatalf("post-reconnect resolve = %#v", reply)
	}
}

func TestPrepareWarmsCache(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	st := store.New(store.Config{})
	srv := startServer(t, net, "srv0", "mgr:ctl", st)
	waitChildren(t, mgr, 1)
	paths := []string{"/p/1", "/p/2", "/p/3"}
	for _, p := range paths {
		st.Put(p, []byte("x"))
	}

	conn, _ := net.Dial("mgr:data")
	defer conn.Close()
	start := time.Now()
	reply := rpc(t, conn, proto.Prepare{Paths: paths})
	if p, ok := reply.(proto.PrepareOK); !ok || p.Queued != 3 {
		t.Fatalf("prepare reply = %#v", reply)
	}
	if elapsed := time.Since(start); elapsed > tFullDelay {
		t.Errorf("prepare blocked for %v; must return immediately", elapsed)
	}
	// Background look-ups land; subsequent locates are cache hits.
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueriesReceived() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("prepare never queried")
		}
		time.Sleep(time.Millisecond)
	}
	q := srv.QueriesReceived()
	for _, p := range paths {
		reply := locate(t, net, "mgr:data", proto.Locate{Path: p})
		if _, ok := reply.(proto.Redirect); !ok {
			t.Fatalf("post-prepare locate %s = %#v", p, reply)
		}
	}
	if srv.QueriesReceived() != q {
		t.Error("post-prepare locates re-queried the server")
	}
}

func TestStatAndUnlinkRedirectedAtManager(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	mgr := startManager(t, net, "mgr")
	st := store.New(store.Config{})
	st.Put("/f", []byte("abc"))
	startServer(t, net, "srv0", "mgr:ctl", st)
	waitChildren(t, mgr, 1)

	conn, _ := net.Dial("mgr:data")
	defer conn.Close()
	// Stat for an unknown file reports non-existence at the manager.
	time.Sleep(2 * tFullDelay) // let a first probe's deadline lapse
	rpc(t, conn, proto.Stat{Path: "/ghost"})
	time.Sleep(tFullDelay + 30*time.Millisecond)
	r := rpc(t, conn, proto.Stat{Path: "/ghost"})
	if s, ok := r.(proto.StatOK); !ok || s.Exists {
		t.Fatalf("stat ghost = %#v", r)
	}
	// Stat for a real file redirects to its holder.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r = rpc(t, conn, proto.Stat{Path: "/f"})
		if rd, ok := r.(proto.Redirect); ok {
			if rd.Addr != "srv0:data" {
				t.Fatalf("stat redirect = %#v", rd)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stat /f = %#v", r)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
