package cmsd

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cluster"
	"scalla/internal/names"
	"scalla/internal/proto"
	"scalla/internal/respq"
)

// coreRig builds a Core with n fake subordinates whose query handling
// is scripted by answer: given a path and server index, return whether
// to respond and how.
type coreRig struct {
	core *Core
	mu   sync.Mutex
	sent map[int][]proto.Query
}

func newCoreRig(t *testing.T, n int, answer func(i int, q proto.Query) (respond, pending bool)) *coreRig {
	t.Helper()
	rig := &coreRig{sent: make(map[int][]proto.Query)}
	core := NewCore(Config{
		Cache:     cache.Config{InitialBuckets: 89},
		Queue:     respq.Config{Period: 40 * time.Millisecond},
		FullDelay: 150 * time.Millisecond,
	})
	t.Cleanup(core.Close)
	rig.core = core
	for i := 0; i < n; i++ {
		idx, _, err := core.Table().Login(cluster.Member{
			Name:     "srv" + string(rune('a'+i)),
			Role:     proto.RoleServer,
			DataAddr: "srv" + string(rune('a'+i)) + ":data",
			Prefixes: names.NewPrefixSet("/"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("index %d, want %d", idx, i)
		}
	}
	core.SetQuerySender(func(i int, q proto.Query) bool {
		rig.mu.Lock()
		rig.sent[i] = append(rig.sent[i], q)
		rig.mu.Unlock()
		if answer == nil {
			return true
		}
		respond, pending := answer(i, q)
		if respond {
			// Answer asynchronously, like a real subordinate.
			go core.HandleHave(i, proto.Have{
				QID: q.QID, Path: q.Path, Hash: q.Hash,
				Pending: pending, CanWrite: true,
			})
		}
		return true
	})
	return rig
}

func (r *coreRig) queriesTo(i int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sent[i])
}

func TestCoreResolvePositiveResponse(t *testing.T) {
	rig := newCoreRig(t, 3, func(i int, q proto.Query) (bool, bool) {
		return i == 1, false // only server 1 has the file
	})
	out := rig.core.Resolve(Request{Path: "/f"})
	if out.Kind != KindRedirect || out.Index != 1 || out.Addr != "srvb:data" {
		t.Fatalf("outcome = %+v", out)
	}
	// Second resolve: served from cache, no new queries.
	before := rig.queriesTo(0) + rig.queriesTo(1) + rig.queriesTo(2)
	out = rig.core.Resolve(Request{Path: "/f"})
	if out.Kind != KindRedirect {
		t.Fatalf("outcome = %+v", out)
	}
	if after := rig.queriesTo(0) + rig.queriesTo(1) + rig.queriesTo(2); after != before {
		t.Error("cached resolve issued queries")
	}
}

func TestCoreResolveSilenceMeansWaitThenNoEnt(t *testing.T) {
	rig := newCoreRig(t, 2, func(int, proto.Query) (bool, bool) { return false, false })
	start := time.Now()
	out := rig.core.Resolve(Request{Path: "/ghost"})
	if out.Kind != KindWait {
		t.Fatalf("outcome = %+v", out)
	}
	if elapsed := time.Since(start); elapsed > 130*time.Millisecond {
		t.Errorf("silence path blocked %v; the fast window should cap it", elapsed)
	}
	time.Sleep(180 * time.Millisecond) // let the deadline lapse
	out = rig.core.Resolve(Request{Path: "/ghost"})
	if out.Kind != KindNoEnt {
		t.Fatalf("post-deadline outcome = %+v", out)
	}
}

func TestCoreResolvePendingResponse(t *testing.T) {
	rig := newCoreRig(t, 1, func(int, proto.Query) (bool, bool) { return true, true })
	out := rig.core.Resolve(Request{Path: "/staging"})
	if out.Kind != KindRedirect || !out.Pending {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestCoreResolveNoExportMatch(t *testing.T) {
	core := NewCore(Config{
		Cache:     cache.Config{InitialBuckets: 89},
		Queue:     respq.Config{Period: 40 * time.Millisecond},
		FullDelay: 150 * time.Millisecond,
	})
	t.Cleanup(core.Close)
	core.Table().Login(cluster.Member{
		Name: "a", Role: proto.RoleServer, DataAddr: "a:data",
		Prefixes: names.NewPrefixSet("/store"),
	})
	out := core.Resolve(Request{Path: "/elsewhere/f"})
	if out.Kind != KindNoEnt {
		t.Fatalf("outcome = %+v (must fail fast without queries)", out)
	}
}

func TestCoreResolveCreateSelectsBySpace(t *testing.T) {
	rig := newCoreRig(t, 2, func(int, proto.Query) (bool, bool) { return false, false })
	rig.core.Table().UpdateStats(0, 0, 10)
	rig.core.Table().UpdateStats(1, 0, 1_000_000)

	// First pass arms the deadline; after it lapses, create resolves.
	out := rig.core.Resolve(Request{Path: "/new", Create: true})
	if out.Kind != KindWait {
		t.Fatalf("first create outcome = %+v", out)
	}
	time.Sleep(180 * time.Millisecond)
	out = rig.core.Resolve(Request{Path: "/new", Create: true})
	if out.Kind != KindRedirect || out.Index != 1 {
		t.Fatalf("create outcome = %+v, want roomier server 1", out)
	}
	// The optimistic cache entry serves the next client immediately.
	out = rig.core.Resolve(Request{Path: "/new"})
	if out.Kind != KindRedirect || out.Index != 1 {
		t.Fatalf("post-create outcome = %+v", out)
	}
}

func TestCoreConcurrentStormSingleQuery(t *testing.T) {
	rig := newCoreRig(t, 4, func(i int, q proto.Query) (bool, bool) {
		runtime.Gosched() // yield so the storm interleaves
		return i == 2, false
	})
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A waiter that parks just after the release expires with
			// KindWait ("retry after the full delay"); retrying is what
			// a real client does, and it lands on the cached holder
			// without any further queries.
			out := rig.core.Resolve(Request{Path: "/hot"})
			for tries := 0; out.Kind == KindWait && tries < 5; tries++ {
				time.Sleep(5 * time.Millisecond)
				out = rig.core.Resolve(Request{Path: "/hot"})
			}
			if out.Kind != KindRedirect || out.Index != 2 {
				t.Errorf("outcome = %+v", out)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if got := rig.queriesTo(i); got != 1 {
			t.Errorf("server %d queried %d times, want 1", i, got)
		}
	}
}

func TestCoreRefreshRequeriesAvoidingFailed(t *testing.T) {
	have := map[int]bool{0: true, 1: true}
	var mu sync.Mutex
	rig := newCoreRig(t, 2, func(i int, q proto.Query) (bool, bool) {
		mu.Lock()
		defer mu.Unlock()
		return have[i], false
	})
	out := rig.core.Resolve(Request{Path: "/f"})
	if out.Kind != KindRedirect {
		t.Fatalf("outcome = %+v", out)
	}
	// Server 0's copy vanishes; the client reports it as failing. A
	// stale in-flight response from server 0 may force one wait-retry
	// round (the timing edge effect of Section III-C1); the refresh
	// must never vector the client back at srva.
	mu.Lock()
	have[0] = false
	mu.Unlock()
	out = rig.core.Resolve(Request{Path: "/f", Refresh: true, Avoid: "srva:data"})
	for tries := 0; out.Kind == KindWait && tries < 5; tries++ {
		time.Sleep(5 * time.Millisecond)
		out = rig.core.Resolve(Request{Path: "/f", Refresh: true, Avoid: "srva:data"})
	}
	if out.Kind != KindRedirect || out.Index != 1 {
		t.Fatalf("refresh outcome = %+v, want surviving server 1", out)
	}
}

func TestCoreHandleHaveForUnknownNameDropped(t *testing.T) {
	rig := newCoreRig(t, 1, nil)
	// Must not panic or create entries.
	rig.core.HandleHave(0, proto.Have{Path: "/never-asked", Hash: names.Hash("/never-asked")})
	if rig.core.Cache().Len() != 0 {
		t.Error("stray Have created a cache entry")
	}
}

func TestCoreNextQIDMonotonic(t *testing.T) {
	rig := newCoreRig(t, 1, nil)
	a, b := rig.core.NextQID(), rig.core.NextQID()
	if b <= a {
		t.Errorf("qids not increasing: %d then %d", a, b)
	}
}

func TestCorePrepareReturnsImmediately(t *testing.T) {
	rig := newCoreRig(t, 2, func(int, proto.Query) (bool, bool) { return true, false })
	start := time.Now()
	n := rig.core.Prepare([]string{"/p1", "/p2", "/p3"}, false)
	if n != 3 {
		t.Errorf("Prepare queued %d", n)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("Prepare blocked")
	}
	// Background lookups land.
	deadline := time.Now().Add(5 * time.Second)
	for rig.core.Cache().Len() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("prepare lookups never cached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCoreMetricsRecorded(t *testing.T) {
	rig := newCoreRig(t, 2, func(i int, q proto.Query) (bool, bool) { return i == 0, false })
	rig.core.Resolve(Request{Path: "/m"}) // redirect via query flood
	rig.core.Resolve(Request{Path: "/m"}) // cached redirect

	reg := rig.core.Metrics()
	if got := reg.Counter("resolve.redirect").Value(); got != 2 {
		t.Errorf("redirect counter = %d", got)
	}
	if got := reg.Counter("resolve.queries").Value(); got != 2 {
		t.Errorf("queries counter = %d (2 servers, one flood)", got)
	}
	if got := reg.Counter("resolve.haves").Value(); got != 1 {
		t.Errorf("haves counter = %d", got)
	}
	if got := reg.Histogram("resolve.latency").Count(); got != 2 {
		t.Errorf("latency count = %d", got)
	}
}

func TestOutcomeReplyMapping(t *testing.T) {
	n := &Node{}
	if r, ok := n.outcomeReply(Outcome{Kind: KindRedirect, Addr: "x"}).(proto.Redirect); !ok || r.Addr != "x" {
		t.Error("redirect mapping wrong")
	}
	if w, ok := n.outcomeReply(Outcome{Kind: KindWait, Millis: 7}).(proto.Wait); !ok || w.Millis != 7 {
		t.Error("wait mapping wrong")
	}
	if w, ok := n.outcomeReply(Outcome{Kind: KindRetry}).(proto.Wait); !ok || w.Millis != 1 {
		t.Error("retry mapping wrong")
	}
	if e, ok := n.outcomeReply(Outcome{Kind: KindNoEnt}).(proto.Err); !ok || e.Code != proto.ENoEnt {
		t.Error("noent mapping wrong")
	}
}
