package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scalla/internal/vclock"
)

func TestTracerDisabledByDefault(t *testing.T) {
	tr := NewTracer(8, nil)
	if tr.Enabled() {
		t.Fatal("new tracer should start disabled")
	}
	sp := tr.Start("resolve", "/a")
	if sp != nil {
		t.Fatal("disabled tracer should return a nil span")
	}
	// Every Span method must tolerate the nil receiver.
	sp.Event("cache.hit", "")
	sp.End("redirect")
	if got := tr.Total(); got != 0 {
		t.Fatalf("disabled tracer recorded %d spans", got)
	}
}

func TestNilTracerAndNilSpanSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetEnabled(true) // must not panic
	sp := tr.Start("resolve", "/a")
	sp.Event("x", "y")
	sp.End("done")
	if tr.Total() != 0 || tr.Spans(0) != nil {
		t.Fatal("nil tracer should have no spans")
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	clk := vclock.NewFake()
	tr := NewTracer(8, clk)
	tr.SetEnabled(true)

	sp := tr.Start("resolve", "/store/f")
	clk.Advance(3 * time.Millisecond)
	sp.Event("cache.miss", "")
	clk.Advance(7 * time.Millisecond)
	sp.End("redirect srv1:3094")

	spans := tr.Spans(0)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	rec := spans[0]
	if rec.Op != "resolve" || rec.Path != "/store/f" {
		t.Fatalf("bad span identity: %+v", rec)
	}
	if rec.Dur != 10*time.Millisecond {
		t.Fatalf("dur = %v, want 10ms", rec.Dur)
	}
	if rec.Outcome != "redirect srv1:3094" {
		t.Fatalf("outcome = %q", rec.Outcome)
	}
	if len(rec.Events) != 1 || rec.Events[0].Kind != "cache.miss" || rec.Events[0].At != 3*time.Millisecond {
		t.Fatalf("bad events: %+v", rec.Events)
	}
}

func TestTracerEndIdempotent(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.SetEnabled(true)
	sp := tr.Start("have", "/f")
	sp.End("first")
	sp.End("second")
	if got := tr.Total(); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
	if out := tr.Spans(0)[0].Outcome; out != "first" {
		t.Fatalf("outcome = %q, want the first End's", out)
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Start("op", fmt.Sprintf("/p%d", i)).End("ok")
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	spans := tr.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	// Most recent first: /p9 /p8 /p7 /p6.
	for i, want := range []string{"/p9", "/p8", "/p7", "/p6"} {
		if spans[i].Path != want {
			t.Fatalf("spans[%d].Path = %q, want %q", i, spans[i].Path, want)
		}
	}
	// A max smaller than the ring returns only the newest.
	if two := tr.Spans(2); len(two) != 2 || two[0].Path != "/p9" || two[1].Path != "/p8" {
		t.Fatalf("Spans(2) = %+v", two)
	}
}

func TestTracerSpanStartedBeforeDisableStillRecords(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.SetEnabled(true)
	sp := tr.Start("resolve", "/f")
	tr.SetEnabled(false)
	sp.End("ok")
	if tr.Total() != 1 {
		t.Fatal("span started while enabled should record after disable")
	}
	if tr.Start("resolve", "/g") != nil {
		t.Fatal("new spans must be nil after disable")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64, nil)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("op", fmt.Sprintf("/g%d/%d", g, i))
				sp.Event("step", "")
				sp.End("ok")
				tr.Spans(4)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Total(); got != 8*200 {
		t.Fatalf("total = %d, want %d", got, 8*200)
	}
	ids := map[uint64]bool{}
	for _, s := range tr.Spans(0) {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}
