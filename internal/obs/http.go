package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"scalla/internal/metrics"
)

// AdminState is what the admin endpoint exposes. Any field may be nil;
// the matching endpoint then reports 404.
type AdminState struct {
	// Collect assembles the node's current summary frame (served at
	// /statusz).
	Collect Collector
	// Registry is the node's metrics registry (served at /metricsz).
	Registry *metrics.Registry
	// Tracer supplies completed spans (served at /tracez) and is
	// toggled by POST /tracez?enable=true|false.
	Tracer *Tracer
}

// NewHandler returns the admin/status handler:
//
//	GET  /statusz            current summary frame as pretty JSON
//	GET  /metricsz           metrics registry dump, text
//	GET  /tracez?n=100       most recent spans as JSON
//	POST /tracez?enable=true toggle tracing at runtime
func NewHandler(st AdminState) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		if st.Collect == nil {
			http.NotFound(w, r)
			return
		}
		f := st.Collect()
		f.V = FrameVersion
		if f.UnixMS == 0 {
			f.UnixMS = time.Now().UnixMilli()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(f)
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		if st.Registry == nil && st.Collect == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st.Registry != nil {
			w.Write([]byte(st.Registry.Dump()))
			w.Write([]byte("\n"))
		}
		// The scheduler and wire layers keep their own counters (a
		// registry is optional on data-only nodes), so their sections are
		// appended from the summary frame rather than the registry.
		if st.Collect != nil {
			f := st.Collect()
			if wd := f.Wire; wd != nil {
				fmt.Fprintf(w, "counter wire.writevs = %d\n", wd.Writevs)
				fmt.Fprintf(w, "counter wire.frames_out = %d\n", wd.FramesOut)
				fmt.Fprintf(w, "counter wire.bytes_out = %d\n", wd.BytesOut)
				fmt.Fprintf(w, "counter wire.idle_flushes = %d\n", wd.IdleFlushes)
				fmt.Fprintf(w, "counter wire.backlog_flushes = %d\n", wd.BacklogFlushes)
				fmt.Fprintf(w, "counter wire.read_calls = %d\n", wd.ReadCalls)
				fmt.Fprintf(w, "counter wire.frames_in = %d\n", wd.FramesIn)
				fmt.Fprintf(w, "counter wire.bytes_in = %d\n", wd.BytesIn)
				fmt.Fprintf(w, "gauge   wire.frames_per_writev = %.2f\n", wd.FramesPerWritev)
				fmt.Fprintf(w, "gauge   wire.frames_per_read = %.2f\n", wd.FramesPerRead)
				fmt.Fprintf(w, "hist    wire.batch_frames :")
				labels := []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}
				for i, n := range wd.BatchHist {
					if i < len(labels) {
						fmt.Fprintf(w, " %s=%d", labels[i], n)
					}
				}
				fmt.Fprintln(w)
			}
			if s := f.Sched; s != nil {
				fmt.Fprintf(w, "counter sched.disp_ctl = %d\n", s.DispCtl)
				fmt.Fprintf(w, "counter sched.disp_data = %d\n", s.DispData)
				fmt.Fprintf(w, "counter sched.shed = %d\n", s.Shed)
				fmt.Fprintf(w, "gauge   sched.clients = %d\n", s.Clients)
				fmt.Fprintf(w, "gauge   sched.inflight = %d\n", s.InFlight)
				fmt.Fprintf(w, "gauge   sched.max_queued = %d\n", s.MaxQueued)
				fmt.Fprintf(w, "gauge   sched.queued_ctl = %d\n", s.QueuedCtl)
				fmt.Fprintf(w, "gauge   sched.queued_data = %d\n", s.QueuedData)
				for _, lw := range []struct {
					name string
					op   OpSummary
				}{{"sched.ctl_wait", s.CtlWait}, {"sched.data_wait", s.DataWait}} {
					fmt.Fprintf(w, "hist    %s : n=%d mean=%dµs p50=%dµs p90=%dµs p99=%dµs max=%dµs\n",
						lw.name, lw.op.Count, lw.op.MeanUS, lw.op.P50US, lw.op.P90US, lw.op.P99US, lw.op.MaxUS)
				}
			}
		}
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		if st.Tracer == nil {
			http.NotFound(w, r)
			return
		}
		if r.Method == http.MethodPost {
			on, err := strconv.ParseBool(r.URL.Query().Get("enable"))
			if err != nil {
				http.Error(w, "tracez: enable must be true or false", http.StatusBadRequest)
				return
			}
			st.Tracer.SetEnabled(on)
			w.Write([]byte("ok\n"))
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "tracez: n must be an integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Enabled bool         `json:"enabled"`
			Total   int64        `json:"total"`
			Spans   []SpanRecord `json:"spans"`
		}{st.Tracer.Enabled(), st.Tracer.Total(), st.Tracer.Spans(n)})
	})
	return mux
}
