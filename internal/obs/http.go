package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"scalla/internal/metrics"
)

// AdminState is what the admin endpoint exposes. Any field may be nil;
// the matching endpoint then reports 404.
type AdminState struct {
	// Collect assembles the node's current summary frame (served at
	// /statusz).
	Collect Collector
	// Registry is the node's metrics registry (served at /metricsz).
	Registry *metrics.Registry
	// Tracer supplies completed spans (served at /tracez) and is
	// toggled by POST /tracez?enable=true|false.
	Tracer *Tracer
}

// NewHandler returns the admin/status handler:
//
//	GET  /statusz            current summary frame as pretty JSON
//	GET  /metricsz           metrics registry dump, text
//	GET  /tracez?n=100       most recent spans as JSON
//	POST /tracez?enable=true toggle tracing at runtime
func NewHandler(st AdminState) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		if st.Collect == nil {
			http.NotFound(w, r)
			return
		}
		f := st.Collect()
		f.V = FrameVersion
		if f.UnixMS == 0 {
			f.UnixMS = time.Now().UnixMilli()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(f)
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		if st.Registry == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(st.Registry.Dump()))
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		if st.Tracer == nil {
			http.NotFound(w, r)
			return
		}
		if r.Method == http.MethodPost {
			on, err := strconv.ParseBool(r.URL.Query().Get("enable"))
			if err != nil {
				http.Error(w, "tracez: enable must be true or false", http.StatusBadRequest)
				return
			}
			st.Tracer.SetEnabled(on)
			w.Write([]byte("ok\n"))
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "tracez: n must be an integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Enabled bool         `json:"enabled"`
			Total   int64        `json:"total"`
			Spans   []SpanRecord `json:"spans"`
		}{st.Tracer.Enabled(), st.Tracer.Total(), st.Tracer.Spans(n)})
	})
	return mux
}
