package obs

import "testing"

func TestTraceHashDeterministic(t *testing.T) {
	run := func() string {
		h := NewTraceHash()
		h.Addf("step %d deliver q=%d", 1, 42)
		h.Addf("step %d release n=%d", 2, 3)
		return h.Sum()
	}
	if run() != run() {
		t.Fatal("identical traces hash differently")
	}
}

func TestTraceHashOrderAndContentSensitive(t *testing.T) {
	a := NewTraceHash()
	a.Addf("x")
	a.Addf("y")
	b := NewTraceHash()
	b.Addf("y")
	b.Addf("x")
	if a.Sum() == b.Sum() {
		t.Fatal("trace hash ignores line order")
	}
	c := NewTraceHash()
	c.Addf("x")
	if a.Sum() == c.Sum() {
		t.Fatal("trace hash ignores content")
	}
	if a.Len() != 2 || c.Len() != 1 {
		t.Fatalf("Len = %d, %d", a.Len(), c.Len())
	}
}

func TestTraceHashLineBoundaries(t *testing.T) {
	// "ab"+"c" and "a"+"bc" must differ: lines are delimited, not
	// concatenated raw.
	a := NewTraceHash()
	a.Addf("ab")
	a.Addf("c")
	b := NewTraceHash()
	b.Addf("a")
	b.Addf("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("line boundaries not part of the digest")
	}
}
