// Package obs is Scalla's observability subsystem: the pieces that let
// an operator (or a later benchmark PR) see where resolution time goes
// on a live daemon instead of guessing.
//
// It has three parts, modeled on production XRootD's monitoring stack:
//
//   - A ring-buffered event tracer (Tracer/Span) recording per-request
//     span records for the resolve → query-flood → redirect/open paths.
//     When tracing is off the hot path pays a single atomic load.
//   - A summary-monitoring stream (Frame/Emitter/Sink): each daemon
//     periodically emits one JSON frame summarizing its cache, response
//     queue, cluster membership, data plane, transport counters, and
//     per-op latency snapshots, over a pluggable sink (an in-process
//     channel, an io.Writer, or a UDP/TCP target).
//   - An admin/status HTTP handler (/statusz, /metricsz, /tracez) the
//     daemons serve for point-in-time inspection.
//
// The package depends only on internal/metrics and internal/vclock so
// every other component can feed it without import cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"scalla/internal/metrics"
)

// FrameVersion identifies the summary-frame format; consumers skip
// frames with a version they do not understand.
const FrameVersion = 1

// CacheSummary summarizes the location cache (paper Section III-A).
type CacheSummary struct {
	Entries    int64   `json:"entries"`
	Buckets    int64   `json:"buckets"`
	LoadFactor float64 `json:"load_factor"` // entries / buckets
	Inserts    int64   `json:"inserts"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Resizes    int64   `json:"resizes"`
	Hidden     int64   `json:"hidden"` // objects hidden by window ticks
	Swept      int64   `json:"swept"`  // objects removed by sweeps
	Refreshes  int64   `json:"refreshes"`
	Ticks      uint64  `json:"ticks"` // window-clock tick counter Tw
	Epoch      uint64  `json:"epoch"` // master connect counter Nc
	// Conn is the per-subordinate connect stamps C[i] (paper Section
	// III-A4), trimmed of trailing zeros to keep frames small.
	Conn []uint64 `json:"c,omitempty"`
	// ShardEntries is the live entry count per lock stripe of the
	// sharded cache, so stripe skew is visible from the stream and
	// /statusz.
	ShardEntries []int64 `json:"shard_entries,omitempty"`
}

// RespQSummary summarizes the fast response queue (Section III-B).
type RespQSummary struct {
	Depth    int   `json:"depth"` // anchors currently occupied
	Entries  int64 `json:"entries"`
	Joins    int64 `json:"joins"`
	Released int64 `json:"released"`
	Expired  int64 `json:"expired"`
	Full     int64 `json:"full"`
}

// ClusterSummary summarizes the membership table.
type ClusterSummary struct {
	Members   int `json:"members"`
	Online    int `json:"online"`
	Offline   int `json:"offline"` // disconnected but not yet dropped
	ParentsUp int `json:"parents_up"`
}

// DataSummary summarizes the xrd data plane of a server-role node.
type DataSummary struct {
	OpenHandles  int   `json:"open_handles"`
	Inflight     int   `json:"inflight"`
	Opens        int64 `json:"opens"`
	Reads        int64 `json:"reads"`
	Writes       int64 `json:"writes"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	Staged       int64 `json:"staged"` // waits issued for staging files
}

// StoreSummary summarizes a server's backing store: which backend,
// how full, the stage-in queue, and — for the disk backend — the
// durability picture an operator tunes with the fsync policy
// (STORAGE.md): dirty bytes are the data at risk if power fails now,
// and the fsync latency columns price the `always` policy.
type StoreSummary struct {
	Backend   string `json:"backend"` // "mem" or "disk"
	Files     int    `json:"files"`
	Offline   int    `json:"offline"`     // MSS-only files
	StageQ    int    `json:"stage_queue"` // stage-ins in flight (Vp depth)
	UsedBytes int64  `json:"used_bytes"`

	DirtyBytes    int64 `json:"dirty_bytes"`     // written, not yet fsynced
	Fsyncs        int64 `json:"fsyncs"`          // completed fsync calls
	FsyncMeanUS   int64 `json:"fsync_mean_us"`   // mean fsync latency
	FsyncMaxUS    int64 `json:"fsync_max_us"`    // slowest single fsync
	StagedIn      int64 `json:"staged_in"`       // files promoted from MSS
	RecoveredAtUp int   `json:"recovered_at_up"` // files found at startup
}

// PCacheSummary summarizes an edge proxy cache: the block-cache and
// location-cache hit ratios plus the origin traffic the proxy absorbed,
// so an operator can read the offload ratio straight off the stream.
type PCacheSummary struct {
	Entries    int   `json:"entries"`     // cached files with live block state
	Blocks     int   `json:"blocks"`      // resident data blocks
	BlockBytes int64 `json:"block_bytes"` // bytes held in the block cache

	Hits      int64 `json:"hits"`       // reads served from resident blocks
	Misses    int64 `json:"misses"`     // reads that had to fetch from origin
	OpenHits  int64 `json:"open_hits"`  // opens satisfied without origin frames
	OpenMiss  int64 `json:"open_miss"`  // opens that resolved through origin
	LocHits   int64 `json:"loc_hits"`   // location answers from the edge cache
	LocMisses int64 `json:"loc_misses"` // location answers walked to origin

	OriginBytes   int64 `json:"origin_bytes"`   // data bytes pulled from origin
	OriginOpens   int64 `json:"origin_opens"`   // opens issued to origin servers
	OriginLocates int64 `json:"origin_locates"` // locate walks to origin managers
	BytesServed   int64 `json:"bytes_served"`   // data bytes sent downstream

	EvictedLRU    int64 `json:"evicted_lru"`    // blocks evicted for capacity
	ExpiredWindow int64 `json:"expired_window"` // blocks expired by window ticks
	Invalidated   int64 `json:"invalidated"`    // entries dropped as stale
}

// SchedSummary summarizes the request scheduler (DESIGN.md §11): queue
// depths, shed verdicts, and per-lane enqueue-to-dispatch waits. An
// operator watching a saturated server reads the overload story here —
// shed climbing while ctl_wait stays flat is the layer working as
// designed; ctl_wait climbing means the control lane is compromised.
type SchedSummary struct {
	Clients    int   `json:"clients"`     // registered connections
	QueuedCtl  int   `json:"queued_ctl"`  // control-lane depth
	QueuedData int   `json:"queued_data"` // data-lane depth across clients
	MaxQueued  int   `json:"max_queued"`  // data-lane high-water mark
	InFlight   int   `json:"inflight"`    // handlers executing now
	DispCtl    int64 `json:"disp_ctl"`    // control frames dispatched
	DispData   int64 `json:"disp_data"`   // data frames dispatched
	Shed       int64 `json:"shed"`        // requests answered RetryAfter

	CtlWait  OpSummary `json:"ctl_wait"`  // control-lane queue wait
	DataWait OpSummary `json:"data_wait"` // data-lane queue wait
}

// NetSummary carries the transport-layer frame/byte counters.
type NetSummary struct {
	FramesSent int64 `json:"frames_sent"`
	BytesSent  int64 `json:"bytes_sent"`
	Dials      int64 `json:"dials"`
}

// WireSummary carries the TCP transport's syscall-amortization
// counters: how well sends coalesce into vectored-write batches and how
// many frames each read syscall yields. An operator judges the wire
// path here — frames_per_writev near 1 under a pipelined load means
// sends are arriving lock-step (no overlap to harvest); climbing means
// group commit is batching them.
type WireSummary struct {
	Writevs         int64   `json:"writevs"`           // vectored write syscalls
	FramesOut       int64   `json:"frames_out"`        // frames sent
	BytesOut        int64   `json:"bytes_out"`         // bytes sent (incl. prefixes)
	IdleFlushes     int64   `json:"idle_flushes"`      // batches begun on an idle wire
	BacklogFlushes  int64   `json:"backlog_flushes"`   // batches drained behind a flush
	FramesPerWritev float64 `json:"frames_per_writev"` // mean batch size
	// BatchHist buckets flushed batch sizes: 1, 2, 3-4, 5-8, 9-16,
	// 17-32, 33-64, 65+ frames.
	BatchHist []int64 `json:"batch_hist,omitempty"`

	ReadCalls     int64   `json:"read_calls"`      // read syscalls
	FramesIn      int64   `json:"frames_in"`       // frames received
	BytesIn       int64   `json:"bytes_in"`        // bytes received
	FramesPerRead float64 `json:"frames_per_read"` // mean frames per read syscall
}

// OpSummary is one latency histogram rendered for the stream.
type OpSummary struct {
	Count  int64 `json:"n"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// Frame is one summary-monitoring record. Sections a node does not have
// (a server has no cache, a manager no data plane) are omitted.
type Frame struct {
	V      int    `json:"v"`
	Node   string `json:"node"`
	Role   string `json:"role"`
	Seq    uint64 `json:"seq"`
	UnixMS int64  `json:"unix_ms"`

	Cache    *CacheSummary        `json:"cache,omitempty"`
	RespQ    *RespQSummary        `json:"respq,omitempty"`
	Cluster  *ClusterSummary      `json:"cluster,omitempty"`
	Data     *DataSummary         `json:"data,omitempty"`
	Store    *StoreSummary        `json:"store,omitempty"`
	PCache   *PCacheSummary       `json:"pcache,omitempty"`
	Sched    *SchedSummary        `json:"sched,omitempty"`
	Net      *NetSummary          `json:"net,omitempty"`
	Wire     *WireSummary         `json:"wire,omitempty"`
	Ops      map[string]OpSummary `json:"ops,omitempty"`
	Counters map[string]int64     `json:"counters,omitempty"`
}

// OpFromSnapshot converts a metrics snapshot into the stream's
// microsecond rendering.
func OpFromSnapshot(s metrics.Snapshot) OpSummary {
	return OpSummary{
		Count:  s.Count,
		MeanUS: s.Mean.Microseconds(),
		P50US:  s.P50.Microseconds(),
		P90US:  s.P90.Microseconds(),
		P99US:  s.P99.Microseconds(),
		MaxUS:  s.Max.Microseconds(),
	}
}

// OpsFromRegistry renders every histogram in reg for the stream and
// returns the registry's counters alongside.
func OpsFromRegistry(reg *metrics.Registry) (map[string]OpSummary, map[string]int64) {
	if reg == nil {
		return nil, nil
	}
	ops := map[string]OpSummary{}
	ctrs := map[string]int64{}
	reg.Visit(
		func(name string, c *metrics.Counter) { ctrs[name] = c.Value() },
		func(name string, h *metrics.Histogram) { ops[name] = OpFromSnapshot(h.Snapshot()) },
	)
	if len(ops) == 0 {
		ops = nil
	}
	if len(ctrs) == 0 {
		ctrs = nil
	}
	return ops, ctrs
}

// Encode renders the frame as one JSON document (no trailing newline).
func (f Frame) Encode() []byte {
	b, err := json.Marshal(f)
	if err != nil {
		// Frame is a plain data struct; Marshal cannot fail on it. Keep
		// the stream alive regardless.
		return []byte(fmt.Sprintf(`{"v":%d,"node":%q,"error":%q}`, FrameVersion, f.Node, err))
	}
	return b
}

// ParseFrame decodes one JSON summary frame.
func ParseFrame(b []byte) (Frame, error) {
	var f Frame
	if err := json.Unmarshal(b, &f); err != nil {
		return Frame{}, fmt.Errorf("obs: bad summary frame: %w", err)
	}
	if f.V != FrameVersion {
		return Frame{}, fmt.Errorf("obs: unsupported frame version %d", f.V)
	}
	return f, nil
}

// String renders the frame as the compact one-liner `scalla-cli mon`
// prints.
func (f Frame) String() string {
	var b strings.Builder
	ts := time.UnixMilli(f.UnixMS).UTC().Format("15:04:05.000")
	fmt.Fprintf(&b, "%s %s/%s #%d", ts, f.Node, f.Role, f.Seq)
	if c := f.Cache; c != nil {
		fmt.Fprintf(&b, " cache=%d/%d(%.0f%%) hit=%d miss=%d evict=%d tick=%d nc=%d",
			c.Entries, c.Buckets, c.LoadFactor*100, c.Hits, c.Misses, c.Hidden, c.Ticks, c.Epoch)
	}
	if q := f.RespQ; q != nil {
		fmt.Fprintf(&b, " respq=%d rel=%d exp=%d", q.Depth, q.Released, q.Expired)
	}
	if cl := f.Cluster; cl != nil {
		fmt.Fprintf(&b, " members=%d/%d", cl.Online, cl.Members)
	}
	if d := f.Data; d != nil {
		fmt.Fprintf(&b, " handles=%d reads=%d writes=%d", d.OpenHandles, d.Reads, d.Writes)
	}
	if s := f.Store; s != nil {
		fmt.Fprintf(&b, " store=%s files=%d used=%dB", s.Backend, s.Files, s.UsedBytes)
		if s.Backend == "disk" {
			fmt.Fprintf(&b, " dirty=%dB fsync=%d(mean=%dµs max=%dµs)",
				s.DirtyBytes, s.Fsyncs, s.FsyncMeanUS, s.FsyncMaxUS)
		}
		if s.StageQ > 0 || s.StagedIn > 0 {
			fmt.Fprintf(&b, " stageq=%d staged=%d", s.StageQ, s.StagedIn)
		}
	}
	if p := f.PCache; p != nil {
		total := p.Hits + p.Misses
		ratio := 0.0
		if total > 0 {
			ratio = float64(p.Hits) / float64(total) * 100
		}
		fmt.Fprintf(&b, " pcache=%de/%db hit=%d(%.0f%%) miss=%d origin=%dB served=%dB",
			p.Entries, p.Blocks, p.Hits, ratio, p.Misses, p.OriginBytes, p.BytesServed)
	}
	if s := f.Sched; s != nil {
		fmt.Fprintf(&b, " sched=%dq/%dr shed=%d ctl_p99=%dµs data_p99=%dµs",
			s.QueuedData, s.InFlight, s.Shed, s.CtlWait.P99US, s.DataWait.P99US)
	}
	if n := f.Net; n != nil {
		fmt.Fprintf(&b, " net=%df/%dB", n.FramesSent, n.BytesSent)
	}
	if w := f.Wire; w != nil {
		fmt.Fprintf(&b, " wire=%dwv(%.2ff/wv) in=%drd(%.2ff/rd)",
			w.Writevs, w.FramesPerWritev, w.ReadCalls, w.FramesPerRead)
	}
	if op, ok := f.Ops["resolve.latency"]; ok {
		fmt.Fprintf(&b, " resolve{n=%d p50=%dµs p99=%dµs}", op.Count, op.P50US, op.P99US)
	}
	return b.String()
}

// TrimConn drops trailing zero connect stamps so idle slots do not
// bloat every frame.
func TrimConn(conn []uint64) []uint64 {
	n := len(conn)
	for n > 0 && conn[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return conn[:n]
}
