package obs

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"scalla/internal/metrics"
	"scalla/internal/vclock"
)

func sampleFrame() Frame {
	return Frame{
		Node: "mgr", Role: "manager",
		Cache: &CacheSummary{
			Entries: 10, Buckets: 17711, LoadFactor: 10.0 / 17711,
			Hits: 5, Misses: 7, Ticks: 3, Epoch: 2, Conn: []uint64{2, 1},
		},
		RespQ:   &RespQSummary{Depth: 4, Released: 9, Expired: 1},
		Cluster: &ClusterSummary{Members: 3, Online: 3},
		Ops: map[string]OpSummary{
			"resolve.latency": {Count: 9, P50US: 120, P99US: 480},
		},
		Counters: map[string]int64{"node.queries": 12},
	}
}

func TestFrameEncodeParseRoundtrip(t *testing.T) {
	f := sampleFrame()
	f.V = FrameVersion
	f.Seq = 3
	f.UnixMS = 1700000000123

	got, err := ParseFrame(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "mgr" || got.Role != "manager" || got.Seq != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Cache == nil || got.Cache.Entries != 10 || got.Cache.Epoch != 2 {
		t.Fatalf("cache section mismatch: %+v", got.Cache)
	}
	if len(got.Cache.Conn) != 2 || got.Cache.Conn[0] != 2 {
		t.Fatalf("conn stamps mismatch: %v", got.Cache.Conn)
	}
	if got.RespQ.Depth != 4 || got.Cluster.Members != 3 {
		t.Fatalf("sections mismatch: %+v", got)
	}
	if got.Ops["resolve.latency"].P99US != 480 {
		t.Fatalf("ops mismatch: %+v", got.Ops)
	}
	if got.Data != nil || got.Net != nil {
		t.Fatal("absent sections should stay nil")
	}
}

func TestParseFrameRejectsGarbageAndWrongVersion(t *testing.T) {
	if _, err := ParseFrame([]byte("not json")); err == nil {
		t.Fatal("garbage should not parse")
	}
	if _, err := ParseFrame([]byte(`{"v":99,"node":"x"}`)); err == nil {
		t.Fatal("future version should be rejected")
	}
}

func TestFrameString(t *testing.T) {
	f := sampleFrame()
	f.V = FrameVersion
	f.Seq = 3
	f.UnixMS = 1700000000123
	s := f.String()
	for _, want := range []string{"mgr/manager #3", "cache=10/17711", "hit=5 miss=7", "respq=4", "members=3/3", "resolve{n=9 p50=120µs p99=480µs}"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	// A server frame renders its data plane and scheduler instead.
	srv := Frame{V: FrameVersion, Node: "srv1", Role: "server",
		Data: &DataSummary{OpenHandles: 2, Reads: 7, Writes: 1},
		Sched: &SchedSummary{QueuedData: 3, InFlight: 2, Shed: 5,
			CtlWait: OpSummary{P99US: 10}, DataWait: OpSummary{P99US: 250}},
		Net: &NetSummary{FramesSent: 40, BytesSent: 1234}}
	s = srv.String()
	for _, want := range []string{"srv1/server", "handles=2 reads=7 writes=1", "sched=3q/2r shed=5 ctl_p99=10µs data_p99=250µs", "net=40f/1234B"} {
		if !strings.Contains(s, want) {
			t.Fatalf("server String() = %q, missing %q", s, want)
		}
	}
}

func TestOpsFromRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("queries").Add(4)
	h := reg.Histogram("resolve.latency")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	ops, ctrs := OpsFromRegistry(reg)
	if ctrs["queries"] != 4 {
		t.Fatalf("counters = %v", ctrs)
	}
	op, ok := ops["resolve.latency"]
	if !ok || op.Count != 100 {
		t.Fatalf("ops = %v", ops)
	}
	if op.P50US <= 0 || op.P99US < op.P50US || op.MaxUS < op.P99US {
		t.Fatalf("quantiles out of order: %+v", op)
	}
	if ops, ctrs = OpsFromRegistry(nil); ops != nil || ctrs != nil {
		t.Fatal("nil registry should yield nil maps")
	}
}

func TestTrimConn(t *testing.T) {
	if got := TrimConn([]uint64{1, 0, 2, 0, 0}); len(got) != 3 || got[2] != 2 {
		t.Fatalf("TrimConn = %v", got)
	}
	if got := TrimConn([]uint64{0, 0}); got != nil {
		t.Fatalf("all-zero TrimConn = %v, want nil", got)
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	if err := s.Emit([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit([]byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"a\":1}\n{\"b\":2}\n" {
		t.Fatalf("writer sink output %q", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChanSinkDropsWhenFull(t *testing.T) {
	s := NewChanSink(2)
	for i := 0; i < 5; i++ {
		if err := s.Emit([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.C); got != 2 {
		t.Fatalf("buffered %d frames, want 2 (rest dropped)", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit([]byte("x")); err == nil {
		t.Fatal("emit after close should error")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be fine")
	}
}

func TestUDPSink(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	s, err := NewUDPSink(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Emit([]byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	pc.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != `{"v":1}` {
		t.Fatalf("datagram = %q", buf[:n])
	}
}

func TestTCPSinkRedials(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lines := make(chan string, 8)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					lines <- sc.Text()
				}
				c.Close()
			}(c)
		}
	}()

	s := NewTCPSink(l.Addr().String())
	defer s.Close()
	if err := s.Emit([]byte(`{"seq":1}`)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-lines:
		if got != `{"seq":1}` {
			t.Fatalf("line = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no line received")
	}
	// Sever the connection; the next Emit may fail, but the sink must
	// redial and deliver eventually.
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := s.Emit([]byte(`{"seq":2}`)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never redialed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case got := <-lines:
		if got != `{"seq":2}` {
			t.Fatalf("line after redial = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no line after redial")
	}
}

func TestEmitterStampsAndTicks(t *testing.T) {
	clk := vclock.NewFake()
	sink := NewChanSink(8)
	collect := func() Frame { return Frame{Node: "mgr", Role: "manager"} }
	em := NewEmitter(10*time.Second, clk, collect, sink, nil)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); em.Run(stop) }()

	recv := func() Frame {
		t.Helper()
		select {
		case b := <-sink.C:
			f, err := ParseFrame(b)
			if err != nil {
				t.Fatal(err)
			}
			return f
		case <-time.After(5 * time.Second):
			t.Fatal("no frame emitted")
			panic("unreachable")
		}
	}

	clk.BlockUntil(1) // the run loop's ticker
	clk.Advance(10 * time.Second)
	f1 := recv()
	clk.Advance(10 * time.Second)
	f2 := recv()

	if f1.Seq != 1 || f2.Seq != 2 {
		t.Fatalf("seq = %d,%d, want 1,2", f1.Seq, f2.Seq)
	}
	if f1.V != FrameVersion || f1.Node != "mgr" {
		t.Fatalf("frame not stamped: %+v", f1)
	}
	if f2.UnixMS-f1.UnixMS != 10_000 {
		t.Fatalf("timestamps %d,%d not one period apart", f1.UnixMS, f2.UnixMS)
	}

	close(stop)
	<-done
	// Run closes the sink on exit.
	if _, ok := <-sink.C; ok {
		t.Fatal("sink channel should be closed after Run exits")
	}
}
