package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/vclock"
)

// Event is one timestamped point within a span, offset-relative to the
// span's start.
type Event struct {
	At     time.Duration `json:"at"`
	Kind   string        `json:"kind"`
	Detail string        `json:"detail,omitempty"`
}

// SpanRecord is one completed request span as stored in the ring.
type SpanRecord struct {
	ID      uint64        `json:"id"`
	Op      string        `json:"op"`
	Path    string        `json:"path,omitempty"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur"`
	Outcome string        `json:"outcome,omitempty"`
	Events  []Event       `json:"events,omitempty"`
}

// Tracer records request spans into a fixed-size ring. It is safe for
// concurrent use. A disabled tracer (the default) makes Start a single
// atomic load returning nil, and every Span method is nil-safe, so
// instrumented code carries no branches of its own.
type Tracer struct {
	enabled atomic.Bool
	clock   vclock.Clock
	nextID  atomic.Uint64
	started atomic.Int64 // spans started (includes unfinished)

	mu    sync.Mutex
	ring  []SpanRecord
	next  int   // ring write cursor
	total int64 // spans recorded into the ring
}

// DefaultSpanCapacity is the ring size NewTracer uses when given a
// non-positive capacity.
const DefaultSpanCapacity = 512

// NewTracer returns a Tracer whose ring holds capacity completed spans
// (DefaultSpanCapacity if capacity <= 0). The tracer starts disabled;
// call SetEnabled(true) to begin recording. A nil clock defaults to
// vclock.Real().
func NewTracer(capacity int, clock vclock.Clock) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	if clock == nil {
		clock = vclock.Real()
	}
	return &Tracer{clock: clock, ring: make([]SpanRecord, 0, capacity)}
}

// SetEnabled switches tracing on or off. Spans started before a switch
// finish under the regime they started with.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are being recorded — one atomic load,
// the full cost tracing adds to a hot path while off.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Start begins a span for one request. It returns nil when tracing is
// disabled (or t is nil); all Span methods tolerate a nil receiver.
func (t *Tracer) Start(op, path string) *Span {
	if !t.Enabled() {
		return nil
	}
	t.started.Add(1)
	return &Span{
		t:   t,
		rec: SpanRecord{ID: t.nextID.Add(1), Op: op, Path: path, Start: t.clock.Now()},
	}
}

// record stores a completed span, overwriting the oldest when full.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Spans returns up to max completed spans, most recent first (all of
// them if max <= 0).
func (t *Tracer) Spans(max int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]SpanRecord, 0, max)
	// t.next is the oldest slot once the ring has wrapped; walk
	// backwards from the newest.
	for k := 1; k <= max; k++ {
		i := (t.next - k + n) % n
		out = append(out, t.ring[i])
	}
	return out
}

// Total returns how many spans have been recorded since creation
// (including ones the ring has since overwritten).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Span is one in-flight request trace. A nil *Span (tracing disabled)
// is valid: every method is a no-op.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// Event appends a timestamped event to the span.
func (s *Span) Event(kind, detail string) {
	if s == nil {
		return
	}
	s.rec.Events = append(s.rec.Events, Event{
		At:     s.t.clock.Now().Sub(s.rec.Start),
		Kind:   kind,
		Detail: detail,
	})
}

// End completes the span with the given outcome and commits it to the
// ring. End is idempotent; only the first call records.
func (s *Span) End(outcome string) {
	if s == nil || s.t == nil {
		return
	}
	s.rec.Dur = s.t.clock.Now().Sub(s.rec.Start)
	s.rec.Outcome = outcome
	s.t.record(s.rec)
	s.t = nil
}
