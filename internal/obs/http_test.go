package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scalla/internal/metrics"
)

func adminFixture() (AdminState, *Tracer) {
	reg := metrics.NewRegistry()
	reg.Counter("node.queries").Add(7)
	reg.Histogram("resolve.latency").Observe(2 * time.Millisecond)
	tr := NewTracer(8, nil)
	st := AdminState{
		Collect:  func() Frame { return sampleFrame() },
		Registry: reg,
		Tracer:   tr,
	}
	return st, tr
}

func TestHandlerStatusz(t *testing.T) {
	st, _ := adminFixture()
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %s", resp.Status)
	}
	var f Frame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	if f.V != FrameVersion || f.Node != "mgr" || f.Cache == nil || f.Cache.Entries != 10 {
		t.Fatalf("statusz frame: %+v", f)
	}
}

func TestHandlerMetricsz(t *testing.T) {
	st, _ := adminFixture()
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	if !strings.Contains(body, "node.queries") || !strings.Contains(body, "resolve.latency") {
		t.Fatalf("metricsz dump missing entries:\n%s", body)
	}
}

// The scheduler section rides the summary frame, not the registry, so
// data-only nodes (which have no registry) still export it.
func TestHandlerMetricszSchedSection(t *testing.T) {
	st := AdminState{Collect: func() Frame {
		f := sampleFrame()
		f.Sched = &SchedSummary{QueuedData: 3, Shed: 5,
			CtlWait: OpSummary{Count: 2, P99US: 10}}
		return f
	}}
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz without registry: %s", resp.Status)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		"counter sched.shed = 5",
		"gauge   sched.queued_data = 3",
		"hist    sched.ctl_wait : n=2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metricsz sched section missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerTracez(t *testing.T) {
	st, tr := adminFixture()
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()

	// Enable tracing over HTTP, record spans, then read them back.
	resp, err := http.Post(srv.URL+"/tracez?enable=true", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !tr.Enabled() {
		t.Fatal("POST /tracez?enable=true did not enable the tracer")
	}
	for i := 0; i < 3; i++ {
		sp := tr.Start("resolve", "/store/f")
		sp.Event("cache.miss", "")
		sp.End("redirect srv1:3094")
	}

	resp, err = http.Get(srv.URL + "/tracez?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Enabled bool         `json:"enabled"`
		Total   int64        `json:"total"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Total != 3 || len(out.Spans) != 2 {
		t.Fatalf("tracez = %+v", out)
	}
	if out.Spans[0].Op != "resolve" || out.Spans[0].Outcome != "redirect srv1:3094" {
		t.Fatalf("span = %+v", out.Spans[0])
	}

	// Disable again and check bad input handling.
	resp, err = http.Post(srv.URL+"/tracez?enable=false", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Enabled() {
		t.Fatal("POST /tracez?enable=false did not disable the tracer")
	}
	resp, err = http.Post(srv.URL+"/tracez?enable=bogus", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus enable: %s", resp.Status)
	}
	resp, err = http.Get(srv.URL + "/tracez?n=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: %s", resp.Status)
	}
}

func TestHandlerNilSections404(t *testing.T) {
	srv := httptest.NewServer(NewHandler(AdminState{}))
	defer srv.Close()
	for _, path := range []string{"/statusz", "/metricsz", "/tracez"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s with nil state: %s", path, resp.Status)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
