package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
)

// TraceHash accumulates a canonical event-trace digest for one
// deterministic run: each scheduler decision and its observable effects
// is appended as one formatted line, and Sum fingerprints the whole
// execution. Two runs of the same seed must produce byte-identical
// traces, so comparing two TraceHash sums is the replay assertion of the
// detsim harness (DESIGN.md §7).
//
// TraceHash is intentionally not safe for concurrent use: the harness
// appends only from its single scheduler thread, and any concurrent
// append would itself be a determinism bug worth crashing on.
type TraceHash struct {
	h hash.Hash
	n int
}

// NewTraceHash returns an empty trace accumulator.
func NewTraceHash() *TraceHash {
	return &TraceHash{h: sha256.New()}
}

// Addf appends one formatted trace line to the digest.
func (t *TraceHash) Addf(format string, args ...any) {
	fmt.Fprintf(t.h, format, args...)
	t.h.Write([]byte{'\n'})
	t.n++
}

// Len returns the number of lines accumulated so far.
func (t *TraceHash) Len() int { return t.n }

// Sum returns the hex digest over every line appended so far, prefixed
// with the line count (so an empty trace and a truncated one cannot
// collide silently). Sum does not reset the accumulator.
func (t *TraceHash) Sum() string {
	return fmt.Sprintf("%d-%s", t.n, hex.EncodeToString(t.h.Sum(nil)))
}
