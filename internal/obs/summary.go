package obs

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scalla/internal/vclock"
)

// Sink receives encoded summary frames. Implementations must tolerate
// concurrent Emit calls.
type Sink interface {
	// Emit delivers one encoded frame. A failed delivery is reported
	// but must not poison the sink: the emitter keeps going.
	Emit(frame []byte) error
	Close() error
}

// ---------------------------------------------------------------------
// Writer sink: newline-delimited JSON to any io.Writer.

type writerSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink streams frames to w as newline-delimited JSON.
func NewWriterSink(w io.Writer) Sink { return &writerSink{w: w} }

func (s *writerSink) Emit(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(frame); err != nil {
		return err
	}
	_, err := io.WriteString(s.w, "\n")
	return err
}

func (s *writerSink) Close() error { return nil }

// ---------------------------------------------------------------------
// Channel sink: in-process delivery for tests and embedded consumers.

// ChanSink delivers frames on C, dropping when the consumer lags —
// summary monitoring is lossy by design, like XRootD's UDP stream.
type ChanSink struct {
	C chan []byte

	mu     sync.Mutex
	closed bool
}

// NewChanSink returns a ChanSink buffering up to depth frames.
func NewChanSink(depth int) *ChanSink {
	if depth <= 0 {
		depth = 16
	}
	return &ChanSink{C: make(chan []byte, depth)}
}

// Emit queues frame on C, dropping it when the consumer lags.
func (s *ChanSink) Emit(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("obs: chan sink closed")
	}
	select {
	case s.C <- frame:
	default: // consumer lagging; drop
	}
	return nil
}

// Close marks the sink closed and closes C; subsequent Emits error.
func (s *ChanSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.C)
	}
	return nil
}

// ---------------------------------------------------------------------
// UDP sink: one datagram per frame, the XRootD summary-stream shape.

type udpSink struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewUDPSink sends each frame as one UDP datagram to addr.
func NewUDPSink(addr string) (Sink, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: udp sink: %w", err)
	}
	return &udpSink{conn: conn}, nil
}

func (s *udpSink) Emit(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(frame)
	return err
}

func (s *udpSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn.Close()
}

// ---------------------------------------------------------------------
// TCP sink: newline-delimited JSON over a lazily (re)dialed connection.

type tcpSink struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
}

// NewTCPSink streams newline-delimited frames to addr, dialing on first
// use and redialing after an error. Dial failures surface from Emit; the
// emitter logs and carries on.
func NewTCPSink(addr string) Sink { return &tcpSink{addr: addr} }

func (s *tcpSink) Emit(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		c, err := net.Dial("tcp", s.addr)
		if err != nil {
			return err
		}
		s.conn = c
	}
	if _, err := s.conn.Write(append(frame, '\n')); err != nil {
		s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}

func (s *tcpSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		err := s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}

// ---------------------------------------------------------------------
// Emitter: the summary-monitoring loop.

// Collector assembles a point-in-time Frame; the emitter stamps Seq,
// UnixMS, and the format version.
type Collector func() Frame

// Emitter periodically collects a Frame and emits it on a Sink.
type Emitter struct {
	collect Collector
	sink    Sink
	every   time.Duration
	clock   vclock.Clock
	logf    func(format string, args ...any)
	seq     uint64
}

// DefaultPeriod is the emission period NewEmitter applies when given a
// non-positive one.
const DefaultPeriod = 10 * time.Second

// NewEmitter wires a collector to a sink. A nil clock defaults to
// vclock.Real(); logf may be nil.
func NewEmitter(every time.Duration, clock vclock.Clock, collect Collector, sink Sink, logf func(string, ...any)) *Emitter {
	if every <= 0 {
		every = DefaultPeriod
	}
	if clock == nil {
		clock = vclock.Real()
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Emitter{collect: collect, sink: sink, every: every, clock: clock, logf: logf}
}

// EmitNow collects and emits one frame immediately.
func (e *Emitter) EmitNow() error {
	f := e.collect()
	e.seq++
	f.V = FrameVersion
	f.Seq = e.seq
	f.UnixMS = e.clock.Now().UnixMilli()
	return e.sink.Emit(f.Encode())
}

// Run emits one frame per period until stop closes, then closes the
// sink. Run it in a goroutine.
func (e *Emitter) Run(stop <-chan struct{}) {
	t := e.clock.NewTicker(e.every)
	defer t.Stop()
	defer e.sink.Close()
	for {
		select {
		case <-stop:
			return
		case <-t.C():
			if err := e.EmitNow(); err != nil {
				e.logf("obs: summary emit: %v", err)
			}
		}
	}
}
