package nsd

import (
	"strings"
	"testing"

	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
	"scalla/internal/xrd"
)

func startXrd(t *testing.T, net transport.Network, addr string, st *store.Store) {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := xrd.New(xrd.Config{Store: st})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
}

func TestListMergesAcrossServers(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	stA := store.New(store.Config{})
	stB := store.New(store.Config{})
	stA.Put("/store/a", []byte("1"))
	stA.Put("/store/shared", []byte("22"))
	stB.Put("/store/b", []byte("333"))
	stB.PutOffline("/store/shared", []byte("22")) // replica, offline here
	stB.PutOffline("/store/tape-only", []byte("4444"))
	startXrd(t, net, "srvA", stA)
	startXrd(t, net, "srvB", stB)

	d := New(net, "srvA", "srvB")
	got := d.List("/store")
	want := []string{"/store/a", "/store/b", "/store/shared", "/store/tape-only"}
	if len(got) != len(want) {
		t.Fatalf("List = %d entries (%v), want %d", len(got), got, len(want))
	}
	for i, p := range want {
		if got[i].Path != p {
			t.Errorf("entry %d = %s, want %s", i, got[i].Path, p)
		}
	}
	// The replica merge prefers the online copy.
	for _, e := range got {
		if e.Path == "/store/shared" && !e.Online {
			t.Error("merged replica reported offline despite online copy")
		}
		if e.Path == "/store/tape-only" && e.Online {
			t.Error("tape-only file reported online")
		}
	}
}

func TestListSkipsUnreachableServers(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	st := store.New(store.Config{})
	st.Put("/f", []byte("1"))
	startXrd(t, net, "up", st)

	d := New(net, "up", "down") // "down" never listens
	got := d.List("/")
	if len(got) != 1 || got[0].Path != "/f" {
		t.Fatalf("List = %v", got)
	}
}

func TestAddServerDedupes(t *testing.T) {
	d := New(transport.NewInProc(transport.InProcConfig{}))
	d.AddServer("a")
	d.AddServer("a")
	d.AddServer("b")
	if len(d.Servers()) != 2 {
		t.Errorf("Servers = %v", d.Servers())
	}
}

func TestServeNamespaceOverNetwork(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	st := store.New(store.Config{})
	st.Put("/data/x", []byte("1"))
	startXrd(t, net, "srv", st)

	d := New(net, "srv")
	if err := d.Serve("nsd"); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	entries, err := listOne(net, "nsd", "/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Path != "/data/x" {
		t.Fatalf("remote list = %v", entries)
	}
}

func TestServeRejectsNonList(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	d := New(net)
	if err := d.Serve("nsd"); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	c, err := net.Dial("nsd")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Send(proto.Marshal(proto.Stat{Path: "/x"}))
	frame, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := proto.Unmarshal(frame)
	if e, ok := m.(proto.Err); !ok || e.Code != proto.EInval {
		t.Fatalf("reply = %#v", m)
	}
}

func TestTreeRendering(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	st := store.New(store.Config{})
	st.Put("/a/b/c.root", []byte("1"))
	st.PutOffline("/a/d.root", []byte("2"))
	startXrd(t, net, "srv", st)

	d := New(net, "srv")
	tree := d.Tree("/")
	if !strings.Contains(tree, "a/") || !strings.Contains(tree, "c.root") {
		t.Errorf("tree = %q", tree)
	}
	if !strings.Contains(tree, "d.root [offline]") {
		t.Errorf("offline marker missing: %q", tree)
	}
}
