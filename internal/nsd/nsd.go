// Package nsd implements the Cluster Name Space daemon.
//
// Scalla deliberately keeps no global namespace: managers track only
// the names clients actually request, which is what makes registration
// light and restarts fast (paper Sections II-B4 and V). When users do
// need an ls-type view across the cluster, the paper points at a
// separate Cluster Name Space daemon (footnote 3). This package is that
// daemon: it fans a List out to every data server, merges the results,
// and can itself serve the merged namespace over the data plane.
package nsd

import (
	"sort"
	"strings"
	"sync"

	"scalla/internal/mux"
	"scalla/internal/proto"
	"scalla/internal/transport"
)

// Daemon aggregates the namespaces of a set of data servers.
type Daemon struct {
	net   transport.Network
	sched *mux.Scheduler

	mu      sync.Mutex
	servers []string // data addresses of leaf servers
	l       transport.Listener
}

// New returns a Daemon that will consult the given servers.
func New(net transport.Network, servers ...string) *Daemon {
	return &Daemon{
		net: net,
		// Listing fans out to every server, so a few concurrent workers
		// overlap fan-outs nicely without needing a deep pool. The shared
		// scheduler keeps one greedy lister from monopolizing them and
		// sheds (rather than queues without bound) under surge.
		sched:   mux.NewScheduler(mux.SchedConfig{Workers: 4}),
		servers: append([]string(nil), servers...),
	}
}

// AddServer registers another data server with the daemon.
func (d *Daemon) AddServer(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.servers {
		if s == addr {
			return
		}
	}
	d.servers = append(d.servers, addr)
}

// Servers returns the registered server addresses.
func (d *Daemon) Servers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.servers...)
}

// List fans the prefix query out to every server and merges the
// results: duplicates (replicas) collapse into one entry, preferring
// the online copy's metadata. Unreachable servers are skipped — the
// namespace view is best-effort by design.
func (d *Daemon) List(prefix string) []proto.Entry {
	servers := d.Servers()
	type result struct {
		entries []proto.Entry
	}
	results := make([]result, len(servers))
	var wg sync.WaitGroup
	for i, addr := range servers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entries, err := listOne(d.net, addr, prefix)
			if err == nil {
				results[i].entries = entries
			}
		}()
	}
	wg.Wait()

	merged := make(map[string]proto.Entry)
	for _, r := range results {
		for _, e := range r.entries {
			if prev, ok := merged[e.Path]; ok {
				// Replica: prefer online metadata.
				if !prev.Online && e.Online {
					merged[e.Path] = e
				}
				continue
			}
			merged[e.Path] = e
		}
	}
	out := make([]proto.Entry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func listOne(net transport.Network, addr, prefix string) ([]proto.Entry, error) {
	c, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := transport.SendMessage(c, proto.List{Prefix: prefix}); err != nil {
		return nil, err
	}
	frame, err := c.Recv()
	if err != nil {
		return nil, err
	}
	m, err := proto.Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	lk, ok := m.(proto.ListOK)
	if !ok {
		return nil, transport.ErrClosed
	}
	return lk.Entries, nil
}

// Serve exposes the merged namespace on addr: clients send proto.List
// and receive the cluster-wide merged proto.ListOK. It returns once the
// listener is bound; call Stop to shut down.
func (d *Daemon) Serve(addr string) error {
	l, err := d.net.Listen(addr)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.l = l
	d.mu.Unlock()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go d.serveConn(c)
		}
	}()
	return nil
}

// Stop closes the daemon's listener and drains its dispatch scheduler.
func (d *Daemon) Stop() {
	d.mu.Lock()
	l := d.l
	d.mu.Unlock()
	if l != nil {
		l.Close()
	}
	d.sched.Close()
}

func (d *Daemon) serveConn(c transport.Conn) {
	defer c.Close()
	mux.Serve(c, func(m proto.Message, _ mux.Responder) proto.Message {
		switch q := m.(type) {
		case proto.List:
			return proto.ListOK{Entries: d.List(q.Prefix)}
		case proto.Ping:
			return proto.Pong{}
		default:
			return proto.Err{Code: proto.EInval, Msg: "nsd: expected list"}
		}
	}, mux.ServeOptions{Sched: d.sched})
}

// Tree renders the merged namespace under prefix as an indented tree,
// the view the paper's FUSE integration offers. Directories are
// inferred from path components.
func (d *Daemon) Tree(prefix string) string {
	entries := d.List(prefix)
	var b strings.Builder
	seenDirs := make(map[string]bool)
	for _, e := range entries {
		parts := strings.Split(strings.TrimPrefix(e.Path, "/"), "/")
		for i := 0; i < len(parts)-1; i++ {
			dir := strings.Join(parts[:i+1], "/")
			if !seenDirs[dir] {
				seenDirs[dir] = true
				b.WriteString(strings.Repeat("  ", i))
				b.WriteString(parts[i])
				b.WriteString("/\n")
			}
		}
		b.WriteString(strings.Repeat("  ", len(parts)-1))
		b.WriteString(parts[len(parts)-1])
		if !e.Online {
			b.WriteString(" [offline]")
		}
		b.WriteString("\n")
	}
	return b.String()
}
