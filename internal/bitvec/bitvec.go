// Package bitvec implements the 64-bit server-set vectors used throughout
// Scalla's cluster management layer.
//
// Each cmsd node manages at most 64 direct subordinates (the paper's
// "sets of 64"). A subordinate is assigned an index in [0, 64) and every
// piece of per-file location state is a Vec whose bit i refers to
// subordinate i. The paper names several such vectors:
//
//	Vh — servers that have the file
//	Vp — servers preparing (staging) the file
//	Vq — servers that still must be queried about the file
//	Vm — servers eligible for a path prefix (export mask)
//	Vc — servers that connected since a cache entry was written
//
// The invariant Vq ∩ (Vh ∪ Vp) = ∅ is maintained by the cache layer;
// bitvec only provides the primitive operations.
package bitvec

import (
	"math/bits"
	"strconv"
	"strings"
)

// Width is the number of addressable subordinates per cluster set.
// The choice of 64 is fundamental to the paper's design: it bounds the
// per-level location time and makes every set operation a single machine
// word operation.
const Width = 64

// Vec is a set of subordinate indices encoded as a 64-bit mask.
// The zero value is the empty set.
type Vec uint64

// Empty is the vector with no members.
const Empty Vec = 0

// Full is the vector with all 64 members present.
const Full Vec = ^Vec(0)

// Of returns a vector containing exactly the given indices.
// Indices outside [0, Width) are ignored.
func Of(indices ...int) Vec {
	var v Vec
	for _, i := range indices {
		if i >= 0 && i < Width {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Bit returns the vector containing only index i, or Empty if i is out
// of range.
func Bit(i int) Vec {
	if i < 0 || i >= Width {
		return Empty
	}
	return 1 << uint(i)
}

// Has reports whether index i is a member.
func (v Vec) Has(i int) bool {
	if i < 0 || i >= Width {
		return false
	}
	return v&(1<<uint(i)) != 0
}

// With returns v with index i added.
func (v Vec) With(i int) Vec { return v | Bit(i) }

// Without returns v with index i removed.
func (v Vec) Without(i int) Vec { return v &^ Bit(i) }

// Union returns v ∪ o.
func (v Vec) Union(o Vec) Vec { return v | o }

// Intersect returns v ∩ o.
func (v Vec) Intersect(o Vec) Vec { return v & o }

// Minus returns v \ o.
func (v Vec) Minus(o Vec) Vec { return v &^ o }

// IsEmpty reports whether the set has no members.
func (v Vec) IsEmpty() bool { return v == 0 }

// Count returns the number of members.
func (v Vec) Count() int { return bits.OnesCount64(uint64(v)) }

// First returns the lowest member index, or -1 if the set is empty.
func (v Vec) First() int {
	if v == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(v))
}

// Next returns the lowest member index strictly greater than i, or -1.
// Next(-1) is equivalent to First.
func (v Vec) Next(i int) int {
	if i >= Width-1 {
		return -1
	}
	rest := v >> uint(i+1) << uint(i+1)
	if rest == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(rest))
}

// Indices returns the member indices in ascending order.
func (v Vec) Indices() []int {
	out := make([]int, 0, v.Count())
	for i := v.First(); i >= 0; i = v.Next(i) {
		out = append(out, i)
	}
	return out
}

// ForEach calls fn for each member index in ascending order.
// It stops early if fn returns false.
func (v Vec) ForEach(fn func(i int) bool) {
	for i := v.First(); i >= 0; i = v.Next(i) {
		if !fn(i) {
			return
		}
	}
}

// String renders the set like "{0,3,17}". The empty set renders as "{}".
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
