package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOfAndHas(t *testing.T) {
	v := Of(0, 5, 63)
	for i := 0; i < Width; i++ {
		want := i == 0 || i == 5 || i == 63
		if v.Has(i) != want {
			t.Errorf("Has(%d) = %v, want %v", i, v.Has(i), want)
		}
	}
}

func TestOfIgnoresOutOfRange(t *testing.T) {
	if got := Of(-1, 64, 100); got != Empty {
		t.Errorf("Of(out-of-range) = %v, want Empty", got)
	}
}

func TestBitOutOfRange(t *testing.T) {
	if Bit(-1) != Empty || Bit(64) != Empty {
		t.Error("Bit out of range must return Empty")
	}
	if Bit(63) != Vec(1)<<63 {
		t.Error("Bit(63) wrong")
	}
}

func TestHasOutOfRange(t *testing.T) {
	if Full.Has(-1) || Full.Has(64) {
		t.Error("Has out of range must be false")
	}
}

func TestWithWithout(t *testing.T) {
	v := Empty.With(7)
	if !v.Has(7) || v.Count() != 1 {
		t.Fatalf("With(7) = %v", v)
	}
	v = v.Without(7)
	if !v.IsEmpty() {
		t.Fatalf("Without(7) = %v", v)
	}
	// Removing an absent member is a no-op.
	if Of(1).Without(2) != Of(1) {
		t.Error("Without absent member changed the set")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := Of(1, 2, 3), Of(3, 4)
	if got := a.Union(b); got != Of(1, 2, 3, 4) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != Of(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != Of(1, 2) {
		t.Errorf("Minus = %v", got)
	}
}

func TestCount(t *testing.T) {
	if Empty.Count() != 0 {
		t.Error("Empty.Count != 0")
	}
	if Full.Count() != 64 {
		t.Error("Full.Count != 64")
	}
	if Of(0, 63).Count() != 2 {
		t.Error("Of(0,63).Count != 2")
	}
}

func TestFirstNext(t *testing.T) {
	if Empty.First() != -1 {
		t.Error("Empty.First != -1")
	}
	v := Of(3, 17, 63)
	if v.First() != 3 {
		t.Errorf("First = %d", v.First())
	}
	if v.Next(3) != 17 {
		t.Errorf("Next(3) = %d", v.Next(3))
	}
	if v.Next(17) != 63 {
		t.Errorf("Next(17) = %d", v.Next(17))
	}
	if v.Next(63) != -1 {
		t.Errorf("Next(63) = %d", v.Next(63))
	}
	if v.Next(-1) != v.First() {
		t.Error("Next(-1) must equal First()")
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	in := []int{0, 1, 31, 32, 62, 63}
	v := Of(in...)
	got := v.Indices()
	if len(got) != len(in) {
		t.Fatalf("Indices len = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("Indices[%d] = %d, want %d", i, got[i], in[i])
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	n := 0
	Full.ForEach(func(i int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("ForEach visited %d, want 10", n)
	}
}

func TestString(t *testing.T) {
	if Empty.String() != "{}" {
		t.Errorf("Empty.String = %q", Empty.String())
	}
	if got := Of(0, 5).String(); got != "{0,5}" {
		t.Errorf("String = %q", got)
	}
}

// Property: Of(Indices(v)) == v for any v.
func TestPropIndicesRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		v := Vec(raw)
		return Of(v.Indices()...) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union/Intersect/Minus respect the usual set identities.
func TestPropSetIdentities(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Vec(a), Vec(b)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if x.Intersect(y) != y.Intersect(x) {
			return false
		}
		if x.Minus(y).Intersect(y) != Empty {
			return false
		}
		if x.Minus(y).Union(x.Intersect(y)) != x {
			return false
		}
		return x.Union(y).Count() == x.Count()+y.Count()-x.Intersect(y).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Count equals the number of indices visited by ForEach.
func TestPropCountMatchesIteration(t *testing.T) {
	f := func(raw uint64) bool {
		v := Vec(raw)
		n := 0
		v.ForEach(func(int) bool { n++; return true })
		return n == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkIndices(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vs := make([]Vec, 1024)
	for i := range vs {
		vs[i] = Vec(r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vs[i%len(vs)].Indices()
	}
}

func BenchmarkForEach(b *testing.B) {
	v := Vec(0xAAAAAAAAAAAAAAAA)
	sum := 0
	for i := 0; i < b.N; i++ {
		v.ForEach(func(j int) bool { sum += j; return true })
	}
	_ = sum
}
