// Package cluster implements a cmsd node's membership table: the state
// it keeps about its (at most 64) direct subordinates.
//
// The table realizes the paper's membership rules (Section III-A4):
//
//   - Login assigns each subordinate an index in [0, 64) and records the
//     path prefixes it exports — never a file manifest, which is what
//     keeps registration light (Section V).
//   - A disconnect marks the member offline but keeps its slot: the
//     hope is a transient failure. If the member reconnects within the
//     drop delay with the same export set, existing cached locations
//     referring to it remain valid.
//   - After the drop delay, or on reconnect with a different export
//     set, the member is dropped and any reconnection is a brand-new
//     server (a new connect epoch for the cache's correction logic).
//
// The table also implements server selection among the holders of a
// file, by load, free space, or selection frequency (Section II-B3).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/names"
	"scalla/internal/proto"
	"scalla/internal/vclock"
)

// MaxMembers is the width of the subordinate set: a Table holds at most
// this many direct members, matching the paper's 64-ary fanout and the
// wire protocol's slot space (proto.SlotLimit). Raising it requires
// widening proto.LoginOK.Index first — proto.SlotIndex guards the
// narrowing.
const MaxMembers = proto.SlotLimit

// ErrFull is returned when every available subordinate slot is taken
// (Capacity of them, at most MaxMembers).
var ErrFull = errors.New("cluster: subordinate set is full")

// Policy selects among multiple servers that have a file.
type Policy int

const (
	// ByLoad picks the least-loaded online holder (default).
	ByLoad Policy = iota
	// BySpace picks the holder with the most free space (used for
	// writes and file creation).
	BySpace
	// ByFrequency picks the least-recently-selected holder, spreading
	// clients evenly.
	ByFrequency
	// RoundRobin rotates through holders regardless of load.
	RoundRobin
)

// Member is a snapshot of one subordinate's state.
type Member struct {
	Index    int
	Name     string
	Role     proto.Role
	DataAddr string
	CtlAddr  string
	Prefixes names.PrefixSet
	Load     uint32
	Free     int64
	Selected uint64
	Online   bool
}

// Config parameterizes a Table.
type Config struct {
	// DropDelay is how long a disconnected member keeps its slot before
	// being dropped. Default 10 minutes.
	DropDelay time.Duration
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
	// OnNewServer is invoked (without table locks held) whenever a slot
	// is bound to a new server identity — a fresh login, a post-drop
	// reconnection, or a reconnection with changed exports. The cache
	// layer hooks its connect-epoch counter here.
	OnNewServer func(index int)
	// OnDrop is invoked (without table locks held) when a member is
	// dropped from the cluster.
	OnDrop func(index int)
	// OnOffline is invoked (without table locks held) when a member's
	// connection is lost but its slot is kept (the disconnect-to-drop
	// window). The resolution core hooks its query re-flood machinery
	// here: a member that dies while queried inside the processing
	// deadline must not turn into a silent five-second wait for every
	// parked client.
	OnOffline func(index int)
	// Capacity caps how many subordinate slots Login hands out,
	// modelling a cell narrower than the wire's MaxMembers-wide
	// maximum: the topology planner sets it to its fanout so a cell
	// actually fills — and triggers overflow handling — at the planned
	// width, not only at 64. Login returns ErrFull once Capacity slots
	// are used. Default (and ceiling) MaxMembers.
	Capacity int
}

func (c Config) withDefaults() Config {
	if c.DropDelay <= 0 {
		c.DropDelay = 10 * time.Minute
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.Capacity <= 0 || c.Capacity > MaxMembers {
		c.Capacity = MaxMembers
	}
	return c
}

type slot struct {
	used     bool
	online   bool
	name     string
	role     proto.Role
	dataAddr string
	ctlAddr  string
	prefixes names.PrefixSet
	load     uint32
	free     int64
	selected uint64
	connGen  uint64 // bumped on every connect/disconnect; guards drop timers
}

// Table tracks up to 64 subordinates. It is safe for concurrent use.
type Table struct {
	cfg Config

	mu    sync.Mutex
	slots [MaxMembers]slot
	rr    int // round-robin cursor
	ovRR  int // overflow round-robin cursor over supervisor members
}

// New returns an empty Table.
func New(cfg Config) *Table {
	return &Table{cfg: cfg.withDefaults()}
}

// Login registers (or re-registers) a subordinate. The identity key is
// name. Four cases, mirroring the paper:
//
//   - unknown name → new slot, new server (isNew=true);
//   - known name, online → treated as a replacement connection
//     (isNew=false, same slot);
//   - known name, offline within drop delay, same exports → same slot,
//     existing cached locations stay valid (isNew=false);
//   - known name but different exports → the old identity is dropped
//     and the login handled as a new server in the same slot
//     (isNew=true).
func (t *Table) Login(m Member) (index int, isNew bool, err error) {
	t.mu.Lock()
	idx := t.findByName(m.Name)
	if idx < 0 {
		idx = t.freeSlot()
		if idx < 0 {
			t.mu.Unlock()
			return 0, false, ErrFull
		}
		s := &t.slots[idx]
		*s = slot{used: true, online: true, name: m.Name, role: m.Role,
			dataAddr: m.DataAddr, ctlAddr: m.CtlAddr, prefixes: m.Prefixes,
			load: m.Load, free: m.Free, connGen: s.connGen + 1}
		t.mu.Unlock()
		t.notifyNew(idx)
		return idx, true, nil
	}
	s := &t.slots[idx]
	sameExports := s.prefixes.Equal(m.Prefixes)
	s.online = true
	s.role = m.Role
	s.dataAddr = m.DataAddr
	s.ctlAddr = m.CtlAddr
	s.prefixes = m.Prefixes
	s.load = m.Load
	s.free = m.Free
	s.connGen++
	t.mu.Unlock()
	if !sameExports {
		// Paper: reconnection with a new set of exported paths is
		// treated as a new connection.
		t.notifyNew(idx)
		return idx, true, nil
	}
	return idx, false, nil
}

func (t *Table) notifyNew(idx int) {
	if t.cfg.OnNewServer != nil {
		t.cfg.OnNewServer(idx)
	}
}

// findByName returns the slot index for name, or -1. Caller holds t.mu.
func (t *Table) findByName(name string) int {
	for i := range t.slots {
		if t.slots[i].used && t.slots[i].name == name {
			return i
		}
	}
	return -1
}

// freeSlot returns an unused slot index within Capacity, or -1. Caller
// holds t.mu.
func (t *Table) freeSlot() int {
	for i := 0; i < t.cfg.Capacity; i++ {
		if !t.slots[i].used {
			return i
		}
	}
	return -1
}

// OverflowTarget picks the subordinate a full table should vector an
// incoming login at: an online supervisor member with a control address,
// chosen round-robin so successive overflow logins spread across
// supervisor children instead of piling onto one cell (cell overflow,
// DESIGN.md §12). ok=false means this node has no supervisor children —
// a leaf cell — and the login must be refused outright with LoginRej.
func (t *Table) OverflowTarget() (ctlAddr string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := 1; k <= MaxMembers; k++ {
		i := (t.ovRR + k) % MaxMembers
		s := &t.slots[i]
		if s.used && s.online && s.role == proto.RoleSupervisor && s.ctlAddr != "" {
			t.ovRR = i
			return s.ctlAddr, true
		}
	}
	return "", false
}

// Disconnect marks member index offline and arms the drop timer. If the
// member does not log back in within DropDelay it is dropped.
func (t *Table) Disconnect(index int) {
	gen, ok := t.DisconnectManual(index)
	if !ok {
		return
	}
	go func() {
		t.cfg.Clock.Sleep(t.cfg.DropDelay)
		t.maybeDrop(index, gen)
	}()
}

// DisconnectManual marks member index offline exactly like Disconnect
// but arms no drop timer; the returned connection generation is passed
// to MaybeDrop when the embedder decides DropDelay has elapsed. ok=false
// means the member was not online and nothing changed. The deterministic
// harness uses this pair so the drop decision is a scheduler event
// rather than a background sleep.
func (t *Table) DisconnectManual(index int) (gen uint64, ok bool) {
	if index < 0 || index >= MaxMembers {
		return 0, false
	}
	t.mu.Lock()
	s := &t.slots[index]
	if !s.used || !s.online {
		t.mu.Unlock()
		return 0, false
	}
	s.online = false
	s.connGen++
	gen = s.connGen
	t.mu.Unlock()

	if t.cfg.OnOffline != nil {
		t.cfg.OnOffline(index)
	}
	return gen, true
}

// MaybeDrop drops member index if it is still offline and its state has
// not changed since gen was observed — the manual counterpart of the
// timer Disconnect arms. A reconnection (or a drop by other means)
// bumps the generation and voids the pending drop.
func (t *Table) MaybeDrop(index int, gen uint64) { t.maybeDrop(index, gen) }

// maybeDrop drops the member if its state has not changed since the
// timer was armed.
func (t *Table) maybeDrop(index int, gen uint64) {
	t.mu.Lock()
	s := &t.slots[index]
	if !s.used || s.online || s.connGen != gen {
		t.mu.Unlock()
		return
	}
	t.slots[index] = slot{connGen: s.connGen + 1}
	t.mu.Unlock()
	if t.cfg.OnDrop != nil {
		t.cfg.OnDrop(index)
	}
}

// DropNow drops member index immediately (administrative removal).
func (t *Table) DropNow(index int) {
	if index < 0 || index >= MaxMembers {
		return
	}
	t.mu.Lock()
	s := &t.slots[index]
	if !s.used {
		t.mu.Unlock()
		return
	}
	t.slots[index] = slot{connGen: s.connGen + 1}
	t.mu.Unlock()
	if t.cfg.OnDrop != nil {
		t.cfg.OnDrop(index)
	}
}

// Member returns a snapshot of member index.
func (t *Table) Member(index int) (Member, bool) {
	if index < 0 || index >= MaxMembers {
		return Member{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.slots[index]
	if !s.used {
		return Member{}, false
	}
	return t.snapshot(index), true
}

// snapshot copies slot index into a Member. Caller holds t.mu.
func (t *Table) snapshot(index int) Member {
	s := &t.slots[index]
	return Member{
		Index: index, Name: s.name, Role: s.role,
		DataAddr: s.dataAddr, CtlAddr: s.ctlAddr, Prefixes: s.prefixes,
		Load: s.load, Free: s.free, Selected: s.selected, Online: s.online,
	}
}

// Members returns snapshots of all registered members, by index.
func (t *Table) Members() []Member {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Member
	for i := range t.slots {
		if t.slots[i].used {
			out = append(out, t.snapshot(i))
		}
	}
	return out
}

// Summary are the membership headcounts the status endpoints report.
type Summary struct {
	Members int // registered slots
	Online  int // currently connected
	Offline int // disconnected but not yet dropped
}

// Summary returns the current membership headcounts in one pass.
func (t *Table) Summary() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s Summary
	for i := range t.slots {
		if !t.slots[i].used {
			continue
		}
		s.Members++
		if t.slots[i].online {
			s.Online++
		} else {
			s.Offline++
		}
	}
	return s
}

// Count returns the number of registered members.
func (t *Table) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.slots {
		if t.slots[i].used {
			n++
		}
	}
	return n
}

// OnlineVec returns the members currently connected.
func (t *Table) OnlineVec() bitvec.Vec {
	t.mu.Lock()
	defer t.mu.Unlock()
	var v bitvec.Vec
	for i := range t.slots {
		if t.slots[i].used && t.slots[i].online {
			v = v.With(i)
		}
	}
	return v
}

// OfflineVec returns members that are disconnected but not yet dropped —
// the paper's "time between disconnect and drop" window.
func (t *Table) OfflineVec() bitvec.Vec {
	t.mu.Lock()
	defer t.mu.Unlock()
	var v bitvec.Vec
	for i := range t.slots {
		if t.slots[i].used && !t.slots[i].online {
			v = v.With(i)
		}
	}
	return v
}

// VmFor returns the export mask for path: every registered member whose
// exported prefixes cover it (the paper's per-path Vm, Section III-A4).
// Offline-but-not-dropped members are included — their cached locations
// remain valid.
func (t *Table) VmFor(path string) bitvec.Vec {
	t.mu.Lock()
	defer t.mu.Unlock()
	var v bitvec.Vec
	for i := range t.slots {
		if t.slots[i].used && t.slots[i].prefixes.Matches(path) {
			v = v.With(i)
		}
	}
	return v
}

// UpdateStats refreshes a member's load and free-space figures (from
// Pong reports).
func (t *Table) UpdateStats(index int, load uint32, free int64) {
	if index < 0 || index >= MaxMembers {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.slots[index]
	if s.used {
		s.load = load
		s.free = free
	}
}

// Select picks one online member among candidates according to policy
// and increments its selection count. ok=false means no online
// candidate exists.
func (t *Table) Select(candidates bitvec.Vec, policy Policy) (index int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	best := -1
	switch policy {
	case RoundRobin:
		// Scan from the cursor, wrapping, for the first online candidate.
		for k := 1; k <= MaxMembers; k++ {
			i := (t.rr + k) % MaxMembers
			if candidates.Has(i) && t.slots[i].used && t.slots[i].online {
				best = i
				t.rr = i
				break
			}
		}
	default:
		candidates.ForEach(func(i int) bool {
			s := &t.slots[i]
			if !s.used || !s.online {
				return true
			}
			if best < 0 {
				best = i
				return true
			}
			b := &t.slots[best]
			switch policy {
			case BySpace:
				if s.free > b.free {
					best = i
				}
			case ByFrequency:
				if s.selected < b.selected {
					best = i
				}
			default: // ByLoad
				if s.load < b.load {
					best = i
				}
			}
			return true
		})
	}
	if best < 0 {
		return 0, false
	}
	t.slots[best].selected++
	return best, true
}

// String renders a one-line-per-member summary (for the CLI tree view).
func (t *Table) String() string {
	ms := t.Members()
	out := ""
	for _, m := range ms {
		state := "online"
		if !m.Online {
			state = "offline"
		}
		out += fmt.Sprintf("[%2d] %-12s %-10s %-7s load=%-3d free=%d exports=%s\n",
			m.Index, m.Name, m.Role, state, m.Load, m.Free, m.Prefixes)
	}
	return out
}
