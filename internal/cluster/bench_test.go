package cluster

import (
	"fmt"
	"testing"

	"scalla/internal/bitvec"
	"scalla/internal/names"
	"scalla/internal/proto"
	"scalla/internal/vclock"
)

func benchTable(b *testing.B, n int) *Table {
	b.Helper()
	tb := New(Config{Clock: vclock.NewFake()})
	for i := 0; i < n; i++ {
		if _, _, err := tb.Login(Member{
			Name: fmt.Sprintf("n%d", i), Role: proto.RoleServer,
			DataAddr: fmt.Sprintf("n%d:1094", i),
			Prefixes: names.NewPrefixSet("/store", "/data"),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func BenchmarkVmFor(b *testing.B) {
	tb := benchTable(b, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.VmFor("/store/run/file.root")
	}
}

func BenchmarkSelectByLoad(b *testing.B) {
	tb := benchTable(b, 64)
	cand := bitvec.Full
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Select(cand, ByLoad)
	}
}

func BenchmarkLoginLogout(b *testing.B) {
	tb := New(Config{Clock: vclock.NewFake()})
	m := Member{Name: "x", Role: proto.RoleServer, Prefixes: names.NewPrefixSet("/")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx, _, err := tb.Login(m)
		if err != nil {
			b.Fatal(err)
		}
		tb.DropNow(idx)
	}
}
