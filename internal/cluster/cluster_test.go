package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/names"
	"scalla/internal/proto"
	"scalla/internal/vclock"
)

func member(name string, prefixes ...string) Member {
	return Member{
		Name: name, Role: proto.RoleServer,
		DataAddr: name + ":1094", CtlAddr: name + ":1213",
		Prefixes: names.NewPrefixSet(prefixes...),
	}
}

func TestLoginAssignsDistinctIndices(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		idx, isNew, err := tb.Login(member(fmt.Sprintf("n%d", i), "/store"))
		if err != nil || !isNew {
			t.Fatalf("login %d: idx=%d new=%v err=%v", i, idx, isNew, err)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
	if _, _, err := tb.Login(member("overflow", "/store")); err != ErrFull {
		t.Fatalf("65th login: %v, want ErrFull", err)
	}
	if tb.Count() != 64 {
		t.Errorf("Count = %d", tb.Count())
	}
}

func TestNewServerCallback(t *testing.T) {
	var mu sync.Mutex
	var events []int
	tb := New(Config{
		Clock:       vclock.NewFake(),
		OnNewServer: func(i int) { mu.Lock(); events = append(events, i); mu.Unlock() },
	})
	idx, _, _ := tb.Login(member("a", "/store"))
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 1 || events[0] != idx {
		t.Fatalf("events = %v", events)
	}
	// Same-exports reconnect: NOT a new server.
	_, isNew, _ := tb.Login(member("a", "/store"))
	if isNew {
		t.Error("same-export reconnect flagged as new")
	}
	mu.Lock()
	n = len(events)
	mu.Unlock()
	if n != 1 {
		t.Errorf("reconnect fired OnNewServer: %v", events)
	}
	// Changed exports: new server, same slot.
	idx2, isNew, _ := tb.Login(member("a", "/data"))
	if !isNew || idx2 != idx {
		t.Errorf("changed-export reconnect: idx=%d new=%v", idx2, isNew)
	}
	mu.Lock()
	n = len(events)
	mu.Unlock()
	if n != 2 {
		t.Errorf("changed-export reconnect must fire OnNewServer")
	}
}

func TestDisconnectKeepsSlotUntilDropDelay(t *testing.T) {
	fc := vclock.NewFake()
	var dropped []int
	var mu sync.Mutex
	tb := New(Config{
		DropDelay: 10 * time.Minute,
		Clock:     fc,
		OnDrop:    func(i int) { mu.Lock(); dropped = append(dropped, i); mu.Unlock() },
	})
	idx, _, _ := tb.Login(member("a", "/store"))
	tb.Disconnect(idx)

	if !tb.OfflineVec().Has(idx) {
		t.Fatal("member not in OfflineVec after disconnect")
	}
	if tb.OnlineVec().Has(idx) {
		t.Fatal("member still in OnlineVec")
	}
	// Still part of Vm while offline (cached locations stay valid).
	if !tb.VmFor("/store/x").Has(idx) {
		t.Fatal("offline member lost from Vm before drop")
	}

	fc.BlockUntil(1)
	fc.Advance(10 * time.Minute)
	waitUntil(t, func() bool { return tb.Count() == 0 })
	mu.Lock()
	defer mu.Unlock()
	if len(dropped) != 1 || dropped[0] != idx {
		t.Errorf("dropped = %v", dropped)
	}
	if tb.VmFor("/store/x").Has(idx) {
		t.Error("dropped member still in Vm")
	}
}

func TestReconnectCancelsDrop(t *testing.T) {
	fc := vclock.NewFake()
	tb := New(Config{DropDelay: 10 * time.Minute, Clock: fc})
	idx, _, _ := tb.Login(member("a", "/store"))
	tb.Disconnect(idx)
	fc.BlockUntil(1)
	fc.Advance(5 * time.Minute)
	_, isNew, _ := tb.Login(member("a", "/store"))
	if isNew {
		t.Fatal("in-window reconnect treated as new")
	}
	fc.Advance(10 * time.Minute)
	time.Sleep(10 * time.Millisecond) // allow a (wrong) drop to happen
	if tb.Count() != 1 {
		t.Fatal("reconnected member was dropped by the stale timer")
	}
	if !tb.OnlineVec().Has(idx) {
		t.Error("member not online after reconnect")
	}
}

func TestPostDropReconnectIsNewServer(t *testing.T) {
	fc := vclock.NewFake()
	tb := New(Config{DropDelay: time.Minute, Clock: fc})
	idx, _, _ := tb.Login(member("a", "/store"))
	tb.Disconnect(idx)
	fc.BlockUntil(1)
	fc.Advance(time.Minute)
	waitUntil(t, func() bool { return tb.Count() == 0 })
	_, isNew, err := tb.Login(member("a", "/store"))
	if err != nil || !isNew {
		t.Errorf("post-drop reconnect: new=%v err=%v", isNew, err)
	}
}

func TestVmForMatchesPrefixes(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	i1, _, _ := tb.Login(member("a", "/store"))
	i2, _, _ := tb.Login(member("b", "/store", "/data"))
	i3, _, _ := tb.Login(member("c", "/data"))

	if got := tb.VmFor("/store/f"); got != bitvec.Of(i1, i2) {
		t.Errorf("VmFor(/store/f) = %v", got)
	}
	if got := tb.VmFor("/data/f"); got != bitvec.Of(i2, i3) {
		t.Errorf("VmFor(/data/f) = %v", got)
	}
	if got := tb.VmFor("/other/f"); !got.IsEmpty() {
		t.Errorf("VmFor(/other/f) = %v", got)
	}
}

func TestSelectByLoad(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	i1, _, _ := tb.Login(member("a", "/store"))
	i2, _, _ := tb.Login(member("b", "/store"))
	tb.UpdateStats(i1, 90, 100)
	tb.UpdateStats(i2, 10, 100)
	idx, ok := tb.Select(bitvec.Of(i1, i2), ByLoad)
	if !ok || idx != i2 {
		t.Errorf("Select = %d, want least-loaded %d", idx, i2)
	}
	m, _ := tb.Member(i2)
	if m.Selected != 1 {
		t.Error("selection count not incremented")
	}
}

func TestSelectBySpace(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	i1, _, _ := tb.Login(member("a", "/store"))
	i2, _, _ := tb.Login(member("b", "/store"))
	tb.UpdateStats(i1, 0, 1000)
	tb.UpdateStats(i2, 0, 10)
	if idx, ok := tb.Select(bitvec.Of(i1, i2), BySpace); !ok || idx != i1 {
		t.Errorf("Select = %d, want roomiest %d", idx, i1)
	}
}

func TestSelectByFrequencySpreads(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	i1, _, _ := tb.Login(member("a", "/store"))
	i2, _, _ := tb.Login(member("b", "/store"))
	counts := map[int]int{}
	for k := 0; k < 10; k++ {
		idx, _ := tb.Select(bitvec.Of(i1, i2), ByFrequency)
		counts[idx]++
	}
	if counts[i1] != 5 || counts[i2] != 5 {
		t.Errorf("ByFrequency spread = %v", counts)
	}
}

func TestSelectRoundRobin(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	var idxs []int
	for i := 0; i < 3; i++ {
		idx, _, _ := tb.Login(member(fmt.Sprintf("n%d", i), "/store"))
		idxs = append(idxs, idx)
	}
	cand := bitvec.Of(idxs...)
	seen := map[int]int{}
	for k := 0; k < 9; k++ {
		idx, ok := tb.Select(cand, RoundRobin)
		if !ok {
			t.Fatal("no selection")
		}
		seen[idx]++
	}
	for _, i := range idxs {
		if seen[i] != 3 {
			t.Errorf("round robin uneven: %v", seen)
		}
	}
}

func TestSelectSkipsOffline(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	i1, _, _ := tb.Login(member("a", "/store"))
	i2, _, _ := tb.Login(member("b", "/store"))
	tb.Disconnect(i1)
	for k := 0; k < 5; k++ {
		if idx, ok := tb.Select(bitvec.Of(i1, i2), ByLoad); !ok || idx != i2 {
			t.Fatalf("Select = %d, want online %d", idx, i2)
		}
	}
	tb.Disconnect(i2)
	if _, ok := tb.Select(bitvec.Of(i1, i2), ByLoad); ok {
		t.Error("selected among all-offline candidates")
	}
}

func TestMemberSnapshotAndString(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	idx, _, _ := tb.Login(member("alpha", "/store"))
	m, ok := tb.Member(idx)
	if !ok || m.Name != "alpha" || m.DataAddr != "alpha:1094" || !m.Online {
		t.Errorf("Member = %+v", m)
	}
	if _, ok := tb.Member(63); ok {
		t.Error("empty slot reported as member")
	}
	if _, ok := tb.Member(-1); ok {
		t.Error("negative index accepted")
	}
	if s := tb.String(); len(s) == 0 {
		t.Error("String empty")
	}
}

func TestDropNow(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	idx, _, _ := tb.Login(member("a", "/store"))
	tb.DropNow(idx)
	if tb.Count() != 0 {
		t.Error("DropNow did not remove the member")
	}
	tb.DropNow(idx) // idempotent
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never true")
		}
		time.Sleep(time.Millisecond)
	}
}

func supMember(name string) Member {
	m := member(name, "/store")
	m.Role = proto.RoleSupervisor
	return m
}

// TestCapacityCapsLogins verifies that a narrower-than-64 cell fills at
// its configured Capacity, the lever StartCluster uses to make overflow
// reachable at any planned fanout.
func TestCapacityCapsLogins(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake(), Capacity: 2})
	for i := 0; i < 2; i++ {
		if _, _, err := tb.Login(member(fmt.Sprintf("n%d", i), "/store")); err != nil {
			t.Fatalf("login %d: %v", i, err)
		}
	}
	if _, _, err := tb.Login(member("n2", "/store")); err != ErrFull {
		t.Fatalf("login past capacity: %v, want ErrFull", err)
	}
	// A known name still re-logs in fine at capacity.
	if _, isNew, err := tb.Login(member("n1", "/store")); err != nil || isNew {
		t.Fatalf("re-login at capacity: new=%v err=%v", isNew, err)
	}
	// Out-of-range or over-capacity Capacity values clamp to MaxMembers.
	tb2 := New(Config{Clock: vclock.NewFake(), Capacity: MaxMembers + 7})
	for i := 0; i < MaxMembers; i++ {
		if _, _, err := tb2.Login(member(fmt.Sprintf("m%d", i), "/store")); err != nil {
			t.Fatalf("login %d under clamped capacity: %v", i, err)
		}
	}
	if _, _, err := tb2.Login(member("m-extra", "/store")); err != ErrFull {
		t.Fatalf("login past MaxMembers: %v, want ErrFull", err)
	}
}

// TestOverflowTarget covers the cell-overflow picker: a full cell with
// supervisor children round-robins overflow logins across the online
// ones; a leaf cell (servers only) has no target and must reject.
func TestOverflowTarget(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake(), Capacity: 4})
	supIdx := map[string]int{}
	for _, n := range []string{"supA", "supB"} {
		idx, _, err := tb.Login(supMember(n))
		if err != nil {
			t.Fatal(err)
		}
		supIdx[n] = idx
	}
	for _, n := range []string{"srvA", "srvB"} {
		if _, _, err := tb.Login(member(n, "/store")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := tb.Login(member("srvC", "/store")); err != ErrFull {
		t.Fatalf("want full cell before overflow, got %v", err)
	}
	// Successive picks alternate between the two supervisors.
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		addr, ok := tb.OverflowTarget()
		if !ok {
			t.Fatal("no overflow target in a cell with supervisors")
		}
		seen[addr]++
	}
	if seen["supA:1213"] != 2 || seen["supB:1213"] != 2 {
		t.Errorf("overflow picks not spread round-robin: %v", seen)
	}
	// An offline supervisor is skipped.
	tb.DisconnectManual(supIdx["supA"])
	for i := 0; i < 2; i++ {
		if addr, ok := tb.OverflowTarget(); !ok || addr != "supB:1213" {
			t.Errorf("pick %d with supA offline: %q ok=%v, want supB:1213", i, addr, ok)
		}
	}
	// A leaf cell has no target at all.
	leaf := New(Config{Clock: vclock.NewFake(), Capacity: 1})
	if _, _, err := leaf.Login(member("srvX", "/store")); err != nil {
		t.Fatal(err)
	}
	if addr, ok := leaf.OverflowTarget(); ok {
		t.Errorf("leaf cell produced overflow target %q", addr)
	}
}

// TestSlotReuseUnderDropRace races a member's re-login against the
// armed MaybeDrop from its disconnect, across every slot of a full
// table. Whichever side wins, the member must end the round registered
// and online: a re-login before the drop bumps the connection
// generation and voids the drop; a drop before the re-login just makes
// the login a fresh one. Run with -race.
func TestSlotReuseUnderDropRace(t *testing.T) {
	tb := New(Config{Clock: vclock.NewFake()})
	for i := 0; i < MaxMembers; i++ {
		if _, _, err := tb.Login(member(fmt.Sprintf("n%d", i), "/store")); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 8; round++ {
		var wg sync.WaitGroup
		for i := 0; i < MaxMembers; i++ {
			gen, ok := tb.DisconnectManual(i)
			if !ok {
				t.Fatalf("round %d: member %d not online", round, i)
			}
			wg.Add(2)
			name := fmt.Sprintf("n%d", i)
			go func() {
				defer wg.Done()
				tb.MaybeDrop(i, gen)
			}()
			go func() {
				defer wg.Done()
				if _, _, err := tb.Login(member(name, "/store")); err != nil {
					t.Errorf("round %d: re-login %s: %v", round, name, err)
				}
			}()
		}
		wg.Wait()
		sum := tb.Summary()
		if sum.Members != MaxMembers || sum.Online != MaxMembers {
			t.Fatalf("round %d: %+v, want %d online members", round, sum, MaxMembers)
		}
	}
}
