// Package vclock abstracts time for Scalla's core components.
//
// The paper's algorithms are saturated with wall-clock policy: 8-hour
// location-object lifetimes, 7.5-minute eviction windows, 5-second
// processing deadlines, 133 ms fast-response periods. Testing those
// against real time is hopeless, so every core component takes a Clock.
// Production code uses Real(); tests use a Fake clock they can advance
// deterministically.
package vclock

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies the time operations core components need.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once
	// d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// NewTicker returns a ticker firing every d. d must be positive.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the subset of time.Ticker the core needs.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// ---------------------------------------------------------------- real --

type realClock struct{}

// Real returns a Clock backed by the time package.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

type realTicker struct{ t *time.Ticker }

func (realClock) NewTicker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(d)}
}
func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// ---------------------------------------------------------------- fake --

// Fake is a manually advanced Clock. It is safe for concurrent use.
// The zero value is not usable; call NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
	seq     int // tiebreak so equal deadlines fire FIFO
}

type waiter struct {
	deadline time.Time
	seq      int
	ch       chan time.Time
	period   time.Duration // 0 for one-shot
	stopped  bool
}

// NewFake returns a Fake clock starting at a fixed, arbitrary epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(2012, 5, 21, 0, 0, 0, 0, time.UTC)}
}

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After returns a channel that fires when the fake clock has been
// advanced past d from now.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{deadline: f.now.Add(d), seq: f.seq, ch: make(chan time.Time, 1)}
	f.seq++
	if d <= 0 {
		w.ch <- f.now
		return w.ch
	}
	f.waiters = append(f.waiters, w)
	return w.ch
}

// Sleep blocks until the clock is advanced past d. It must be advanced
// from another goroutine.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

type fakeTicker struct {
	f *Fake
	w *waiter
}

// NewTicker returns a ticker driven by Advance.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{deadline: f.now.Add(d), seq: f.seq, ch: make(chan time.Time, 1), period: d}
	f.seq++
	f.waiters = append(f.waiters, w)
	return &fakeTicker{f: f, w: w}
}

func (t *fakeTicker) C() <-chan time.Time { return t.w.ch }

func (t *fakeTicker) Stop() {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	t.w.stopped = true
}

// WaiterCount returns the number of pending timers/tickers. Tests use it
// to ensure a component has armed its timer before advancing.
func (f *Fake) WaiterCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

// BlockUntil polls until at least n timers/tickers are pending.
func (f *Fake) BlockUntil(n int) {
	for f.WaiterCount() < n {
		time.Sleep(50 * time.Microsecond)
	}
}

// Advance moves the fake time forward by d, firing every timer and
// ticker whose deadline is reached, in deadline order. Ticker channels
// have capacity 1; a tick that finds the channel full is dropped, like
// time.Ticker.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		idx := -1
		for i, w := range f.waiters {
			if w.stopped {
				continue
			}
			if !w.deadline.After(target) {
				if idx == -1 || w.deadline.Before(f.waiters[idx].deadline) ||
					(w.deadline.Equal(f.waiters[idx].deadline) && w.seq < f.waiters[idx].seq) {
					idx = i
				}
			}
		}
		if idx == -1 {
			break
		}
		w := f.waiters[idx]
		f.now = w.deadline
		select {
		case w.ch <- f.now:
		default: // ticker consumer behind; drop tick
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
			w.seq = f.seq
			f.seq++
		} else {
			f.waiters = append(f.waiters[:idx], f.waiters[idx+1:]...)
		}
	}
	f.now = target
	f.compact()
	f.mu.Unlock()
}

// AdvanceTo moves the fake time to t (no-op if t is in the past).
func (f *Fake) AdvanceTo(t time.Time) {
	now := f.Now()
	if t.After(now) {
		f.Advance(t.Sub(now))
	}
}

func (f *Fake) compact() {
	live := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	f.waiters = live
	sort.SliceStable(f.waiters, func(i, j int) bool {
		return f.waiters[i].deadline.Before(f.waiters[j].deadline)
	})
}
