package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Property tests for the Fake clock contract the deterministic harness
// leans on (internal/detsim drives every component from one Fake, so
// these are load-bearing guarantees, not implementation trivia).

// TestFakeNowMonotonicUnderConcurrentAdvance asserts that no observer
// ever sees the fake time move backward while many goroutines advance
// it concurrently.
func TestFakeNowMonotonicUnderConcurrentAdvance(t *testing.T) {
	f := NewFake()
	var stop atomic.Bool
	var wg sync.WaitGroup

	var regressions atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := f.Now()
			for !stop.Load() {
				now := f.Now()
				if now.Before(last) {
					regressions.Add(1)
					return
				}
				last = now
			}
		}()
	}
	var adv sync.WaitGroup
	for a := 0; a < 8; a++ {
		adv.Add(1)
		go func(a int) {
			defer adv.Done()
			for i := 0; i < 200; i++ {
				f.Advance(time.Duration(1+(a+i)%5) * time.Millisecond)
			}
		}(a)
	}
	adv.Wait()
	stop.Store(true)
	wg.Wait()
	if n := regressions.Load(); n != 0 {
		t.Fatalf("observed %d time regressions", n)
	}
}

// TestFakeEqualDeadlineWaitersAllFireAtOneInstant registers several
// waiters with the same deadline and asserts one Advance fires every
// one of them with exactly the shared deadline timestamp — no waiter
// is lost to the tie and none observes a different instant.
func TestFakeEqualDeadlineWaitersAllFireAtOneInstant(t *testing.T) {
	f := NewFake()
	deadline := f.Now().Add(time.Second)
	const n = 8
	chans := make([]<-chan time.Time, n)
	for i := range chans {
		chans[i] = f.After(time.Second)
	}
	f.Advance(time.Second)
	for i, ch := range chans {
		select {
		case ts := <-ch:
			if !ts.Equal(deadline) {
				t.Errorf("waiter %d fired at %v, want %v", i, ts, deadline)
			}
		default:
			t.Errorf("waiter %d did not fire", i)
		}
	}
	if n := f.WaiterCount(); n != 0 {
		t.Fatalf("%d waiters left pending", n)
	}
}

// TestFakeEqualDeadlineTieBreakIsFIFO pins the tie-break rule Advance
// applies to equal deadlines: registration order (the seq field). The
// fire order is not observable through the buffered channels, so this
// is a white-box check that the registration sequence is strictly
// increasing — the property Advance's selection loop sorts on.
func TestFakeEqualDeadlineTieBreakIsFIFO(t *testing.T) {
	f := NewFake()
	for i := 0; i < 4; i++ {
		f.After(time.Second)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 1; i < len(f.waiters); i++ {
		a, b := f.waiters[i-1], f.waiters[i]
		if !a.deadline.Equal(b.deadline) {
			t.Fatalf("deadlines differ: %v vs %v", a.deadline, b.deadline)
		}
		if a.seq >= b.seq {
			t.Fatalf("seq not FIFO at %d: %d then %d", i, a.seq, b.seq)
		}
	}
}

// TestFakeTickerUnderConcurrentAdvance hammers one ticker from many
// advancing goroutines with a slow consumer and asserts the
// time.Ticker-like contract holds: Advance never blocks on the full
// channel (ticks drop instead), every delivered tick carries a strictly
// later timestamp than the one before, and at most one tick is left
// buffered at the end.
func TestFakeTickerUnderConcurrentAdvance(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(time.Millisecond)
	defer tk.Stop()

	var adv sync.WaitGroup
	for a := 0; a < 8; a++ {
		adv.Add(1)
		go func() {
			defer adv.Done()
			for i := 0; i < 100; i++ {
				f.Advance(time.Millisecond) // 800 periods total
			}
		}()
	}

	done := make(chan struct{})
	var ticks []time.Time
	go func() {
		defer close(done)
		for {
			select {
			case ts := <-tk.C():
				ticks = append(ticks, ts)
				time.Sleep(100 * time.Microsecond) // slow consumer: force drops
			case <-time.After(50 * time.Millisecond):
				return // advancing finished and the channel stayed quiet
			}
		}
	}()
	adv.Wait()
	<-done

	if len(ticks) == 0 {
		t.Fatal("no ticks delivered")
	}
	for i := 1; i < len(ticks); i++ {
		if !ticks[i].After(ticks[i-1]) {
			t.Fatalf("tick %d at %v not after tick %d at %v",
				i, ticks[i], i-1, ticks[i-1])
		}
	}
	// Everything drained; at most the single buffered tick may remain.
	if extra := len(tk.C()); extra > 1 {
		t.Fatalf("%d ticks buffered, channel capacity should bound it to 1", extra)
	}
}
