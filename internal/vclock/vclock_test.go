package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := Real()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(t0) {
		t.Error("real clock did not advance")
	}
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker never fired")
	}
}

func TestFakeNowStableWithoutAdvance(t *testing.T) {
	f := NewFake()
	if !f.Now().Equal(f.Now()) {
		t.Error("fake Now must not move on its own")
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake()
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired at 9s, want 10s")
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-ch:
		want := NewFake().Now().Add(10 * time.Second)
		if !at.Equal(want) {
			t.Errorf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("did not fire at 10s")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake()
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) must fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(negative) must fire immediately")
	}
}

func TestFakeOrderingAcrossWaiters(t *testing.T) {
	f := NewFake()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, d := range []time.Duration{3 * time.Second, time.Second, 2 * time.Second} {
		wg.Add(1)
		go func(i int, ch <-chan time.Time) {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, f.After(d))
	}
	f.BlockUntil(3)
	f.Advance(5 * time.Second)
	wg.Wait()
	// The goroutines may record out of order; check the fire times via a
	// deterministic re-run instead: waiter 1 (1s) must fire before 2 (2s)
	// before 0 (3s). Since goroutine scheduling can reorder appends, only
	// assert all three fired.
	if len(order) != 3 {
		t.Fatalf("fired %d waiters, want 3", len(order))
	}
}

func TestFakeSleep(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Minute)
		close(done)
	}()
	f.BlockUntil(1)
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	f.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never returned")
	}
}

func TestFakeTickerRepeats(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		f.Advance(time.Second)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestFakeTickerDropsWhenBehind(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	f.Advance(10 * time.Second) // consumer never reads; ticks coalesce
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Errorf("got %d buffered ticks, want 1 (capacity-1 coalescing)", n)
	}
}

func TestFakeTickerStop(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(time.Second)
	tk.Stop()
	f.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Error("stopped ticker fired")
	default:
	}
	if f.WaiterCount() != 0 {
		t.Errorf("WaiterCount = %d after Stop, want 0", f.WaiterCount())
	}
}

func TestFakeAdvanceTo(t *testing.T) {
	f := NewFake()
	t0 := f.Now()
	f.AdvanceTo(t0.Add(time.Hour))
	if got := f.Now().Sub(t0); got != time.Hour {
		t.Errorf("advanced %v, want 1h", got)
	}
	f.AdvanceTo(t0) // past; no-op
	if got := f.Now().Sub(t0); got != time.Hour {
		t.Errorf("AdvanceTo(past) moved clock to %v", got)
	}
}

func TestFakeTickerPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFake().NewTicker(0)
}

func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Sleep(time.Duration(1+i%7) * time.Second)
		}()
	}
	f.BlockUntil(32)
	f.Advance(10 * time.Second)
	wg.Wait() // must not deadlock
}
