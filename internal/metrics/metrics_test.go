package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
	c.Add(42)
	if c.Value() != 8042 {
		t.Errorf("Value = %d, want 8042", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if p50 > p90 || p90 > p99 {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p90, p99)
	}
	// Log-bucket estimate: p50 of uniform 1..1000us should land within
	// a factor of 2 of 500us (bucket lower bound).
	if p50 < 250*time.Microsecond || p50 > time.Millisecond {
		t.Errorf("p50 = %v, want within [250us, 1ms]", p50)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("Quantile(0/1) must be Min/Max")
	}
}

func TestHistogramQuantileClampedToMinMax(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != time.Second {
			t.Errorf("Quantile(%v) = %v, want 1s", q, got)
		}
	}
}

func TestHistogramTinyAndHugeDurations(t *testing.T) {
	var h Histogram
	h.Observe(time.Nanosecond) // below base: bucket 0
	h.Observe(10 * time.Hour)  // above top: clamped to last bucket
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != time.Nanosecond || h.Max() != 10*time.Hour {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Snapshot().String()
	if !strings.Contains(s, "n=1") {
		t.Errorf("Snapshot.String = %q", s)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("lookups")
	c2 := r.Counter("lookups")
	if c1 != c2 {
		t.Error("Counter must return the same instance for the same name")
	}
	c1.Inc()
	h := r.Histogram("latency")
	h.Observe(time.Millisecond)
	if r.Histogram("latency") != h {
		t.Error("Histogram must return the same instance for the same name")
	}
	dump := r.Dump()
	if !strings.Contains(dump, "lookups = 1") || !strings.Contains(dump, "latency") {
		t.Errorf("Dump = %q", dump)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}

// TestHistogramSnapshotUnderConcurrentObserve hammers Observe while
// taking snapshots and quantiles. Every snapshot must be internally
// consistent — it is taken under one lock acquisition, so concurrent
// Observes can never make its quantiles exceed its Max or its Count
// exceed what Min/Max have seen.
func TestHistogramSnapshotUnderConcurrentObserve(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration(i%1000+1) * time.Microsecond)
				i++
			}
		}(g)
	}

	for k := 0; k < 2000; k++ {
		s := h.Snapshot()
		// Zero-sample snapshots report all zeros, never garbage.
		if s.Count == 0 {
			if s.Mean != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
				t.Fatalf("empty snapshot not zeroed: %+v", s)
			}
			continue
		}
		if s.Min <= 0 || s.Max > time.Millisecond {
			t.Fatalf("snapshot out of observed range: %+v", s)
		}
		if s.P50 > s.P90 || s.P90 > s.P99 {
			t.Fatalf("quantiles not monotone: %+v", s)
		}
		if s.P50 < s.Min || s.P99 > s.Max {
			t.Fatalf("quantiles escape [min, max]: %+v", s)
		}
		// Direct Quantile calls race with Observe too.
		if q := h.Quantile(0.5); q < 0 {
			t.Fatalf("Quantile(0.5) = %v", q)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent: a final snapshot agrees with the accessors exactly.
	s := h.Snapshot()
	if s.Count != h.Count() || s.Min != h.Min() || s.Max != h.Max() {
		t.Fatalf("final snapshot %+v disagrees with accessors", s)
	}
}
