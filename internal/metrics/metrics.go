// Package metrics provides the counters and latency histograms used by
// the benchmark harness and by the daemons' status reporting.
//
// The histogram uses logarithmically spaced buckets (sub-microsecond to
// minutes) so the harness can report the latency shapes the paper quotes
// (50 µs per tree level, 100 µs server response, 133 ms guard window,
// 5 s full delay) without retaining every sample.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauges built on Counter, but the
// harness only uses non-negative deltas).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram records durations into log-spaced buckets.
// The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [nBuckets]int64
}

// Bucket i covers [base*ratio^i, base*ratio^(i+1)). base = 100ns,
// ratio = 2 → covers 100 ns .. ~100 ns * 2^40 ≈ 3 hours.
const (
	nBuckets = 44
	baseNs   = 100
)

func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < baseNs {
		return 0
	}
	b := int(math.Log2(float64(ns) / baseNs))
	if b >= nBuckets {
		return nBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket i.
func bucketLow(i int) time.Duration {
	return time.Duration(baseNs * math.Pow(2, float64(i)))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observed duration (0 if empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// lower bound of the containing bucket — a conservative estimate adequate
// for the order-of-magnitude comparisons in the harness.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked computes a quantile. Caller holds h.mu.
func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.count))
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum > rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count          int64
	Mean, Min, Max time.Duration
	P50, P90, P99  time.Duration
}

// Snapshot returns a point-in-time summary. All fields come from one
// consistent view of the histogram: concurrent Observes can never make
// a snapshot's P99 exceed its Max (or its Mean drift from its Count).
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{
		Count: h.count,
		Min:   h.min,
		Max:   h.max,
		P50:   h.quantileLocked(0.50),
		P90:   h.quantileLocked(0.90),
		P99:   h.quantileLocked(0.99),
	}
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
	}
	return s
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Registry is a named collection of counters and histograms, used by the
// daemons' status endpoints and by the bench harness.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ctrs: map[string]*Counter{}, hists: map[string]*Histogram{}}
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns (creating if needed) the histogram with the given name.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Visit calls fc for every counter and fh for every histogram, in
// unspecified order. Either callback may be nil. The registry lock is
// not held during the calls, so callbacks may use the registry freely.
func (r *Registry) Visit(fc func(name string, c *Counter), fh func(name string, h *Histogram)) {
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for n, c := range r.ctrs {
		ctrs[n] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	if fc != nil {
		for n, c := range ctrs {
			fc(n, c)
		}
	}
	if fh != nil {
		for n, h := range hists {
			fh(n, h)
		}
	}
}

// Dump renders all metrics, sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.ctrs {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, h := range r.hists {
		lines = append(lines, fmt.Sprintf("hist    %s : %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
