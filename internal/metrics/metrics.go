// Package metrics provides the counters and latency histograms used by
// the benchmark harness and by the daemons' status reporting.
//
// The histogram uses logarithmically spaced buckets (sub-microsecond to
// minutes) so the harness can report the latency shapes the paper quotes
// (50 µs per tree level, 100 µs server response, 133 ms guard window,
// 5 s full delay) without retaining every sample.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauges built on Counter, but the
// harness only uses non-negative deltas).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram records durations into log-spaced buckets.
// The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [nBuckets]int64
}

// Bucket i covers [base*ratio^i, base*ratio^(i+1)). base = 100ns,
// ratio = 2 → covers 100 ns .. ~100 ns * 2^40 ≈ 3 hours.
const (
	nBuckets = 44
	baseNs   = 100
)

func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < baseNs {
		return 0
	}
	b := int(math.Log2(float64(ns) / baseNs))
	if b >= nBuckets {
		return nBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket i.
func bucketLow(i int) time.Duration {
	return time.Duration(baseNs * math.Pow(2, float64(i)))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observed duration (0 if empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// lower bound of the containing bucket — a conservative estimate adequate
// for the order-of-magnitude comparisons in the harness.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked computes a quantile. Caller holds h.mu.
func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.count))
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum > rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count          int64
	Mean, Min, Max time.Duration
	P50, P90, P99  time.Duration
}

// Snapshot returns a point-in-time summary. All fields come from one
// consistent view of the histogram: concurrent Observes can never make
// a snapshot's P99 exceed its Max (or its Mean drift from its Count).
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{
		Count: h.count,
		Min:   h.min,
		Max:   h.max,
		P50:   h.quantileLocked(0.50),
		P90:   h.quantileLocked(0.90),
		P99:   h.quantileLocked(0.99),
	}
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
	}
	return s
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Registry is a named collection of counters and histograms, used by the
// daemons' status endpoints and by the bench harness.
//
// Look-ups are lock-free after the first registration of a name: the
// resolve hot path calls Counter/Histogram per request, so the maps are
// sync.Maps (write-once, read-mostly — exactly their sweet spot) rather
// than a mutex-guarded map that would serialize every request on one
// cache line.
type Registry struct {
	ctrs  sync.Map // string → *Counter
	hists sync.Map // string → *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.ctrs.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.ctrs.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Histogram returns (creating if needed) the histogram with the given name.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// Visit calls fc for every counter and fh for every histogram, in
// unspecified order. Either callback may be nil. No lock is held during
// the calls, so callbacks may use the registry freely.
func (r *Registry) Visit(fc func(name string, c *Counter), fh func(name string, h *Histogram)) {
	if fc != nil {
		r.ctrs.Range(func(k, v any) bool {
			fc(k.(string), v.(*Counter))
			return true
		})
	}
	if fh != nil {
		r.hists.Range(func(k, v any) bool {
			fh(k.(string), v.(*Histogram))
			return true
		})
	}
}

// Dump renders all metrics, sorted by name, one per line.
func (r *Registry) Dump() string {
	var lines []string
	r.Visit(
		func(name string, c *Counter) {
			lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
		},
		func(name string, h *Histogram) {
			lines = append(lines, fmt.Sprintf("hist    %s : %s", name, h.Snapshot()))
		},
	)
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
