// Package xrd implements the data server — Scalla's xrootd daemon.
//
// A data server owns a Store and serves the file-access plane:
// open/read/write/close/stat/unlink/prepare. Files that live only in
// the simulated Mass Storage System are staged on demand; clients asking
// for a staging file are told to wait and retry (the Vp path of the
// paper). The server tracks a load figure (open handles plus in-flight
// requests) that the cluster layer reports upward for server selection.
package xrd

import (
	"sync"
	"sync/atomic"

	"scalla/internal/mux"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// Config parameterizes a Server.
type Config struct {
	// Store backs the server. Required.
	Store *store.Store
	// ReadOnly refuses writes, creates, and unlinks.
	ReadOnly bool
	// StageWaitMillis is the retry hint sent with Wait responses while a
	// file stages. Default 300.
	StageWaitMillis uint32
	// Workers bounds how many requests execute concurrently across all
	// of the server's connections (the scheduled dispatch of DESIGN.md
	// §11). Default 8.
	Workers int
	// DispatchQueue bounds queued-but-not-executing data-plane requests
	// summed over all connections; arrivals beyond it are answered with
	// RetryAfter (the shed verdict of DESIGN.md §11). Default 1024.
	DispatchQueue int
	// RetryAfterMillis is the nominal shed backoff hint; each verdict
	// carries a jittered value around it. Default 100.
	RetryAfterMillis int
	// SchedSeed seeds the shed-jitter RNG so shed verdicts are
	// deterministic for a fixed arrival order.
	SchedSeed int64
	// Tracer, if set, records one span per dispatched request.
	Tracer *obs.Tracer
	// Logf, if set, receives debug logging.
	Logf func(format string, args ...any)
}

// Server is a data server. Create one with New, then Serve a listener.
type Server struct {
	cfg   Config
	sched *mux.Scheduler

	mu      sync.Mutex
	handles map[uint64]*handle
	nextFH  uint64

	inflight atomic.Int64
	closed   atomic.Bool

	opens        atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	staged       atomic.Int64 // Wait replies issued for staging files
}

// Stats is a snapshot of the data plane's cumulative op counters, used
// by the summary-monitoring stream and the status endpoints.
type Stats struct {
	OpenHandles  int   // handles currently open
	Inflight     int   // requests currently executing
	Opens        int64 // successful opens
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	Staged       int64 // Wait replies issued while files staged
}

type handle struct {
	path  string
	write bool
}

// New returns a Server over the given configuration.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("xrd: Config.Store is required")
	}
	if cfg.StageWaitMillis == 0 {
		cfg.StageWaitMillis = 300
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{
		cfg: cfg,
		sched: mux.NewScheduler(mux.SchedConfig{
			Workers:          cfg.Workers,
			QueueLimit:       cfg.DispatchQueue,
			RetryAfterMillis: cfg.RetryAfterMillis,
			Seed:             cfg.SchedSeed,
		}),
		handles: make(map[uint64]*handle),
	}
}

// Sched exposes the request scheduler for observability snapshots.
func (s *Server) Sched() *mux.Scheduler { return s.sched }

// Store returns the backing store.
func (s *Server) Store() *store.Store { return s.cfg.Store }

// Stats returns a snapshot of the cumulative op counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	h := len(s.handles)
	s.mu.Unlock()
	return Stats{
		OpenHandles:  h,
		Inflight:     int(s.inflight.Load()),
		Opens:        s.opens.Load(),
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Staged:       s.staged.Load(),
	}
}

// Load returns the current load figure used for server selection.
func (s *Server) Load() uint32 {
	s.mu.Lock()
	h := len(s.handles)
	s.mu.Unlock()
	return uint32(h) + uint32(s.inflight.Load())
}

// Serve accepts and handles connections until the listener fails
// (typically because it was closed). It blocks; run it in a goroutine.
func (s *Server) Serve(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go s.handleConn(conn)
	}
}

// Close marks the server closed, discards queued requests, and waits
// for in-flight handlers to return; existing connections then drain
// naturally.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.sched.Close()
}

func (s *Server) handleConn(conn transport.Conn) {
	defer conn.Close()
	// Handles are per-connection in spirit; track the ones opened here
	// so a dropped client leaks nothing. Concurrent workers append
	// under their own lock.
	var mineMu sync.Mutex
	var mine []uint64
	defer func() {
		s.mu.Lock()
		for _, fh := range mine {
			delete(s.handles, fh)
		}
		s.mu.Unlock()
	}()
	mux.Serve(conn, func(msg proto.Message, r mux.Responder) proto.Message {
		if s.closed.Load() {
			return nil
		}
		s.inflight.Add(1)
		reply, opened := s.dispatch(msg, r)
		s.inflight.Add(-1)
		if opened != 0 {
			mineMu.Lock()
			mine = append(mine, opened)
			mineMu.Unlock()
		}
		return reply
	}, mux.ServeOptions{
		Sched:  s.sched,
		Tracer: s.cfg.Tracer,
		OnError: func(err error) {
			s.cfg.Logf("xrd: bad frame from %s: %v", conn.RemoteAddr(), err)
		},
	})
}

// dispatch handles one request, returning the reply and, for successful
// opens, the issued handle. Reads reply through the responder's
// single-copy frame path and return nil.
func (s *Server) dispatch(msg proto.Message, r mux.Responder) (reply proto.Message, opened uint64) {
	switch m := msg.(type) {
	case proto.Open:
		return s.open(m)
	case proto.Read:
		return s.read(m, r), 0
	case proto.Write:
		return s.write(m), 0
	case proto.Trunc:
		return s.trunc(m), 0
	case proto.Close:
		return s.close(m), 0
	case proto.Stat:
		return s.stat(m), 0
	case proto.Unlink:
		return s.unlink(m), 0
	case proto.Prepare:
		return s.prepare(m), 0
	case proto.List:
		return s.list(m), 0
	case proto.Ping:
		return proto.Pong{Load: s.Load(), Free: s.cfg.Store.Free()}, 0
	default:
		return proto.Err{Code: proto.EInval, Msg: "unexpected message"}, 0
	}
}

func (s *Server) open(m proto.Open) (proto.Message, uint64) {
	st := s.cfg.Store
	if m.Create {
		if s.cfg.ReadOnly {
			return proto.Err{Code: proto.EIO, Msg: "read-only server"}, 0
		}
		if err := st.Create(m.Path); err == store.ErrExists {
			return proto.Err{Code: proto.EExist, Msg: "file exists"}, 0
		} else if err != nil {
			return proto.Err{Code: proto.EIO, Msg: err.Error()}, 0
		}
		return s.issue(m.Path, true, 0), 0
	}
	if m.Write && s.cfg.ReadOnly {
		return proto.Err{Code: proto.EIO, Msg: "read-only server"}, 0
	}
	info, err := st.Stat(m.Path)
	if err != nil {
		return proto.Err{Code: proto.ENoEnt, Msg: "no such file"}, 0
	}
	if !info.Online {
		// Kick staging and tell the client to come back.
		if _, err := st.Stage(m.Path); err != nil {
			return proto.Err{Code: proto.EIO, Msg: err.Error()}, 0
		}
		s.staged.Add(1)
		return proto.Wait{Millis: s.cfg.StageWaitMillis}, 0
	}
	msg, fh := s.issueMsg(m.Path, m.Write, info.Size)
	return msg, fh
}

func (s *Server) issue(path string, write bool, size int64) proto.Message {
	msg, _ := s.issueMsg(path, write, size)
	return msg
}

func (s *Server) issueMsg(path string, write bool, size int64) (proto.Message, uint64) {
	s.mu.Lock()
	s.nextFH++
	fh := s.nextFH
	s.handles[fh] = &handle{path: path, write: write}
	s.mu.Unlock()
	s.opens.Add(1)
	return proto.OpenOK{FH: fh, Size: size}, fh
}

func (s *Server) lookup(fh uint64) (*handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handles[fh]
	return h, ok
}

// read serves a Read through the single-copy path: the payload is
// copied from the store directly into a pooled, stream-tagged Data
// frame (no intermediate buffer) and sent through the responder. Only
// non-Data verdicts (wait, errors) come back as a reply message.
func (s *Server) read(m proto.Read, r mux.Responder) proto.Message {
	f, fallback := s.readFrame(m, r.Stream())
	if f == nil {
		return fallback
	}
	if err := r.SendFrame(f); err != nil {
		s.cfg.Logf("xrd: read reply failed: %v", err)
	}
	return nil
}

// readFrame builds the single-copy Data frame for a Read, or returns
// the non-Data verdict instead. The caller owns the returned frame.
func (s *Server) readFrame(m proto.Read, stream uint32) (*proto.Frame, proto.Message) {
	h, ok := s.lookup(m.FH)
	if !ok {
		return nil, proto.Err{Code: proto.EInval, Msg: "bad file handle"}
	}
	if m.N > transport.MaxFrame/2 {
		m.N = transport.MaxFrame / 2
	}
	f, dst := proto.StartDataFrame(stream, m.FH, int(m.N))
	n, eof, err := s.cfg.Store.ReadAtInto(h.path, m.Off, dst)
	switch err {
	case nil:
		f.FinishData(n, eof)
		s.reads.Add(1)
		s.bytesRead.Add(int64(n))
		return f, nil
	case store.ErrStaging:
		f.Release()
		s.staged.Add(1)
		return nil, proto.Wait{Millis: s.cfg.StageWaitMillis}
	case store.ErrNotFound:
		// The file vanished under the handle (deleted elsewhere). The
		// client recovers with a cache refresh (Section III-C1).
		f.Release()
		return nil, proto.Err{Code: proto.ENoEnt, Msg: "file removed"}
	default:
		f.Release()
		return nil, proto.Err{Code: proto.EIO, Msg: err.Error()}
	}
}

func (s *Server) write(m proto.Write) proto.Message {
	h, ok := s.lookup(m.FH)
	if !ok {
		return proto.Err{Code: proto.EInval, Msg: "bad file handle"}
	}
	if !h.write {
		return proto.Err{Code: proto.EInval, Msg: "handle is read-only"}
	}
	n, err := s.cfg.Store.WriteAt(h.path, m.Off, m.Bytes)
	switch err {
	case nil:
	case store.ErrOffline:
		// The file was staged out after open. Kick a stage-in and tell
		// the client to wait, the same Vp verdict reads get.
		s.cfg.Store.Stage(h.path)
		s.staged.Add(1)
		return proto.Wait{Millis: s.cfg.StageWaitMillis}
	case store.ErrNoSpace:
		return proto.Err{Code: proto.EIO, Msg: "no space left"}
	default:
		return proto.Err{Code: proto.EIO, Msg: err.Error()}
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(n))
	return proto.WriteOK{FH: m.FH, N: uint32(n)}
}

func (s *Server) trunc(m proto.Trunc) proto.Message {
	h, ok := s.lookup(m.FH)
	if !ok {
		return proto.Err{Code: proto.EInval, Msg: "bad file handle"}
	}
	if !h.write {
		return proto.Err{Code: proto.EInval, Msg: "handle is read-only"}
	}
	switch err := s.cfg.Store.Truncate(h.path, m.Size); err {
	case nil:
	case store.ErrOffline:
		s.cfg.Store.Stage(h.path)
		s.staged.Add(1)
		return proto.Wait{Millis: s.cfg.StageWaitMillis}
	default:
		return proto.Err{Code: proto.EIO, Msg: err.Error()}
	}
	return proto.TruncOK{FH: m.FH}
}

func (s *Server) close(m proto.Close) proto.Message {
	s.mu.Lock()
	_, ok := s.handles[m.FH]
	delete(s.handles, m.FH)
	s.mu.Unlock()
	if !ok {
		return proto.Err{Code: proto.EInval, Msg: "bad file handle"}
	}
	return proto.CloseOK{FH: m.FH}
}

func (s *Server) stat(m proto.Stat) proto.Message {
	info, err := s.cfg.Store.Stat(m.Path)
	if err != nil {
		return proto.StatOK{Exists: false}
	}
	return proto.StatOK{Exists: true, Size: info.Size, Online: info.Online}
}

func (s *Server) unlink(m proto.Unlink) proto.Message {
	if s.cfg.ReadOnly {
		return proto.Err{Code: proto.EIO, Msg: "read-only server"}
	}
	if err := s.cfg.Store.Unlink(m.Path); err != nil {
		return proto.Err{Code: proto.ENoEnt, Msg: "no such file"}
	}
	return proto.UnlinkOK{}
}

// prepare kicks staging for every named file that is offline here. The
// reply is immediate; staging proceeds in the background (Section
// III-B2).
func (s *Server) prepare(m proto.Prepare) proto.Message {
	queued := uint32(0)
	for _, p := range m.Paths {
		if s.cfg.Store.Has(p) && !s.cfg.Store.HasOnline(p) {
			if _, err := s.cfg.Store.Stage(p); err == nil {
				queued++
			}
		}
	}
	return proto.PrepareOK{Queued: queued}
}

// list reports this server's files under a prefix, feeding the Cluster
// Name Space daemon.
func (s *Server) list(m proto.List) proto.Message {
	infos := s.cfg.Store.List(m.Prefix)
	entries := make([]proto.Entry, len(infos))
	for i, in := range infos {
		entries[i] = proto.Entry{Path: in.Path, Size: in.Size, Online: in.Online}
	}
	return proto.ListOK{Entries: entries}
}

// Handles returns the number of open file handles (for tests and load
// inspection).
func (s *Server) Handles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.handles)
}
