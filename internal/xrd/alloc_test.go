package xrd

import (
	"testing"

	"scalla/internal/proto"
	"scalla/internal/store"
)

// allocRig builds a server with one open 1 MiB file, bypassing the
// network so the measurement isolates the read path itself.
func allocRig(tb testing.TB) (*Server, uint64) {
	tb.Helper()
	return allocRigStore(tb, store.New(store.Config{}))
}

// diskAllocRig is allocRig over the disk backend: the same measurement
// with the payload coming out of the kernel page cache via pread.
func diskAllocRig(tb testing.TB) (*Server, uint64) {
	tb.Helper()
	st, err := store.Open(store.Config{Root: tb.TempDir() + "/data", Fsync: store.FsyncNever})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st.Close() })
	return allocRigStore(tb, st)
}

func allocRigStore(tb testing.TB, st *store.Store) (*Server, uint64) {
	tb.Helper()
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if err := st.Put("/big", data); err != nil {
		tb.Fatal(err)
	}
	srv := New(Config{Store: st})
	reply, fh := srv.issueMsg("/big", false, int64(len(data)))
	if _, ok := reply.(proto.OpenOK); !ok {
		tb.Fatalf("open: %#v", reply)
	}
	return srv, fh
}

// TestReadFrameAllocsNothing pins the single-copy read path: after the
// frame pool warms up, building a 64 KiB Data frame must allocate
// nothing — the payload is copied from the store straight into a
// pooled frame (DESIGN.md §6.2, §8).
func TestReadFrameAllocsNothing(t *testing.T) {
	srv, fh := allocRig(t)
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	// Warm the frame pool outside the measurement.
	if f, bad := srv.readFrame(read, 7); bad != nil {
		t.Fatalf("warmup read failed: %#v", bad)
	} else {
		f.Release()
	}
	avg := testing.AllocsPerRun(100, func() {
		f, bad := srv.readFrame(read, 7)
		if bad != nil {
			t.Fatalf("read failed: %#v", bad)
		}
		f.Release()
	})
	if avg != 0 {
		t.Fatalf("readFrame allocates %.1f objects per 64 KiB read, want 0", avg)
	}
}

// TestDiskReadFrameAllocsNothing pins the same contract end to end on
// the disk backend: page cache → pooled frame is still one copy and
// zero allocations (the pread lands directly in the frame's payload
// slice). This is the bench-smoke gate for the disk data plane.
func TestDiskReadFrameAllocsNothing(t *testing.T) {
	srv, fh := diskAllocRig(t)
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	if f, bad := srv.readFrame(read, 7); bad != nil {
		t.Fatalf("warmup read failed: %#v", bad)
	} else {
		f.Release()
	}
	avg := testing.AllocsPerRun(100, func() {
		f, bad := srv.readFrame(read, 7)
		if bad != nil {
			t.Fatalf("read failed: %#v", bad)
		}
		f.Release()
	})
	if avg != 0 {
		t.Fatalf("disk readFrame allocates %.1f objects per 64 KiB read, want 0", avg)
	}
}

// BenchmarkReadFrame measures the zero-copy frame build for a 64 KiB
// read; ReportAllocs documents the 0 allocs/op claim in CI bench runs.
func BenchmarkReadFrame(b *testing.B) {
	srv, fh := allocRig(b)
	benchReadFrame(b, srv, fh)
}

// BenchmarkDiskReadFrame is the same measurement over the disk
// backend: each op is a real pread out of the page cache.
func BenchmarkDiskReadFrame(b *testing.B) {
	srv, fh := diskAllocRig(b)
	benchReadFrame(b, srv, fh)
}

func benchReadFrame(b *testing.B, srv *Server, fh uint64) {
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	b.ReportAllocs()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, bad := srv.readFrame(read, 7)
		if bad != nil {
			b.Fatalf("read failed: %#v", bad)
		}
		f.Release()
	}
}

// BenchmarkDiskReadFrameParallel runs the disk read path from GOMAXPROCS
// goroutines against one open file — the server-side form of "N
// concurrent streams against tmpfs". With no per-read locks on the read
// path it should scale close to linearly until memory bandwidth.
func BenchmarkDiskReadFrameParallel(b *testing.B) {
	srv, fh := diskAllocRig(b)
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	b.ReportAllocs()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f, bad := srv.readFrame(read, 7)
			if bad != nil {
				b.Errorf("read failed: %#v", bad)
				return
			}
			f.Release()
		}
	})
}
