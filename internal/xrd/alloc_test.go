package xrd

import (
	"testing"

	"scalla/internal/proto"
	"scalla/internal/store"
)

// allocRig builds a server with one open 1 MiB file, bypassing the
// network so the measurement isolates the read path itself.
func allocRig(tb testing.TB) (*Server, uint64) {
	tb.Helper()
	st := store.New(store.Config{})
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if err := st.Put("/big", data); err != nil {
		tb.Fatal(err)
	}
	srv := New(Config{Store: st})
	reply, fh := srv.issueMsg("/big", false, int64(len(data)))
	if _, ok := reply.(proto.OpenOK); !ok {
		tb.Fatalf("open: %#v", reply)
	}
	return srv, fh
}

// TestReadFrameAllocsNothing pins the single-copy read path: after the
// frame pool warms up, building a 64 KiB Data frame must allocate
// nothing — the payload is copied from the store straight into a
// pooled frame (DESIGN.md §6.2, §8).
func TestReadFrameAllocsNothing(t *testing.T) {
	srv, fh := allocRig(t)
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	// Warm the frame pool outside the measurement.
	if f, bad := srv.readFrame(read, 7); bad != nil {
		t.Fatalf("warmup read failed: %#v", bad)
	} else {
		f.Release()
	}
	avg := testing.AllocsPerRun(100, func() {
		f, bad := srv.readFrame(read, 7)
		if bad != nil {
			t.Fatalf("read failed: %#v", bad)
		}
		f.Release()
	})
	if avg != 0 {
		t.Fatalf("readFrame allocates %.1f objects per 64 KiB read, want 0", avg)
	}
}

// BenchmarkReadFrame measures the zero-copy frame build for a 64 KiB
// read; ReportAllocs documents the 0 allocs/op claim in CI bench runs.
func BenchmarkReadFrame(b *testing.B) {
	srv, fh := allocRig(b)
	read := proto.Read{FH: fh, Off: 0, N: 64 << 10}
	b.ReportAllocs()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, bad := srv.readFrame(read, 7)
		if bad != nil {
			b.Fatalf("read failed: %#v", bad)
		}
		f.Release()
	}
}
