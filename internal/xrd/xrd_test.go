package xrd

import (
	"testing"
	"time"

	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// rig builds a server over an in-process network and returns a dialed
// client connection plus the store.
func rig(t *testing.T, cfg Config) (transport.Conn, *store.Store) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = store.New(store.Config{StageDelay: 20 * time.Millisecond, Clock: vclock.Real()})
	}
	n := transport.NewInProc(transport.InProcConfig{})
	l, err := n.Listen("xrd")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cfg)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	conn, err := n.Dial("xrd")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, cfg.Store
}

func rpc(t *testing.T, c transport.Conn, m proto.Message) proto.Message {
	t.Helper()
	if err := c.Send(proto.Marshal(m)); err != nil {
		t.Fatal(err)
	}
	frame, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := proto.Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestOpenReadClose(t *testing.T) {
	conn, st := rig(t, Config{})
	st.Put("/f", []byte("hello world"))

	r := rpc(t, conn, proto.Open{Path: "/f"})
	ok, isOK := r.(proto.OpenOK)
	if !isOK || ok.Size != 11 {
		t.Fatalf("open reply = %#v", r)
	}

	r = rpc(t, conn, proto.Read{FH: ok.FH, Off: 6, N: 100})
	data, isData := r.(proto.Data)
	if !isData || string(data.Bytes) != "world" || !data.EOF {
		t.Fatalf("read reply = %#v", r)
	}

	r = rpc(t, conn, proto.Close{FH: ok.FH})
	if _, isClosed := r.(proto.CloseOK); !isClosed {
		t.Fatalf("close reply = %#v", r)
	}
	// Reading a closed handle fails.
	r = rpc(t, conn, proto.Read{FH: ok.FH, Off: 0, N: 1})
	if e, isErr := r.(proto.Err); !isErr || e.Code != proto.EInval {
		t.Fatalf("read-after-close reply = %#v", r)
	}
}

func TestOpenMissingFile(t *testing.T) {
	conn, _ := rig(t, Config{})
	r := rpc(t, conn, proto.Open{Path: "/ghost"})
	if e, isErr := r.(proto.Err); !isErr || e.Code != proto.ENoEnt {
		t.Fatalf("reply = %#v", r)
	}
}

func TestCreateWriteReadBack(t *testing.T) {
	conn, _ := rig(t, Config{})
	r := rpc(t, conn, proto.Open{Path: "/new", Create: true})
	ok, isOK := r.(proto.OpenOK)
	if !isOK {
		t.Fatalf("create reply = %#v", r)
	}
	r = rpc(t, conn, proto.Write{FH: ok.FH, Off: 0, Bytes: []byte("data!")})
	if w, isW := r.(proto.WriteOK); !isW || w.N != 5 {
		t.Fatalf("write reply = %#v", r)
	}
	r = rpc(t, conn, proto.Read{FH: ok.FH, Off: 0, N: 10})
	if d, isD := r.(proto.Data); !isD || string(d.Bytes) != "data!" {
		t.Fatalf("readback reply = %#v", r)
	}

	// Exclusive create: a second create fails.
	r = rpc(t, conn, proto.Open{Path: "/new", Create: true})
	if e, isErr := r.(proto.Err); !isErr || e.Code != proto.EExist {
		t.Fatalf("duplicate create reply = %#v", r)
	}
}

func TestWriteOnReadOnlyHandleRefused(t *testing.T) {
	conn, st := rig(t, Config{})
	st.Put("/f", []byte("x"))
	ok := rpc(t, conn, proto.Open{Path: "/f"}).(proto.OpenOK)
	r := rpc(t, conn, proto.Write{FH: ok.FH, Off: 0, Bytes: []byte("y")})
	if e, isErr := r.(proto.Err); !isErr || e.Code != proto.EInval {
		t.Fatalf("reply = %#v", r)
	}
}

func TestReadOnlyServer(t *testing.T) {
	conn, st := rig(t, Config{ReadOnly: true})
	st.Put("/f", []byte("x"))
	if e, ok := rpc(t, conn, proto.Open{Path: "/c", Create: true}).(proto.Err); !ok || e.Code != proto.EIO {
		t.Error("create allowed on read-only server")
	}
	if e, ok := rpc(t, conn, proto.Open{Path: "/f", Write: true}).(proto.Err); !ok || e.Code != proto.EIO {
		t.Error("write-open allowed on read-only server")
	}
	if e, ok := rpc(t, conn, proto.Unlink{Path: "/f"}).(proto.Err); !ok || e.Code != proto.EIO {
		t.Error("unlink allowed on read-only server")
	}
	// Reads still fine.
	if _, ok := rpc(t, conn, proto.Open{Path: "/f"}).(proto.OpenOK); !ok {
		t.Error("read-open refused on read-only server")
	}
}

func TestStagingOpenWaitsThenSucceeds(t *testing.T) {
	conn, st := rig(t, Config{StageWaitMillis: 10})
	st.PutOffline("/tape", []byte("archived"))

	r := rpc(t, conn, proto.Open{Path: "/tape"})
	w, isWait := r.(proto.Wait)
	if !isWait || w.Millis != 10 {
		t.Fatalf("reply = %#v, want Wait{10}", r)
	}
	// Retry until online (stage delay 20ms).
	deadline := time.Now().Add(5 * time.Second)
	for {
		r = rpc(t, conn, proto.Open{Path: "/tape"})
		if ok, isOK := r.(proto.OpenOK); isOK {
			d := rpc(t, conn, proto.Read{FH: ok.FH, Off: 0, N: 100}).(proto.Data)
			if string(d.Bytes) != "archived" {
				t.Fatalf("staged content = %q", d.Bytes)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("file never came online")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTruncateHandle(t *testing.T) {
	conn, st := rig(t, Config{})
	st.Put("/f", []byte("0123456789"))
	ok := rpc(t, conn, proto.Open{Path: "/f", Write: true}).(proto.OpenOK)
	if _, isOK := rpc(t, conn, proto.Trunc{FH: ok.FH, Size: 4}).(proto.TruncOK); !isOK {
		t.Fatal("truncate failed")
	}
	d := rpc(t, conn, proto.Read{FH: ok.FH, N: 100}).(proto.Data)
	if string(d.Bytes) != "0123" {
		t.Fatalf("after truncate: %q", d.Bytes)
	}
	// Read-only handles may not truncate.
	ro := rpc(t, conn, proto.Open{Path: "/f"}).(proto.OpenOK)
	if e, isErr := rpc(t, conn, proto.Trunc{FH: ro.FH, Size: 0}).(proto.Err); !isErr || e.Code != proto.EInval {
		t.Error("read-only truncate allowed")
	}
	if e, isErr := rpc(t, conn, proto.Trunc{FH: 9999, Size: 0}).(proto.Err); !isErr || e.Code != proto.EInval {
		t.Error("bad handle truncate allowed")
	}
}

func TestStatAndUnlink(t *testing.T) {
	conn, st := rig(t, Config{})
	st.Put("/f", []byte("1234"))
	st.PutOffline("/t", []byte("56"))

	if s := rpc(t, conn, proto.Stat{Path: "/f"}).(proto.StatOK); !s.Exists || !s.Online || s.Size != 4 {
		t.Errorf("stat online = %+v", s)
	}
	if s := rpc(t, conn, proto.Stat{Path: "/t"}).(proto.StatOK); !s.Exists || s.Online || s.Size != 2 {
		t.Errorf("stat offline = %+v", s)
	}
	if s := rpc(t, conn, proto.Stat{Path: "/none"}).(proto.StatOK); s.Exists {
		t.Errorf("stat missing = %+v", s)
	}
	if _, ok := rpc(t, conn, proto.Unlink{Path: "/f"}).(proto.UnlinkOK); !ok {
		t.Error("unlink failed")
	}
	if s := rpc(t, conn, proto.Stat{Path: "/f"}).(proto.StatOK); s.Exists {
		t.Error("file survives unlink")
	}
}

func TestPrepareStagesOfflineFiles(t *testing.T) {
	conn, st := rig(t, Config{})
	st.PutOffline("/t1", []byte("1"))
	st.PutOffline("/t2", []byte("2"))
	st.Put("/on", []byte("3"))

	r := rpc(t, conn, proto.Prepare{Paths: []string{"/t1", "/t2", "/on", "/none"}})
	p, ok := r.(proto.PrepareOK)
	if !ok || p.Queued != 2 {
		t.Fatalf("prepare reply = %#v, want Queued=2", r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !(st.HasOnline("/t1") && st.HasOnline("/t2")) {
		if time.Now().After(deadline) {
			t.Fatal("prepare never staged the files")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPingReportsLoad(t *testing.T) {
	conn, st := rig(t, Config{})
	st.Put("/f", []byte("x"))
	rpc(t, conn, proto.Open{Path: "/f"})
	p, ok := rpc(t, conn, proto.Ping{}).(proto.Pong)
	if !ok {
		t.Fatal("no pong")
	}
	if p.Load == 0 {
		t.Error("load must count the open handle")
	}
	if p.Free == 0 {
		t.Error("free space missing")
	}
}

func TestHandlesCleanedUpOnDisconnect(t *testing.T) {
	n := transport.NewInProc(transport.InProcConfig{})
	l, _ := n.Listen("xrd")
	st := store.New(store.Config{})
	st.Put("/f", []byte("x"))
	srv := New(Config{Store: st})
	go srv.Serve(l)
	defer l.Close()

	conn, _ := n.Dial("xrd")
	conn.Send(proto.Marshal(proto.Open{Path: "/f"}))
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if srv.Handles() != 1 {
		t.Fatalf("Handles = %d", srv.Handles())
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Handles() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("handles leaked after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBadFrameDropsConnection(t *testing.T) {
	conn, _ := rig(t, Config{})
	conn.Send([]byte{0xFF, 0xFF})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := conn.Recv(); err != nil {
			return // connection torn down, as expected
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived garbage frame")
		}
	}
}
