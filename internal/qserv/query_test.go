package qserv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseForms(t *testing.T) {
	cases := []struct {
		in      string
		agg     AggKind
		col     string
		nPreds  int
		limit   int
		wantErr bool
	}{
		{"COUNT", AggCount, "", 0, 0, false},
		{"count where mag < 20", AggCount, "", 1, 0, false},
		{"COUNT WHERE mag < 20 AND ra >= 100 AND decl != 0", AggCount, "", 3, 0, false},
		{"SUM mag WHERE decl < 0", AggSum, "mag", 1, 0, false},
		{"AVG mag", AggAvg, "mag", 0, 0, false},
		{"MIN ra", AggMin, "ra", 0, 0, false},
		{"MAX decl", AggMax, "decl", 0, 0, false},
		{"SELECT WHERE objectid = 5 LIMIT 10", AggSelect, "", 1, 10, false},
		{"SELECT", AggSelect, "", 0, 0, false},
		{"", 0, "", 0, 0, true},
		{"DROP TABLE", 0, "", 0, 0, true},
		{"SUM", 0, "", 0, 0, true},
		{"SUM nope", 0, "", 0, 0, true},
		{"COUNT WHERE mag", 0, "", 0, 0, true},
		{"COUNT WHERE mag <> 3", 0, "", 0, 0, true},
		{"COUNT WHERE mag < abc", 0, "", 0, 0, true},
		{"COUNT LIMIT 5", 0, "", 0, 0, true},
		{"SELECT LIMIT", 0, "", 0, 0, true},
		{"SELECT LIMIT -1", 0, "", 0, 0, true},
		{"COUNT extra junk", 0, "", 0, 0, true},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if q.Agg != c.agg || q.Col != c.col || len(q.Preds) != c.nPreds || q.Limit != c.limit {
			t.Errorf("Parse(%q) = %+v", c.in, q)
		}
	}
}

func TestExecuteCount(t *testing.T) {
	c := &Chunk{ID: 0, NumRA: 1, Rows: []Row{
		{ObjectID: 1, Mag: 18}, {ObjectID: 2, Mag: 21}, {ObjectID: 3, Mag: 24},
	}}
	q, _ := Parse("COUNT WHERE mag < 22")
	if p := Execute(q, c); p.Count != 2 {
		t.Errorf("Count = %d", p.Count)
	}
	q, _ = Parse("COUNT")
	if p := Execute(q, c); p.Count != 3 {
		t.Errorf("Count = %d", p.Count)
	}
}

func TestExecuteAggregates(t *testing.T) {
	c := &Chunk{Rows: []Row{{Mag: 10}, {Mag: 20}, {Mag: 30}}}
	q, _ := Parse("SUM mag")
	if p := Execute(q, c); p.Sum != 60 {
		t.Errorf("Sum = %v", p.Sum)
	}
	q, _ = Parse("MIN mag")
	if p := Execute(q, c); p.Min != 10 {
		t.Errorf("Min = %v", p.Min)
	}
	q, _ = Parse("MAX mag")
	if p := Execute(q, c); p.Max != 30 {
		t.Errorf("Max = %v", p.Max)
	}
}

func TestExecuteSelectLimit(t *testing.T) {
	c := GenChunk(0, 1, 100, 42)
	q, _ := Parse("SELECT LIMIT 7")
	p := Execute(q, c)
	if len(p.Rows) != 7 {
		t.Errorf("Rows = %d", len(p.Rows))
	}
	if p.Count != 100 {
		t.Errorf("Count = %d (counts all matches, rows capped)", p.Count)
	}
}

func TestMergeAvgAcrossChunks(t *testing.T) {
	q, _ := Parse("AVG mag")
	parts := []Partial{
		{Count: 2, Sum: 40, Min: 15, Max: 25},
		{Count: 3, Sum: 30, Min: 5, Max: 20},
		{Count: 0},
	}
	r := Merge(q, parts)
	if r.Count != 5 || math.Abs(r.Value-14) > 1e-9 {
		t.Errorf("Merge AVG = %+v", r)
	}
	qmin, _ := Parse("MIN mag")
	if r := Merge(qmin, parts); r.Value != 5 {
		t.Errorf("Merge MIN = %+v", r)
	}
	qmax, _ := Parse("MAX mag")
	if r := Merge(qmax, parts); r.Value != 25 {
		t.Errorf("Merge MAX = %+v", r)
	}
}

func TestMergeSelectRespectsLimit(t *testing.T) {
	q, _ := Parse("SELECT LIMIT 3")
	parts := []Partial{
		{Count: 2, Rows: []Row{{ObjectID: 1}, {ObjectID: 2}}},
		{Count: 2, Rows: []Row{{ObjectID: 3}, {ObjectID: 4}}},
	}
	r := Merge(q, parts)
	if len(r.Rows) != 3 {
		t.Errorf("merged rows = %d", len(r.Rows))
	}
}

func TestPartialCodecRoundTrip(t *testing.T) {
	p := Partial{Count: 3, Sum: 1.5, Min: -2.25, Max: 99,
		Rows: []Row{{ObjectID: 7, RA: 1.5, Decl: -3.25, Mag: 21.125}}}
	got, err := DecodePartial(EncodePartial(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != p.Count || got.Sum != p.Sum || got.Min != p.Min || got.Max != p.Max {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Rows) != 1 || got.Rows[0] != p.Rows[0] {
		t.Errorf("rows mismatch: %+v", got.Rows)
	}
}

func TestPartialCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodePartial([]byte("what")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodePartial([]byte("count 1 sum 0 min 0 max 0 rows 2\n1 2 3 4\n")); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func TestTaskCodec(t *testing.T) {
	data := EncodeTask(42, "COUNT WHERE mag < 20")
	qid, text, err := DecodeTask(data)
	if err != nil || qid != 42 || text != "COUNT WHERE mag < 20" {
		t.Fatalf("DecodeTask = %d, %q, %v", qid, text, err)
	}
	// Stale tail from a longer earlier submission is ignored.
	longer := EncodeTask(1, "SELECT WHERE objectid = 123456789 LIMIT 100")
	shorter := EncodeTask(2, "COUNT")
	mixed := append(append([]byte{}, shorter...), longer[len(shorter):]...)
	qid, text, err = DecodeTask(mixed)
	if err != nil || qid != 2 || text != "COUNT" {
		t.Fatalf("stale-tail DecodeTask = %d, %q, %v", qid, text, err)
	}
	if _, _, err := DecodeTask([]byte("junk")); err == nil {
		t.Error("garbage task accepted")
	}
	if _, _, err := DecodeTask([]byte("QSERV1 1 100\nshort")); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestGenChunkDeterministicAndInStripe(t *testing.T) {
	a := GenChunk(3, 8, 500, 1)
	b := GenChunk(3, 8, 500, 1)
	if len(a.Rows) != 500 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	lo, hi := a.RARange()
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatal("generation not deterministic")
		}
		if a.Rows[i].RA < lo || a.Rows[i].RA >= hi {
			t.Fatalf("row RA %v outside stripe [%v,%v)", a.Rows[i].RA, lo, hi)
		}
	}
}

func TestChunksForRA(t *testing.T) {
	if got := ChunksForRA(8, 0, 360); len(got) != 8 {
		t.Errorf("full sky = %v", got)
	}
	if got := ChunksForRA(8, 50, 100); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("partial = %v", got)
	}
	if got := ChunksForRA(8, 100, 50); len(got) != 2 {
		t.Errorf("swapped bounds = %v", got)
	}
}

func TestParseWithin(t *testing.T) {
	q, err := Parse("COUNT WHERE WITHIN 180 -30 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Cones) != 1 || q.Cones[0] != (Cone{RA: 180, Decl: -30, Radius: 2.5}) {
		t.Fatalf("cones = %+v", q.Cones)
	}
	q, err = Parse("SELECT WHERE mag < 20 AND WITHIN 10 0 1 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || len(q.Cones) != 1 || q.Limit != 5 {
		t.Fatalf("query = %+v", q)
	}
	for _, bad := range []string{
		"COUNT WHERE WITHIN 1 2",      // missing radius
		"COUNT WHERE WITHIN a b c",    // non-numeric
		"COUNT WHERE WITHIN 1 2 -0.5", // negative radius
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestConeContains(t *testing.T) {
	c := Cone{RA: 100, Decl: 20, Radius: 1}
	if !c.Contains(Row{RA: 100, Decl: 20}) {
		t.Error("cone must contain its center")
	}
	if !c.Contains(Row{RA: 100.5, Decl: 20}) {
		t.Error("0.47° separation inside 1° cone")
	}
	if c.Contains(Row{RA: 100, Decl: 22}) {
		t.Error("2° separation outside 1° cone")
	}
	// RA compression toward the pole: at decl 80, 3° of RA is only
	// ~0.52° of true separation.
	p := Cone{RA: 0, Decl: 80, Radius: 1}
	if !p.Contains(Row{RA: 3, Decl: 80}) {
		t.Error("RA compression near the pole not honored")
	}
}

func TestChunksForCone(t *testing.T) {
	// A 1° cone at the equator at RA 100 with 8 chunks (45° stripes)
	// touches only chunk 2.
	got := ChunksForCone(8, Cone{RA: 100, Decl: 0, Radius: 1})
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("chunks = %v, want [2]", got)
	}
	// A cone straddling a stripe boundary touches both.
	got = ChunksForCone(8, Cone{RA: 45, Decl: 0, Radius: 1})
	if len(got) != 2 {
		t.Errorf("boundary cone chunks = %v", got)
	}
	// A cone around RA 0 wraps to the last chunk.
	got = ChunksForCone(8, Cone{RA: 0.2, Decl: 0, Radius: 1})
	found7 := false
	for _, id := range got {
		if id == 7 {
			found7 = true
		}
	}
	if !found7 {
		t.Errorf("wrap-around cone chunks = %v, want chunk 7 included", got)
	}
	// A polar cone covers every stripe.
	got = ChunksForCone(8, Cone{RA: 0, Decl: 89.5, Radius: 1})
	if len(got) != 8 {
		t.Errorf("polar cone chunks = %v", got)
	}
}

// Property: a cone search via chunk pruning equals a brute-force scan
// of all chunks.
func TestPropConePruningExact(t *testing.T) {
	const nChunks = 8
	chunks := make([]*Chunk, nChunks)
	for i := range chunks {
		chunks[i] = GenChunk(i, nChunks, 400, 5)
	}
	cones := []Cone{
		{RA: 100, Decl: 0, Radius: 3},
		{RA: 0.5, Decl: -45, Radius: 5},
		{RA: 359, Decl: 88, Radius: 4},
	}
	for _, cone := range cones {
		q := Query{Agg: AggCount, Cones: []Cone{cone}}
		var all, pruned int64
		for _, c := range chunks {
			all += Execute(q, c).Count
		}
		for _, id := range ChunksForCone(nChunks, cone) {
			pruned += Execute(q, chunks[id]).Count
		}
		if all != pruned {
			t.Errorf("cone %+v: pruned count %d != full count %d", cone, pruned, all)
		}
	}
}

// Property: Execute + Merge over partitioned data equals Execute over
// the concatenation (distributed execution is exact).
func TestPropDistributedEqualsLocal(t *testing.T) {
	queries := []string{
		"COUNT",
		"COUNT WHERE mag < 20",
		"SUM mag WHERE decl > 0",
		"AVG ra",
		"MIN mag WHERE ra < 180",
		"MAX decl",
	}
	f := func(seed int64) bool {
		const nChunks = 4
		chunks := make([]*Chunk, nChunks)
		var all Chunk
		all.NumRA = 1
		for i := range chunks {
			chunks[i] = GenChunk(i, nChunks, 200, seed)
			all.Rows = append(all.Rows, chunks[i].Rows...)
		}
		for _, qs := range queries {
			q, err := Parse(qs)
			if err != nil {
				return false
			}
			var parts []Partial
			for _, c := range chunks {
				parts = append(parts, Execute(q, c))
			}
			dist := Merge(q, parts)
			local := Merge(q, []Partial{Execute(q, &all)})
			if dist.Count != local.Count {
				t.Logf("%s: count %d != %d", qs, dist.Count, local.Count)
				return false
			}
			if math.Abs(dist.Value-local.Value) > 1e-6 {
				t.Logf("%s: value %v != %v", qs, dist.Value, local.Value)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
