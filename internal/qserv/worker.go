package qserv

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// WorkerConfig assembles a Qserv worker: a Scalla data server hosting a
// set of catalog chunks.
type WorkerConfig struct {
	// Name is the worker's Scalla node identity.
	Name string
	// Net supplies transport.
	Net transport.Network
	// Parents are the manager control addresses the worker logs into.
	Parents []string
	// Chunks are the catalog partitions this worker hosts.
	Chunks []*Chunk
	// StageDelay passes through to the backing store (unused by Qserv
	// proper, but the store requires a value).
	StageDelay time.Duration
}

// Worker is a Qserv worker node. It publishes one marker file per
// hosted chunk; query submissions arrive as writes to those markers and
// results are deposited as files the master reads back.
type Worker struct {
	cfg    WorkerConfig
	node   *cmsd.Node
	store  *store.Store
	mu     sync.Mutex
	chunks map[int]*Chunk

	executed sync.Map // qid → chunk, for observability in tests
}

// NewWorker builds and starts the worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	w := &Worker{cfg: cfg, chunks: make(map[int]*Chunk)}
	st := store.New(store.Config{
		StageDelay: cfg.StageDelay,
		OnWrite:    w.onWrite,
	})
	w.store = st
	for _, c := range cfg.Chunks {
		w.chunks[c.ID] = c
		// Publish the chunk: the marker's existence in the Scalla
		// namespace is the only membership/config mechanism.
		st.Put(MarkerPath(c.ID), []byte(fmt.Sprintf("chunk %d rows %d\n", c.ID, len(c.Rows))))
	}
	node, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: cfg.Name, Role: proto.RoleServer,
		DataAddr: cfg.Name + ":data",
		Parents:  cfg.Parents,
		Prefixes: []string{"/qserv"},
		Net:      cfg.Net, Store: st,
		ReconnectDelay: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	w.node = node
	return w, node.Start()
}

// Stop shuts the worker down.
func (w *Worker) Stop() { w.node.Stop() }

// Node returns the underlying Scalla node.
func (w *Worker) Node() *cmsd.Node { return w.node }

// Store returns the worker's backing store.
func (w *Worker) Store() *store.Store { return w.store }

// ChunkIDs returns the chunks this worker hosts.
func (w *Worker) ChunkIDs() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, 0, len(w.chunks))
	for id := range w.chunks {
		out = append(out, id)
	}
	return out
}

// Executed reports whether the worker ran query qid (test helper).
func (w *Worker) Executed(qid uint64) bool {
	_, ok := w.executed.Load(qid)
	return ok
}

// onWrite fires after any client write. A write to a chunk marker is a
// query submission: decode, execute over the chunk, deposit the result
// file.
func (w *Worker) onWrite(path string) {
	if !strings.HasPrefix(path, "/qserv/chunk_") || strings.Contains(path, "/result/") {
		return
	}
	var chunkID int
	if _, err := fmt.Sscanf(path, "/qserv/chunk_%d", &chunkID); err != nil {
		return
	}
	w.mu.Lock()
	chunk, ok := w.chunks[chunkID]
	w.mu.Unlock()
	if !ok {
		return
	}
	data, _, err := w.store.ReadAt(path, 0, 1<<20)
	if err != nil {
		return
	}
	qid, text, err := DecodeTask(data)
	if err != nil {
		return // not (yet) a complete submission
	}
	q, err := Parse(text)
	if err != nil {
		// Deposit the error so the master does not hang polling.
		w.store.Put(ResultPath(chunkID, qid), []byte("error "+err.Error()+"\n"))
		return
	}
	partial := Execute(q, chunk)
	w.store.Put(ResultPath(chunkID, qid), EncodePartial(partial))
	w.executed.Store(qid, chunkID)
}
