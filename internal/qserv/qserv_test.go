package qserv

import (
	"math"
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/transport"
)

// buildQserv assembles a manager, nWorkers workers sharing numChunks
// chunks round-robin, and a master.
func buildQserv(t *testing.T, nWorkers, numChunks, rowsPerChunk int) (*Master, []*Worker, []*Chunk) {
	t.Helper()
	net := transport.NewInProc(transport.InProcConfig{})
	mgr, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: "mgr:data", CtlAddr: "mgr:ctl", Net: net,
		Core: cmsd.Config{
			Cache:     cache.Config{InitialBuckets: 89},
			Queue:     respq.Config{Period: 20 * time.Millisecond},
			FullDelay: 150 * time.Millisecond,
		},
		PingInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	chunks := make([]*Chunk, numChunks)
	for i := range chunks {
		chunks[i] = GenChunk(i, numChunks, rowsPerChunk, 12345)
	}
	var workers []*Worker
	for wi := 0; wi < nWorkers; wi++ {
		var mine []*Chunk
		for ci := wi; ci < numChunks; ci += nWorkers {
			mine = append(mine, chunks[ci])
		}
		w, err := NewWorker(WorkerConfig{
			Name: "worker" + string(rune('A'+wi)), Net: net,
			Parents: []string{"mgr:ctl"}, Chunks: mine,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		workers = append(workers, w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Core().Table().Count() < nWorkers {
		if time.Now().After(deadline) {
			t.Fatal("workers never joined")
		}
		time.Sleep(time.Millisecond)
	}
	m := NewMaster(MasterConfig{
		Net: net, Managers: []string{"mgr:data"},
		PollInterval: 10 * time.Millisecond,
	})
	t.Cleanup(m.Close)
	return m, workers, chunks
}

func allChunkIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func oracle(t *testing.T, queryText string, chunks []*Chunk) Result {
	t.Helper()
	q, err := Parse(queryText)
	if err != nil {
		t.Fatal(err)
	}
	var parts []Partial
	for _, c := range chunks {
		parts = append(parts, Execute(q, c))
	}
	return Merge(q, parts)
}

func TestDistributedCountMatchesOracle(t *testing.T) {
	m, _, chunks := buildQserv(t, 3, 6, 300)
	const q = "COUNT WHERE mag < 20"
	got, err := m.Query(q, allChunkIDs(len(chunks)))
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, q, chunks)
	if got.Count != want.Count {
		t.Fatalf("distributed count = %d, oracle = %d", got.Count, want.Count)
	}
	if got.Count == 0 {
		t.Fatal("degenerate workload: zero matches")
	}
}

func TestDistributedAvg(t *testing.T) {
	m, _, chunks := buildQserv(t, 2, 4, 250)
	const q = "AVG mag WHERE decl > 0"
	got, err := m.Query(q, allChunkIDs(len(chunks)))
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, q, chunks)
	if math.Abs(got.Value-want.Value) > 1e-9 || got.Count != want.Count {
		t.Fatalf("AVG = %+v, oracle %+v", got, want)
	}
}

func TestRegionQueryTouchesOnlyCoveringChunks(t *testing.T) {
	m, workers, chunks := buildQserv(t, 2, 8, 100)
	// RA [0, 90) covers chunks 0 and 1 of 8.
	got, err := m.QueryRegion("COUNT", len(chunks), 0, 89.9)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, "COUNT", chunks[:2])
	if got.Count != want.Count {
		t.Fatalf("region count = %d, want %d", got.Count, want.Count)
	}
	// Exactly one query executed per covered chunk, none elsewhere.
	executed := 0
	for _, w := range workers {
		if w.Executed(1) {
			executed++
		}
	}
	if executed == 0 {
		t.Error("no worker recorded the execution")
	}
}

func TestSelectRowsComeBack(t *testing.T) {
	m, _, chunks := buildQserv(t, 2, 4, 100)
	got, err := m.Query("SELECT WHERE mag < 19 LIMIT 5", allChunkIDs(len(chunks)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) == 0 || len(got.Rows) > 5 {
		t.Fatalf("rows = %d", len(got.Rows))
	}
	for _, r := range got.Rows {
		if r.Mag >= 19 {
			t.Errorf("row %+v violates predicate", r)
		}
	}
}

func TestQueryConeDispatch(t *testing.T) {
	m, _, chunks := buildQserv(t, 2, 8, 300)
	cone := Cone{RA: 100, Decl: 0, Radius: 3}
	got, err := m.QueryCone("COUNT", len(chunks), cone)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: brute-force over every chunk.
	q := Query{Agg: AggCount, Cones: []Cone{cone}}
	var want int64
	for _, c := range chunks {
		want += Execute(q, c).Count
	}
	if got.Count != want {
		t.Fatalf("cone count = %d, want %d", got.Count, want)
	}
	if want == 0 {
		t.Fatal("degenerate cone: zero objects")
	}
}

func TestQueryBadSyntaxFailsFast(t *testing.T) {
	m, _, _ := buildQserv(t, 1, 1, 10)
	if _, err := m.Query("DROP TABLE objects", []int{0}); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestQueryUnknownChunkFails(t *testing.T) {
	m, _, _ := buildQserv(t, 1, 2, 10)
	_, err := m.Query("COUNT", []int{99})
	if err == nil {
		t.Fatal("query over unpublished chunk succeeded")
	}
}

func TestSequentialQueriesReuseChannels(t *testing.T) {
	m, _, chunks := buildQserv(t, 2, 4, 100)
	for i := 0; i < 3; i++ {
		got, err := m.Query("COUNT", allChunkIDs(len(chunks)))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Count != int64(4*100) {
			t.Fatalf("query %d count = %d", i, got.Count)
		}
	}
}
