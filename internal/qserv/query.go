package qserv

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The query language is a deliberately small subset of what Qserv pushes
// to its workers — single-table scans with conjunctive predicates and a
// final aggregate:
//
//	COUNT [WHERE <pred> [AND <pred>]...]
//	SUM <col> [WHERE ...]
//	AVG <col> [WHERE ...]
//	MIN <col> / MAX <col> [WHERE ...]
//	SELECT [WHERE ...] [LIMIT n]
//
// Columns: objectid, ra, decl, mag. Operators: < <= > >= = !=.
// A predicate may also be a spatial cone search — the archetypal
// astronomical retrieval ("all facts near this position"):
//
//	WITHIN <ra> <decl> <radius-degrees>

// AggKind is the aggregate a query computes.
type AggKind int

const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	AggSelect
)

// Pred is one comparison predicate.
type Pred struct {
	Col string
	Op  string
	Val float64
}

// Cone is a spherical cone-search predicate: objects within Radius
// degrees of (RA, Decl).
type Cone struct {
	RA, Decl, Radius float64
}

// Query is a parsed query.
type Query struct {
	Agg   AggKind
	Col   string // for SUM/AVG/MIN/MAX
	Preds []Pred
	Cones []Cone
	Limit int // for SELECT; 0 = unlimited
}

var validCols = map[string]bool{"objectid": true, "ra": true, "decl": true, "mag": true}

// Parse parses the query text.
func Parse(text string) (Query, error) {
	toks := strings.Fields(strings.ToLower(text))
	if len(toks) == 0 {
		return Query{}, fmt.Errorf("qserv: empty query")
	}
	var q Query
	i := 0
	switch toks[i] {
	case "count":
		q.Agg = AggCount
		i++
	case "sum", "avg", "min", "max":
		switch toks[i] {
		case "sum":
			q.Agg = AggSum
		case "avg":
			q.Agg = AggAvg
		case "min":
			q.Agg = AggMin
		case "max":
			q.Agg = AggMax
		}
		i++
		if i >= len(toks) || !validCols[toks[i]] {
			return Query{}, fmt.Errorf("qserv: %s requires a column", toks[i-1])
		}
		q.Col = toks[i]
		i++
	case "select":
		q.Agg = AggSelect
		i++
	default:
		return Query{}, fmt.Errorf("qserv: unknown verb %q", toks[i])
	}

	if i < len(toks) && toks[i] == "where" {
		i++
		for {
			if i < len(toks) && toks[i] == "within" {
				if i+4 > len(toks) {
					return Query{}, fmt.Errorf("qserv: WITHIN needs ra decl radius")
				}
				vals := make([]float64, 3)
				for k := 0; k < 3; k++ {
					v, err := strconv.ParseFloat(toks[i+1+k], 64)
					if err != nil {
						return Query{}, fmt.Errorf("qserv: bad WITHIN literal %q", toks[i+1+k])
					}
					vals[k] = v
				}
				if vals[2] <= 0 {
					return Query{}, fmt.Errorf("qserv: WITHIN radius must be positive")
				}
				q.Cones = append(q.Cones, Cone{RA: vals[0], Decl: vals[1], Radius: vals[2]})
				i += 4
			} else {
				if i+3 > len(toks) {
					return Query{}, fmt.Errorf("qserv: truncated predicate")
				}
				col, op, valStr := toks[i], toks[i+1], toks[i+2]
				if !validCols[col] {
					return Query{}, fmt.Errorf("qserv: unknown column %q", col)
				}
				switch op {
				case "<", "<=", ">", ">=", "=", "!=":
				default:
					return Query{}, fmt.Errorf("qserv: unknown operator %q", op)
				}
				val, err := strconv.ParseFloat(valStr, 64)
				if err != nil {
					return Query{}, fmt.Errorf("qserv: bad literal %q", valStr)
				}
				q.Preds = append(q.Preds, Pred{Col: col, Op: op, Val: val})
				i += 3
			}
			if i < len(toks) && toks[i] == "and" {
				i++
				continue
			}
			break
		}
	}
	if i < len(toks) && toks[i] == "limit" {
		if q.Agg != AggSelect {
			return Query{}, fmt.Errorf("qserv: LIMIT only applies to SELECT")
		}
		i++
		if i >= len(toks) {
			return Query{}, fmt.Errorf("qserv: LIMIT requires a count")
		}
		n, err := strconv.Atoi(toks[i])
		if err != nil || n < 0 {
			return Query{}, fmt.Errorf("qserv: bad LIMIT %q", toks[i])
		}
		q.Limit = n
		i++
	}
	if i != len(toks) {
		return Query{}, fmt.Errorf("qserv: trailing tokens %v", toks[i:])
	}
	return q, nil
}

func colValue(r Row, col string) float64 {
	switch col {
	case "objectid":
		return float64(r.ObjectID)
	case "ra":
		return r.RA
	case "decl":
		return r.Decl
	default: // mag
		return r.Mag
	}
}

func (p Pred) match(r Row) bool {
	v := colValue(r, p.Col)
	switch p.Op {
	case "<":
		return v < p.Val
	case "<=":
		return v <= p.Val
	case ">":
		return v > p.Val
	case ">=":
		return v >= p.Val
	case "=":
		return v == p.Val
	default: // !=
		return v != p.Val
	}
}

// Contains reports whether the row's position lies inside the cone,
// using the spherical law of cosines.
func (c Cone) Contains(r Row) bool {
	const deg = math.Pi / 180
	d1, d2 := c.Decl*deg, r.Decl*deg
	dRA := (r.RA - c.RA) * deg
	cosSep := math.Sin(d1)*math.Sin(d2) + math.Cos(d1)*math.Cos(d2)*math.Cos(dRA)
	if cosSep > 1 {
		cosSep = 1
	} else if cosSep < -1 {
		cosSep = -1
	}
	return math.Acos(cosSep) <= c.Radius*deg
}

func (q Query) match(r Row) bool {
	for _, p := range q.Preds {
		if !p.match(r) {
			return false
		}
	}
	for _, c := range q.Cones {
		if !c.Contains(r) {
			return false
		}
	}
	return true
}

// ChunksForCone returns the chunk IDs whose RA stripes can contain
// objects inside the cone. The RA window widens by 1/cos(decl) toward
// the poles; near-pole cones conservatively cover all chunks.
func ChunksForCone(numChunks int, c Cone) []int {
	const deg = math.Pi / 180
	cosD := math.Cos(c.Decl * deg)
	if cosD <= math.Sin(c.Radius*deg) {
		// The cone encircles a pole: every RA stripe may contribute.
		out := make([]int, numChunks)
		for i := range out {
			out[i] = i
		}
		return out
	}
	half := c.Radius / cosD
	lo, hi := c.RA-half, c.RA+half
	w := 360.0 / float64(numChunks)
	seen := map[int]bool{}
	var out []int
	add := func(idx int) {
		idx = ((idx % numChunks) + numChunks) % numChunks
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	for x := math.Floor(lo / w); x <= math.Floor(hi/w); x++ {
		add(int(x))
	}
	return out
}

// Partial is the per-chunk partial result a worker produces; partials
// from many chunks merge into a final Result at the master.
type Partial struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Rows  []Row // SELECT only
}

// Execute runs q over one chunk, producing its partial result.
func Execute(q Query, c *Chunk) Partial {
	p := Partial{}
	first := true
	for _, r := range c.Rows {
		if !q.match(r) {
			continue
		}
		p.Count++
		switch q.Agg {
		case AggSelect:
			if q.Limit == 0 || len(p.Rows) < q.Limit {
				p.Rows = append(p.Rows, r)
			}
		case AggSum, AggAvg, AggMin, AggMax:
			v := colValue(r, q.Col)
			p.Sum += v
			if first || v < p.Min {
				p.Min = v
			}
			if first || v > p.Max {
				p.Max = v
			}
			first = false
		}
	}
	return p
}

// Result is the merged answer to a distributed query.
type Result struct {
	Count int64
	Value float64 // SUM/AVG/MIN/MAX value
	Rows  []Row   // SELECT
}

// Merge folds per-chunk partials into the final result for q.
func Merge(q Query, parts []Partial) Result {
	var res Result
	sum := 0.0
	first := true
	minV, maxV := 0.0, 0.0
	for _, p := range parts {
		res.Count += p.Count
		sum += p.Sum
		if p.Count > 0 {
			if first || p.Min < minV {
				minV = p.Min
			}
			if first || p.Max > maxV {
				maxV = p.Max
			}
			first = false
		}
		if q.Agg == AggSelect {
			for _, r := range p.Rows {
				if q.Limit == 0 || len(res.Rows) < q.Limit {
					res.Rows = append(res.Rows, r)
				}
			}
		}
	}
	switch q.Agg {
	case AggSum:
		res.Value = sum
	case AggAvg:
		if res.Count > 0 {
			res.Value = sum / float64(res.Count)
		}
	case AggMin:
		res.Value = minV
	case AggMax:
		res.Value = maxV
	}
	return res
}

// ----------------------------------------------------- wire formats --

// EncodePartial renders a partial as the result-file payload.
func EncodePartial(p Partial) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "count %d sum %.10g min %.10g max %.10g rows %d\n",
		p.Count, p.Sum, p.Min, p.Max, len(p.Rows))
	for _, r := range p.Rows {
		fmt.Fprintf(&b, "%d %.10g %.10g %.10g\n", r.ObjectID, r.RA, r.Decl, r.Mag)
	}
	return []byte(b.String())
}

// DecodePartial parses a result-file payload.
func DecodePartial(data []byte) (Partial, error) {
	var p Partial
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 {
		return p, fmt.Errorf("qserv: empty partial")
	}
	var nRows int
	if _, err := fmt.Sscanf(lines[0], "count %d sum %g min %g max %g rows %d",
		&p.Count, &p.Sum, &p.Min, &p.Max, &nRows); err != nil {
		return p, fmt.Errorf("qserv: bad partial header %q: %w", lines[0], err)
	}
	if nRows != len(lines)-1 {
		return p, fmt.Errorf("qserv: partial claims %d rows, has %d", nRows, len(lines)-1)
	}
	for _, ln := range lines[1:] {
		var r Row
		if _, err := fmt.Sscanf(ln, "%d %g %g %g", &r.ObjectID, &r.RA, &r.Decl, &r.Mag); err != nil {
			return p, fmt.Errorf("qserv: bad row %q: %w", ln, err)
		}
		p.Rows = append(p.Rows, r)
	}
	return p, nil
}

// EncodeTask frames a query submission written into a chunk's marker
// file: a fixed header carrying the query id and payload length, so a
// shorter resubmission is never confused with stale tail bytes from an
// earlier, longer one.
func EncodeTask(qid uint64, queryText string) []byte {
	return []byte(fmt.Sprintf("QSERV1 %d %d\n%s", qid, len(queryText), queryText))
}

// DecodeTask parses a marker-file payload.
func DecodeTask(data []byte) (qid uint64, queryText string, err error) {
	s := string(data)
	nl := strings.IndexByte(s, '\n')
	if nl < 0 {
		return 0, "", fmt.Errorf("qserv: task missing header")
	}
	var n int
	if _, err := fmt.Sscanf(s[:nl], "QSERV1 %d %d", &qid, &n); err != nil {
		return 0, "", fmt.Errorf("qserv: bad task header %q: %w", s[:nl], err)
	}
	body := s[nl+1:]
	if len(body) < n {
		return 0, "", fmt.Errorf("qserv: task body truncated: %d < %d", len(body), n)
	}
	return qid, body[:n], nil
}
