// Package qserv reproduces the paper's Section IV-B: Qserv, the LSST
// prototype astronomical query system, using Scalla as its distributed
// dispatch layer.
//
// Workers are ordinary Scalla data servers that "publish" one marker
// file per data partition (chunk). A master locates the marker through
// the Scalla namespace — which guarantees a channel to a worker hosting
// that partition — writes the query into it, and reads the result back
// as another file. There is deliberately no cluster-membership
// configuration anywhere in the master: Scalla's data→host mapping is
// the only directory, exactly as the paper describes.
//
// The per-worker query engine (the paper used MySQL) is replaced by a
// small in-memory scan/aggregate engine over a synthetic catalog, which
// preserves everything Qserv needs from it: execute a chunk query,
// produce bytes.
package qserv

import (
	"fmt"
	"math/rand"
)

// Row is one object observation in the synthetic catalog: a thin
// LSST-like schema (position, magnitude).
type Row struct {
	ObjectID int64
	RA       float64 // right ascension, degrees [0, 360)
	Decl     float64 // declination, degrees [-90, 90)
	Mag      float64 // apparent magnitude
}

// Chunk is one spatial partition of the catalog. Chunks stripe the sky
// by right ascension: chunk i of n covers RA [i*360/n, (i+1)*360/n).
type Chunk struct {
	ID    int
	NumRA int // total chunks in the striping
	Rows  []Row
}

// RARange returns the right-ascension interval this chunk covers.
func (c *Chunk) RARange() (lo, hi float64) {
	w := 360.0 / float64(c.NumRA)
	return float64(c.ID) * w, float64(c.ID+1) * w
}

// GenChunk deterministically generates a chunk with nRows synthetic
// objects whose positions fall inside the chunk's RA stripe.
func GenChunk(id, numChunks, nRows int, seed int64) *Chunk {
	r := rand.New(rand.NewSource(seed + int64(id)*7919))
	c := &Chunk{ID: id, NumRA: numChunks, Rows: make([]Row, nRows)}
	lo, hi := c.RARange()
	for i := range c.Rows {
		c.Rows[i] = Row{
			ObjectID: int64(id)*1_000_000 + int64(i),
			RA:       lo + r.Float64()*(hi-lo),
			Decl:     -90 + r.Float64()*180,
			Mag:      15 + r.Float64()*10,
		}
	}
	return c
}

// ChunksForRA returns the chunk IDs whose stripes intersect [raLo, raHi]
// out of numChunks total stripes.
func ChunksForRA(numChunks int, raLo, raHi float64) []int {
	if raLo > raHi {
		raLo, raHi = raHi, raLo
	}
	w := 360.0 / float64(numChunks)
	first := int(raLo / w)
	last := int(raHi / w)
	if first < 0 {
		first = 0
	}
	if last >= numChunks {
		last = numChunks - 1
	}
	var out []int
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}

// MarkerPath is the Scalla path a worker publishes for a chunk. Opening
// it for write is how a master reaches the worker hosting the chunk.
func MarkerPath(chunk int) string {
	return fmt.Sprintf("/qserv/chunk_%06d", chunk)
}

// ResultPath is where a worker deposits the result of query qid over a
// chunk.
func ResultPath(chunk int, qid uint64) string {
	return fmt.Sprintf("/qserv/result/chunk_%06d/q%d", chunk, qid)
}
