package qserv

import "testing"

// The per-chunk scan rate of the stand-in query engine (the paper's
// MySQL substitute): rows/second over a predicate scan.
func BenchmarkExecuteCount(b *testing.B) {
	c := GenChunk(0, 1, 100_000, 1)
	q, err := Parse("COUNT WHERE mag < 20 AND decl > -45")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(c.Rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Execute(q, c)
	}
}

func BenchmarkExecuteSelect(b *testing.B) {
	c := GenChunk(0, 1, 100_000, 1)
	q, _ := Parse("SELECT WHERE mag < 16 LIMIT 100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Execute(q, c)
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("COUNT WHERE mag < 20 AND ra >= 100 AND decl != 0"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialCodec(b *testing.B) {
	p := Partial{Count: 12345, Sum: 6789.25, Min: 1, Max: 99,
		Rows: []Row{{ObjectID: 1, RA: 2, Decl: 3, Mag: 4}}}
	enc := EncodePartial(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePartial(enc); err != nil {
			b.Fatal(err)
		}
	}
}
