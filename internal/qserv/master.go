package qserv

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/client"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// MasterConfig parameterizes a Master.
type MasterConfig struct {
	// Net supplies transport.
	Net transport.Network
	// Managers are the Scalla manager data addresses.
	Managers []string
	// PollInterval paces result polling. Default 20 ms.
	PollInterval time.Duration
	// ResultTimeout bounds how long one chunk's result is awaited.
	// Default 30 s.
	ResultTimeout time.Duration
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	if c.ResultTimeout <= 0 {
		c.ResultTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	return c
}

// Master dispatches queries across the chunks of the catalog. It holds
// no worker list and no cluster configuration: everything is discovered
// through Scalla's namespace, as the paper emphasizes for Qserv.
type Master struct {
	cfg MasterConfig
	cl  *client.Client
	qid atomic.Uint64
}

// NewMaster returns a Master speaking to the given managers.
func NewMaster(cfg MasterConfig) *Master {
	cfg = cfg.withDefaults()
	return &Master{
		cfg: cfg,
		cl: client.New(client.Config{
			Net: cfg.Net, Managers: cfg.Managers,
			Clock: cfg.Clock,
		}),
	}
}

// Close releases the master's connections.
func (m *Master) Close() { m.cl.Close() }

// Client exposes the underlying Scalla client (examples use it to poke
// at the namespace directly).
func (m *Master) Client() *client.Client { return m.cl }

// Query runs queryText over the given chunks and merges the partial
// results. Chunks execute in parallel; each chunk's work is dispatched
// to whichever worker publishes that chunk's marker.
func (m *Master) Query(queryText string, chunks []int) (Result, error) {
	q, err := Parse(queryText)
	if err != nil {
		return Result{}, err
	}
	qid := m.qid.Add(1)

	type outcome struct {
		partial Partial
		err     error
	}
	outs := make([]outcome, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := m.queryChunk(queryText, chunk, qid)
			outs[i] = outcome{p, err}
		}()
	}
	wg.Wait()

	parts := make([]Partial, 0, len(chunks))
	for i, o := range outs {
		if o.err != nil {
			return Result{}, fmt.Errorf("qserv: chunk %d: %w", chunks[i], o.err)
		}
		parts = append(parts, o.partial)
	}
	return Merge(q, parts), nil
}

// QueryRegion runs queryText over the chunks covering [raLo, raHi],
// given the catalog's total stripe count.
func (m *Master) QueryRegion(queryText string, numChunks int, raLo, raHi float64) (Result, error) {
	return m.Query(queryText, ChunksForRA(numChunks, raLo, raHi))
}

// QueryCone runs a cone search: the quick-retrieval pattern the paper
// cites ("retrieve all facts for a single object"). Only the chunks
// whose RA stripes intersect the cone are dispatched.
func (m *Master) QueryCone(queryText string, numChunks int, cone Cone) (Result, error) {
	q, err := Parse(queryText)
	if err != nil {
		return Result{}, err
	}
	q.Cones = append(q.Cones, cone)
	// Re-render is unnecessary: send the original text plus the cone as
	// an extra WITHIN clause.
	sep := " WHERE "
	if len(q.Preds) > 0 || len(q.Cones) > 1 || strings.Contains(strings.ToLower(queryText), "where") {
		sep = " AND "
	}
	text := queryText + sep + fmt.Sprintf("WITHIN %g %g %g", cone.RA, cone.Decl, cone.Radius)
	// LIMIT must stay at the end; reject the combination rather than
	// reorder silently.
	if q.Limit > 0 {
		return Result{}, errors.New("qserv: use WITHIN inside the query text when combining with LIMIT")
	}
	return m.Query(text, ChunksForCone(numChunks, cone))
}

// queryChunk dispatches one chunk's work and awaits its result file.
func (m *Master) queryChunk(queryText string, chunk int, qid uint64) (Partial, error) {
	// Opening the marker for write guarantees a channel to a worker
	// hosting the chunk (the paper's data→host mapping).
	f, err := m.cl.OpenWrite(MarkerPath(chunk))
	if err != nil {
		return Partial{}, fmt.Errorf("no worker publishes chunk %d: %w", chunk, err)
	}
	task := EncodeTask(qid, queryText)
	if _, err := f.WriteAt(task, 0); err != nil {
		f.Close()
		return Partial{}, err
	}
	f.Close()

	// Await the result file. It is created after the manager may have
	// cached its non-existence, so discovery goes through Relocate
	// (cache refresh), the paper's recovery for timing edge effects.
	resPath := ResultPath(chunk, qid)
	deadline := m.cfg.Clock.Now().Add(m.cfg.ResultTimeout)
	for {
		if _, err := m.cl.Relocate(resPath, false, ""); err == nil {
			break
		} else if !errors.Is(err, client.ErrNotExist) && !errors.Is(err, client.ErrTimeout) {
			return Partial{}, err
		}
		if m.cfg.Clock.Now().After(deadline) {
			return Partial{}, fmt.Errorf("result for chunk %d never appeared", chunk)
		}
		m.cfg.Clock.Sleep(m.cfg.PollInterval)
	}
	data, err := m.cl.ReadFile(resPath)
	if err != nil {
		return Partial{}, err
	}
	if strings.HasPrefix(string(data), "error ") {
		return Partial{}, errors.New(strings.TrimSpace(strings.TrimPrefix(string(data), "error ")))
	}
	return DecodePartial(data)
}
