package baseline

import (
	"fmt"
	"testing"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

func TestGFSMasterRegisterAndLookup(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	m := NewGFSMaster(net, "master")
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	paths := make([]string, 1000)
	for i := range paths {
		paths[i] = fmt.Sprintf("/store/f%04d", i)
	}
	frames, err := RegisterManifest(net, "master", "srvA", "srvA:data", paths, 128)
	if err != nil {
		t.Fatal(err)
	}
	if frames < 8 {
		t.Errorf("frames = %d, expected batched upload", frames)
	}
	if m.Entries() != 1000 {
		t.Errorf("Entries = %d", m.Entries())
	}
	if m.ReadyServers() != 1 {
		t.Errorf("ReadyServers = %d", m.ReadyServers())
	}

	// Replica on a second server.
	if _, err := RegisterManifest(net, "master", "srvB", "srvB:data", paths[:10], 0); err != nil {
		t.Fatal(err)
	}
	got, err := Lookup(net, "master", "/store/f0005")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "srvA:data" || got[1] != "srvB:data" {
		t.Errorf("Lookup = %v", got)
	}
	got, err = Lookup(net, "master", "/nope")
	if err != nil || len(got) != 0 {
		t.Errorf("Lookup missing = %v, %v", got, err)
	}
}

func TestGFSMasterEmptyManifest(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	m := NewGFSMaster(net, "master")
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if _, err := RegisterManifest(net, "master", "empty", "e:data", nil, 0); err != nil {
		t.Fatal(err)
	}
	if m.ReadyServers() != 1 {
		t.Error("empty server not registered")
	}
}

func TestScanCacheLifecycle(t *testing.T) {
	fc := vclock.NewFake()
	c := NewScanCache(time.Hour, fc)
	c.Add("/a", bitvec.Of(1))
	c.Add("/b", bitvec.Of(2))

	if v, ok := c.Lookup("/a"); !ok || v != bitvec.Of(1) {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	fc.Advance(2 * time.Hour)
	if _, ok := c.Lookup("/a"); ok {
		t.Fatal("expired entry still visible")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d before sweep", c.Len())
	}
	scanned, removed, _ := c.Sweep()
	if scanned != 2 || removed != 2 {
		t.Errorf("Sweep = %d scanned, %d removed", scanned, removed)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after sweep", c.Len())
	}
}

func TestScanCacheRefreshExtends(t *testing.T) {
	fc := vclock.NewFake()
	c := NewScanCache(time.Hour, fc)
	c.Add("/a", bitvec.Of(1))
	fc.Advance(30 * time.Minute)
	c.Add("/a", bitvec.Of(1)) // refresh
	fc.Advance(45 * time.Minute)
	if _, ok := c.Lookup("/a"); !ok {
		t.Error("refreshed entry expired early")
	}
	_, removed, _ := c.Sweep()
	if removed != 0 {
		t.Error("sweep removed a live entry")
	}
}
