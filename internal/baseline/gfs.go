// Package baseline implements the comparison systems the paper argues
// against, so the benchmark harness can reproduce its claims:
//
//   - a GFS/AFS-style central master to which every server must upload
//     its full file manifest at registration (Section V contrasts this
//     with Scalla's path-prefix-only login);
//   - a full-scan TTL cache, the naive alternative to the sliding-window
//     eviction of Section III-A3;
//   - the respond-always protocol lives in the cmsd package as a server
//     flag (NodeConfig.RespondAlways), since it shares the query plane.
package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"scalla/internal/transport"
)

// Manifest protocol opcodes.
const (
	opRegister   = 1 // server → master: name, addr, batch of paths
	opRegisterOK = 2
	opLookup     = 3 // client → master: path
	opLocations  = 4 // master → client: server addresses
	opDone       = 5 // server → master: manifest complete
	opDoneOK     = 6
)

var errBadFrame = errors.New("baseline: malformed frame")

// GFSMaster is a central location master in the style the paper's
// Section V describes for GFS: it learns every file on every server at
// registration time and answers lookups from a complete map.
type GFSMaster struct {
	net  transport.Network
	addr string

	mu      sync.Mutex
	files   map[string][]string // path → server data addresses
	servers map[string]bool     // fully registered servers
	entries int64

	l       transport.Listener
	stopped bool
}

// NewGFSMaster returns an unstarted master that will listen on addr.
func NewGFSMaster(net transport.Network, addr string) *GFSMaster {
	return &GFSMaster{
		net: net, addr: addr,
		files:   make(map[string][]string),
		servers: make(map[string]bool),
	}
}

// Start binds the listener and begins serving.
func (m *GFSMaster) Start() error {
	l, err := m.net.Listen(m.addr)
	if err != nil {
		return err
	}
	m.l = l
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go m.serve(c)
		}
	}()
	return nil
}

// Stop closes the listener.
func (m *GFSMaster) Stop() {
	m.mu.Lock()
	m.stopped = true
	m.mu.Unlock()
	if m.l != nil {
		m.l.Close()
	}
}

// Entries returns the number of (path, server) pairs the master holds.
func (m *GFSMaster) Entries() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entries
}

// ReadyServers returns how many servers have completed registration.
func (m *GFSMaster) ReadyServers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, done := range m.servers {
		if done {
			n++
		}
	}
	return n
}

func (m *GFSMaster) serve(c transport.Conn) {
	defer c.Close()
	for {
		frame, err := c.Recv()
		if err != nil {
			return
		}
		reply, err := m.handle(frame)
		if err != nil {
			return
		}
		if err := c.Send(reply); err != nil {
			return
		}
	}
}

func (m *GFSMaster) handle(frame []byte) ([]byte, error) {
	if len(frame) < 1 {
		return nil, errBadFrame
	}
	switch frame[0] {
	case opRegister:
		name, rest, err := getStr(frame[1:])
		if err != nil {
			return nil, err
		}
		addr, rest, err := getStr(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, errBadFrame
		}
		n := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		m.mu.Lock()
		if _, known := m.servers[name]; !known {
			m.servers[name] = false
		}
		for i := uint32(0); i < n; i++ {
			var p string
			p, rest, err = getStr(rest)
			if err != nil {
				m.mu.Unlock()
				return nil, err
			}
			m.files[p] = append(m.files[p], addr)
			m.entries++
		}
		m.mu.Unlock()
		return []byte{opRegisterOK}, nil
	case opDone:
		name, _, err := getStr(frame[1:])
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		m.servers[name] = true
		m.mu.Unlock()
		return []byte{opDoneOK}, nil
	case opLookup:
		p, _, err := getStr(frame[1:])
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		addrs := m.files[p]
		m.mu.Unlock()
		out := []byte{opLocations}
		out = binary.BigEndian.AppendUint32(out, uint32(len(addrs)))
		for _, a := range addrs {
			out = putStr(out, a)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("baseline: unknown op %d", frame[0])
	}
}

func putStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func getStr(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, errBadFrame
	}
	n := binary.BigEndian.Uint32(b)
	if uint64(len(b)-4) < uint64(n) {
		return "", nil, errBadFrame
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

// RegisterManifest uploads a server's complete file list to the master
// in batches, then marks the registration complete — the heavyweight
// registration Scalla avoids. It returns the number of frames sent.
func RegisterManifest(net transport.Network, master, name, dataAddr string, paths []string, batch int) (int, error) {
	if batch <= 0 {
		batch = 4096
	}
	c, err := net.Dial(master)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	frames := 0
	for start := 0; start < len(paths) || start == 0; start += batch {
		end := start + batch
		if end > len(paths) {
			end = len(paths)
		}
		chunk := paths[start:end]
		frame := []byte{opRegister}
		frame = putStr(frame, name)
		frame = putStr(frame, dataAddr)
		frame = binary.BigEndian.AppendUint32(frame, uint32(len(chunk)))
		for _, p := range chunk {
			frame = putStr(frame, p)
		}
		if err := c.Send(frame); err != nil {
			return frames, err
		}
		frames++
		reply, err := c.Recv()
		if err != nil {
			return frames, err
		}
		if len(reply) < 1 || reply[0] != opRegisterOK {
			return frames, errBadFrame
		}
		if end >= len(paths) {
			break
		}
	}
	done := append([]byte{opDone}, putStr(nil, name)...)
	if err := c.Send(done); err != nil {
		return frames, err
	}
	frames++
	if _, err := c.Recv(); err != nil {
		return frames, err
	}
	return frames, nil
}

// Lookup asks the master for the servers holding path.
func Lookup(net transport.Network, master, path string) ([]string, error) {
	c, err := net.Dial(master)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	frame := append([]byte{opLookup}, putStr(nil, path)...)
	if err := c.Send(frame); err != nil {
		return nil, err
	}
	reply, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(reply) < 5 || reply[0] != opLocations {
		return nil, errBadFrame
	}
	n := binary.BigEndian.Uint32(reply[1:])
	rest := reply[5:]
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		var a string
		a, rest, err = getStr(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
