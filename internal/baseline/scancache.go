package baseline

import (
	"sync"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/vclock"
)

// ScanCache is the naive alternative to Scalla's windowed eviction
// (experiment E7): a map-backed location cache whose eviction is a full
// scan over every entry. The scan's cost grows with the total cache
// size and runs under the same lock look-ups take, so eviction pauses
// the resolution path — exactly the behaviour the sliding window was
// designed to avoid.
type ScanCache struct {
	lifetime time.Duration
	clock    vclock.Clock

	mu      sync.Mutex
	entries map[string]scanEntry
}

type scanEntry struct {
	vh      bitvec.Vec
	expires time.Time
}

// NewScanCache returns an empty cache with the given entry lifetime.
func NewScanCache(lifetime time.Duration, clock vclock.Clock) *ScanCache {
	if clock == nil {
		clock = vclock.Real()
	}
	return &ScanCache{
		lifetime: lifetime,
		clock:    clock,
		entries:  make(map[string]scanEntry),
	}
}

// Add records (or refreshes) an entry.
func (c *ScanCache) Add(name string, vh bitvec.Vec) {
	now := c.clock.Now()
	c.mu.Lock()
	c.entries[name] = scanEntry{vh: vh, expires: now.Add(c.lifetime)}
	c.mu.Unlock()
}

// Lookup returns the entry's holders. Expired entries are reported as
// absent (they linger until the next sweep).
func (c *ScanCache) Lookup(name string) (bitvec.Vec, bool) {
	now := c.clock.Now()
	c.mu.Lock()
	e, ok := c.entries[name]
	c.mu.Unlock()
	if !ok || now.After(e.expires) {
		return 0, false
	}
	return e.vh, true
}

// Len returns the number of entries (including expired, not yet swept).
func (c *ScanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Sweep scans the entire cache and deletes expired entries, returning
// how many entries it visited and removed and how long it held the
// lock. This is the pause the benchmark compares against the windowed
// eviction's per-tick work.
func (c *ScanCache) Sweep() (scanned, removed int, held time.Duration) {
	now := c.clock.Now()
	start := time.Now() // wall time: the pause is real even on fake clocks
	c.mu.Lock()
	for name, e := range c.entries {
		scanned++
		if now.After(e.expires) {
			delete(c.entries, name)
			removed++
		}
	}
	c.mu.Unlock()
	return scanned, removed, time.Since(start)
}
