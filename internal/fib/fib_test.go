package fib

import (
	"testing"
	"testing/quick"
)

func TestSeqPrefix(t *testing.T) {
	want := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	got := Seq()
	if len(got) < len(want) {
		t.Fatalf("sequence too short: %d", len(got))
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("Seq[%d] = %d, want %d", i, got[i], w)
		}
	}
}

func TestSeqStrictlyIncreasingAndRecurrent(t *testing.T) {
	s := Seq()
	for i := 2; i < len(s); i++ {
		if s[i] != s[i-1]+s[i-2] {
			t.Fatalf("recurrence broken at %d: %d != %d + %d", i, s[i], s[i-1], s[i-2])
		}
		if s[i] <= s[i-1] {
			t.Fatalf("not increasing at %d", i)
		}
	}
}

func TestAtLeast(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{-5, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 5},
		{8, 8}, {9, 13}, {100, 144}, {1000, 1597},
	}
	for _, c := range cases {
		if got := AtLeast(c.n); got != c.want {
			t.Errorf("AtLeast(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNext(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{0, 1}, {1, 2}, {2, 3}, {3, 5}, {8, 13}, {13, 21}, {144, 233},
	}
	for _, c := range cases {
		if got := Next(c.n); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIsFib(t *testing.T) {
	for _, f := range Seq()[:40] {
		if !IsFib(f) {
			t.Errorf("IsFib(%d) = false", f)
		}
	}
	for _, n := range []int64{4, 6, 7, 9, 10, 100, 1000} {
		if IsFib(n) {
			t.Errorf("IsFib(%d) = true", n)
		}
	}
}

// Property: AtLeast(n) is a Fibonacci number >= n, and the previous
// Fibonacci number (if any) is < n.
func TestPropAtLeastTight(t *testing.T) {
	f := func(raw uint32) bool {
		n := int64(raw)
		got := AtLeast(n)
		if !IsFib(got) || got < n {
			return false
		}
		// No smaller Fibonacci number satisfies >= n.
		for _, fb := range Seq() {
			if fb >= got {
				break
			}
			if fb >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Next(n) > n and is Fibonacci.
func TestPropNext(t *testing.T) {
	f := func(raw uint32) bool {
		n := int64(raw)
		got := Next(n)
		return got > n && IsFib(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
