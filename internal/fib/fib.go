// Package fib provides Fibonacci-number table sizing for the location
// cache.
//
// The paper (Section III-A1) sizes the location hash table to a Fibonacci
// number of entries and grows it to the subsequent Fibonacci number when
// occupancy reaches 80%. CRC32 keys reduced modulo a Fibonacci number were
// observed to disperse far more uniformly than modulo a power of two
// (footnote 4); experiment E4 reproduces that observation.
package fib

// sequence holds the Fibonacci numbers that fit in an int64, starting
// from 1, 2 (we skip the duplicate leading 1 so sizes are strictly
// increasing).
var sequence = buildSequence()

func buildSequence() []int64 {
	seq := make([]int64, 0, 92)
	a, b := int64(1), int64(2)
	for a > 0 { // stops on overflow to negative
		seq = append(seq, a)
		a, b = b, a+b
	}
	return seq
}

// Seq returns the strictly increasing Fibonacci sequence 1, 2, 3, 5, 8, …
// up to the largest value representable in an int64. The returned slice
// must not be modified.
func Seq() []int64 { return sequence }

// AtLeast returns the smallest Fibonacci number >= n. For n <= 1 it
// returns 1. It panics if n exceeds the largest representable Fibonacci
// number (which cannot happen for realistic table sizes).
func AtLeast(n int64) int64 {
	for _, f := range sequence {
		if f >= n {
			return f
		}
	}
	panic("fib: size out of range")
}

// Next returns the smallest Fibonacci number strictly greater than n.
func Next(n int64) int64 {
	for _, f := range sequence {
		if f > n {
			return f
		}
	}
	panic("fib: size out of range")
}

// IsFib reports whether n is a member of the sequence.
func IsFib(n int64) bool {
	for _, f := range sequence {
		if f == n {
			return true
		}
		if f > n {
			return false
		}
	}
	return false
}
