package store

// The disk backend. Selected by Config.Root, constructed by openDisk,
// reached only through the Store facade's dispatch — the two backends
// must stay behaviourally identical (prop_test.go runs the same
// map-oracle property against both).
//
// Layout: logical path "/a/b" lives at <Root>/a/b; the MSS staging
// tier is a plain directory (default <Root>.mss, a sibling so it never
// shadows the namespace) holding the same layout. Stage-in is a rename
// from the MSS directory into Root (copy+remove across filesystems),
// and the file only enters the online index after the move completes —
// a file in Vp can never serve bytes, structurally.
//
// Concurrency: an RWMutex guards the three indexes (online files,
// offline sizes, staging channels); reads take it only to look up the
// open *os.File, then pread outside any lock, so concurrent readers
// proceed in parallel straight from the page cache into the caller's
// buffer (0 allocs — the hot half of the PR 5 single-copy read path).
// Each file carries its own write mutex serializing WriteAt/Truncate/
// fsync against each other; size is an atomic so readers never block
// on writers.

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// diskFile is one online file: an open descriptor held for the file's
// whole online lifetime (one fd per online file — see the ulimit note
// in STORAGE.md) plus the bookkeeping the facade's semantics need.
type diskFile struct {
	f    *os.File
	wmu  sync.Mutex   // serializes WriteAt/Truncate/fsync
	size atomic.Int64 // logical size; readers load it lock-free
	// dirty is bytes written since the last fsync; meta marks a
	// pending metadata change (truncate). Together they decide
	// whether the interval flusher must sync this file.
	dirty atomic.Int64
	meta  atomic.Bool
}

type diskStore struct {
	cfg    Config
	root   string
	mssDir string

	mu      sync.RWMutex
	files   map[string]*diskFile
	offline map[string]int64 // MSS index: logical path -> size at last scan
	staging map[string]chan struct{}

	umu  sync.Mutex // guards used (capacity accounting)
	used int64

	closed atomic.Bool
	stop   chan struct{}
	done   chan struct{} // interval flusher exit

	// Stats counters. dirtyBytes is the global sum of per-file dirty
	// counters — the at-risk window reported to obs.
	dirtyBytes    atomic.Int64
	fsyncs        atomic.Int64
	fsyncNanos    atomic.Int64
	fsyncMaxNanos atomic.Int64
	stagedIn      atomic.Int64
	recovered     int
}

// openDisk builds the disk backend: create Root and MSSDir if missing,
// recover every file already under Root into the online index (fds
// open, sizes summed), and scan MSSDir into the offline index.
func openDisk(cfg Config) (*diskStore, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("store: resolve root: %w", err)
	}
	mss, err := filepath.Abs(cfg.MSSDir)
	if err != nil {
		return nil, fmt.Errorf("store: resolve mss dir: %w", err)
	}
	if mss == root {
		return nil, fmt.Errorf("store: MSSDir must differ from Root (%s)", root)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	if err := os.MkdirAll(mss, 0o755); err != nil {
		return nil, fmt.Errorf("store: create mss dir: %w", err)
	}
	d := &diskStore{
		cfg:     cfg,
		root:    root,
		mssDir:  mss,
		files:   make(map[string]*diskFile),
		offline: make(map[string]int64),
		staging: make(map[string]chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	if cfg.Fsync == FsyncInterval {
		go d.flushLoop()
	} else {
		close(d.done)
	}
	return d, nil
}

// recover walks Root reopening every regular file, and MSSDir building
// the offline index. A crash leaves whatever the page cache had
// flushed; recovery serves exactly the bytes the file system kept.
func (d *diskStore) recover() error {
	walk := func(base string, fn func(logical string, size int64, real string) error) error {
		return filepath.WalkDir(base, func(p string, e fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !e.Type().IsRegular() {
				return nil
			}
			rel, err := filepath.Rel(base, p)
			if err != nil {
				return err
			}
			info, err := e.Info()
			if err != nil {
				return err
			}
			return fn("/"+filepath.ToSlash(rel), info.Size(), p)
		})
	}
	err := walk(d.root, func(logical string, size int64, real string) error {
		if strings.HasPrefix(real, d.mssDir+string(filepath.Separator)) {
			return nil // MSSDir nested under Root by explicit config
		}
		f, err := os.OpenFile(real, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: recover %s: %w", logical, err)
		}
		df := &diskFile{f: f}
		df.size.Store(size)
		d.files[logical] = df
		d.used += size
		d.recovered++
		return nil
	})
	if err != nil {
		return err
	}
	return walk(d.mssDir, func(logical string, size int64, _ string) error {
		d.offline[logical] = size
		return nil
	})
}

// diskPath maps a logical path to its file under base. The leading "/"
// prepended before Clean makes ".." components collapse against the
// root instead of escaping it.
func diskPath(base, p string) (string, error) {
	cp := path.Clean("/" + p)
	if cp == "/" {
		return "", fmt.Errorf("store: empty path %q", p)
	}
	return filepath.Join(base, filepath.FromSlash(cp[1:])), nil
}

// reserve accounts delta bytes against capacity.
func (d *diskStore) reserve(delta int64) error {
	d.umu.Lock()
	defer d.umu.Unlock()
	if d.cfg.Capacity > 0 && d.used+delta > d.cfg.Capacity {
		return ErrNoSpace
	}
	d.used += delta
	if d.used < 0 {
		d.used = 0
	}
	return nil
}

// syncFile fsyncs one file, timing the call and settling its dirty
// counters. Swapping dirty to 0 before the fsync means bytes written
// during the call are re-counted dirty — over-reporting the at-risk
// window, never under.
func (d *diskStore) syncFile(df *diskFile) error {
	delta := df.dirty.Swap(0)
	d.dirtyBytes.Add(-delta)
	df.meta.Store(false)
	start := time.Now()
	err := df.f.Sync()
	el := time.Since(start).Nanoseconds()
	d.fsyncs.Add(1)
	d.fsyncNanos.Add(el)
	for {
		cur := d.fsyncMaxNanos.Load()
		if el <= cur || d.fsyncMaxNanos.CompareAndSwap(cur, el) {
			break
		}
	}
	if err != nil {
		df.dirty.Add(delta)
		d.dirtyBytes.Add(delta)
		df.meta.Store(true)
	}
	return err
}

// maybeSync applies the FsyncAlways policy after a mutation. Caller
// holds df.wmu.
func (d *diskStore) maybeSync(df *diskFile) error {
	if d.cfg.Fsync != FsyncAlways {
		return nil
	}
	return d.syncFile(df)
}

// flushLoop is the FsyncInterval background flusher.
func (d *diskStore) flushLoop() {
	defer close(d.done)
	t := d.cfg.Clock.NewTicker(d.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C():
			d.syncAll()
		}
	}
}

// syncAll fsyncs every dirty file.
func (d *diskStore) syncAll() error {
	d.mu.RLock()
	dirty := make([]*diskFile, 0, len(d.files))
	for _, df := range d.files {
		if df.dirty.Load() > 0 || df.meta.Load() {
			dirty = append(dirty, df)
		}
	}
	d.mu.RUnlock()
	var first error
	for _, df := range dirty {
		df.wmu.Lock()
		err := d.syncFile(df)
		df.wmu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (d *diskStore) close() error {
	if d.closed.Swap(true) {
		return ErrClosed
	}
	close(d.stop)
	<-d.done
	err := d.syncAll()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, df := range d.files {
		if cerr := df.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// openFile creates or opens the backing file for logical path p under
// Root. flag is ORed with O_RDWR.
func (d *diskStore) openFile(p string, flag int) (*diskFile, error) {
	dp, err := diskPath(d.root, p)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(dp), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(dp, os.O_RDWR|flag, 0o644)
	if err != nil {
		return nil, err
	}
	return &diskFile{f: f}, nil
}

func (d *diskStore) put(p string, data []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.mu.Lock()
	df, ok := d.files[p]
	if !ok {
		if err := d.reserve(int64(len(data))); err != nil {
			d.mu.Unlock()
			return err
		}
		ndf, err := d.openFile(p, os.O_CREATE|os.O_TRUNC)
		if err != nil {
			d.reserve(-int64(len(data)))
			d.mu.Unlock()
			return err
		}
		df = ndf
		d.files[p] = df
		d.mu.Unlock()
		df.wmu.Lock()
	} else {
		d.mu.Unlock()
		df.wmu.Lock()
		if err := d.reserve(int64(len(data)) - df.size.Load()); err != nil {
			df.wmu.Unlock()
			return err
		}
	}
	defer df.wmu.Unlock()
	if _, err := df.f.WriteAt(data, 0); err != nil {
		return err
	}
	if err := df.f.Truncate(int64(len(data))); err != nil {
		return err
	}
	df.size.Store(int64(len(data)))
	df.dirty.Add(int64(len(data)))
	d.dirtyBytes.Add(int64(len(data)))
	df.meta.Store(true)
	return d.maybeSync(df)
}

// putOffline writes the file into the MSS directory. It is a loader
// (tests and workload generators stand in for the tape system), so
// disk failures panic rather than threading an error through the
// facade's loader signature.
func (d *diskStore) putOffline(p string, data []byte) {
	dp, err := diskPath(d.mssDir, p)
	if err == nil {
		if err = os.MkdirAll(filepath.Dir(dp), 0o755); err == nil {
			err = os.WriteFile(dp, data, 0o644)
		}
	}
	if err != nil {
		panic("store: put offline: " + err.Error())
	}
	d.mu.Lock()
	d.offline[p] = int64(len(data))
	d.mu.Unlock()
}

func (d *diskStore) create(p string) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[p]; ok {
		return ErrExists
	}
	if _, ok := d.offline[p]; ok {
		return ErrExists
	}
	df, err := d.openFile(p, os.O_CREATE|os.O_EXCL)
	if err != nil {
		if os.IsExist(err) {
			return ErrExists
		}
		return err
	}
	d.files[p] = df
	return nil
}

func (d *diskStore) stat(p string) (Info, error) {
	for try := 0; ; try++ {
		d.mu.RLock()
		if df, ok := d.files[p]; ok {
			sz := df.size.Load()
			d.mu.RUnlock()
			return Info{Path: p, Size: sz, Online: true}, nil
		}
		if sz, ok := d.offline[p]; ok {
			d.mu.RUnlock()
			return Info{Path: p, Size: sz, Online: false}, nil
		}
		d.mu.RUnlock()
		if try > 0 || !d.probeMSS(p) {
			return Info{}, ErrNotFound
		}
	}
}

func (d *diskStore) hasOnline(p string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[p]
	return ok
}

func (d *diskStore) has(p string) bool {
	d.mu.RLock()
	_, on := d.files[p]
	_, off := d.offline[p]
	d.mu.RUnlock()
	if on || off {
		return true
	}
	return d.probeMSS(p)
}

// probeMSS consults the MSS directory for a path the index has never
// seen. This is the operator/tape contract (STORAGE.md): a file
// dropped into MSSDir while the server is running becomes
// offline-visible on its first miss — the same lazy discovery a real
// data server does against its mass storage system. It runs only on
// the miss path, so the hot lookups stay one RLock.
func (d *diskStore) probeMSS(p string) bool {
	if d.closed.Load() {
		return false
	}
	fp, err := diskPath(d.mssDir, p)
	if err != nil {
		return false
	}
	fi, err := os.Stat(fp)
	if err != nil || !fi.Mode().IsRegular() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[p]; ok {
		return false // raced a stage/put; the online copy wins
	}
	if _, ok := d.offline[p]; !ok {
		d.offline[p] = fi.Size()
	}
	return true
}

func (d *diskStore) isStaging(p string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.staging[p]
	return ok
}

func (d *diskStore) stagingPaths() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.staging))
	for p := range d.staging {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (d *diskStore) stage(p string) (<-chan struct{}, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[p]; ok {
		done := make(chan struct{})
		close(done)
		return done, nil
	}
	if ch, ok := d.staging[p]; ok {
		return ch, nil
	}
	size, ok := d.offline[p]
	if !ok {
		return nil, ErrNotFound
	}
	ch := make(chan struct{})
	d.staging[p] = ch
	go func() {
		d.cfg.Clock.Sleep(d.cfg.StageDelay)
		d.mu.Lock()
		// Unlink may have cancelled the stage; the promote — the move
		// from MSSDir into Root — happens under the index lock, and
		// the file enters the online index only after it succeeds, so
		// a path in Vp is never servable.
		if _, still := d.staging[p]; still {
			delete(d.staging, p)
			if d.reserve(size) == nil {
				if df, actual, err := d.promote(p); err == nil {
					d.reserve(actual - size) // true size may differ from scan
					df.size.Store(actual)
					d.files[p] = df
					delete(d.offline, p)
					d.stagedIn.Add(1)
				} else {
					d.reserve(-size)
				}
			}
		}
		d.mu.Unlock()
		close(ch)
	}()
	return ch, nil
}

// promote moves p's file from MSSDir into Root (rename, or copy+remove
// across filesystems) and opens it. Caller holds d.mu.
func (d *diskStore) promote(p string) (*diskFile, int64, error) {
	src, err := diskPath(d.mssDir, p)
	if err != nil {
		return nil, 0, err
	}
	dst, err := diskPath(d.root, p)
	if err != nil {
		return nil, 0, err
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return nil, 0, err
	}
	if err := os.Rename(src, dst); err != nil {
		// Cross-device (a real tape frontend mount): copy then remove.
		in, oerr := os.Open(src)
		if oerr != nil {
			return nil, 0, err
		}
		out, oerr := os.Create(dst)
		if oerr != nil {
			in.Close()
			return nil, 0, oerr
		}
		if _, cerr := io.Copy(out, in); cerr != nil {
			in.Close()
			out.Close()
			os.Remove(dst)
			return nil, 0, cerr
		}
		in.Close()
		if cerr := out.Close(); cerr != nil {
			os.Remove(dst)
			return nil, 0, cerr
		}
		os.Remove(src)
	}
	f, err := os.OpenFile(dst, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return &diskFile{f: f}, st.Size(), nil
}

func (d *diskStore) readAt(p string, off int64, n int) ([]byte, bool, error) {
	d.mu.RLock()
	df, ok := d.files[p]
	if !ok {
		_, inMSS := d.offline[p]
		d.mu.RUnlock()
		if inMSS || d.probeMSS(p) {
			if _, serr := d.stage(p); serr == nil {
				return nil, false, ErrStaging
			}
		}
		return nil, false, ErrNotFound
	}
	d.mu.RUnlock()
	if off < 0 {
		return nil, false, fmt.Errorf("store: negative offset %d", off)
	}
	size := df.size.Load()
	if off >= size {
		return nil, true, nil
	}
	want := int64(n)
	if off+want > size {
		want = size - off
	}
	buf := make([]byte, want)
	rn, eof, err := d.preadInto(df, off, buf, size)
	return buf[:rn], eof, err
}

// readAtInto is the hot half of the single-copy read path: one index
// lookup under RLock, then a pread straight from the page cache into
// the caller's (pooled-frame) buffer. 0 allocs/op — gated by
// TestDiskReadFrameAllocsNothing in internal/xrd.
func (d *diskStore) readAtInto(p string, off int64, dst []byte) (int, bool, error) {
	d.mu.RLock()
	df, ok := d.files[p]
	if !ok {
		_, inMSS := d.offline[p]
		d.mu.RUnlock()
		if inMSS || d.probeMSS(p) {
			if _, serr := d.stage(p); serr == nil {
				return 0, false, ErrStaging
			}
		}
		return 0, false, ErrNotFound
	}
	d.mu.RUnlock()
	if off < 0 {
		return 0, false, fmt.Errorf("store: negative offset %d", off)
	}
	size := df.size.Load()
	if off >= size {
		return 0, true, nil
	}
	return d.preadInto(df, off, dst, size)
}

// preadInto reads into dst from df at off, given the size snapshot the
// caller loaded. It clamps to size so the eof contract matches the mem
// backend's exactly (eof when the read reaches the end of the file).
func (d *diskStore) preadInto(df *diskFile, off int64, dst []byte, size int64) (int, bool, error) {
	want := int64(len(dst))
	eof := false
	if off+want >= size {
		want = size - off
		eof = true
	}
	n, err := df.f.ReadAt(dst[:want], off)
	if err == io.EOF {
		// A concurrent truncate shrank the file under our size
		// snapshot; the bytes we did get are good.
		err = nil
		eof = true
	}
	return n, eof, err
}

func (d *diskStore) writeAt(p string, off int64, data []byte) (int, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	d.mu.RLock()
	df, ok := d.files[p]
	if !ok {
		_, inMSS := d.offline[p]
		d.mu.RUnlock()
		if inMSS {
			return 0, ErrOffline
		}
		return 0, ErrNotFound
	}
	d.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("store: negative offset %d", off)
	}
	df.wmu.Lock()
	cur := df.size.Load()
	end := off + int64(len(data))
	if end > cur {
		if err := d.reserve(end - cur); err != nil {
			df.wmu.Unlock()
			return 0, err
		}
	}
	n, err := df.f.WriteAt(data, off)
	grown := cur
	if n > 0 && off+int64(n) > cur {
		grown = off + int64(n)
	}
	if end > cur {
		d.reserve(grown - end) // release the part a short write never grew
	}
	if grown > cur {
		df.size.Store(grown)
	}
	if n > 0 {
		df.dirty.Add(int64(n))
		d.dirtyBytes.Add(int64(n))
	}
	if err != nil {
		df.wmu.Unlock()
		return n, err
	}
	err = d.maybeSync(df)
	df.wmu.Unlock()
	if err != nil {
		return n, err
	}
	if hook := d.cfg.OnWrite; hook != nil {
		hook(p)
	}
	return n, nil
}

func (d *diskStore) truncate(p string, size int64) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.mu.RLock()
	df, ok := d.files[p]
	if !ok {
		_, inMSS := d.offline[p]
		d.mu.RUnlock()
		if inMSS {
			return ErrOffline
		}
		return ErrNotFound
	}
	d.mu.RUnlock()
	if size < 0 {
		return fmt.Errorf("store: negative size %d", size)
	}
	df.wmu.Lock()
	defer df.wmu.Unlock()
	cur := df.size.Load()
	if err := d.reserve(size - cur); err != nil {
		return err
	}
	if err := df.f.Truncate(size); err != nil {
		d.reserve(cur - size)
		return err
	}
	df.size.Store(size)
	df.meta.Store(true)
	return d.maybeSync(df)
}

func (d *diskStore) unlink(p string) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	df, online := d.files[p]
	_, offline := d.offline[p]
	if !online && !offline {
		return ErrNotFound
	}
	if online {
		df.wmu.Lock()
		d.reserve(-df.size.Load())
		d.dirtyBytes.Add(-df.dirty.Swap(0))
		df.f.Close()
		df.wmu.Unlock()
		delete(d.files, p)
		if dp, err := diskPath(d.root, p); err == nil {
			os.Remove(dp)
		}
	}
	if offline {
		delete(d.offline, p)
		if dp, err := diskPath(d.mssDir, p); err == nil {
			os.Remove(dp)
		}
	}
	delete(d.staging, p) // staging goroutine will find it gone
	return nil
}

func (d *diskStore) list(prefix string) []Info {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Info
	for p, df := range d.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, Info{Path: p, Size: df.size.Load(), Online: true})
		}
	}
	for p, sz := range d.offline {
		if _, online := d.files[p]; online {
			continue
		}
		if strings.HasPrefix(p, prefix) {
			out = append(out, Info{Path: p, Size: sz, Online: false})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func (d *diskStore) usedBytes() int64 {
	d.umu.Lock()
	defer d.umu.Unlock()
	return d.used
}

func (d *diskStore) free() int64 {
	d.umu.Lock()
	defer d.umu.Unlock()
	if d.cfg.Capacity <= 0 {
		return 1 << 50
	}
	f := d.cfg.Capacity - d.used
	if f < 0 {
		return 0
	}
	return f
}

func (d *diskStore) count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.files)
}

func (d *diskStore) stats() Stats {
	d.mu.RLock()
	files, staging := len(d.files), len(d.staging)
	off := 0
	for p := range d.offline {
		if _, online := d.files[p]; !online {
			off++
		}
	}
	d.mu.RUnlock()
	return Stats{
		Backend:       "disk",
		Files:         files,
		Offline:       off,
		Staging:       staging,
		UsedBytes:     d.usedBytes(),
		DirtyBytes:    d.dirtyBytes.Load(),
		Fsyncs:        d.fsyncs.Load(),
		FsyncNanos:    d.fsyncNanos.Load(),
		FsyncMaxNanos: d.fsyncMaxNanos.Load(),
		StagedIn:      d.stagedIn.Load(),
		Recovered:     d.recovered,
	}
}
