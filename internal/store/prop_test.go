package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// backends enumerates the two store engines; every behavioural test
// that can run against both should. The factory returns a fresh store
// (disk stores get a per-call temp root so runs never share state).
var backends = []struct {
	name string
	open func(t *testing.T, cfg Config) *Store
}{
	{"mem", func(t *testing.T, cfg Config) *Store {
		return New(cfg)
	}},
	{"disk", func(t *testing.T, cfg Config) *Store {
		cfg.Root = t.TempDir() + "/data"
		s, err := Open(cfg)
		if err != nil {
			t.Fatalf("open disk store: %v", err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}},
}

// Property: the store behaves like a map[string][]byte under random
// create/write/read/truncate/unlink sequences — identically for both
// backends, so nothing above the store can tell them apart except by
// durability.
func TestPropStoreMatchesMapOracle(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Parallel()
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				s := be.open(t, Config{Fsync: FsyncNever})
				defer s.Close()
				oracle := map[string][]byte{}
				name := func() string { return fmt.Sprintf("/f%d", r.Intn(8)) }

				for op := 0; op < 200; op++ {
					n := name()
					switch r.Intn(5) {
					case 0: // create
						err := s.Create(n)
						_, exists := oracle[n]
						if exists != (err == ErrExists) {
							t.Logf("create %s: err=%v exists=%v", n, err, exists)
							return false
						}
						if err == nil {
							oracle[n] = []byte{}
						}
					case 1: // write
						if _, ok := oracle[n]; !ok {
							continue
						}
						off := int64(r.Intn(64))
						data := make([]byte, 1+r.Intn(64))
						r.Read(data)
						if _, err := s.WriteAt(n, off, data); err != nil {
							t.Logf("write %s: %v", n, err)
							return false
						}
						cur := oracle[n]
						end := off + int64(len(data))
						if end > int64(len(cur)) {
							nd := make([]byte, end)
							copy(nd, cur)
							cur = nd
						}
						copy(cur[off:end], data)
						oracle[n] = cur
					case 2: // read
						want, exists := oracle[n]
						data, _, err := s.ReadAt(n, 0, 1<<20)
						if !exists {
							if err != ErrNotFound {
								t.Logf("read missing %s: %v", n, err)
								return false
							}
							continue
						}
						if err != nil || !bytes.Equal(data, want) {
							t.Logf("read %s: %d bytes vs %d, err=%v", n, len(data), len(want), err)
							return false
						}
					case 3: // truncate
						if _, ok := oracle[n]; !ok {
							continue
						}
						size := int64(r.Intn(96))
						if err := s.Truncate(n, size); err != nil {
							t.Logf("truncate %s: %v", n, err)
							return false
						}
						cur := oracle[n]
						if size <= int64(len(cur)) {
							oracle[n] = cur[:size]
						} else {
							nd := make([]byte, size)
							copy(nd, cur)
							oracle[n] = nd
						}
					case 4: // unlink
						err := s.Unlink(n)
						_, exists := oracle[n]
						if exists != (err == nil) {
							t.Logf("unlink %s: err=%v exists=%v", n, err, exists)
							return false
						}
						delete(oracle, n)
					}
				}
				// Final audit: byte-for-byte agreement plus accounting.
				var want int64
				for n, data := range oracle {
					got, _, err := s.ReadAt(n, 0, 1<<20)
					if err != nil || !bytes.Equal(got, data) {
						t.Logf("final read %s mismatch", n)
						return false
					}
					want += int64(len(data))
				}
				if s.Count() != len(oracle) {
					t.Logf("Count = %d, oracle %d", s.Count(), len(oracle))
					return false
				}
				if s.Used() != want {
					t.Logf("Used = %d, oracle %d", s.Used(), want)
					return false
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 30}
			if be.name == "disk" && testing.Short() {
				cfg.MaxCount = 5
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: ReadAtInto agrees byte-for-byte with ReadAt at random
// offsets and lengths, on both backends. This is the single-copy path
// xrd's frame build depends on.
func TestPropReadAtIntoMatchesReadAt(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(7))
			s := be.open(t, Config{Fsync: FsyncNever})
			defer s.Close()
			data := make([]byte, 4096)
			r.Read(data)
			if err := s.Put("/f", data); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				off := int64(r.Intn(5000))
				n := r.Intn(600)
				want, wantEOF, werr := s.ReadAt("/f", off, n)
				dst := make([]byte, n)
				gn, gotEOF, gerr := s.ReadAtInto("/f", off, dst)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("off=%d n=%d: err %v vs %v", off, n, werr, gerr)
				}
				if gn != len(want) || !bytes.Equal(dst[:gn], want) {
					t.Fatalf("off=%d n=%d: %d bytes vs %d", off, n, gn, len(want))
				}
				if wantEOF != gotEOF {
					t.Fatalf("off=%d n=%d: eof %v vs %v", off, n, wantEOF, gotEOF)
				}
			}
		})
	}
}

// Property: staging semantics agree across backends — an offline file
// read returns ErrStaging, the Stage channel closes after StageDelay,
// and only then does the file serve bytes.
func TestPropStagingAcrossBackends(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Parallel()
			s := be.open(t, Config{StageDelay: 20 * time.Millisecond, Fsync: FsyncNever})
			defer s.Close()
			s.PutOffline("/tape/a", []byte("archived bytes"))
			if s.HasOnline("/tape/a") {
				t.Fatal("offline file reports online")
			}
			if !s.Has("/tape/a") {
				t.Fatal("offline file not visible")
			}
			if _, _, err := s.ReadAt("/tape/a", 0, 16); err != ErrStaging {
				t.Fatalf("read offline: %v, want ErrStaging", err)
			}
			if !s.IsStaging("/tape/a") {
				t.Fatal("read did not kick staging")
			}
			// The Vp contract: no bytes served while staging.
			if s.HasOnline("/tape/a") {
				t.Fatal("file online while staging")
			}
			ch, err := s.Stage("/tape/a")
			if err != nil {
				t.Fatal(err)
			}
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				t.Fatal("stage never completed")
			}
			got, _, err := s.ReadAt("/tape/a", 0, 64)
			if err != nil || string(got) != "archived bytes" {
				t.Fatalf("post-stage read: %q, %v", got, err)
			}
			if s.IsStaging("/tape/a") {
				t.Fatal("still staging after completion")
			}
		})
	}
}
