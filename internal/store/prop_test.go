package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the store behaves like a map[string][]byte under random
// create/write/read/truncate/unlink sequences.
func TestPropStoreMatchesMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(Config{})
		oracle := map[string][]byte{}
		name := func() string { return fmt.Sprintf("/f%d", r.Intn(8)) }

		for op := 0; op < 200; op++ {
			n := name()
			switch r.Intn(5) {
			case 0: // create
				err := s.Create(n)
				_, exists := oracle[n]
				if exists != (err == ErrExists) {
					t.Logf("create %s: err=%v exists=%v", n, err, exists)
					return false
				}
				if err == nil {
					oracle[n] = []byte{}
				}
			case 1: // write
				if _, ok := oracle[n]; !ok {
					continue
				}
				off := int64(r.Intn(64))
				data := make([]byte, 1+r.Intn(64))
				r.Read(data)
				if _, err := s.WriteAt(n, off, data); err != nil {
					t.Logf("write %s: %v", n, err)
					return false
				}
				cur := oracle[n]
				end := off + int64(len(data))
				if end > int64(len(cur)) {
					nd := make([]byte, end)
					copy(nd, cur)
					cur = nd
				}
				copy(cur[off:end], data)
				oracle[n] = cur
			case 2: // read
				want, exists := oracle[n]
				data, _, err := s.ReadAt(n, 0, 1<<20)
				if !exists {
					if err != ErrNotFound {
						t.Logf("read missing %s: %v", n, err)
						return false
					}
					continue
				}
				if err != nil || !bytes.Equal(data, want) {
					t.Logf("read %s: %d bytes vs %d, err=%v", n, len(data), len(want), err)
					return false
				}
			case 3: // truncate
				if _, ok := oracle[n]; !ok {
					continue
				}
				size := int64(r.Intn(96))
				if err := s.Truncate(n, size); err != nil {
					t.Logf("truncate %s: %v", n, err)
					return false
				}
				cur := oracle[n]
				if size <= int64(len(cur)) {
					oracle[n] = cur[:size]
				} else {
					nd := make([]byte, size)
					copy(nd, cur)
					oracle[n] = nd
				}
			case 4: // unlink
				err := s.Unlink(n)
				_, exists := oracle[n]
				if exists != (err == nil) {
					t.Logf("unlink %s: err=%v exists=%v", n, err, exists)
					return false
				}
				delete(oracle, n)
			}
		}
		// Final audit: byte-for-byte agreement plus accounting.
		var want int64
		for n, data := range oracle {
			got, _, err := s.ReadAt(n, 0, 1<<20)
			if err != nil || !bytes.Equal(got, data) {
				t.Logf("final read %s mismatch", n)
				return false
			}
			want += int64(len(data))
		}
		if s.Count() != len(oracle) {
			t.Logf("Count = %d, oracle %d", s.Count(), len(oracle))
			return false
		}
		if s.Used() != want {
			t.Logf("Used = %d, oracle %d", s.Used(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
