// Package store implements a data server's backing store: a POSIX-like
// file store plus a Mass Storage System (MSS) staging tier.
//
// The paper's data servers keep files on the host's native file system
// and may front a tape archive: a requested file that exists only in
// mass storage is "staged" online, during which the server answers
// location queries with "preparing" (the Vp state) and clients are told
// to wait. The store reproduces that behaviour with a configurable
// staging delay so benchmarks can exercise the Vp/prepare paths the
// paper describes (Sections II-B2, III-B2).
//
// Two backends share one interface. The default is an in-memory map
// (fast, hermetic — what every simulation and most tests want). Setting
// Config.Root selects the disk backend: real files under Root, an MSS
// staging directory whose stage-in moves files online, and a
// configurable fsync policy. Both backends satisfy the same map-oracle
// property test (prop_test.go), so code above the store cannot tell
// them apart except by durability. See STORAGE.md for the operator
// view and DESIGN.md §10 for the data plane.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"scalla/internal/vclock"
)

// Errors reported by the store.
var (
	ErrNotFound = errors.New("store: file not found")
	ErrExists   = errors.New("store: file already exists")
	ErrStaging  = errors.New("store: file is being staged from mass storage")
	ErrOffline  = errors.New("store: file is offline in mass storage")
	ErrNoSpace  = errors.New("store: no space left")
	ErrClosed   = errors.New("store: store is closed")
)

// FsyncPolicy selects when the disk backend flushes dirty file data to
// stable storage. The in-memory backend ignores it.
type FsyncPolicy string

// The three fsync policies. Empty means FsyncInterval.
const (
	// FsyncNever leaves flushing entirely to the OS page-cache
	// writeback. Fastest; a power loss can drop every acknowledged
	// write still in the cache (Stats.DirtyBytes bounds the exposure).
	FsyncNever FsyncPolicy = "never"
	// FsyncInterval runs a background flusher that syncs every dirty
	// file each Config.FsyncEvery. Bounded loss window, near-zero
	// per-write cost. This is the default.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncAlways syncs after every WriteAt/Truncate/Put before
	// acknowledging. No acknowledged write is ever lost to power
	// failure, at the cost of an fsync on the write path.
	FsyncAlways FsyncPolicy = "always"
)

func (p FsyncPolicy) valid() bool {
	switch p {
	case "", FsyncNever, FsyncInterval, FsyncAlways:
		return true
	}
	return false
}

// Info describes one file.
type Info struct {
	Path   string
	Size   int64
	Online bool // false: exists only in mass storage
}

// Stats is a point-in-time snapshot of store health, surfaced through
// the obs summary stream (dirty bytes, fsync latency, stage queue).
type Stats struct {
	// Backend is "mem" or "disk".
	Backend string
	// Files is the number of online files; Offline the number that
	// exist only in mass storage; Staging the stage-in queue depth.
	Files   int
	Offline int
	Staging int
	// UsedBytes is the logical bytes of online data.
	UsedBytes int64
	// DirtyBytes is written-but-not-yet-fsynced data — the bytes at
	// risk if power fails now. Always 0 for the mem backend.
	DirtyBytes int64
	// Fsyncs counts completed fsync calls; FsyncNanos their total
	// duration and FsyncMaxNanos the slowest single call.
	Fsyncs        int64
	FsyncNanos    int64
	FsyncMaxNanos int64
	// StagedIn counts files promoted online from the MSS directory
	// since open; Recovered counts files found under Root at open.
	StagedIn  int64
	Recovered int
}

// Config parameterizes a Store.
type Config struct {
	// Root, when set, selects the disk backend: files live under this
	// directory (created if missing), survive restarts, and are
	// recovered by Open. Empty selects the in-memory backend.
	Root string
	// MSSDir is the disk backend's mass-storage staging directory: a
	// file placed here (by an operator, a tape system, or
	// PutOffline) is "offline" until staged in, at which point it is
	// moved under Root. Default: Root + ".mss" (a sibling directory,
	// so the namespace under Root is never shadowed).
	MSSDir string
	// Fsync selects the disk backend's durability policy. Default
	// FsyncInterval.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval flush period. Default 1 s.
	FsyncEvery time.Duration
	// Capacity bounds the total bytes of online data. 0 means unlimited.
	Capacity int64
	// StageDelay is how long staging a file from mass storage takes.
	// Default 2 seconds (the paper notes real staging takes minutes;
	// benches shrink it).
	StageDelay time.Duration
	// OnWrite, if set, is called (on the writer's goroutine, without
	// store locks held) after every successful WriteAt. Qserv workers
	// use it to notice queries arriving as file writes (Section IV-B).
	OnWrite func(path string)
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.StageDelay <= 0 {
		c.StageDelay = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.Root != "" && c.MSSDir == "" {
		c.MSSDir = c.Root + ".mss"
	}
	if c.Fsync == "" {
		c.Fsync = FsyncInterval
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = time.Second
	}
	return c
}

// Store is a file store with an attached MSS staging tier. It is safe
// for concurrent use. The zero value is not usable; call New or Open.
type Store struct {
	cfg Config

	d *diskStore // non-nil: disk backend; all methods dispatch to it

	mu      sync.Mutex
	files   map[string][]byte // online data
	mss     map[string][]byte // offline (tape) copies
	staging map[string]chan struct{}
	used    int64
}

// New returns an empty in-memory Store, or a disk-backed one when
// cfg.Root is set. Disk open errors panic; daemons that want to handle
// them call Open instead.
func New(cfg Config) *Store {
	s, err := Open(cfg)
	if err != nil {
		panic("store: " + err.Error())
	}
	return s
}

// Open returns a Store for cfg, recovering any files already present
// under cfg.Root when the disk backend is selected.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if !cfg.Fsync.valid() {
		return nil, fmt.Errorf("store: unknown fsync policy %q", cfg.Fsync)
	}
	s := &Store{
		cfg:     cfg,
		files:   make(map[string][]byte),
		mss:     make(map[string][]byte),
		staging: make(map[string]chan struct{}),
	}
	if cfg.Root != "" {
		d, err := openDisk(cfg)
		if err != nil {
			return nil, err
		}
		s.d = d
	}
	return s, nil
}

// Close releases the store: the disk backend stops its interval
// flusher, performs a final sync, and closes every file descriptor.
// The in-memory backend is a no-op. Further calls fail with ErrClosed.
func (s *Store) Close() error {
	if s.d != nil {
		return s.d.close()
	}
	return nil
}

// Sync forces all dirty data to stable storage regardless of the fsync
// policy. The in-memory backend is a no-op.
func (s *Store) Sync() error {
	if s.d != nil {
		return s.d.syncAll()
	}
	return nil
}

// Stats returns a snapshot of store health.
func (s *Store) Stats() Stats {
	if s.d != nil {
		return s.d.stats()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	off := 0
	for p := range s.mss {
		if _, online := s.files[p]; !online {
			off++
		}
	}
	return Stats{
		Backend:   "mem",
		Files:     len(s.files),
		Offline:   off,
		Staging:   len(s.staging),
		UsedBytes: s.used,
	}
}

// StagingPaths returns the paths currently being staged in, sorted. It
// backs the detsim invariant that a file in Vp never serves bytes.
func (s *Store) StagingPaths() []string {
	if s.d != nil {
		return s.d.stagingPaths()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.staging))
	for p := range s.staging {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Put places an online file, replacing any existing content. It is the
// loader used by workload generators.
func (s *Store) Put(path string, data []byte) error {
	if s.d != nil {
		return s.d.put(path, data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := int64(len(s.files[path]))
	if err := s.reserve(int64(len(data)) - old); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.files[path] = cp
	return nil
}

// PutOffline places a file in mass storage only.
func (s *Store) PutOffline(path string, data []byte) {
	if s.d != nil {
		s.d.putOffline(path, data)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mss[path] = cp
}

// reserve accounts delta bytes against capacity. Caller holds s.mu.
func (s *Store) reserve(delta int64) error {
	if s.cfg.Capacity > 0 && s.used+delta > s.cfg.Capacity {
		return ErrNoSpace
	}
	s.used += delta
	if s.used < 0 {
		s.used = 0
	}
	return nil
}

// Create makes a new empty online file. It fails with ErrExists if the
// path exists online or in mass storage.
func (s *Store) Create(path string) error {
	if s.d != nil {
		return s.d.create(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; ok {
		return ErrExists
	}
	if _, ok := s.mss[path]; ok {
		return ErrExists
	}
	s.files[path] = nil
	return nil
}

// Stat reports metadata for path. A staged-out file reports
// Online=false.
func (s *Store) Stat(path string) (Info, error) {
	if s.d != nil {
		return s.d.stat(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.files[path]; ok {
		return Info{Path: path, Size: int64(len(d)), Online: true}, nil
	}
	if d, ok := s.mss[path]; ok {
		return Info{Path: path, Size: int64(len(d)), Online: false}, nil
	}
	return Info{}, ErrNotFound
}

// HasOnline reports whether path is immediately servable.
func (s *Store) HasOnline(path string) bool {
	if s.d != nil {
		return s.d.hasOnline(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files[path]
	return ok
}

// Has reports whether path exists at all (online or in mass storage).
func (s *Store) Has(path string) bool {
	if s.d != nil {
		return s.d.has(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; ok {
		return true
	}
	_, ok := s.mss[path]
	return ok
}

// IsStaging reports whether path is currently being staged.
func (s *Store) IsStaging(path string) bool {
	if s.d != nil {
		return s.d.isStaging(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.staging[path]
	return ok
}

// Stage begins bringing an offline file online, if it is not already
// online or being staged. It returns a channel closed when staging
// completes (immediately-closed for online files) and ErrNotFound for
// unknown paths.
func (s *Store) Stage(path string) (<-chan struct{}, error) {
	if s.d != nil {
		return s.d.stage(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; ok {
		done := make(chan struct{})
		close(done)
		return done, nil
	}
	if ch, ok := s.staging[path]; ok {
		return ch, nil
	}
	data, ok := s.mss[path]
	if !ok {
		return nil, ErrNotFound
	}
	ch := make(chan struct{})
	s.staging[path] = ch
	go func() {
		s.cfg.Clock.Sleep(s.cfg.StageDelay)
		s.mu.Lock()
		if _, still := s.staging[path]; still {
			delete(s.staging, path)
			if s.reserve(int64(len(data))) == nil {
				s.files[path] = data
			}
		}
		s.mu.Unlock()
		close(ch)
	}()
	return ch, nil
}

// ReadAt reads up to n bytes at off. It reports eof when the read
// reaches the end of the file. Reading an offline file begins staging
// and returns ErrStaging; the caller should tell the client to wait.
func (s *Store) ReadAt(path string, off int64, n int) (data []byte, eof bool, err error) {
	if s.d != nil {
		return s.d.readAt(path, off, n)
	}
	s.mu.Lock()
	d, ok := s.files[path]
	if !ok {
		_, inMSS := s.mss[path]
		s.mu.Unlock()
		if inMSS {
			if _, serr := s.Stage(path); serr == nil {
				return nil, false, ErrStaging
			}
		}
		return nil, false, ErrNotFound
	}
	if off < 0 {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("store: negative offset %d", off)
	}
	if off >= int64(len(d)) {
		s.mu.Unlock()
		return nil, true, nil
	}
	end := off + int64(n)
	if end >= int64(len(d)) {
		end = int64(len(d))
		eof = true
	}
	out := make([]byte, end-off)
	copy(out, d[off:end])
	s.mu.Unlock()
	return out, eof, nil
}

// ReadAtInto copies up to len(dst) bytes at off into dst, returning
// how many bytes were written. Unlike ReadAt it allocates nothing: the
// caller supplies the destination (typically a pooled wire frame, so
// the file bytes are copied exactly once — store to frame in memory,
// page cache to frame on disk). Semantics otherwise match ReadAt,
// including ErrStaging for offline files.
func (s *Store) ReadAtInto(path string, off int64, dst []byte) (n int, eof bool, err error) {
	if s.d != nil {
		return s.d.readAtInto(path, off, dst)
	}
	s.mu.Lock()
	d, ok := s.files[path]
	if !ok {
		_, inMSS := s.mss[path]
		s.mu.Unlock()
		if inMSS {
			if _, serr := s.Stage(path); serr == nil {
				return 0, false, ErrStaging
			}
		}
		return 0, false, ErrNotFound
	}
	if off < 0 {
		s.mu.Unlock()
		return 0, false, fmt.Errorf("store: negative offset %d", off)
	}
	if off >= int64(len(d)) {
		s.mu.Unlock()
		return 0, true, nil
	}
	end := off + int64(len(dst))
	if end >= int64(len(d)) {
		end = int64(len(d))
		eof = true
	}
	n = copy(dst, d[off:end])
	s.mu.Unlock()
	return n, eof, nil
}

// WriteAt writes data at off, growing the file (zero-filled gap) as
// needed. The file must be online.
func (s *Store) WriteAt(path string, off int64, data []byte) (int, error) {
	if s.d != nil {
		return s.d.writeAt(path, off, data)
	}
	s.mu.Lock()
	d, ok := s.files[path]
	if !ok {
		_, inMSS := s.mss[path]
		s.mu.Unlock()
		if inMSS {
			return 0, ErrOffline
		}
		return 0, ErrNotFound
	}
	if off < 0 {
		s.mu.Unlock()
		return 0, fmt.Errorf("store: negative offset %d", off)
	}
	end := off + int64(len(data))
	if end > int64(len(d)) {
		if err := s.reserve(end - int64(len(d))); err != nil {
			s.mu.Unlock()
			return 0, err
		}
		nd := make([]byte, end)
		copy(nd, d)
		d = nd
	}
	copy(d[off:end], data)
	s.files[path] = d
	hook := s.cfg.OnWrite
	s.mu.Unlock()
	if hook != nil {
		hook(path)
	}
	return len(data), nil
}

// Truncate resizes path to size bytes, zero-filling any extension. The
// file must be online.
func (s *Store) Truncate(path string, size int64) error {
	if s.d != nil {
		return s.d.truncate(path, size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.files[path]
	if !ok {
		if _, inMSS := s.mss[path]; inMSS {
			return ErrOffline
		}
		return ErrNotFound
	}
	if size < 0 {
		return fmt.Errorf("store: negative size %d", size)
	}
	if err := s.reserve(size - int64(len(d))); err != nil {
		return err
	}
	if size <= int64(len(d)) {
		s.files[path] = d[:size:size]
		return nil
	}
	nd := make([]byte, size)
	copy(nd, d)
	s.files[path] = nd
	return nil
}

// Unlink removes path from the online store and mass storage. Removing
// a file mid-staging cancels the staging result.
func (s *Store) Unlink(path string) error {
	if s.d != nil {
		return s.d.unlink(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, online := s.files[path]
	_, offline := s.mss[path]
	if !online && !offline {
		return ErrNotFound
	}
	if online {
		s.used -= int64(len(d))
		if s.used < 0 {
			s.used = 0
		}
		delete(s.files, path)
	}
	delete(s.mss, path)
	delete(s.staging, path) // staging goroutine will find it gone
	return nil
}

// List returns Info for every file (online and offline) under prefix,
// sorted by path. It backs the Cluster Name Space daemon.
func (s *Store) List(prefix string) []Info {
	if s.d != nil {
		return s.d.list(prefix)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Info
	for p, d := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, Info{Path: p, Size: int64(len(d)), Online: true})
		}
	}
	for p, d := range s.mss {
		if _, online := s.files[p]; online {
			continue
		}
		if strings.HasPrefix(p, prefix) {
			out = append(out, Info{Path: p, Size: int64(len(d)), Online: false})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Used returns the logical bytes of online data.
func (s *Store) Used() int64 {
	if s.d != nil {
		return s.d.usedBytes()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Free returns the remaining capacity, or a large value when unlimited.
func (s *Store) Free() int64 {
	if s.d != nil {
		return s.d.free()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Capacity <= 0 {
		return 1 << 50
	}
	f := s.cfg.Capacity - s.used
	if f < 0 {
		return 0
	}
	return f
}

// Count returns the number of online files.
func (s *Store) Count() int {
	if s.d != nil {
		return s.d.count()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}
