package store

import (
	"bytes"
	"testing"
	"time"

	"scalla/internal/vclock"
)

func TestCreateWriteRead(t *testing.T) {
	s := New(Config{})
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/f"); err != ErrExists {
		t.Fatalf("duplicate create: %v", err)
	}
	n, err := s.WriteAt("/f", 0, []byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	data, eof, err := s.ReadAt("/f", 6, 5)
	if err != nil || !eof || string(data) != "world" {
		t.Fatalf("ReadAt = %q, eof=%v, %v", data, eof, err)
	}
	data, eof, err = s.ReadAt("/f", 0, 5)
	if err != nil || eof || string(data) != "hello" {
		t.Fatalf("ReadAt = %q, eof=%v, %v", data, eof, err)
	}
}

func TestReadPastEOF(t *testing.T) {
	s := New(Config{})
	s.Put("/f", []byte("abc"))
	data, eof, err := s.ReadAt("/f", 10, 5)
	if err != nil || !eof || len(data) != 0 {
		t.Fatalf("ReadAt past EOF = %q, eof=%v, %v", data, eof, err)
	}
}

func TestNegativeOffsets(t *testing.T) {
	s := New(Config{})
	s.Put("/f", []byte("abc"))
	if _, _, err := s.ReadAt("/f", -1, 5); err == nil {
		t.Error("negative read offset accepted")
	}
	if _, err := s.WriteAt("/f", -1, []byte("x")); err == nil {
		t.Error("negative write offset accepted")
	}
}

func TestSparseWriteZeroFills(t *testing.T) {
	s := New(Config{})
	s.Create("/f")
	s.WriteAt("/f", 5, []byte("xy"))
	data, eof, err := s.ReadAt("/f", 0, 10)
	if err != nil || !eof {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0, 0, 0, 0, 0, 'x', 'y'}) {
		t.Fatalf("sparse data = %v", data)
	}
}

func TestStatAndHas(t *testing.T) {
	s := New(Config{})
	s.Put("/on", []byte("1234"))
	s.PutOffline("/off", []byte("123456"))

	in, err := s.Stat("/on")
	if err != nil || !in.Online || in.Size != 4 {
		t.Fatalf("Stat online = %+v, %v", in, err)
	}
	in, err = s.Stat("/off")
	if err != nil || in.Online || in.Size != 6 {
		t.Fatalf("Stat offline = %+v, %v", in, err)
	}
	if _, err := s.Stat("/nope"); err != ErrNotFound {
		t.Fatalf("Stat missing = %v", err)
	}
	if !s.Has("/off") || s.HasOnline("/off") {
		t.Error("Has/HasOnline wrong for offline file")
	}
	if !s.HasOnline("/on") {
		t.Error("HasOnline wrong for online file")
	}
}

func TestStagingBringsFileOnline(t *testing.T) {
	fc := vclock.NewFake()
	s := New(Config{StageDelay: time.Minute, Clock: fc})
	s.PutOffline("/tape", []byte("archived"))

	// First read triggers staging.
	_, _, err := s.ReadAt("/tape", 0, 8)
	if err != ErrStaging {
		t.Fatalf("ReadAt offline = %v, want ErrStaging", err)
	}
	if !s.IsStaging("/tape") {
		t.Fatal("staging not in progress")
	}
	ch, err := s.Stage("/tape") // idempotent
	if err != nil {
		t.Fatal(err)
	}
	fc.BlockUntil(1)
	fc.Advance(time.Minute)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("staging never completed")
	}
	data, _, err := s.ReadAt("/tape", 0, 8)
	if err != nil || string(data) != "archived" {
		t.Fatalf("post-stage read = %q, %v", data, err)
	}
	if s.IsStaging("/tape") {
		t.Error("still staging after completion")
	}
}

func TestStageOnlineFileIsImmediate(t *testing.T) {
	s := New(Config{})
	s.Put("/f", []byte("x"))
	ch, err := s.Stage("/f")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("staging an online file must complete immediately")
	}
}

func TestStageUnknownFile(t *testing.T) {
	s := New(Config{})
	if _, err := s.Stage("/nope"); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteOfflineFileFails(t *testing.T) {
	s := New(Config{})
	s.PutOffline("/tape", []byte("x"))
	if _, err := s.WriteAt("/tape", 0, []byte("y")); err != ErrOffline {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	s := New(Config{})
	s.Put("/f", []byte("0123456789"))
	if err := s.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	data, eof, _ := s.ReadAt("/f", 0, 20)
	if !eof || string(data) != "0123" {
		t.Fatalf("after shrink: %q eof=%v", data, eof)
	}
	if err := s.Truncate("/f", 8); err != nil {
		t.Fatal(err)
	}
	data, _, _ = s.ReadAt("/f", 0, 20)
	if string(data) != "0123\x00\x00\x00\x00" {
		t.Fatalf("after grow: %v", data)
	}
	if err := s.Truncate("/f", -1); err == nil {
		t.Error("negative size accepted")
	}
	if err := s.Truncate("/nope", 0); err != ErrNotFound {
		t.Errorf("missing file: %v", err)
	}
	s.PutOffline("/t", []byte("x"))
	if err := s.Truncate("/t", 0); err != ErrOffline {
		t.Errorf("offline file: %v", err)
	}
}

func TestTruncateRespectsCapacity(t *testing.T) {
	s := New(Config{Capacity: 10})
	s.Put("/f", []byte("12345"))
	if err := s.Truncate("/f", 20); err != ErrNoSpace {
		t.Fatalf("over-capacity grow: %v", err)
	}
	if err := s.Truncate("/f", 2); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 2 {
		t.Errorf("Used = %d after shrink", s.Used())
	}
}

func TestUnlink(t *testing.T) {
	s := New(Config{})
	s.Put("/f", []byte("12345"))
	if s.Used() != 5 {
		t.Fatalf("Used = %d", s.Used())
	}
	if err := s.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 {
		t.Errorf("Used = %d after unlink", s.Used())
	}
	if err := s.Unlink("/f"); err != ErrNotFound {
		t.Fatalf("double unlink = %v", err)
	}
}

func TestUnlinkCancelsStaging(t *testing.T) {
	fc := vclock.NewFake()
	s := New(Config{StageDelay: time.Minute, Clock: fc})
	s.PutOffline("/tape", []byte("x"))
	ch, _ := s.Stage("/tape")
	s.Unlink("/tape")
	fc.BlockUntil(1)
	fc.Advance(time.Minute)
	<-ch
	if s.Has("/tape") {
		t.Error("unlinked file reappeared after staging")
	}
}

func TestCapacity(t *testing.T) {
	s := New(Config{Capacity: 10})
	if err := s.Put("/a", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("/b", make([]byte, 8)); err != ErrNoSpace {
		t.Fatalf("over-capacity Put = %v", err)
	}
	if s.Free() != 2 {
		t.Errorf("Free = %d, want 2", s.Free())
	}
	s.Create("/c")
	if _, err := s.WriteAt("/c", 0, make([]byte, 3)); err != ErrNoSpace {
		t.Fatalf("over-capacity WriteAt = %v", err)
	}
	if _, err := s.WriteAt("/c", 0, make([]byte, 2)); err != nil {
		t.Fatalf("in-capacity WriteAt = %v", err)
	}
}

func TestFreeUnlimited(t *testing.T) {
	s := New(Config{})
	if s.Free() < 1<<40 {
		t.Error("unlimited store must report huge free space")
	}
}

func TestList(t *testing.T) {
	s := New(Config{})
	s.Put("/store/b", []byte("1"))
	s.Put("/store/a", []byte("22"))
	s.PutOffline("/store/c", []byte("333"))
	s.Put("/other/x", []byte("4"))

	got := s.List("/store")
	if len(got) != 3 {
		t.Fatalf("List = %d entries, want 3", len(got))
	}
	if got[0].Path != "/store/a" || got[1].Path != "/store/b" || got[2].Path != "/store/c" {
		t.Errorf("List order wrong: %+v", got)
	}
	if !got[0].Online || got[2].Online {
		t.Errorf("online flags wrong: %+v", got)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3 online files", s.Count())
	}
}

func TestPutReplacesAccounting(t *testing.T) {
	s := New(Config{Capacity: 10})
	s.Put("/f", make([]byte, 8))
	if err := s.Put("/f", make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 4 {
		t.Errorf("Used = %d, want 4", s.Used())
	}
	if err := s.Put("/f", make([]byte, 10)); err != nil {
		t.Fatalf("replacement within capacity refused: %v", err)
	}
}
