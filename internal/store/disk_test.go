package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scalla/internal/vclock"
)

func openDiskStore(t *testing.T, cfg Config) (*Store, string) {
	t.Helper()
	root := filepath.Join(t.TempDir(), "data")
	cfg.Root = root
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, root
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	root := filepath.Join(t.TempDir(), "data")
	s, err := Open(Config{Root: root, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("/a/b/file1", []byte("hello disk")); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/empty"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt("/empty", 3, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same root recovers both files: contents,
	// sizes, Used accounting, and the sparse zero-fill.
	s2, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _, err := s2.ReadAt("/a/b/file1", 0, 64)
	if err != nil || string(got) != "hello disk" {
		t.Fatalf("recovered read: %q, %v", got, err)
	}
	got, _, err = s2.ReadAt("/empty", 0, 64)
	if err != nil || !bytes.Equal(got, []byte{0, 0, 0, 'x', 'y', 'z'}) {
		t.Fatalf("recovered sparse read: %v, %v", got, err)
	}
	if s2.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s2.Count())
	}
	if want := int64(10 + 6); s2.Used() != want {
		t.Fatalf("Used = %d, want %d", s2.Used(), want)
	}
	if st := s2.Stats(); st.Backend != "disk" || st.Recovered != 2 {
		t.Fatalf("stats = %+v, want disk/2 recovered", st)
	}
}

func TestDiskStageMovesFileOnline(t *testing.T) {
	s, root := openDiskStore(t, Config{StageDelay: 10 * time.Millisecond})
	s.PutOffline("/tape/big", []byte("from the archive"))

	mssPath := filepath.Join(root+".mss", "tape", "big")
	if _, err := os.Stat(mssPath); err != nil {
		t.Fatalf("offline file not in MSS dir: %v", err)
	}
	ch, err := s.Stage("/tape/big")
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	// Stage-in is a move: present under root, gone from the MSS dir.
	if _, err := os.Stat(filepath.Join(root, "tape", "big")); err != nil {
		t.Fatalf("staged file not under root: %v", err)
	}
	if _, err := os.Stat(mssPath); !os.IsNotExist(err) {
		t.Fatalf("staged file still in MSS dir: %v", err)
	}
	got, _, err := s.ReadAt("/tape/big", 0, 64)
	if err != nil || string(got) != "from the archive" {
		t.Fatalf("staged read: %q, %v", got, err)
	}
	if st := s.Stats(); st.StagedIn != 1 {
		t.Fatalf("StagedIn = %d, want 1", st.StagedIn)
	}
}

func TestDiskMSSDirPreloadedByOperator(t *testing.T) {
	// The MSS contract: files an operator (or tape system) drops into
	// the MSS directory before startup are offline-visible after Open.
	base := t.TempDir()
	root := filepath.Join(base, "data")
	mss := filepath.Join(base, "mss")
	if err := os.MkdirAll(filepath.Join(mss, "exp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mss, "exp", "run1"), []byte("cold data"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{Root: root, MSSDir: mss, StageDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	info, err := s.Stat("/exp/run1")
	if err != nil || info.Online || info.Size != 9 {
		t.Fatalf("offline stat = %+v, %v", info, err)
	}
	ch, err := s.Stage("/exp/run1")
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	got, _, err := s.ReadAt("/exp/run1", 0, 64)
	if err != nil || string(got) != "cold data" {
		t.Fatalf("staged read: %q, %v", got, err)
	}
}

func TestDiskFsyncAlwaysCountsSyncs(t *testing.T) {
	s, _ := openDiskStore(t, Config{Fsync: FsyncAlways})
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.WriteAt("/f", int64(i*8), []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Fsyncs < 4 {
		t.Fatalf("Fsyncs = %d, want >= 4", st.Fsyncs)
	}
	if st.DirtyBytes != 0 {
		t.Fatalf("DirtyBytes = %d after fsync=always writes", st.DirtyBytes)
	}
}

func TestDiskFsyncNeverReportsDirtyBytes(t *testing.T) {
	s, _ := openDiskStore(t, Config{Fsync: FsyncNever})
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt("/f", 0, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Fsyncs != 0 {
		t.Fatalf("Fsyncs = %d under fsync=never", st.Fsyncs)
	}
	if st.DirtyBytes != 1000 {
		t.Fatalf("DirtyBytes = %d, want 1000 (the at-risk window)", st.DirtyBytes)
	}
	// An explicit Sync drains the window regardless of policy.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DirtyBytes != 0 || st.Fsyncs == 0 {
		t.Fatalf("post-Sync stats = %+v", st)
	}
}

func TestDiskFsyncIntervalFlushes(t *testing.T) {
	clk := vclock.NewFake()
	s, _ := openDiskStore(t, Config{Fsync: FsyncInterval, FsyncEvery: time.Second, Clock: clk})
	clk.BlockUntil(1) // the flusher's ticker is registered
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt("/f", 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DirtyBytes != 512 {
		t.Fatalf("DirtyBytes = %d before tick", st.DirtyBytes)
	}
	clk.Advance(time.Second)
	// Poll on Fsyncs, not DirtyBytes: the flusher zeroes the dirty
	// counter before the sync completes, so Fsyncs is the completion
	// signal.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flusher never ran: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.DirtyBytes != 0 {
		t.Fatalf("DirtyBytes = %d after interval flush", st.DirtyBytes)
	}
}

func TestDiskRejectsBadFsyncPolicy(t *testing.T) {
	_, err := Open(Config{Root: t.TempDir() + "/d", Fsync: "sometimes"})
	if err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

func TestDiskPathTraversalStaysUnderRoot(t *testing.T) {
	s, root := openDiskStore(t, Config{})
	if err := s.Create("/../../escape"); err != nil {
		t.Fatal(err)
	}
	// The ".." collapses against the logical root: the file must land
	// under the store root, not beside it.
	if _, err := os.Stat(filepath.Join(root, "escape")); err != nil {
		t.Fatalf("cleaned path not under root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(root), "escape")); !os.IsNotExist(err) {
		t.Fatal("path traversal escaped the store root")
	}
}

func TestDiskUnlinkRemovesBackingFile(t *testing.T) {
	s, root := openDiskStore(t, Config{})
	if err := s.Put("/x/y", []byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlink("/x/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "x", "y")); !os.IsNotExist(err) {
		t.Fatalf("backing file survived unlink: %v", err)
	}
	if s.Used() != 0 || s.Count() != 0 {
		t.Fatalf("Used=%d Count=%d after unlink", s.Used(), s.Count())
	}
}

func TestDiskCapacityEnforced(t *testing.T) {
	s, _ := openDiskStore(t, Config{Capacity: 100})
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt("/f", 0, make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt("/f", 80, make([]byte, 40)); err != ErrNoSpace {
		t.Fatalf("overflow write: %v, want ErrNoSpace", err)
	}
	if s.Free() != 20 {
		t.Fatalf("Free = %d, want 20", s.Free())
	}
}

func TestDiskClosedStoreRefusesWrites(t *testing.T) {
	root := filepath.Join(t.TempDir(), "data")
	s, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt("/f", 0, []byte("x")); err != ErrClosed {
		t.Fatalf("write after close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != ErrClosed {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
}

func TestDiskUnlinkDuringStagingCancels(t *testing.T) {
	s, root := openDiskStore(t, Config{StageDelay: 50 * time.Millisecond})
	s.PutOffline("/t/f", []byte("data"))
	ch, err := s.Stage("/t/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unlink("/t/f"); err != nil {
		t.Fatal(err)
	}
	<-ch
	if s.Has("/t/f") || s.HasOnline("/t/f") {
		t.Fatal("unlinked file resurfaced after cancelled stage")
	}
	if _, err := os.Stat(filepath.Join(root, "t", "f")); !os.IsNotExist(err) {
		t.Fatal("cancelled stage left a file under root")
	}
}

func TestDiskMSSDropWhileRunning(t *testing.T) {
	// The other half of the MSS contract: a file dropped into the MSS
	// directory while the server is RUNNING is discovered lazily on
	// its first miss (has/stat/read), stages in, and serves.
	base := t.TempDir()
	mss := filepath.Join(base, "mss")
	s, err := Open(Config{Root: filepath.Join(base, "data"), MSSDir: mss,
		StageDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Has("/exp/late") {
		t.Fatal("phantom file before the drop")
	}
	if err := os.MkdirAll(filepath.Join(mss, "exp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mss, "exp", "late"), []byte("tape data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !s.Has("/exp/late") {
		t.Fatal("runtime MSS drop not discovered by Has")
	}
	if info, err := s.Stat("/exp/late"); err != nil || info.Online || info.Size != 9 {
		t.Fatalf("offline stat = %+v, %v", info, err)
	}
	// A read on the discovered file kicks the stage, like any offline
	// read.
	if _, _, err := s.ReadAt("/exp/late", 0, 4); err != ErrStaging {
		t.Fatalf("read before stage: %v, want ErrStaging", err)
	}
	ch, err := s.Stage("/exp/late")
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	got, _, err := s.ReadAt("/exp/late", 0, 9)
	if err != nil || string(got) != "tape data" {
		t.Fatalf("post-stage read = %q, %v", got, err)
	}
}

// BenchmarkDiskWriteAt measures a 64 KiB server-side write under each
// fsync policy — the numbers behind STORAGE.md's durability trade-off
// table. Offsets walk a 64 MiB window so interval/never runs exercise
// steady-state dirty tracking rather than one hot page.
func BenchmarkDiskWriteAt(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run("fsync="+string(pol), func(b *testing.B) {
			s, err := Open(Config{Root: filepath.Join(b.TempDir(), "data"), Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if err := s.Put("/bench", nil); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 64<<10)
			b.SetBytes(64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(i%1024) * int64(len(buf))
				if _, err := s.WriteAt("/bench", off, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
