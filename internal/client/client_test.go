package client

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/nsd"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/store"
	"scalla/internal/transport"
)

const (
	tFullDelay  = 150 * time.Millisecond
	tFastPeriod = 20 * time.Millisecond
)

type rig struct {
	net    *transport.InProc
	mgr    *cmsd.Node
	srvs   []*cmsd.Node
	stores []*store.Store
}

func buildCluster(t *testing.T, nServers int) *rig {
	t.Helper()
	net := transport.NewInProc(transport.InProcConfig{})
	r := &rig{net: net}
	mgr, err := cmsd.NewNode(cmsd.NodeConfig{
		Name: "mgr", Role: proto.RoleManager,
		DataAddr: "mgr:data", CtlAddr: "mgr:ctl", Net: net,
		Core: cmsd.Config{
			Cache:     cache.Config{InitialBuckets: 89},
			Queue:     respq.Config{Period: tFastPeriod},
			FullDelay: tFullDelay,
		},
		PingInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	r.mgr = mgr
	for i := 0; i < nServers; i++ {
		st := store.New(store.Config{StageDelay: 50 * time.Millisecond})
		srv, err := cmsd.NewNode(cmsd.NodeConfig{
			Name: fmt.Sprintf("srv%d", i), Role: proto.RoleServer,
			DataAddr: fmt.Sprintf("srv%d:data", i),
			Parents:  []string{"mgr:ctl"}, Prefixes: []string{"/"},
			Net: net, Store: st,
			StageWaitMillis: 20, ReconnectDelay: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Stop)
		r.srvs = append(r.srvs, srv)
		r.stores = append(r.stores, st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Core().Table().Count() < nServers {
		if time.Now().After(deadline) {
			t.Fatal("cluster never formed")
		}
		time.Sleep(time.Millisecond)
	}
	return r
}

func (r *rig) client(t *testing.T) *Client {
	cl := New(Config{Net: r.net, Managers: []string{"mgr:data"}})
	t.Cleanup(cl.Close)
	return cl
}

func TestOpenReadCloseThroughManager(t *testing.T) {
	r := buildCluster(t, 3)
	r.stores[2].Put("/store/data.root", []byte("event data here"))
	cl := r.client(t)

	f, err := cl.Open("/store/data.root")
	if err != nil {
		t.Fatal(err)
	}
	if f.Server() != "srv2:data" {
		t.Errorf("served by %s", f.Server())
	}
	if f.Size() != 15 {
		t.Errorf("Size = %d", f.Size())
	}
	got, err := io.ReadAll(f)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "event data here" {
		t.Fatalf("read %q", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileWriteFileRoundTrip(t *testing.T) {
	r := buildCluster(t, 2)
	cl := r.client(t)
	payload := bytes.Repeat([]byte("scalla"), 1000)

	if err := cl.WriteFile("/out/result.bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/out/result.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(payload))
	}
}

func TestWriteFileTruncatesExisting(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.client(t)
	if err := cl.WriteFile("/f", []byte("a much longer original payload")); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteFile("/f", []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/f")
	if err != nil || string(got) != "short" {
		t.Fatalf("rewrite = %q, %v (stale tail not truncated?)", got, err)
	}
}

func TestFileTruncate(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.client(t)
	f, err := cl.Create("/t")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("0123456789"))
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 {
		t.Errorf("Size = %d", f.Size())
	}
	f.Close()
	got, _ := cl.ReadFile("/t")
	if string(got) != "012" {
		t.Fatalf("content = %q", got)
	}
}

func TestOpenNotExist(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.client(t)
	_, err := cl.Open("/no/such/file")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestCreateExclusive(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.client(t)
	f, err := cl.Create("/excl")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := cl.Create("/excl"); !errors.Is(err, ErrExist) {
		t.Fatalf("second create err = %v, want ErrExist", err)
	}
}

func TestRefreshRecoveryOnStaleLocation(t *testing.T) {
	r := buildCluster(t, 2)
	r.stores[0].Put("/f", []byte("replica"))
	r.stores[1].Put("/f", []byte("replica"))
	cl := r.client(t)

	// Warm the cache so both holders are known.
	f, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, v, ok := r.mgr.Core().Cache().Fetch("/f", r.mgr.Core().Table().VmFor("/f"), 0)
		if ok && v.Vh.Count() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never both cached")
		}
		time.Sleep(time.Millisecond)
	}
	served := f.Server()

	// Delete the file from under the open handle on that server.
	for i, s := range r.srvs {
		if s.DataAddr() == served {
			r.stores[i].Unlink("/f")
		}
	}
	// The read hits ENoEnt at the stale holder and must transparently
	// recover via refresh to the surviving replica.
	buf := make([]byte, 16)
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("recovered read error: %v", err)
	}
	if string(buf[:n]) != "replica" {
		t.Fatalf("recovered read = %q", buf[:n])
	}
	if f.Server() == served {
		t.Error("recovery did not move to the other holder")
	}
	f.Close()
}

func TestStatThroughRedirect(t *testing.T) {
	r := buildCluster(t, 2)
	r.stores[1].Put("/s", []byte("12345"))
	cl := r.client(t)
	st, err := cl.Stat("/s")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exists || st.Size != 5 || !st.Online {
		t.Errorf("stat = %+v", st)
	}
	if _, err := cl.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat missing err = %v", err)
	}
}

func TestUnlink(t *testing.T) {
	r := buildCluster(t, 1)
	r.stores[0].Put("/doomed", []byte("x"))
	cl := r.client(t)
	if err := cl.Unlink("/doomed"); err != nil {
		t.Fatal(err)
	}
	if r.stores[0].Has("/doomed") {
		t.Error("file survived unlink")
	}
}

func TestPrepareThenBulkOpen(t *testing.T) {
	r := buildCluster(t, 1)
	var paths []string
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/bulk/%d", i)
		paths = append(paths, p)
		r.stores[0].PutOffline(p, []byte("cold"))
	}
	cl := r.client(t)
	if err := cl.Prepare(paths, false); err != nil {
		t.Fatal(err)
	}
	// Staging (50 ms each, parallel) plus one resolution delay; all
	// files then open without paying five separate full delays.
	deadline := time.Now().Add(10 * time.Second)
	for _, p := range paths {
		for {
			f, err := cl.Open(p)
			if err == nil {
				f.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("prepared file %s never opened: %v", p, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestWaitBudgetExhausted(t *testing.T) {
	r := buildCluster(t, 1)
	cl := New(Config{
		Net: r.net, Managers: []string{"mgr:data"},
		WaitBudget: 10 * time.Millisecond, // below the 150 ms full delay
	})
	t.Cleanup(cl.Close)
	_, err := cl.Open("/cold/miss")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestManagerReplicaFailover(t *testing.T) {
	r := buildCluster(t, 1)
	r.stores[0].Put("/f", []byte("x"))
	cl := New(Config{
		Net:      r.net,
		Managers: []string{"deadmgr:data", "mgr:data"}, // first unreachable
	})
	t.Cleanup(cl.Close)
	f, err := cl.Open("/f")
	if err != nil {
		t.Fatalf("failover open: %v", err)
	}
	f.Close()
}

func TestListNamespace(t *testing.T) {
	r := buildCluster(t, 2)
	r.stores[0].Put("/ns/a", []byte("1"))
	r.stores[1].Put("/ns/b", []byte("22"))
	d := nsd.New(r.net, "srv0:data", "srv1:data")
	if err := d.Serve("nsd:addr"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	cl := r.client(t)
	entries, err := cl.ListNamespace("nsd:addr", "/ns")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Path != "/ns/a" || entries[1].Path != "/ns/b" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestSeek(t *testing.T) {
	r := buildCluster(t, 1)
	r.stores[0].Put("/s", []byte("0123456789"))
	cl := r.client(t)
	f, err := cl.Open("/s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if pos, err := f.Seek(4, io.SeekStart); err != nil || pos != 4 {
		t.Fatalf("SeekStart = %d, %v", pos, err)
	}
	buf := make([]byte, 3)
	if n, _ := f.Read(buf); n != 3 || string(buf) != "456" {
		t.Fatalf("read after seek = %q", buf[:n])
	}
	if pos, err := f.Seek(-2, io.SeekCurrent); err != nil || pos != 5 {
		t.Fatalf("SeekCurrent = %d, %v", pos, err)
	}
	if pos, err := f.Seek(-1, io.SeekEnd); err != nil || pos != 9 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}
	if n, err := f.Read(buf); n != 1 || buf[0] != '9' || (err != nil && err != io.EOF) {
		t.Fatalf("read at end = %q, %v", buf[:n], err)
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}
	var _ io.ReadSeekCloser = f // compile-time conformance
}

func TestHopLimitExceeded(t *testing.T) {
	// A malicious/looping redirector that always redirects to itself.
	net := transport.NewInProc(transport.InProcConfig{})
	l, err := net.Listen("loop")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					frame, err := conn.Recv()
					if err != nil {
						return
					}
					sid := proto.StreamID(frame)
					conn.Send(proto.MarshalStream(proto.Redirect{Addr: "loop", CtlAddr: "loop"}, sid))
				}
			}()
		}
	}()
	cl := New(Config{Net: net, Managers: []string{"loop"}, MaxHops: 3})
	defer cl.Close()
	_, err = cl.Open("/f")
	if err == nil {
		t.Fatal("redirect loop not detected")
	}
}

func TestClientRedialsAfterConnDrop(t *testing.T) {
	r := buildCluster(t, 1)
	r.stores[0].Put("/f", []byte("x"))
	cl := r.client(t)
	if _, err := cl.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	// Sever every cached connection behind the client's back; the next
	// call must transparently redial.
	cl.Close()
	if _, err := cl.Stat("/f"); err != nil {
		t.Fatalf("post-drop stat: %v", err)
	}
}

func TestConcurrentClientsShareConnections(t *testing.T) {
	r := buildCluster(t, 2)
	for i := 0; i < 16; i++ {
		r.stores[i%2].Put(fmt.Sprintf("/c/%d", i), []byte("x"))
	}
	cl := r.client(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := cl.ReadFile(fmt.Sprintf("/c/%d", (g+i)%16)); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSequentialWriteRead(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.client(t)
	f, err := cl.Create("/seq")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f.Write([]byte(fmt.Sprintf("part%d|", i))); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	got, err := cl.ReadFile("/seq")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "part0|part1|part2|part3|" {
		t.Fatalf("sequential content = %q", got)
	}
}
