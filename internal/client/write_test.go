package client

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func (r *rig) windowClient(t *testing.T, window int) *Client {
	cl := New(Config{Net: r.net, Managers: []string{"mgr:data"}, WriteWindow: window})
	t.Cleanup(cl.Close)
	return cl
}

// A pipelined sequential write round-trips byte-for-byte: the window
// reorders nothing, Flush settles every ack, and a read sees it all.
func TestWriteWindowRoundTrip(t *testing.T) {
	r := buildCluster(t, 2)
	cl := r.windowClient(t, 8)

	f, err := cl.Create("/win/out.bin")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i := 0; i < 64; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i%26)}, 777)
		want.Write(chunk)
		n, err := f.Write(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/win/out.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), want.Len())
	}
}

// Read-your-writes: a Read issued while a window is open flushes it
// first, so the read observes every pipelined byte.
func TestWriteWindowFlushesBeforeRead(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.windowClient(t, 4)

	f, err := cl.Create("/win/ryw")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if _, err := f.WriteAt([]byte("abcd"), int64(i*4)); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush: ReadAt itself must settle the window.
	buf := make([]byte, 12)
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != 12 || string(buf) != "abcdabcdabcd" {
		t.Fatalf("read-your-writes got %q (%d)", buf[:n], n)
	}
}

// A server-side failure inside the window surfaces as a sticky error:
// the next write (or Flush, or Close) reports it, and Flush clears it.
func TestWriteWindowStickyError(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.windowClient(t, 4)

	f, err := cl.Create("/win/err")
	if err != nil {
		t.Fatal(err)
	}
	// Yank the file out from under the open handle; the server answers
	// pipelined writes for a vanished file with an error.
	if err := r.stores[0].Unlink("/win/err"); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 32 && firstErr == nil; i++ {
		_, firstErr = f.WriteAt([]byte("doomed"), int64(i*6))
	}
	if firstErr == nil {
		firstErr = f.Flush()
	}
	if firstErr == nil {
		t.Fatal("window against an unlinked file never failed")
	}
	if !errors.Is(firstErr, ErrNotExist) && !errors.Is(firstErr, ErrIO) {
		t.Fatalf("window failure is untyped: %v", firstErr)
	}
	// The first Flush reports (and clears) the sticky failure; with
	// the window drained, a second Flush must come back clean.
	f.Flush()
	if err := f.Flush(); err != nil {
		t.Fatalf("sticky error survived Flush: %v", err)
	}
}

// Close reports an unflushed window failure so no lost write goes
// unnoticed even if the caller never reads or flushes.
func TestWriteWindowCloseReportsFailure(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.windowClient(t, 8)

	f, err := cl.Create("/win/closing")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.stores[0].Unlink("/win/closing"); err != nil {
		t.Fatal(err)
	}
	sawError := false
	for i := 0; i < 4; i++ {
		if _, err := f.WriteAt([]byte("x"), int64(i)); err != nil {
			sawError = true
		}
	}
	if err := f.Close(); err != nil {
		sawError = true
	}
	if !sawError {
		t.Fatal("all writes and Close succeeded against an unlinked file")
	}
}

// WriteWindow 1 (the default) stays strictly lock-step: every WriteAt
// returns only after its WriteOK, so errors surface on the failing
// call itself.
func TestWriteWindowDefaultIsLockStep(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.client(t)

	f, err := cl.Create("/win/lockstep")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.stores[0].Unlink("/win/lockstep"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("fails now"), 2); err == nil {
		t.Fatal("lock-step write against unlinked file succeeded")
	}
	if err := f.Flush(); err != nil {
		t.Fatalf("lock-step Flush must be a no-op, got %v", err)
	}
}

// Interleaved windows on many files over one shared pooled connection
// stay isolated: each file's acks settle against its own window.
func TestWriteWindowManyFilesShareConnection(t *testing.T) {
	r := buildCluster(t, 1)
	cl := r.windowClient(t, 4)

	files := make([]*File, 6)
	for i := range files {
		f, err := cl.Create(fmt.Sprintf("/win/multi%d", i))
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	for round := 0; round < 10; round++ {
		for i, f := range files {
			chunk := bytes.Repeat([]byte{byte('A' + i)}, 100)
			if _, err := f.Write(chunk); err != nil {
				t.Fatalf("file %d round %d: %v", i, round, err)
			}
		}
	}
	for i, f := range files {
		if err := f.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
		got, err := cl.ReadFile(fmt.Sprintf("/win/multi%d", i))
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte('A' + i)}, 1000)
		if !bytes.Equal(got, want) {
			t.Fatalf("file %d: %d bytes, first %q", i, len(got), got[:1])
		}
	}
}
