// Package client implements the Scalla client library: it contacts a
// manager (or any of its replicas), follows redirects down the tree,
// honours wait/retry verdicts, and transparently recovers from stale
// location information by requesting a cache refresh that names the
// failing host (paper Sections II-B2/3 and III-C1).
package client

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"scalla/internal/backoff"
	"scalla/internal/mux"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// Errors reported by the client.
var (
	ErrNotExist = errors.New("scalla: file does not exist")
	ErrExist    = errors.New("scalla: file already exists")
	ErrIO       = errors.New("scalla: I/O error")
	ErrTimeout  = errors.New("scalla: wait budget exhausted")
	ErrNoServer = errors.New("scalla: no manager reachable")
	// ErrAllReplicasFailed marks a walk on which every attempted host
	// failed at the transport level. Match it with errors.Is; errors.As
	// against *AllReplicasError recovers the tried-host set.
	ErrAllReplicasFailed = errors.New("scalla: all replicas failed")
	// ErrRetryAfter marks an operation the server shed under overload
	// protection (proto.RetryAfter) for longer than the client's wait
	// budget. A shed host is healthy — it answered — so this error is
	// deliberately never wrapped in AllReplicasError and never triggers
	// stale-location refresh (FAULTS.md, "Shed versus drop").
	ErrRetryAfter = errors.New("scalla: shed by overloaded server")
)

// AllReplicasError reports a walk that failed at every host it reached:
// each manager replica (and any redirect target a replica handed out)
// either was unreachable or broke mid-exchange. It lets callers
// distinguish retryable cluster-side trouble from fatal verdicts like
// ErrNotExist. errors.Is matches both ErrAllReplicasFailed and the last
// underlying failure's chain.
type AllReplicasError struct {
	// Tried lists the addresses that failed, in attempt order. The last
	// entry is the host whose failure ended the walk — when it is not a
	// manager, the walk died following a redirect to a stale location.
	Tried []string
	// Err is the last underlying failure.
	Err error
}

func (e *AllReplicasError) Error() string {
	return fmt.Sprintf("scalla: all replicas failed (tried %s): %v",
		strings.Join(e.Tried, ", "), e.Err)
}

// Unwrap exposes both the sentinel and the last cause to errors.Is/As.
func (e *AllReplicasError) Unwrap() []error {
	return []error{ErrAllReplicasFailed, e.Err}
}

// LastTried returns the final failing address (empty if none recorded).
func (e *AllReplicasError) LastTried() string {
	if len(e.Tried) == 0 {
		return ""
	}
	return e.Tried[len(e.Tried)-1]
}

// Config parameterizes a Client.
type Config struct {
	// Net supplies transport.
	Net transport.Network
	// Managers are the data addresses of the (replicated) head nodes.
	Managers []string
	// MaxHops bounds a redirect chain. Default 8 (a 3-level tree uses 3).
	MaxHops int
	// WaitBudget bounds the cumulative time spent obeying Wait verdicts
	// for a single operation. Default 30 s.
	WaitBudget time.Duration
	// RPCTimeout bounds one request/reply exchange. A dropped frame
	// surfaces as a failed attempt (the connection is torn down and
	// redialed) instead of a hang. It must comfortably exceed the
	// cluster's full delay, since redirectors block a Locate up to that
	// long before answering. Default 15 s.
	RPCTimeout time.Duration
	// RPCAttempts is how many times one exchange is tried before the
	// walk gives up on the host, redialing between attempts. Default 2.
	RPCAttempts int
	// Retry paces the gap between RPC attempts (jittered exponential
	// backoff, reset after each success). The zero value uses the
	// backoff package defaults scaled down for a client: Base 25 ms,
	// Max 500 ms.
	Retry backoff.Policy
	// RetrySeed seeds the retry jitter for reproducible schedules.
	RetrySeed int64
	// Readahead is how many sequential Read requests a File keeps in
	// flight over its server connection (the pipelined window of
	// DESIGN.md §8). 1 disables readahead — every Read is a lock-step
	// request/reply round trip. Default 4.
	Readahead int
	// WriteWindow is how many WriteAt requests a File keeps in flight
	// before blocking on the oldest acknowledgment (the write mirror
	// of Readahead; DESIGN.md §10). 1 (the default) is lock-step:
	// every write waits for its WriteOK before returning. With a
	// larger window WriteAt returns optimistically once the request
	// is on the wire; a later failure is reported by Flush, by the
	// next File operation, or at Close — there is no transparent
	// recovery for pipelined writes (the client no longer holds the
	// bytes), so callers that need the stronger guarantee keep the
	// default.
	WriteWindow int
	// MaxInFlight bounds the concurrent streams multiplexed onto one
	// pooled server connection; further requests queue. Default 64.
	MaxInFlight int
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
	// Tracer records one span per walk (redirect chain) with the hops
	// and waits as events. Default: a disabled tracer.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxHops <= 0 {
		c.MaxHops = 8
	}
	if c.WaitBudget <= 0 {
		c.WaitBudget = 30 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 15 * time.Second
	}
	if c.RPCAttempts <= 0 {
		c.RPCAttempts = 2
	}
	if c.Retry.Base <= 0 {
		c.Retry.Base = 25 * time.Millisecond
	}
	if c.Retry.Max <= 0 {
		c.Retry.Max = 500 * time.Millisecond
	}
	if c.Readahead <= 0 {
		c.Readahead = 4
	}
	if c.WriteWindow <= 0 {
		c.WriteWindow = 1
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(0, c.Clock)
	}
	return c
}

// Client is a Scalla client. It is safe for concurrent use; requests to
// the same server pipeline over one shared multiplexed connection, so N
// goroutines (or one File's readahead window) share a single socket
// instead of serializing on it (DESIGN.md §8).
type Client struct {
	cfg   Config
	retry *backoff.Backoff
	pool  *mux.Pool

	// shedRng jitters retry-after pauses so a cohort of shed clients
	// does not stampede back in lockstep; seeded for reproducibility.
	shedMu  sync.Mutex
	shedRng *rand.Rand
}

// New returns a Client.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:     cfg,
		retry:   backoff.New(cfg.Retry, cfg.RetrySeed),
		shedRng: rand.New(rand.NewSource(cfg.RetrySeed + 0x5ca11a)),
		pool: mux.NewPool(cfg.Net, mux.Options{
			MaxInFlight: cfg.MaxInFlight,
			Clock:       cfg.Clock,
		}),
	}
}

// shedDelay converts a RetryAfter hint into a jittered pause in
// [hint/2, hint]: the server already jittered the hint upward, the
// client jitters downward, and the product is a spread cohort rather
// than a synchronized retry storm.
func (cl *Client) shedDelay(r proto.RetryAfter) time.Duration {
	h := time.Duration(r.Millis) * time.Millisecond
	if h < time.Millisecond {
		h = time.Millisecond
	}
	cl.shedMu.Lock()
	d := h/2 + time.Duration(cl.shedRng.Int63n(int64(h/2)+1))
	cl.shedMu.Unlock()
	return d
}

// Close drops all cached connections, failing any in-flight requests.
func (cl *Client) Close() {
	cl.pool.Close()
}

// rpc performs one request/reply exchange with addr over the pooled
// multiplexed connection. Each attempt is bounded by RPCTimeout; a
// failed attempt drops the pooled connection (preserving the fault
// semantics of FAULTS.md — concurrent streams on it fail fast with
// their own retries) and redials after a jittered backoff so a
// struggling host is not hammered in a tight loop.
func (cl *Client) rpc(addr string, m proto.Message) (proto.Message, error) {
	var lastErr error
	for attempt := 0; attempt < cl.cfg.RPCAttempts; attempt++ {
		if attempt > 0 {
			cl.cfg.Clock.Sleep(cl.retry.Next())
		}
		mc, err := cl.pool.Get(addr)
		if err != nil {
			return nil, err
		}
		reply, err := mc.Call(m, cl.cfg.RPCTimeout)
		if err != nil {
			cl.pool.Drop(addr, mc)
			lastErr = err
			continue
		}
		cl.retry.Reset()
		return reply, nil
	}
	return nil, fmt.Errorf("%w: %s unreachable: %v", ErrIO, addr, lastErr)
}

// rpcFrame is rpc for the data path: it additionally returns the pooled
// reply frame — which the decoded message's byte fields may alias — and
// the caller must Release it on every outcome once done with the reply.
func (cl *Client) rpcFrame(addr string, m proto.Message) (proto.Message, *proto.Frame, error) {
	var lastErr error
	for attempt := 0; attempt < cl.cfg.RPCAttempts; attempt++ {
		if attempt > 0 {
			cl.cfg.Clock.Sleep(cl.retry.Next())
		}
		mc, err := cl.pool.Get(addr)
		if err != nil {
			return nil, nil, err
		}
		ca, err := mc.Start(m)
		if err == nil {
			var reply proto.Message
			var frame *proto.Frame
			reply, frame, err = ca.WaitFrame(cl.cfg.RPCTimeout)
			if err == nil {
				cl.retry.Reset()
				return reply, frame, nil
			}
		}
		cl.pool.Drop(addr, mc)
		lastErr = err
	}
	return nil, nil, fmt.Errorf("%w: %s unreachable: %v", ErrIO, addr, lastErr)
}

// walk sends m starting at a manager, following Redirects and obeying
// Waits, until a terminal reply arrives. It returns the reply and the
// address that produced it. When every replica fails the error is a
// typed *AllReplicasError carrying the tried-host set, so callers can
// tell retryable cluster trouble from fatal verdicts.
func (cl *Client) walk(m proto.Message) (proto.Message, string, error) {
	var lastErr error
	var tried []string
	for _, mgr := range cl.cfg.Managers {
		reply, addr, err := cl.walkFrom(mgr, m)
		if err == nil {
			return reply, addr, nil
		}
		tried = append(tried, addr)
		lastErr = err
		if errors.Is(err, ErrTimeout) || errors.Is(err, ErrRetryAfter) {
			// The wait budget is an end-to-end bound; another replica
			// would only wait on the same pending resolution (or the
			// same overloaded cluster).
			break
		}
	}
	if lastErr == nil {
		return nil, "", ErrNoServer
	}
	if errors.Is(lastErr, ErrRetryAfter) {
		// A shed is backpressure from a healthy host, not a replica
		// failure: surface it bare so callers neither count it toward
		// ErrAllReplicasFailed nor run stale-location recovery on it.
		return nil, "", lastErr
	}
	return nil, "", &AllReplicasError{Tried: tried, Err: lastErr}
}

func (cl *Client) walkFrom(addr string, m proto.Message) (proto.Message, string, error) {
	_, isLocate := m.(proto.Locate)
	waited := time.Duration(0)
	hops := 0
	sp := cl.cfg.Tracer.Start("walk", walkPath(m))
	for {
		reply, err := cl.rpc(addr, m)
		if err != nil {
			sp.End("error " + addr)
			return nil, addr, err
		}
		// A walk requests a refresh at most once: re-sending Refresh on
		// every Wait retry would re-arm the object's processing deadline
		// at the manager each round, turning a vanished file into a
		// wait-budget livelock instead of an honest no-entry verdict
		// after one full delay.
		if lc, ok := m.(proto.Locate); ok && lc.Refresh {
			lc.Refresh, lc.Avoid = false, ""
			m = lc
		}
		switch r := reply.(type) {
		case proto.Redirect:
			// A redirect to a data server answers a Locate; only
			// redirects to another redirector (CtlAddr set) are
			// followed for location queries.
			if isLocate && r.CtlAddr == "" {
				sp.End("redirect " + r.Addr)
				return reply, addr, nil
			}
			hops++
			if hops > cl.cfg.MaxHops {
				sp.End("too many hops")
				return nil, addr, fmt.Errorf("%w: redirect chain exceeded %d hops", ErrIO, cl.cfg.MaxHops)
			}
			sp.Event("hop", r.Addr)
			addr = r.Addr
		case proto.Wait:
			d := time.Duration(r.Millis) * time.Millisecond
			if d <= 0 {
				d = time.Millisecond
			}
			waited += d
			if waited > cl.cfg.WaitBudget {
				sp.End("wait budget exhausted")
				return nil, addr, ErrTimeout
			}
			sp.Event("wait", d.String())
			cl.cfg.Clock.Sleep(d)
		case proto.RetryAfter:
			// Overload shed: the host is healthy and told us when to
			// come back, so back off (jittered, against the same wait
			// budget) and retry rather than marking the replica failed.
			d := cl.shedDelay(r)
			waited += d
			if waited > cl.cfg.WaitBudget {
				sp.End("shed budget exhausted")
				return nil, addr, ErrRetryAfter
			}
			sp.Event("shed", d.String())
			cl.cfg.Clock.Sleep(d)
		default:
			sp.End(fmt.Sprintf("%T from %s", reply, addr))
			return reply, addr, nil
		}
	}
}

// walkPath extracts the path a walk operates on, for its trace span.
func walkPath(m proto.Message) string {
	switch r := m.(type) {
	case proto.Locate:
		return r.Path
	case proto.Open:
		return r.Path
	case proto.Stat:
		return r.Path
	case proto.Unlink:
		return r.Path
	default:
		return ""
	}
}

func errFrom(e proto.Err) error {
	switch e.Code {
	case proto.ENoEnt:
		return ErrNotExist
	case proto.EExist:
		return ErrExist
	default:
		return fmt.Errorf("%w: %s", ErrIO, e.Msg)
	}
}

// Locate resolves path to a data server address without opening it.
func (cl *Client) Locate(path string, write bool) (string, error) {
	return cl.locate(proto.Locate{Path: path, Write: write})
}

// Relocate forces a cache refresh for path before resolving it,
// optionally avoiding a known-bad host. Use it to discover files
// created after the manager cached their non-existence (the timing
// edge effects of Section III-C1).
func (cl *Client) Relocate(path string, write bool, avoid string) (string, error) {
	return cl.locate(proto.Locate{Path: path, Write: write, Refresh: true, Avoid: avoid})
}

func (cl *Client) locate(req proto.Locate) (string, error) {
	reply, addr, err := cl.walk(req)
	if err != nil {
		return "", err
	}
	switch r := reply.(type) {
	case proto.Redirect:
		return r.Addr, nil
	case proto.Err:
		return "", errFrom(r)
	default:
		// A terminal Locate reply from a server-less walk; the last
		// addr answered something unexpected.
		return addr, fmt.Errorf("%w: unexpected locate reply %T", ErrIO, reply)
	}
}

// File is an open remote file. Sequential Reads pipeline a readahead
// window of Config.Readahead outstanding requests over the shared
// server connection; any non-sequential access (Seek, ReadAt, writes)
// cancels the window.
type File struct {
	cl    *Client
	path  string
	addr  string
	fh    uint64
	write bool
	size  int64
	off   int64 // sequential read/write cursor
	mu    sync.Mutex
	ra    []raChunk // outstanding readahead window, ascending offsets
	ww    []wwChunk // outstanding pipelined writes, issue order
	werr  error     // sticky pipelined-write failure, cleared by Flush
}

// raChunk is one in-flight readahead request.
type raChunk struct {
	off  int64
	n    uint32
	call *mux.Call
	mc   *mux.Conn
}

// wwChunk is one in-flight pipelined write awaiting its WriteOK.
type wwChunk struct {
	off  int64
	n    int
	call *mux.Call
	mc   *mux.Conn
}

// cancelReadahead abandons every outstanding readahead request. Caller
// holds f.mu. Safe on an empty window.
func (f *File) cancelReadahead() {
	for _, c := range f.ra {
		c.call.Cancel()
	}
	f.ra = nil
}

// fillReadahead tops the window up to Readahead outstanding requests of
// want bytes each, starting at the cursor and advancing by want.
// Requests are not issued past the known size (the size can grow; the
// lock-step path still sees appended data). Caller holds f.mu.
func (f *File) fillReadahead(want uint32) error {
	for len(f.ra) < f.cl.cfg.Readahead {
		next := f.off
		if n := len(f.ra); n > 0 {
			last := f.ra[n-1]
			next = last.off + int64(last.n)
		}
		if next >= f.size && next > f.off {
			break // don't speculate past EOF
		}
		mc, err := f.cl.pool.Get(f.addr)
		if err != nil {
			return err
		}
		call, err := mc.Start(proto.Read{FH: f.fh, Off: next, N: want})
		if err != nil {
			f.cl.pool.Drop(f.addr, mc)
			return err
		}
		f.ra = append(f.ra, raChunk{off: next, n: want, call: call, mc: mc})
	}
	return nil
}

// readSequential serves one sequential Read from the readahead window,
// filling it first and consuming the head chunk. Any surprise — a Wait
// verdict, an error, a short chunk — drains the window and falls back
// to the recovering lock-step path. Caller holds f.mu.
func (f *File) readSequential(p []byte) (int, error) {
	want := uint32(len(p))
	// A window built for a different cursor or chunk size is useless.
	if len(f.ra) > 0 && (f.ra[0].off != f.off || f.ra[0].n != want) {
		f.cancelReadahead()
	}
	if err := f.fillReadahead(want); err != nil {
		f.cancelReadahead()
		return f.readAtLocked(p, f.off, true)
	}
	head := f.ra[0]
	f.ra = f.ra[1:]
	reply, frame, err := head.call.WaitFrame(f.cl.cfg.RPCTimeout)
	if err != nil {
		// Timeout or connection death: the rest of the window is dead or
		// stale either way. The lock-step path redials and recovers.
		f.cancelReadahead()
		f.cl.pool.Drop(f.addr, head.mc)
		return f.readAtLocked(p, f.off, true)
	}
	data, ok := reply.(proto.Data)
	if !ok {
		// Wait verdict (staging) or an error: the speculative window was
		// issued against the wrong state of the file. Drain it and let
		// the lock-step path sleep/recover.
		frame.Release()
		f.cancelReadahead()
		return f.readAtLocked(p, f.off, true)
	}
	// data.Bytes aliases the pooled reply frame; copy out, then recycle.
	n := copy(p, data.Bytes)
	frame.Release()
	if data.EOF || uint32(n) != want {
		// The tail of the window overshot the end of the file.
		f.cancelReadahead()
	}
	if data.EOF {
		return n, io.EOF
	}
	return n, nil
}

// Open opens path for reading.
func (cl *Client) Open(path string) (*File, error) {
	return cl.open(path, false, false)
}

// OpenWrite opens path for writing (the file must exist).
func (cl *Client) OpenWrite(path string) (*File, error) {
	return cl.open(path, true, false)
}

// Create creates path exclusively and opens it for writing. Note the
// paper's caveat: proving non-existence costs one full delay, so bulk
// creators should Prepare first.
func (cl *Client) Create(path string) (*File, error) {
	return cl.open(path, true, true)
}

func (cl *Client) open(path string, write, create bool) (*File, error) {
	reply, addr, err := cl.walk(proto.Open{Path: path, Write: write, Create: create})
	if err != nil {
		// Stale-location recovery (Section III-C1): when the walk died
		// at a redirect target rather than at a manager, the manager
		// vectored us at a host that stopped serving. Ask for a cache
		// refresh that names the failing host, then follow the fresh
		// location — once; repeated failure surfaces the typed error.
		var are *AllReplicasError
		if errors.As(err, &are) && !errors.Is(err, ErrTimeout) &&
			are.LastTried() != "" && !cl.isManager(are.LastTried()) {
			if f, rerr := cl.openRefreshed(path, write, create, are.LastTried()); rerr == nil {
				return f, nil
			}
		}
		return nil, err
	}
	switch r := reply.(type) {
	case proto.OpenOK:
		return &File{cl: cl, path: path, addr: addr, fh: r.FH, write: write || create, size: r.Size}, nil
	case proto.Err:
		return nil, errFrom(r)
	default:
		return nil, fmt.Errorf("%w: unexpected open reply %T", ErrIO, reply)
	}
}

// isManager reports whether addr is one of the configured replicas.
func (cl *Client) isManager(addr string) bool {
	for _, m := range cl.cfg.Managers {
		if m == addr {
			return true
		}
	}
	return false
}

// openRefreshed retries an open after host avoid failed to serve path:
// it forces a cache refresh naming the failing host, then opens at the
// freshly resolved location.
func (cl *Client) openRefreshed(path string, write, create bool, avoid string) (*File, error) {
	reply, _, err := cl.walk(proto.Locate{Path: path, Write: write || create, Refresh: true, Avoid: avoid})
	if err != nil {
		return nil, err
	}
	rd, ok := reply.(proto.Redirect)
	if !ok {
		if e, isErr := reply.(proto.Err); isErr {
			return nil, errFrom(e)
		}
		return nil, fmt.Errorf("%w: refresh did not redirect (%T)", ErrIO, reply)
	}
	reply, addr, err := cl.walkFrom(rd.Addr, proto.Open{Path: path, Write: write, Create: create})
	if err != nil {
		return nil, err
	}
	switch r := reply.(type) {
	case proto.OpenOK:
		return &File{cl: cl, path: path, addr: addr, fh: r.FH, write: write || create, size: r.Size}, nil
	case proto.Err:
		return nil, errFrom(r)
	default:
		return nil, fmt.Errorf("%w: unexpected open reply %T", ErrIO, reply)
	}
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Server returns the data server currently serving the file.
func (f *File) Server() string { return f.addr }

// Size returns the size reported at open time.
func (f *File) Size() int64 { return f.size }

// recover reopens the file elsewhere after addr failed to serve it: it
// asks the manager for a cache refresh naming the failing host, then
// reopens at the fresh location (Section III-C1).
func (f *File) recover() error {
	f.cancelReadahead() // the window targets the failed server and handle
	reply, addr, err := f.cl.walk(proto.Locate{Path: f.path, Write: f.write, Refresh: true, Avoid: f.addr})
	if err != nil {
		return err
	}
	rd, ok := reply.(proto.Redirect)
	if !ok {
		if e, isErr := reply.(proto.Err); isErr {
			return errFrom(e)
		}
		return fmt.Errorf("%w: refresh did not redirect (%T)", ErrIO, reply)
	}
	_ = addr
	// Open directly at the fresh holder (it may itself redirect).
	reply, addr, err = f.cl.walkFrom(rd.Addr, proto.Open{Path: f.path, Write: f.write})
	if err != nil {
		return err
	}
	okMsg, isOK := reply.(proto.OpenOK)
	if !isOK {
		if e, isErr := reply.(proto.Err); isErr {
			return errFrom(e)
		}
		return fmt.Errorf("%w: reopen failed (%T)", ErrIO, reply)
	}
	f.addr, f.fh, f.size = addr, okMsg.FH, okMsg.Size
	return nil
}

// ReadAt implements io.ReaderAt with transparent refresh recovery.
// Random access cancels any sequential readahead window.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cancelReadahead()
	if err := f.flushWrites(); err != nil {
		return 0, err
	}
	return f.readAtLocked(p, off, true)
}

func (f *File) readAtLocked(p []byte, off int64, mayRecover bool) (int, error) {
	var shedWaited time.Duration
retry:
	// The frame-returning rpc keeps the hot read path pooled: the Data
	// bytes are copied out below and the frame recycled on every verdict.
	reply, frame, err := f.cl.rpcFrame(f.addr, proto.Read{FH: f.fh, Off: off, N: uint32(len(p))})
	if err == nil {
		if w, isWait := reply.(proto.Wait); isWait {
			frame.Release()
			f.cl.cfg.Clock.Sleep(time.Duration(w.Millis) * time.Millisecond)
			goto retry
		}
		if ra, isShed := reply.(proto.RetryAfter); isShed {
			// Overload shed: back off and re-send. The server is fine
			// (it answered), so recovery to another replica is wrong;
			// bound the patience by the wait budget.
			frame.Release()
			d := f.cl.shedDelay(ra)
			shedWaited += d
			if shedWaited > f.cl.cfg.WaitBudget {
				return 0, fmt.Errorf("read at %d: %w", off, ErrRetryAfter)
			}
			f.cl.cfg.Clock.Sleep(d)
			goto retry
		}
	}
	if err != nil {
		if !mayRecover {
			return 0, err
		}
		if rerr := f.recover(); rerr != nil {
			return 0, rerr
		}
		return f.readAtLocked(p, off, false)
	}
	switch r := reply.(type) {
	case proto.Data:
		n := copy(p, r.Bytes)
		eof := r.EOF
		frame.Release()
		if eof {
			return n, io.EOF
		}
		return n, nil
	case proto.Err:
		frame.Release()
		if mayRecover && (r.Code == proto.ENoEnt || r.Code == proto.EIO) {
			if rerr := f.recover(); rerr != nil {
				return 0, rerr
			}
			return f.readAtLocked(p, off, false)
		}
		return 0, errFrom(r)
	default:
		frame.Release()
		return 0, fmt.Errorf("%w: unexpected read reply %T", ErrIO, reply)
	}
}

// Read implements io.Reader (sequential). With Readahead > 1 it keeps
// a window of pipelined requests in flight so consecutive Reads stream
// instead of paying a round trip each.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Read-your-writes: pipelined writes settle before any read.
	if err := f.flushWrites(); err != nil {
		return 0, err
	}
	var (
		n   int
		err error
	)
	if f.cl.cfg.Readahead > 1 && len(p) > 0 {
		n, err = f.readSequential(p)
	} else {
		n, err = f.readAtLocked(p, f.off, true)
	}
	f.off += int64(n)
	return n, err
}

// Seek implements io.Seeker over the sequential cursor, making File a
// full io.ReadSeekCloser (what the Root framework expects of a file).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = f.size
	default:
		return 0, fmt.Errorf("%w: bad whence %d", ErrIO, whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("%w: negative seek position", ErrIO)
	}
	if pos != f.off {
		f.cancelReadahead()
	}
	f.off = pos
	return pos, nil
}

// reapWrite settles the oldest in-flight pipelined write. Anything
// but a full WriteOK — a transport error, a Wait verdict, a server
// error, a short write — fails the whole window: the client no longer
// holds the bytes of the writes behind it, so nothing can be replayed.
// The failure is sticky in f.werr until Flush reports it. Caller
// holds f.mu and guarantees the window is non-empty.
func (f *File) reapWrite() error {
	c := f.ww[0]
	f.ww = f.ww[1:]
	reply, err := c.call.Wait(f.cl.cfg.RPCTimeout)
	if err != nil {
		f.cl.pool.Drop(f.addr, c.mc)
		f.failWindow(fmt.Errorf("%w: pipelined write at %d: %v", ErrIO, c.off, err))
		return f.werr
	}
	switch r := reply.(type) {
	case proto.WriteOK:
		if int(r.N) != c.n {
			f.failWindow(fmt.Errorf("%w: short pipelined write at %d: %d of %d bytes", ErrIO, c.off, r.N, c.n))
			return f.werr
		}
		return nil
	case proto.Wait:
		// The file went into staging under the window. A lock-step
		// write would sleep and retry; a pipelined one cannot (the
		// bytes are gone), so the caller must rewrite after Flush.
		f.failWindow(fmt.Errorf("%w: pipelined write at %d deferred by staging; rewrite after Flush", ErrIO, c.off))
		return f.werr
	case proto.RetryAfter:
		// Shed under overload. Same shape as Wait: the bytes are gone,
		// so the window cannot transparently retry — but the error is
		// the typed shed so callers back off instead of failing over.
		f.failWindow(fmt.Errorf("pipelined write at %d shed; rewrite after Flush: %w", c.off, ErrRetryAfter))
		return f.werr
	case proto.Err:
		f.failWindow(fmt.Errorf("pipelined write at %d: %w", c.off, errFrom(r)))
		return f.werr
	default:
		f.failWindow(fmt.Errorf("%w: unexpected pipelined write reply %T", ErrIO, reply))
		return f.werr
	}
}

// failWindow abandons every in-flight pipelined write and records the
// sticky error. Caller holds f.mu.
func (f *File) failWindow(err error) {
	for _, c := range f.ww {
		c.call.Cancel()
	}
	f.ww = nil
	f.werr = err
}

// flushWrites drains the pipelined-write window and returns (and
// clears) any sticky failure. Caller holds f.mu.
func (f *File) flushWrites() error {
	for len(f.ww) > 0 && f.werr == nil {
		f.reapWrite()
	}
	err := f.werr
	f.werr = nil
	return err
}

// Flush blocks until every pipelined write has been acknowledged,
// returning the first failure (which covers every write issued since
// the last Flush — on error the caller knows only that some suffix of
// the window did not land). A lock-step File (WriteWindow 1) always
// returns nil.
func (f *File) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushWrites()
}

// WriteAt implements io.WriterAt. With Config.WriteWindow > 1 writes
// pipeline: WriteAt returns once the request is on the wire and up to
// WriteWindow acknowledgments ride behind — mirroring the readahead
// window, so batch loads aren't lock-step round trips. Failures
// surface on a later call (see Flush).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cancelReadahead() // speculative reads may race the write
	if f.cl.cfg.WriteWindow > 1 {
		return f.writeAtPipelined(p, off)
	}
	var shedWaited time.Duration
	for {
		reply, err := f.cl.rpc(f.addr, proto.Write{FH: f.fh, Off: off, Bytes: p})
		if err != nil {
			return 0, err
		}
		switch r := reply.(type) {
		case proto.WriteOK:
			if end := off + int64(r.N); end > f.size {
				f.size = end
			}
			return int(r.N), nil
		case proto.RetryAfter:
			// Lock-step writes still hold the bytes, so a shed is fully
			// retryable after a jittered pause.
			d := f.cl.shedDelay(r)
			shedWaited += d
			if shedWaited > f.cl.cfg.WaitBudget {
				return 0, fmt.Errorf("write at %d: %w", off, ErrRetryAfter)
			}
			f.cl.cfg.Clock.Sleep(d)
		case proto.Err:
			return 0, errFrom(r)
		default:
			return 0, fmt.Errorf("%w: unexpected write reply %T", ErrIO, reply)
		}
	}
}

// writeAtPipelined issues one write into the window. Caller holds f.mu.
func (f *File) writeAtPipelined(p []byte, off int64) (int, error) {
	if f.werr != nil {
		return 0, f.werr
	}
	// Opportunistically settle writes whose acks already arrived, so a
	// streaming writer sees errors within a window's worth of bytes
	// rather than only at Flush.
	for len(f.ww) > 0 {
		select {
		case <-f.ww[0].call.Done():
			if err := f.reapWrite(); err != nil {
				return 0, err
			}
			continue
		default:
		}
		break
	}
	// Block on the oldest ack once the window is full.
	for len(f.ww) >= f.cl.cfg.WriteWindow {
		if err := f.reapWrite(); err != nil {
			return 0, err
		}
	}
	mc, err := f.cl.pool.Get(f.addr)
	if err != nil {
		return 0, err
	}
	call, err := mc.Start(proto.Write{FH: f.fh, Off: off, Bytes: p})
	if err != nil {
		f.cl.pool.Drop(f.addr, mc)
		return 0, err
	}
	f.ww = append(f.ww, wwChunk{off: off, n: len(p), call: call, mc: mc})
	// Optimistic: the reap checks the ack covered every byte.
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	return len(p), nil
}

// Write implements io.Writer (sequential).
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Truncate resizes the file (write handles only).
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cancelReadahead()
	if err := f.flushWrites(); err != nil {
		return err
	}
	reply, err := f.cl.rpc(f.addr, proto.Trunc{FH: f.fh, Size: size})
	if err != nil {
		return err
	}
	switch r := reply.(type) {
	case proto.TruncOK:
		f.size = size
		return nil
	case proto.Err:
		return errFrom(r)
	default:
		return fmt.Errorf("%w: unexpected truncate reply %T", ErrIO, reply)
	}
}

// Close releases the remote handle, abandoning any readahead. It
// flushes the pipelined-write window first; a flush failure is
// reported after the handle is released, so no acked-but-failed write
// goes unnoticed.
func (f *File) Close() error {
	f.mu.Lock()
	f.cancelReadahead()
	werr := f.flushWrites()
	f.mu.Unlock()
	reply, err := f.cl.rpc(f.addr, proto.Close{FH: f.fh})
	if werr != nil {
		return werr
	}
	if err != nil {
		return err
	}
	if e, isErr := reply.(proto.Err); isErr {
		return errFrom(e)
	}
	return nil
}

// Stat resolves path and reports its metadata.
func (cl *Client) Stat(path string) (proto.StatOK, error) {
	reply, _, err := cl.walk(proto.Stat{Path: path})
	if err != nil {
		return proto.StatOK{}, err
	}
	switch r := reply.(type) {
	case proto.StatOK:
		if !r.Exists {
			return r, ErrNotExist
		}
		return r, nil
	case proto.Err:
		return proto.StatOK{}, errFrom(r)
	default:
		return proto.StatOK{}, fmt.Errorf("%w: unexpected stat reply %T", ErrIO, reply)
	}
}

// Unlink removes path at its (selected) holder.
func (cl *Client) Unlink(path string) error {
	reply, _, err := cl.walk(proto.Unlink{Path: path})
	if err != nil {
		return err
	}
	switch r := reply.(type) {
	case proto.UnlinkOK:
		return nil
	case proto.Err:
		return errFrom(r)
	default:
		return fmt.Errorf("%w: unexpected unlink reply %T", ErrIO, reply)
	}
}

// Prepare announces paths that will be needed soon. The manager spawns
// the look-ups (and staging) in the background, so a following bulk
// access pays at most one full delay (Section III-B2).
func (cl *Client) Prepare(paths []string, write bool) error {
	var lastErr error
	for _, mgr := range cl.cfg.Managers {
		reply, err := cl.rpc(mgr, proto.Prepare{Paths: paths, Write: write})
		if err != nil {
			lastErr = err
			continue
		}
		if _, ok := reply.(proto.PrepareOK); ok {
			return nil
		}
	}
	if lastErr == nil {
		lastErr = ErrNoServer
	}
	return lastErr
}

// ListNamespace asks a Cluster Name Space daemon (see internal/nsd) at
// nsdAddr for the merged cluster namespace under prefix. Managers do
// not serve listings — the paper keeps ls-type operations out of the
// resolution path (Section V) — so the NSD address is supplied
// explicitly.
func (cl *Client) ListNamespace(nsdAddr, prefix string) ([]proto.Entry, error) {
	reply, err := cl.rpc(nsdAddr, proto.List{Prefix: prefix})
	if err != nil {
		return nil, err
	}
	switch r := reply.(type) {
	case proto.ListOK:
		return r.Entries, nil
	case proto.Err:
		return nil, errFrom(r)
	default:
		return nil, fmt.Errorf("%w: unexpected list reply %T", ErrIO, reply)
	}
}

// ReadFile opens, fully reads, and closes path.
func (cl *Client) ReadFile(path string) ([]byte, error) {
	f, err := cl.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 64<<10)
	off := int64(0)
	for {
		n, err := f.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// WriteFile creates (or rewrites) path with data. An existing file is
// truncated before the new content is written.
func (cl *Client) WriteFile(path string, data []byte) error {
	f, err := cl.Create(path)
	if errors.Is(err, ErrExist) {
		f, err = cl.OpenWrite(path)
		if err == nil {
			err = f.Truncate(0)
			if err != nil {
				f.Close()
				return err
			}
		}
	}
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, 0)
	return err
}
