package client

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalla/internal/mux"
	"scalla/internal/proto"
	"scalla/internal/transport"
)

// shedServer serves one address, answering every Open with RetryAfter
// until `admit` sheds have been issued, then with OpenOK. It records
// whether any Locate{Refresh} arrived — the stale-location recovery a
// shed must never trigger.
type shedServer struct {
	sheds     atomic.Int64
	admitAt   int64 // answer OpenOK once sheds reaches this; <0 = never
	refreshes atomic.Int64
}

func startShedServer(t *testing.T, net transport.Network, addr string, admitAt int64) *shedServer {
	t.Helper()
	lis, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	s := &shedServer{admitAt: admitAt}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go mux.Serve(conn, func(m proto.Message, r mux.Responder) proto.Message {
				switch v := m.(type) {
				case proto.Locate:
					if v.Refresh {
						s.refreshes.Add(1)
					}
					return proto.RetryAfter{Millis: 10}
				case proto.Open:
					if s.admitAt >= 0 && s.sheds.Load() >= s.admitAt {
						return proto.OpenOK{FH: 7, Size: 1}
					}
					s.sheds.Add(1)
					return proto.RetryAfter{Millis: 10}
				default:
					return proto.Err{Code: proto.EInval, Msg: "unexpected"}
				}
			}, mux.ServeOptions{})
		}
	}()
	return s
}

// TestRetryAfterIsNotAReplicaFailure pins the shed classification from
// ISSUE 8: when a server sheds an operation past the wait budget, the
// error is the typed ErrRetryAfter — it must NOT match
// ErrAllReplicasFailed and must NOT trigger a stale-location refresh
// walk (the host is healthy; re-resolving it would stampede the
// manager).
func TestRetryAfterIsNotAReplicaFailure(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	srv := startShedServer(t, net, "mgr", -1) // sheds forever
	cl := New(Config{
		Net:        net,
		Managers:   []string{"mgr"},
		WaitBudget: 30 * time.Millisecond,
		RetrySeed:  1,
	})
	defer cl.Close()

	_, err := cl.Open("/store/hot.root")
	if err == nil {
		t.Fatal("open succeeded against an always-shedding server")
	}
	if !errors.Is(err, ErrRetryAfter) {
		t.Fatalf("error is %v, want ErrRetryAfter in its chain", err)
	}
	if errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("shed counted toward ErrAllReplicasFailed: %v", err)
	}
	var are *AllReplicasError
	if errors.As(err, &are) {
		t.Fatalf("shed wrapped in AllReplicasError (tried=%v)", are.Tried)
	}
	if n := srv.refreshes.Load(); n != 0 {
		t.Fatalf("shed triggered %d stale-location refresh walks, want 0", n)
	}
	if srv.sheds.Load() < 2 {
		t.Fatalf("client retried %d times within the budget, want >= 2 (backoff, not fail-fast)", srv.sheds.Load())
	}
}

// TestRetryAfterBacksOffThenSucceeds pins the recovery half: a client
// shed twice must retry with backoff against the same host and succeed
// once admitted, with no error surfaced and no refresh issued.
func TestRetryAfterBacksOffThenSucceeds(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	srv := startShedServer(t, net, "mgr", 2) // admit after 2 sheds
	cl := New(Config{
		Net:        net,
		Managers:   []string{"mgr"},
		WaitBudget: 5 * time.Second,
		RetrySeed:  1,
	})
	defer cl.Close()

	start := time.Now()
	f, err := cl.Open("/store/hot.root")
	if err != nil {
		t.Fatalf("open after sheds: %v", err)
	}
	f.Close()
	if got := srv.sheds.Load(); got != 2 {
		t.Fatalf("server shed %d times, want 2", got)
	}
	// Two 10 ms hints jittered into [5 ms, 10 ms] each: the client must
	// actually have paused, not spun.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("open returned in %v; client retried without backing off", elapsed)
	}
	if n := srv.refreshes.Load(); n != 0 {
		t.Fatalf("successful shed recovery issued %d refreshes, want 0", n)
	}
}

// TestReadAtRetriesSheds covers the data path: a Read answered with
// RetryAfter retries in place and succeeds, without failing over.
func TestReadAtRetriesSheds(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	lis, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var mu sync.Mutex
	readSheds := 0
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go mux.Serve(conn, func(m proto.Message, r mux.Responder) proto.Message {
				switch m.(type) {
				case proto.Open:
					return proto.OpenOK{FH: 9, Size: 4}
				case proto.Read:
					mu.Lock()
					defer mu.Unlock()
					if readSheds < 2 {
						readSheds++
						return proto.RetryAfter{Millis: 5}
					}
					return proto.Data{FH: 9, Bytes: []byte("data"), EOF: true}
				default:
					return proto.Err{Code: proto.EInval, Msg: "unexpected"}
				}
			}, mux.ServeOptions{})
		}
	}()
	cl := New(Config{Net: net, Managers: []string{"srv"}, WaitBudget: 5 * time.Second, Readahead: 1})
	defer cl.Close()
	f, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if n != 4 || string(buf) != "data" {
		t.Fatalf("ReadAt got %d bytes %q, want 4 bytes \"data\"", n, buf[:n])
	}
	mu.Lock()
	defer mu.Unlock()
	if readSheds != 2 {
		t.Fatalf("server shed %d reads, want 2", readSheds)
	}
}
