package client

import (
	"sync/atomic"
	"testing"
	"time"

	"scalla/internal/proto"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// TestWaitVerdictSleepsFullDelayBeforeRetry pins the client half of the
// ErrFull/full-delay contract: a Wait verdict from the manager (issued
// when the fast response queue is full or an entry expires) must put
// the client to sleep for exactly the advertised delay — one quiet
// sleep, not a retry spin against the manager. The fake clock stays
// frozen through a real-time grace window to prove no traffic moves,
// then one Advance of the full delay releases the single retry.
func TestWaitVerdictSleepsFullDelayBeforeRetry(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	ln, err := net.Listen("mgr:data")
	if err != nil {
		t.Fatal(err)
	}
	var locates atomic.Int32
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				for {
					frame, err := c.Recv()
					if err != nil {
						return
					}
					m, sid, err := proto.UnmarshalStream(frame)
					if err != nil {
						return
					}
					if _, ok := m.(proto.Locate); !ok {
						continue
					}
					if locates.Add(1) == 1 {
						transport.SendMessageStream(c, proto.Wait{Millis: 5000}, sid)
					} else {
						transport.SendMessageStream(c, proto.Redirect{Addr: "srv:data"}, sid)
					}
				}
			}(c)
		}
	}()

	clk := vclock.NewFake()
	cl := New(Config{Net: net, Managers: []string{"mgr:data"}, Clock: clk})
	t.Cleanup(cl.Close)

	got := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		addr, err := cl.Locate("/cold", false)
		if err != nil {
			errc <- err
			return
		}
		got <- addr
	}()

	// Wait (real time) for the first Locate to be answered with the
	// 5 s wait verdict.
	deadline := time.Now().Add(5 * time.Second)
	for locates.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first Locate never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// With the fake clock frozen, the client must stay silent: any
	// further Locate inside the delay is a retry spin.
	time.Sleep(75 * time.Millisecond)
	if n := locates.Load(); n != 1 {
		t.Fatalf("client sent %d Locates during the full delay; must sleep it out", n)
	}

	// Two fake waiters are pending: the abandoned RPC-timeout timer of
	// the answered exchange and the full-delay sleep. Advancing the
	// full delay releases the sleep and exactly one retry.
	clk.BlockUntil(2)
	clk.Advance(5 * time.Second)

	select {
	case addr := <-got:
		if addr != "srv:data" {
			t.Fatalf("addr = %q, want srv:data", addr)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("Locate did not complete once the full delay elapsed")
	}
	if n := locates.Load(); n != 2 {
		t.Fatalf("locates = %d, want exactly 2 (one attempt per full delay)", n)
	}
}
