package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"scalla"
	"scalla/internal/transport"
)

// E1TreeLatency reproduces the per-tree-level redirection cost
// (Sections II-B1/II-B5): cached look-ups cost a small constant per
// level, so total time is O(log_fanout N). The paper quotes < 50 µs per
// level on 2012 hardware; the shape to verify is per-level cost staying
// roughly flat as depth grows.
func E1TreeLatency(s Scale) Table {
	iters := s.pick(200, 2000)
	fanout := 4
	depths := []int{1, 2, 3}

	t := Table{
		ID:     "E1",
		Title:  "cached resolution latency vs tree depth",
		Claim:  "<50µs per tree level; total O(log64 N) (II-B5, VI)",
		Header: []string{"depth", "servers", "redirectors crossed", "mean", "p50", "p99", "per-level"},
	}
	for _, depth := range depths {
		servers := 1
		for i := 0; i < depth; i++ {
			servers *= fanout
		}
		cl, err := quickCluster(servers, fanout)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("depth %d: %v", depth, err))
			continue
		}
		// One file per server; warm every location.
		c := cl.NewClient()
		paths := make([]string, servers)
		for i := range paths {
			paths[i] = fmt.Sprintf("/store/e1/f%04d", i)
			cl.Store(i).Put(paths[i], []byte("x"))
		}
		for _, p := range paths {
			if _, err := c.Locate(p, false); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("warm %s: %v", p, err))
			}
		}
		// Measure cached resolution through the full chain.
		samples := make([]time.Duration, 0, iters)
		for i := 0; i < iters; i++ {
			p := paths[i%len(paths)]
			start := time.Now()
			if _, err := c.Locate(p, false); err != nil {
				continue
			}
			samples = append(samples, time.Since(start))
		}
		mean := meanOf(samples)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth),
			fmt.Sprint(servers),
			fmt.Sprint(depth),
			fmtDur(mean),
			fmtDur(percentileOf(samples, 0.50)),
			fmtDur(percentileOf(samples, 0.99)),
			fmtDur(mean / time.Duration(depth)),
		})
		c.Close()
		cl.Stop()
	}
	t.Notes = append(t.Notes,
		"per-level cost should stay roughly constant while servers grow geometrically")
	return t
}

// E2UncachedLookup reproduces the cached-vs-uncached gap (II-B5): a
// first access pays one leaf round trip on top of the per-level cost
// (~150µs vs ~50µs on the paper's network).
func E2UncachedLookup(s Scale) Table {
	n := s.pick(100, 1000)
	cl, err := quickCluster(16, 64)
	t := Table{
		ID:     "E2",
		Title:  "first-access vs cached resolution",
		Claim:  "uncached ≈ cached + one leaf response (~150µs vs <50µs) (II-B5)",
		Header: []string{"case", "n", "mean", "p50", "p99"},
	}
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer cl.Stop()
	c := cl.NewClient()
	defer c.Close()

	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/store/e2/f%05d", i)
		cl.Store(i%16).Put(paths[i], []byte("x"))
	}
	cold := make([]time.Duration, 0, n)
	for _, p := range paths {
		start := time.Now()
		if _, err := c.Locate(p, false); err != nil {
			continue
		}
		cold = append(cold, time.Since(start))
	}
	warm := make([]time.Duration, 0, n)
	for _, p := range paths {
		start := time.Now()
		if _, err := c.Locate(p, false); err != nil {
			continue
		}
		warm = append(warm, time.Since(start))
	}
	t.Rows = append(t.Rows,
		[]string{"uncached (query+fast resp)", fmt.Sprint(len(cold)), fmtDur(meanOf(cold)),
			fmtDur(percentileOf(cold, 0.5)), fmtDur(percentileOf(cold, 0.99))},
		[]string{"cached redirect", fmt.Sprint(len(warm)), fmtDur(meanOf(warm)),
			fmtDur(percentileOf(warm, 0.5)), fmtDur(percentileOf(warm, 0.99))},
	)
	if len(cold) > 0 && len(warm) > 0 {
		t.Rows = append(t.Rows, []string{"ratio", "",
			fmt.Sprintf("%.1fx", float64(meanOf(cold))/float64(meanOf(warm))), "", ""})
	}

	// Repeat over links with 50µs one-way latency — the paper's LAN
	// regime — so the absolute numbers line up with its 150µs vs 50µs.
	lat, err := scalla.StartCluster(scalla.Options{
		Servers:    16,
		Net:        transport.NewInProc(transport.InProcConfig{Latency: 50 * time.Microsecond}),
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer lat.Stop()
	lc := lat.NewClient()
	defer lc.Close()
	nl := n / 4
	lpaths := make([]string, nl)
	for i := range lpaths {
		lpaths[i] = fmt.Sprintf("/store/e2lan/f%05d", i)
		lat.Store(i%16).Put(lpaths[i], []byte("x"))
	}
	coldL := make([]time.Duration, 0, nl)
	for _, p := range lpaths {
		start := time.Now()
		if _, err := lc.Locate(p, false); err == nil {
			coldL = append(coldL, time.Since(start))
		}
	}
	warmL := make([]time.Duration, 0, nl)
	for _, p := range lpaths {
		start := time.Now()
		if _, err := lc.Locate(p, false); err == nil {
			warmL = append(warmL, time.Since(start))
		}
	}
	t.Rows = append(t.Rows,
		[]string{"uncached, 50µs links (paper regime)", fmt.Sprint(len(coldL)), fmtDur(meanOf(coldL)),
			fmtDur(percentileOf(coldL, 0.5)), fmtDur(percentileOf(coldL, 0.99))},
		[]string{"cached, 50µs links", fmt.Sprint(len(warmL)), fmtDur(meanOf(warmL)),
			fmtDur(percentileOf(warmL, 0.5)), fmtDur(percentileOf(warmL, 0.99))},
	)
	t.Notes = append(t.Notes,
		"paper quotes ~150µs uncached vs <50µs/level cached on a 1Gb LAN; the 50µs-link rows emulate that regime")
	return t
}

// E3LoadSlope reproduces the load claim (II-B5): because the cache uses
// linear/constant-time algorithms, mean redirection time rises with a
// very low linear slope as concurrent load increases.
func E3LoadSlope(s Scale) Table {
	perClient := s.pick(50, 400)
	maxClients := s.pick(64, 256)
	cl, err := quickCluster(8, 64)
	t := Table{
		ID:     "E3",
		Title:  "cached redirection latency vs offered load",
		Claim:  "redirection time rises with a very low linear slope under load (II-B5)",
		Header: []string{"concurrent clients", "lookups", "mean", "p50", "p99", "throughput"},
	}
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer cl.Stop()

	// Warm a pool of names.
	warm := cl.NewClient()
	nFiles := 64
	paths := make([]string, nFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/store/e3/f%03d", i)
		cl.Store(i%8).Put(paths[i], []byte("x"))
		warm.Locate(paths[i], false)
	}
	warm.Close()

	var first, last float64
	for clients := 1; clients <= maxClients; clients *= 4 {
		var mu sync.Mutex
		var samples []time.Duration
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := cl.NewClient()
				defer c.Close()
				r := rand.New(rand.NewSource(int64(g)))
				local := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					p := paths[r.Intn(len(paths))]
					t0 := time.Now()
					if _, err := c.Locate(p, false); err == nil {
						local = append(local, time.Since(t0))
					}
				}
				mu.Lock()
				samples = append(samples, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		mean := meanOf(samples)
		if clients == 1 {
			first = float64(mean)
		}
		last = float64(mean)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(clients),
			fmt.Sprint(len(samples)),
			fmtDur(mean),
			fmtDur(percentileOf(samples, 0.5)),
			fmtDur(percentileOf(samples, 0.99)),
			fmt.Sprintf("%.0f/s", float64(len(samples))/elapsed.Seconds()),
		})
	}
	if first > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"mean grew %.1fx from 1 to %d clients (low slope = redirector is not the bottleneck)",
			last/first, maxClients))
	}
	return t
}

// E9FastResponse reproduces Section III-B: queries for files that exist
// are satisfied in roughly one server-response time via the fast
// response queue, while only queries for files that do not exist pay
// the full delay.
func E9FastResponse(s Scale) Table {
	n := s.pick(40, 300)
	cl, err := quickCluster(8, 64)
	t := Table{
		ID:     "E9",
		Title:  "fast response queue: existing vs nonexistent files",
		Claim:  "existing files resolve in ~server-response time; only misses pay the full delay (III-B)",
		Header: []string{"case", "n", "mean", "p50", "p99"},
	}
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer cl.Stop()
	c := cl.NewClient()
	defer c.Close()

	hits := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/store/e9/hit%04d", i)
		cl.Store(i%8).Put(p, []byte("x"))
		start := time.Now()
		if _, err := c.Locate(p, false); err == nil {
			hits = append(hits, time.Since(start))
		}
	}
	misses := make([]time.Duration, 0, n/4)
	for i := 0; i < n/4; i++ {
		p := fmt.Sprintf("/store/e9/miss%04d", i)
		start := time.Now()
		c.Locate(p, false) // ErrNotExist after the full delay
		misses = append(misses, time.Since(start))
	}
	t.Rows = append(t.Rows,
		[]string{"existing (fast response)", fmt.Sprint(len(hits)), fmtDur(meanOf(hits)),
			fmtDur(percentileOf(hits, 0.5)), fmtDur(percentileOf(hits, 0.99))},
		[]string{"nonexistent (full delay)", fmt.Sprint(len(misses)), fmtMs(meanOf(misses)),
			fmtMs(percentileOf(misses, 0.5)), fmtMs(percentileOf(misses, 0.99))},
	)
	t.Notes = append(t.Notes,
		"full delay configured at 250ms for the run (paper default: 5s); fast window 25ms (paper: 133ms)")
	return t
}
