package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Each experiment must produce a non-degenerate table at quick scale.
// These are smoke-plus tests: beyond "it ran", each asserts the
// direction of the paper's claim where it is deterministic enough to
// check in CI time.

func runQuick(t *testing.T, fn func(Scale) Table) Table {
	t.Helper()
	tab := fn(Scale{Quick: true})
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows (notes: %v)", tab.ID, tab.Notes)
	}
	if s := tab.String(); !strings.Contains(s, tab.ID) {
		t.Errorf("table renders without its id: %q", s)
	}
	return tab
}

// parse helpers for table cells.
func cellDur(t *testing.T, cell string) time.Duration {
	t.Helper()
	cell = strings.TrimSpace(cell)
	var v float64
	var unit string
	if _, err := sscan(cell, &v, &unit); err != nil {
		t.Fatalf("cannot parse duration cell %q", cell)
	}
	switch unit {
	case "µs":
		return time.Duration(v * 1e3)
	case "ms":
		return time.Duration(v * 1e6)
	default:
		t.Fatalf("unknown unit in %q", cell)
		return 0
	}
}

func sscan(cell string, v *float64, unit *string) (int, error) {
	i := strings.IndexFunc(cell, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r == '.' || r == '-')
	})
	if i <= 0 {
		return 0, strconv.ErrSyntax
	}
	f, err := strconv.ParseFloat(cell[:i], 64)
	if err != nil {
		return 0, err
	}
	*v = f
	*unit = cell[i:]
	return 2, nil
}

func cellInt(t *testing.T, cell string) int64 {
	t.Helper()
	n, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
	if err != nil {
		t.Fatalf("cannot parse int cell %q", cell)
	}
	return n
}

func TestE1TreeLatency(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E1TreeLatency)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 depths", len(tab.Rows))
	}
	// Depth-3 must still be a cached path (well under any wait), and
	// the p50 should not be dramatically *faster* than depth 1 — use
	// medians with generous slack, since parallel CI runs make means
	// noisy.
	d1 := cellDur(t, tab.Rows[0][4])
	d3 := cellDur(t, tab.Rows[2][4])
	if d3 < d1/3 {
		t.Errorf("deeper tree much faster at p50: %v vs %v (suspicious)", d3, d1)
	}
	if d3 > 50*time.Millisecond {
		t.Errorf("depth-3 cached resolve %v — not a cached path", d3)
	}
}

func TestE2UncachedLookup(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E2UncachedLookup)
	cold := cellDur(t, tab.Rows[0][2])
	warm := cellDur(t, tab.Rows[1][2])
	if cold <= warm {
		t.Errorf("uncached (%v) not slower than cached (%v)", cold, warm)
	}
	if cold > 100*time.Millisecond {
		t.Errorf("uncached mean %v — fast response did not engage", cold)
	}
}

func TestE3LoadSlope(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E3LoadSlope)
	if len(tab.Rows) < 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE4FibVsPow2(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E4FibVsPow2)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 populations x 2 moduli", len(tab.Rows))
	}
	ratio := func(cell string) float64 {
		var v float64
		var unit string
		if _, err := sscan(cell, &v, &unit); err != nil || unit != "x" {
			t.Fatalf("cannot parse ratio cell %q", cell)
		}
		return v
	}
	// Well-mixed keys: both moduli near the uniform-hashing ideal.
	for _, row := range tab.Rows[:4] {
		if r := ratio(row[5]); r > 1.2 {
			t.Errorf("%s/%s dispersion ratio %.2f, want ~1.0", row[0], row[1], r)
		}
	}
	// Low-bit-structured keys: power-of-two degrades hard, Fibonacci
	// stays much closer to ideal — footnote 4's observation.
	fib := ratio(tab.Rows[4][5])
	pow := ratio(tab.Rows[5][5])
	if pow < 1.5*fib {
		t.Errorf("structured keys: pow2 ratio %.2f not >> fib ratio %.2f", pow, fib)
	}
	fibMax := cellInt(t, tab.Rows[4][6])
	powMax := cellInt(t, tab.Rows[5][6])
	if powMax < 4*fibMax {
		t.Errorf("structured keys: pow2 max chain %d not >> fib %d", powMax, fibMax)
	}
}

func TestE5LookupResize(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E5LookupResize)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Look-up cost at full size within 5x of the small-cache cost
	// (constant-time claim; generous bound for CI noise).
	small := cellDur(t, tab.Rows[0][3])
	big := cellDur(t, tab.Rows[3][3])
	if big > 5*small+2*time.Microsecond {
		t.Errorf("lookup cost grew from %v to %v — not constant", small, big)
	}
}

func TestE6MemoryEquilibrium(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E6MemoryEquilibrium)
	// Measured equilibrium must not exceed the rate×Lt bound.
	for _, row := range tab.Rows[:2] {
		peak := cellInt(t, row[2])
		bound := cellInt(t, row[3])
		if peak > bound {
			t.Errorf("equilibrium %d exceeded bound %d", peak, bound)
		}
		if peak < bound/2 {
			t.Errorf("equilibrium %d below half the bound %d — eviction too eager", peak, bound)
		}
	}
}

func TestE7Eviction(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E7Eviction)
	frac := tab.Rows[0][3]
	if !strings.HasPrefix(frac, "1.5") && !strings.HasPrefix(frac, "1.6") {
		t.Errorf("windowed fraction = %s, want ~1.56%%", frac)
	}
	if tab.Rows[1][3] != "100.00%" {
		t.Errorf("baseline fraction = %s", tab.Rows[1][3])
	}
}

func TestE8Correction(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E8Correction)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[1][4], "99.9") && !strings.Contains(tab.Rows[1][4], "100.0") {
		t.Errorf("memo hit rate = %s, want ~100%%", tab.Rows[1][4])
	}
}

func TestE9FastResponse(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E9FastResponse)
	hit := cellDur(t, tab.Rows[0][2])
	miss := cellDur(t, tab.Rows[1][2])
	if hit > 100*time.Millisecond {
		t.Errorf("hit mean %v — fast response broken", hit)
	}
	if miss < 200*time.Millisecond {
		t.Errorf("miss mean %v — full delay not imposed", miss)
	}
}

func TestE10RarelyRespond(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E10RarelyRespond)
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At the lowest replica fraction, rarely-respond must use fewer
	// messages than respond-always.
	rarely := cellInt(t, tab.Rows[0][3])
	always := cellInt(t, tab.Rows[1][3])
	if rarely >= always {
		t.Errorf("rarely-respond sent %d responses vs always %d at 1/16 replicas", rarely, always)
	}
}

func TestE11Prepare(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E11Prepare)
	seq := cellDur(t, tab.Rows[0][2])
	prep := cellDur(t, tab.Rows[1][2])
	if prep >= seq {
		t.Errorf("prepare (%v) not faster than sequential (%v)", prep, seq)
	}
}

func TestE12Rechain(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E12Rechain)
	deferred := cellDur(t, tab.Rows[0][2])
	eager := cellDur(t, tab.Rows[1][2])
	if eager <= deferred {
		t.Errorf("eager re-chaining (%v) not slower than deferred (%v)", eager, deferred)
	}
}

func TestE13Deadline(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E13Deadline)
	if got := tab.Rows[0][3]; got != "1.00" {
		t.Errorf("queries/server = %s, want exactly 1.00", got)
	}
}

func TestE14Registration(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E14Registration)
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d (notes %v)", len(tab.Rows), tab.Notes)
	}
	scallaBytes := cellInt(t, tab.Rows[0][5])
	gfsBytes := cellInt(t, tab.Rows[1][5])
	if gfsBytes < 100*scallaBytes {
		t.Errorf("manifest bytes %d not >> prefix-login bytes %d", gfsBytes, scallaBytes)
	}
}

func TestE15RefreshRecovery(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E15RefreshRecovery)
	parts := strings.Split(tab.Rows[0][1], "/")
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("recovery = %s, want all trials recovered", tab.Rows[0][1])
	}
}

func TestE16Qserv(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E16Qserv)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE17ScaleSweep(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E17ScaleSweep)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Warm latency grows by a constant per 64x servers.
	w1 := cellDur(t, tab.Rows[0][3])
	w2 := cellDur(t, tab.Rows[1][3])
	w4 := cellDur(t, tab.Rows[3][3])
	if w2-w1 <= 0 || w4 != 4*w1 {
		t.Errorf("warm latencies %v %v ... %v not linear in depth", w1, w2, w4)
	}
}

func TestE18FanoutAblation(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E18FanoutAblation)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Depth must fall monotonically with fanout.
	prev := int64(1 << 30)
	for _, row := range tab.Rows {
		d := cellInt(t, row[1])
		if d > prev {
			t.Errorf("depth not monotone: %v", row)
		}
		prev = d
	}
}

func TestE19Throughput(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E19Throughput)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		tx, err := strconv.ParseFloat(strings.TrimSpace(row[3]), 64)
		if err != nil {
			t.Fatalf("tx/s cell %q", row[3])
		}
		if tx < 1000 {
			t.Errorf("%s concurrent jobs: %.0f tx/s — below the paper's thousands/s requirement", row[0], tx)
		}
		// Timing-edge misses (the paper's Section III-C1 scenario) can
		// surface as definitive not-founds under heavy CI contention;
		// allow a sliver, never a systematic failure.
		total := cellInt(t, row[2])
		errs := cellInt(t, row[6])
		if errs*100 > total {
			t.Errorf("errors = %d of %d (>1%%)", errs, total)
		}
	}
}

func TestE20SelectionPolicies(t *testing.T) {
	t.Parallel()
	tab := runQuick(t, E20SelectionPolicies)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse3 := func(cell string) (a, b, c int64) {
		if _, err := fmt.Sscanf(cell, "%d/%d/%d", &a, &b, &c); err != nil {
			t.Fatalf("cell %q", cell)
		}
		return
	}
	// ByLoad: everything to srv0 (the idle one).
	if a, b, c := parse3(tab.Rows[0][1]); b != 0 || c != 0 || a == 0 {
		t.Errorf("ByLoad = %s", tab.Rows[0][1])
	}
	// ByFrequency and RoundRobin: even spread.
	for _, i := range []int{1, 2} {
		a, b, c := parse3(tab.Rows[i][1])
		if a != b || b != c {
			t.Errorf("%s = %s, want even", tab.Rows[i][0], tab.Rows[i][1])
		}
	}
	// BySpace: everything to srv1 (the roomiest).
	if a, b, c := parse3(tab.Rows[3][1]); a != 0 || c != 0 || b == 0 {
		t.Errorf("BySpace = %s", tab.Rows[3][1])
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if ByID(id) == nil {
			t.Errorf("ByID(%s) = nil", id)
		}
	}
	if ByID("e7") == nil {
		t.Error("ByID must be case-insensitive")
	}
	if ByID("E99") != nil {
		t.Error("unknown id resolved")
	}
}
