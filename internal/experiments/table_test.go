package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:     "EX",
		Title:  "demo",
		Claim:  "a claim",
		Header: []string{"col", "value with width"},
		Rows: [][]string{
			{"a", "1"},
			{"much longer cell", "2"},
		},
		Notes: []string{"first note", "second note"},
	}
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 { // title, claim, header, separator, 2 rows, 2 notes
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "EX — demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if lines[1] != "paper: a claim" {
		t.Errorf("claim line = %q", lines[1])
	}
	// Columns align: every data row's second column starts at the same
	// offset as the header's.
	hdrOff := strings.Index(lines[2], "value with width")
	if hdrOff < 0 {
		t.Fatalf("header = %q", lines[2])
	}
	if got := strings.Index(lines[4], "1"); got != hdrOff {
		t.Errorf("row 1 column offset %d, want %d", got, hdrOff)
	}
	if !strings.HasPrefix(lines[3], "---") {
		t.Errorf("separator = %q", lines[3])
	}
	if lines[6] != "note: first note" || lines[7] != "note: second note" {
		t.Errorf("notes = %q, %q", lines[6], lines[7])
	}
}

func TestDescribeCoversAllIDs(t *testing.T) {
	for _, id := range IDs() {
		if Describe(id) == "" {
			t.Errorf("Describe(%s) empty", id)
		}
	}
}
