package experiments

import (
	"fmt"
	"time"

	"scalla"
	"scalla/internal/client"
	"scalla/internal/workload"
)

// clusterPlacer adapts a scalla.Cluster to workload.Placer.
type clusterPlacer struct{ c *scalla.Cluster }

func (p clusterPlacer) Servers() int { return len(p.c.Servers) }
func (p clusterPlacer) Place(i int, path string, data []byte) error {
	return p.c.Store(i).Put(path, data)
}

// E19Throughput reproduces the motivating requirement of Section II-A:
// the BaBar framework performed "several meta-data operations on dozens
// of files per job", so the system "needed to sustain thousands of
// transactions per second". The workload generator replays that pattern
// against one manager.
func E19Throughput(s Scale) Table {
	nServers := 16
	files := s.pick(200, 400)
	jobs := s.pick(32, 128)
	t := Table{
		ID:     "E19",
		Title:  "BaBar-style metadata workload throughput",
		Claim:  "must sustain thousands of transactions per second (II-A)",
		Header: []string{"concurrent jobs", "jobs", "tx total", "tx/s", "meta p50", "meta p99", "errors"},
	}
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    nServers,
		Fanout:     8,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer cl.Stop()

	dataset, err := workload.PlaceDataset(clusterPlacer{cl}, workload.DatasetConfig{
		Files: files, Replicas: 2, SizeBytes: 16 << 10, Seed: 2012,
	})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	cfg := workload.JobConfig{FilesPerJob: 24, MetaOpsPerFile: 4, ReadBytes: 4 << 10}
	jobList := workload.GenerateJobs(dataset, jobs, cfg, 42)

	for _, conc := range []int{4, 16, 64} {
		rn := workload.Runner{
			NewClient:   func() *client.Client { return cl.NewClient() },
			Concurrency: conc,
			Cfg:         cfg,
		}
		st := rn.Run(jobList)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(conc), fmt.Sprint(st.Jobs),
			fmt.Sprint(st.MetaOps + st.Opens),
			fmt.Sprintf("%.0f", st.TxPerSec()),
			fmtDur(st.MetaLat.P50), fmtDur(st.MetaLat.P99),
			fmt.Sprint(st.Errors),
		})
	}
	t.Notes = append(t.Notes,
		"jobs touch 24 files x 4 metadata ops each plus a 4KiB read — the paper's framework profile")
	return t
}
