package experiments

import (
	"fmt"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cmsd"
	"scalla/internal/proto"
	"scalla/internal/qserv"
	"scalla/internal/respq"
	"scalla/internal/transport"
)

// E16Qserv reproduces Section IV-B: Scalla as Qserv's distributed
// dispatch layer. Chunk queries fan out to whichever workers publish
// the chunk paths — with no cluster configuration at the master — and
// full-scan latency drops as workers are added.
func E16Qserv(s Scale) Table {
	numChunks := 16
	rows := s.pick(2_000, 20_000)
	queries := s.pick(3, 10)
	t := Table{
		ID:     "E16",
		Title:  "Qserv dispatch over Scalla: full-scan scaling with workers",
		Claim:  "path-per-partition gives masters a channel to the right worker; no cluster config (IV-B)",
		Header: []string{"workers", "chunks", "rows total", "full-scan latency", "speedup"},
	}

	var base time.Duration
	for _, nWorkers := range []int{1, 2, 4, 8} {
		net := transport.NewInProc(transport.InProcConfig{})
		mgr, err := cmsd.NewNode(cmsd.NodeConfig{
			Name: "mgr", Role: proto.RoleManager,
			DataAddr: "mgr:data", CtlAddr: "mgr:ctl", Net: net,
			Core: cmsd.Config{
				Cache:     cache.Config{},
				Queue:     respq.Config{Period: 20 * time.Millisecond},
				FullDelay: 200 * time.Millisecond,
			},
		})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			return t
		}
		if err := mgr.Start(); err != nil {
			t.Notes = append(t.Notes, err.Error())
			return t
		}

		chunks := make([]*qserv.Chunk, numChunks)
		for i := range chunks {
			chunks[i] = qserv.GenChunk(i, numChunks, rows, 99)
		}
		var workers []*qserv.Worker
		for w := 0; w < nWorkers; w++ {
			var mine []*qserv.Chunk
			for ci := w; ci < numChunks; ci += nWorkers {
				mine = append(mine, chunks[ci])
			}
			wk, err := qserv.NewWorker(qserv.WorkerConfig{
				Name: fmt.Sprintf("worker%02d", w), Net: net,
				Parents: []string{"mgr:ctl"}, Chunks: mine,
			})
			if err != nil {
				t.Notes = append(t.Notes, err.Error())
				return t
			}
			workers = append(workers, wk)
		}
		deadline := time.Now().Add(10 * time.Second)
		for mgr.Core().Table().Count() < nWorkers && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		master := qserv.NewMaster(qserv.MasterConfig{
			Net: net, Managers: []string{"mgr:data"},
			PollInterval: 5 * time.Millisecond,
		})
		all := make([]int, numChunks)
		for i := range all {
			all[i] = i
		}

		// Warm one query (marker discovery), then measure.
		if _, err := master.Query("COUNT", all); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%d workers: %v", nWorkers, err))
		}
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := master.Query("COUNT WHERE mag < 20 AND decl > -45", all); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%d workers: %v", nWorkers, err))
				break
			}
		}
		lat := time.Since(start) / time.Duration(queries)
		if nWorkers == 1 {
			base = lat
		}
		speedup := "1.0x"
		if base > 0 && lat > 0 && nWorkers > 1 {
			speedup = fmt.Sprintf("%.1fx", float64(base)/float64(lat))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nWorkers), fmt.Sprint(numChunks),
			fmt.Sprint(numChunks * rows), fmtMs(lat), speedup,
		})

		master.Close()
		for _, wk := range workers {
			wk.Stop()
		}
		mgr.Stop()
	}
	return t
}
