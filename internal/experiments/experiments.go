// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md (E1–E20), each regenerating a table of
// the corresponding quantitative claim from the paper. cmd/scalla-bench
// prints the tables; the root bench_test.go wraps the same functions in
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scalla"
)

// Table is one experiment's result, formatted like the paper would
// report it.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table for the terminal.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale selects experiment sizes. Quick keeps everything under a few
// seconds per experiment (used by tests and -short benches); Full uses
// the sizes reported in EXPERIMENTS.md.
type Scale struct {
	Quick bool
}

func (s Scale) pick(quick, full int) int {
	if s.Quick {
		return quick
	}
	return full
}

// quickCluster builds a test-speed cluster.
func quickCluster(servers, fanout int) (*scalla.Cluster, error) {
	return scalla.StartCluster(scalla.Options{
		Servers:    servers,
		Fanout:     fanout,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
}

// fmtDur renders a duration in µs with 3 significant decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
}

// percentileOf returns the p-quantile of raw samples.
func percentileOf(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func meanOf(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return sum / time.Duration(len(samples))
}

// All runs every experiment at the given scale, in order.
func All(s Scale) []Table {
	return []Table{
		E1TreeLatency(s),
		E2UncachedLookup(s),
		E3LoadSlope(s),
		E4FibVsPow2(s),
		E5LookupResize(s),
		E6MemoryEquilibrium(s),
		E7Eviction(s),
		E8Correction(s),
		E9FastResponse(s),
		E10RarelyRespond(s),
		E11Prepare(s),
		E12Rechain(s),
		E13Deadline(s),
		E14Registration(s),
		E15RefreshRecovery(s),
		E16Qserv(s),
		E17ScaleSweep(s),
		E18FanoutAblation(s),
		E19Throughput(s),
		E20SelectionPolicies(s),
	}
}

// ByID returns the experiment runner for an id like "E7", or nil.
func ByID(id string) func(Scale) Table {
	m := map[string]func(Scale) Table{
		"E1": E1TreeLatency, "E2": E2UncachedLookup, "E3": E3LoadSlope,
		"E4": E4FibVsPow2, "E5": E5LookupResize, "E6": E6MemoryEquilibrium,
		"E7": E7Eviction, "E8": E8Correction, "E9": E9FastResponse,
		"E10": E10RarelyRespond, "E11": E11Prepare, "E12": E12Rechain,
		"E13": E13Deadline, "E14": E14Registration, "E15": E15RefreshRecovery,
		"E16": E16Qserv, "E17": E17ScaleSweep, "E18": E18FanoutAblation,
		"E19": E19Throughput, "E20": E20SelectionPolicies,
	}
	return m[strings.ToUpper(id)]
}

// IDs lists the experiment ids in order.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
}

// Describe returns a one-line description of an experiment.
func Describe(id string) string {
	m := map[string]string{
		"E1":  "cached resolution latency vs tree depth (II-B5)",
		"E2":  "first-access vs cached resolution (II-B5)",
		"E3":  "redirection latency vs offered load (II-B5)",
		"E4":  "Fibonacci vs power-of-two hash dispersion (III-A1 fn.4)",
		"E5":  "lookup cost and resize count while filling (III-A1)",
		"E6":  "cache equilibrium = rate x lifetime; memory bound (III-A2)",
		"E7":  "sliding-window eviction vs full scan (III-A3)",
		"E8":  "O(1) lazy correction with Vwc memoization (III-A4)",
		"E9":  "fast response queue: hits vs misses (III-B)",
		"E10": "request-rarely-respond vs respond-always (III-B)",
		"E11": "prepare hides bulk full delays (III-B2)",
		"E12": "deferred vs eager re-chaining (III-C1)",
		"E13": "deadline-based query synchronization (III-C2)",
		"E14": "prefix login vs GFS-style manifest registration (V)",
		"E15": "client recovery via cache refresh (III-C1)",
		"E16": "Qserv dispatch scaling over Scalla (IV-B)",
		"E17": "modeled O(log64 N) scaling to 16.7M servers (II-B1, VI)",
		"E18": "fanout ablation: why 64 (II-B1 fn.2)",
		"E19": "BaBar-style metadata workload throughput (II-A)",
		"E20": "replica selection policies: load/frequency/space/round-robin (II-B3)",
	}
	return m[strings.ToUpper(id)]
}
