package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"scalla"
)

// E10RarelyRespond reproduces the request-rarely-respond argument
// (Section III-B, [2]): servers answer only positively, so response
// traffic scales with the replica fraction instead of the cluster size.
// The respond-always baseline sends one message per queried server
// regardless.
func E10RarelyRespond(s Scale) Table {
	nServers := 16
	lookups := s.pick(20, 100)
	t := Table{
		ID:     "E10",
		Title:  "control messages per lookup: rarely-respond vs respond-always",
		Claim:  "most efficient when fewer than half the servers have the file (III-B)",
		Header: []string{"replica fraction", "protocol", "queries", "responses", "msgs/lookup"},
	}
	for _, replicas := range []int{1, 4, 8, 12, 16} {
		for _, always := range []bool{false, true} {
			cl, err := scalla.StartCluster(scalla.Options{
				Servers:       nServers,
				FullDelay:     250 * time.Millisecond,
				FastPeriod:    25 * time.Millisecond,
				RespondAlways: always,
			})
			if err != nil {
				t.Notes = append(t.Notes, err.Error())
				continue
			}
			for i := 0; i < lookups; i++ {
				p := fmt.Sprintf("/store/e10/r%d/f%04d", replicas, i)
				for r := 0; r < replicas; r++ {
					cl.Store((i+r)%nServers).Put(p, []byte("x"))
				}
			}
			c := cl.NewClient()
			for i := 0; i < lookups; i++ {
				c.Locate(fmt.Sprintf("/store/e10/r%d/f%04d", replicas, i), false)
			}
			// Allow in-flight responses to land.
			time.Sleep(100 * time.Millisecond)
			var queries, haves, negs int64
			for _, srv := range cl.Servers {
				queries += srv.QueriesReceived()
				haves += srv.HavesSent()
				negs += srv.Negatives()
			}
			c.Close()
			cl.Stop()
			name := "rarely-respond"
			if always {
				name = "respond-always"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d/%d", replicas, nServers),
				name,
				fmt.Sprint(queries),
				fmt.Sprint(haves + negs),
				fmt.Sprintf("%.1f", float64(queries+haves+negs)/float64(lookups)),
			})
		}
	}
	return t
}

// E11Prepare reproduces Section III-B2: a bulk workload over files that
// each require a full delay (creation, or first access to cold names)
// pays one externally visible delay with prepare, versus one delay per
// file without it.
func E11Prepare(s Scale) Table {
	nFiles := s.pick(6, 16)
	t := Table{
		ID:     "E11",
		Title:  "bulk cold access: sequential vs prepare",
		Claim:  "prepare hides all but a single full delay for bulk processing (III-B2)",
		Header: []string{"strategy", "files", "total", "per file"},
	}
	build := func() (*scalla.Cluster, *scalla.Client, []string, error) {
		cl, err := scalla.StartCluster(scalla.Options{
			Servers:    4,
			FullDelay:  200 * time.Millisecond,
			FastPeriod: 20 * time.Millisecond,
			StageDelay: 50 * time.Millisecond,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		paths := make([]string, nFiles)
		for i := range paths {
			paths[i] = fmt.Sprintf("/store/e11/f%03d", i)
			cl.Store(i%4).PutOffline(paths[i], []byte("cold"))
		}
		return cl, cl.NewClient(), paths, nil
	}
	openAll := func(c *scalla.Client, paths []string) error {
		for _, p := range paths {
			deadline := time.Now().Add(30 * time.Second)
			for {
				f, err := c.Open(p)
				if err == nil {
					f.Close()
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("open %s: %w", p, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		return nil
	}

	// Sequential: every cold file pays its own discovery/staging stall.
	cl, c, paths, err := build()
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	start := time.Now()
	if err := openAll(c, paths); err != nil {
		t.Notes = append(t.Notes, err.Error())
	}
	seq := time.Since(start)
	c.Close()
	cl.Stop()
	t.Rows = append(t.Rows, []string{"sequential opens", fmt.Sprint(nFiles),
		fmtMs(seq), fmtMs(seq / time.Duration(nFiles))})

	// Prepared: announce everything, then open.
	cl, c, paths, err = build()
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	start = time.Now()
	if err := c.Prepare(paths, false); err != nil {
		t.Notes = append(t.Notes, err.Error())
	}
	if err := openAll(c, paths); err != nil {
		t.Notes = append(t.Notes, err.Error())
	}
	prep := time.Since(start)
	c.Close()
	cl.Stop()
	t.Rows = append(t.Rows, []string{"prepare then open", fmt.Sprint(nFiles),
		fmtMs(prep), fmtMs(prep / time.Duration(nFiles))})
	if prep > 0 {
		t.Rows = append(t.Rows, []string{"speedup", "", fmt.Sprintf("%.1fx", float64(seq)/float64(prep)), ""})
	}
	return t
}

// E13Deadline reproduces Section III-C2: the processing deadline lets
// exactly one thread issue queries no matter how many clients storm a
// cold name — no extra locks, no duplicate query floods.
func E13Deadline(s Scale) Table {
	clients := s.pick(64, 512)
	nServers := 8
	t := Table{
		ID:     "E13",
		Title:  "deadline-based query synchronization under a client storm",
		Claim:  "the deadline prohibits multiple threads from issuing queries (III-C2)",
		Header: []string{"concurrent clients", "servers", "queries sent (total)", "queries/server", "all redirected"},
	}
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    nServers,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer cl.Stop()
	cl.Store(3).Put("/store/e13/hot", []byte("x"))

	var wg sync.WaitGroup
	okCount := int64(0)
	var mu sync.Mutex
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cl.NewClient()
			defer c.Close()
			if _, err := c.Locate("/store/e13/hot", false); err == nil {
				mu.Lock()
				okCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	time.Sleep(100 * time.Millisecond)
	var queries int64
	for _, srv := range cl.Servers {
		queries += srv.QueriesReceived()
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(clients), fmt.Sprint(nServers),
		fmt.Sprint(queries),
		fmt.Sprintf("%.2f", float64(queries)/float64(nServers)),
		fmt.Sprintf("%d/%d", okCount, clients),
	})
	t.Notes = append(t.Notes, "queries/server should be exactly 1.00 regardless of client count")
	return t
}

// E15RefreshRecovery reproduces Section III-C1: a client vectored to a
// server that cannot serve the file recovers by reissuing the request
// with a cache refresh naming the failing host, and lands on a
// surviving replica.
func E15RefreshRecovery(s Scale) Table {
	trials := s.pick(10, 50)
	t := Table{
		ID:     "E15",
		Title:  "client recovery via cache refresh after stale vectoring",
		Claim:  "reissue with refresh + failing host; avoided when re-vectoring (III-C1)",
		Header: []string{"trials", "recovered", "mean recovery", "p99 recovery"},
	}
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    4,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer cl.Stop()
	c := cl.NewClient()
	defer c.Close()

	recovered := 0
	var samples []time.Duration
	for i := 0; i < trials; i++ {
		p := fmt.Sprintf("/store/e15/f%03d", i)
		// Two replicas.
		a, b := i%4, (i+1)%4
		cl.Store(a).Put(p, []byte("replica"))
		cl.Store(b).Put(p, []byte("replica"))
		f, err := c.Open(p)
		if err != nil {
			continue
		}
		// Delete the copy under the open handle.
		for si := range cl.Servers {
			if cl.Servers[si].DataAddr() == f.Server() {
				cl.Store(si).Unlink(p)
			}
		}
		start := time.Now()
		buf := make([]byte, 8)
		n, err := f.ReadAt(buf, 0)
		if (err == nil || err == io.EOF) && string(buf[:n]) == "replica" {
			recovered++
			samples = append(samples, time.Since(start))
		}
		f.Close()
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(trials),
		fmt.Sprintf("%d/%d", recovered, trials),
		fmtMs(meanOf(samples)),
		fmtMs(percentileOf(samples, 0.99)),
	})
	return t
}
