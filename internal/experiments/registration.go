package experiments

import (
	"fmt"
	"sync"
	"time"

	"scalla"
	"scalla/internal/baseline"
	"scalla/internal/transport"
)

// E14Registration reproduces Section V: Scalla registration carries
// only path prefixes, so a restarted cluster of many servers serves
// files within seconds; manifest-based (GFS-style) registration must
// move every file name through the master first.
func E14Registration(s Scale) Table {
	nServers := s.pick(8, 32)
	filesPer := s.pick(2_000, 20_000)
	t := Table{
		ID:     "E14",
		Title:  "cluster restart: prefix login vs full-manifest registration",
		Claim:  "registration is extremely light; clusters serve within seconds of restart (V)",
		Header: []string{"scheme", "servers", "files/server", "time to service", "frames", "bytes on wire"},
	}

	paths := func(srv int) []string {
		out := make([]string, filesPer)
		for i := range out {
			out[i] = fmt.Sprintf("/store/e14/s%02d/%s", srv, hepPath(i))
		}
		return out
	}

	// ---- Scalla arm -------------------------------------------------
	cn := transport.Counting(transport.NewInProc(transport.InProcConfig{}))
	start := time.Now()
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    nServers,
		Net:        cn,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	// Populate the stores (out of band: detector data was already on
	// disk before the restart; it is NOT part of registration).
	for srv := 0; srv < nServers; srv++ {
		for _, p := range paths(srv) {
			cl.Store(srv).Put(p, []byte("x"))
		}
	}
	// "Time to service": the cluster formed and a cold file resolves.
	c := cl.NewClient()
	target := paths(nServers / 2)[filesPer/2]
	if _, err := c.Locate(target, false); err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("scalla first resolve: %v", err))
	}
	scallaTime := time.Since(start)
	scallaStats := cn.Stats()
	scallaFrames := scallaStats.FramesSent
	scallaBytes := scallaStats.BytesSent
	c.Close()
	cl.Stop()
	t.Rows = append(t.Rows, []string{
		"scalla prefix login", fmt.Sprint(nServers), fmt.Sprint(filesPer),
		fmtMs(scallaTime), fmt.Sprint(scallaFrames), fmt.Sprint(scallaBytes),
	})

	// ---- GFS-style arm ----------------------------------------------
	gn := transport.Counting(transport.NewInProc(transport.InProcConfig{}))
	master := baseline.NewGFSMaster(gn, "master")
	if err := master.Start(); err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer master.Stop()
	start = time.Now()
	var wg sync.WaitGroup
	for srv := 0; srv < nServers; srv++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("srv%02d", srv)
			if _, err := baseline.RegisterManifest(gn, "master", name, name+":data", paths(srv), 4096); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("gfs register %s: %v", name, err))
			}
		}()
	}
	wg.Wait()
	if _, err := baseline.Lookup(gn, "master", target); err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("gfs lookup: %v", err))
	}
	gfsTime := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"gfs-style manifest", fmt.Sprint(nServers), fmt.Sprint(filesPer),
		fmtMs(gfsTime), fmt.Sprint(gn.Stats().FramesSent), fmt.Sprint(gn.Stats().BytesSent),
	})
	if scallaBytes > 0 {
		t.Rows = append(t.Rows, []string{"wire-bytes ratio", "", "",
			"", "", fmt.Sprintf("%.0fx", float64(gn.Stats().BytesSent)/float64(scallaBytes))})
	}
	t.Notes = append(t.Notes,
		"scalla's wire cost is independent of file count; the manifest scheme moves every name")
	return t
}
