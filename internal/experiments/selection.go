package experiments

import (
	"fmt"
	"time"

	"scalla"
)

// E20SelectionPolicies reproduces Section II-B3: "If more than one node
// has the file, a selection is made based on configuration defined
// criteria (e.g., load, selection frequency, space, etc.)". Three
// replicas live on servers with very different loads; each policy's
// redirect distribution shows its behaviour.
func E20SelectionPolicies(s Scale) Table {
	lookups := s.pick(60, 300)
	t := Table{
		ID:     "E20",
		Title:  "server selection among replicas under each policy",
		Claim:  "selection by load, selection frequency, space, etc. (II-B3)",
		Header: []string{"policy", "redirects srv0/srv1/srv2", "behaviour"},
	}
	for _, pc := range []struct {
		policy scalla.SelectionPolicy
		name   string
		expect string
	}{
		{scalla.ByLoad, "ByLoad", "all traffic to the least-loaded holder"},
		{scalla.ByFrequency, "ByFrequency", "even spread by selection count"},
		{scalla.RoundRobin, "RoundRobin", "strict rotation"},
		{scalla.BySpace, "BySpace", "all traffic to the roomiest holder"},
	} {
		cl, err := scalla.StartCluster(scalla.Options{
			Servers:    3,
			FullDelay:  250 * time.Millisecond,
			FastPeriod: 25 * time.Millisecond,
			ReadPolicy: pc.policy,
			// Suppress live Pong load reports so the injected stats
			// below stay in force for the whole measurement.
			PingInterval: time.Hour,
		})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			return t
		}
		for i := 0; i < 3; i++ {
			cl.Store(i).Put("/rep", []byte("x"))
		}
		// Shape the servers: srv2 drowning in load, srv0 idle; srv1
		// has the most free space. (Stats injected directly so the
		// experiment is deterministic; the production path feeds the
		// same numbers from Pong reports.)
		tbl := cl.Manager.Core().Table()
		c := cl.NewClient()
		c.Locate("/rep", false) // warm: all three enter Vh
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, v, ok := cl.Manager.Core().Cache().Fetch("/rep", tbl.VmFor("/rep"), 0)
			if ok && v.Vh.Count() == 3 {
				break
			}
			if time.Now().After(deadline) {
				t.Notes = append(t.Notes, "replicas never all cached")
				break
			}
			time.Sleep(time.Millisecond)
		}
		// Subordinate indices follow login-arrival order, not names; map
		// each named server to its slot before shaping the stats.
		idxOf := map[string]int{}
		for _, m := range tbl.Members() {
			idxOf[m.Name] = m.Index
		}
		counts := map[string]int{}
		for i := 0; i < lookups; i++ {
			tbl.UpdateStats(idxOf["srv0"], 1, 100)
			tbl.UpdateStats(idxOf["srv1"], 50, 1_000_000)
			tbl.UpdateStats(idxOf["srv2"], 99, 10)
			addr, err := c.Locate("/rep", false)
			if err != nil {
				t.Notes = append(t.Notes, err.Error())
				break
			}
			counts[addr]++
		}
		c.Close()
		cl.Stop()
		t.Rows = append(t.Rows, []string{
			pc.name,
			fmt.Sprintf("%d/%d/%d", counts["srv0:data"], counts["srv1:data"], counts["srv2:data"]),
			pc.expect,
		})
	}
	return t
}
