package experiments

import (
	"fmt"
	"time"

	"scalla/internal/sim"
)

// E17ScaleSweep extrapolates the headline scaling claim (Sections
// II-B1/VI): location time is O(log64 N) with a deterministic upper
// bound per level, "in any sized cluster". Real nodes top out around
// 10³ per process (see TestLargeClusterFormsAndResolves); the
// analytical model carries the same per-level costs to 16.7M servers.
func E17ScaleSweep(s Scale) Table {
	trials := s.pick(2_000, 20_000)
	t := Table{
		ID:     "E17",
		Title:  "modeled resolution vs cluster size (64-ary tree)",
		Claim:  "upper time limit is O(log64 N) in any sized cluster (II-B1, VI)",
		Header: []string{"servers", "depth", "redirectors", "warm (det)", "warm p99 (20% jitter)", "cold (det)", "warm msgs", "cold msgs"},
	}
	base := sim.Params{
		Fanout:      64,
		Hop:         50 * time.Microsecond, // the paper's LAN regime
		CacheLookup: 5 * time.Microsecond,
		LeafLookup:  20 * time.Microsecond,
		Replicas:    1,
		Jitter:      0.2,
	}
	for _, servers := range []int64{64, 4096, 262144, 16777216} {
		p := base
		p.Servers = servers
		r := sim.Evaluate(p)
		p99 := sim.Percentiles(p, trials, 42, 0.99)[0]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(servers), fmt.Sprint(r.Depth), fmt.Sprint(r.Redirectors),
			fmtDur(r.WarmLatency), fmtDur(p99), fmtDur(r.ColdLatency),
			fmt.Sprint(r.WarmMessages), fmt.Sprint(r.ColdMessages),
		})
	}
	t.Notes = append(t.Notes,
		"warm latency grows by one level (~105µs at 50µs hops) per 64x servers — the log64 law",
		"cold lookups flood the subtree: O(N) messages but O(depth) latency (parallel descent)")
	return t
}

// E18FanoutAblation reproduces footnote 2 ("The choice of cluster size
// is crucial"): the 64-wide set is the sweet spot between tree depth
// (latency) and per-node fanout (a single machine word of location
// state per file; 64 subordinates of connection/query work per node).
func E18FanoutAblation(s Scale) Table {
	t := Table{
		ID:     "E18",
		Title:  "fanout ablation at one million servers",
		Claim:  "the choice of cluster size is crucial (II-B1 fn.2); 64 balances depth against per-node state",
		Header: []string{"fanout", "depth", "redirectors", "warm latency", "cold msgs", "location state/file", "notes"},
	}
	for _, f := range []int{2, 8, 64, 256, 1024} {
		p := sim.Params{
			Servers: 1_000_000, Fanout: f,
			Hop: 50 * time.Microsecond, CacheLookup: 5 * time.Microsecond,
			LeafLookup: 20 * time.Microsecond,
		}
		r := sim.Evaluate(p)
		state := fmt.Sprintf("%d-bit vectors x3", f)
		note := ""
		switch {
		case f < 64:
			note = "deep tree: latency and hop count balloon"
		case f == 64:
			note = "one machine word per vector (the paper's choice)"
		default:
			note = "multi-word vectors; per-node conn/query load grows"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(f), fmt.Sprint(r.Depth), fmt.Sprint(r.Redirectors),
			fmtDur(r.WarmLatency), fmt.Sprint(r.ColdMessages), state, note,
		})
	}
	return t
}
