package experiments

import (
	"fmt"
	"math"
	"time"

	"scalla/internal/baseline"
	"scalla/internal/bitvec"
	"scalla/internal/cache"
	"scalla/internal/names"
	"scalla/internal/vclock"
)

// hepPath generates realistic HEP-style file names: deep common
// prefixes, run/partition numbers, and a numeric suffix — the kind of
// structure that stresses a hash table's modulo choice.
func hepPath(i int) string {
	return fmt.Sprintf("/store/data/Run2012%c/SingleMu/AOD/v%d/%04d/%04d/F%08d.root",
		'A'+rune(i%4), i%3+1, i/100000, (i/1000)%100, i)
}

// lowbitPath returns a name whose CRC32 has its low `bits` bits forced
// to zero by brute-forcing a numeric suffix. Such low-bit structure is
// invisible to a Fibonacci modulus (which mixes all 32 bits) but
// catastrophic for a power-of-two modulus (which keeps only low bits) —
// the mechanism behind the paper's footnote-4 observation.
func lowbitPath(i int, bits uint) string {
	mask := uint32(1)<<bits - 1
	base := fmt.Sprintf("/store/degenerate/F%08d-", i)
	for t := 0; ; t++ {
		name := fmt.Sprintf("%s%06d", base, t)
		if names.Hash(name)&mask == 0 {
			return name
		}
	}
}

// idealExcess is the expected number of excess collisions when n keys
// hash uniformly into m buckets: n - m(1 - (1-1/m)^n).
func idealExcess(m int64, n int) float64 {
	return float64(n) - float64(m)*(1-math.Pow(1-1/float64(m), float64(n)))
}

// E4FibVsPow2 reproduces footnote 4 of Section III-A1: the paper found
// "much higher collision rates with power-of-two sized tables compared
// to Fibonacci-sized" despite CRC32's uniformity. The experiment
// compares the two moduli at EQUAL load factor over three key
// populations: realistic HEP paths, names with binary-counter
// suffixes, and names whose CRC32 carries low-bit structure (the
// production pathology: a power-of-two modulus sees only the low bits,
// a Fibonacci modulus mixes all 32).
func E4FibVsPow2(s Scale) Table {
	mFib := int64(s.pick(196_418, 1_346_269)) // Fibonacci numbers
	mPow := int64(s.pick(131_072, 1_048_576)) // powers of two
	degBits := uint(8)                        // forced-zero low bits
	const load = 0.75

	t := Table{
		ID:     "E4",
		Title:  "hash dispersion: Fibonacci vs power-of-two moduli (equal load factor)",
		Claim:  "much higher collision rates with power-of-two sized tables (III-A1 fn.4)",
		Header: []string{"key population", "sizing", "buckets", "entries", "excess collisions", "vs ideal", "max chain"},
	}
	populations := []struct {
		name string
		key  func(i int) string
	}{
		{"HEP paths", hepPath},
		{"binary-counter names", func(i int) string {
			b := []byte("/store/blockfile-XXXX")
			b[17], b[18], b[19], b[20] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
			return string(b)
		}},
		{"low-bit-structured", func(i int) string { return lowbitPath(i, degBits) }},
	}
	for _, pop := range populations {
		n := int(load * float64(mPow)) // same n for both moduli
		// Degenerate keys are expensive to mint; cap that population.
		if pop.name == "low-bit-structured" && n > 100_000 {
			n = 100_000
		}
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = names.Hash(pop.key(i))
		}
		for _, mod := range []struct {
			name string
			m    int64
		}{{"fibonacci", mFib}, {"power-of-two", mPow}} {
			tab := make([]int32, mod.m)
			for _, h := range keys {
				tab[int64(h)%mod.m]++
			}
			excess, maxc := 0, 0
			for _, v := range tab {
				if v > 1 {
					excess += int(v - 1)
				}
				if int(v) > maxc {
					maxc = int(v)
				}
			}
			ideal := idealExcess(mod.m, n)
			t.Rows = append(t.Rows, []string{
				pop.name, mod.name, fmt.Sprint(mod.m), fmt.Sprint(n),
				fmt.Sprint(excess), fmt.Sprintf("%.2fx", float64(excess)/ideal),
				fmt.Sprint(maxc),
			})
		}
	}
	t.Notes = append(t.Notes,
		"'vs ideal' normalizes by the uniform-hashing expectation at that load, so moduli compare fairly",
		"well-mixed keys disperse ~ideally under BOTH moduli; the power-of-two pathology needs keys with",
		fmt.Sprintf("low-bit structure (here: CRC32 low %d bits constant), where Fibonacci stays near ideal", degBits))
	return t
}

// E5LookupResize reproduces Section III-A1's growth behaviour: the
// table grows geometrically (so resizes become rare) and look-up cost
// stays constant as the cache fills.
func E5LookupResize(s Scale) Table {
	n := s.pick(200_000, 2_000_000)
	t := Table{
		ID:     "E5",
		Title:  "look-up cost and resize count while filling the cache",
		Claim:  "look-up time constant; geometric growth makes resizing cease quickly (III-A1)",
		Header: []string{"entries", "buckets", "resizes (cumulative)", "lookup mean"},
	}
	c := cache.New(cache.Config{
		InitialBuckets: 17711,
		SyncSweep:      true,
		Clock:          vclock.NewFake(),
	})
	checkpoints := []int{n / 100, n / 10, n / 2, n}
	next := 0
	probe := func(upto int) time.Duration {
		const probes = 20000
		start := time.Now()
		for i := 0; i < probes; i++ {
			c.Fetch(hepPath(i*7919%upto), bitvec.Full, 0)
		}
		return time.Since(start) / probes
	}
	for i := 0; i < n; i++ {
		c.Add(hepPath(i), bitvec.Full, 0)
		if next < len(checkpoints) && i+1 == checkpoints[next] {
			st := c.Stats()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(i + 1), fmt.Sprint(st.Buckets),
				fmt.Sprint(st.Resizes), fmtDur(probe(i + 1)),
			})
			next++
		}
	}
	return t
}

// E6MemoryEquilibrium reproduces Section III-A2: the cache size is
// bounded by creation-rate × lifetime, and the paper's arithmetic
// (28.8M objects over 8h at 1000/s ≈ 16GB) follows from the per-object
// footprint.
func E6MemoryEquilibrium(s Scale) Table {
	t := Table{
		ID:     "E6",
		Title:  "cache equilibrium: objects bounded by rate × lifetime",
		Claim:  "≤28.8M objects per 8h at 1000 creates/s; ~16GB bound; far less in practice (III-A2)",
		Header: []string{"create rate", "lifetime", "equilibrium objects (measured)", "rate×Lt (bound)", "projected bytes"},
	}
	// Simulate with a fake clock: create at a fixed per-window rate and
	// tick the 64 windows; the population must plateau at rate×lifetime.
	type cfg struct {
		perWindow int
		label     string
		rate      string
	}
	cases := []cfg{
		{perWindow: s.pick(200, 2000), label: "8h", rate: ""},
		{perWindow: s.pick(50, 500), label: "8h", rate: ""},
	}
	for _, cs := range cases {
		c := cache.New(cache.Config{SyncSweep: true, Clock: vclock.NewFake(), InitialBuckets: 17711})
		id := 0
		peak := int64(0)
		// Run 3 lifetimes' worth of windows.
		for w := 0; w < 3*cache.Windows; w++ {
			for k := 0; k < cs.perWindow; k++ {
				c.Add(hepPath(id), bitvec.Full, 0)
				id++
			}
			c.Tick()
			if l := c.Len(); l > peak {
				peak = l
			}
		}
		bound := int64(cs.perWindow) * cache.Windows
		// Express the per-window rate as per-second at the paper's
		// 7.5-minute window (Lt=8h).
		perSec := float64(cs.perWindow) / (7.5 * 60)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f/s", perSec),
			cs.label,
			fmt.Sprint(peak),
			fmt.Sprint(bound),
			fmt.Sprintf("%.1f MB", float64(peak)*(float64(cache.LocSize)+64)/1e6),
		})
	}
	t.Rows = append(t.Rows, []string{
		"1000/s (paper)", "8h",
		"—",
		fmt.Sprint(1000 * 8 * 3600),
		fmt.Sprintf("%.1f GB", float64(1000*8*3600)*(float64(cache.LocSize)+64)/1e9),
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("location object footprint: %d B struct + ~64 B key ≈ %d B/object (paper: ~580 B)",
			cache.LocSize, cache.LocSize+64))
	return t
}

// E7Eviction reproduces Section III-A3: each window tick touches only
// ~1/64 ≈ 1.6% of the cache, and removal happens off the look-up path;
// the full-scan baseline pauses for the whole table every sweep.
func E7Eviction(s Scale) Table {
	n := s.pick(100_000, 1_000_000)
	t := Table{
		ID:     "E7",
		Title:  "sliding-window eviction vs full-scan baseline",
		Claim:  "on average only 1.6% of the cache is processed at any one time (III-A3)",
		Header: []string{"scheme", "entries", "work per tick", "fraction", "pause per tick"},
	}

	// Windowed cache: spread n entries across all 64 windows, then
	// measure one tick.
	fc := vclock.NewFake()
	c := cache.New(cache.Config{SyncSweep: true, Clock: fc, InitialBuckets: 17711})
	perWindow := n / cache.Windows
	id := 0
	for w := 0; w < cache.Windows; w++ {
		for k := 0; k < perWindow; k++ {
			c.Add(hepPath(id), bitvec.Full, 0)
			id++
		}
		c.Tick()
	}
	entries := c.Len()
	before := c.Stats()
	start := time.Now()
	c.Tick() // expires exactly one window
	tickCost := time.Since(start)
	after := c.Stats()
	touched := (after.Hidden - before.Hidden) + (after.Rechained - before.Rechained)
	t.Rows = append(t.Rows, []string{
		"sliding window (64)",
		fmt.Sprint(entries),
		fmt.Sprint(touched),
		fmt.Sprintf("%.2f%%", 100*float64(touched)/float64(entries)),
		fmtDur(tickCost),
	})

	// Full-scan baseline with the same population: one sweep visits
	// everything under the look-up lock.
	fb := vclock.NewFake()
	sc := baseline.NewScanCache(8*time.Hour, fb)
	for i := 0; i < int(entries); i++ {
		sc.Add(hepPath(i), bitvec.Full)
	}
	fb.Advance(time.Hour) // nothing expired: worst-case useless scan
	scanned, _, pause := sc.Sweep()
	t.Rows = append(t.Rows, []string{
		"full scan (baseline)",
		fmt.Sprint(sc.Len()),
		fmt.Sprint(scanned),
		"100.00%",
		fmtDur(pause),
	})
	return t
}

// E8Correction reproduces Section III-A4: correcting stale location
// state on fetch costs O(1), and the per-window memoized correction
// vector makes a post-reconfiguration fetch storm cost barely more than
// a plain fetch.
func E8Correction(s Scale) Table {
	n := s.pick(100_000, 500_000)
	t := Table{
		ID:     "E8",
		Title:  "lazy correction cost with Vwc memoization",
		Claim:  "O(1) correction per fetch; memoized Vwc makes it ~constant (III-A4, Fig. 3)",
		Header: []string{"phase", "fetches", "total", "per fetch", "memo hit rate"},
	}
	c := cache.New(cache.Config{SyncSweep: true, Clock: vclock.NewFake(), InitialBuckets: 17711})
	vm := bitvec.Full
	for i := 0; i < n; i++ {
		ref, _, _ := c.Add(hepPath(i), vm, 0)
		c.Update(hepPath(i), ref.Hash(), i%32, false, false)
	}

	// Baseline: fetch storm with no configuration change.
	start := time.Now()
	for i := 0; i < n; i++ {
		c.Fetch(hepPath(i), vm, 0)
	}
	plain := time.Since(start)
	t.Rows = append(t.Rows, []string{"no config change", fmt.Sprint(n),
		fmtMs(plain), fmtDur(plain / time.Duration(n)), "—"})

	// A server connects: every cached object is now stale. The next
	// fetch of each applies the Figure-3 correction.
	c.ServerConnected(40)
	before := c.Stats()
	start = time.Now()
	for i := 0; i < n; i++ {
		c.Fetch(hepPath(i), vm, 0)
	}
	corrected := time.Since(start)
	after := c.Stats()
	applied := after.CorrApplied - before.CorrApplied
	memoHits := after.CorrMemoHit - before.CorrMemoHit
	t.Rows = append(t.Rows, []string{"after server connect", fmt.Sprint(n),
		fmtMs(corrected), fmtDur(corrected / time.Duration(n)),
		fmt.Sprintf("%.2f%% (%d/%d)", 100*float64(memoHits)/float64(applied), memoHits, applied)})
	t.Rows = append(t.Rows, []string{"correction overhead", "",
		fmt.Sprintf("%.1f%%", 100*(float64(corrected)-float64(plain))/float64(plain)), "", ""})
	return t
}

// E12Rechain reproduces Section III-C1's deferred re-chaining argument:
// re-chaining refreshed objects individually costs a chain scan per
// refresh (quadratic-ish overall); deferring to the sweep re-chains
// everything in one linear pass.
func E12Rechain(s Scale) Table {
	n := s.pick(5_000, 40_000)
	t := Table{
		ID:     "E12",
		Title:  "deferred vs eager re-chaining under refresh churn",
		Claim:  "deferred re-chaining is one linear task; eager is more quadratic (III-C1)",
		Header: []string{"scheme", "objects refreshed", "total time", "per refresh"},
	}
	for _, eager := range []bool{false, true} {
		c := cache.New(cache.Config{
			SyncSweep:      true,
			EagerRechain:   eager,
			Clock:          vclock.NewFake(),
			InitialBuckets: 17711,
		})
		// All objects land in one window chain, the eager scheme's
		// worst case.
		refs := make([]cache.Ref, n)
		for i := 0; i < n; i++ {
			refs[i], _, _ = c.Add(hepPath(i), bitvec.Full, 0)
		}
		c.Tick() // move the clock so a refresh changes the window
		start := time.Now()
		for i := 0; i < n; i++ {
			c.Refresh(refs[i], bitvec.Full, -1)
		}
		if !eager {
			// Deferred work happens when the original chain is swept
			// (at tick 64); charge the intervening (empty) ticks and
			// the one linear re-chaining pass here, but stop before the
			// refreshed window itself expires.
			for w := 0; w < cache.Windows-1; w++ {
				c.Tick()
			}
		}
		total := time.Since(start)
		name := "deferred (paper)"
		if eager {
			name = "eager (baseline)"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(n), fmtMs(total),
			fmtDur(total / time.Duration(n))})
	}
	t.Notes = append(t.Notes,
		"eager re-chaining unlinks from a singly-linked window chain: O(chain) per refresh")
	return t
}
