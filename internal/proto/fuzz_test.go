package proto

import "testing"

// FuzzUnmarshal feeds arbitrary frames to the decoder. Without -fuzz it
// runs the seed corpus as a unit test; with `go test -fuzz=FuzzUnmarshal
// ./internal/proto` it explores mutations. The decoder must never panic
// and every successful decode must re-encode to something decodable.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range all() {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{byte(KLogin)})
	f.Add([]byte{byte(KData), 0, 0, 0})
	f.Fuzz(func(t *testing.T, frame []byte) {
		m, err := Unmarshal(frame)
		if err != nil {
			return
		}
		// Round-trippable: re-marshal and re-unmarshal.
		again, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("re-decode failed for %#v: %v", m, err)
		}
		if again.Kind() != m.Kind() {
			t.Fatalf("kind changed across round trip: %v -> %v", m.Kind(), again.Kind())
		}
	})
}
