package proto

import "testing"

// FuzzUnmarshal feeds arbitrary frames to the decoder. Without -fuzz it
// runs the seed corpus as a unit test; with `go test -fuzz=FuzzUnmarshal
// ./internal/proto` it explores mutations. The decoder must never panic,
// every successful decode must re-encode to something decodable, and the
// stream ID in the header must survive the round trip unchanged — the
// invariant the multiplexer's reply routing rests on (streamcheck_test.go
// verifies every message type is seeded here).
func FuzzUnmarshal(f *testing.F) {
	for i, m := range all() {
		f.Add(MarshalStream(m, uint32(i*2654435761+1)))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{byte(KLogin)})
	f.Add([]byte{byte(KData), 0, 0, 0})
	f.Fuzz(func(t *testing.T, frame []byte) {
		m, sid, err := UnmarshalStream(frame)
		if err != nil {
			return
		}
		if got := StreamID(frame); got != sid {
			t.Fatalf("StreamID(frame) = %d, UnmarshalStream said %d", got, sid)
		}
		// Round-trippable: re-marshal and re-unmarshal, preserving the
		// stream tag (and again under a different tag — the stream ID
		// must never leak into or depend on the message fields).
		for _, tag := range []uint32{sid, sid ^ 0xA5A5A5A5} {
			again, sid2, err := UnmarshalStream(MarshalStream(m, tag))
			if err != nil {
				t.Fatalf("re-decode failed for %#v: %v", m, err)
			}
			if sid2 != tag {
				t.Fatalf("stream ID changed across round trip: sent %d, got %d", tag, sid2)
			}
			if again.Kind() != m.Kind() {
				t.Fatalf("kind changed across round trip: %v -> %v", m.Kind(), again.Kind())
			}
		}
	})
}
