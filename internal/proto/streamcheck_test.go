package proto

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestEveryMessageTypeIsFuzzSeeded is a go-vet-style completeness check
// built on go/ast: it collects every type in this package that declares
// a Kind() method (i.e. every wire message) and every composite-literal
// type seeded by all() in proto_test.go, and fails if a message type is
// missing from the seed list. Since FuzzUnmarshal derives its corpus
// from all() and asserts the stream ID round-trips, this guarantees a
// newly added message type cannot ship without its stream-tagged
// encoding being fuzzed.
func TestEveryMessageTypeIsFuzzSeeded(t *testing.T) {
	fset := token.NewFileSet()

	kinds := map[string]token.Position{} // type name -> Kind() decl position
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Kind" || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			if recv := receiverName(fn.Recv.List[0].Type); recv != "" {
				kinds[recv] = fset.Position(fn.Pos())
			}
		}
	}
	if len(kinds) == 0 {
		t.Fatal("found no Kind() implementors; check the AST walk")
	}

	seeded := map[string]bool{}
	f, err := parser.ParseFile(fset, "proto_test.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "all" {
			return true
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				if id, ok := lit.Type.(*ast.Ident); ok {
					seeded[id.Name] = true
				}
			}
			return true
		})
		return false
	})
	if len(seeded) == 0 {
		t.Fatal("found no composite literals in all(); check the AST walk")
	}

	for name, pos := range kinds {
		if !seeded[name] {
			t.Errorf("%s: message type %s has a Kind() method but is not seeded in all(); "+
				"its stream-ID round trip is unfuzzed", pos, name)
		}
	}
}

// receiverName unwraps a method receiver type to its identifier.
func receiverName(typ ast.Expr) string {
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
