// Package proto defines the wire messages exchanged by Scalla daemons
// and clients, with a compact binary encoding.
//
// Two planes share the framing. The control plane runs between cmsd
// instances (login, file queries, positive-only responses, load
// reports). The data plane runs between clients and xrootd/cmsd
// (locate/redirect, open/read/write/close/stat/prepare). A frame is one
// message: a single kind byte, a 4-byte big-endian stream ID, and the
// message's fields in big-endian order with varint-prefixed byte
// strings.
//
// The stream ID multiplexes many outstanding requests over one
// connection (see internal/mux): a requester tags each frame with a
// nonzero stream of its choosing, and a responder must echo the
// request's stream on the reply so replies can be demultiplexed out of
// order. Stream 0 is the lock-step default used by Marshal and
// MarshalFrame; Unmarshal ignores the field, so single-stream callers
// never see it.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Kind identifies a message type on the wire.
type Kind uint8

// Control-plane kinds (cmsd ↔ cmsd).
const (
	KLogin Kind = iota + 1
	KLoginOK
	KLoginRej
	KQuery
	KHave
	KPing
	KPong
	// KHaveNot exists only for the respond-always baseline of
	// experiment E10; Scalla proper never sends negative responses.
	KHaveNot
	// KLoginRedirect vectors a subordinate whose parent cell is full at
	// a supervisor with spare capacity (cell overflow, DESIGN.md §12).
	KLoginRedirect
)

// Data-plane kinds (client ↔ xrootd/cmsd).
const (
	KLocate Kind = iota + 32
	KRedirect
	KWait
	KErr
	KOpen
	KOpenOK
	KRead
	KData
	KWrite
	KWriteOK
	KClose
	KCloseOK
	KStat
	KStatOK
	KPrepare
	KPrepareOK
	KUnlink
	KUnlinkOK
	KList
	KListOK
	KTrunc
	KTruncOK
	KRetryAfter
)

// Role is a node's position in the 64-ary tree.
type Role uint8

// Node roles, leaf to root of the B-64 tree.
const (
	RoleServer Role = iota + 1
	RoleSupervisor
	RoleManager
)

// String returns the role's lowercase wire name.
func (r Role) String() string {
	switch r {
	case RoleServer:
		return "server"
	case RoleSupervisor:
		return "supervisor"
	case RoleManager:
		return "manager"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Error codes carried by Err.
const (
	ENoEnt    = 2  // file does not exist
	EIO       = 5  // I/O failure
	EExist    = 17 // create of an existing file
	EInval    = 22 // malformed request
	EBusy     = 16 // resource contention; retry later
	ENotReady = 11 // staging in progress; retry after wait
)

// Message is implemented by every wire message.
type Message interface{ Kind() Kind }

// ----------------------------------------------------------- control --

// Login is a subordinate's first message on a control connection: it
// declares the node's role, public data-plane address, and exported path
// prefixes. Registration deliberately carries no file manifest — the
// paper's "extremely light" registration (Section V).
type Login struct {
	Role     Role
	Name     string // stable node identity (survives reconnect)
	DataAddr string // address clients are redirected to
	CtlAddr  string // address subordinate cmsds dial (supervisors)
	Prefixes []string
	Free     int64  // free space, for selection
	Load     uint32 // load estimate, for selection
}

// Kind implements Message.
func (Login) Kind() Kind { return KLogin }

// SlotLimit is the width of a cmsd subordinate set: indices live in
// [0, SlotLimit). The wire carries them as uint8 (LoginOK.Index), so any
// future fanout change must widen the field before raising this — use
// SlotIndex for every int→uint8 narrowing so an overflowing index is a
// refused login, not a silent alias (the respq 32/32 token-aliasing bug,
// in slot form).
const SlotLimit = 64

// SlotIndex converts a membership-table index to its wire form with a
// bounds check. ok=false means the index does not fit the protocol's
// [0, SlotLimit) slot space and must not be sent.
func SlotIndex(i int) (idx uint8, ok bool) {
	if i < 0 || i >= SlotLimit {
		return 0, false
	}
	return uint8(i), true
}

// LoginOK acknowledges a Login and tells the subordinate its index in
// the parent's 64-wide set.
type LoginOK struct {
	Index uint8
}

// Kind implements Message.
func (LoginOK) Kind() Kind { return KLoginOK }

// LoginRedirect refuses a Login because the parent's subordinate set is
// full, vectoring the subordinate at a supervisor child with capacity
// instead (cell overflow): the subordinate should retry its login at
// CtlAddr. Unlike LoginRej, a redirect is not an error — it is how a
// 65th server finds its place in the tree without redial-looping
// against a full parent forever.
type LoginRedirect struct {
	CtlAddr string
}

// Kind implements Message.
func (LoginRedirect) Kind() Kind { return KLoginRedirect }

// LoginRej refuses a Login (set full, duplicate name, bad role).
type LoginRej struct {
	Reason string
}

// Kind implements Message.
func (LoginRej) Kind() Kind { return KLoginRej }

// Query asks a subordinate whether it has a file. Subordinates answer
// only positively (request-rarely-respond); silence means "no".
type Query struct {
	QID   uint64
	Path  string
	Hash  uint32 // CRC32 of Path, computed once at the top
	Write bool   // access mode the client wants
}

// Kind implements Message.
func (Query) Kind() Kind { return KQuery }

// Have is the positive answer to a Query: the sender has the file
// (Pending=false) or is staging it (Pending=true).
type Have struct {
	QID      uint64
	Path     string
	Hash     uint32
	Pending  bool
	CanWrite bool
}

// Kind implements Message.
func (Have) Kind() Kind { return KHave }

// HaveNot is the explicit negative answer used ONLY by the
// respond-always protocol baseline (experiment E10). The production
// protocol treats silence as "no" (Section III-B).
type HaveNot struct {
	QID  uint64
	Path string
	Hash uint32
}

// Kind implements Message.
func (HaveNot) Kind() Kind { return KHaveNot }

// Ping solicits a Pong; it doubles as the liveness probe.
type Ping struct{}

// Kind implements Message.
func (Ping) Kind() Kind { return KPing }

// Pong reports current load and free space for server selection.
type Pong struct {
	Load uint32
	Free int64
}

// Kind implements Message.
func (Pong) Kind() Kind { return KPong }

// -------------------------------------------------------------- data --

// Locate asks a manager/supervisor for a server that can satisfy the
// given access. Refresh requests a cache refresh, naming the Avoid host
// that failed (Section III-C1).
type Locate struct {
	Path    string
	Write   bool
	Create  bool
	Refresh bool
	Avoid   string
}

// Kind implements Message.
func (Locate) Kind() Kind { return KLocate }

// Redirect vectors the client at a subordinate node.
type Redirect struct {
	Addr    string
	CtlAddr string // non-empty when Addr is itself a redirector
	Pending bool   // target is staging the file; expect a wait there
}

// Kind implements Message.
func (Redirect) Kind() Kind { return KRedirect }

// Wait tells the client to pause and retry the same request.
type Wait struct {
	Millis uint32
}

// Kind implements Message.
func (Wait) Kind() Kind { return KWait }

// Err reports failure of the preceding request.
type Err struct {
	Code uint32
	Msg  string
}

// Kind implements Message.
func (Err) Kind() Kind { return KErr }

// Open opens a file on a data server.
type Open struct {
	Path   string
	Write  bool
	Create bool
}

// Kind implements Message.
func (Open) Kind() Kind { return KOpen }

// OpenOK returns the file handle for subsequent I/O.
type OpenOK struct {
	FH   uint64
	Size int64
}

// Kind implements Message.
func (OpenOK) Kind() Kind { return KOpenOK }

// Read requests N bytes at Off.
type Read struct {
	FH  uint64
	Off int64
	N   uint32
}

// Kind implements Message.
func (Read) Kind() Kind { return KRead }

// Data answers a Read. EOF marks the end of file.
type Data struct {
	FH    uint64
	Bytes []byte
	EOF   bool
}

// Kind implements Message.
func (Data) Kind() Kind { return KData }

// Write writes bytes at Off.
type Write struct {
	FH    uint64
	Off   int64
	Bytes []byte
}

// Kind implements Message.
func (Write) Kind() Kind { return KWrite }

// WriteOK acknowledges a Write.
type WriteOK struct {
	FH uint64
	N  uint32
}

// Kind implements Message.
func (WriteOK) Kind() Kind { return KWriteOK }

// Close releases a file handle.
type Close struct {
	FH uint64
}

// Kind implements Message.
func (Close) Kind() Kind { return KClose }

// CloseOK acknowledges a Close.
type CloseOK struct {
	FH uint64
}

// Kind implements Message.
func (CloseOK) Kind() Kind { return KCloseOK }

// Stat queries file metadata.
type Stat struct {
	Path string
}

// Kind implements Message.
func (Stat) Kind() Kind { return KStat }

// StatOK answers a Stat.
type StatOK struct {
	Exists bool
	Size   int64
	Online bool // false while the file sits only in mass storage
}

// Kind implements Message.
func (StatOK) Kind() Kind { return KStatOK }

// Prepare announces files that will be needed soon, spawning parallel
// background look-ups/staging (Section III-B2).
type Prepare struct {
	Paths []string
	Write bool
}

// Kind implements Message.
func (Prepare) Kind() Kind { return KPrepare }

// PrepareOK acknowledges a Prepare; the work continues asynchronously.
type PrepareOK struct {
	Queued uint32
}

// Kind implements Message.
func (PrepareOK) Kind() Kind { return KPrepareOK }

// Unlink removes a file.
type Unlink struct {
	Path string
}

// Kind implements Message.
func (Unlink) Kind() Kind { return KUnlink }

// UnlinkOK acknowledges an Unlink.
type UnlinkOK struct{}

// Kind implements Message.
func (UnlinkOK) Kind() Kind { return KUnlinkOK }

// List asks a data server for the files it holds under a prefix. Scalla
// proper never uses it on the resolution path — global listing is the
// job of the separate Cluster Name Space daemon (paper footnote 3,
// Section V).
type List struct {
	Prefix string
}

// Kind implements Message.
func (List) Kind() Kind { return KList }

// Entry is one row of a ListOK reply.
type Entry struct {
	Path   string
	Size   int64
	Online bool
}

// ListOK answers a List.
type ListOK struct {
	Entries []Entry
}

// Kind implements Message.
func (ListOK) Kind() Kind { return KListOK }

// Trunc resizes an open file.
type Trunc struct {
	FH   uint64
	Size int64
}

// Kind implements Message.
func (Trunc) Kind() Kind { return KTrunc }

// TruncOK acknowledges a Trunc.
type TruncOK struct {
	FH uint64
}

// Kind implements Message.
func (TruncOK) Kind() Kind { return KTruncOK }

// RetryAfter is a shed verdict: the server's dispatch queue is full and
// the request was dropped before reaching a handler. Millis is the
// server's backoff hint — the client should retry (with jitter, against
// any replica) no sooner than roughly that long. It generalizes the
// respq full-delay Wait into an explicit backpressure signal: unlike
// Wait{Millis}, which promises the resource will exist and parks the
// client on a callback, RetryAfter promises nothing and carries no
// server-side state (DESIGN.md §11, FAULTS.md).
type RetryAfter struct {
	Millis uint32
}

// Kind implements Message.
func (RetryAfter) Kind() Kind { return KRetryAfter }

// ---------------------------------------------------------- encoding --

var errTruncated = errors.New("proto: truncated message")

type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) bytes(v []byte) {
	w.b = binary.AppendUvarint(w.b, uint64(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) str(v string) { w.bytes([]byte(v)) }
func (w *writer) strs(vs []string) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.str(v)
	}
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.err = errTruncated
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.err = errTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.err = errTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	n, sz := binary.Uvarint(r.b)
	if sz <= 0 || uint64(len(r.b)-sz) < n {
		r.err = errTruncated
		return nil
	}
	// Alias rather than copy, as rawBytes32 does; the frame belongs to
	// the decoder's caller (string fields still copy via conversion).
	v := r.b[sz : sz+int(n) : sz+int(n)]
	r.b = r.b[sz+int(n):]
	return v
}

// rawBytes32 reads a fixed-width u32 length followed by that many raw
// bytes — the tail layout of a Data frame. The returned slice aliases
// the frame rather than copying it: every transport's Send copies, so
// a frame handed out by Recv is exclusively the receiver's, and the
// data plane saves one payload-sized copy + allocation per Read.
// Callers that outlive the frame must copy.
func (r *reader) rawBytes32() []byte {
	n := r.u32()
	if r.err != nil || uint64(n) > uint64(len(r.b)) {
		r.err = errTruncated
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) strs() []string {
	n := r.u32()
	if r.err != nil || uint64(n) > uint64(len(r.b)) {
		r.err = errTruncated
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.str())
	}
	return out
}

// headerLen is the fixed frame prefix: one kind byte plus the 4-byte
// big-endian stream ID.
const headerLen = 5

// Marshal encodes m on stream 0 into a freshly allocated frame. Hot
// paths that send the frame immediately should prefer MarshalFrame,
// which recycles its buffer through a pool.
func Marshal(m Message) []byte {
	return MarshalStream(m, 0)
}

// MarshalStream encodes m tagged with the given stream ID into a
// freshly allocated frame.
func MarshalStream(m Message, stream uint32) []byte {
	return appendMessage(make([]byte, 0, 64), m, stream)
}

// StreamID extracts the stream ID from an encoded frame without
// decoding the message. Truncated frames report stream 0.
func StreamID(frame []byte) uint32 {
	if len(frame) < headerLen {
		return 0
	}
	return binary.BigEndian.Uint32(frame[1:headerLen])
}

// maxPooledFrame bounds the capacity of buffers kept in the frame pool
// so a single giant frame cannot pin memory forever. It comfortably
// covers a 64 KiB read chunk plus the Data header, so the client's
// default sequential-read chunk stays on the pooled path.
const maxPooledFrame = 128 << 10

// framePool recycles Frame buffers between MarshalFrame and Release.
var framePool = sync.Pool{
	New: func() any { return &Frame{b: make([]byte, 0, 256)} },
}

// Frame is a pooled buffer holding one marshaled message.
//
// Ownership rule: the goroutine that called MarshalFrame owns the frame
// until it calls Release, after which the bytes must not be touched.
// Releasing after transport.Conn.Send returns is safe: every transport
// either writes the frame out synchronously or copies it before
// retaining it (see DESIGN.md, "Concurrency model").
type Frame struct {
	b []byte
}

// Bytes returns the frame's encoded bytes. The slice is only valid
// until Release is called.
func (f *Frame) Bytes() []byte { return f.b }

// Release returns the frame's buffer to the pool. The Frame and the
// slice returned by Bytes must not be used afterwards.
func (f *Frame) Release() {
	if cap(f.b) > maxPooledFrame {
		return
	}
	framePool.Put(f)
}

// GetFrame returns a pooled frame sized to hold n bytes, for receive
// paths that fill it from the wire. The contents are undefined; the
// caller owns the frame and must Release it when done. Frames up to
// maxPooledFrame recycle through the pool, so a warmed receive loop
// allocates nothing.
func GetFrame(n int) *Frame {
	f := framePool.Get().(*Frame)
	if cap(f.b) < n {
		f.b = make([]byte, n)
	} else {
		f.b = f.b[:n]
	}
	return f
}

// CopyFrame copies b into a pooled frame the caller owns — the pooled
// replacement for make-and-copy on transports that must retain a frame
// past Send's return (InProc's peer queue).
func CopyFrame(b []byte) *Frame {
	f := framePool.Get().(*Frame)
	f.b = append(f.b[:0], b...)
	return f
}

// WrapFrame adopts b as a frame's backing buffer without copying. It
// lets pooled-frame consumers accept bytes from an allocating source
// (a transport without a pooled receive path); Release will recycle b
// into the pool, so the caller must own b outright.
func WrapFrame(b []byte) *Frame {
	f := framePool.Get().(*Frame)
	f.b = b
	return f
}

// AliasesFrame reports whether a decoded message's byte fields alias
// the frame it was decoded from — true for Data and Write, whose
// payloads are zero-copy views into the frame (rawBytes32 and bytes
// aliasing above). The frame backing such a message must outlive every
// use of the message, and must not be Released before then; messages of
// every other kind copy what they keep (string conversion copies), so
// their frames may be released immediately after decode.
func AliasesFrame(m Message) bool {
	switch m.(type) {
	case Data, Write:
		return true
	}
	return false
}

// MarshalFrame encodes m on stream 0 into a pooled frame; the caller
// must call Release on the result once the bytes have been handed to a
// transport.
func MarshalFrame(m Message) *Frame {
	return MarshalFrameStream(m, 0)
}

// MarshalFrameStream encodes m tagged with the given stream ID into a
// pooled frame; the caller must call Release on the result once the
// bytes have been handed to a transport.
func MarshalFrameStream(m Message, stream uint32) *Frame {
	f := framePool.Get().(*Frame)
	f.b = appendMessage(f.b[:0], m, stream)
	return f
}

// StartDataFrame begins a single-copy Data frame on the given stream:
// it returns a pooled frame pre-encoded up to the payload, plus a
// payload destination slice of length n for the caller to fill in
// place (typically while holding a store lock, so the bytes are copied
// exactly once). The caller must then call FinishData with the number
// of bytes actually written; releasing an unfinished frame is safe.
func StartDataFrame(stream uint32, fh uint64, n int) (*Frame, []byte) {
	f := framePool.Get().(*Frame)
	w := writer{b: f.b[:0]}
	w.u8(uint8(KData))
	w.u32(stream)
	w.u64(fh)
	w.u8(0)          // EOF, patched by FinishData
	w.u32(uint32(n)) // payload length, patched by FinishData
	head := len(w.b)
	if cap(w.b) < head+n {
		grown := make([]byte, head+n)
		copy(grown, w.b)
		w.b = grown
	} else {
		w.b = w.b[:head+n]
	}
	f.b = w.b
	return f, f.b[head:]
}

// FinishData completes a frame started with StartDataFrame: it trims
// the payload to the n bytes actually written and stamps the EOF flag
// into the header. n must not exceed the capacity requested at start.
func (f *Frame) FinishData(n int, eof bool) {
	head := headerLen + 8 + 1 + 4 // fh, eof, payload length
	if eof {
		f.b[headerLen+8] = 1
	}
	binary.BigEndian.PutUint32(f.b[headerLen+8+1:], uint32(n))
	f.b = f.b[:head+n]
}

// appendMessage appends m's frame encoding to buf and returns the
// extended slice.
func appendMessage(buf []byte, m Message, stream uint32) []byte {
	w := writer{b: buf}
	w.u8(uint8(m.Kind()))
	w.u32(stream)
	switch v := m.(type) {
	case Login:
		w.u8(uint8(v.Role))
		w.str(v.Name)
		w.str(v.DataAddr)
		w.str(v.CtlAddr)
		w.strs(v.Prefixes)
		w.i64(v.Free)
		w.u32(v.Load)
	case LoginOK:
		w.u8(v.Index)
	case LoginRej:
		w.str(v.Reason)
	case LoginRedirect:
		w.str(v.CtlAddr)
	case Query:
		w.u64(v.QID)
		w.str(v.Path)
		w.u32(v.Hash)
		w.boolean(v.Write)
	case Have:
		w.u64(v.QID)
		w.str(v.Path)
		w.u32(v.Hash)
		w.boolean(v.Pending)
		w.boolean(v.CanWrite)
	case HaveNot:
		w.u64(v.QID)
		w.str(v.Path)
		w.u32(v.Hash)
	case Ping:
	case Pong:
		w.u32(v.Load)
		w.i64(v.Free)
	case Locate:
		w.str(v.Path)
		w.boolean(v.Write)
		w.boolean(v.Create)
		w.boolean(v.Refresh)
		w.str(v.Avoid)
	case Redirect:
		w.str(v.Addr)
		w.str(v.CtlAddr)
		w.boolean(v.Pending)
	case Wait:
		w.u32(v.Millis)
	case Err:
		w.u32(v.Code)
		w.str(v.Msg)
	case Open:
		w.str(v.Path)
		w.boolean(v.Write)
		w.boolean(v.Create)
	case OpenOK:
		w.u64(v.FH)
		w.i64(v.Size)
	case Read:
		w.u64(v.FH)
		w.i64(v.Off)
		w.u32(v.N)
	case Data:
		// Data places the payload last, behind a fixed-width length, so
		// StartDataFrame can reserve the header and fill the payload in
		// place — the layouts must stay identical.
		w.u64(v.FH)
		w.boolean(v.EOF)
		w.u32(uint32(len(v.Bytes)))
		w.b = append(w.b, v.Bytes...)
	case Write:
		w.u64(v.FH)
		w.i64(v.Off)
		w.bytes(v.Bytes)
	case WriteOK:
		w.u64(v.FH)
		w.u32(v.N)
	case Close:
		w.u64(v.FH)
	case CloseOK:
		w.u64(v.FH)
	case Stat:
		w.str(v.Path)
	case StatOK:
		w.boolean(v.Exists)
		w.i64(v.Size)
		w.boolean(v.Online)
	case Prepare:
		w.strs(v.Paths)
		w.boolean(v.Write)
	case PrepareOK:
		w.u32(v.Queued)
	case Unlink:
		w.str(v.Path)
	case UnlinkOK:
	case List:
		w.str(v.Prefix)
	case ListOK:
		w.u32(uint32(len(v.Entries)))
		for _, e := range v.Entries {
			w.str(e.Path)
			w.i64(e.Size)
			w.boolean(e.Online)
		}
	case Trunc:
		w.u64(v.FH)
		w.i64(v.Size)
	case TruncOK:
		w.u64(v.FH)
	case RetryAfter:
		w.u32(v.Millis)
	default:
		panic(fmt.Sprintf("proto: unknown message %T", m))
	}
	return w.b
}

// Unmarshal decodes one frame, discarding its stream ID.
func Unmarshal(frame []byte) (Message, error) {
	m, _, err := UnmarshalStream(frame)
	return m, err
}

// UnmarshalStream decodes one frame and reports the stream ID it was
// tagged with.
func UnmarshalStream(frame []byte) (Message, uint32, error) {
	if len(frame) < headerLen {
		return nil, 0, errTruncated
	}
	stream := binary.BigEndian.Uint32(frame[1:headerLen])
	r := reader{b: frame[headerLen:]}
	var m Message
	switch Kind(frame[0]) {
	case KLogin:
		m = Login{
			Role: Role(r.u8()), Name: r.str(), DataAddr: r.str(),
			CtlAddr: r.str(), Prefixes: r.strs(), Free: r.i64(), Load: r.u32(),
		}
	case KLoginOK:
		m = LoginOK{Index: r.u8()}
	case KLoginRej:
		m = LoginRej{Reason: r.str()}
	case KLoginRedirect:
		m = LoginRedirect{CtlAddr: r.str()}
	case KQuery:
		m = Query{QID: r.u64(), Path: r.str(), Hash: r.u32(), Write: r.boolean()}
	case KHave:
		m = Have{QID: r.u64(), Path: r.str(), Hash: r.u32(), Pending: r.boolean(), CanWrite: r.boolean()}
	case KHaveNot:
		m = HaveNot{QID: r.u64(), Path: r.str(), Hash: r.u32()}
	case KPing:
		m = Ping{}
	case KPong:
		m = Pong{Load: r.u32(), Free: r.i64()}
	case KLocate:
		m = Locate{Path: r.str(), Write: r.boolean(), Create: r.boolean(), Refresh: r.boolean(), Avoid: r.str()}
	case KRedirect:
		m = Redirect{Addr: r.str(), CtlAddr: r.str(), Pending: r.boolean()}
	case KWait:
		m = Wait{Millis: r.u32()}
	case KErr:
		m = Err{Code: r.u32(), Msg: r.str()}
	case KOpen:
		m = Open{Path: r.str(), Write: r.boolean(), Create: r.boolean()}
	case KOpenOK:
		m = OpenOK{FH: r.u64(), Size: r.i64()}
	case KRead:
		m = Read{FH: r.u64(), Off: r.i64(), N: r.u32()}
	case KData:
		d := Data{FH: r.u64(), EOF: r.boolean()}
		d.Bytes = r.rawBytes32()
		m = d
	case KWrite:
		m = Write{FH: r.u64(), Off: r.i64(), Bytes: r.bytes()}
	case KWriteOK:
		m = WriteOK{FH: r.u64(), N: r.u32()}
	case KClose:
		m = Close{FH: r.u64()}
	case KCloseOK:
		m = CloseOK{FH: r.u64()}
	case KStat:
		m = Stat{Path: r.str()}
	case KStatOK:
		m = StatOK{Exists: r.boolean(), Size: r.i64(), Online: r.boolean()}
	case KPrepare:
		m = Prepare{Paths: r.strs(), Write: r.boolean()}
	case KPrepareOK:
		m = PrepareOK{Queued: r.u32()}
	case KUnlink:
		m = Unlink{Path: r.str()}
	case KUnlinkOK:
		m = UnlinkOK{}
	case KList:
		m = List{Prefix: r.str()}
	case KListOK:
		n := r.u32()
		if r.err != nil || uint64(n) > uint64(len(r.b)) {
			return nil, 0, errTruncated
		}
		entries := make([]Entry, 0, n)
		for i := uint32(0); i < n; i++ {
			entries = append(entries, Entry{Path: r.str(), Size: r.i64(), Online: r.boolean()})
		}
		m = ListOK{Entries: entries}
	case KTrunc:
		m = Trunc{FH: r.u64(), Size: r.i64()}
	case KTruncOK:
		m = TruncOK{FH: r.u64()}
	case KRetryAfter:
		m = RetryAfter{Millis: r.u32()}
	default:
		return nil, 0, fmt.Errorf("proto: unknown kind %d", frame[0])
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	return m, stream, nil
}
