package proto

import (
	"reflect"
	"testing"
	"testing/quick"
)

// all returns one populated instance of every message type; the
// round-trip test keeps this list in sync with the codec by failing if a
// kind is missing.
func all() []Message {
	return []Message{
		Login{Role: RoleServer, Name: "node7", DataAddr: "d:1094", CtlAddr: "c:1213",
			Prefixes: []string{"/store", "/data"}, Free: 1 << 40, Load: 17},
		LoginOK{Index: 42},
		LoginRej{Reason: "set full"},
		LoginRedirect{CtlAddr: "sup3:1213"},
		Query{QID: 9, Path: "/store/a.root", Hash: 0xDEADBEEF, Write: true},
		Have{QID: 9, Path: "/store/a.root", Hash: 0xDEADBEEF, Pending: true, CanWrite: true},
		HaveNot{QID: 9, Path: "/store/a.root", Hash: 0xDEADBEEF},
		Ping{},
		Pong{Load: 3, Free: 12345},
		Locate{Path: "/f", Write: true, Create: true, Refresh: true, Avoid: "bad:1094"},
		Redirect{Addr: "srv:1094", CtlAddr: "srv:1213", Pending: true},
		Wait{Millis: 5000},
		Err{Code: ENoEnt, Msg: "no such file"},
		Open{Path: "/f", Write: true, Create: false},
		OpenOK{FH: 77, Size: 1 << 30},
		Read{FH: 77, Off: 4096, N: 65536},
		Data{FH: 77, Bytes: []byte{1, 2, 3}, EOF: true},
		Write{FH: 77, Off: 0, Bytes: []byte("hello")},
		WriteOK{FH: 77, N: 5},
		Close{FH: 77},
		CloseOK{FH: 77},
		Stat{Path: "/f"},
		StatOK{Exists: true, Size: 9, Online: false},
		Prepare{Paths: []string{"/a", "/b", "/c"}, Write: true},
		PrepareOK{Queued: 3},
		Unlink{Path: "/f"},
		UnlinkOK{},
		List{Prefix: "/store"},
		ListOK{Entries: []Entry{{Path: "/store/a", Size: 4, Online: true}, {Path: "/store/b", Size: 9}}},
		Trunc{FH: 77, Size: 1024},
		TruncOK{FH: 77},
		RetryAfter{Millis: 150},
	}
}

func TestRoundTripEveryKind(t *testing.T) {
	covered := map[Kind]bool{}
	for _, m := range all() {
		covered[m.Kind()] = true
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		want := m
		// Empty slices decode as nil; normalize.
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%T round trip:\n got %#v\nwant %#v", m, got, want)
		}
	}
	// Every declared kind must appear in all().
	for k := KLogin; k <= KHaveNot; k++ {
		if !covered[k] {
			t.Errorf("control kind %d missing from round-trip coverage", k)
		}
	}
	for k := KLocate; k <= KTruncOK; k++ {
		if !covered[k] {
			t.Errorf("data kind %d missing from round-trip coverage", k)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := Unmarshal([]byte{0}); err == nil {
		t.Error("kind 0 accepted")
	}
	if _, err := Unmarshal([]byte{250}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncated payloads for a few kinds.
	for _, m := range all() {
		f := Marshal(m)
		if len(f) < 2 {
			continue
		}
		if _, err := Unmarshal(f[:len(f)-1]); err == nil {
			// Some truncations still parse (e.g. trailing bool dropped
			// leaves a short frame); only frames whose decode consumed
			// everything can detect it. Accept either, but never panic.
			_ = err
		}
	}
}

// Property: random bytes never panic the decoder.
func TestPropUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", b, r)
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Query/Have round-trip for arbitrary field values.
func TestPropQueryHaveRoundTrip(t *testing.T) {
	f := func(qid uint64, path string, hash uint32, w, p, cw bool) bool {
		q, err := Unmarshal(Marshal(Query{QID: qid, Path: path, Hash: hash, Write: w}))
		if err != nil || q != (Query{QID: qid, Path: path, Hash: hash, Write: w}) {
			return false
		}
		h, err := Unmarshal(Marshal(Have{QID: qid, Path: path, Hash: hash, Pending: p, CanWrite: cw}))
		return err == nil && h == (Have{QID: qid, Path: path, Hash: hash, Pending: p, CanWrite: cw})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Data preserves arbitrary payloads.
func TestPropDataRoundTrip(t *testing.T) {
	f := func(fh uint64, b []byte, eof bool) bool {
		m, err := Unmarshal(Marshal(Data{FH: fh, Bytes: b, EOF: eof}))
		if err != nil {
			return false
		}
		d := m.(Data)
		if d.FH != fh || d.EOF != eof || len(d.Bytes) != len(b) {
			return false
		}
		for i := range b {
			if d.Bytes[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoleString(t *testing.T) {
	if RoleManager.String() != "manager" || RoleServer.String() != "server" ||
		RoleSupervisor.String() != "supervisor" {
		t.Error("role names wrong")
	}
	if Role(99).String() != "role(99)" {
		t.Error("unknown role formatting wrong")
	}
}

func BenchmarkMarshalQuery(b *testing.B) {
	q := Query{QID: 1, Path: "/store/data/run/file-000123.root", Hash: 0xABCD1234}
	for i := 0; i < b.N; i++ {
		_ = Marshal(q)
	}
}

func BenchmarkUnmarshalQuery(b *testing.B) {
	f := Marshal(Query{QID: 1, Path: "/store/data/run/file-000123.root", Hash: 0xABCD1234})
	for i := 0; i < b.N; i++ {
		_, _ = Unmarshal(f)
	}
}
