// Package faults is Scalla's deterministic fault-injection layer: a
// transport.Network wrapper that drops, delays, duplicates, and reorders
// frames, severs links, and refuses dials to crashed nodes — the
// machinery behind the chaos suite and FAULTS.md.
//
// The paper never benchmarks failure, but its architecture is shaped by
// it: the 5 s processing deadline bounds the cost of silent servers, the
// fast-response guard window turns a dead responder into a full delay
// rather than a hang, supervisors mask the loss of whole subtrees, and
// clients recover from stale locations by requesting a cache refresh
// that names the failing host (Sections III-B/III-C). This package
// exists to exercise those mechanisms on demand.
//
// Every probabilistic decision comes from one seeded generator, so a
// failing chaos run is reproducible by its seed. Faults are injected on
// the send side of every connection associated with a wrapped address
// (dialed connections by their dial target, accepted connections by
// their listener address), and each injected fault is recorded as a span
// in the configured obs.Tracer, making injected failures visible in
// /tracez right next to the resolution spans they disturb.
//
// A caveat on duplication and reordering: Scalla's data plane runs
// strict request/reply over one connection, a regime in which a
// TCP-like stream cannot duplicate or reorder frames — injecting those
// faults there desynchronizes the RPC framing itself rather than
// exercising any recovery path. Use per-link plans (SetLinkPlan) to aim
// Dup/Reorder at control-plane links, whose login/query/have/ping
// traffic is one-way and idempotent by design (Section III-B).
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/transport"
)

// Plan is a set of per-frame fault probabilities applied to the send
// side of a link. The zero Plan injects nothing.
type Plan struct {
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Dup is the probability a frame is transmitted twice.
	Dup float64
	// Delay is the probability a frame is held for a uniform duration in
	// [DelayMin, DelayMax] before transmission. Delayed frames are sent
	// asynchronously, so a delay also reorders the frame past later
	// traffic on the same link.
	Delay float64
	// DelayMin and DelayMax bound the injected delay. DelayMax of zero
	// means DelayMin exactly.
	DelayMin, DelayMax time.Duration
	// Reorder is the probability a frame is held back and transmitted
	// immediately after the next frame on the same connection (an
	// adjacent swap).
	Reorder float64
}

// Active reports whether the plan can inject anything.
func (p Plan) Active() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Delay > 0 || p.Reorder > 0
}

// Config parameterizes a fault-injecting Network.
type Config struct {
	// Seed seeds the fault decision generator; equal seeds reproduce
	// equal decision sequences for a serialized schedule of sends.
	Seed int64
	// Plan is the initial global plan (overridable per link and at
	// runtime via SetPlan).
	Plan Plan
	// Tracer, if set, records one span per injected fault (op "fault",
	// path = link address, outcome = fault kind) so injections surface
	// in /tracez. A nil or disabled tracer costs one atomic load.
	Tracer *obs.Tracer
}

// Stats counts injected faults since the network was created.
type Stats struct {
	Dropped      int64 // frames discarded
	Duplicated   int64 // frames sent twice
	Delayed      int64 // frames held then sent
	Reordered    int64 // adjacent frame swaps
	SeveredConns int64 // connections closed by Sever
	RefusedDials int64 // dials refused because the address was severed
}

// Network wraps an inner transport.Network with fault injection. It is
// safe for concurrent use.
type Network struct {
	inner  transport.Network
	tracer *obs.Tracer

	rmu sync.Mutex // serializes the decision generator
	rng *rand.Rand

	mu      sync.Mutex
	plan    Plan
	links   map[string]Plan // per-address overrides
	severed map[string]bool
	conns   map[*faultConn]struct{}

	dropped, duplicated, delayed, reordered atomic.Int64
	severedConns, refusedDials              atomic.Int64
}

// Wrap returns a fault-injecting Network around inner.
func Wrap(inner transport.Network, cfg Config) *Network {
	return &Network{
		inner:   inner,
		tracer:  cfg.Tracer,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		plan:    cfg.Plan,
		links:   make(map[string]Plan),
		severed: make(map[string]bool),
		conns:   make(map[*faultConn]struct{}),
	}
}

// SetPlan replaces the global fault plan (links with a per-link override
// keep it).
func (n *Network) SetPlan(p Plan) {
	n.mu.Lock()
	n.plan = p
	n.mu.Unlock()
}

// SetLinkPlan overrides the plan for every connection associated with
// addr (dialed to it, or accepted by its listener).
func (n *Network) SetLinkPlan(addr string, p Plan) {
	n.mu.Lock()
	n.links[addr] = p
	n.mu.Unlock()
}

// ClearLinkPlan removes addr's override, returning it to the global plan.
func (n *Network) ClearLinkPlan(addr string) {
	n.mu.Lock()
	delete(n.links, addr)
	n.mu.Unlock()
}

// Sever cuts addr off: every open connection associated with it is
// closed and new dials to it are refused until Heal. Listeners stay
// bound — a severed node looks crashed or partitioned, not deregistered.
func (n *Network) Sever(addr string) {
	n.mu.Lock()
	n.severed[addr] = true
	var victims []*faultConn
	for c := range n.conns {
		if c.addr == addr {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Close()
		n.severedConns.Add(1)
	}
	n.trace(addr, fmt.Sprintf("sever (%d conns)", len(victims)))
}

// Heal lifts a Sever: new dials to addr succeed again. Connections
// closed by the Sever stay closed; reconnection is the endpoints' job.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	delete(n.severed, addr)
	n.mu.Unlock()
	n.trace(addr, "heal")
}

// Severed reports whether addr is currently cut off.
func (n *Network) Severed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.severed[addr]
}

// Stats returns a snapshot of the injection counters.
func (n *Network) Stats() Stats {
	return Stats{
		Dropped:      n.dropped.Load(),
		Duplicated:   n.duplicated.Load(),
		Delayed:      n.delayed.Load(),
		Reordered:    n.reordered.Load(),
		SeveredConns: n.severedConns.Load(),
		RefusedDials: n.refusedDials.Load(),
	}
}

// trace records one injected fault as a completed span.
func (n *Network) trace(addr, kind string) {
	if sp := n.tracer.Start("fault", addr); sp != nil {
		sp.End(kind)
	}
}

// planFor resolves the effective plan for a link address.
func (n *Network) planFor(addr string) Plan {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.links[addr]; ok {
		return p
	}
	return n.plan
}

// Decision classifies the outcome of one per-frame fault roll.
type Decision int

// Per-frame fault decisions, in the order the cumulative-probability
// roll checks them.
const (
	// PassThrough transmits the frame unchanged.
	PassThrough Decision = iota
	// DropFrame silently discards the frame.
	DropFrame
	// DupFrame transmits the frame twice.
	DupFrame
	// DelayFrame holds the frame for the returned duration before
	// transmission.
	DelayFrame
	// ReorderFrame holds the frame back one position (an adjacent swap).
	ReorderFrame
)

// Decide rolls one per-frame fault decision for p using rng: a single
// Float64 draw against the cumulative probabilities, plus an Int63n draw
// for the delay duration when delaying. It is exported so deterministic
// harnesses (internal/detsim) can reuse the live injector's exact
// probability semantics with a scheduler-owned generator; the Network
// wrapper calls it with its own serialized generator.
func (p Plan) Decide(rng *rand.Rand) (Decision, time.Duration) {
	r := rng.Float64()
	switch {
	case r < p.Drop:
		return DropFrame, 0
	case r < p.Drop+p.Dup:
		return DupFrame, 0
	case r < p.Drop+p.Dup+p.Delay:
		d := p.DelayMin
		if p.DelayMax > p.DelayMin {
			d += time.Duration(rng.Int63n(int64(p.DelayMax - p.DelayMin)))
		}
		return DelayFrame, d
	case r < p.Drop+p.Dup+p.Delay+p.Reorder:
		return ReorderFrame, 0
	}
	return PassThrough, 0
}

// decide serializes the network's generator around one Decide roll.
func (n *Network) decide(p Plan) (Decision, time.Duration) {
	n.rmu.Lock()
	defer n.rmu.Unlock()
	return p.Decide(n.rng)
}

// Listen passes through to the inner network; accepted connections are
// fault-wrapped under the listener's address.
func (n *Network) Listen(addr string) (transport.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{l: l, n: n, addr: addr}, nil
}

// Dial refuses severed addresses, otherwise dials through and
// fault-wraps the connection under the target address.
func (n *Network) Dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	cut := n.severed[addr]
	n.mu.Unlock()
	if cut {
		n.refusedDials.Add(1)
		return nil, fmt.Errorf("faults: link to %q severed", addr)
	}
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return n.wrap(c, addr), nil
}

// wrap registers a fault conn for addr, closing it immediately if addr
// was severed between the dial check and registration.
func (n *Network) wrap(c transport.Conn, addr string) *faultConn {
	fc := &faultConn{Conn: c, n: n, addr: addr}
	n.mu.Lock()
	cut := n.severed[addr]
	if !cut {
		n.conns[fc] = struct{}{}
	}
	n.mu.Unlock()
	if cut {
		c.Close()
	}
	return fc
}

func (n *Network) untrack(fc *faultConn) {
	n.mu.Lock()
	delete(n.conns, fc)
	n.mu.Unlock()
}

type faultListener struct {
	l    transport.Listener
	n    *Network
	addr string
}

func (fl *faultListener) Accept() (transport.Conn, error) {
	c, err := fl.l.Accept()
	if err != nil {
		return nil, err
	}
	return fl.n.wrap(c, fl.addr), nil
}

func (fl *faultListener) Close() error { return fl.l.Close() }
func (fl *faultListener) Addr() string { return fl.l.Addr() }

// faultConn injects faults on the send side; receives pass through
// untouched (the peer's sends already went through its own faultConn).
type faultConn struct {
	transport.Conn
	n    *Network
	addr string

	mu   sync.Mutex
	held []byte // frame awaiting an adjacent reorder swap
}

func (fc *faultConn) Send(frame []byte) error {
	p := fc.n.planFor(fc.addr)
	// Flush any held frame after this one regardless of new decisions,
	// so a reordered frame is displaced by exactly one position.
	if p.Active() {
		dec, d := fc.n.decide(p)
		switch dec {
		case DropFrame:
			fc.n.dropped.Add(1)
			fc.n.trace(fc.addr, "drop")
			return fc.flushHeld(nil)
		case DupFrame:
			fc.n.duplicated.Add(1)
			fc.n.trace(fc.addr, "dup")
			if err := fc.Conn.Send(frame); err != nil {
				return err
			}
			return fc.flushHeld(frame)
		case DelayFrame:
			fc.n.delayed.Add(1)
			fc.n.trace(fc.addr, fmt.Sprintf("delay %v", d))
			cp := append([]byte(nil), frame...)
			go func() {
				time.Sleep(d)
				_ = fc.Conn.Send(cp) // conn may have closed meanwhile
			}()
			return fc.flushHeld(nil)
		case ReorderFrame:
			fc.n.reordered.Add(1)
			fc.n.trace(fc.addr, "reorder")
			fc.mu.Lock()
			already := fc.held != nil
			if !already {
				fc.held = append([]byte(nil), frame...)
			}
			fc.mu.Unlock()
			if already { // one frame held at a time; send through instead
				return fc.flushHeld(frame)
			}
			return nil
		}
	}
	return fc.flushHeld(frame)
}

// flushHeld sends frame (if non-nil) and then any held reordered frame,
// completing the adjacent swap.
func (fc *faultConn) flushHeld(frame []byte) error {
	if frame != nil {
		if err := fc.Conn.Send(frame); err != nil {
			return err
		}
	}
	fc.mu.Lock()
	held := fc.held
	fc.held = nil
	fc.mu.Unlock()
	if held != nil {
		return fc.Conn.Send(held)
	}
	return nil
}

// RecvFrame forwards the wrapped connection's pooled receive path;
// faults are injected on the send side only.
func (fc *faultConn) RecvFrame() (*proto.Frame, error) {
	return transport.RecvFrame(fc.Conn)
}

func (fc *faultConn) Close() error {
	fc.n.untrack(fc)
	return fc.Conn.Close()
}
