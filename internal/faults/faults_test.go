package faults

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"scalla/internal/obs"
	"scalla/internal/transport"
)

// sink accepts one connection on net at addr and collects frames until
// it sees the sentinel "END" (or the connection dies).
type sink struct {
	frames chan string
	done   chan struct{}
}

func startSink(t *testing.T, net transport.Network, addr string) *sink {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatalf("Listen(%s): %v", addr, err)
	}
	s := &sink{frames: make(chan string, 1024), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		defer l.Close()
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			f, err := c.Recv()
			if err != nil {
				return
			}
			msg := string(f)
			s.frames <- msg
			if msg == "END" {
				return
			}
		}
	}()
	return s
}

// collect drains the sink after its loop finished, dropping the sentinel.
func (s *sink) collect(t *testing.T) []string {
	t.Helper()
	select {
	case <-s.done:
	case <-time.After(5 * time.Second):
		t.Fatal("sink did not finish (END lost?)")
	}
	close(s.frames)
	var out []string
	for f := range s.frames {
		if f != "END" {
			out = append(out, f)
		}
	}
	return out
}

// run pushes n numbered frames through a fresh fault network under plan
// and seed, then lifts the plan and sends the sentinel, returning what
// arrived (in order).
func run(t *testing.T, seed int64, plan Plan, n int) []string {
	t.Helper()
	inner := transport.NewInProc(transport.InProcConfig{})
	fn := Wrap(inner, Config{Seed: seed, Plan: plan})
	s := startSink(t, fn, "peer")
	c, err := fn.Dial("peer")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < n; i++ {
		if err := c.Send([]byte(fmt.Sprintf("f%03d", i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	fn.SetPlan(Plan{})
	if err := c.Send([]byte("END")); err != nil {
		t.Fatalf("Send END: %v", err)
	}
	return s.collect(t)
}

// TestDropDeterministicUnderSeed pins the chaos suite's reproducibility
// contract: equal seeds drop the same frames, different seeds diverge.
func TestDropDeterministicUnderSeed(t *testing.T) {
	plan := Plan{Drop: 0.5}
	a := run(t, 7, plan, 200)
	b := run(t, 7, plan, 200)
	c := run(t, 8, plan, 200)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("drop 0.5 delivered %d/200 frames; injector inert or total", len(a))
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("same seed, different survivors:\n%v\n%v", a, b)
	}
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Errorf("different seeds, identical survivors")
	}
}

func TestDuplicate(t *testing.T) {
	got := run(t, 1, Plan{Dup: 1}, 3)
	want := []string{"f000", "f000", "f001", "f001", "f002", "f002"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	// Reorder=1: frame 0 is held, frame 1 triggers a second reorder
	// decision but a frame is already held, so it passes through and
	// flushes frame 0 after it — an adjacent swap.
	got := run(t, 1, Plan{Reorder: 1}, 2)
	want := []string{"f001", "f000"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDelayHoldsFrame(t *testing.T) {
	inner := transport.NewInProc(transport.InProcConfig{})
	fn := Wrap(inner, Config{Seed: 1, Plan: Plan{Delay: 1, DelayMin: 30 * time.Millisecond}})
	s := startSink(t, fn, "peer")
	c, err := fn.Dial("peer")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Send([]byte("slow")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case f := <-s.frames:
		if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
			t.Fatalf("frame %q arrived after %v, want >= 30ms", f, elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed frame never arrived")
	}
	if st := fn.Stats(); st.Delayed != 1 {
		t.Fatalf("Stats.Delayed = %d, want 1", st.Delayed)
	}
}

func TestSeverHealLifecycle(t *testing.T) {
	inner := transport.NewInProc(transport.InProcConfig{})
	fn := Wrap(inner, Config{Seed: 1})
	l, err := fn.Listen("victim")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := fn.Dial("victim")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	srv := <-accepted

	fn.Sever("victim")
	if !fn.Severed("victim") {
		t.Fatal("Severed = false after Sever")
	}
	// Both endpoints of the live link must observe the cut.
	if _, err := srv.Recv(); err == nil {
		t.Fatal("server Recv succeeded on severed link")
	}
	if _, err := fn.Dial("victim"); err == nil {
		t.Fatal("Dial succeeded to severed address")
	}
	st := fn.Stats()
	if st.RefusedDials != 1 {
		t.Errorf("Stats.RefusedDials = %d, want 1", st.RefusedDials)
	}
	if st.SeveredConns == 0 {
		t.Errorf("Stats.SeveredConns = 0, want > 0")
	}

	fn.Heal("victim")
	go func() {
		if c2, err := l.Accept(); err == nil {
			c2.Close()
		}
	}()
	c3, err := fn.Dial("victim")
	if err != nil {
		t.Fatalf("Dial after Heal: %v", err)
	}
	c3.Close()
	c.Close()
}

func TestLinkPlanOverridesGlobal(t *testing.T) {
	inner := transport.NewInProc(transport.InProcConfig{})
	fn := Wrap(inner, Config{Seed: 1, Plan: Plan{Drop: 1}})
	fn.SetLinkPlan("clean", Plan{}) // this link is exempt from the global drop-all
	s := startSink(t, fn, "clean")
	c, err := fn.Dial("clean")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send([]byte("ok")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := c.Send([]byte("END")); err != nil {
		t.Fatalf("Send END: %v", err)
	}
	got := s.collect(t)
	if len(got) != 1 || got[0] != "ok" {
		t.Fatalf("got %v, want [ok]", got)
	}
	fn.ClearLinkPlan("clean")
	if p := fn.planFor("clean"); p.Drop != 1 {
		t.Fatalf("after ClearLinkPlan, planFor = %+v, want global drop-all", p)
	}
}

func TestFaultsVisibleInTracer(t *testing.T) {
	tr := obs.NewTracer(64, nil)
	tr.SetEnabled(true)
	inner := transport.NewInProc(transport.InProcConfig{})
	fn := Wrap(inner, Config{Seed: 1, Plan: Plan{Drop: 1}, Tracer: tr})
	s := startSink(t, fn, "peer")
	c, err := fn.Dial("peer")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send([]byte("doomed")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	fn.SetPlan(Plan{})
	if err := c.Send([]byte("END")); err != nil {
		t.Fatalf("Send END: %v", err)
	}
	s.collect(t)
	var found bool
	for _, sp := range tr.Spans(0) {
		if sp.Op == "fault" && sp.Path == "peer" && sp.Outcome == "drop" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no fault/drop span recorded; spans: %+v", tr.Spans(0))
	}
}
