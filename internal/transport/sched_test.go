package transport

import (
	"bytes"
	"io"
	"testing"
)

func TestSchedConnSendGoesToHookNotPeer(t *testing.T) {
	var captured [][]byte
	var from *SchedConn
	a, b := NewSchedPair("mgr", "srv", func(c *SchedConn, frame []byte) error {
		from = c
		captured = append(captured, frame)
		return nil
	})
	if err := a.Send([]byte("q1")); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 || string(captured[0]) != "q1" || from != a {
		t.Fatalf("hook saw %q from %v", captured, from)
	}
	// Nothing was delivered: the peer inbox must be empty.
	select {
	case f := <-b.inbox:
		t.Fatalf("frame %q delivered without Push", f)
	default:
	}
	// The scheduler delivers explicitly.
	if !b.Push(captured[0]) {
		t.Fatal("Push refused")
	}
	got, err := b.Recv()
	if err != nil || !bytes.Equal(got, []byte("q1")) {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestSchedConnSendCopiesFrame(t *testing.T) {
	var captured []byte
	a, _ := NewSchedPair("a", "b", func(_ *SchedConn, frame []byte) error {
		captured = frame
		return nil
	})
	buf := []byte("hello")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller recycles its buffer after Send returns
	if string(captured) != "hello" {
		t.Fatalf("hook frame aliased the caller's buffer: %q", captured)
	}
}

func TestSchedConnRecvHookRunsBeforeBlocking(t *testing.T) {
	a, b := NewSchedPair("a", "b", nil)
	idle := make(chan struct{}, 8)
	b.SetRecvHook(func() { idle <- struct{}{} })
	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	<-idle // hook fired: the receiver is parked at Recv
	if err := a.Send([]byte("f")); err != nil {
		t.Fatal(err) // nil hook delivers directly
	}
	<-idle // frame consumed; receiver parked again
	b.Close()
}

func TestSchedConnCloseUnblocksAndDrains(t *testing.T) {
	_, b := NewSchedPair("a", "b", nil)
	if !b.Push([]byte("last")) {
		t.Fatal("Push refused")
	}
	b.Close()
	// The queued frame is drained first, then EOF.
	got, err := b.Recv()
	if err != nil || string(got) != "last" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	if b.Push([]byte("late")) {
		t.Fatal("Push accepted on closed endpoint")
	}
}

func TestSchedConnNames(t *testing.T) {
	a, b := NewSchedPair("mgr", "srv", nil)
	if a.Name() != "mgr" || a.RemoteAddr() != "srv" || a.Peer() != b {
		t.Fatalf("a: name=%q remote=%q", a.Name(), a.RemoteAddr())
	}
	if b.Name() != "srv" || b.RemoteAddr() != "mgr" || b.Peer() != a {
		t.Fatalf("b: name=%q remote=%q", b.Name(), b.RemoteAddr())
	}
}
