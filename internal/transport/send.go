package transport

import "scalla/internal/proto"

// SendMessage marshals m through the pooled wire-buffer path, sends the
// frame on c, and releases the buffer back to the pool. It is the one
// release point for frames that are encoded and sent in the same call —
// the common shape on every cmsd/xrd hot path.
//
// Releasing after Send returns is safe under the transport ownership
// rule (DESIGN.md, "Concurrency model"): a Conn implementation must
// either write the frame out before Send returns or copy it before
// retaining it. The TCP conn writes synchronously, the in-process conn
// copies into the peer's queue, and the fault-injecting wrapper copies
// before any delayed/reordered delivery.
func SendMessage(c Conn, m proto.Message) error {
	return SendMessageStream(c, m, 0)
}

// SendMessageStream is SendMessage with the frame tagged by a stream
// ID: the multiplexed reply path, used by responders that must echo a
// request's stream so the peer can demultiplex out-of-order replies.
func SendMessageStream(c Conn, m proto.Message, stream uint32) error {
	f := proto.MarshalFrameStream(m, stream)
	err := c.Send(f.Bytes())
	f.Release()
	return err
}
