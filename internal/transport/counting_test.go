package transport

import "testing"

func TestCountingNetworkCountsFramesAndBytes(t *testing.T) {
	cn := Counting(NewInProc(InProcConfig{}))
	l, err := cn.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cli, err := cn.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acc

	if cn.Dials.Load() != 1 {
		t.Errorf("Dials = %d", cn.Dials.Load())
	}
	cli.Send([]byte("12345"))
	srv.Recv()
	srv.Send([]byte("123"))
	cli.Recv()
	if cn.FramesSent.Load() != 2 {
		t.Errorf("FramesSent = %d", cn.FramesSent.Load())
	}
	if cn.BytesSent.Load() != 8 {
		t.Errorf("BytesSent = %d", cn.BytesSent.Load())
	}
	cn.Reset()
	if cn.FramesSent.Load() != 0 || cn.BytesSent.Load() != 0 || cn.Dials.Load() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCountingNetworkContract(t *testing.T) {
	exercise(t, Counting(NewInProc(InProcConfig{})), "node-x")
}
