package transport

import "testing"

func TestCountingNetworkCountsFramesAndBytes(t *testing.T) {
	cn := Counting(NewInProc(InProcConfig{}))
	l, err := cn.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cli, err := cn.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acc

	if s := cn.Stats(); s.Dials != 1 {
		t.Errorf("Dials = %d", s.Dials)
	}
	cli.Send([]byte("12345"))
	srv.Recv()
	srv.Send([]byte("123"))
	cli.Recv()
	s := cn.Stats()
	if s.FramesSent != 2 {
		t.Errorf("FramesSent = %d", s.FramesSent)
	}
	if s.BytesSent != 8 {
		t.Errorf("BytesSent = %d", s.BytesSent)
	}
	cn.Reset()
	if s := cn.Stats(); s != (NetStats{}) {
		t.Errorf("Reset did not clear counters: %+v", s)
	}
}

func TestCountingNetworkContract(t *testing.T) {
	exercise(t, Counting(NewInProc(InProcConfig{})), "node-x")
}
