package transport

import (
	"sync/atomic"

	"scalla/internal/obs"
)

// batchBuckets is the number of frames-per-writev histogram buckets:
// 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65+.
const batchBuckets = 8

// WireStats counts the kernel-boundary work of a TCPNet: how many
// frames and bytes crossed per writev batch and per read syscall, and
// why each flush happened. All counters are atomics; connections of one
// network share a single block, so the numbers describe the process's
// whole wire footprint on that network.
type WireStats struct {
	writevs        atomic.Int64
	framesOut      atomic.Int64
	bytesOut       atomic.Int64
	idleFlushes    atomic.Int64
	backlogFlushes atomic.Int64
	batchHist      [batchBuckets]atomic.Int64
	readCalls      atomic.Int64
	framesIn       atomic.Int64
	bytesIn        atomic.Int64
}

// batchBucket maps a batch size (frames per writev) to its histogram
// bucket.
func batchBucket(frames int) int {
	b := 0
	for n := 1; n < frames && b < batchBuckets-1; n *= 2 {
		b++
	}
	return b
}

// recordFlush accounts one writev batch: n frames, total bytes, and
// whether the flush was triggered by an idle wire (the leader wrote
// immediately) or by a backlog drained behind an in-flight write.
func (s *WireStats) recordFlush(frames int, bytes int, backlog bool) {
	if s == nil {
		return
	}
	s.writevs.Add(1)
	s.framesOut.Add(int64(frames))
	s.bytesOut.Add(int64(bytes))
	if backlog {
		s.backlogFlushes.Add(1)
	} else {
		s.idleFlushes.Add(1)
	}
	s.batchHist[batchBucket(frames)].Add(1)
}

// recordRead accounts one read syscall of n bytes.
func (s *WireStats) recordRead(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.readCalls.Add(1)
	s.bytesIn.Add(int64(n))
}

// recordFrameIn accounts one frame decoded off the receive buffer.
func (s *WireStats) recordFrameIn() {
	if s == nil {
		return
	}
	s.framesIn.Add(1)
}

// Snapshot captures the counters.
func (s *WireStats) Snapshot() WireSnapshot {
	var out WireSnapshot
	out.Writevs = s.writevs.Load()
	out.FramesOut = s.framesOut.Load()
	out.BytesOut = s.bytesOut.Load()
	out.IdleFlushes = s.idleFlushes.Load()
	out.BacklogFlushes = s.backlogFlushes.Load()
	for i := range s.batchHist {
		out.BatchHist[i] = s.batchHist[i].Load()
	}
	out.ReadCalls = s.readCalls.Load()
	out.FramesIn = s.framesIn.Load()
	out.BytesIn = s.bytesIn.Load()
	return out
}

// WireSnapshot is a point-in-time copy of a network's WireStats, the
// unit the obs summary frames and the bench harness report.
type WireSnapshot struct {
	// Writevs counts vectored write syscalls (one per flush batch).
	Writevs int64
	// FramesOut and BytesOut count frames and wire bytes (including the
	// 4-byte length prefixes) sent across all batches.
	FramesOut int64
	// BytesOut counts sent wire bytes.
	BytesOut int64
	// IdleFlushes counts batches written immediately because the wire
	// was idle — the group-commit guarantee that lock-step latency is
	// never delayed.
	IdleFlushes int64
	// BacklogFlushes counts batches that accumulated behind an
	// in-flight write and drained in one writev — the coalescing win.
	BacklogFlushes int64
	// BatchHist buckets flushes by frames per writev:
	// 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65+.
	BatchHist [batchBuckets]int64
	// ReadCalls counts read syscalls on the receive side.
	ReadCalls int64
	// FramesIn counts frames decoded off the buffered receive path.
	FramesIn int64
	// BytesIn counts received wire bytes.
	BytesIn int64
}

// Sub returns the counter deltas since base, for interval reporting.
func (w WireSnapshot) Sub(base WireSnapshot) WireSnapshot {
	out := WireSnapshot{
		Writevs:        w.Writevs - base.Writevs,
		FramesOut:      w.FramesOut - base.FramesOut,
		BytesOut:       w.BytesOut - base.BytesOut,
		IdleFlushes:    w.IdleFlushes - base.IdleFlushes,
		BacklogFlushes: w.BacklogFlushes - base.BacklogFlushes,
		ReadCalls:      w.ReadCalls - base.ReadCalls,
		FramesIn:       w.FramesIn - base.FramesIn,
		BytesIn:        w.BytesIn - base.BytesIn,
	}
	for i := range w.BatchHist {
		out.BatchHist[i] = w.BatchHist[i] - base.BatchHist[i]
	}
	return out
}

// MeanBatch returns the mean frames per writev, or 0 before any flush.
func (w WireSnapshot) MeanBatch() float64 {
	if w.Writevs == 0 {
		return 0
	}
	return float64(w.FramesOut) / float64(w.Writevs)
}

// MeanFramesPerRead returns the mean frames per read syscall, or 0
// before any read.
func (w WireSnapshot) MeanFramesPerRead() float64 {
	if w.ReadCalls == 0 {
		return 0
	}
	return float64(w.FramesIn) / float64(w.ReadCalls)
}

// Summary renders the snapshot as the obs summary-frame section, for
// daemons assembling their monitoring frames. It returns nil when the
// wire has carried nothing, so idle sections stay out of the stream.
func (w WireSnapshot) Summary() *obs.WireSummary {
	if w.Writevs == 0 && w.ReadCalls == 0 {
		return nil
	}
	hist := make([]int64, batchBuckets)
	copy(hist, w.BatchHist[:])
	return &obs.WireSummary{
		Writevs:         w.Writevs,
		FramesOut:       w.FramesOut,
		BytesOut:        w.BytesOut,
		IdleFlushes:     w.IdleFlushes,
		BacklogFlushes:  w.BacklogFlushes,
		FramesPerWritev: w.MeanBatch(),
		BatchHist:       hist,
		ReadCalls:       w.ReadCalls,
		FramesIn:        w.FramesIn,
		BytesIn:         w.BytesIn,
		FramesPerRead:   w.MeanFramesPerRead(),
	}
}

// WireOf returns the wire batching counters of the TCPNet at the root
// of net, unwrapping counting layers; ok is false when net is not
// TCP-backed (the in-process network has no kernel boundary to count).
func WireOf(net Network) (WireSnapshot, bool) {
	for {
		switch n := net.(type) {
		case *TCPNet:
			return n.Wire(), true
		case interface{ Unwrap() Network }:
			net = n.Unwrap()
		default:
			return WireSnapshot{}, false
		}
	}
}
