package transport

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// exercise runs the common Conn contract against any Network.
func exercise(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type acc struct {
		c   Conn
		err error
	}
	accCh := make(chan acc, 1)
	go func() {
		c, err := l.Accept()
		accCh <- acc{c, err}
	}()

	cli, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	a := <-accCh
	if a.err != nil {
		t.Fatal(a.err)
	}
	srv := a.c
	defer srv.Close()

	// Client → server.
	msg := []byte("hello scalla")
	if err := cli.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}

	// Server → client, several frames preserving boundaries and order.
	for i := 0; i < 10; i++ {
		if err := srv.Send([]byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := cli.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("frame-%d", i); string(got) != want {
			t.Fatalf("frame %d: got %q, want %q", i, got, want)
		}
	}

	// Empty frame is legal.
	if err := cli.Send(nil); err != nil {
		t.Fatal(err)
	}
	if got, err := srv.Recv(); err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %q, %v", got, err)
	}

	// Close unblocks the peer's Recv with EOF.
	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = srv.Recv()
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Recv never unblocked after peer close")
		}
	}
	if err != io.EOF && err != ErrClosed {
		// TCP surfaces close as EOF; inproc as EOF too. Either is fine,
		// but it must be a terminal error.
		t.Logf("terminal error: %v", err)
	}
}

func TestTCPConnContract(t *testing.T) {
	exercise(t, TCP(), "127.0.0.1:0")
}

func TestInProcConnContract(t *testing.T) {
	exercise(t, NewInProc(InProcConfig{}), "node-a")
}

func TestInProcDialUnknownAddr(t *testing.T) {
	n := NewInProc(InProcConfig{})
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
}

func TestInProcDuplicateBind(t *testing.T) {
	n := NewInProc(InProcConfig{})
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
	l.Close()
	// Address is reusable after close.
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestInProcPartition(t *testing.T) {
	n := NewInProc(InProcConfig{})
	l, _ := n.Listen("srv")
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	if _, err := n.Dial("srv"); err != nil {
		t.Fatalf("pre-partition dial: %v", err)
	}
	n.SetReachable("srv", false)
	if _, err := n.Dial("srv"); err == nil {
		t.Fatal("dial through partition succeeded")
	}
	n.SetReachable("srv", true)
	if _, err := n.Dial("srv"); err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
}

func TestInProcLatency(t *testing.T) {
	n := NewInProc(InProcConfig{Latency: 20 * time.Millisecond})
	l, _ := n.Listen("srv")
	defer l.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	cli, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-connCh

	start := time.Now()
	cli.Send([]byte("x"))
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 18*time.Millisecond {
		t.Errorf("one-way delivery took %v, want >= ~20ms", d)
	}
}

func TestInProcCloseDrainsPendingFrame(t *testing.T) {
	n := NewInProc(InProcConfig{})
	l, _ := n.Listen("srv")
	defer l.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		connCh <- c
	}()
	cli, _ := n.Dial("srv")
	srv := <-connCh
	cli.Send([]byte("last words"))
	cli.Close()
	got, err := srv.Recv()
	if err != nil || string(got) != "last words" {
		t.Fatalf("lost frame sent before close: %q, %v", got, err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	n := NewInProc(InProcConfig{})
	l, _ := n.Listen("srv")
	defer l.Close()
	go l.Accept()
	cli, _ := n.Dial("srv")
	if err := cli.Send(make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTCPLargeFrame(t *testing.T) {
	n := TCP()
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		frame, err := c.Recv()
		if err == nil {
			got <- frame
		}
	}()
	cli, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	big := make([]byte, 4<<20) // 4 MiB
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := cli.Send(big); err != nil {
		t.Fatal(err)
	}
	select {
	case frame := <-got:
		if !bytes.Equal(frame, big) {
			t.Fatal("4 MiB frame corrupted in transit")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large frame never arrived")
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	n := TCP()
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- -1
			return
		}
		count := 0
		for {
			if _, err := c.Recv(); err != nil {
				break
			}
			count++
		}
		done <- count
	}()
	cli, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := cli.Send([]byte("concurrent frame")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	cli.Close()
	if got := <-done; got != 400 {
		t.Fatalf("received %d frames, want 400 (interleaving corrupted framing?)", got)
	}
}
