// Package transport moves protocol frames between Scalla daemons — the
// point-to-point links of the paper's cell hierarchy (Section II-B):
// child-to-parent control connections, query fan-out links, and the
// client data plane.
//
// Two implementations are provided. TCP carries frames over real
// sockets with a 4-byte length prefix — what production deployments
// use. InProc carries frames over channels inside one process, with
// configurable one-way latency; the benchmark harness uses it to
// emulate the paper's LAN regime (~50 µs one-way) deterministically and
// to build thousand-node clusters in one process. For fault injection
// beyond InProc's simple dial partition (drop, delay, duplicate,
// reorder, link severing) wrap either Network with package
// scalla/internal/faults.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"
)

// MaxFrame is the largest frame either implementation will carry.
// Scalla frames are small (names plus vectors); data-plane reads are
// chunked well below this by the server.
const MaxFrame = 16 << 20

// ErrClosed is returned by operations on a closed connection or
// listener.
var ErrClosed = errors.New("transport: closed")

// Conn is a bidirectional, frame-oriented connection. Send and Recv are
// each safe for one concurrent caller; distinct goroutines may send and
// receive simultaneously.
type Conn interface {
	// Send transmits one frame. Send must finish with the frame slice
	// before returning (write it out or copy it): callers such as
	// SendMessage recycle the buffer into a pool the moment Send
	// returns. An implementation that retains frames asynchronously
	// must copy them first.
	Send(frame []byte) error
	// Recv blocks for the next frame. It returns io.EOF after the peer
	// closes.
	Recv() ([]byte, error)
	// Close tears the connection down; pending Recvs unblock.
	Close() error
	// RemoteAddr names the peer, for logging and redirection.
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the address peers dial to reach this listener.
	Addr() string
}

// Network abstracts dialing and listening so daemons run unchanged over
// TCP or in-process channels.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ------------------------------------------------------------------ TCP

type tcpNetwork struct{}

// TCP returns the production Network backed by the net package.
// Listen("host:0") picks a free port; Listener.Addr reports it.
func TCP() Network { return tcpNetwork{} }

func (tcpNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

func (tcpNetwork) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c    net.Conn
	rmu  sync.Mutex
	wmu  sync.Mutex
	rbuf []byte
}

func newTCPConn(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency matters more than throughput here
	}
	return &tcpConn{c: c}
}

func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := t.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.c.Write(frame)
	return err
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: oversized frame header %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.c, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (t *tcpConn) Close() error       { return t.c.Close() }
func (t *tcpConn) RemoteAddr() string { return t.c.RemoteAddr().String() }

// --------------------------------------------------------------- InProc

// InProcConfig tunes the in-process network.
type InProcConfig struct {
	// Latency is the one-way frame delay, emulating the interconnect.
	// Zero means instantaneous delivery.
	Latency time.Duration
	// QueueLen is the per-direction frame buffer. Default 256.
	QueueLen int
}

// InProc is an in-process Network. Addresses are arbitrary strings.
type InProc struct {
	cfg InProcConfig

	mu        sync.Mutex
	listeners map[string]*inprocListener
	cut       map[string]bool // partitioned addresses
}

// NewInProc returns an empty in-process network.
func NewInProc(cfg InProcConfig) *InProc {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	return &InProc{
		cfg:       cfg,
		listeners: make(map[string]*inprocListener),
		cut:       make(map[string]bool),
	}
}

// SetReachable with reachable=false partitions addr for new dials
// (existing connections survive, as with a real routing change); with
// reachable=true it heals the partition.
func (n *InProc) SetReachable(addr string, reachable bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reachable {
		delete(n.cut, addr)
	} else {
		n.cut[addr] = true
	}
}

// Listen binds addr, an arbitrary unique string, on the in-process
// network.
func (n *InProc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	l := &inprocListener{
		net:     n,
		addr:    addr,
		backlog: make(chan *inprocConn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a bound listener, failing if addr is unbound or
// partitioned.
func (n *InProc) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	cut := n.cut[addr]
	n.mu.Unlock()
	if !ok || cut {
		return nil, fmt.Errorf("transport: connection refused to %q", addr)
	}
	a, b := n.pipe(addr)
	select {
	case l.backlog <- b:
		return a, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// pipe builds two connected endpoints. Endpoint a's remote is addr;
// endpoint b's remote is "client".
func (n *InProc) pipe(addr string) (*inprocConn, *inprocConn) {
	ab := make(chan frame, n.cfg.QueueLen)
	ba := make(chan frame, n.cfg.QueueLen)
	closed := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(closed) }) }
	a := &inprocConn{send: ab, recv: ba, closed: closed, closeFn: closeFn, remote: addr, lat: n.cfg.Latency}
	b := &inprocConn{send: ba, recv: ab, closed: closed, closeFn: closeFn, remote: "client", lat: n.cfg.Latency}
	return a, b
}

type inprocListener struct {
	net     *InProc
	addr    string
	backlog chan *inprocConn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

type frame struct {
	data    []byte
	readyAt time.Time // latency emulation: not deliverable before this
}

type inprocConn struct {
	send    chan frame
	recv    chan frame
	closed  chan struct{}
	closeFn func()
	remote  string
	lat     time.Duration
}

func (c *inprocConn) Send(b []byte) error {
	if len(b) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(b))
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	f := frame{data: cp}
	if c.lat > 0 {
		f.readyAt = time.Now().Add(c.lat)
	}
	select {
	case c.send <- f:
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case f := <-c.recv:
		if !f.readyAt.IsZero() {
			// time.Sleep granularity is ~1ms on coarse-timer kernels,
			// far above the microsecond link latencies the benchmarks
			// emulate; spin out short remainders instead.
			for {
				d := time.Until(f.readyAt)
				if d <= 0 {
					break
				}
				if d > 2*time.Millisecond {
					time.Sleep(d - time.Millisecond)
				} else {
					runtime.Gosched()
				}
			}
		}
		return f.data, nil
	case <-c.closed:
		// Drain anything already queued before reporting EOF, so a
		// close immediately after a send does not lose the frame.
		select {
		case f := <-c.recv:
			return f.data, nil
		default:
		}
		return nil, io.EOF
	}
}

func (c *inprocConn) Close() error {
	c.closeFn()
	return nil
}

func (c *inprocConn) RemoteAddr() string { return c.remote }
