// Package transport moves protocol frames between Scalla daemons — the
// point-to-point links of the paper's cell hierarchy (Section II-B):
// child-to-parent control connections, query fan-out links, and the
// client data plane.
//
// Two implementations are provided. TCP carries frames over real
// sockets with a 4-byte length prefix — what production deployments
// use. InProc carries frames over channels inside one process, with
// configurable one-way latency; the benchmark harness uses it to
// emulate the paper's LAN regime (~50 µs one-way) deterministically and
// to build thousand-node clusters in one process. For fault injection
// beyond InProc's simple dial partition (drop, delay, duplicate,
// reorder, link severing) wrap either Network with package
// scalla/internal/faults.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"scalla/internal/proto"
)

// MaxFrame is the largest frame either implementation will carry.
// Scalla frames are small (names plus vectors); data-plane reads are
// chunked well below this by the server.
const MaxFrame = 16 << 20

// ErrClosed is returned by operations on a closed connection or
// listener.
var ErrClosed = errors.New("transport: closed")

// Conn is a bidirectional, frame-oriented connection. Send is safe for
// any number of concurrent callers — implementations either serialize
// writers internally or coalesce their frames into shared write batches
// (the TCP conn's group-commit writer) — while Recv is safe for one
// concurrent caller. Distinct goroutines may send and receive
// simultaneously.
type Conn interface {
	// Send transmits one frame. Send must finish with the frame slice
	// before returning (write it out or copy it): callers such as
	// SendMessage recycle the buffer into a pool the moment Send
	// returns. An implementation that retains frames asynchronously
	// must copy them first.
	Send(frame []byte) error
	// Recv blocks for the next frame. It returns io.EOF after the peer
	// closes. The returned slice is freshly allocated and owned by the
	// caller outright; hot receive loops should prefer RecvFrame, which
	// recycles buffers through the proto frame pool.
	Recv() ([]byte, error)
	// Close tears the connection down; pending Recvs unblock.
	Close() error
	// RemoteAddr names the peer, for logging and redirection.
	RemoteAddr() string
}

// FrameReceiver is the pooled receive path a Conn may optionally
// implement. RecvFrame returns the next frame in a pooled buffer that
// the caller owns and must Release once every use of the frame — and of
// anything decoded from it whose byte fields alias it (see
// proto.AliasesFrame) — is over. Like Recv, it is safe for one
// concurrent caller, and the two must not be mixed on a live
// connection's receive side.
type FrameReceiver interface {
	RecvFrame() (*proto.Frame, error)
}

// RecvFrame receives the next frame from c through its pooled receive
// path when it has one, falling back to adopting the plain Recv
// allocation otherwise. Either way the caller owns the returned frame
// and must Release it.
func RecvFrame(c Conn) (*proto.Frame, error) {
	if fr, ok := c.(FrameReceiver); ok {
		return fr.RecvFrame()
	}
	b, err := c.Recv()
	if err != nil {
		return nil, err
	}
	return proto.WrapFrame(b), nil
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the address peers dial to reach this listener.
	Addr() string
}

// Network abstracts dialing and listening so daemons run unchanged over
// TCP or in-process channels.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ------------------------------------------------------------------ TCP

// TCPNet is the production Network backed by the net package. Every
// connection it creates shares one WireStats block, so an operator (or
// the bench harness) can read syscall-amortization effectiveness —
// frames per writev batch, flush reasons, frames per read call — off
// the live network.
type TCPNet struct {
	stats WireStats
}

// TCP returns the production Network backed by the net package.
// Listen("host:0") picks a free port; Listener.Addr reports it.
func TCP() *TCPNet { return &TCPNet{} }

// Wire snapshots the network's batching counters.
func (n *TCPNet) Wire() WireSnapshot { return n.stats.Snapshot() }

// Listen binds a real TCP listener on addr.
func (n *TCPNet) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l, stats: &n.stats}, nil
}

// Dial opens a real TCP connection to addr.
func (n *TCPNet) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, &n.stats), nil
}

type tcpListener struct {
	l     net.Listener
	stats *WireStats
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, t.stats), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// recvBufSize is the buffered reader's window: one read syscall slurps
// up to this many bytes, so a burst of small frames (Have floods,
// pipelined acks) decodes out of a single kernel crossing. Reads larger
// than the buffer pass through bufio directly.
const recvBufSize = 64 << 10

// wbatch is one group-commit write batch: the frames (with their length
// prefixes) queued by concurrent senders that will leave in a single
// vectored write. Every sender whose frame joined a batch blocks until
// the batch is on the wire — the Send ownership contract — so bufs may
// alias caller frames without copying.
type wbatch struct {
	bufs  net.Buffers
	hdrs  []*[4]byte // length prefixes; stable arrays from the freelist
	bytes int
	done  chan struct{} // closed once the batch is written (or failed)
	err   error
}

// tcpConn carries frames over one socket with a 4-byte length prefix,
// amortizing syscalls in both directions: sends coalesce into vectored
// write batches (group commit — an idle wire flushes immediately, and
// frames arriving during a flush drain together in the next one), and
// receives decode many frames per read syscall out of a buffered
// reader, into pooled frames on the RecvFrame path.
type tcpConn struct {
	c      net.Conn
	stats  *WireStats
	writev bool // *net.TCPConn: net.Buffers.WriteTo is one writev per batch

	rmu  sync.Mutex
	br   *bufio.Reader
	rhdr [4]byte // persistent header scratch; keeps ReadFull's arg off the heap

	wmu      sync.Mutex
	werr     error      // sticky write error; the stream is corrupt past it
	flushing bool       // a leader goroutine is draining batches
	batch    *wbatch    // frames accumulated for the next flush, nil if none
	hdrFree  []*[4]byte // recycled length-prefix arrays
}

func newTCPConn(c net.Conn, stats *WireStats) *tcpConn {
	tc, isTCP := c.(*net.TCPConn)
	if isTCP {
		tc.SetNoDelay(true) // latency matters more than throughput here
	}
	return &tcpConn{
		c:      c,
		stats:  stats,
		writev: isTCP,
		br:     bufio.NewReaderSize(statReader{c: c, stats: stats}, recvBufSize),
	}
}

// Send queues the frame on the connection's current write batch and
// blocks until that batch is on the wire. The first sender onto an idle
// wire becomes the flush leader and writes immediately — lock-step
// latency never waits — while senders arriving during an in-flight
// write coalesce into the next batch, which the leader drains in one
// vectored write before handing the wire back.
func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	t.wmu.Lock()
	if t.werr != nil {
		t.wmu.Unlock()
		return t.werr
	}
	h := t.getHdrLocked()
	binary.BigEndian.PutUint32(h[:], uint32(len(frame)))
	b := t.batch
	if b == nil {
		b = &wbatch{done: make(chan struct{})}
		t.batch = b
	}
	b.bufs = append(b.bufs, h[:], frame)
	b.hdrs = append(b.hdrs, h)
	b.bytes += len(frame) + 4
	if t.flushing {
		// A leader is mid-write and will drain this batch next; the
		// frame must be on the wire before Send returns, so wait for it.
		t.wmu.Unlock()
		<-b.done
		return b.err
	}
	t.flushing = true
	t.wmu.Unlock()
	// The group-commit window: one scheduler yield before draining, so
	// senders that are already runnable can append to the batch and ride
	// this flush. On an idle wire with no competing work Gosched returns
	// immediately — this is a yield, not a Nagle-style timed delay — and
	// it is what lets coalescing happen even when a single CPU never
	// preempts the leader mid-writev.
	runtime.Gosched()
	t.wmu.Lock()
	backlog := false
	for t.batch != nil && t.werr == nil {
		cur := t.batch
		t.batch = nil
		t.wmu.Unlock()
		err := t.writeBatch(cur.bufs)
		t.wmu.Lock()
		t.stats.recordFlush(len(cur.hdrs), cur.bytes, backlog)
		backlog = true
		if err != nil {
			// A partial batch write leaves the stream misaligned; every
			// later Send must fail rather than interleave garbage.
			t.werr = err
		}
		cur.err = err
		t.hdrFree = append(t.hdrFree, cur.hdrs...)
		close(cur.done)
	}
	if t.werr != nil {
		// Fail any batch queued behind the write that broke the stream.
		if p := t.batch; p != nil {
			t.batch = nil
			p.err = t.werr
			t.hdrFree = append(t.hdrFree, p.hdrs...)
			close(p.done)
		}
	}
	t.flushing = false
	t.wmu.Unlock()
	// The leader's own frame was in the first batch it flushed.
	<-b.done
	return b.err
}

// getHdrLocked pops a length-prefix array off the freelist. The arrays
// must be individually stable — batch iovecs alias them until the flush
// completes — which is why this is a freelist of pointers, not a slab.
func (t *tcpConn) getHdrLocked() *[4]byte {
	if n := len(t.hdrFree); n > 0 {
		h := t.hdrFree[n-1]
		t.hdrFree = t.hdrFree[:n-1]
		return h
	}
	return new([4]byte)
}

// writeBatch puts one batch on the wire. Real sockets take the
// net.Buffers fast path — a single writev per batch, with the runtime
// handling IOV_MAX and partial writes. Other writers (test shims,
// wrappers) get a per-buffer loop that tolerates contract-violating
// short writes.
func (t *tcpConn) writeBatch(bufs net.Buffers) error {
	if t.writev {
		_, err := bufs.WriteTo(t.c)
		return err
	}
	for _, b := range bufs {
		for len(b) > 0 {
			n, err := t.c.Write(b)
			if err != nil {
				return err
			}
			if n <= 0 {
				return io.ErrNoProgress
			}
			b = b[n:]
		}
	}
	return nil
}

// readFrameSize reads the next frame's length prefix. An oversized
// header is protocol-fatal: nothing after it can be framed, so the
// connection is closed rather than left misaligned for the next Recv.
func (t *tcpConn) readFrameSize() (int, error) {
	if _, err := io.ReadFull(t.br, t.rhdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(t.rhdr[:])
	if n > MaxFrame {
		t.c.Close()
		return 0, fmt.Errorf("transport: oversized frame header %d", n)
	}
	return int(n), nil
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	n, err := t.readFrameSize()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.br, buf); err != nil {
		return nil, err
	}
	t.stats.recordFrameIn()
	return buf, nil
}

// RecvFrame is the pooled receive path: the frame decodes into a
// recycled buffer, so a warmed receive loop allocates nothing. The
// caller owns the frame per the FrameReceiver contract.
func (t *tcpConn) RecvFrame() (*proto.Frame, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	n, err := t.readFrameSize()
	if err != nil {
		return nil, err
	}
	f := proto.GetFrame(n)
	if _, err := io.ReadFull(t.br, f.Bytes()); err != nil {
		f.Release()
		return nil, err
	}
	t.stats.recordFrameIn()
	return f, nil
}

func (t *tcpConn) Close() error       { return t.c.Close() }
func (t *tcpConn) RemoteAddr() string { return t.c.RemoteAddr().String() }

// statReader counts read syscalls and bytes for the wire stats as the
// buffered reader refills.
type statReader struct {
	c     net.Conn
	stats *WireStats
}

func (r statReader) Read(p []byte) (int, error) {
	n, err := r.c.Read(p)
	r.stats.recordRead(n)
	return n, err
}

// --------------------------------------------------------------- InProc

// InProcConfig tunes the in-process network.
type InProcConfig struct {
	// Latency is the one-way frame delay, emulating the interconnect.
	// Zero means instantaneous delivery.
	Latency time.Duration
	// QueueLen is the per-direction frame buffer. Default 256.
	QueueLen int
}

// InProc is an in-process Network. Addresses are arbitrary strings.
type InProc struct {
	cfg InProcConfig

	mu        sync.Mutex
	listeners map[string]*inprocListener
	cut       map[string]bool // partitioned addresses
}

// NewInProc returns an empty in-process network.
func NewInProc(cfg InProcConfig) *InProc {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	return &InProc{
		cfg:       cfg,
		listeners: make(map[string]*inprocListener),
		cut:       make(map[string]bool),
	}
}

// SetReachable with reachable=false partitions addr for new dials
// (existing connections survive, as with a real routing change); with
// reachable=true it heals the partition.
func (n *InProc) SetReachable(addr string, reachable bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reachable {
		delete(n.cut, addr)
	} else {
		n.cut[addr] = true
	}
}

// Listen binds addr, an arbitrary unique string, on the in-process
// network.
func (n *InProc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	l := &inprocListener{
		net:     n,
		addr:    addr,
		backlog: make(chan *inprocConn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a bound listener, failing if addr is unbound or
// partitioned.
func (n *InProc) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	cut := n.cut[addr]
	n.mu.Unlock()
	if !ok || cut {
		return nil, fmt.Errorf("transport: connection refused to %q", addr)
	}
	a, b := n.pipe(addr)
	select {
	case l.backlog <- b:
		return a, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// pipe builds two connected endpoints. Endpoint a's remote is addr;
// endpoint b's remote is "client".
func (n *InProc) pipe(addr string) (*inprocConn, *inprocConn) {
	ab := make(chan frame, n.cfg.QueueLen)
	ba := make(chan frame, n.cfg.QueueLen)
	closed := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(closed) }) }
	a := &inprocConn{send: ab, recv: ba, closed: closed, closeFn: closeFn, remote: addr, lat: n.cfg.Latency}
	b := &inprocConn{send: ba, recv: ab, closed: closed, closeFn: closeFn, remote: "client", lat: n.cfg.Latency}
	return a, b
}

type inprocListener struct {
	net     *InProc
	addr    string
	backlog chan *inprocConn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

type frame struct {
	f       *proto.Frame
	readyAt time.Time // latency emulation: not deliverable before this
}

type inprocConn struct {
	send    chan frame
	recv    chan frame
	closed  chan struct{}
	closeFn func()
	remote  string
	lat     time.Duration
}

func (c *inprocConn) Send(b []byte) error {
	if len(b) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(b))
	}
	// Send must not retain the caller's slice after returning, so the
	// in-flight copy lives in a pooled frame; the receive side recycles
	// it (RecvFrame) or hands it to the GC (plain Recv).
	f := frame{f: proto.CopyFrame(b)}
	if c.lat > 0 {
		f.readyAt = time.Now().Add(c.lat)
	}
	select {
	case c.send <- f:
		return nil
	case <-c.closed:
		f.f.Release()
		return ErrClosed
	}
}

// recvFrame pulls the next in-flight frame, honoring the emulated link
// latency. The caller owns the returned frame.
func (c *inprocConn) recvFrame() (*proto.Frame, error) {
	select {
	case f := <-c.recv:
		if !f.readyAt.IsZero() {
			// time.Sleep granularity is ~1ms on coarse-timer kernels,
			// far above the microsecond link latencies the benchmarks
			// emulate; spin out short remainders instead.
			for {
				d := time.Until(f.readyAt)
				if d <= 0 {
					break
				}
				if d > 2*time.Millisecond {
					time.Sleep(d - time.Millisecond)
				} else {
					runtime.Gosched()
				}
			}
		}
		return f.f, nil
	case <-c.closed:
		// Drain anything already queued before reporting EOF, so a
		// close immediately after a send does not lose the frame.
		select {
		case f := <-c.recv:
			return f.f, nil
		default:
		}
		return nil, io.EOF
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	f, err := c.recvFrame()
	if err != nil {
		return nil, err
	}
	// Plain Recv hands the bytes to the caller outright, so the buffer
	// leaves the pool for good; pooled receive loops use RecvFrame.
	return f.Bytes(), nil
}

// RecvFrame is the pooled receive path; the caller owns the frame.
func (c *inprocConn) RecvFrame() (*proto.Frame, error) {
	return c.recvFrame()
}

func (c *inprocConn) Close() error {
	c.closeFn()
	return nil
}

func (c *inprocConn) RemoteAddr() string { return c.remote }
