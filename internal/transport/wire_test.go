package transport

// Tests for the coalescing wire path: the group-commit vectored writer,
// the buffered pooled receiver, and the batching counters.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// shortWriteConn wraps a net.Conn and chops every Write into pieces of
// at most chunk bytes, exercising the non-writev per-buffer loop's
// short-write tolerance. After failAfter total bytes (when > 0) every
// Write fails, exercising mid-batch error propagation.
type shortWriteConn struct {
	net.Conn
	chunk     int
	mu        sync.Mutex
	written   int
	failAfter int
	failErr   error
}

func (s *shortWriteConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	if s.failAfter > 0 && s.written >= s.failAfter {
		s.mu.Unlock()
		return 0, s.failErr
	}
	s.mu.Unlock()
	n := len(p)
	if n > s.chunk {
		n = s.chunk
	}
	n, err := s.Conn.Write(p[:n])
	s.mu.Lock()
	s.written += n
	s.mu.Unlock()
	return n, err
}

// tcpPair returns both ends of one accepted loopback connection.
func tcpPair(t *testing.T) (cli, srv net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accCh := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accCh <- c
	}()
	cli, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv = <-accCh
	return cli, srv
}

// TestTCPSendToleratesShortWrites tortures the fallback write loop with
// a writer that never accepts more than 3 bytes at a time: every frame
// and every length prefix is fragmented across many partial writes, and
// the receiver must still see intact, ordered frames.
func TestTCPSendToleratesShortWrites(t *testing.T) {
	rawCli, rawSrv := tcpPair(t)
	var stats WireStats
	// Wrapping in shortWriteConn hides *net.TCPConn, so newTCPConn takes
	// the per-buffer loop path rather than net.Buffers.WriteTo.
	cli := newTCPConn(&shortWriteConn{Conn: rawCli, chunk: 3}, &stats)
	srv := newTCPConn(rawSrv, &stats)
	defer cli.Close()
	defer srv.Close()
	if cli.writev {
		t.Fatal("shimmed conn must not take the writev fast path")
	}

	var frames [][]byte
	for i := 0; i < 50; i++ {
		f := make([]byte, 1+i*7)
		for j := range f {
			f[j] = byte(i + j)
		}
		frames = append(frames, f)
	}
	errCh := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := cli.Send(f); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i, want := range frames {
		got, err := srv.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d corrupted: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestTCPSendWriteErrorFailsPendingSenders checks the leader's error
// duty: when a batch write breaks the stream, senders queued behind it
// must fail rather than deadlock waiting for a flush that will never
// come, and later Sends must see the sticky error.
func TestTCPSendWriteErrorFailsPendingSenders(t *testing.T) {
	rawCli, rawSrv := tcpPair(t)
	defer rawSrv.Close()
	wantErr := errors.New("wire torn")
	var stats WireStats
	cli := newTCPConn(&shortWriteConn{Conn: rawCli, chunk: 64, failAfter: 200, failErr: wantErr}, &stats)
	defer cli.Close()

	// Drain the server side so writes never block on a full buffer.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := rawSrv.Read(buf); err != nil {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := cli.Send(make([]byte, 100)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("senders deadlocked after write error")
	}
	sawErr := false
	close(errs)
	for err := range errs {
		if errors.Is(err, wantErr) {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no sender observed the write error")
	}
	if err := cli.Send([]byte("x")); !errors.Is(err, wantErr) {
		t.Fatalf("post-failure Send: got %v, want the sticky write error", err)
	}
}

// TestTCPOversizedHeaderClosesConn checks the desync fix: a frame
// length beyond MaxFrame is protocol-fatal, so the receiver must close
// the connection rather than resynchronize mid-garbage on the next
// Recv.
func TestTCPOversizedHeaderClosesConn(t *testing.T) {
	rawCli, rawSrv := tcpPair(t)
	defer rawCli.Close()
	var stats WireStats
	srv := newTCPConn(rawSrv, &stats)
	defer srv.Close()

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxFrame+1))
	if _, err := rawCli.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err == nil {
		t.Fatal("oversized header accepted")
	}
	// The connection must be dead: the peer's next read sees EOF/reset
	// instead of a half-open socket feeding garbage.
	rawCli.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := rawCli.Read(buf); err == nil {
		t.Fatal("peer still readable after oversized header; conn not closed")
	}
}

// TestTCPConcurrentSendersOrdered floods one connection from 64
// goroutines and checks, under -race, that coalescing preserves both
// frame integrity (no interleaved bytes) and per-sender order. Each
// frame carries (sender, seq, checksummed payload).
func TestTCPConcurrentSendersOrdered(t *testing.T) {
	const senders = 64
	const perSender = 200
	n := TCP()
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type result struct {
		count int
		err   error
	}
	done := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- result{0, err}
			return
		}
		defer c.Close()
		var lastSeq [senders]int
		for i := range lastSeq {
			lastSeq[i] = -1
		}
		count := 0
		for {
			f, err := RecvFrame(c)
			if err != nil {
				done <- result{count, nil}
				return
			}
			b := f.Bytes()
			if len(b) < 8 {
				done <- result{count, fmt.Errorf("runt frame: %d bytes", len(b))}
				return
			}
			g := int(binary.BigEndian.Uint32(b[0:4]))
			seq := int(binary.BigEndian.Uint32(b[4:8]))
			if g < 0 || g >= senders {
				done <- result{count, fmt.Errorf("corrupt sender id %d", g)}
				return
			}
			if seq != lastSeq[g]+1 {
				done <- result{count, fmt.Errorf("sender %d: seq %d after %d", g, seq, lastSeq[g])}
				return
			}
			lastSeq[g] = seq
			for j, v := range b[8:] {
				if v != byte(g^j) {
					done <- result{count, fmt.Errorf("sender %d seq %d: payload corrupt at %d", g, seq, j)}
					return
				}
			}
			f.Release()
			count++
		}
	}()
	cli, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			frame := make([]byte, 8+32+g%32)
			for j := range frame[8:] {
				frame[8+j] = byte(g ^ j)
			}
			binary.BigEndian.PutUint32(frame[0:4], uint32(g))
			for i := 0; i < perSender; i++ {
				binary.BigEndian.PutUint32(frame[4:8], uint32(i))
				if err := cli.Send(frame); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	cli.Close()
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.count != senders*perSender {
		t.Fatalf("received %d frames, want %d", r.count, senders*perSender)
	}
	// With 64 goroutines overlapping on one socket, group commit must
	// have coalesced sends into multi-frame batches.
	if w := n.Wire(); w.MeanBatch() < 2 {
		t.Errorf("mean %.2f frames/writev across %d overlapped sends, want >= 2: %+v",
			w.MeanBatch(), senders*perSender, w)
	}
}

// TestWireStatsBatchBuckets pins the histogram bucket boundaries.
func TestWireStatsBatchBuckets(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 32: 5, 33: 6, 64: 6, 65: 7, 1000: 7}
	for frames, want := range cases {
		if got := batchBucket(frames); got != want {
			t.Errorf("batchBucket(%d) = %d, want %d", frames, got, want)
		}
	}
}

// TestTCPWireCounters checks that a lock-step exchange is counted as
// idle flushes of single-frame batches and that receive-side counters
// advance.
func TestTCPWireCounters(t *testing.T) {
	n := TCP()
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			f, err := RecvFrame(c)
			if err != nil {
				return
			}
			err = c.Send(f.Bytes())
			f.Release()
			if err != nil {
				return
			}
		}
	}()
	cli, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := cli.Send([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		f, err := RecvFrame(cli)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	w := n.Wire()
	// Both directions share the stats block: 20 request + 20 echo sends.
	if w.FramesOut != 2*rounds {
		t.Errorf("FramesOut = %d, want %d", w.FramesOut, 2*rounds)
	}
	if w.FramesIn != 2*rounds {
		t.Errorf("FramesIn = %d, want %d", w.FramesIn, 2*rounds)
	}
	if w.IdleFlushes == 0 {
		t.Error("lock-step exchange recorded no idle flushes")
	}
	if w.Writevs != w.IdleFlushes+w.BacklogFlushes {
		t.Errorf("Writevs %d != idle %d + backlog %d", w.Writevs, w.IdleFlushes, w.BacklogFlushes)
	}
	if m := w.MeanBatch(); m < 1 {
		t.Errorf("MeanBatch = %v, want >= 1", m)
	}
	if w.ReadCalls == 0 || w.BytesIn == 0 || w.BytesOut == 0 {
		t.Errorf("receive counters did not advance: %+v", w)
	}
}

// floodRig builds a tcpConn receiver fed by a raw sender goroutine that
// keeps the socket full of identical framed payloads, isolating the
// receive path for alloc and throughput measurement.
func floodRig(tb testing.TB, payload int) (rx *tcpConn, stop func()) {
	tb.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	accCh := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accCh <- c
	}()
	cli, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	srv := <-accCh
	// One pre-framed buffer holding many frames, written over and over.
	one := make([]byte, 4+payload)
	binary.BigEndian.PutUint32(one, uint32(payload))
	for i := 0; i < payload; i++ {
		one[4+i] = byte(i)
	}
	burst := bytes.Repeat(one, 64)
	go func() {
		for {
			if _, err := cli.Write(burst); err != nil {
				return
			}
		}
	}()
	var stats WireStats
	rx = newTCPConn(srv, &stats)
	return rx, func() { rx.Close(); cli.Close(); l.Close() }
}

// TestTCPRecvFrameAllocsNothing is the CI gate for the pooled receive
// path: decoding frames off a saturated socket through RecvFrame must
// not allocate once the frame pool and receive buffer are warm.
func TestTCPRecvFrameAllocsNothing(t *testing.T) {
	rx, stop := floodRig(t, 512)
	defer stop()
	for i := 0; i < 200; i++ {
		f, err := rx.RecvFrame()
		if err != nil {
			t.Fatal(err)
		}
		f.Release() // warm the frame pool and the bufio window
	}
	allocs := testing.AllocsPerRun(500, func() {
		f, err := rx.RecvFrame()
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	})
	if allocs > 0 {
		t.Fatalf("pooled TCP receive allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkTCPRecvFrame(b *testing.B) {
	rx, stop := floodRig(b, 512)
	defer stop()
	for i := 0; i < 200; i++ {
		f, err := rx.RecvFrame()
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := rx.RecvFrame()
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	}
}
