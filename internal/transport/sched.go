package transport

import (
	"io"
	"sync"
)

// schedInboxLen bounds the frames a SchedConn endpoint can hold before
// Push refuses delivery. The deterministic harness keeps at most a
// handful of frames in flight per link, so the bound exists only to make
// a runaway scheduler fail loudly instead of consuming memory.
const schedInboxLen = 1024

// SchedConn is a frame connection whose delivery is owned by an external
// scheduler, the transport of the deterministic simulation harness
// (internal/detsim). Unlike InProc, nothing moves on its own and no real
// time is involved:
//
//   - Send does not transmit. It copies the frame and hands it to the
//     pair's send hook; the scheduler decides if and when the frame
//     reaches the peer, by calling Push on the peer endpoint.
//   - Recv blocks until a frame is Pushed. An optional receive hook runs
//     just before blocking, which the harness uses as the "this
//     goroutine is idle again" handshake.
//
// A SchedConn is created only in pairs via NewSchedPair. Send and Recv
// follow the Conn contract (one concurrent caller each); Push is called
// by the scheduler goroutine.
type SchedConn struct {
	name     string
	peer     *SchedConn
	onSend   func(from *SchedConn, frame []byte) error
	recvHook func()

	inbox  chan []byte
	closed chan struct{}
	once   sync.Once
}

// NewSchedPair returns two connected scheduler-owned endpoints named a
// and b. Every frame written with Send on either endpoint is copied and
// passed to onSend instead of being delivered; delivering it (or not) is
// the scheduler's choice, made by calling Push on the sender's Peer. A
// nil onSend delivers directly to the peer, making the pair an
// unbuffered-latency pipe.
func NewSchedPair(a, b string, onSend func(from *SchedConn, frame []byte) error) (*SchedConn, *SchedConn) {
	ca := &SchedConn{name: a, onSend: onSend,
		inbox: make(chan []byte, schedInboxLen), closed: make(chan struct{})}
	cb := &SchedConn{name: b, onSend: onSend,
		inbox: make(chan []byte, schedInboxLen), closed: make(chan struct{})}
	ca.peer, cb.peer = cb, ca
	return ca, cb
}

// Name returns the endpoint's own name (the scheduler's link label).
func (c *SchedConn) Name() string { return c.name }

// Peer returns the other endpoint of the pair.
func (c *SchedConn) Peer() *SchedConn { return c.peer }

// SetRecvHook installs fn to be invoked by Recv immediately before it
// blocks for the next frame. The harness parks an "idle" signal here.
// Install hooks before the endpoint is used; the field is not
// synchronized.
func (c *SchedConn) SetRecvHook(fn func()) { c.recvHook = fn }

// Send copies the frame and hands it to the pair's send hook. The frame
// is not delivered until the scheduler Pushes it to the peer.
func (c *SchedConn) Send(frame []byte) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	if c.onSend == nil {
		if !c.peer.Push(cp) {
			return ErrClosed
		}
		return nil
	}
	return c.onSend(c, cp)
}

// Recv blocks until the scheduler Pushes a frame to this endpoint,
// running the receive hook (if any) first. It returns io.EOF once the
// endpoint is closed and its inbox drained.
func (c *SchedConn) Recv() ([]byte, error) {
	if c.recvHook != nil {
		c.recvHook()
	}
	select {
	case f := <-c.inbox:
		return f, nil
	case <-c.closed:
		// Drain anything already delivered before reporting EOF.
		select {
		case f := <-c.inbox:
			return f, nil
		default:
		}
		return nil, io.EOF
	}
}

// Push makes frame available to this endpoint's Recv. It reports false —
// the frame is discarded — when the endpoint is closed or its inbox is
// full. Only the scheduler calls Push.
func (c *SchedConn) Push(frame []byte) bool {
	select {
	case <-c.closed:
		return false
	default:
	}
	select {
	case c.inbox <- frame:
		return true
	default:
		return false
	}
}

// Close shuts this endpoint down: its pending and future Recvs unblock
// with io.EOF (after draining), and Sends fail. The peer endpoint is
// unaffected — the scheduler models half-open links explicitly.
func (c *SchedConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// RemoteAddr names the peer endpoint.
func (c *SchedConn) RemoteAddr() string { return c.peer.name }
