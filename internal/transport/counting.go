package transport

import "sync/atomic"

// CountingNetwork wraps a Network and counts every frame and byte that
// crosses it. The benchmark harness uses it to measure protocol traffic
// (registration cost in E14, query/response message counts in E10).
type CountingNetwork struct {
	inner Network

	FramesSent atomic.Int64
	BytesSent  atomic.Int64
	Dials      atomic.Int64
}

// Counting wraps net with frame/byte counting.
func Counting(net Network) *CountingNetwork {
	return &CountingNetwork{inner: net}
}

// Reset zeroes the counters.
func (n *CountingNetwork) Reset() {
	n.FramesSent.Store(0)
	n.BytesSent.Store(0)
	n.Dials.Store(0)
}

func (n *CountingNetwork) Listen(addr string) (Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &countingListener{l: l, n: n}, nil
}

func (n *CountingNetwork) Dial(addr string) (Conn, error) {
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.Dials.Add(1)
	return &countingConn{Conn: c, n: n}, nil
}

type countingListener struct {
	l Listener
	n *CountingNetwork
}

func (cl *countingListener) Accept() (Conn, error) {
	c, err := cl.l.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, n: cl.n}, nil
}

func (cl *countingListener) Close() error { return cl.l.Close() }
func (cl *countingListener) Addr() string { return cl.l.Addr() }

type countingConn struct {
	Conn
	n *CountingNetwork
}

func (cc *countingConn) Send(frame []byte) error {
	err := cc.Conn.Send(frame)
	if err == nil {
		cc.n.FramesSent.Add(1)
		cc.n.BytesSent.Add(int64(len(frame)))
	}
	return err
}
