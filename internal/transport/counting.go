package transport

import (
	"sync/atomic"

	"scalla/internal/proto"
)

// NetStats is a snapshot of a CountingNetwork's counters. The daemons'
// summary-monitoring stream reports it; the benchmark harness uses it
// to measure protocol traffic (registration cost in E14, query/response
// message counts in E10).
type NetStats struct {
	FramesSent int64
	BytesSent  int64
	Dials      int64
}

// CountingNetwork wraps a Network and counts every frame and byte that
// crosses it.
type CountingNetwork struct {
	inner Network

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	dials      atomic.Int64
}

// Counting wraps net with frame/byte counting.
func Counting(net Network) *CountingNetwork {
	return &CountingNetwork{inner: net}
}

// Stats returns a snapshot of the counters.
func (n *CountingNetwork) Stats() NetStats {
	return NetStats{
		FramesSent: n.framesSent.Load(),
		BytesSent:  n.bytesSent.Load(),
		Dials:      n.dials.Load(),
	}
}

// Unwrap returns the wrapped Network, so observability code can reach
// capability interfaces (e.g. *TCPNet wire counters) through the
// counting layer.
func (n *CountingNetwork) Unwrap() Network { return n.inner }

// Reset zeroes the counters.
func (n *CountingNetwork) Reset() {
	n.framesSent.Store(0)
	n.bytesSent.Store(0)
	n.dials.Store(0)
}

// Listen delegates to the wrapped Network and counts traffic on every
// accepted connection.
func (n *CountingNetwork) Listen(addr string) (Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &countingListener{l: l, n: n}, nil
}

// Dial delegates to the wrapped Network, counting the dial and all
// frames sent on the resulting connection.
func (n *CountingNetwork) Dial(addr string) (Conn, error) {
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.dials.Add(1)
	return &countingConn{Conn: c, n: n}, nil
}

type countingListener struct {
	l Listener
	n *CountingNetwork
}

func (cl *countingListener) Accept() (Conn, error) {
	c, err := cl.l.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, n: cl.n}, nil
}

func (cl *countingListener) Close() error { return cl.l.Close() }
func (cl *countingListener) Addr() string { return cl.l.Addr() }

type countingConn struct {
	Conn
	n *CountingNetwork
}

func (cc *countingConn) Send(frame []byte) error {
	err := cc.Conn.Send(frame)
	if err == nil {
		cc.n.framesSent.Add(1)
		cc.n.bytesSent.Add(int64(len(frame)))
	}
	return err
}

// RecvFrame forwards the wrapped connection's pooled receive path, so
// counting does not cost receive loops their zero-alloc fast path.
func (cc *countingConn) RecvFrame() (*proto.Frame, error) {
	return RecvFrame(cc.Conn)
}
