package cache

import "scalla/internal/bitvec"

// correct applies the Figure-3 correction equations to l, bringing its
// cached location state up to date with the current cluster
// configuration. It is called with s.mu held, on every fetch path.
//
// The correction handles the four configuration changes of Section
// III-A4:
//
//  1. a disconnected (offline, not yet dropped) server: its bits are
//     moved from Vh/Vp into Vq so it is re-queried after reconnecting;
//  2. a dropped server: vm no longer contains it, so masking by vm
//     erases it from every vector;
//  3. an un-dropped server reconnecting: C[i] advanced, so Vc includes
//     it and it returns to Vq;
//  4. a new server: likewise included in Vc via C[i] > Cn.
//
// The connect vector Vc is derived from the counter array C[] — every
// subordinate whose connect epoch is later than the object's snapshot Cn
// — and memoized per eviction window (Vwc/Cwn), exploiting the time
// locality of object creation so that in the common case the correction
// is a handful of mask operations. Both C[] and the memo are replicated
// per shard, so the correction never leaves the shard holding the lock.
func (s *shard) correct(l *Loc, vm, offline bitvec.Vec) {
	if l.cn != s.nc {
		vc := s.connectVector(l)
		// Figure 3, Eq. 1: Vq ← (Vq ∪ Vc) ∩ Vm
		l.vq = l.vq.Union(vc).Intersect(vm)
		// Eq. 2/3: the holders/preparers are the old values less the
		// servers that must now be (re)queried, masked by Vm.
		l.vh = l.vh.Minus(l.vq).Intersect(vm)
		l.vp = l.vp.Minus(l.vq).Intersect(vm)
		// Eq. 4: Cn ← Nc, so the next fetch corrects only if the
		// configuration changes again.
		l.cn = s.nc
		s.stats.corrApplied.Add(1)
	} else {
		// Configuration unchanged since caching, but the export mask for
		// this path may still be narrower than when cached.
		l.vq = l.vq.Intersect(vm)
		l.vh = l.vh.Intersect(vm)
		l.vp = l.vp.Intersect(vm)
	}
	// Offline servers (disconnected but within the drop window) cannot
	// serve clients now; move them to Vq so they are re-queried on a
	// later look-up, preserving Vq ∩ (Vh ∪ Vp) = ∅.
	off := l.vh.Union(l.vp).Intersect(offline)
	if !off.IsEmpty() {
		l.vq = l.vq.Union(off).Intersect(vm)
		l.vh = l.vh.Minus(off)
		l.vp = l.vp.Minus(off)
	}
}

// connectVector returns Vc for object l: the set of subordinates whose
// connect epoch C[i] is later than l's snapshot Cn. It first consults the
// memo of l's eviction window; on a miss it scans C[] once and stores the
// result (the paper's Vwc/Cwn optimization, Section III-A4).
// Caller holds s.mu.
func (s *shard) connectVector(l *Loc) bitvec.Vec {
	w := &s.memo[l.ta%Windows]
	if w.valid && w.forCn == l.cn && w.atNc == s.nc {
		s.stats.corrMemoHit.Add(1)
		return w.vwc
	}
	var vc bitvec.Vec
	for i := 0; i < 64; i++ {
		if s.conn[i] > l.cn {
			vc = vc.With(i)
		}
	}
	w.forCn, w.atNc, w.vwc, w.valid = l.cn, s.nc, vc, true
	return vc
}
