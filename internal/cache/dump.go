package cache

import (
	"fmt"
	"strings"
)

// Dump renders the cache's structure — the hash table occupancy, the
// per-shard entry spread, and the 64 eviction window chains — as text,
// the runnable counterpart of the paper's Figure 2. Table and window
// figures are aggregated across every shard. maxLines bounds the output
// (0 = a sensible default).
func (c *Cache) Dump(maxLines int) string {
	if maxLines <= 0 {
		maxLines = 40
	}

	var b strings.Builder
	var buckets, count int64
	occupied, hidden := 0, 0
	maxChain := 0
	var lens [Windows]int
	shardEntries := make([]int64, len(c.shards))
	for si, s := range c.shards {
		s.mu.Lock()
		buckets += int64(len(s.table))
		for _, head := range s.table {
			n := 0
			for l := head; l != nil; l = l.hnext {
				if l.keyLen > 0 {
					n++
				} else {
					hidden++
				}
			}
			if n > 0 {
				occupied++
			}
			if n > maxChain {
				maxChain = n
			}
		}
		for w := 0; w < Windows; w++ {
			for l := s.windows[w]; l != nil; l = l.wnext {
				lens[w]++
			}
		}
		cnt := s.count.Load()
		shardEntries[si] = cnt
		count += cnt
		s.mu.Unlock()
	}
	tw := c.tw.Load()

	fmt.Fprintf(&b, "hash table: %d buckets (Fibonacci=%v) over %d shards, %d entries, %d occupied (%.1f%%), max chain %d, %d hidden awaiting sweep\n",
		buckets, c.cfg.Sizing == SizingFibonacci, len(c.shards), count, occupied,
		100*float64(occupied)/float64(buckets), maxChain, hidden)
	fmt.Fprintf(&b, "shard entries:%s\n", dumpShardEntries(shardEntries))
	fmt.Fprintf(&b, "window clock Tw=%d (window %d), lifetime %v, tick %v\n",
		tw, tw%Windows, c.cfg.Lifetime, c.cfg.Lifetime/Windows)

	// Histogram of the 64 window chains, the eviction window of Fig. 2.
	maxLen := 1
	for w := 0; w < Windows; w++ {
		if lens[w] > maxLen {
			maxLen = lens[w]
		}
	}
	b.WriteString("eviction windows (next to expire marked '*'):\n")
	lines := maxLines - 4
	if lines > Windows {
		lines = Windows
	}
	// Show the windows around the clock position.
	next := int((tw + 1) % Windows)
	for k := 0; k < lines; k++ {
		w := (next + k) % Windows
		bar := strings.Repeat("#", lens[w]*40/maxLen)
		mark := " "
		if w == next {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s w%02d |%-40s| %d\n", mark, w, bar, lens[w])
	}
	return b.String()
}

// dumpShardEntries renders per-shard entry counts compactly so stripe
// skew is visible at a glance.
func dumpShardEntries(entries []int64) string {
	var b strings.Builder
	for _, n := range entries {
		fmt.Fprintf(&b, " %d", n)
	}
	return b.String()
}
