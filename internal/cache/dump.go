package cache

import (
	"fmt"
	"strings"
)

// Dump renders the cache's structure — the hash table occupancy and the
// 64 eviction window chains — as text, the runnable counterpart of the
// paper's Figure 2. maxLines bounds the output (0 = a sensible default).
func (c *Cache) Dump(maxLines int) string {
	if maxLines <= 0 {
		maxLines = 40
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	var b strings.Builder
	occupied, hidden := 0, 0
	maxChain := 0
	for _, head := range c.table {
		n := 0
		for l := head; l != nil; l = l.hnext {
			if l.keyLen > 0 {
				n++
			} else {
				hidden++
			}
		}
		if n > 0 {
			occupied++
		}
		if n > maxChain {
			maxChain = n
		}
	}
	fmt.Fprintf(&b, "hash table: %d buckets (Fibonacci=%v), %d entries, %d occupied (%.1f%%), max chain %d, %d hidden awaiting sweep\n",
		len(c.table), c.cfg.Sizing == SizingFibonacci, c.count, occupied,
		100*float64(occupied)/float64(len(c.table)), maxChain, hidden)
	fmt.Fprintf(&b, "window clock Tw=%d (window %d), lifetime %v, tick %v\n",
		c.tw, c.tw%Windows, c.cfg.Lifetime, c.cfg.Lifetime/Windows)

	// Histogram of the 64 window chains, the eviction window of Fig. 2.
	var lens [Windows]int
	maxLen := 1
	for w := 0; w < Windows; w++ {
		for l := c.windows[w]; l != nil; l = l.wnext {
			lens[w]++
		}
		if lens[w] > maxLen {
			maxLen = lens[w]
		}
	}
	b.WriteString("eviction windows (next to expire marked '*'):\n")
	lines := maxLines - 3
	if lines > Windows {
		lines = Windows
	}
	// Show the windows around the clock position.
	next := int((c.tw + 1) % Windows)
	for k := 0; k < lines; k++ {
		w := (next + k) % Windows
		bar := strings.Repeat("#", lens[w]*40/maxLen)
		mark := " "
		if w == next {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s w%02d |%-40s| %d\n", mark, w, bar, lens[w])
	}
	return b.String()
}
