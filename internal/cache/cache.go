// Package cache implements Scalla's file-location cache — the core
// contribution of the paper (Section III).
//
// The cache maps file names to location objects holding three 64-bit
// server vectors (Vh/Vp/Vq). Objects live in a one-level hash table with
// linear chaining, keyed by CRC32 and sized to a Fibonacci number of
// buckets (growing at 80% occupancy). Objects expire after a fixed
// lifetime Lt enforced by a 64-slot sliding window: each tick hides one
// window's worth of entries and a background sweep removes them, so
// maintenance cost is spread evenly (~1.6% of the cache per tick).
// Cached information is approximate; it is corrected lazily at fetch
// time with the O(1) connect-epoch algorithm of Figure 3, memoized per
// window. References returned to callers carry a generation
// authenticator so no lock spans consecutive cache calls.
//
// For multi-core scaling the table is lock-striped into Config.Shards
// independent shards selected by the high bits of the CRC32 key (the low
// bits feed the per-shard Fibonacci modulo, so both dispersions stay
// uncorrelated). Every paper mechanism — Fibonacci sizing with the 80%
// grow trigger, the 64-slot eviction window, deferred re-chaining,
// hide-then-sweep, the memoized Figure-3 correction, the free list, and
// reference authenticators — operates per shard, so shards never take
// each other's locks. Statistics are per-shard atomics aggregated on
// read, and cluster-wide events (Tick, ServerConnected, ServerDropped)
// fan out shard by shard without any global lock.
package cache

import (
	"sync"
	"sync/atomic"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/fib"
	"scalla/internal/names"
	"scalla/internal/vclock"
)

// Sizing selects the hash-table sizing policy.
type Sizing int

const (
	// SizingFibonacci sizes the table to Fibonacci numbers of buckets —
	// the paper's choice (Section III-A1, footnote 4).
	SizingFibonacci Sizing = iota
	// SizingPowerOfTwo sizes the table to powers of two. Provided only
	// as the baseline for experiment E4; the paper found it disperses
	// CRC32 keys much less uniformly.
	SizingPowerOfTwo
)

// Windows is the number of eviction windows; the paper fixes it at 64
// (lifetime Lt divided into Lt/64 ticks).
const Windows = 64

// MaxShards caps Config.Shards. 256 shards leave 24 high hash bits for
// shard selection headroom while keeping the fan-out paths (Tick,
// epoch bumps, Stats aggregation) trivially cheap.
const MaxShards = 256

// Config parameterizes a Cache. The zero value is usable after
// normalization; New applies the documented defaults.
type Config struct {
	// Lifetime is the location-object lifetime Lt. Default 8 hours.
	Lifetime time.Duration
	// Deadline is the processing-deadline duration (the "full delay").
	// Default 5 seconds.
	Deadline time.Duration
	// InitialBuckets is the initial table size summed over all shards;
	// each shard starts at InitialBuckets/Shards rounded to the sizing
	// policy's sequence. Default 17711 (a Fibonacci number).
	InitialBuckets int64
	// LoadFactor is the occupancy fraction that triggers growth.
	// Default 0.80 (the paper's 80%).
	LoadFactor float64
	// Sizing selects Fibonacci (default) or power-of-two bucket counts.
	Sizing Sizing
	// Shards is the number of lock stripes; it is rounded up to a power
	// of two and capped at MaxShards. Default 16. Shards=1 reproduces
	// the original single-mutex cache exactly.
	Shards int
	// EagerRechain, when true, re-chains a refreshed object into its new
	// window immediately instead of deferring to the sweep. This is the
	// ablation baseline for experiment E12; the paper argues deferral
	// turns a quadratic-ish cost into a single linear pass.
	EagerRechain bool
	// SyncSweep, when true, runs the eviction sweep synchronously inside
	// Tick instead of in a background goroutine. Used by tests and
	// benchmarks that need determinism.
	SyncSweep bool
	// OnTick, if set, is invoked (without any shard lock held) after
	// every window tick with the new tick count and how many objects
	// that tick hid across all shards. Ticks are rare (Lifetime/64
	// apart), so the hook adds nothing to the lookup path; the
	// observability layer uses it to stream window-tick eviction
	// figures.
	OnTick func(tick uint64, hidden int64)
	// Clock supplies time. Default vclock.Real().
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Lifetime <= 0 {
		c.Lifetime = 8 * time.Hour
	}
	if c.Deadline <= 0 {
		c.Deadline = 5 * time.Second
	}
	if c.InitialBuckets <= 0 {
		c.InitialBuckets = 17711
	}
	if c.LoadFactor <= 0 || c.LoadFactor >= 1 {
		c.LoadFactor = 0.80
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	// Round up to a power of two so shard selection is a pure shift.
	s := 1
	for s < c.Shards {
		s <<= 1
	}
	c.Shards = s
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	return c
}

// Stats are cumulative cache statistics aggregated across every shard,
// used by the status endpoints and by the benchmark harness.
type Stats struct {
	Entries     int64 // live (findable) objects
	Buckets     int64 // current table size (sum of shard tables)
	Inserts     int64 // objects added
	Hits        int64 // successful fetches
	Misses      int64 // failed lookups
	Resizes     int64 // table growths (any shard)
	Hidden      int64 // objects hidden by window ticks
	Swept       int64 // objects physically removed by sweeps
	Rechained   int64 // objects moved to their refreshed window by sweeps
	Refreshes   int64 // refresh operations
	CorrApplied int64 // Figure-3 corrections applied on fetch
	CorrMemoHit int64 // corrections served from a window's memoized Vwc
	Reused      int64 // allocations satisfied from the free list
	StaleRefs   int64 // operations that failed reference authentication
}

// ShardStat is the per-shard slice of the statistics that matter for
// skew visibility: how evenly the CRC32 high bits spread entries over
// the stripes. The obs layer exposes one per shard on /statusz.
type ShardStat struct {
	Entries int64 // live (findable) objects in this shard
	Buckets int64 // this shard's table size
	Inserts int64 // objects added to this shard
}

// Cache is a file-location cache. It is safe for concurrent use; see
// the package comment for the lock-striping scheme.
type Cache struct {
	cfg    Config
	shift  uint32 // shard index = hash >> shift (top log2(Shards) bits)
	shards []*shard

	tw      atomic.Uint64  // absolute window-clock tick counter (paper's T_w)
	sweepWG sync.WaitGroup // outstanding background sweeps
}

// shard is one lock stripe: a complete miniature of the paper's cache
// (table, eviction windows, correction memo, free list, epoch state)
// guarded by its own mutex.
type shard struct {
	cfg *Config // shared read-only configuration

	mu      sync.Mutex
	table   []*Loc
	growAt  int64
	windows [Windows]*Loc // window chains, indexed by ta % Windows
	tw      uint64        // shard's view of the window clock, set by Tick

	// Connect-epoch state (Section III-A4), replicated per shard so the
	// fetch-time correction never crosses a shard boundary. Every shard
	// sees the identical sequence of ServerConnected/ServerDropped
	// bumps, so the replicas stay equal (modulo fan-out timing).
	nc   uint64         // master connect counter (paper's N_c)
	conn [64]uint64     // C[i]: N_c value when subordinate i last connected
	memo [Windows]wmemo // per-window memoized correction vectors

	free *Loc // free list of removed objects (objects are never freed)

	// Mutated under mu, loaded without it by Stats/Len aggregation.
	count   atomic.Int64 // findable entries
	buckets atomic.Int64 // len(table) mirror for lock-free Stats
	stats   shardStats
}

// shardStats holds one shard's cumulative counters as atomics:
// incremented under the shard lock on the paths that already hold it,
// aggregated lock-free by Stats().
type shardStats struct {
	inserts     atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	resizes     atomic.Int64
	hidden      atomic.Int64
	swept       atomic.Int64
	rechained   atomic.Int64
	refreshes   atomic.Int64
	corrApplied atomic.Int64
	corrMemoHit atomic.Int64
	reused      atomic.Int64
	staleRefs   atomic.Int64
}

// wmemo memoizes a correction vector for one window: for objects whose
// Cn equals forCn, while the master counter is still atNc, the correction
// vector is vwc (paper's Vwc/Cwn optimization).
type wmemo struct {
	forCn uint64
	atNc  uint64
	vwc   bitvec.Vec
	valid bool
}

// New returns a Cache with the given configuration.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg}
	// Shards is a power of two; the index is the top log2(Shards) bits
	// of the 32-bit key. (For Shards == 1, hash >> 32 is 0 in Go.)
	c.shift = 32
	for s := cfg.Shards; s > 1; s >>= 1 {
		c.shift--
	}
	perShard := (cfg.InitialBuckets + int64(cfg.Shards) - 1) / int64(cfg.Shards)
	if perShard < 1 {
		perShard = 1
	}
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		sh := &shard{cfg: &c.cfg}
		sh.table = make([]*Loc, sh.roundSize(perShard))
		sh.buckets.Store(int64(len(sh.table)))
		sh.setGrowAt()
		c.shards[i] = sh
	}
	return c
}

// shardFor returns the stripe owning hash.
func (c *Cache) shardFor(hash uint32) *shard {
	return c.shards[hash>>c.shift]
}

func (s *shard) roundSize(n int64) int64 {
	if s.cfg.Sizing == SizingPowerOfTwo {
		sz := int64(1)
		for sz < n {
			sz <<= 1
		}
		return sz
	}
	return fib.AtLeast(n)
}

func (s *shard) nextSize() int64 {
	n := int64(len(s.table))
	if s.cfg.Sizing == SizingPowerOfTwo {
		return n * 2
	}
	return fib.Next(n)
}

func (s *shard) setGrowAt() {
	s.growAt = int64(float64(len(s.table)) * s.cfg.LoadFactor)
}

// Stats returns a snapshot of the cumulative statistics, aggregated
// across shards without taking any lock.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		out.Entries += s.count.Load()
		out.Buckets += s.buckets.Load()
		out.Inserts += s.stats.inserts.Load()
		out.Hits += s.stats.hits.Load()
		out.Misses += s.stats.misses.Load()
		out.Resizes += s.stats.resizes.Load()
		out.Hidden += s.stats.hidden.Load()
		out.Swept += s.stats.swept.Load()
		out.Rechained += s.stats.rechained.Load()
		out.Refreshes += s.stats.refreshes.Load()
		out.CorrApplied += s.stats.corrApplied.Load()
		out.CorrMemoHit += s.stats.corrMemoHit.Load()
		out.Reused += s.stats.reused.Load()
		out.StaleRefs += s.stats.staleRefs.Load()
	}
	return out
}

// ShardStats returns one entry per shard so callers (obs, tests) can see
// how evenly entries spread across the stripes.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i, s := range c.shards {
		out[i] = ShardStat{
			Entries: s.count.Load(),
			Buckets: s.buckets.Load(),
			Inserts: s.stats.inserts.Load(),
		}
	}
	return out
}

// ShardCount returns the number of lock stripes.
func (c *Cache) ShardCount() int { return len(c.shards) }

// Len returns the number of findable entries.
func (c *Cache) Len() int64 {
	var n int64
	for _, s := range c.shards {
		n += s.count.Load()
	}
	return n
}

// ---------------------------------------------------------------------
// Connect-epoch maintenance (called by the cluster layer).

// ServerConnected records that subordinate i (re)connected as a new
// server. It advances the master counter Nc and stamps C[i], which is all
// the bookkeeping a registration costs the cache — the paper's "extremely
// light" node registration (Section V). The bump fans out shard by
// shard; no global lock is held, so look-ups in other shards proceed
// during the walk.
func (c *Cache) ServerConnected(i int) {
	if i < 0 || i >= 64 {
		return
	}
	for _, s := range c.shards {
		s.mu.Lock()
		s.nc++
		s.conn[i] = s.nc
		s.mu.Unlock()
	}
}

// ServerDropped records that subordinate i was dropped from the
// cluster. Dropping advances the epoch exactly like a connection: any
// cached bit stamped before C[i] is stale, so if the slot is later
// reassigned to a different server the old bits cannot resurrect as
// locations on the newcomer (Section III-A4's drop semantics,
// belt-and-braces on top of the Vm masking that erases dropped slots).
func (c *Cache) ServerDropped(i int) {
	if i < 0 || i >= 64 {
		return
	}
	for _, s := range c.shards {
		s.mu.Lock()
		s.nc++
		s.conn[i] = s.nc
		s.mu.Unlock()
	}
}

// Epoch returns the current master connect counter Nc. Every shard sees
// the same bump sequence, so shard 0's replica is authoritative.
func (c *Cache) Epoch() uint64 {
	s := c.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nc
}

// ConnStamps returns a copy of the per-subordinate connect stamps C[]
// (the Nc value at which each slot last connected) for status reporting.
func (c *Cache) ConnStamps() [64]uint64 {
	s := c.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn
}

// ---------------------------------------------------------------------
// Lookup / insert.

// find returns the findable object with the given hash and name, or nil.
// Caller holds s.mu.
func (s *shard) find(hash uint32, name string) *Loc {
	b := int64(hash) % int64(len(s.table))
	for l := s.table[b]; l != nil; l = l.hnext {
		if l.keyLen > 0 && l.hash == hash && l.key == name {
			return l
		}
	}
	return nil
}

// Fetch looks up name and, if present, lazily corrects its state against
// the current cluster configuration (Figure 3) using vm (the export mask
// for the file's path) and offline (subordinates currently disconnected
// but not yet dropped). It returns a validated reference and a corrected
// snapshot.
func (c *Cache) Fetch(name string, vm, offline bitvec.Vec) (Ref, View, bool) {
	hash := names.Hash(name)
	si := hash >> c.shift
	s := c.shards[si]
	s.mu.Lock()
	l := s.find(hash, name)
	if l == nil {
		s.mu.Unlock()
		s.stats.misses.Add(1)
		return Ref{}, View{}, false
	}
	s.correct(l, vm, offline)
	v := l.view()
	ref := Ref{obj: l, gen: l.gen, name: name, hash: hash, shard: si}
	s.mu.Unlock()
	s.stats.hits.Add(1)
	return ref, v, true
}

func (l *Loc) view() View {
	return View{Vh: l.vh, Vp: l.vp, Vq: l.vq, Deadline: l.deadline}
}

// Add inserts a location object for name with Vq = vm (every eligible
// server must be queried) and arms its processing deadline, making the
// caller the querying thread. If the name is already cached, Add behaves
// like Fetch. The boolean result reports whether a new object was
// created.
func (c *Cache) Add(name string, vm, offline bitvec.Vec) (Ref, View, bool) {
	hash := names.Hash(name)
	si := hash >> c.shift
	s := c.shards[si]
	now := c.cfg.Clock.Now()
	s.mu.Lock()
	if l := s.find(hash, name); l != nil {
		s.correct(l, vm, offline)
		v := l.view()
		ref := Ref{obj: l, gen: l.gen, name: name, hash: hash, shard: si}
		s.mu.Unlock()
		s.stats.hits.Add(1)
		return ref, v, false
	}
	if s.count.Load() >= s.growAt {
		s.grow()
	}
	l := s.alloc()
	l.key = name
	l.keyLen = len(name)
	l.hash = hash
	l.vh, l.vp = 0, 0
	l.vq = vm
	l.cn = s.nc
	l.ta = s.tw
	l.deadline = now.Add(c.cfg.Deadline)
	l.rr, l.rw = 0, 0

	b := int64(hash) % int64(len(s.table))
	l.hnext = s.table[b]
	s.table[b] = l
	w := int(l.ta % Windows)
	l.wnext = s.windows[w]
	s.windows[w] = l
	s.count.Add(1)
	s.stats.inserts.Add(1)
	v := l.view()
	ref := Ref{obj: l, gen: l.gen, name: name, hash: hash, shard: si}
	s.mu.Unlock()
	return ref, v, true
}

// alloc takes an object from the free list or allocates a fresh one.
// Caller holds s.mu.
func (s *shard) alloc() *Loc {
	if l := s.free; l != nil {
		s.free = l.hnext
		l.hnext, l.wnext = nil, nil
		s.stats.reused.Add(1)
		return l
	}
	return &Loc{}
}

// grow resizes the shard's table to the next size in the sizing policy's
// sequence and redistributes every entry. Caller holds s.mu.
func (s *shard) grow() {
	newSize := s.nextSize()
	nt := make([]*Loc, newSize)
	for _, head := range s.table {
		for l := head; l != nil; {
			next := l.hnext
			// Hidden objects awaiting sweep stay linked so the sweep can
			// still unlink them, in their new bucket.
			b := int64(l.hash) % newSize
			l.hnext = nt[b]
			nt[b] = l
			l = next
		}
	}
	s.table = nt
	s.buckets.Store(newSize)
	s.setGrowAt()
	s.stats.resizes.Add(1)
}

// ChainLengths returns the length of every hash bucket chain,
// concatenated shard by shard (shard 0's buckets first). The E4
// experiment uses it to compare key dispersion under the two sizing
// policies; dispersion statistics are unaffected by the concatenation
// order.
func (c *Cache) ChainLengths() []int {
	var out []int
	for _, s := range c.shards {
		s.mu.Lock()
		for _, head := range s.table {
			n := 0
			for l := head; l != nil; l = l.hnext {
				if l.keyLen > 0 {
					n++
				}
			}
			out = append(out, n)
		}
		s.mu.Unlock()
	}
	return out
}

// ---------------------------------------------------------------------
// Reference-validated mutation.

// valid reports whether ref still refers to the object it was issued
// for. Caller holds the owning shard's lock.
func (s *shard) valid(ref Ref) bool {
	return ref.obj != nil && ref.obj.gen == ref.gen
}

// ErrStale is reported (as ok=false) when a reference fails
// authentication; callers fall back to a full lookup or ask the client
// to retry (Section III-B1).

// ClaimQuery atomically claims the right to query the Vq servers of the
// referenced object: if the object's processing deadline has passed, it
// is re-armed Deadline from now and ClaimQuery returns claimed=true.
// Otherwise another thread is already querying and the caller must defer
// the client (Section III-C2). ok=false means the reference was stale.
func (c *Cache) ClaimQuery(ref Ref) (claimed, ok bool) {
	now := c.cfg.Clock.Now()
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		s.stats.staleRefs.Add(1)
		return false, false
	}
	if now.After(ref.obj.deadline) {
		ref.obj.deadline = now.Add(c.cfg.Deadline)
		return true, true
	}
	return false, true
}

// MarkQueried clears the queried servers from Vq (resolution step 6: Vq
// is left holding only the servers that could NOT be queried).
func (c *Cache) MarkQueried(ref Ref, queried bitvec.Vec) bool {
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		s.stats.staleRefs.Add(1)
		return false
	}
	ref.obj.vq = ref.obj.vq.Minus(queried)
	return true
}

// UpdateResult is returned by Update; it carries the fast-response-queue
// tokens that were associated with the object so the caller can release
// the matching waiters. Tokens are opaque to the cache (loose coupling).
type UpdateResult struct {
	ReadWaiters  uint64 // R_r token, 0 if none
	WriteWaiters uint64 // R_w token, 0 if none
}

// Update records a server's positive response for name: subordinate i has
// the file (pending=false) or is preparing it (pending=true). The hash is
// passed along from the original query, so no rehash occurs. If waiters
// are associated with the object they are detached and returned; the
// write token is returned only when canWrite is true. Update never
// creates an object: a response for an evicted name is dropped, matching
// the protocol's tolerance for late responses.
func (c *Cache) Update(name string, hash uint32, i int, pending, canWrite bool) (UpdateResult, bool) {
	var res UpdateResult
	if i < 0 || i >= 64 {
		return res, false
	}
	s := c.shardFor(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.find(hash, name)
	if l == nil {
		return res, false
	}
	bit := bitvec.Bit(i)
	if pending {
		l.vp = l.vp.Union(bit)
		l.vh = l.vh.Minus(bit)
	} else {
		l.vh = l.vh.Union(bit)
		l.vp = l.vp.Minus(bit)
	}
	l.vq = l.vq.Minus(bit)
	res.ReadWaiters, l.rr = l.rr, 0
	if canWrite {
		res.WriteWaiters, l.rw = l.rw, 0
	}
	return res, true
}

// Evict removes subordinate i from the referenced object's vectors —
// used when a client reports that the server it was vectored to cannot
// actually serve the file (Section III-C1).
func (c *Cache) Evict(ref Ref, i int) bool {
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		s.stats.staleRefs.Add(1)
		return false
	}
	bit := bitvec.Bit(i)
	l := ref.obj
	l.vh = l.vh.Minus(bit)
	l.vp = l.vp.Minus(bit)
	l.vq = l.vq.Minus(bit)
	return true
}

// SetWaiters associates a fast-response-queue token with the object for
// the given access mode (write=false → R_r, write=true → R_w). It fails
// if the reference is stale or a token is already present (the caller
// should then join the existing queue entry instead).
func (c *Cache) SetWaiters(ref Ref, write bool, token uint64) bool {
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		s.stats.staleRefs.Add(1)
		return false
	}
	if write {
		if ref.obj.rw != 0 {
			return false
		}
		ref.obj.rw = token
	} else {
		if ref.obj.rr != 0 {
			return false
		}
		ref.obj.rr = token
	}
	return true
}

// SwapWaiters replaces the token for the given mode only if the current
// token equals old (compare-and-swap). Callers use it to install a fresh
// response-queue entry over a stale token without racing other threads.
func (c *Cache) SwapWaiters(ref Ref, write bool, old, new uint64) bool {
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		s.stats.staleRefs.Add(1)
		return false
	}
	if write {
		if ref.obj.rw != old {
			return false
		}
		ref.obj.rw = new
	} else {
		if ref.obj.rr != old {
			return false
		}
		ref.obj.rr = new
	}
	return true
}

// Waiters returns the current token for the given mode (0 if none).
func (c *Cache) Waiters(ref Ref, write bool) (uint64, bool) {
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		s.stats.staleRefs.Add(1)
		return 0, false
	}
	if write {
		return ref.obj.rw, true
	}
	return ref.obj.rr, true
}

// ClearWaiters drops the token for the given mode if it matches.
// The fast-response thread calls this when it times a queue entry out.
func (c *Cache) ClearWaiters(ref Ref, write bool, token uint64) {
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		return
	}
	if write {
		if ref.obj.rw == token {
			ref.obj.rw = 0
		}
	} else {
		if ref.obj.rr == token {
			ref.obj.rr = 0
		}
	}
}

// Refresh re-initializes the referenced object as if it were a brand-new
// un-cached request (Section III-C1): every eligible server (vm, minus
// the reported failing server if any) must be re-queried, the deadline is
// re-armed, and Ta is updated to the current window. Per the paper's
// deferred re-chaining optimization the object is NOT moved between
// window chains here (unless the cache was configured with EagerRechain,
// the E12 baseline); the next sweep of its resident chain moves it.
// The caller becomes the querying thread.
func (c *Cache) Refresh(ref Ref, vm bitvec.Vec, avoid int) (View, bool) {
	now := c.cfg.Clock.Now()
	s := c.shards[ref.shard&uint32(len(c.shards)-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(ref) {
		s.stats.staleRefs.Add(1)
		return View{}, false
	}
	l := ref.obj
	l.vh, l.vp = 0, 0
	l.vq = vm.Minus(bitvec.Bit(avoid))
	l.cn = s.nc
	l.deadline = now.Add(c.cfg.Deadline)
	oldTa := l.ta
	l.ta = s.tw
	s.stats.refreshes.Add(1)
	if c.cfg.EagerRechain && oldTa%Windows != l.ta%Windows {
		s.rechainNow(l, int(oldTa%Windows))
	}
	return l.view(), true
}

// rechainNow unlinks l from window chain w and links it into its current
// chain — the eager baseline. Unlinking from a singly linked chain costs
// a scan of that chain, which is what makes eager re-chaining
// quadratic-ish under refresh-heavy load. Caller holds s.mu.
func (s *shard) rechainNow(l *Loc, w int) {
	pp := &s.windows[w]
	for *pp != nil && *pp != l {
		pp = &(*pp).wnext
	}
	if *pp == l {
		*pp = l.wnext
	}
	nw := int(l.ta % Windows)
	l.wnext = s.windows[nw]
	s.windows[nw] = l
	s.stats.rechained.Add(1)
}
