package cache

import (
	"fmt"
	"sync"
	"testing"

	"scalla/internal/bitvec"
	"scalla/internal/names"
	"scalla/internal/vclock"
)

// TestShardContentionInvariants hammers a single shard with 32
// goroutines adding, fetching, and refreshing colliding keys while the
// window clock ticks (and sweeps run synchronously with the writers).
// After the dust settles the striped stats must still satisfy the
// paper's accounting identity: every inserted object is either still
// findable, or was hidden and then physically swept.
//
// Run under -race this doubles as the striping data-race check: all 32
// goroutines serialize on one shard mutex while Tick fans out across
// every shard.
func TestShardContentionInvariants(t *testing.T) {
	c := New(Config{
		InitialBuckets: 64,
		SyncSweep:      false, // background sweeps race with the writers
		Clock:          vclock.NewFake(),
	})

	// Build one shard's worth of colliding keys: names that all map to
	// the shard owning "/hot".
	ref, _, _ := c.Add("/hot", bitvec.Full, 0)
	shard := ref.Shard()
	const perG = 64
	const goroutines = 32
	keys := make([]string, 0, goroutines*perG)
	for i := 0; len(keys) < cap(keys); i++ {
		n := fmt.Sprintf("/hot/%d", i)
		if int(names.Hash(n)>>c.shift) == shard {
			keys = append(keys, n)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Ticker goroutine: expire windows while the writers run. More than
	// 64 ticks guarantees early adds age a full lifetime and are swept.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Tick()
		}
		close(stop)
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := keys[g*perG : (g+1)*perG]
			for round := 0; ; round++ {
				for _, n := range mine {
					ref, _, created := c.Add(n, bitvec.Full, 0)
					if !created {
						// Already cached (by us or an earlier round):
						// exercise the ref-validated paths too.
						c.Refresh(ref, bitvec.Full, -1)
					}
					c.Fetch(n, bitvec.Full, 0)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
	c.WaitSweeps()

	st := c.Stats()
	if st.Inserts == 0 {
		t.Fatal("no inserts recorded")
	}
	// Accounting identity: with all sweeps drained, nothing is in the
	// hidden-awaiting-sweep limbo, so every insert is live or swept.
	if st.Inserts != st.Entries+st.Swept {
		t.Errorf("Inserts(%d) != Entries(%d) + Swept(%d)", st.Inserts, st.Entries, st.Swept)
	}
	if st.Entries != c.Len() {
		t.Errorf("Stats.Entries(%d) != Len(%d)", st.Entries, c.Len())
	}
	// Hidden counts every hide; Swept counts every physical removal.
	// With sweeps drained they must agree.
	if st.Hidden != st.Swept {
		t.Errorf("Hidden(%d) != Swept(%d) after WaitSweeps", st.Hidden, st.Swept)
	}
	// All the action (other than the Tick fan-out) was confined to one
	// shard; per-shard stats must show it.
	ss := c.ShardStats()
	var sum int64
	for _, s := range ss {
		sum += s.Inserts
	}
	if sum != st.Inserts {
		t.Errorf("shard inserts sum %d != aggregate Inserts %d", sum, st.Inserts)
	}
	if ss[shard].Inserts != st.Inserts {
		t.Errorf("shard %d Inserts = %d, want all %d (colliding keys)", shard, ss[shard].Inserts, st.Inserts)
	}
}
