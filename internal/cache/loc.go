package cache

import (
	"time"
	"unsafe"

	"scalla/internal/bitvec"
)

// LocSize is the in-memory footprint of one location object, excluding
// its key string's bytes. Experiment E6 uses it to reproduce the
// paper's memory-bound arithmetic (28.8 M objects ≈ 16 GB).
const LocSize = unsafe.Sizeof(Loc{})

// Loc is a location object (paper Section III-A1). It holds the location
// state of one file as three 64-bit server vectors plus the bookkeeping
// needed for lazy correction, window-based eviction, and the loosely
// coupled fast-response queue.
//
// A Loc is never freed once allocated: eviction hides it (key length set
// to zero), bumps its generation counter, and places it on a free list
// for reuse. This guarantees that a stale Ref still points at a valid —
// albeit possibly recycled — object, exactly as the paper prescribes.
type Loc struct {
	key    string // file name; findable only while keyLen > 0
	keyLen int    // the paper's "text key length"; 0 == hidden
	hash   uint32 // CRC32 of key

	// Location state. Invariant: Vq ∩ (Vh ∪ Vp) = ∅.
	vh bitvec.Vec // servers that have the file
	vp bitvec.Vec // servers preparing (staging) the file
	vq bitvec.Vec // servers that must still be queried

	cn       uint64    // Nc snapshot at caching/last correction (paper's C_n)
	ta       uint64    // absolute window counter at add/refresh (paper's T_a)
	deadline time.Time // processing deadline (Section III-C2)

	gen uint64 // reference authenticator; incremented on removal

	// Fast response queue association (Section III-B). Opaque tokens
	// owned by the respq package; 0 means "no waiters". The coupling is
	// deliberately loose: respq may recycle a slot at any time and the
	// stale token here is then simply ignored.
	rr uint64 // waiters for read access (paper's R_r)
	rw uint64 // waiters for write access (paper's R_w)

	hnext *Loc // hash bucket chain (linear chaining)
	wnext *Loc // window chain (objects added in the same window)
}

// Ref is a reference to a location object plus the authenticator that
// validates it (Section III-B1). Refs let callers manipulate a Loc across
// multiple cache calls without holding locks in between: each call
// revalidates gen against the object's current generation.
//
// A Ref also carries the index of the lock stripe that owns the object,
// so reference-validated operations go straight to the right shard
// without rehashing or re-deriving the stripe from the key.
type Ref struct {
	obj   *Loc
	gen   uint64
	name  string
	hash  uint32
	shard uint32
}

// Name returns the file name the reference was created for.
func (r Ref) Name() string { return r.name }

// Hash returns the CRC32 key carried with the reference. Responses pass
// it along so the cache never rehashes a name it has already hashed
// (the paper's "streamlined" update path).
func (r Ref) Hash() uint32 { return r.hash }

// Shard returns the index of the lock stripe owning the referenced
// object. Tests and the obs layer use it to reason about skew.
func (r Ref) Shard() int { return int(r.shard) }

// Zero reports whether the reference is the zero value (never issued).
func (r Ref) Zero() bool { return r.obj == nil }

// View is a corrected, copied-out snapshot of a location object's state.
// All vectors have already been masked by Vm and adjusted for offline
// servers, so callers can act on it without further validation.
type View struct {
	Vh bitvec.Vec // online servers that have the file
	Vp bitvec.Vec // servers staging the file
	Vq bitvec.Vec // servers that still must be queried

	// Deadline is the object's processing deadline. While it lies in the
	// future some thread is (or recently was) querying the Vq servers;
	// other threads must defer rather than issue duplicate queries.
	Deadline time.Time
}

// HasLocation reports whether any server is known to have or be staging
// the file.
func (v View) HasLocation() bool { return !v.Vh.IsEmpty() || !v.Vp.IsEmpty() }

// Empty reports whether nothing at all is known or pending for the file
// (resolution step 2: candidate for "file does not exist").
func (v View) Empty() bool {
	return v.Vh.IsEmpty() && v.Vp.IsEmpty() && v.Vq.IsEmpty()
}
