package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/fib"
	"scalla/internal/names"
	"scalla/internal/vclock"
)

func testCache(fc *vclock.Fake) *Cache {
	return New(Config{
		Lifetime:       8 * time.Hour,
		Deadline:       5 * time.Second,
		InitialBuckets: 13,
		SyncSweep:      true,
		Clock:          fc,
	})
}

// sameShardName generates a name (pattern + counter) that the cache
// assigns to shard want, for tests that exercise per-shard state such as
// the free list.
func sameShardName(t *testing.T, c *Cache, want int, pattern string) string {
	t.Helper()
	for i := 0; i < 1<<20; i++ {
		n := fmt.Sprintf("%s%d", pattern, i)
		if int(names.Hash(n)>>c.shift) == want {
			return n
		}
	}
	t.Fatalf("no name under %q maps to shard %d", pattern, want)
	return ""
}

func TestAddFetchRoundTrip(t *testing.T) {
	fc := vclock.NewFake()
	c := testCache(fc)
	vm := bitvec.Of(0, 1, 2)

	ref, v, created := c.Add("/store/a.root", vm, 0)
	if !created {
		t.Fatal("Add reported existing object")
	}
	if v.Vq != vm || !v.Vh.IsEmpty() || !v.Vp.IsEmpty() {
		t.Fatalf("new object state = %+v", v)
	}
	if ref.Name() != "/store/a.root" || ref.Hash() != names.Hash("/store/a.root") {
		t.Error("ref name/hash wrong")
	}

	ref2, v2, ok := c.Fetch("/store/a.root", vm, 0)
	if !ok || ref2.Zero() {
		t.Fatal("Fetch missed a cached name")
	}
	if v2.Vq != vm {
		t.Fatalf("fetched Vq = %v, want %v", v2.Vq, vm)
	}
	if _, _, ok := c.Fetch("/other", vm, 0); ok {
		t.Error("Fetch hit an uncached name")
	}
}

func TestAddExistingBehavesLikeFetch(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(3)
	c.Add("/f", vm, 0)
	_, _, created := c.Add("/f", vm, 0)
	if created {
		t.Error("second Add must not create")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestUpdateSetsVectorsAndReturnsWaiters(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1, 2, 3)
	ref, _, _ := c.Add("/f", vm, 0)

	if !c.SetWaiters(ref, false, 77) {
		t.Fatal("SetWaiters(read) failed")
	}
	if !c.SetWaiters(ref, true, 88) {
		t.Fatal("SetWaiters(write) failed")
	}
	// A second association for the same mode must be refused.
	if c.SetWaiters(ref, false, 99) {
		t.Error("second SetWaiters(read) must fail")
	}

	res, ok := c.Update("/f", ref.Hash(), 2, false, false)
	if !ok {
		t.Fatal("Update missed")
	}
	if res.ReadWaiters != 77 {
		t.Errorf("ReadWaiters = %d, want 77", res.ReadWaiters)
	}
	if res.WriteWaiters != 0 {
		t.Errorf("WriteWaiters = %d, want 0 (server not writable)", res.WriteWaiters)
	}

	_, v, _ := c.Fetch("/f", vm, 0)
	if !v.Vh.Has(2) {
		t.Error("Vh missing responding server")
	}
	if v.Vq.Has(2) {
		t.Error("Vq still contains responding server")
	}

	// Writable response releases the write waiters too.
	res, _ = c.Update("/f", ref.Hash(), 3, false, true)
	if res.WriteWaiters != 88 {
		t.Errorf("WriteWaiters = %d, want 88", res.WriteWaiters)
	}
}

func TestUpdatePendingThenOnline(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(5)
	ref, _, _ := c.Add("/f", vm, 0)
	c.Update("/f", ref.Hash(), 5, true, false)
	_, v, _ := c.Fetch("/f", vm, 0)
	if !v.Vp.Has(5) || v.Vh.Has(5) {
		t.Fatalf("staging state wrong: %+v", v)
	}
	c.Update("/f", ref.Hash(), 5, false, false)
	_, v, _ = c.Fetch("/f", vm, 0)
	if !v.Vh.Has(5) || v.Vp.Has(5) {
		t.Fatalf("online state wrong: %+v", v)
	}
}

func TestUpdateUnknownNameDropped(t *testing.T) {
	c := testCache(vclock.NewFake())
	if _, ok := c.Update("/ghost", names.Hash("/ghost"), 1, false, false); ok {
		t.Error("Update must drop responses for unknown names")
	}
}

func TestUpdateRejectsBadServerIndex(t *testing.T) {
	c := testCache(vclock.NewFake())
	c.Add("/f", bitvec.Full, 0)
	if _, ok := c.Update("/f", names.Hash("/f"), 64, false, false); ok {
		t.Error("server index 64 must be rejected")
	}
	if _, ok := c.Update("/f", names.Hash("/f"), -1, false, false); ok {
		t.Error("server index -1 must be rejected")
	}
}

func TestMarkQueried(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1, 2)
	ref, _, _ := c.Add("/f", vm, 0)
	c.MarkQueried(ref, bitvec.Of(0, 1))
	_, v, _ := c.Fetch("/f", vm, 0)
	if v.Vq != bitvec.Of(2) {
		t.Errorf("Vq = %v, want {2}", v.Vq)
	}
}

func TestEvict(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1)
	ref, _, _ := c.Add("/f", vm, 0)
	c.Update("/f", ref.Hash(), 0, false, false)
	c.Update("/f", ref.Hash(), 1, false, false)
	c.Evict(ref, 0)
	_, v, _ := c.Fetch("/f", vm, 0)
	if v.Vh.Has(0) {
		t.Error("evicted server still in Vh")
	}
	if !v.Vh.Has(1) {
		t.Error("other server lost from Vh")
	}
}

func TestClaimQueryDeadline(t *testing.T) {
	fc := vclock.NewFake()
	c := testCache(fc)
	ref, _, _ := c.Add("/f", bitvec.Of(0), 0)
	// Add armed the deadline for its caller; a second claim must defer.
	claimed, ok := c.ClaimQuery(ref)
	if !ok || claimed {
		t.Fatalf("claim while armed: claimed=%v ok=%v", claimed, ok)
	}
	fc.Advance(6 * time.Second)
	claimed, ok = c.ClaimQuery(ref)
	if !ok || !claimed {
		t.Fatalf("claim after deadline: claimed=%v ok=%v", claimed, ok)
	}
	// And immediately re-armed for the new claimant.
	claimed, _ = c.ClaimQuery(ref)
	if claimed {
		t.Error("second concurrent claim must defer")
	}
}

func TestResizeFollowsFibonacciAndPreservesEntries(t *testing.T) {
	c := New(Config{InitialBuckets: 13, SyncSweep: true, Clock: vclock.NewFake()})
	n := 2000
	for i := 0; i < n; i++ {
		c.Add(fmt.Sprintf("/store/file-%06d.root", i), bitvec.Full, 0)
	}
	st := c.Stats()
	if st.Resizes == 0 {
		t.Fatal("expected at least one resize")
	}
	// Each shard sizes its own table along the Fibonacci sequence; the
	// aggregate Buckets is a sum of Fibonacci numbers.
	for si, ss := range c.ShardStats() {
		if !fib.IsFib(ss.Buckets) {
			t.Errorf("shard %d bucket count %d is not Fibonacci", si, ss.Buckets)
		}
	}
	if st.Entries != int64(n) {
		t.Errorf("Entries = %d, want %d", st.Entries, n)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/store/file-%06d.root", i)
		if _, _, ok := c.Fetch(name, bitvec.Full, 0); !ok {
			t.Fatalf("entry %q lost across resize", name)
		}
	}
}

func TestPowerOfTwoSizing(t *testing.T) {
	c := New(Config{InitialBuckets: 13, Sizing: SizingPowerOfTwo, Shards: 1, Clock: vclock.NewFake()})
	st := c.Stats()
	if st.Buckets != 16 {
		t.Errorf("initial buckets = %d, want 16", st.Buckets)
	}
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("/f%d", i), bitvec.Full, 0)
	}
	for si, ss := range c.ShardStats() {
		if ss.Buckets&(ss.Buckets-1) != 0 {
			t.Errorf("shard %d bucket count %d not a power of two", si, ss.Buckets)
		}
	}
	// Sharded power-of-two tables keep a power-of-two aggregate too.
	c16 := New(Config{InitialBuckets: 1024, Sizing: SizingPowerOfTwo, Clock: vclock.NewFake()})
	for i := 0; i < 2000; i++ {
		c16.Add(fmt.Sprintf("/g%d", i), bitvec.Full, 0)
	}
	for si, ss := range c16.ShardStats() {
		if ss.Buckets&(ss.Buckets-1) != 0 {
			t.Errorf("16-shard: shard %d bucket count %d not a power of two", si, ss.Buckets)
		}
	}
}

func TestWaitersLifecycle(t *testing.T) {
	c := testCache(vclock.NewFake())
	ref, _, _ := c.Add("/f", bitvec.Of(0), 0)
	c.SetWaiters(ref, false, 42)
	tok, ok := c.Waiters(ref, false)
	if !ok || tok != 42 {
		t.Fatalf("Waiters = %d,%v", tok, ok)
	}
	// Clearing with the wrong token is a no-op.
	c.ClearWaiters(ref, false, 41)
	if tok, _ := c.Waiters(ref, false); tok != 42 {
		t.Error("ClearWaiters with wrong token must not clear")
	}
	c.ClearWaiters(ref, false, 42)
	if tok, _ := c.Waiters(ref, false); tok != 0 {
		t.Error("ClearWaiters failed")
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	c := New(Config{InitialBuckets: 89, SyncSweep: false, Clock: vclock.NewFake()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := fmt.Sprintf("/f%d", i%97)
				ref, _, _ := c.Add(name, bitvec.Full, 0)
				c.Update(name, ref.Hash(), (g+i)%64, i%5 == 0, i%3 == 0)
				c.Fetch(name, bitvec.Full, 0)
				if i%50 == 0 {
					c.Refresh(ref, bitvec.Full, -1)
				}
			}
		}(g)
	}
	for i := 0; i < 70; i++ {
		c.Tick()
	}
	wg.Wait()
	c.WaitSweeps()
}

func TestStatsCounters(t *testing.T) {
	c := testCache(vclock.NewFake())
	c.Add("/a", bitvec.Full, 0)
	c.Fetch("/a", bitvec.Full, 0)
	c.Fetch("/nope", bitvec.Full, 0)
	st := c.Stats()
	if st.Inserts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}
