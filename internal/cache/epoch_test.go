package cache

import (
	"testing"

	"scalla/internal/bitvec"
	"scalla/internal/vclock"
)

// Table-driven end-to-end check of the connect-epoch machinery
// (Section III-A4): server 0 answers a flood and lands in Vh, then
// leaves and rejoins in various ways. Whatever the sequence, the stale
// "have" bit must not resurrect — server 0 may only reappear in Vq,
// where a fresh query re-establishes the truth. Repeated fetches after
// the churn must stay stable (no late resurrection once the correction
// memo is warm).
func TestEpochVhNeverResurrectsAfterReconnect(t *testing.T) {
	cases := []struct {
		name string
		// churn mutates the cache after server 0 is a known holder.
		churn func(c *Cache)
		// vm is the export mask seen at fetch time (after churn).
		vm bitvec.Vec
		// wantVq0 says whether server 0 must be queued for re-query.
		wantVq0 bool
	}{
		{
			// Reconnect under a new epoch, same slot: files may have
			// changed while the server was away, so re-query it.
			name:    "reconnect same slot",
			churn:   func(c *Cache) { c.ServerConnected(0) },
			vm:      bitvec.Of(0, 1),
			wantVq0: true,
		},
		{
			// Dropped for good: the slot leaves Vm and masking must
			// erase every trace of it.
			name:    "dropped, slot vacant",
			churn:   func(c *Cache) { c.ServerDropped(0) },
			vm:      bitvec.Of(1),
			wantVq0: false,
		},
		{
			// The dangerous case: the slot is recycled for a different
			// server exporting the same prefix. The old holder's bit
			// must not vouch for the newcomer.
			name: "slot reassigned to new server",
			churn: func(c *Cache) {
				c.ServerDropped(0)
				c.ServerConnected(0)
			},
			vm:      bitvec.Of(0, 1),
			wantVq0: true,
		},
		{
			// Two quick bounces before the next fetch still collapse
			// into one correction: the bit stays quarantined in Vq.
			name: "double bounce before fetch",
			churn: func(c *Cache) {
				c.ServerConnected(0)
				c.ServerConnected(0)
			},
			vm:      bitvec.Of(0, 1),
			wantVq0: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCache(vclock.NewFake())
			vm := bitvec.Of(0, 1)
			ref, _, _ := c.Add("/f", vm, 0)
			c.Update("/f", ref.Hash(), 0, false, false)
			c.Update("/f", ref.Hash(), 1, false, false)

			tc.churn(c)

			for fetch := 1; fetch <= 3; fetch++ {
				_, v, ok := c.Fetch("/f", tc.vm, 0)
				if !ok {
					t.Fatalf("fetch %d: object evicted", fetch)
				}
				if v.Vh.Has(0) {
					t.Fatalf("fetch %d: stale Vh bit resurrected: %+v", fetch, v)
				}
				if v.Vq.Has(0) != tc.wantVq0 {
					t.Fatalf("fetch %d: Vq.Has(0) = %v, want %v (%+v)",
						fetch, v.Vq.Has(0), tc.wantVq0, v)
				}
				if !v.Vh.Has(1) {
					t.Fatalf("fetch %d: innocent holder lost: %+v", fetch, v)
				}
			}

			// The quarantined bit leaves Vq the honest way: a fresh
			// positive response moves it to Vh.
			if tc.wantVq0 {
				c.MarkQueried(ref, bitvec.Of(0))
				c.Update("/f", ref.Hash(), 0, false, false)
				_, v, _ := c.Fetch("/f", tc.vm, 0)
				if !v.Vh.Has(0) || v.Vq.Has(0) {
					t.Fatalf("re-verified holder not restored to Vh: %+v", v)
				}
			}
		})
	}
}

// A control case: no epoch change means cached locations stay trusted —
// the machinery must not over-correct.
func TestEpochStableWithoutReconnect(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1)
	ref, _, _ := c.Add("/f", vm, 0)
	c.Update("/f", ref.Hash(), 0, false, false)

	_, v, _ := c.Fetch("/f", vm, 0)
	if !v.Vh.Has(0) || v.Vq.Has(0) {
		t.Fatalf("holder lost without any epoch change: %+v", v)
	}
	if c.Stats().CorrApplied != 0 {
		t.Errorf("CorrApplied = %d, want 0", c.Stats().CorrApplied)
	}
}
