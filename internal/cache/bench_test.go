package cache

import (
	"fmt"
	"testing"

	"scalla/internal/bitvec"
	"scalla/internal/vclock"
)

func benchCache(buckets int64) *Cache {
	return New(Config{InitialBuckets: buckets, SyncSweep: true, Clock: vclock.NewFake()})
}

func benchName(i int) string {
	return fmt.Sprintf("/store/data/Run2012A/AOD/%04d/F%08d.root", i%1000, i)
}

func BenchmarkAdd(b *testing.B) {
	c := benchCache(17711)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(benchName(i), bitvec.Full, 0)
	}
}

func BenchmarkFetchHit(b *testing.B) {
	c := benchCache(17711)
	const n = 200_000
	for i := 0; i < n; i++ {
		c.Add(benchName(i), bitvec.Full, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fetch(benchName(i%n), bitvec.Full, 0)
	}
}

func BenchmarkFetchMiss(b *testing.B) {
	c := benchCache(17711)
	for i := 0; i < 100_000; i++ {
		c.Add(benchName(i), bitvec.Full, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fetch(fmt.Sprintf("/absent/%d", i), bitvec.Full, 0)
	}
}

func BenchmarkUpdate(b *testing.B) {
	c := benchCache(17711)
	const n = 100_000
	refs := make([]Ref, n)
	for i := 0; i < n; i++ {
		refs[i], _, _ = c.Add(benchName(i), bitvec.Full, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := refs[i%n]
		c.Update(r.Name(), r.Hash(), i%64, false, false)
	}
}

func BenchmarkRefreshDeferred(b *testing.B) {
	c := benchCache(17711)
	const n = 50_000
	refs := make([]Ref, n)
	for i := 0; i < n; i++ {
		refs[i], _, _ = c.Add(benchName(i), bitvec.Full, 0)
	}
	c.Tick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Refresh(refs[i%n], bitvec.Full, -1)
	}
}

func BenchmarkClaimQuery(b *testing.B) {
	c := benchCache(17711)
	ref, _, _ := c.Add("/f", bitvec.Full, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ClaimQuery(ref)
	}
}

func BenchmarkCorrectionMemoHit(b *testing.B) {
	c := benchCache(17711)
	const n = 100_000
	for i := 0; i < n; i++ {
		ref, _, _ := c.Add(benchName(i), bitvec.Full, 0)
		c.Update(benchName(i), ref.Hash(), i%32, false, false)
	}
	c.ServerConnected(40) // stale everything
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fetch(benchName(i%n), bitvec.Full, 0)
	}
}

func BenchmarkParallelFetch(b *testing.B) {
	c := benchCache(17711)
	const n = 100_000
	for i := 0; i < n; i++ {
		c.Add(benchName(i), bitvec.Full, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Fetch(benchName(i%n), bitvec.Full, 0)
			i++
		}
	})
}
