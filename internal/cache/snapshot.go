package cache

import (
	"time"

	"scalla/internal/bitvec"
)

// Entry is a point-in-time copy of one findable location object, as
// returned by Entries. It exposes the raw vectors (unmasked by Vm and
// uncorrected — exactly the stored state) so invariant checkers can
// verify what the cache itself maintains, most importantly the paper's
// Vq ∩ (Vh ∪ Vp) = ∅ disjointness.
type Entry struct {
	Name     string
	Hash     uint32
	Vh       bitvec.Vec
	Vp       bitvec.Vec
	Vq       bitvec.Vec
	Deadline time.Time
	// ReadTok and WriteTok are the fast-response-queue tokens currently
	// associated with the object (the paper's R_r/R_w; 0 = none).
	ReadTok  uint64
	WriteTok uint64
}

// Entries returns a snapshot of every findable object in deterministic
// (shard, bucket, chain) order. It takes each shard lock once, so it is
// not for hot paths; the deterministic simulation harness runs it after
// every scheduler step to check the paper's invariants.
func (c *Cache) Entries() []Entry {
	var out []Entry
	for _, s := range c.shards {
		s.mu.Lock()
		for _, head := range s.table {
			for l := head; l != nil; l = l.hnext {
				if l.keyLen == 0 {
					continue // hidden, awaiting sweep
				}
				out = append(out, Entry{
					Name: l.key, Hash: l.hash,
					Vh: l.vh, Vp: l.vp, Vq: l.vq,
					Deadline: l.deadline,
					ReadTok:  l.rr, WriteTok: l.rw,
				})
			}
		}
		s.mu.Unlock()
	}
	return out
}
