package cache

// Time-based eviction (paper Section III-A3).
//
// The object lifetime Lt is divided into 64 windows. A window clock Tw
// ticks every Lt/64 (7.5 minutes at the default 8-hour lifetime). Every
// object records the tick count at which it was added (or last
// refreshed) as Ta. When the clock ticks, all objects added a full
// lifetime ago — those in the expiring window chain whose Ta is at least
// 64 ticks old — are *hidden* by zeroing their key length, which is all
// it takes to make them unfindable. Physical removal happens in a
// background sweep so it never interferes with look-ups; on average only
// 1/64 ≈ 1.6% of the cache is touched per tick.
//
// Refreshed objects have a newer Ta but still sit in their original
// chain (deferred re-chaining, Section III-C1). The sweep recognizes
// them — their Ta is not old enough — and moves them to the chain their
// Ta now belongs to, re-chaining every displaced object in one linear
// pass.

// Tick advances the window clock by one period and expires the window
// that has now aged a full lifetime. Hiding happens synchronously (it is
// a single pass over one chain setting key lengths to zero); physical
// removal runs in a background goroutine unless cfg.SyncSweep is set.
//
// Tick is exported so tests and benchmarks can drive the clock manually;
// production daemons call Run, which ticks off the configured clock.
func (c *Cache) Tick() {
	c.mu.Lock()
	c.tw++
	w := int(c.tw % Windows)
	// Detach the expiring chain; new adds during the sweep start a fresh
	// chain for this window index.
	head := c.windows[w]
	c.windows[w] = nil
	cutoff := c.tw // objects with ta + Windows <= tw have aged >= Lt
	// Hide expired entries now — after this pass none of them can be
	// found, so the background sweep races with nothing.
	var hidden int64
	for l := head; l != nil; l = l.wnext {
		if l.ta+Windows <= cutoff && l.keyLen > 0 {
			l.keyLen = 0
			hidden++
			c.count--
		}
	}
	c.stats.Hidden += hidden
	c.mu.Unlock()
	if c.cfg.OnTick != nil {
		c.cfg.OnTick(cutoff, hidden)
	}

	if c.cfg.SyncSweep {
		c.sweep(head, cutoff)
		return
	}
	c.sweepWG.Add(1)
	go func() {
		defer c.sweepWG.Done()
		c.sweep(head, cutoff)
	}()
}

// sweep physically removes the hidden objects of a detached window chain
// and re-chains any object whose Ta was moved by a refresh. It takes the
// cache lock in bounded batches so look-ups are never blocked for long.
func (c *Cache) sweep(head *Loc, cutoff uint64) {
	const batch = 256
	l := head
	for l != nil {
		c.mu.Lock()
		for n := 0; l != nil && n < batch; n++ {
			next := l.wnext
			if l.ta+Windows <= cutoff {
				// Expired: unlink from its hash bucket, invalidate
				// references, and recycle the storage.
				c.unhash(l)
				l.gen++
				l.key = ""
				l.vh, l.vp, l.vq = 0, 0, 0
				l.rr, l.rw = 0, 0
				l.wnext = nil
				l.hnext = c.free
				c.free = l
				c.stats.Swept++
			} else {
				// Refreshed since it was chained here: deferred
				// re-chaining happens now, one pointer splice.
				nw := int(l.ta % Windows)
				l.wnext = c.windows[nw]
				c.windows[nw] = l
				c.stats.Rechained++
			}
			l = next
		}
		c.mu.Unlock()
	}
}

// unhash unlinks l from its hash bucket. Caller holds c.mu.
func (c *Cache) unhash(l *Loc) {
	b := int64(l.hash) % int64(len(c.table))
	pp := &c.table[b]
	for *pp != nil && *pp != l {
		pp = &(*pp).hnext
	}
	if *pp == l {
		*pp = l.hnext
	}
}

// WaitSweeps blocks until all background sweeps have completed.
func (c *Cache) WaitSweeps() { c.sweepWG.Wait() }

// Run drives the window clock from the configured vclock until stop is
// closed: one Tick every Lifetime/64. Daemons run this in a goroutine.
func (c *Cache) Run(stop <-chan struct{}) {
	t := c.cfg.Clock.NewTicker(c.cfg.Lifetime / Windows)
	defer t.Stop()
	for {
		select {
		case <-t.C():
			c.Tick()
		case <-stop:
			return
		}
	}
}

// WindowLens returns the number of objects currently linked in each of
// the 64 window chains — the harness uses it to show that each tick
// touches only ~1/64 of the cache (experiment E7, Figure 2).
func (c *Cache) WindowLens() [Windows]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [Windows]int
	for w := 0; w < Windows; w++ {
		for l := c.windows[w]; l != nil; l = l.wnext {
			out[w]++
		}
	}
	return out
}

// TickCount returns the absolute window-clock tick counter.
func (c *Cache) TickCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tw
}
