package cache

// Time-based eviction (paper Section III-A3).
//
// The object lifetime Lt is divided into 64 windows. A window clock Tw
// ticks every Lt/64 (7.5 minutes at the default 8-hour lifetime). Every
// object records the tick count at which it was added (or last
// refreshed) as Ta. When the clock ticks, all objects added a full
// lifetime ago — those in the expiring window chain whose Ta is at least
// 64 ticks old — are *hidden* by zeroing their key length, which is all
// it takes to make them unfindable. Physical removal happens in a
// background sweep so it never interferes with look-ups; on average only
// 1/64 ≈ 1.6% of the cache is touched per tick.
//
// Refreshed objects have a newer Ta but still sit in their original
// chain (deferred re-chaining, Section III-C1). The sweep recognizes
// them — their Ta is not old enough — and moves them to the chain their
// Ta now belongs to, re-chaining every displaced object in one linear
// pass.
//
// Under lock striping every shard keeps its own 64 window chains; a
// tick walks the shards one at a time, holding only one shard lock at
// any moment, and each shard's expiring chain is swept independently.

// Tick advances the window clock by one period and expires the window
// that has now aged a full lifetime in every shard. Hiding happens
// synchronously (one pass per shard over one chain setting key lengths
// to zero); physical removal runs in background goroutines (one per
// shard with a non-empty chain) unless cfg.SyncSweep is set.
//
// Tick is exported so tests and benchmarks can drive the clock manually;
// production daemons call Run, which ticks off the configured clock.
func (c *Cache) Tick() {
	tw := c.tw.Add(1)
	w := int(tw % Windows)
	cutoff := tw // objects with ta + Windows <= tw have aged >= Lt
	var totalHidden int64
	heads := make([]*Loc, len(c.shards))
	for si, s := range c.shards {
		s.mu.Lock()
		s.tw = tw
		// Detach the expiring chain; new adds during the sweep start a
		// fresh chain for this window index.
		head := s.windows[w]
		s.windows[w] = nil
		// Hide expired entries now — after this pass none of them can be
		// found, so the background sweep races with nothing. The
		// generation bump happens here too (not just at sweep time):
		// otherwise a reference-validated Refresh racing into the
		// hide-to-sweep gap could re-stamp a hidden object's Ta and the
		// sweep would re-chain an unfindable object forever.
		var hidden int64
		for l := head; l != nil; l = l.wnext {
			if l.ta+Windows <= cutoff && l.keyLen > 0 {
				l.keyLen = 0
				l.gen++
				hidden++
			}
		}
		s.count.Add(-hidden)
		s.stats.hidden.Add(hidden)
		s.mu.Unlock()
		totalHidden += hidden
		heads[si] = head
	}
	if c.cfg.OnTick != nil {
		c.cfg.OnTick(tw, totalHidden)
	}

	if c.cfg.SyncSweep {
		for si, head := range heads {
			if head != nil {
				c.shards[si].sweep(head, cutoff)
			}
		}
		return
	}
	for si, head := range heads {
		if head == nil {
			continue
		}
		s := c.shards[si]
		c.sweepWG.Add(1)
		go func(s *shard, head *Loc) {
			defer c.sweepWG.Done()
			s.sweep(head, cutoff)
		}(s, head)
	}
}

// sweep physically removes the hidden objects of a detached window chain
// and re-chains any object whose Ta was moved by a refresh. It takes the
// shard lock in bounded batches so look-ups are never blocked for long.
func (s *shard) sweep(head *Loc, cutoff uint64) {
	const batch = 256
	l := head
	for l != nil {
		s.mu.Lock()
		for n := 0; l != nil && n < batch; n++ {
			next := l.wnext
			if l.ta+Windows <= cutoff {
				// Expired: unlink from its hash bucket and recycle the
				// storage (references were invalidated at hide time).
				s.unhash(l)
				l.key = ""
				l.vh, l.vp, l.vq = 0, 0, 0
				l.rr, l.rw = 0, 0
				l.wnext = nil
				l.hnext = s.free
				s.free = l
				s.stats.swept.Add(1)
			} else {
				// Refreshed since it was chained here: deferred
				// re-chaining happens now, one pointer splice.
				nw := int(l.ta % Windows)
				l.wnext = s.windows[nw]
				s.windows[nw] = l
				s.stats.rechained.Add(1)
			}
			l = next
		}
		s.mu.Unlock()
	}
}

// unhash unlinks l from its hash bucket. Caller holds s.mu.
func (s *shard) unhash(l *Loc) {
	b := int64(l.hash) % int64(len(s.table))
	pp := &s.table[b]
	for *pp != nil && *pp != l {
		pp = &(*pp).hnext
	}
	if *pp == l {
		*pp = l.hnext
	}
}

// WaitSweeps blocks until all background sweeps have completed.
func (c *Cache) WaitSweeps() { c.sweepWG.Wait() }

// Run drives the window clock from the configured vclock until stop is
// closed: one Tick every Lifetime/64. Daemons run this in a goroutine.
func (c *Cache) Run(stop <-chan struct{}) {
	t := c.cfg.Clock.NewTicker(c.cfg.Lifetime / Windows)
	defer t.Stop()
	for {
		select {
		case <-t.C():
			c.Tick()
		case <-stop:
			return
		}
	}
}

// WindowLens returns the number of objects currently linked in each of
// the 64 window chains, summed across shards — the harness uses it to
// show that each tick touches only ~1/64 of the cache (experiment E7,
// Figure 2).
func (c *Cache) WindowLens() [Windows]int {
	var out [Windows]int
	for _, s := range c.shards {
		s.mu.Lock()
		for w := 0; w < Windows; w++ {
			for l := s.windows[w]; l != nil; l = l.wnext {
				out[w]++
			}
		}
		s.mu.Unlock()
	}
	return out
}

// TickCount returns the absolute window-clock tick counter.
func (c *Cache) TickCount() uint64 {
	return c.tw.Load()
}
