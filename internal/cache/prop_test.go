package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"scalla/internal/bitvec"
	"scalla/internal/vclock"
)

// The paper's standing invariant: bits in Vq are never present in Vh or
// Vp. This property test drives the cache through random operation
// sequences — adds, server responses, refreshes, connect epochs, offline
// masks, window ticks — and checks the invariant after every fetch.
func TestPropVqDisjointFromVhVp(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := testCache(vclock.NewFake())
		files := make([]string, 20)
		for i := range files {
			files[i] = fmt.Sprintf("/d/f%d", i)
		}
		vm := bitvec.Vec(r.Uint64() | 1) // non-empty export mask
		for op := 0; op < 300; op++ {
			name := files[r.Intn(len(files))]
			switch r.Intn(10) {
			case 0, 1, 2:
				c.Add(name, vm, 0)
			case 3, 4:
				ref, _, ok := c.Fetch(name, vm, 0)
				if ok {
					c.Update(name, ref.Hash(), r.Intn(64), r.Intn(2) == 0, r.Intn(2) == 0)
				}
			case 5:
				if ref, _, ok := c.Fetch(name, vm, 0); ok {
					c.Refresh(ref, vm, r.Intn(65)-1)
				}
			case 6:
				c.ServerConnected(r.Intn(64))
			case 7:
				c.Tick()
			case 8:
				if ref, _, ok := c.Fetch(name, vm, 0); ok {
					c.MarkQueried(ref, bitvec.Vec(r.Uint64()))
				}
			case 9:
				if ref, _, ok := c.Fetch(name, vm, 0); ok {
					c.Evict(ref, r.Intn(64))
				}
			}
			offline := bitvec.Vec(r.Uint64() & r.Uint64() & r.Uint64()) // sparse
			_, v, ok := c.Fetch(name, vm, offline)
			if !ok {
				continue
			}
			if !v.Vq.Intersect(v.Vh.Union(v.Vp)).IsEmpty() {
				t.Logf("invariant broken: Vq=%v Vh=%v Vp=%v", v.Vq, v.Vh, v.Vp)
				return false
			}
			if !v.Vh.Union(v.Vp).Union(v.Vq).Minus(vm).IsEmpty() {
				t.Logf("vectors escaped Vm: Vq=%v Vh=%v Vp=%v Vm=%v", v.Vq, v.Vh, v.Vp, vm)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: after any sequence of adds and ticks, every name added
// within the last 63 ticks is findable and every name added at least 64
// ticks ago is not.
func TestPropLifetimeExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := testCache(vclock.NewFake())
		type rec struct {
			name string
			tick uint64
		}
		var added []rec
		n := 0
		for op := 0; op < 200; op++ {
			if r.Intn(3) == 0 {
				c.Tick()
			} else {
				nm := fmt.Sprintf("/p/%d", n)
				n++
				c.Add(nm, bitvec.Full, 0)
				added = append(added, rec{nm, c.TickCount()})
			}
		}
		now := c.TickCount()
		for _, a := range added {
			_, _, ok := c.Fetch(a.name, bitvec.Full, 0)
			expired := a.tick+Windows <= now
			if ok == expired {
				t.Logf("name %s added at tick %d, now %d: found=%v", a.name, a.tick, now, ok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// corrOracle is a brute-force model of one location object's state used
// to cross-check the memoized Figure-3 correction.
type corrOracle struct {
	vh, vp, vq bitvec.Vec
	cn         uint64
}

// Property: the Figure-3 correction is equivalent to recomputing Vc by
// brute force from the connect epochs. We run the memoized path and an
// oracle in lockstep.
func TestPropCorrectionMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := testCache(vclock.NewFake())
		vm := bitvec.Full

		oracles := map[string]*corrOracle{}
		var nc uint64
		conn := [64]uint64{}

		for op := 0; op < 400; op++ {
			name := fmt.Sprintf("/f%d", r.Intn(10))
			switch r.Intn(6) {
			case 0:
				_, _, created := c.Add(name, vm, 0)
				if created {
					oracles[name] = &corrOracle{vq: vm, cn: nc}
				}
			case 1, 2:
				if o, ok := oracles[name]; ok {
					i := r.Intn(64)
					pending := r.Intn(2) == 0
					ref, _, found := c.Fetch(name, vm, 0)
					if !found {
						return false // oracle and cache disagree on presence
					}
					// Fetch corrects both sides first.
					applyOracle(o, nc, conn, vm)
					c.Update(name, ref.Hash(), i, pending, false)
					b := bitvec.Bit(i)
					if pending {
						o.vp = o.vp.Union(b)
						o.vh = o.vh.Minus(b)
					} else {
						o.vh = o.vh.Union(b)
						o.vp = o.vp.Minus(b)
					}
					o.vq = o.vq.Minus(b)
				}
			case 3:
				i := r.Intn(64)
				c.ServerConnected(i)
				nc++
				conn[i] = nc
			default:
				if o, ok := oracles[name]; ok {
					_, v, found := c.Fetch(name, vm, 0)
					if !found {
						return false
					}
					applyOracle(o, nc, conn, vm)
					if v.Vh != o.vh || v.Vp != o.vp || v.Vq != o.vq {
						t.Logf("divergence on %s: cache{%v %v %v} oracle{%v %v %v}",
							name, v.Vh, v.Vp, v.Vq, o.vh, o.vp, o.vq)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func applyOracle(o *corrOracle, nc uint64, conn [64]uint64, vm bitvec.Vec) {
	if o.cn == nc {
		return
	}
	var vc bitvec.Vec
	for i := 0; i < 64; i++ {
		if conn[i] > o.cn {
			vc = vc.With(i)
		}
	}
	o.vq = o.vq.Union(vc).Intersect(vm)
	o.vh = o.vh.Minus(o.vq).Intersect(vm)
	o.vp = o.vp.Minus(o.vq).Intersect(vm)
	o.cn = nc
}
