package cache

import (
	"fmt"
	"testing"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/vclock"
)

// Growing the table while hidden (not yet swept) objects are chained in
// its buckets must keep them linked so the sweep can still unlink them.
func TestGrowWithHiddenEntries(t *testing.T) {
	fc := vclock.NewFake()
	c := New(Config{
		InitialBuckets: 13,
		SyncSweep:      false, // keep hidden objects around
		Clock:          fc,
	})
	// One object that will be hidden, then force growth before its
	// sweep completes. With async sweep we can't control timing, so use
	// a different trick: hide synchronously via Tick but block the
	// sweep by... simplest: SyncSweep=false and immediately grow by
	// adding entries — the sweep may or may not have run; both paths
	// must leave the table consistent.
	c.Add("/doomed", bitvec.Of(0), 0)
	for i := 0; i < 64; i++ {
		c.Tick()
	}
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("/grow/%d", i), bitvec.Full, 0)
	}
	c.WaitSweeps()
	if _, _, ok := c.Fetch("/doomed", bitvec.Full, 0); ok {
		t.Fatal("hidden object resurfaced after growth")
	}
	for i := 0; i < 100; i++ {
		if _, _, ok := c.Fetch(fmt.Sprintf("/grow/%d", i), bitvec.Full, 0); !ok {
			t.Fatalf("entry %d lost", i)
		}
	}
	if got := c.Stats().Swept; got != 1 {
		t.Errorf("Swept = %d, want 1", got)
	}
}

// Fetch with an empty Vm must mask every vector to empty — a path whose
// exporters all dropped resolves to "nobody".
func TestFetchWithEmptyVm(t *testing.T) {
	c := testCache(vclock.NewFake())
	ref, _, _ := c.Add("/f", bitvec.Of(0, 1), 0)
	c.Update("/f", ref.Hash(), 0, false, false)
	_, v, ok := c.Fetch("/f", bitvec.Empty, 0)
	if !ok {
		t.Fatal("entry vanished")
	}
	if !v.Vh.IsEmpty() || !v.Vp.IsEmpty() || !v.Vq.IsEmpty() {
		t.Fatalf("empty-Vm fetch = %+v", v)
	}
}

// A reference issued before eviction must fail on every mutating call
// after the storage is recycled for another name — and the recycled
// object must be fully clean.
func TestRecycledObjectIsClean(t *testing.T) {
	c := testCache(vclock.NewFake())
	ref, _, _ := c.Add("/old", bitvec.Of(0, 1, 2), 0)
	c.Update("/old", ref.Hash(), 1, false, false)
	c.SetWaiters(ref, false, 42)
	for i := 0; i < 64; i++ {
		c.Tick()
	}
	// Recycle into a new name, chosen to land in the freed object's
	// shard (free lists are per shard).
	newName := sameShardName(t, c, ref.Shard(), "/new")
	_, v, created := c.Add(newName, bitvec.Of(5), 0)
	if !created {
		t.Fatal("expected creation")
	}
	if c.Stats().Reused != 1 {
		t.Fatal("storage not recycled")
	}
	if !v.Vh.IsEmpty() || !v.Vp.IsEmpty() || v.Vq != bitvec.Of(5) {
		t.Fatalf("recycled object carried stale vectors: %+v", v)
	}
	nref, _, _ := c.Fetch(newName, bitvec.Of(5), 0)
	if tok, ok := c.Waiters(nref, false); !ok || tok != 0 {
		t.Fatalf("recycled object carried a stale waiter token: %d", tok)
	}
	// All old-ref operations fail.
	if _, ok := c.ClaimQuery(ref); ok {
		t.Error("stale ref ClaimQuery succeeded")
	}
	if _, ok := c.Refresh(ref, bitvec.Full, -1); ok {
		t.Error("stale ref Refresh succeeded")
	}
	if c.SetWaiters(ref, true, 7) {
		t.Error("stale ref SetWaiters succeeded")
	}
	if c.SwapWaiters(ref, false, 0, 7) {
		t.Error("stale ref SwapWaiters succeeded")
	}
	if c.Evict(ref, 0) {
		t.Error("stale ref Evict succeeded")
	}
}

// An offline server correction interacts with a simultaneous Vm change.
func TestOfflineAndVmShrinkTogether(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1, 2)
	ref, _, _ := c.Add("/f", vm, 0)
	for i := 0; i < 3; i++ {
		c.Update("/f", ref.Hash(), i, false, false)
	}
	// Server 2 dropped (gone from vm), server 0 offline.
	_, v, _ := c.Fetch("/f", bitvec.Of(0, 1), bitvec.Of(0))
	if v.Vh != bitvec.Of(1) {
		t.Errorf("Vh = %v, want {1}", v.Vh)
	}
	if v.Vq != bitvec.Of(0) {
		t.Errorf("Vq = %v, want offline server {0}", v.Vq)
	}
}

// The window clock driven by Run must hide entries at exactly the
// configured cadence.
func TestLifetimeHonoredThroughRun(t *testing.T) {
	fc := vclock.NewFake()
	c := New(Config{
		Lifetime:       64 * time.Second, // 1s windows
		InitialBuckets: 13,
		SyncSweep:      true,
		Clock:          fc,
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { c.Run(stop); close(done) }()
	fc.BlockUntil(1)

	c.Add("/f", bitvec.Of(0), 0)
	// Step the clock one window at a time: a single large Advance would
	// coalesce ticker fires (capacity-1 channel, like time.Ticker).
	for i := 1; i <= 63; i++ {
		fc.Advance(time.Second)
		waitFor(t, func() bool { return c.TickCount() >= uint64(i) })
	}
	if _, _, ok := c.Fetch("/f", bitvec.Full, 0); !ok {
		t.Fatal("expired before lifetime")
	}
	fc.Advance(time.Second)
	waitFor(t, func() bool { return c.Len() == 0 })
	close(stop)
	<-done
}
