package cache

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"scalla/internal/bitvec"
	"scalla/internal/vclock"
)

func TestObjectExpiresAfterFullLifetime(t *testing.T) {
	c := testCache(vclock.NewFake())
	ref, _, _ := c.Add("/f", bitvec.Of(0), 0)

	// 63 ticks: still findable.
	for i := 0; i < 63; i++ {
		c.Tick()
	}
	if _, _, ok := c.Fetch("/f", bitvec.Full, 0); !ok {
		t.Fatal("object vanished before its lifetime elapsed")
	}
	// 64th tick hides and (SyncSweep) removes it.
	c.Tick()
	if _, _, ok := c.Fetch("/f", bitvec.Full, 0); ok {
		t.Fatal("object survived a full lifetime")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after expiry", c.Len())
	}
	st := c.Stats()
	if st.Hidden != 1 || st.Swept != 1 {
		t.Errorf("Hidden/Swept = %d/%d, want 1/1", st.Hidden, st.Swept)
	}

	// The reference is now stale: mutation through it must fail and be
	// counted.
	if ok := c.MarkQueried(ref, bitvec.Of(0)); ok {
		t.Error("stale ref accepted")
	}
	if c.Stats().StaleRefs == 0 {
		t.Error("StaleRefs not counted")
	}
}

func TestStorageReusedNeverFreed(t *testing.T) {
	c := testCache(vclock.NewFake())
	ref, _, _ := c.Add("/old", bitvec.Of(0), 0)
	for i := 0; i < 64; i++ {
		c.Tick()
	}
	// The freed object must satisfy the next allocation in its shard
	// (free lists are per shard, so pick a colliding name).
	newName := sameShardName(t, c, ref.Shard(), "/new")
	c.Add(newName, bitvec.Of(1), 0)
	if got := c.Stats().Reused; got != 1 {
		t.Errorf("Reused = %d, want 1", got)
	}
	if _, _, ok := c.Fetch(newName, bitvec.Full, 0); !ok {
		t.Fatal("recycled object not findable under new name")
	}
	if _, _, ok := c.Fetch("/old", bitvec.Full, 0); ok {
		t.Fatal("old name still findable after recycling")
	}
}

func TestEachTickTouchesOnlyOneWindow(t *testing.T) {
	c := testCache(vclock.NewFake())
	// Fill 64 windows with 10 objects each.
	for w := 0; w < 64; w++ {
		for i := 0; i < 10; i++ {
			c.Add(fmt.Sprintf("/w%d/f%d", w, i), bitvec.Full, 0)
		}
		c.Tick()
	}
	// Adds happened in windows 0..63; after 64 ticks the window-0 batch
	// has just expired (it aged exactly Lt).
	if c.Len() != 63*10 {
		t.Fatalf("Len = %d, want 630", c.Len())
	}
	before := c.Stats().Hidden
	c.Tick()
	hidden := c.Stats().Hidden - before
	if hidden != 10 {
		t.Errorf("tick hid %d objects, want exactly one window's 10", hidden)
	}
}

func TestRefreshDefersRechain(t *testing.T) {
	c := testCache(vclock.NewFake())
	ref, _, _ := c.Add("/f", bitvec.Of(0), 0)
	// Advance 10 windows, then refresh: Ta moves, chain membership not.
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if _, ok := c.Refresh(ref, bitvec.Of(0), -1); !ok {
		t.Fatal("refresh failed")
	}
	lens := c.WindowLens()
	if lens[0] != 1 {
		t.Fatalf("object left its original chain early: %v", lens)
	}
	if c.Stats().Rechained != 0 {
		t.Error("rechain happened before the sweep")
	}

	// Survives the tick that would have expired its original window
	// (54 more ticks → original window 0 expires at tick 64).
	for i := 0; i < 54; i++ {
		c.Tick()
	}
	if _, _, ok := c.Fetch("/f", bitvec.Full, 0); !ok {
		t.Fatal("refreshed object expired with its original window")
	}
	if c.Stats().Rechained != 1 {
		t.Errorf("Rechained = %d, want 1 (moved during sweep)", c.Stats().Rechained)
	}
	lens = c.WindowLens()
	if lens[10] != 1 {
		t.Errorf("object not in its refreshed window chain: %v", lens)
	}

	// And it expires 64 ticks after the refresh (tick 74 overall).
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if _, _, ok := c.Fetch("/f", bitvec.Full, 0); ok {
		t.Fatal("refreshed object never expired")
	}
}

func TestEagerRechainMovesImmediately(t *testing.T) {
	c := New(Config{
		InitialBuckets: 13,
		SyncSweep:      true,
		EagerRechain:   true,
		Clock:          vclock.NewFake(),
	})
	ref, _, _ := c.Add("/f", bitvec.Of(0), 0)
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	c.Refresh(ref, bitvec.Of(0), -1)
	lens := c.WindowLens()
	if lens[0] != 0 || lens[5] != 1 {
		t.Errorf("eager rechain did not move the object: %v", lens)
	}
	if c.Stats().Rechained != 1 {
		t.Errorf("Rechained = %d, want 1", c.Stats().Rechained)
	}
}

func TestRefreshResetsStateAndAvoidsFailingServer(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1, 2)
	ref, _, _ := c.Add("/f", vm, 0)
	c.Update("/f", ref.Hash(), 0, false, false)
	v, ok := c.Refresh(ref, vm, 0) // server 0 reported failing
	if !ok {
		t.Fatal("refresh failed")
	}
	if !v.Vh.IsEmpty() || !v.Vp.IsEmpty() {
		t.Error("refresh must clear Vh/Vp")
	}
	if v.Vq != bitvec.Of(1, 2) {
		t.Errorf("Vq = %v, want {1,2} (failing server avoided)", v.Vq)
	}
}

func TestBackgroundSweepEventuallyRemoves(t *testing.T) {
	c := New(Config{InitialBuckets: 13, SyncSweep: false, Clock: vclock.NewFake()})
	c.Add("/f", bitvec.Of(0), 0)
	for i := 0; i < 64; i++ {
		c.Tick()
	}
	// Hidden synchronously even though sweep is async.
	if _, _, ok := c.Fetch("/f", bitvec.Full, 0); ok {
		t.Fatal("hidden object still findable")
	}
	c.WaitSweeps()
	if got := c.Stats().Swept; got != 1 {
		t.Errorf("Swept = %d, want 1", got)
	}
}

func TestRunTicksOffClock(t *testing.T) {
	fc := vclock.NewFake()
	c := New(Config{
		Lifetime:       64 * time.Minute, // 1-minute windows
		InitialBuckets: 13,
		SyncSweep:      true,
		Clock:          fc,
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		c.Run(stop)
		close(done)
	}()
	fc.BlockUntil(1)
	fc.Advance(time.Minute)
	waitFor(t, func() bool { return c.TickCount() == 1 })
	fc.Advance(2 * time.Minute)
	waitFor(t, func() bool { return c.TickCount() >= 2 })
	close(stop)
	<-done
}

func TestDumpRendersState(t *testing.T) {
	c := testCache(vclock.NewFake())
	for w := 0; w < 4; w++ {
		for i := 0; i < 5; i++ {
			c.Add(fmt.Sprintf("/w%d/f%d", w, i), bitvec.Full, 0)
		}
		c.Tick()
	}
	out := c.Dump(0)
	if !strings.Contains(out, "hash table:") || !strings.Contains(out, "eviction windows") {
		t.Errorf("Dump = %q", out)
	}
	if !strings.Contains(out, "Tw=4") {
		t.Errorf("Dump missing clock state: %q", out)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
