package cache

import (
	"testing"

	"scalla/internal/bitvec"
	"scalla/internal/vclock"
)

// Case 4 of Section III-A4: a server that connects after an object was
// cached must be added to Vq on the next fetch.
func TestNewServerAddedToVq(t *testing.T) {
	c := testCache(vclock.NewFake())
	vmOld := bitvec.Of(0, 1)
	ref, _, _ := c.Add("/f", vmOld, 0)
	c.Update("/f", ref.Hash(), 0, false, false)
	c.Update("/f", ref.Hash(), 1, false, false)

	// Server 2 connects and exports the file's path: Vm widens.
	c.ServerConnected(2)
	vmNew := bitvec.Of(0, 1, 2)
	_, v, _ := c.Fetch("/f", vmNew, 0)
	if !v.Vq.Has(2) {
		t.Errorf("new server missing from Vq: %+v", v)
	}
	if !v.Vh.Has(0) || !v.Vh.Has(1) {
		t.Errorf("existing holders lost: %+v", v)
	}
	if c.Stats().CorrApplied != 1 {
		t.Errorf("CorrApplied = %d, want 1", c.Stats().CorrApplied)
	}

	// Second fetch with unchanged configuration: no further correction.
	_, _, _ = c.Fetch("/f", vmNew, 0)
	if c.Stats().CorrApplied != 1 {
		t.Error("correction re-applied despite unchanged Nc")
	}
}

// Case 3: an un-dropped server reconnecting is a new connect epoch; its
// cached "have" bit may be stale (files could have changed while away),
// so it must be re-queried.
func TestReconnectedServerMovedBackToVq(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1)
	ref, _, _ := c.Add("/f", vm, 0)
	c.Update("/f", ref.Hash(), 0, false, false)
	c.Update("/f", ref.Hash(), 1, false, false)

	c.ServerConnected(1) // reconnect bumps C[1] past the object's Cn
	_, v, _ := c.Fetch("/f", vm, 0)
	if !v.Vq.Has(1) {
		t.Error("reconnected server not re-queried")
	}
	if v.Vh.Has(1) {
		t.Error("reconnected server still trusted in Vh")
	}
	if !v.Vh.Has(0) {
		t.Error("unaffected server lost from Vh")
	}
}

// Case 2: a dropped server disappears from Vm; masking must erase it
// from every vector.
func TestDroppedServerMaskedOut(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1)
	ref, _, _ := c.Add("/f", vm, 0)
	c.Update("/f", ref.Hash(), 0, false, false)

	vmAfterDrop := bitvec.Of(1)
	_, v, _ := c.Fetch("/f", vmAfterDrop, 0)
	if v.Vh.Has(0) || v.Vq.Has(0) || v.Vp.Has(0) {
		t.Errorf("dropped server survived masking: %+v", v)
	}
}

// Case 1: an offline (disconnected, not dropped) server cannot serve
// clients; its bits move from Vh/Vp to Vq.
func TestOfflineServerMovedToVq(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1)
	ref, _, _ := c.Add("/f", vm, 0)
	c.Update("/f", ref.Hash(), 0, false, false)
	c.Update("/f", ref.Hash(), 1, true, false) // staging on 1

	offline := bitvec.Of(0, 1)
	_, v, _ := c.Fetch("/f", vm, offline)
	if v.Vh.Has(0) || v.Vp.Has(1) {
		t.Errorf("offline servers still in Vh/Vp: %+v", v)
	}
	if !v.Vq.Has(0) || !v.Vq.Has(1) {
		t.Errorf("offline servers not queued for re-query: %+v", v)
	}
}

// The Vwc/Cwn memoization: many objects cached in the same window share
// Cn, so after one correction computes Vc the rest hit the memo.
func TestCorrectionMemoSharedWithinWindow(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0, 1)
	for i := 0; i < 100; i++ {
		ref, _, _ := c.Add(name(i), vm, 0)
		c.Update(name(i), ref.Hash(), 0, false, false)
	}
	c.ServerConnected(1)
	shards := map[int]bool{}
	for i := 0; i < 100; i++ {
		ref, _, ok := c.Fetch(name(i), vm.With(1), 0)
		if !ok {
			t.Fatalf("Fetch(%q) missed", name(i))
		}
		shards[ref.Shard()] = true
	}
	st := c.Stats()
	if st.CorrApplied != 100 {
		t.Fatalf("CorrApplied = %d, want 100", st.CorrApplied)
	}
	// The memo is per shard per window: the first fetch landing in each
	// touched shard computes Vwc, every later one reuses it.
	want := int64(100 - len(shards))
	if st.CorrMemoHit != want {
		t.Errorf("CorrMemoHit = %d, want %d (first fetch per shard computes, rest reuse)", st.CorrMemoHit, want)
	}
}

// A second configuration change invalidates the memo (atNc mismatch).
func TestCorrectionMemoInvalidatedByNewEpoch(t *testing.T) {
	c := testCache(vclock.NewFake())
	vm := bitvec.Of(0)
	c.Add("/a", vm, 0)
	c.Add("/b", vm, 0)

	c.ServerConnected(1)
	c.Fetch("/a", vm.With(1), 0) // computes memo at Nc=1
	c.ServerConnected(2)
	c.Fetch("/b", vm.With(1).With(2), 0) // Nc=2: memo stale, recompute
	st := c.Stats()
	if st.CorrMemoHit != 0 {
		t.Errorf("CorrMemoHit = %d, want 0", st.CorrMemoHit)
	}
	if st.CorrApplied != 2 {
		t.Errorf("CorrApplied = %d, want 2", st.CorrApplied)
	}
}

func name(i int) string {
	return "/store/run/file-" + string(rune('a'+i%26)) + "-" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestServerConnectedIgnoresBadIndex(t *testing.T) {
	c := testCache(vclock.NewFake())
	c.ServerConnected(-1)
	c.ServerConnected(64)
	if c.Epoch() != 0 {
		t.Error("bad indices must not advance Nc")
	}
	c.ServerConnected(0)
	if c.Epoch() != 1 {
		t.Error("Nc not advanced")
	}
}
