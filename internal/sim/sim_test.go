package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDepth(t *testing.T) {
	cases := []struct {
		servers int64
		fanout  int
		want    int
	}{
		{1, 64, 1},
		{64, 64, 1},
		{65, 64, 2},
		{4096, 64, 2},
		{4097, 64, 3},
		{262144, 64, 3},
		{16777216, 64, 4},
		{1024, 2, 10},
	}
	for _, c := range cases {
		p := Params{Servers: c.servers, Fanout: c.fanout}
		if got := p.Depth(); got != c.want {
			t.Errorf("Depth(%d servers, fanout %d) = %d, want %d", c.servers, c.fanout, got, c.want)
		}
	}
}

func TestRedirectors(t *testing.T) {
	// 4096 servers at fanout 64: 64 supervisors + 1 manager.
	p := Params{Servers: 4096, Fanout: 64}
	if got := p.Redirectors(); got != 65 {
		t.Errorf("Redirectors = %d, want 65", got)
	}
	// 64 servers: just the manager.
	p = Params{Servers: 64, Fanout: 64}
	if got := p.Redirectors(); got != 1 {
		t.Errorf("Redirectors = %d, want 1", got)
	}
}

func TestEvaluateWarmScalesLogarithmically(t *testing.T) {
	base := Params{Fanout: 64, Hop: 50 * time.Microsecond}
	var prev Result
	for i, servers := range []int64{64, 4096, 262144, 16777216} {
		p := base
		p.Servers = servers
		r := Evaluate(p)
		if r.Depth != i+1 {
			t.Fatalf("servers=%d depth=%d, want %d", servers, r.Depth, i+1)
		}
		if i > 0 {
			// Each 64x growth adds exactly one level's cost.
			delta := r.WarmLatency - prev.WarmLatency
			if delta != Evaluate(Params{Servers: 64, Fanout: 64, Hop: 50 * time.Microsecond}).WarmLatency {
				t.Errorf("level increment = %v, want one level's worth", delta)
			}
		}
		prev = r
	}
}

func TestEvaluateColdMessagesCountWholeTree(t *testing.T) {
	p := Params{Servers: 4096, Fanout: 64, Replicas: 2}
	r := Evaluate(p)
	// 4096 leaves + 64 supervisors queried, + 2 replicas x 2 levels up.
	if r.ColdMessages != 4096+64+4 {
		t.Errorf("ColdMessages = %d", r.ColdMessages)
	}
	if r.WarmMessages != 4 {
		t.Errorf("WarmMessages = %d", r.WarmMessages)
	}
}

// Property: warm latency is monotone in depth and independent of server
// count within a depth band.
func TestPropWarmDependsOnlyOnDepth(t *testing.T) {
	f := func(rawA, rawB uint32) bool {
		a := Params{Servers: int64(rawA%4000) + 65, Fanout: 64} // depth 2 band
		b := Params{Servers: int64(rawB%4000) + 65, Fanout: 64}
		return Evaluate(a).WarmLatency == Evaluate(b).WarmLatency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentilesMonotone(t *testing.T) {
	p := Params{Servers: 262144, Fanout: 64, Jitter: 0.25}
	qs := Percentiles(p, 5000, 1, 0.5, 0.9, 0.99)
	if !(qs[0] <= qs[1] && qs[1] <= qs[2]) {
		t.Errorf("percentiles not monotone: %v", qs)
	}
	det := Evaluate(p).WarmLatency
	if qs[0] < det/2 || qs[0] > det*2 {
		t.Errorf("p50 %v far from deterministic %v", qs[0], det)
	}
}

func TestPercentilesNoJitterDeterministic(t *testing.T) {
	p := Params{Servers: 4096, Fanout: 64}
	qs := Percentiles(p, 100, 1, 0.5, 0.99)
	if qs[0] != qs[1] {
		t.Errorf("jitterless percentiles differ: %v", qs)
	}
	if qs[0] != Evaluate(p).WarmLatency {
		t.Errorf("jitterless p50 %v != deterministic %v", qs[0], Evaluate(p).WarmLatency)
	}
}

func TestFanoutAblation(t *testing.T) {
	// The footnote-2 claim: small fanouts explode depth (latency),
	// huge fanouts collapse it but stress per-node state; 64 sits at
	// depth 3-4 for realistic cluster sizes.
	servers := int64(1_000_000)
	d2 := Evaluate(Params{Servers: servers, Fanout: 2}).Depth
	d64 := Evaluate(Params{Servers: servers, Fanout: 64}).Depth
	d1024 := Evaluate(Params{Servers: servers, Fanout: 1024}).Depth
	if d2 != 20 || d64 != 4 || d1024 != 2 {
		t.Errorf("depths = %d/%d/%d, want 20/4/2", d2, d64, d1024)
	}
}
