// Package sim is an analytical + Monte-Carlo model of Scalla
// resolution at cluster sizes no test rig can instantiate (the paper
// claims O(log64 N) location time "in any sized cluster", Section
// II-B1, and footnote 2 calls the choice of set size crucial).
//
// The model captures the protocol's structure exactly:
//
//   - a cached (warm) resolution crosses one redirector per level:
//     latency = Σ per-level (request hop + cache look-up + reply hop);
//     messages = 2 per level;
//   - an uncached (cold) resolution floods the whole subtree below the
//     first level that has no cached knowledge: every node receives one
//     query, holders answer, and the answers compress upward (one Have
//     per supervisor); latency = depth × hop + leaf look-up + response
//     path, because the flood proceeds in parallel;
//   - the tree has ceil(log_fanout N) levels and (N·f/(f−1))-ish nodes.
//
// Hop latencies can be jittered to produce percentiles.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Params parameterizes a simulated cluster and its workload.
type Params struct {
	// Servers is the number of leaf data servers.
	Servers int64
	// Fanout is the cluster set size (the paper's 64).
	Fanout int
	// Hop is the one-way network latency between adjacent levels.
	Hop time.Duration
	// CacheLookup is the per-redirector location-cache cost.
	CacheLookup time.Duration
	// LeafLookup is a data server's local check for a queried file.
	LeafLookup time.Duration
	// Replicas is how many servers hold a requested file.
	Replicas int
	// Jitter is the relative standard deviation applied to each latency
	// component in Monte-Carlo mode (e.g. 0.2 = 20%).
	Jitter float64
}

func (p Params) withDefaults() Params {
	if p.Fanout <= 0 {
		p.Fanout = 64
	}
	if p.Hop <= 0 {
		p.Hop = 50 * time.Microsecond
	}
	if p.CacheLookup <= 0 {
		p.CacheLookup = 5 * time.Microsecond
	}
	if p.LeafLookup <= 0 {
		p.LeafLookup = 20 * time.Microsecond
	}
	if p.Replicas <= 0 {
		p.Replicas = 1
	}
	return p
}

// Depth returns the number of redirector levels above the servers.
func (p Params) Depth() int {
	p = p.withDefaults()
	if p.Servers <= 1 {
		return 1
	}
	d := int(math.Ceil(math.Log(float64(p.Servers)) / math.Log(float64(p.Fanout))))
	if d < 1 {
		d = 1
	}
	return d
}

// Redirectors returns the number of manager+supervisor nodes the tree
// needs (the non-leaf nodes of a Fanout-ary tree over Servers leaves).
func (p Params) Redirectors() int64 {
	p = p.withDefaults()
	var total int64
	width := p.Servers
	for width > 1 {
		width = (width + int64(p.Fanout) - 1) / int64(p.Fanout)
		total += width
	}
	if total == 0 {
		total = 1
	}
	return total
}

// Result summarizes one configuration.
type Result struct {
	Depth        int
	Redirectors  int64
	WarmLatency  time.Duration // cached resolution, deterministic
	ColdLatency  time.Duration // first-access resolution, deterministic
	WarmMessages int64         // request+reply per level
	ColdMessages int64         // full-subtree flood + compressed responses
}

// Evaluate computes the deterministic model.
func Evaluate(p Params) Result {
	p = p.withDefaults()
	d := p.Depth()
	warm := time.Duration(d) * (2*p.Hop + p.CacheLookup)

	// Cold: the request reaches the manager (hop), each level forwards
	// the flood (hop per level, in parallel across branches), leaves
	// check locally, a holder's response climbs back up (hop per
	// level, compressed at each supervisor), and the redirect returns
	// to the client. Every level's cache does one look-up on the way
	// down and one update on the way up.
	down := time.Duration(d)*p.Hop + time.Duration(d)*p.CacheLookup
	up := time.Duration(d)*p.Hop + time.Duration(d)*p.CacheLookup
	cold := p.Hop + down + p.LeafLookup + up + p.Hop

	// Messages: one query per tree edge below the manager (every node
	// is asked once) plus one compressed positive response per level on
	// each holder's path up.
	queries := p.Servers + p.Redirectors() - 1 // every node except the manager receives one query
	responses := int64(p.Replicas) * int64(d)
	return Result{
		Depth:        d,
		Redirectors:  p.Redirectors(),
		WarmLatency:  warm,
		ColdLatency:  cold,
		WarmMessages: int64(2 * d),
		ColdMessages: queries + responses,
	}
}

// Percentiles runs trials Monte-Carlo warm resolutions with jittered
// component latencies and returns the requested percentiles.
func Percentiles(p Params, trials int, seed int64, qs ...float64) []time.Duration {
	p = p.withDefaults()
	if trials <= 0 {
		trials = 10000
	}
	r := rand.New(rand.NewSource(seed))
	d := p.Depth()
	samples := make([]time.Duration, trials)
	jit := func(base time.Duration) time.Duration {
		if p.Jitter <= 0 {
			return base
		}
		f := 1 + r.NormFloat64()*p.Jitter
		if f < 0.1 {
			f = 0.1
		}
		return time.Duration(float64(base) * f)
	}
	for t := 0; t < trials; t++ {
		var total time.Duration
		for lvl := 0; lvl < d; lvl++ {
			total += jit(p.Hop) + jit(p.CacheLookup) + jit(p.Hop)
		}
		samples[t] = total
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		idx := int(q * float64(trials-1))
		out[i] = samples[idx]
	}
	return out
}

// String renders a result compactly.
func (r Result) String() string {
	return fmt.Sprintf("depth=%d redirectors=%d warm=%v cold=%v warmMsgs=%d coldMsgs=%d",
		r.Depth, r.Redirectors, r.WarmLatency, r.ColdLatency, r.WarmMessages, r.ColdMessages)
}
