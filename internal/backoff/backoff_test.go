package backoff

import (
	"testing"
	"time"
)

// TestJitterBounds is the satellite table-driven check: every delay a
// schedule hands out must lie inside [nominal·(1−j), nominal·(1+j)] for
// its attempt number, with the nominal value growing by Factor and
// saturating at Max.
func TestJitterBounds(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
	}{
		{"defaults", Policy{}},
		{"tight", Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0.1}},
		{"wide jitter", Policy{Base: 5 * time.Millisecond, Max: time.Second, Factor: 3, Jitter: 0.9}},
		{"no jitter", Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Factor: 2, Jitter: 0}},
		{"factor one", Policy{Base: 15 * time.Millisecond, Max: time.Second, Factor: 1, Jitter: 0.5}},
		{"instant cap", Policy{Base: 80 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 4, Jitter: 0.25}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.p.withDefaults()
			for seed := int64(0); seed < 5; seed++ {
				b := New(tc.p, seed)
				for n := 0; n < 12; n++ {
					d := b.Next()
					nominal := float64(p.Nominal(n))
					lo := time.Duration(nominal * (1 - p.Jitter))
					hi := time.Duration(nominal * (1 + p.Jitter))
					if d < lo || d > hi {
						t.Fatalf("seed %d attempt %d: delay %v outside [%v, %v]",
							seed, n, d, lo, hi)
					}
				}
			}
		})
	}
}

// TestNominalSaturatesAtMax pins the growth curve: doubling from Base
// until Max, then flat.
func TestNominalSaturatesAtMax(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 75 * time.Millisecond, Factor: 2, Jitter: 0.2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		75 * time.Millisecond, 75 * time.Millisecond,
	}
	for n, w := range want {
		if got := p.Nominal(n); got != w {
			t.Errorf("Nominal(%d) = %v, want %v", n, got, w)
		}
	}
}

// TestDeterministicUnderSeed verifies that equal seeds reproduce the
// exact schedule and different seeds diverge (the chaos harness relies
// on reproducibility).
func TestDeterministicUnderSeed(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	a, b := New(p, 42), New(p, 42)
	c := New(p, 43)
	same, diff := true, true
	for i := 0; i < 16; i++ {
		da, db, dc := a.Next(), b.Next(), c.Next()
		if da != db {
			same = false
		}
		if da != dc {
			diff = false
		}
	}
	if !same {
		t.Error("equal seeds produced different schedules")
	}
	if diff {
		t.Error("different seeds produced identical schedules")
	}
}

// TestResetRewindsAttempt checks Reset returns the schedule to Base-level
// delays after a success.
func TestResetRewindsAttempt(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0}
	b := New(p, 1)
	for i := 0; i < 4; i++ {
		b.Next()
	}
	if b.Attempt() != 4 {
		t.Fatalf("Attempt = %d, want 4", b.Attempt())
	}
	b.Reset()
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("post-Reset delay = %v, want Base", d)
	}
}
