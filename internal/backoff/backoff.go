// Package backoff implements jittered exponential backoff for the
// recovery paths of Scalla's client and cmsd layers.
//
// The paper's availability story (Sections III-C1/C2) is client-driven:
// when a server dies or a location goes stale, the client retries
// through the manager rather than any server-side repair taking place.
// Retries that are not paced amplify the very failure they respond to —
// a dead manager replica would be hammered by every client in lockstep.
// This package provides the standard remedy: exponential growth with a
// deterministic, seedable jitter so retry storms decorrelate, yet every
// schedule is reproducible under a fixed seed (the chaos suite depends
// on that).
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Policy describes a backoff schedule. The zero value is usable; New
// applies the documented defaults.
type Policy struct {
	// Base is the nominal delay before the first retry. Default 50 ms.
	Base time.Duration
	// Max caps the nominal (pre-jitter) delay. Default 5 s.
	Max time.Duration
	// Factor is the per-attempt growth multiplier. Default 2.
	Factor float64
	// Jitter is the symmetric jitter fraction in [0, 1): attempt n's
	// delay is drawn uniformly from
	//   [nominal(n)·(1−Jitter), nominal(n)·(1+Jitter)]
	// where nominal(n) = min(Base·Factor^n, Max). Default 0.2.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	return p
}

// Nominal returns the pre-jitter delay for attempt n (0-based):
// min(Base·Factor^n, Max). Exported so tests can assert jitter bounds
// against the exact nominal value.
func (p Policy) Nominal(n int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < n; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			return p.Max
		}
	}
	if d > float64(p.Max) {
		return p.Max
	}
	return time.Duration(d)
}

// Backoff produces one retry schedule. It is safe for concurrent use,
// though a schedule is normally owned by one retry loop.
type Backoff struct {
	p Policy

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// New returns a Backoff following p, drawing jitter from a deterministic
// generator seeded with seed (equal seeds produce equal schedules).
func New(p Policy, seed int64) *Backoff {
	return &Backoff{p: p.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to wait before the next attempt and advances
// the schedule. The first call corresponds to attempt 0.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	nominal := float64(b.p.Nominal(b.attempt))
	b.attempt++
	if b.p.Jitter == 0 {
		return time.Duration(nominal)
	}
	// Uniform in [nominal·(1−j), nominal·(1+j)].
	f := 1 - b.p.Jitter + 2*b.p.Jitter*b.rng.Float64()
	return time.Duration(nominal * f)
}

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Reset rewinds the schedule to attempt 0 (called after a success so the
// next failure starts from Base again). The jitter stream is not rewound;
// determinism is over the whole sequence of draws.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}
