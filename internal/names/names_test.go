package names

import (
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestHashMatchesCRC32(t *testing.T) {
	for _, s := range []string{"", "/a", "/store/data/file.root"} {
		if Hash(s) != crc32.ChecksumIEEE([]byte(s)) {
			t.Errorf("Hash(%q) mismatch", s)
		}
	}
}

func TestClean(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"a", "/a"},
		{"/a/", "/a"},
		{"/a//", "/a"},
		{"/a/b", "/a/b"},
		{"a/b/", "/a/b"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	cases := []struct {
		path, prefix string
		want         bool
	}{
		{"/a/b/c", "/a/b", true},
		{"/a/b", "/a/b", true},
		{"/a/bc", "/a/b", false},
		{"/a", "/a/b", false},
		{"/anything", "/", true},
		{"/", "/", true},
		{"/store/x.root", "/store", true},
		{"/storeroom/x.root", "/store", false},
	}
	for _, c := range cases {
		if got := HasPrefix(c.path, c.prefix); got != c.want {
			t.Errorf("HasPrefix(%q, %q) = %v, want %v", c.path, c.prefix, got, c.want)
		}
	}
}

func TestPrefixSet(t *testing.T) {
	ps := NewPrefixSet("/store", "/data/", "/store")
	if ps.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", ps.Len())
	}
	if !ps.Matches("/store/a/b.root") {
		t.Error("should match /store/a/b.root")
	}
	if !ps.Matches("/data/x") {
		t.Error("should match /data/x")
	}
	if ps.Matches("/other/x") {
		t.Error("should not match /other/x")
	}
}

func TestPrefixSetZeroValueMatchesNothing(t *testing.T) {
	var ps PrefixSet
	if ps.Matches("/a") || ps.Matches("/") {
		t.Error("zero-value PrefixSet must match nothing")
	}
}

func TestPrefixSetEqual(t *testing.T) {
	a := NewPrefixSet("/a", "/b")
	b := NewPrefixSet("/b", "/a/")
	c := NewPrefixSet("/a")
	d := NewPrefixSet("/a", "/c")
	if !a.Equal(b) {
		t.Error("order/cleaning must not matter for Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different sets compared equal")
	}
}

func TestPrefixSetString(t *testing.T) {
	if got := NewPrefixSet("/a", "/b").String(); got != "/a,/b" {
		t.Errorf("String = %q", got)
	}
}

// Property: Clean is idempotent.
func TestPropCleanIdempotent(t *testing.T) {
	f := func(s string) bool { return Clean(Clean(s)) == Clean(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every path matches itself as a prefix, and matches "/".
func TestPropSelfPrefix(t *testing.T) {
	f := func(s string) bool {
		return HasPrefix(s, s) && HasPrefix(s, "/")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: if HasPrefix(p, q) then any extension of p under another
// component still has prefix q.
func TestPropPrefixExtends(t *testing.T) {
	f := func(s string) bool {
		p := Clean(s)
		return HasPrefix(p+"/child", p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHash(b *testing.B) {
	name := "/store/user/ddmuser/run2012B/AOD/file-000123.root"
	for i := 0; i < b.N; i++ {
		_ = Hash(name)
	}
}

func BenchmarkPrefixMatch(b *testing.B) {
	ps := NewPrefixSet("/store", "/data", "/user", "/tmp")
	for i := 0; i < b.N; i++ {
		_ = ps.Matches("/user/abh/analysis/ntuple-99.root")
	}
}
