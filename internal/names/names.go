// Package names implements file-name hashing and path-prefix matching.
//
// The cache keys location objects by a CRC32 encoding of the file name
// (paper Section III-A1). Managers and supervisors treat paths as simple
// prefixes of a flat namespace (Section II-B4): a server "exports" a set
// of path prefixes at login and is eligible for any file whose path falls
// under one of them.
package names

import (
	"hash/crc32"
	"strings"
	"unsafe"
)

// Hash returns the CRC32 (IEEE) key for a file name, exactly the keying
// the paper prescribes for the location hash table.
//
// The string's bytes are passed to the checksum without copying: a
// []byte(name) conversion would allocate on every cache look-up, and
// crc32 neither mutates nor retains its input, so the aliasing is safe.
func Hash(name string) uint32 {
	if len(name) == 0 {
		return crc32.ChecksumIEEE(nil)
	}
	return crc32.ChecksumIEEE(unsafe.Slice(unsafe.StringData(name), len(name)))
}

// Clean normalizes a path for prefix matching: it guarantees a single
// leading slash and strips any trailing slash (except for the root "/").
// Unlike POSIX path cleaning it does NOT resolve "." or ".." — the
// manager-level namespace is flat and treats paths as opaque prefixes.
func Clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	for len(p) > 1 && strings.HasSuffix(p, "/") {
		p = p[:len(p)-1]
	}
	return p
}

// HasPrefix reports whether path falls under prefix in the flat-namespace
// sense: prefix "/a/b" matches "/a/b" itself and anything under
// "/a/b/...", but not "/a/bc". The root prefix "/" matches everything.
func HasPrefix(path, prefix string) bool {
	path, prefix = Clean(path), Clean(prefix)
	if prefix == "/" {
		return true
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// PrefixSet is an ordered set of cleaned path prefixes, as declared by a
// server at login time. The zero value is an empty set that matches
// nothing.
type PrefixSet struct {
	prefixes []string
}

// NewPrefixSet builds a PrefixSet from the given prefixes, cleaning each
// and dropping duplicates while preserving first-seen order.
func NewPrefixSet(prefixes ...string) PrefixSet {
	var ps PrefixSet
	seen := make(map[string]bool, len(prefixes))
	for _, p := range prefixes {
		c := Clean(p)
		if !seen[c] {
			seen[c] = true
			ps.prefixes = append(ps.prefixes, c)
		}
	}
	return ps
}

// Matches reports whether path falls under any prefix in the set.
func (ps PrefixSet) Matches(path string) bool {
	for _, p := range ps.prefixes {
		if HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Prefixes returns the cleaned prefixes in first-seen order. The returned
// slice must not be modified.
func (ps PrefixSet) Prefixes() []string { return ps.prefixes }

// Len returns the number of prefixes in the set.
func (ps PrefixSet) Len() int { return len(ps.prefixes) }

// Equal reports whether two sets contain exactly the same prefixes,
// regardless of order. The paper uses this at reconnect time: a server
// that reconnects within the drop window but with a different export set
// must be treated as a brand-new server.
func (ps PrefixSet) Equal(o PrefixSet) bool {
	if len(ps.prefixes) != len(o.prefixes) {
		return false
	}
	seen := make(map[string]bool, len(ps.prefixes))
	for _, p := range ps.prefixes {
		seen[p] = true
	}
	for _, p := range o.prefixes {
		if !seen[p] {
			return false
		}
	}
	return true
}

// String renders the set as a comma-separated list.
func (ps PrefixSet) String() string { return strings.Join(ps.prefixes, ",") }
