package detsim

import (
	"testing"
	"time"

	"scalla/internal/faults"
)

func quickTreeCfg(seed int64) TreeConfig {
	return TreeConfig{
		Seed:    seed,
		Servers: 1024,
		Fanout:  16,
	}
}

func TestTreeTopology(t *testing.T) {
	res := RunTree(quickTreeCfg(1))
	if res.Levels != 3 {
		t.Errorf("1024 servers at fanout 16: levels = %d, want 3 (depth-4 tree)", res.Levels)
	}
	if res.Cores != 1+4+64 {
		t.Errorf("cores = %d, want 69 (1 manager + 4 + 64 supervisors)", res.Cores)
	}
	if res.Servers != 1024 {
		t.Errorf("servers = %d, want 1024", res.Servers)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Ops != 12 {
		t.Errorf("completed %d ops, want 12", res.Ops)
	}
}

func TestTreeStrictHops(t *testing.T) {
	// In a strict run every completed lookup walks the full redirector
	// chain: a depth-4 resolve is exactly 3 redirect hops.
	res := RunTree(quickTreeCfg(7))
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.HopMax > res.Levels {
		t.Errorf("hop max = %d, want ≤ %d (one redirect per level)", res.HopMax, res.Levels)
	}
	if res.Redirects == 0 || res.Queries == 0 || res.Haves == 0 {
		t.Errorf("vacuous run: redirects=%d queries=%d haves=%d",
			res.Redirects, res.Queries, res.Haves)
	}
}

func TestTreeReplay(t *testing.T) {
	a := RunTree(quickTreeCfg(42))
	b := RunTree(quickTreeCfg(42))
	if a.Hash != b.Hash {
		t.Fatalf("same seed diverged: %s vs %s", a.Hash, b.Hash)
	}
	if a.Steps != b.Steps || a.Ops != b.Ops {
		t.Fatalf("same seed diverged: steps %d/%d ops %d/%d", a.Steps, b.Steps, a.Ops, b.Ops)
	}
}

func TestTreeFaulted(t *testing.T) {
	cfg := quickTreeCfg(3)
	cfg.Plan = faults.Plan{
		Drop: 0.10, Dup: 0.05, Delay: 0.05, Reorder: 0.05,
		DelayMin: 5 * time.Millisecond, DelayMax: 60 * time.Millisecond,
	}
	cfg.Crashes = 8
	cfg.ManagerRestarts = 1
	res := RunTree(cfg)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.MgrRestarts != 1 {
		t.Errorf("manager restarts = %d, want 1", res.MgrRestarts)
	}
}

func TestTreeDepth3Comparison(t *testing.T) {
	// 64 servers at fanout 16 is a depth-3 tree (one supervisor level):
	// the hop ceiling drops with the depth.
	cfg := TreeConfig{Seed: 5, Servers: 64, Fanout: 16}
	res := RunTree(cfg)
	if res.Levels != 2 {
		t.Fatalf("64 servers at fanout 16: levels = %d, want 2", res.Levels)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.HopMax > res.Levels {
		t.Errorf("hop max = %d, want ≤ %d", res.HopMax, res.Levels)
	}
}
