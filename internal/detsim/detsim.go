// Package detsim is a deterministic in-process cluster simulation
// harness: it wires a real cmsd resolution core, real location cache,
// fast response queue, membership table and per-server stores over a
// scheduler-owned transport (transport.SchedConn), drives everything
// from a single vclock.Fake, and model-checks the paper's invariants
// after every scheduler step.
//
// One seeded rand.Rand owns every choice the real system would make
// nondeterministically — frame latency, fault injection, client think
// time, crash timing — and a discrete-event loop owns every delivery
// and timer firing. At any moment exactly one goroutine runs: the
// scheduler, one stepped client resolution, or one hand-shaken server
// process. A seed therefore fully determines the execution, and the
// obs.TraceHash over the event trace is the replay assertion: same
// seed, same hash, byte for byte (DESIGN.md §7).
//
// The invariants checked after each step:
//
//  1. Vector disjointness: for every cached location object,
//     Vq ∩ (Vh ∪ Vp) = ∅ and Vh ∩ Vp = ∅.
//  2. Flood uniqueness: at most one live query flood per path inside
//     the processing deadline (client-forced refreshes excepted — a
//     refresh deliberately re-floods while an earlier flood may still
//     be outstanding).
//  3. Fast-queue conservation, in entries (Entries = Released +
//     Expired + InUse) and in waiters (Entries + Joins =
//     ReleasedWaiters + ExpiredWaiters + parked clients).
//  4. Exactly-once waiter delivery: every release/expiry hands the
//     result to exactly the parked clients it claims to, which the
//     scheduler verifies by collecting exactly that many resolution
//     completions before taking another step.
//  5. Eventual resolution: every client operation completes within a
//     configurable bound, and no client is left parked when the event
//     queue drains.
//
// Redirect outcomes are additionally validated against a ground-truth
// file model: a redirect must name an online member that actually
// holds (or is staging) the file. In strict runs — no fault plan, no
// crashes — a noent for a file the model knows to exist is also a
// violation.
package detsim

import (
	"io"
	"time"

	"scalla/internal/faults"
)

// Config parameterizes one simulated run. The zero value of every
// field gets a sensible default; Seed selects the execution.
type Config struct {
	// Seed fully determines the run.
	Seed int64

	// Servers is the number of data servers (max 16, the flood fan-out
	// of one supervisor in the paper). Default 4.
	Servers int
	// Clients is the number of concurrent client processes. Default 4.
	Clients int
	// OpsPerClient is how many operations each client performs.
	// Default 6.
	OpsPerClient int
	// Paths is the size of the pre-loaded namespace clients read from.
	// Default 12.
	Paths int
	// Slots sizes the fast response queue. Default 64.
	Slots int

	// MinLatency and MaxLatency bound the one-way frame latency drawn
	// per delivery. Defaults 1 ms and 15 ms.
	MinLatency time.Duration
	MaxLatency time.Duration

	// Plan, when active, injects frame faults (drop/dup/delay/reorder)
	// using the scheduler's RNG. Reordering is modeled as an extra
	// latency draw, which displaces the frame past later traffic.
	Plan faults.Plan
	// Crashes is how many server crash/restart cycles to schedule.
	Crashes int
	// RestartDelay is how long a crashed server stays down. Default 10 s.
	RestartDelay time.Duration

	// FullDelay is the paper's full delay (and processing deadline).
	// Default 5 s.
	FullDelay time.Duration
	// Period is the fast-response clock period. Default 133 ms.
	Period time.Duration
	// Lifetime is the location-object lifetime (shrunk so window ticks
	// actually happen inside a run). Default 1 minute.
	Lifetime time.Duration
	// DropDelay is the grace between a member going offline and its
	// slot being dropped. Default 30 s.
	DropDelay time.Duration

	// MaxOpTime bounds one client operation end to end; exceeding it is
	// an eventual-resolution violation. Default 2 minutes.
	MaxOpTime time.Duration
	// MaxSimTime bounds the simulated clock; events past it are not
	// executed and unfinished clients are reported as stalled.
	// Default 10 minutes.
	MaxSimTime time.Duration

	// Debug, when non-nil, receives every trace line as it is hashed.
	Debug io.Writer
}

func (c Config) withDefaults() Config {
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.Servers > 16 {
		c.Servers = 16
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 6
	}
	if c.Paths <= 0 {
		c.Paths = 12
	}
	if c.Slots <= 0 {
		c.Slots = 64
	}
	if c.MinLatency <= 0 {
		c.MinLatency = time.Millisecond
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = 15 * time.Millisecond
	}
	if c.MaxLatency < c.MinLatency {
		c.MaxLatency = c.MinLatency
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 10 * time.Second
	}
	if c.FullDelay <= 0 {
		c.FullDelay = 5 * time.Second
	}
	if c.Period <= 0 {
		c.Period = 133 * time.Millisecond
	}
	if c.Lifetime <= 0 {
		c.Lifetime = time.Minute
	}
	if c.DropDelay <= 0 {
		c.DropDelay = 30 * time.Second
	}
	if c.MaxOpTime <= 0 {
		c.MaxOpTime = 2 * time.Minute
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 10 * time.Minute
	}
	return c
}

// strict reports whether the run is fault-free and crash-free, which
// arms the stronger invariants (no spurious noent, prompt resolution).
func (c Config) strict() bool {
	return !c.Plan.Active() && c.Crashes == 0
}

// Result summarizes one run.
type Result struct {
	Seed  int64
	Hash  string // trace digest; the replay assertion
	Lines int    // trace lines hashed
	Steps int    // scheduler steps executed

	Ops       int // client operations completed
	Redirects int
	Waits     int
	NoEnts    int
	Retries   int
	Crashed   int // crash events that took a server down
	Staged    int // staging promotions

	// Violations holds every invariant violation observed, in the
	// deterministic order the scheduler found them. Empty means the
	// run model-checked clean.
	Violations []string
}

// Run executes one simulation to completion and returns its summary.
func Run(cfg Config) Result {
	s := newSim(cfg.withDefaults())
	return s.run()
}
