package detsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"scalla/internal/faults"
)

// testPlan is the fault schedule the package tests compose in: a mix
// heavy enough to force expiries, refloods, and duplicate releases.
func testPlan() faults.Plan {
	return faults.Plan{
		Drop: 0.10, Dup: 0.05, Delay: 0.05, Reorder: 0.05,
		DelayMin: 5 * time.Millisecond, DelayMax: 60 * time.Millisecond,
	}
}

func TestReplayIsByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := Run(Config{Seed: seed})
		b := Run(Config{Seed: seed})
		if a.Hash != b.Hash || a.Lines != b.Lines {
			t.Errorf("seed %d: strict replay diverged: %s (%d lines) vs %s (%d lines)",
				seed, a.Hash, a.Lines, b.Hash, b.Lines)
		}
		c := Run(Config{Seed: seed, Plan: testPlan(), Crashes: 2})
		d := Run(Config{Seed: seed, Plan: testPlan(), Crashes: 2})
		if c.Hash != d.Hash {
			t.Errorf("seed %d: faulty replay diverged: %s vs %s", seed, c.Hash, d.Hash)
		}
		if a.Hash == c.Hash {
			t.Errorf("seed %d: fault schedule did not change the execution", seed)
		}
	}
}

func TestSeedsProduceDistinctExecutions(t *testing.T) {
	a := Run(Config{Seed: 1})
	b := Run(Config{Seed: 2})
	if a.Hash == b.Hash {
		t.Fatalf("seeds 1 and 2 produced the same trace %s", a.Hash)
	}
}

func TestStrictRunsModelCheckClean(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := Run(Config{Seed: seed})
		if len(r.Violations) != 0 {
			t.Errorf("seed %d: %v", seed, r.Violations)
		}
		if r.Ops != r.Redirects+r.NoEnts {
			t.Errorf("seed %d: %d ops but %d redirects + %d noents",
				seed, r.Ops, r.Redirects, r.NoEnts)
		}
	}
}

func TestFaultyRunsModelCheckClean(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := Run(Config{Seed: seed, Plan: testPlan(), Crashes: 2})
		if len(r.Violations) != 0 {
			t.Errorf("seed %d: %v", seed, r.Violations)
		}
	}
}

// TestHarnessExercisesTheMachinery guards against the sweep going
// vacuous: across a handful of seeds the runs must actually park
// clients into full delays, promote staged files, and crash servers —
// otherwise the invariants are checked against a world where nothing
// happens.
func TestHarnessExercisesTheMachinery(t *testing.T) {
	var waits, staged, crashed, redirects int
	for seed := int64(1); seed <= 10; seed++ {
		r := Run(Config{Seed: seed, Plan: testPlan(), Crashes: 2})
		waits += r.Waits
		staged += r.Staged
		crashed += r.Crashed
		redirects += r.Redirects
	}
	if waits == 0 {
		t.Error("no run imposed a full delay")
	}
	if staged == 0 {
		t.Error("no run promoted a staged file")
	}
	if crashed == 0 {
		t.Error("no run crashed a server")
	}
	if redirects == 0 {
		t.Error("no run redirected a client")
	}
}

func TestDebugMirrorsTrace(t *testing.T) {
	var buf bytes.Buffer
	r := Run(Config{Seed: 3, Debug: &buf})
	lines := strings.Count(buf.String(), "\n")
	if lines != r.Lines {
		t.Fatalf("debug writer saw %d lines, trace hashed %d", lines, r.Lines)
	}
	if !strings.HasPrefix(buf.String(), "init seed=3") {
		t.Fatalf("debug output does not start with the init line: %q",
			buf.String()[:40])
	}
}
