package detsim

import (
	"fmt"
	"time"

	"scalla/internal/cluster"
	"scalla/internal/names"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// stageBase is the minimum simulated staging time; a jitter draw of the
// same magnitude is added per request.
const stageBase = 750 * time.Millisecond

// server is one simulated data server: a real store behind a
// scheduler-owned link. The goroutine running loop is active only
// between a frame Push and the next idle signal, so from the
// scheduler's point of view handling a query is one atomic sub-step.
type server struct {
	sim  *Sim
	id   int    // stable sim id (never reused)
	name string // cluster identity
	addr string // data-plane address

	idx    int // current membership table index
	online bool
	gen    uint64 // bumped per crash and restart: frames of dead connections

	st     *store.Store
	mgrEnd *transport.SchedConn // manager's end: queries are sent here
	srvEnd *transport.SchedConn // server's end: loop Recvs here
	idle   chan struct{}
}

func newServer(s *Sim, id int) *server {
	sv := &server{
		sim:    s,
		id:     id,
		name:   fmt.Sprintf("s%d", id),
		addr:   fmt.Sprintf("data-s%d", id),
		online: true,
		st:     store.New(store.Config{Clock: s.clk}),
		idle:   make(chan struct{}),
	}
	onSend := func(from *transport.SchedConn, frame []byte) error {
		return s.linkSend(sv, from, frame)
	}
	sv.mgrEnd, sv.srvEnd = transport.NewSchedPair("mgr:"+sv.name, sv.name, onSend)
	sv.srvEnd.SetRecvHook(func() { sv.idle <- struct{}{} })
	return sv
}

// login (re)registers the server with the membership table and records
// its current slot index.
func (sv *server) login() {
	idx, _, err := sv.sim.core.Table().Login(cluster.Member{
		Name:     sv.name,
		Role:     proto.RoleServer,
		DataAddr: sv.addr,
		Prefixes: names.NewPrefixSet("/"),
		Free:     sv.st.Free(),
	})
	if err != nil {
		panic(fmt.Sprintf("detsim: login %s: %v", sv.name, err))
	}
	sv.idx = idx
}

// loop is the server process: signal idle, block for a frame, answer
// it, repeat. It exits when the scheduler closes the endpoint.
func (sv *server) loop() {
	for {
		frame, err := sv.srvEnd.Recv()
		if err != nil {
			return
		}
		m, err := proto.Unmarshal(frame)
		if err != nil {
			continue
		}
		if q, ok := m.(proto.Query); ok {
			sv.handle(q)
		}
	}
}

// handle answers one location query exactly like a real data server:
// an online copy is a definitive have, a mass-storage copy is a
// pending have plus a staging request, silence otherwise.
func (sv *server) handle(q proto.Query) {
	switch {
	case sv.st.HasOnline(q.Path):
		sv.reply(q, false)
	case sv.st.Has(q.Path):
		sv.reply(q, true)
		sv.sim.requestStage(sv, q.Path)
	}
}

func (sv *server) reply(q proto.Query, pending bool) {
	_ = transport.SendMessage(sv.srvEnd, proto.Have{
		QID: q.QID, Path: q.Path, Hash: q.Hash, Pending: pending, CanWrite: true,
	})
}

// requestStage schedules the staging completion for (sv, path) once.
// The real store spawns a clock-sleeping goroutine for this; the
// harness models it as an explicit event so the promotion instant is a
// scheduler decision.
func (s *Sim) requestStage(sv *server, path string) {
	key := fmt.Sprintf("s%d|%s", sv.id, path)
	if s.stageStarted[key] {
		return
	}
	s.stageStarted[key] = true
	s.stagePending[stageKey{sv, path}] = true
	delay := stageBase + s.jitter(stageBase)
	s.schedule(s.clk.Now().Add(delay), &event{kind: evStage, sv: sv, path: path})
}

// stageKey identifies one in-flight stage for the Vp service fence.
type stageKey struct {
	sv   *server
	path string
}
