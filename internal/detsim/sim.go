package detsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cluster"
	"scalla/internal/cmsd"
	"scalla/internal/faults"
	"scalla/internal/names"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// evKind enumerates the discrete-event types the scheduler executes.
type evKind int

const (
	evClientOp  evKind = iota // start or retry one client operation
	evQuery                   // deliver a query frame to a server
	evHave                    // deliver a have frame to the manager
	evRespqTick               // fast-response clock period
	evCacheTick               // cache window tick
	evCrash                   // take a server offline
	evRestart                 // bring a crashed server back
	evDrop                    // drop-delay lapse for an offline slot
	evStage                   // a staging request completes
)

// event is one scheduled occurrence. The heap orders by (due, seq), so
// ties break in scheduling order and the execution is a total order.
type event struct {
	due  time.Time
	seq  uint64
	kind evKind

	cp    *clientProc
	sv    *server
	frame []byte
	gen   uint64 // sender connection generation (frames) or cluster gen (evDrop)
	idx   int    // table index for evDrop
	path  string // for evStage
}

type evHeap []*event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// doneMsg is one finished client resolution, sent by the resolution
// goroutine back to the scheduler.
type doneMsg struct {
	cp  *clientProc
	out cmsd.Outcome
}

// fileModel is the ground truth the harness validates redirects
// against: which servers (by stable sim id) hold the file online and
// which only in mass storage.
type fileModel struct {
	exists bool
	online map[int]bool
	mss    map[int]bool
}

// wedgeTimeout is the real-time bound on waiting for an expected
// resolution completion. It fires only when a waiter was lost — the
// exactly-once violation the harness exists to catch — or the core
// deadlocked outright.
const wedgeTimeout = 10 * time.Second

// maxAttempts bounds retries of a single operation before the harness
// declares a livelock.
const maxAttempts = 200

// Sim is one running simulation. All fields are owned by the scheduler
// goroutine; client and server goroutines touch them only while the
// scheduler is blocked on the corresponding handshake channel.
type Sim struct {
	cfg   Config
	rng   *rand.Rand
	clk   *vclock.Fake
	epoch time.Time

	core    *cmsd.Core
	servers []*server
	clients []*clientProc
	files   map[string]*fileModel

	eq  evHeap
	seq uint64

	awaitCh chan struct{} // park handshake from cmsd.Config.OnAwait
	done    chan doneMsg

	trace  *obs.TraceHash
	steps  int
	parked int

	// refreshGuard records, per path, until when a client-forced
	// refresh may legitimately coexist with an earlier live flood.
	refreshGuard map[string]time.Time
	// stageStarted dedups staging requests per (server, path).
	stageStarted map[string]bool
	// stagePending holds the stages requested but not yet completed —
	// the harness's Vp interval. Invariant 4 asserts no store serves
	// bytes for a (server, path) inside it.
	stagePending map[stageKey]bool

	opsLeft    int
	violations []string
	abort      bool
	endTime    time.Time

	nRedirects, nWaits, nNoEnts, nRetries, nCrashed, nStaged int
}

const (
	cpIdle = iota
	cpParked
	cpDone
)

// opKind labels a client operation for the trace and the validator.
type op struct {
	kind    string // "read", "create", "write", "refresh"
	path    string
	write   bool
	create  bool
	refresh bool
}

// clientProc is one simulated client: a sequential program of ops.
type clientProc struct {
	id       int
	ops      []op
	cur      int
	state    int
	attempts int
	opStart  time.Time
}

func newSim(cfg Config) *Sim {
	s := &Sim{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		clk:          vclock.NewFake(),
		files:        make(map[string]*fileModel),
		awaitCh:      make(chan struct{}),
		done:         make(chan doneMsg, cfg.Clients+4),
		trace:        obs.NewTraceHash(),
		refreshGuard: make(map[string]time.Time),
		stageStarted: make(map[string]bool),
		stagePending: make(map[stageKey]bool),
	}
	s.epoch = s.clk.Now()
	s.endTime = s.epoch.Add(cfg.MaxSimTime)

	s.core = cmsd.NewCore(cmsd.Config{
		Manual:    true,
		OnAwait:   func() { s.awaitCh <- struct{}{} },
		FullDelay: cfg.FullDelay,
		Clock:     s.clk,
		Cache: cache.Config{
			Lifetime:       cfg.Lifetime,
			Deadline:       cfg.FullDelay,
			Shards:         4,
			InitialBuckets: 128,
			SyncSweep:      true,
		},
		Queue:   respq.Config{Slots: cfg.Slots, Period: cfg.Period},
		Cluster: cluster.Config{DropDelay: cfg.DropDelay},
	})
	s.core.SetQuerySender(s.sendQuery)

	s.tracef("init seed=%d servers=%d clients=%d ops=%d paths=%d slots=%d faults=%v crashes=%d",
		cfg.Seed, cfg.Servers, cfg.Clients, cfg.OpsPerClient, cfg.Paths,
		cfg.Slots, cfg.Plan.Active(), cfg.Crashes)

	s.buildServers()
	s.preload()
	s.buildClients()
	s.scheduleBackground()
	return s
}

// sendQuery is the QuerySender installed into the core: a query to an
// offline server is unsendable (the bit stays in Vq), anything else is
// handed to the link layer for a latency/fault draw.
func (s *Sim) sendQuery(index int, q proto.Query) bool {
	sv := s.byIndex(index)
	if sv == nil || !sv.online {
		return false
	}
	return transport.SendMessage(sv.mgrEnd, q) == nil
}

func (s *Sim) buildServers() {
	for i := 0; i < s.cfg.Servers; i++ {
		sv := newServer(s, i)
		s.servers = append(s.servers, sv)
		sv.login()
		go sv.loop()
		<-sv.idle // server parked at Recv: the link is up
	}
}

func (s *Sim) preload() {
	for i := 0; i < s.cfg.Paths; i++ {
		path := fmt.Sprintf("/data/f%02d", i)
		fm := &fileModel{online: make(map[int]bool), mss: make(map[int]bool)}
		s.files[path] = fm
		if s.rng.Float64() >= 0.75 {
			continue // a quarter of the namespace does not exist
		}
		fm.exists = true
		holders := s.rng.Perm(s.cfg.Servers)[:1+s.rng.Intn(2)]
		sort.Ints(holders)
		for _, h := range holders {
			sv := s.servers[h]
			if s.rng.Float64() < 0.3 {
				sv.st.PutOffline(path, fileContent(path))
				fm.mss[h] = true
			} else {
				if err := sv.st.Put(path, fileContent(path)); err != nil {
					panic(err)
				}
				fm.online[h] = true
			}
		}
	}
}

func fileContent(path string) []byte { return []byte("data:" + path) }

func (s *Sim) buildClients() {
	for c := 0; c < s.cfg.Clients; c++ {
		cp := &clientProc{id: c}
		for k := 0; k < s.cfg.OpsPerClient; k++ {
			cp.ops = append(cp.ops, s.drawOp(c, k))
		}
		s.clients = append(s.clients, cp)
		s.opsLeft += len(cp.ops)
		s.schedule(s.epoch.Add(s.jitter(50*time.Millisecond)),
			&event{kind: evClientOp, cp: cp})
	}
}

func (s *Sim) drawOp(client, k int) op {
	r := s.rng.Float64()
	switch {
	case r < 0.55:
		return op{kind: "read", path: s.somePath()}
	case r < 0.70:
		return op{kind: "create", path: fmt.Sprintf("/new/c%d-n%d", client, k),
			write: true, create: true}
	case r < 0.80:
		return op{kind: "write", path: s.somePath(), write: true}
	default:
		return op{kind: "refresh", path: s.somePath(), refresh: true}
	}
}

func (s *Sim) somePath() string {
	return fmt.Sprintf("/data/f%02d", s.rng.Intn(s.cfg.Paths))
}

func (s *Sim) scheduleBackground() {
	s.schedule(s.epoch.Add(s.cfg.Period), &event{kind: evRespqTick})
	s.schedule(s.epoch.Add(s.cfg.Lifetime/64), &event{kind: evCacheTick})
	for k := 0; k < s.cfg.Crashes; k++ {
		sv := s.servers[s.rng.Intn(s.cfg.Servers)]
		at := s.epoch.Add(500*time.Millisecond + s.jitter(15*time.Second))
		s.schedule(at, &event{kind: evCrash, sv: sv})
		s.schedule(at.Add(s.cfg.RestartDelay), &event{kind: evRestart, sv: sv})
	}
}

// run is the scheduler loop: pop the next event, advance the one clock
// to its due time, execute it, then model-check the world.
func (s *Sim) run() Result {
	for len(s.eq) > 0 && !s.abort {
		ev := heap.Pop(&s.eq).(*event)
		if ev.due.After(s.endTime) {
			s.tracef("sim: time limit reached")
			break
		}
		s.clk.AdvanceTo(ev.due)
		s.steps++
		s.exec(ev)
		s.checkInvariants()
	}
	return s.finish()
}

func (s *Sim) exec(ev *event) {
	switch ev.kind {
	case evClientOp:
		s.stepClient(ev.cp)
	case evQuery:
		s.deliverQuery(ev)
	case evHave:
		s.deliverHave(ev)
	case evRespqTick:
		before := s.delivered()
		if n := s.core.Queue().ExpireNow(); n > 0 {
			s.tracef("t=%d respq expire waiters=%d", s.us(), n)
		}
		s.collectReleased(before)
		if s.opsLeft > 0 {
			s.schedule(s.clk.Now().Add(s.cfg.Period), &event{kind: evRespqTick})
		}
	case evCacheTick:
		s.core.Cache().Tick()
		if s.opsLeft > 0 {
			s.schedule(s.clk.Now().Add(s.cfg.Lifetime/64), &event{kind: evCacheTick})
		}
	case evCrash:
		s.crash(ev.sv)
	case evRestart:
		s.restart(ev.sv)
	case evDrop:
		s.tracef("t=%d drop-delay lapsed idx=%d gen=%d", s.us(), ev.idx, ev.gen)
		s.core.Table().MaybeDrop(ev.idx, ev.gen)
	case evStage:
		s.stageDone(ev.sv, ev.path)
	}
}

func (s *Sim) deliverQuery(ev *event) {
	sv := ev.sv
	if !sv.online || ev.gen != sv.gen {
		s.tracef("t=%d query to s%d dropped (conn gone)", s.us(), sv.id)
		return
	}
	var qid uint64
	if m, err := proto.Unmarshal(ev.frame); err == nil {
		if q, ok := m.(proto.Query); ok {
			qid = q.QID
		}
	}
	s.tracef("t=%d query qid=%d -> s%d", s.us(), qid, sv.id)
	if !sv.srvEnd.Push(ev.frame) {
		s.violate("server s%d inbox refused a frame", sv.id)
		return
	}
	<-sv.idle // the server handled the frame and parked again
}

func (s *Sim) deliverHave(ev *event) {
	sv := ev.sv
	if ev.gen != sv.gen {
		s.tracef("t=%d have from s%d dropped (conn gone)", s.us(), sv.id)
		return
	}
	m, err := proto.Unmarshal(ev.frame)
	if err != nil {
		s.violate("undecodable have frame from s%d: %v", sv.id, err)
		return
	}
	h, ok := m.(proto.Have)
	if !ok {
		s.violate("unexpected %T from s%d", m, sv.id)
		return
	}
	before := s.delivered()
	n := s.core.HandleHave(sv.idx, h)
	s.tracef("t=%d have qid=%d s%d path=%s pending=%v released=%d",
		s.us(), h.QID, sv.id, h.Path, h.Pending, n)
	s.collectReleased(before)
}

func (s *Sim) crash(sv *server) {
	if !sv.online {
		s.tracef("t=%d crash s%d skipped (already down)", s.us(), sv.id)
		return
	}
	sv.online = false
	sv.gen++
	s.nCrashed++
	s.tracef("t=%d crash s%d", s.us(), sv.id)
	// DisconnectManual fires OnOffline synchronously, which refloods
	// live queries the member was part of — on this goroutine, so the
	// RNG draws stay ordered.
	if gen, ok := s.core.Table().DisconnectManual(sv.idx); ok {
		s.schedule(s.clk.Now().Add(s.cfg.DropDelay),
			&event{kind: evDrop, idx: sv.idx, gen: gen})
	}
}

func (s *Sim) restart(sv *server) {
	if sv.online {
		s.tracef("t=%d restart s%d skipped (already up)", s.us(), sv.id)
		return
	}
	sv.online = true
	sv.gen++
	sv.login()
	s.tracef("t=%d restart s%d idx=%d", s.us(), sv.id, sv.idx)
	s.core.MemberUp(sv.idx)
}

func (s *Sim) stageDone(sv *server, path string) {
	delete(s.stagePending, stageKey{sv, path})
	if err := sv.st.Put(path, fileContent(path)); err != nil {
		s.violate("stage promote failed on s%d: %v", sv.id, err)
		return
	}
	s.nStaged++
	fm := s.files[path]
	if fm != nil {
		delete(fm.mss, sv.id)
		fm.online[sv.id] = true
	}
	s.tracef("t=%d staged s%d path=%s", s.us(), sv.id, path)
}

// stepClient runs one resolution attempt for cp on its own goroutine
// and blocks until the resolution either parks on the fast response
// queue (the OnAwait handshake) or completes. Completions of other
// clients released mid-step (the optimistic-create path) are collected
// before the scheduler moves on, so the step is atomic.
func (s *Sim) stepClient(cp *clientProc) {
	if cp.state != cpIdle || cp.cur >= len(cp.ops) {
		s.violate("client %d stepped in state %d", cp.id, cp.state)
		return
	}
	o := cp.ops[cp.cur]
	now := s.clk.Now()
	if cp.attempts == 0 {
		cp.opStart = now
	}
	cp.attempts++
	if cp.attempts > maxAttempts {
		s.violate("client %d livelocked on op %d (%s %s)", cp.id, cp.cur, o.kind, o.path)
		cp.state = cpDone
		s.opsLeft--
		return
	}
	req := cmsd.Request{Path: o.path, Write: o.write, Create: o.create}
	if o.refresh && cp.attempts == 1 {
		// A client-forced refresh deliberately re-floods; remember so
		// the flood-uniqueness invariant tolerates the overlap.
		req.Refresh = true
		s.refreshGuard[names.Clean(o.path)] = now.Add(s.cfg.FullDelay)
	}
	s.tracef("t=%d c%d %s %s attempt=%d", s.us(), cp.id, o.kind, o.path, cp.attempts)

	before := s.delivered()
	go func() { s.done <- doneMsg{cp, s.core.Resolve(req)} }()

	var own *doneMsg
	var strays []doneMsg
	parkedHere := false
	wedge := time.After(wedgeTimeout)
	for own == nil && !parkedHere {
		select {
		case <-s.awaitCh:
			parkedHere = true
		case d := <-s.done:
			if d.cp == cp {
				dd := d
				own = &dd
			} else {
				strays = append(strays, d)
			}
		case <-wedge:
			s.violate("client %d resolution wedged on %s %s", cp.id, o.kind, o.path)
			s.abort = true
			return
		}
	}
	if parkedHere {
		if len(strays) != 0 {
			s.violate("client %d parked but %d completions appeared mid-step",
				cp.id, len(strays))
		}
		cp.state = cpParked
		s.parked++
		s.tracef("t=%d c%d parked", s.us(), cp.id)
		return
	}

	// The step released this many parked waiters; each is a client
	// completion the scheduler must absorb before the next decision.
	expect := int(s.delivered() - before)
	for len(strays) < expect {
		select {
		case d := <-s.done:
			strays = append(strays, d)
		case <-time.After(wedgeTimeout):
			s.violate("exactly-once: %d of %d completions released by c%d's step arrived",
				len(strays), expect, cp.id)
			s.abort = true
			return
		}
	}
	s.finishAttempt(cp, own.out)
	sort.Slice(strays, func(i, j int) bool { return strays[i].cp.id < strays[j].cp.id })
	for _, d := range strays {
		if d.cp.state != cpParked {
			s.violate("completion for client %d which was not parked", d.cp.id)
			continue
		}
		s.finishAttempt(d.cp, d.out)
	}
}

// delivered returns the cumulative waiters handed a result by the fast
// response queue — the scheduler's ledger for exactly-once accounting.
func (s *Sim) delivered() int64 {
	st := s.core.Queue().Stats()
	return st.ReleasedWaiters + st.ExpiredWaiters
}

// collectReleased blocks until every client completion implied by the
// waiter-delivery delta since before has arrived, then applies them in
// client order. A shortfall is a lost waiter: the exactly-once
// violation.
func (s *Sim) collectReleased(before int64) {
	expect := int(s.delivered() - before)
	if expect == 0 {
		return
	}
	msgs := make([]doneMsg, 0, expect)
	wedge := time.After(wedgeTimeout)
	for len(msgs) < expect {
		select {
		case d := <-s.done:
			msgs = append(msgs, d)
		case <-wedge:
			s.violate("exactly-once: %d of %d released completions arrived",
				len(msgs), expect)
			s.abort = true
			return
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].cp.id < msgs[j].cp.id })
	for _, d := range msgs {
		if d.cp.state != cpParked {
			s.violate("completion for client %d which was not parked", d.cp.id)
			continue
		}
		s.finishAttempt(d.cp, d.out)
	}
}

// finishAttempt applies one resolution outcome to its client: schedule
// the retry, or validate and complete the operation.
func (s *Sim) finishAttempt(cp *clientProc, out cmsd.Outcome) {
	if cp.state == cpParked {
		s.parked--
	}
	cp.state = cpIdle
	o := cp.ops[cp.cur]
	now := s.clk.Now()
	switch out.Kind {
	case cmsd.KindRetry:
		s.nRetries++
		s.tracef("t=%d c%d retry", s.us(), cp.id)
		s.schedule(now.Add(time.Millisecond), &event{kind: evClientOp, cp: cp})
	case cmsd.KindWait:
		s.nWaits++
		s.tracef("t=%d c%d wait %dms", s.us(), cp.id, out.Millis)
		s.schedule(now.Add(time.Duration(out.Millis)*time.Millisecond),
			&event{kind: evClientOp, cp: cp})
	case cmsd.KindNoEnt:
		s.nNoEnts++
		s.validateNoEnt(cp, o)
		s.completeOp(cp, "noent", -1)
	case cmsd.KindRedirect:
		s.nRedirects++
		s.validateRedirect(cp, o, out)
		s.completeOp(cp, "redirect", out.Index)
	default:
		s.violate("client %d got unknown outcome kind %d", cp.id, out.Kind)
		s.completeOp(cp, "unknown", -1)
	}
}

func (s *Sim) completeOp(cp *clientProc, how string, idx int) {
	now := s.clk.Now()
	took := now.Sub(cp.opStart)
	o := cp.ops[cp.cur]
	s.tracef("t=%d c%d %s %s done %s idx=%d took=%dus attempts=%d",
		s.us(), cp.id, o.kind, o.path, how, idx, took.Microseconds(), cp.attempts)
	if took > s.cfg.MaxOpTime {
		s.violate("client %d op %d (%s %s) took %s, past the %s resolution bound",
			cp.id, cp.cur, o.kind, o.path, took, s.cfg.MaxOpTime)
	}
	cp.cur++
	cp.attempts = 0
	s.opsLeft--
	if cp.cur >= len(cp.ops) {
		cp.state = cpDone
		return
	}
	s.schedule(now.Add(s.jitter(20*time.Millisecond)), &event{kind: evClientOp, cp: cp})
}

func (s *Sim) validateRedirect(cp *clientProc, o op, out cmsd.Outcome) {
	sv := s.byIndex(out.Index)
	if sv == nil {
		s.violate("client %d redirected to unknown index %d", cp.id, out.Index)
		return
	}
	if !sv.online {
		s.violate("client %d redirected to offline server s%d for %s", cp.id, sv.id, o.path)
		return
	}
	fm := s.files[o.path]
	if o.create && (fm == nil || !fm.exists) {
		// Creation lands here: the redirect target becomes the holder.
		if fm == nil {
			fm = &fileModel{online: make(map[int]bool), mss: make(map[int]bool)}
			s.files[o.path] = fm
		}
		if err := sv.st.Put(o.path, fileContent(o.path)); err != nil {
			s.violate("create install on s%d failed: %v", sv.id, err)
			return
		}
		fm.exists = true
		fm.online[sv.id] = true
		return
	}
	if fm == nil || !fm.exists {
		s.violate("client %d redirected to s%d for %s which does not exist",
			cp.id, sv.id, o.path)
		return
	}
	if !fm.online[sv.id] && !fm.mss[sv.id] {
		s.violate("client %d redirected to s%d which does not hold %s",
			cp.id, sv.id, o.path)
	}
}

func (s *Sim) validateNoEnt(cp *clientProc, o op) {
	if !s.cfg.strict() {
		return
	}
	if o.create {
		s.violate("client %d create %s returned noent in a strict run", cp.id, o.path)
		return
	}
	fm := s.files[o.path]
	if fm != nil && fm.exists {
		s.violate("client %d got noent for existing file %s in a strict run", cp.id, o.path)
	}
}

// linkSend is the SchedConn send hook for server sv's pair: it draws
// the fault decision and latency and enqueues the delivery event. It
// runs on whichever goroutine called Send, but always while the
// scheduler is blocked on that goroutine's handshake, so the RNG and
// event heap stay serialized.
func (s *Sim) linkSend(sv *server, from *transport.SchedConn, frame []byte) error {
	kind := evHave
	if from == sv.mgrEnd {
		kind = evQuery
	}
	dec, extra := faults.PassThrough, time.Duration(0)
	if s.cfg.Plan.Active() {
		dec, extra = s.cfg.Plan.Decide(s.rng)
	}
	switch dec {
	case faults.DropFrame:
		s.tracef("t=%d fault drop kind=%d s%d", s.us(), kind, sv.id)
		return nil
	case faults.DupFrame:
		s.tracef("t=%d fault dup kind=%d s%d", s.us(), kind, sv.id)
		s.enqueueFrame(kind, sv, frame, s.latency())
		s.enqueueFrame(kind, sv, frame, s.latency())
		return nil
	case faults.DelayFrame:
		s.tracef("t=%d fault delay kind=%d s%d by=%dus", s.us(), kind, sv.id, extra.Microseconds())
		s.enqueueFrame(kind, sv, frame, s.latency()+extra)
		return nil
	case faults.ReorderFrame:
		// An adjacent swap in a discrete-event world: push the frame one
		// extra latency draw into the future so later traffic overtakes it.
		held := s.latency() + s.latency()
		s.tracef("t=%d fault reorder kind=%d s%d", s.us(), kind, sv.id)
		s.enqueueFrame(kind, sv, frame, held)
		return nil
	}
	s.enqueueFrame(kind, sv, frame, s.latency())
	return nil
}

func (s *Sim) enqueueFrame(kind evKind, sv *server, frame []byte, lat time.Duration) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	s.schedule(s.clk.Now().Add(lat),
		&event{kind: kind, sv: sv, frame: cp, gen: sv.gen})
}

func (s *Sim) latency() time.Duration {
	span := int64(s.cfg.MaxLatency - s.cfg.MinLatency)
	if span <= 0 {
		return s.cfg.MinLatency
	}
	return s.cfg.MinLatency + time.Duration(s.rng.Int63n(span+1))
}

func (s *Sim) jitter(max time.Duration) time.Duration {
	return time.Duration(s.rng.Int63n(int64(max)))
}

func (s *Sim) schedule(due time.Time, ev *event) {
	ev.due = due
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.eq, ev)
}

func (s *Sim) byIndex(index int) *server {
	for _, sv := range s.servers {
		if sv.idx == index {
			return sv
		}
	}
	return nil
}

func (s *Sim) us() int64 { return s.clk.Now().Sub(s.epoch).Microseconds() }

func (s *Sim) tracef(format string, args ...any) {
	s.trace.Addf(format, args...)
	if s.cfg.Debug != nil {
		fmt.Fprintf(s.cfg.Debug, format+"\n", args...)
	}
}

func (s *Sim) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.violations = append(s.violations, msg)
	s.tracef("VIOLATION: %s", msg)
	if len(s.violations) >= 8 {
		s.abort = true
	}
}

func (s *Sim) finish() Result {
	for _, cp := range s.clients {
		if cp.cur < len(cp.ops) && !s.abort {
			o := cp.ops[cp.cur]
			s.violate("client %d stalled: op %d (%s %s) never resolved",
				cp.id, cp.cur, o.kind, o.path)
		}
	}
	st := s.core.Queue().Stats()
	s.tracef("final respq entries=%d joins=%d released=%d expired=%d full=%d inuse=%d rw=%d ew=%d",
		st.Entries, st.Joins, st.Released, st.Expired, st.Full, st.InUse,
		st.ReleasedWaiters, st.ExpiredWaiters)
	s.tracef("final counts steps=%d redirects=%d waits=%d noents=%d retries=%d crashed=%d staged=%d parked=%d",
		s.steps, s.nRedirects, s.nWaits, s.nNoEnts, s.nRetries, s.nCrashed, s.nStaged, s.parked)

	// Tear down: unblock parked resolutions (they drain into the done
	// buffer) and EOF the server loops.
	s.core.Close()
	for _, sv := range s.servers {
		sv.srvEnd.Close()
		sv.mgrEnd.Close()
	}

	total := s.cfg.Clients * s.cfg.OpsPerClient
	return Result{
		Seed:       s.cfg.Seed,
		Hash:       s.trace.Sum(),
		Lines:      s.trace.Len(),
		Steps:      s.steps,
		Ops:        total - s.opsLeft,
		Redirects:  s.nRedirects,
		Waits:      s.nWaits,
		NoEnts:     s.nNoEnts,
		Retries:    s.nRetries,
		Crashed:    s.nCrashed,
		Staged:     s.nStaged,
		Violations: s.violations,
	}
}
